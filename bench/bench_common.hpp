#pragma once
// Shared plumbing for the figure/table reproduction binaries: common CLI
// options, chip-config overrides, and uniform table emission.

#include <iostream>
#include <string>

#include "c64/config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace c64fft::bench {

/// Registers the chip-model overrides shared by every figure binary.
inline void add_chip_options(util::CliParser& cli) {
  cli.add_int("tus", 156, "thread units (paper: 156 of 160)");
  cli.add_int("dram-latency", -1, "override DRAM request latency in cycles");
  cli.add_int("barrier-cycles", -1, "override barrier cost in cycles");
  cli.add_int("max-outstanding", -1, "override per-TU outstanding requests");
  cli.add_flag("csv", "emit CSV instead of an aligned table");
}

/// Builds the chip config from defaults + CLI overrides.
inline c64::ChipConfig chip_from_cli(const util::CliParser& cli) {
  c64::ChipConfig cfg;
  cfg.thread_units = static_cast<unsigned>(cli.get_int("tus"));
  if (cli.get_int("dram-latency") >= 0)
    cfg.dram_latency = static_cast<unsigned>(cli.get_int("dram-latency"));
  if (cli.get_int("barrier-cycles") >= 0)
    cfg.barrier_cycles = static_cast<unsigned>(cli.get_int("barrier-cycles"));
  if (cli.get_int("max-outstanding") > 0)
    cfg.max_outstanding = static_cast<unsigned>(cli.get_int("max-outstanding"));
  return cfg;
}

/// Prints the table in the format selected on the command line.
inline void emit(const util::TextTable& table, const util::CliParser& cli) {
  if (cli.flag("csv"))
    table.csv(std::cout);
  else
    table.print(std::cout);
}

/// Uniform banner so bench output is self-describing in logs.
inline void banner(const std::string& what) {
  std::cout << "\n== " << what << " ==\n";
}

}  // namespace c64fft::bench
