// Fig. 2: "Access rates of the 4 off-chip memory banks in our designed
// fine-grain FFT algorithm" — the guided fine-grain version, whose
// reordering shifts bank-0 pressure toward the end of the run.

#include "bench/fig_bank_rates.hpp"

int main(int argc, char** argv) {
  return c64fft::bench::run_bank_rate_figure(
      "Fig. 2", c64fft::simfft::SimVariant::kFineGuided, argc, argv);
}
