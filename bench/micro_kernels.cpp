// google-benchmark microbenchmarks of the host-side computational kernels:
// butterfly chains, full codelets, bit reversal, twiddle construction, and
// end-to-end host FFTs. These measure real wall time on the build machine
// (unlike the fig*/table* binaries, which measure simulated C64 cycles).

#include <benchmark/benchmark.h>

#include <vector>

#include "codelet/pool.hpp"
#include "fft/api.hpp"
#include "fft/bit_reversal.hpp"
#include "fft/kernel.hpp"
#include "fft/real_fft.hpp"
#include "fft/reference.hpp"
#include "fft/stockham.hpp"
#include "util/prng.hpp"

namespace {

using namespace c64fft;
using fft::cplx;

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

void BM_ButterflyChain64(benchmark::State& state) {
  const std::uint64_t n = 1 << 12;
  const fft::TwiddleTable tw(n, fft::TwiddleLayout::kLinear);
  auto chain = random_signal(64, 1);
  for (auto _ : state) {
    fft::butterfly_chain(chain, 0, 1, 0, 6, 12, tw);
    benchmark::DoNotOptimize(chain.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 192);  // butterflies
}
BENCHMARK(BM_ButterflyChain64);

void BM_RunCodelet(benchmark::State& state) {
  const std::uint64_t n = 1 << 15;
  const unsigned r = static_cast<unsigned>(state.range(0));
  const fft::FftPlan plan(n, r);
  const fft::TwiddleTable tw(n, fft::TwiddleLayout::kLinear);
  auto data = random_signal(n, 2);
  std::vector<cplx> scratch(plan.radix());
  std::uint64_t task = 0;
  for (auto _ : state) {
    fft::run_codelet(plan, 0, task, data, tw, scratch);
    task = (task + 1) % plan.tasks_per_stage();
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(plan.radix()));
}
BENCHMARK(BM_RunCodelet)->Arg(3)->Arg(6);

void BM_BitReversal(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 3);
  for (auto _ : state) {
    fft::bit_reverse_permute(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_BitReversal)->Arg(12)->Arg(16)->Arg(20);

void BM_TwiddleTableBuild(benchmark::State& state) {
  const std::uint64_t n = std::uint64_t{1} << state.range(0);
  const auto layout = state.range(1) ? fft::TwiddleLayout::kBitReversed
                                     : fft::TwiddleLayout::kLinear;
  for (auto _ : state) {
    fft::TwiddleTable tw(n, layout);
    benchmark::DoNotOptimize(tw.storage().data());
  }
}
BENCHMARK(BM_TwiddleTableBuild)->Args({16, 0})->Args({16, 1})->Args({20, 0});

void BM_PoolPushPop(benchmark::State& state) {
  codelet::ConcurrentPool pool(codelet::PoolPolicy::kLifo);
  for (auto _ : state) {
    pool.push({0, 1});
    benchmark::DoNotOptimize(pool.try_pop());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PoolPushPop);

void BM_HostFftFine(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 4);
  fft::HostFftOptions opts;
  opts.workers = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    fft::forward(data, opts, fft::Variant::kFine);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_HostFftFine)->Args({14, 1})->Args({14, 2})->Args({16, 2});

void BM_HostFftCoarse(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 5);
  fft::HostFftOptions opts;
  opts.workers = 2;
  for (auto _ : state) {
    fft::forward(data, opts, fft::Variant::kCoarse);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_HostFftCoarse)->Arg(14);

void BM_StockhamFft(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 7);
  for (auto _ : state) {
    auto out = fft::fft_stockham(data);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_StockhamFft)->Arg(14)->Arg(16);

void BM_RealFft(benchmark::State& state) {
  const std::uint64_t n = std::uint64_t{1} << state.range(0);
  util::Xoshiro256 rng(8);
  std::vector<double> signal(n);
  for (auto& x : signal) x = rng.next_double() * 2 - 1;
  fft::HostFftOptions opts;
  opts.workers = 2;
  for (auto _ : state) {
    auto spec = fft::real_forward(signal, opts);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_RealFft)->Arg(14)->Arg(16);

void BM_SerialReferenceFft(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 6);
  for (auto _ : state) {
    fft::fft_serial_inplace(data);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_SerialReferenceFft)->Arg(14)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
