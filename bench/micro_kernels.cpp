// google-benchmark microbenchmarks of the host-side computational kernels:
// butterfly chains (scalar vs split/vectorized), full codelets, bit
// reversal, twiddle construction, runtime codelet throughput (legacy
// mutex-pool architecture vs the work-stealing runtime), and end-to-end
// host FFTs. These measure real wall time on the build machine (unlike the
// fig*/table* binaries, which measure simulated C64 cycles).
//
// The runtime comparison pair (BM_MutexPoolRuntime / BM_WorkStealingRuntime)
// backs the BENCH_runtime.json numbers: same fan-out workload, same worker
// counts; the legacy driver reproduces the pre-work-stealing architecture
// (std::thread respawn per phase + one mutex-guarded pool).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "codelet/host_runtime.hpp"
#include "codelet/pool.hpp"
#include "fft/api.hpp"
#include "fft/bit_reversal.hpp"
#include "fft/executor.hpp"
#include "fft/kernel.hpp"
#include "fft/kernels/dispatch.hpp"
#include "fft/real_fft.hpp"
#include "fft/reference.hpp"
#include "fft/stockham.hpp"
#include "fft/transpose.hpp"
#include "util/cpu_features.hpp"
#include "util/prng.hpp"

namespace {

using namespace c64fft;
using codelet::CodeletKey;
using fft::cplx;
using fft::cplx32;

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

std::vector<cplx32> random_signal32(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx32> v(n);
  for (auto& x : v)
    x = cplx32(static_cast<float>(rng.next_double() * 2 - 1),
               static_cast<float>(rng.next_double() * 2 - 1));
  return v;
}

// ---------------------------------------------------------------------------
// Butterfly kernels: scalar std::complex vs split-complex vectorized.

void BM_ButterflyChain64(benchmark::State& state) {
  const std::uint64_t n = 1 << 12;
  const fft::TwiddleTable tw(n, fft::TwiddleLayout::kLinear);
  auto chain = random_signal(64, 1);
  for (auto _ : state) {
    fft::butterfly_chain(chain, 0, 1, 0, 6, 12, tw);
    benchmark::DoNotOptimize(chain.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 192);  // butterflies
}
BENCHMARK(BM_ButterflyChain64);

void BM_ButterflyChain64Split(benchmark::State& state) {
  const std::uint64_t n = 1 << 12;
  const fft::TwiddleTable tw(n, fft::TwiddleLayout::kLinear);
  auto chain = random_signal(64, 1);
  fft::KernelScratch scratch(64);
  for (std::uint64_t q = 0; q < 64; ++q) {
    scratch.re[q] = chain[q].real();
    scratch.im[q] = chain[q].imag();
  }
  for (auto _ : state) {
    fft::butterfly_chain_split(scratch.re.data(), scratch.im.data(), 64, 0, 1, 0, 6,
                               12, tw, scratch.tw_re.data(), scratch.tw_im.data());
    benchmark::DoNotOptimize(scratch.re.data());
    benchmark::DoNotOptimize(scratch.im.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 192);  // butterflies
}
BENCHMARK(BM_ButterflyChain64Split);

void BM_RunCodelet(benchmark::State& state) {
  const std::uint64_t n = 1 << 15;
  const unsigned r = static_cast<unsigned>(state.range(0));
  const fft::FftPlan plan(n, r);
  const fft::TwiddleTable tw(n, fft::TwiddleLayout::kLinear);
  auto data = random_signal(n, 2);
  fft::KernelScratch scratch(plan.radix());
  std::uint64_t task = 0;
  for (auto _ : state) {
    fft::run_codelet(plan, 0, task, data, tw, scratch);
    task = (task + 1) % plan.tasks_per_stage();
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(plan.radix()));
}
BENCHMARK(BM_RunCodelet)->Arg(3)->Arg(6);

void BM_RunCodeletScalar(benchmark::State& state) {
  const std::uint64_t n = 1 << 15;
  const unsigned r = static_cast<unsigned>(state.range(0));
  const fft::FftPlan plan(n, r);
  const fft::TwiddleTable tw(n, fft::TwiddleLayout::kLinear);
  auto data = random_signal(n, 2);
  std::vector<cplx> scratch(plan.radix());
  std::uint64_t task = 0;
  for (auto _ : state) {
    fft::run_codelet_scalar(plan, 0, task, data, tw, scratch);
    task = (task + 1) % plan.tasks_per_stage();
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(plan.radix()));
}
BENCHMARK(BM_RunCodeletScalar)->Arg(3)->Arg(6);

// ---------------------------------------------------------------------------
// Supporting kernels.

void BM_BitReversal(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 3);
  for (auto _ : state) {
    fft::bit_reverse_permute(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_BitReversal)->Arg(12)->Arg(16)->Arg(20);

void BM_TwiddleTableBuild(benchmark::State& state) {
  const std::uint64_t n = std::uint64_t{1} << state.range(0);
  const auto layout = state.range(1) ? fft::TwiddleLayout::kBitReversed
                                     : fft::TwiddleLayout::kLinear;
  for (auto _ : state) {
    fft::TwiddleTable tw(n, layout);
    benchmark::DoNotOptimize(tw.storage().data());
  }
}
BENCHMARK(BM_TwiddleTableBuild)->Args({16, 0})->Args({16, 1})->Args({20, 0});

void BM_PoolPushPop(benchmark::State& state) {
  codelet::ConcurrentPool pool(codelet::PoolPolicy::kLifo);
  for (auto _ : state) {
    pool.push({0, 1});
    benchmark::DoNotOptimize(pool.try_pop());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PoolPushPop);

// ---------------------------------------------------------------------------
// Runtime codelet throughput under contention: a binary fan-out workload
// (64 roots fanning out to the given depth, near-empty bodies so scheduling
// cost dominates) driven by (a) the legacy architecture — one mutex+condvar
// pool, worker threads respawned every phase, exactly what run_phase did
// before the work-stealing rewrite — and (b) the work-stealing HostRuntime
// with its persistent team. Depth 0 (64 codelets — exactly one coarse stage
// of a 4096-point radix-64 FFT) isolates phase-dispatch cost; depth 3
// (960 codelets) is a realistic mid-size phase; depth 8 (32704 codelets)
// is the steady-state comparison of the two schedulers.

constexpr std::uint64_t kFanOutRoots = 64;

constexpr std::int64_t fan_out_total(std::uint32_t depth) {
  return static_cast<std::int64_t>(kFanOutRoots) * ((1u << (depth + 1)) - 1);
}

// Faithful copy of the pre-work-stealing host runtime's phase driver.
class LegacyMutexPoolPhase {
 public:
  explicit LegacyMutexPoolPhase(std::span<const CodeletKey> seeds)
      : items_(seeds.begin(), seeds.end()) {}

  void push(CodeletKey ready) {
    {
      std::lock_guard lock(mutex_);
      items_.push_back(ready);
    }
    cv_.notify_one();
  }

  bool pop(CodeletKey& out) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || executing_ == 0; });
    if (items_.empty()) return false;
    out = items_.back();
    items_.pop_back();
    ++executing_;
    return true;
  }

  void done() {
    bool quiescent = false;
    {
      std::lock_guard lock(mutex_);
      --executing_;
      quiescent = executing_ == 0 && items_.empty();
    }
    if (quiescent)
      cv_.notify_all();
    else
      cv_.notify_one();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<CodeletKey> items_;
  unsigned executing_ = 0;
};

void fan_out_legacy(unsigned workers, std::uint32_t depth) {
  std::vector<CodeletKey> seeds;
  for (std::uint64_t i = 0; i < kFanOutRoots; ++i) seeds.push_back({0, i});
  LegacyMutexPoolPhase pool(seeds);
  std::atomic<std::int64_t> executed{0};
  auto worker_fn = [&] {
    CodeletKey c;
    while (pool.pop(c)) {
      if (c.stage < depth) {
        pool.push({c.stage + 1, c.index * 2});
        pool.push({c.stage + 1, c.index * 2 + 1});
      }
      executed.fetch_add(1, std::memory_order_relaxed);
      pool.done();
    }
  };
  // The legacy run_phase spawned its team per call and joined it at the
  // end — part of the architecture under test, so part of the timing.
  std::vector<std::thread> threads;
  for (unsigned w = 1; w < workers; ++w) threads.emplace_back(worker_fn);
  worker_fn();
  for (auto& t : threads) t.join();
  if (executed.load() != fan_out_total(depth)) std::abort();
}

void BM_MutexPoolRuntime(benchmark::State& state) {
  const unsigned workers = static_cast<unsigned>(state.range(0));
  const auto depth = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) fan_out_legacy(workers, depth);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          fan_out_total(depth));
}
BENCHMARK(BM_MutexPoolRuntime)
    ->ArgNames({"workers", "depth"})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})
    ->Args({1, 3})->Args({2, 3})->Args({4, 3})
    ->Args({1, 8})->Args({2, 8})->Args({4, 8})
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

void BM_WorkStealingRuntime(benchmark::State& state) {
  const unsigned workers = static_cast<unsigned>(state.range(0));
  const auto depth = static_cast<std::uint32_t>(state.range(1));
  codelet::HostRuntime rt(workers);  // persistent team, built once
  std::vector<CodeletKey> seeds;
  for (std::uint64_t i = 0; i < kFanOutRoots; ++i) seeds.push_back({0, i});
  for (auto _ : state) {
    rt.run_phase(seeds, codelet::PoolPolicy::kLifo,
                 [depth](CodeletKey c, unsigned, codelet::Pusher& push) {
                   if (c.stage < depth) {
                     const CodeletKey kids[2] = {{c.stage + 1, c.index * 2},
                                                 {c.stage + 1, c.index * 2 + 1}};
                     push.push_batch(kids);
                   }
                 });
  }
  if (rt.executed() !=
      static_cast<std::uint64_t>(fan_out_total(depth)) * state.iterations())
    std::abort();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          fan_out_total(depth));
}
BENCHMARK(BM_WorkStealingRuntime)
    ->ArgNames({"workers", "depth"})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})
    ->Args({1, 3})->Args({2, 3})->Args({4, 3})
    ->Args({1, 8})->Args({2, 8})->Args({4, 8})
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// End-to-end transforms.

void BM_HostFftFine(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 4);
  fft::HostFftOptions opts;
  opts.workers = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    fft::forward(data, opts, fft::Variant::kFine);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_HostFftFine)->Args({14, 1})->Args({14, 2})->Args({16, 2});

void BM_HostFftCoarse(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 5);
  fft::HostFftOptions opts;
  opts.workers = 2;
  for (auto _ : state) {
    fft::forward(data, opts, fft::Variant::kCoarse);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_HostFftCoarse)->Arg(14);

void BM_StockhamFft(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 7);
  for (auto _ : state) {
    auto out = fft::fft_stockham(data);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_StockhamFft)->Arg(14)->Arg(16);

void BM_RealFft(benchmark::State& state) {
  const std::uint64_t n = std::uint64_t{1} << state.range(0);
  util::Xoshiro256 rng(8);
  std::vector<double> signal(n);
  for (auto& x : signal) x = rng.next_double() * 2 - 1;
  fft::HostFftOptions opts;
  opts.workers = 2;
  for (auto _ : state) {
    auto spec = fft::real_forward(signal, opts);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_RealFft)->Arg(14)->Arg(16);

void BM_SerialReferenceFft(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 6);
  for (auto _ : state) {
    fft::fft_serial_inplace(data);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_SerialReferenceFft)->Arg(14)->Arg(16);

// ---------------------------------------------------------------------------
// Executor: cached-plan steady state vs the cold per-call setup path, and
// batched dispatch vs a loop of cached single transforms.

// The pre-executor cost model: every call pays plan construction, the
// O(N) trig twiddle build, and a worker-team spawn + join. A fresh
// executor per iteration reproduces that (conservatively: the old code
// spawned TWO teams per call — one for the bit-reversal, one in
// fft_host — so this proxy understates the pre-executor cost).
//
// Arg = transform size N. Setup amortization dominates at small/medium
// N; at large N on this single-core benchmarking VM the cached path is
// already >90% pure butterfly compute, so the ratio narrows there.
void BM_ExecutorForwardCold(benchmark::State& state) {
  auto data = random_signal(static_cast<std::uint64_t>(state.range(0)), 9);
  fft::HostFftOptions opts;
  opts.workers = 4;
  for (auto _ : state) {
    fft::FftExecutor ex;
    ex.forward(data, opts);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
// Thread spawn/join cost is long-tailed; a larger MinTime keeps the
// mean stable enough for the 30% bench_check gate.
BENCHMARK(BM_ExecutorForwardCold)
    ->Arg(256)
    ->Arg(4096)
    ->MinTime(0.5)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ExecutorForwardCached(benchmark::State& state) {
  auto data = random_signal(static_cast<std::uint64_t>(state.range(0)), 9);
  fft::HostFftOptions opts;
  opts.workers = 4;
  fft::FftExecutor ex;
  ex.forward(data, opts);  // warm: plan + twiddles cached, team resident
  for (auto _ : state) {
    ex.forward(data, opts);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_ExecutorForwardCached)
    ->Arg(256)
    ->Arg(4096)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// The f32 path at the same sizes, same warm-cache protocol: half the
// element width means twice the butterflies per cache line and half the
// twiddle-table bytes, so at cache-resident N the cached f32 transform
// runs ~1.5x faster than the f64 row above (the BENCH_runtime.json
// gate requires >= 1.3x at N=4096).
void BM_ExecutorForwardCachedF32(benchmark::State& state) {
  auto data = random_signal32(static_cast<std::uint64_t>(state.range(0)), 9);
  fft::HostFftOptions opts;
  opts.workers = 4;
  fft::FftExecutor ex;
  ex.forward(std::span<cplx32>(data), opts);  // warm: f32 plan entry + team
  for (auto _ : state) {
    ex.forward(std::span<cplx32>(data), opts);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_ExecutorForwardCachedF32)
    ->Arg(256)
    ->Arg(4096)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// SIMD kernel-dispatch pair: the same cached-forward protocol as the
// rows above, but with the kernel table pinned — Simd rows run the best
// table cpuid supports (what a fresh process dispatches to), Scalar rows
// force the scalar oracle table. The spread between a Simd row and its
// Scalar twin is the explicit-SIMD payoff with every other cost (plan
// cache, twiddles, team) identical; the opt-in bench gate requires the
// f32 pair at N=4096 to stay >= 1.3x apart (tools/CMakeLists.txt ratio
// args). The ISA is forced AFTER executor construction — the constructor
// re-resolves from C64FFT_ISA — and restored to the env resolution after
// the timing loop so later benchmarks see the default dispatch.
template <typename Complex>
void executor_cached_isa_bench(benchmark::State& state, util::IsaLevel level,
                               std::vector<Complex> data) {
  fft::HostFftOptions opts;
  // One worker, unlike the rows above: the pair isolates the kernel-table
  // spread, and phase-barrier overhead at workers > num_cpus would bury
  // the butterfly time it exists to compare.
  opts.workers = 1;
  fft::FftExecutor ex;
  fft::kernels::set_kernel_isa(level);
  ex.forward(std::span<Complex>(data), opts);  // warm: plan + team resident
  for (auto _ : state) {
    ex.forward(std::span<Complex>(data), opts);
    benchmark::DoNotOptimize(data.data());
  }
  fft::kernels::reset_kernel_isa_from_env();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}

void BM_ExecutorForwardCachedSimdF32(benchmark::State& state) {
  executor_cached_isa_bench(
      state, util::best_supported_isa(),
      random_signal32(static_cast<std::uint64_t>(state.range(0)), 9));
}
BENCHMARK(BM_ExecutorForwardCachedSimdF32)
    ->Arg(4096)->UseRealTime()->Unit(benchmark::kMicrosecond);

void BM_ExecutorForwardCachedScalarF32(benchmark::State& state) {
  executor_cached_isa_bench(
      state, util::IsaLevel::kScalar,
      random_signal32(static_cast<std::uint64_t>(state.range(0)), 9));
}
BENCHMARK(BM_ExecutorForwardCachedScalarF32)
    ->Arg(4096)->UseRealTime()->Unit(benchmark::kMicrosecond);

void BM_ExecutorForwardCachedSimdF64(benchmark::State& state) {
  executor_cached_isa_bench(
      state, util::best_supported_isa(),
      random_signal(static_cast<std::uint64_t>(state.range(0)), 9));
}
BENCHMARK(BM_ExecutorForwardCachedSimdF64)
    ->Arg(4096)->UseRealTime()->Unit(benchmark::kMicrosecond);

void BM_ExecutorForwardCachedScalarF64(benchmark::State& state) {
  executor_cached_isa_bench(
      state, util::IsaLevel::kScalar,
      random_signal(static_cast<std::uint64_t>(state.range(0)), 9));
}
BENCHMARK(BM_ExecutorForwardCachedScalarF64)
    ->Arg(4096)->UseRealTime()->Unit(benchmark::kMicrosecond);

// f32 batched dispatch, mirroring BM_ExecutorBatchSubmit: the batch
// machinery (shared counter templates, one phase per batch) is
// precision-independent, so the f32 row should show the same
// batch-vs-loop shape at half the per-transform bandwidth.
void BM_ExecutorBatchSubmitF32(benchmark::State& state) {
  std::vector<std::vector<cplx32>> bufs;
  bufs.reserve(256);
  for (std::size_t b = 0; b < 256; ++b)
    bufs.push_back(random_signal32(static_cast<std::uint64_t>(state.range(0)), 100 + b));
  std::vector<std::span<cplx32>> spans;
  spans.reserve(bufs.size());
  for (auto& buf : bufs) spans.emplace_back(buf);
  fft::HostFftOptions opts;
  opts.workers = 4;
  fft::FftExecutor ex;
  ex.forward(std::span<cplx32>(bufs[0]), opts);  // warm
  for (auto _ : state) {
    ex.forward_batch(spans, opts);
    benchmark::DoNotOptimize(bufs.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bufs.size()));
}
BENCHMARK(BM_ExecutorBatchSubmitF32)
    ->Arg(256)
    ->Arg(1024)
    ->MinTime(0.25)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Batched dispatch: one forward_batch submission vs a loop of cached
// single calls over the same buffers. Arg = per-transform size N, with
// a fixed batch of 256 transforms. The batch path seeds one root
// codelet per transform (bit-reversal + stage-seed fan-out on the
// owning worker), replacing ~stages phase barriers per transform with
// one phase for the whole batch.
constexpr std::size_t kBatchCount = 256;

std::vector<std::vector<cplx>> batch_signals(std::uint64_t n) {
  std::vector<std::vector<cplx>> bufs;
  bufs.reserve(kBatchCount);
  for (std::size_t b = 0; b < kBatchCount; ++b)
    bufs.push_back(random_signal(n, 100 + b));
  return bufs;
}

void BM_ExecutorBatchLoop(benchmark::State& state) {
  auto bufs = batch_signals(static_cast<std::uint64_t>(state.range(0)));
  fft::HostFftOptions opts;
  opts.workers = 4;
  fft::FftExecutor ex;
  ex.forward(bufs[0], opts);  // warm
  for (auto _ : state) {
    for (auto& buf : bufs) ex.forward(buf, opts);
    benchmark::DoNotOptimize(bufs.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatchCount);
}
BENCHMARK(BM_ExecutorBatchLoop)
    ->Arg(256)
    ->Arg(1024)
    ->MinTime(0.25)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ExecutorBatchSubmit(benchmark::State& state) {
  auto bufs = batch_signals(static_cast<std::uint64_t>(state.range(0)));
  std::vector<std::span<cplx>> spans;
  spans.reserve(bufs.size());
  for (auto& buf : bufs) spans.emplace_back(buf);
  fft::HostFftOptions opts;
  opts.workers = 4;
  fft::FftExecutor ex;
  ex.forward(bufs[0], opts);  // warm
  for (auto _ : state) {
    ex.forward_batch(spans, opts);
    benchmark::DoNotOptimize(bufs.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatchCount);
}
BENCHMARK(BM_ExecutorBatchSubmit)
    ->Arg(256)
    ->Arg(1024)
    ->MinTime(0.25)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Transpose kernels: the naive element loop streams one array and strides
// the other by a power of two — the strided stream folds onto a handful
// of cache sets (see fft_lint --cache-sets) and every line is evicted
// before its neighbors are touched. The blocked kernels are what fft2d
// and the four-step path use. Arg = log2 of the square matrix edge.

void BM_TransposeNaive(benchmark::State& state) {
  const std::uint64_t edge = std::uint64_t{1} << state.range(0);
  const auto src = random_signal(edge * edge, 11);
  std::vector<cplx> dst(src.size());
  for (auto _ : state) {
    for (std::uint64_t r = 0; r < edge; ++r)
      for (std::uint64_t c = 0; c < edge; ++c)
        dst[c * edge + r] = src[r * edge + c];
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * src.size() * sizeof(cplx)));
}
BENCHMARK(BM_TransposeNaive)->Arg(8)->Arg(9)->Arg(10);

void BM_TransposeBlocked(benchmark::State& state) {
  const std::uint64_t edge = std::uint64_t{1} << state.range(0);
  const auto src = random_signal(edge * edge, 11);
  std::vector<cplx> dst(src.size());
  for (auto _ : state) {
    fft::transpose_blocked(src, dst, edge, edge);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * src.size() * sizeof(cplx)));
}
BENCHMARK(BM_TransposeBlocked)->Arg(8)->Arg(9)->Arg(10);

void BM_TransposeInplaceSquare(benchmark::State& state) {
  const std::uint64_t edge = std::uint64_t{1} << state.range(0);
  auto data = random_signal(edge * edge, 12);
  for (auto _ : state) {
    fft::transpose_inplace_square(data, edge);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * data.size() * sizeof(cplx)));
}
BENCHMARK(BM_TransposeInplaceSquare)->Arg(8)->Arg(9)->Arg(10);

void BM_TransposeTwiddleBlocked(benchmark::State& state) {
  const std::uint64_t edge = std::uint64_t{1} << state.range(0);
  const auto src = random_signal(edge * edge, 13);
  std::vector<cplx> dst(src.size());
  for (auto _ : state) {
    fft::transpose_twiddle_blocked(src, dst, edge, edge,
                                   fft::TwiddleDirection::kForward);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * src.size() * sizeof(cplx)));
}
BENCHMARK(BM_TransposeTwiddleBlocked)->Arg(8)->Arg(9);

// ---------------------------------------------------------------------------
// Four-step vs classic at large N: the pair behind the executor's default
// routing threshold (kDefaultFourStepThresholdLog2) and the
// BENCH_runtime.json large-N numbers. Both executors are warmed so the
// steady state is measured; the classic executor pins the threshold to 0
// (never four-step), the other to 2 (always four-step). Arg = log2 N.

void BM_ClassicFftLargeN(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 14);
  fft::ExecutorOptions eo;
  eo.workers = 2;
  eo.four_step_threshold_log2 = 0;
  eo.hierarchical_threshold_log2 = 0;  // pin: measure the classic path only
  fft::FftExecutor ex(eo);
  fft::HostFftOptions opts;
  opts.workers = 2;
  ex.forward(data, opts);  // warm: plan + O(N) twiddle table resident
  for (auto _ : state) {
    ex.forward(data, opts);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_ClassicFftLargeN)
    ->Arg(14)->Arg(16)->Arg(18)->Arg(20)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_FourStepFftLargeN(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 14);
  fft::ExecutorOptions eo;
  eo.workers = 2;
  eo.four_step_threshold_log2 = 2;
  eo.hierarchical_threshold_log2 = 0;  // pin: measure four-step, not the
                                       // hierarchical path that outranks it
  fft::FftExecutor ex(eo);
  fft::HostFftOptions opts;
  opts.workers = 2;
  ex.forward(data, opts);  // warm: sub-plans + scratch resident
  for (auto _ : state) {
    ex.forward(data, opts);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_FourStepFftLargeN)
    ->Arg(14)->Arg(16)->Arg(18)->Arg(20)->Arg(22)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Hierarchical pipelined path at enormous N: the row behind the executor's
// default hierarchical routing threshold
// (kDefaultHierarchicalThresholdLog2) and the 1.25x four-step ratio gate
// at 2^22 (tools/CMakeLists.txt bench_check). Same warmed protocol as the
// pair above; identical butterfly work to four-step at these sizes (the
// default leaf gives the same split), so the delta is pure scheduling:
// three pipelined streaming passes against five barrier-phased ones.
void BM_HierarchicalFftLargeN(benchmark::State& state) {
  auto data = random_signal(std::uint64_t{1} << state.range(0), 14);
  fft::ExecutorOptions eo;
  eo.workers = 2;
  eo.hierarchical_threshold_log2 = 2;  // always route hierarchical
  fft::FftExecutor ex(eo);
  fft::HostFftOptions opts;
  opts.workers = 2;
  ex.forward(data, opts);  // warm: sub-plans + both scratch matrices
  for (auto _ : state) {
    ex.forward(data, opts);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_HierarchicalFftLargeN)
    ->Arg(20)->Arg(22)->Arg(24)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Arbitrary-N routing payoff: the factorization-driven mixed-radix path at
// N = 1,000,000 (stages [8,8,5,5,5,5,5,5] from 2^6 * 5^6) against what the
// pow2-only core forced before the refactor — zero-pad to the next power
// of two (2^20) and transform that. The padded row pays its O(N) pad
// copy every iteration: the copy is part of the workaround's cost, and
// it still buys only an approximation (padding changes the spectrum;
// recovering exact bins needs a chirp-z pass on top, not charged here).
// Same warmed-executor protocol and worker count as the LargeN rows; the
// opt-in bench gate (RATIO3 in tools/CMakeLists.txt) pins exact-N as
// faster than the padded transform.
constexpr std::uint64_t kMillionN = 1000000;

void BM_MixedRadixFft1M(benchmark::State& state) {
  auto data = random_signal(kMillionN, 15);
  fft::HostFftOptions opts;
  opts.workers = 2;
  fft::FftExecutor ex;
  ex.forward(data, opts);  // warm: factorization plan + flat twiddles
  for (auto _ : state) {
    ex.forward(data, opts);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kMillionN));
}
BENCHMARK(BM_MixedRadixFft1M)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_PaddedPow2Fft1M(benchmark::State& state) {
  constexpr std::uint64_t kPadded = std::uint64_t{1} << 20;
  const auto signal = random_signal(kMillionN, 15);
  std::vector<cplx> padded(kPadded);
  fft::HostFftOptions opts;
  opts.workers = 2;
  fft::FftExecutor ex;
  std::copy(signal.begin(), signal.end(), padded.begin());
  ex.forward(padded, opts);  // warm: pow2 plan for 2^20 resident
  for (auto _ : state) {
    std::copy(signal.begin(), signal.end(), padded.begin());
    std::fill(padded.begin() + static_cast<std::ptrdiff_t>(kMillionN),
              padded.end(), cplx{});
    ex.forward(padded, opts);
    benchmark::DoNotOptimize(padded.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kMillionN));
}
BENCHMARK(BM_PaddedPow2Fft1M)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
