// Table I: the five tested FFT versions (six result rows) with their
// descriptions, plus a reference measurement of each at one configuration
// so the table is self-validating.

#include <cstdint>
#include <iostream>

#include "bench/bench_common.hpp"
#include "simfft/experiment.hpp"

using namespace c64fft;

namespace {
const char* description(simfft::SimVariant v) {
  switch (v) {
    case simfft::SimVariant::kCoarse:
      return "Coarse-grain synchronization (Alg. 1, barrier per stage)";
    case simfft::SimVariant::kCoarseHash:
      return "Coarse-grain with hashed twiddle factor array (Sec. IV-B)";
    case simfft::SimVariant::kFineWorst:
      return "Worst execution time for fine-grain synchronization (Alg. 2)";
    case simfft::SimVariant::kFineBest:
      return "Best execution time for fine-grain synchronization (Alg. 2)";
    case simfft::SimVariant::kFineHash:
      return "Fine-grain with hashed twiddle factor array (Sec. IV-B)";
    case simfft::SimVariant::kFineGuided:
      return "Guided fine-grain synchronization (Alg. 3)";
    default:
      return "";
  }
}
}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Table I: tested FFT versions, with a reference run of each");
  cli.add_int("logn", 15, "log2 of the reference input size");
  bench::add_chip_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  const auto cfg = bench::chip_from_cli(cli);
  const std::uint64_t n = std::uint64_t{1} << cli.get_int("logn");

  bench::banner("Table I — versions and reference run (N=2^" +
                std::to_string(cli.get_int("logn")) + ", " +
                std::to_string(cfg.thread_units) + " TUs)");
  util::TextTable table({"name", "description", "cycles", "gflops", "bank0 share"});
  const auto rows = simfft::run_all_variants(n, cfg);
  for (const auto& row : rows) {
    simfft::SimVariant v{};
    for (int i = 0; i <= static_cast<int>(simfft::SimVariant::kFineGuided); ++i)
      if (simfft::to_string(static_cast<simfft::SimVariant>(i)) == row.name)
        v = static_cast<simfft::SimVariant>(i);
    std::uint64_t total = 0;
    for (auto t : row.bank_totals) total += t;
    table.add_row({row.name, description(v), util::TextTable::num(row.sim.cycles),
                   util::TextTable::num(row.gflops, 3),
                   util::TextTable::num(
                       100.0 * static_cast<double>(row.bank_totals[0]) /
                           static_cast<double>(total),
                       1) +
                       "%"});
  }
  bench::emit(table, cli);
  return 0;
}
