// Fig. 1: "Access rates of the 4 off-chip memory banks in the coarse-grain
// FFT algorithm. Bank 0 is accessed three times more than the other banks,
// causing contention."

#include "bench/fig_bank_rates.hpp"

int main(int argc, char** argv) {
  return c64fft::bench::run_bank_rate_figure("Fig. 1", c64fft::simfft::SimVariant::kCoarse,
                                             argc, argv);
}
