// Fig. 9: "Performance of 5 versions of FFT algorithms on C64 for an input
// size of 2^15 data elements and 64-point butterfly codelets" vs the
// number of thread units (20, 40, ..., 140, 156).

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "simfft/experiment.hpp"

using namespace c64fft;

int main(int argc, char** argv) {
  util::CliParser cli(
      "Fig. 9: GFLOPS of the six Table-I result rows vs thread-unit count "
      "at N=2^15 (paper: 20,40,...,140,156 TUs)");
  cli.add_int("logn", 15, "log2 of the input size");
  bench::add_chip_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  const std::uint64_t n = std::uint64_t{1} << cli.get_int("logn");
  bench::banner("Fig. 9 — GFLOPS vs thread units, N=2^" +
                std::to_string(cli.get_int("logn")));
  util::TextTable table({"TUs", "coarse", "coarse hash", "fine worst", "fine best",
                         "fine hash", "fine guided", "guided/coarse"});

  std::vector<unsigned> tu_counts{20, 40, 60, 80, 100, 120, 140, 156};
  for (unsigned tus : tu_counts) {
    auto cfg = bench::chip_from_cli(cli);
    cfg.thread_units = tus;
    const auto rows = simfft::run_all_variants(n, cfg);
    const double coarse = rows[static_cast<int>(simfft::SimVariant::kCoarse)].gflops;
    const double guided =
        rows[static_cast<int>(simfft::SimVariant::kFineGuided)].gflops;
    std::vector<std::string> cells{util::TextTable::num(std::uint64_t{tus})};
    for (const auto& row : rows) cells.push_back(util::TextTable::num(row.gflops, 3));
    cells.push_back(util::TextTable::num(guided / coarse, 3));
    table.add_row(std::move(cells));
    std::cerr << "  [fig9] " << tus << " TUs done\n";
  }
  bench::emit(table, cli);
  return 0;
}
