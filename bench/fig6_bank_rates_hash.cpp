// Fig. 6: "Access rates of the 4 off-chip memory banks in the fine-grain
// FFT algorithm with randomized twiddle factor addresses. Using the hash
// function, all banks are accessed in a uniform manner."

#include "bench/fig_bank_rates.hpp"

int main(int argc, char** argv) {
  return c64fft::bench::run_bank_rate_figure(
      "Fig. 6", c64fft::simfft::SimVariant::kFineHash, argc, argv);
}
