// Fig. 7: "the best performance of the fine-grain FFT algorithm under
// various codelet sizes ... 64-point FFT codelets perform best" — sizes
// above 64 exceed the scratchpad and spill.

#include <cstdint>
#include <iostream>

#include "bench/bench_common.hpp"
#include "c64/peak_model.hpp"
#include "fft/plan.hpp"
#include "simfft/experiment.hpp"
#include "simfft/footprint.hpp"

using namespace c64fft;

int main(int argc, char** argv) {
  util::CliParser cli(
      "Fig. 7: fine-grain FFT performance (GFLOPS) vs codelet size (data "
      "points per codelet), with the memory-bound theoretical peak per size");
  cli.add_int("logn", 18, "log2 of the input size");
  bench::add_chip_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  const auto cfg = bench::chip_from_cli(cli);
  const std::uint64_t n = std::uint64_t{1} << cli.get_int("logn");
  c64::PeakModel peak{cfg};

  bench::banner("Fig. 7 — GFLOPS vs codelet size, N=2^" +
                std::to_string(cli.get_int("logn")) + ", " +
                std::to_string(cfg.thread_units) + " TUs");
  util::TextTable table(
      {"codelet_size", "gflops", "peak_gflops", "spills", "cycles"});

  double best_gflops = 0;
  std::uint64_t best_size = 0;
  // r = 1 is the EARTH-style 2-point task of the related-work comparison
  // (Thulasiraman et al.): one butterfly level per propagation step.
  for (unsigned r = 1; r <= 7; ++r) {
    const std::uint64_t size = std::uint64_t{1} << r;
    simfft::SimFftOptions opts;
    opts.radix_log2 = r;
    // "Best performance": the better of the two natural pool orders (the
    // full ordering sweep adds minutes for the small radices and never
    // changes the winner here).
    double gflops = 0;
    std::uint64_t cycles = 0;
    for (auto policy : {codelet::PoolPolicy::kLifo, codelet::PoolPolicy::kFifo}) {
      opts.ordering = {policy, fft::SeedOrder::kNatural, 1};
      const auto run = simfft::run_fft_sim(simfft::SimVariant::kFineCustom, n, cfg, opts);
      if (run.gflops > gflops) {
        gflops = run.gflops;
        cycles = run.sim.cycles;
      }
    }
    const fft::FftPlan plan(n, r);
    simfft::FootprintBuilder fp(plan, cfg, fft::TwiddleLayout::kLinear);
    table.add_row({util::TextTable::num(size), util::TextTable::num(gflops, 3),
                   util::TextTable::num(peak.peak_gflops_asymptotic(size), 3),
                   fp.spills() ? "yes" : "no", util::TextTable::num(cycles)});
    if (gflops > best_gflops) {
      best_gflops = gflops;
      best_size = size;
    }
  }
  bench::emit(table, cli);
  std::cout << "best codelet size: " << best_size << " points (paper: 64)\n";
  return 0;
}
