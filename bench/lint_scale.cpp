// How the static analyzer scales with plan size: model build, graph
// verification, race detection and bank lint timed separately per N.
// fft_lint runs in CI on every plan variant, so its cost curve is a
// first-class performance surface — this table keeps it honest (the race
// check is the quadratic-risk stage; the footprint inversion keeps it
// near-linear in practice).

#include <chrono>
#include <cstdint>
#include <iostream>

#include "analysis/analyzer.hpp"
#include "bench/bench_common.hpp"
#include "fft/plan.hpp"

using namespace c64fft;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Static analyzer (fft_lint) scaling across plan sizes");
  cli.add_int("min-logn", 8, "smallest log2(N)");
  cli.add_int("max-logn", 16, "largest log2(N)");
  cli.add_int("radix-log2", 6, "codelet radix (paper: 6)");
  cli.add_flag("csv", "emit CSV instead of an aligned table");
  if (!cli.parse(argc, argv)) return 0;

  const auto r = static_cast<unsigned>(cli.get_int("radix-log2"));
  bench::banner("fft_lint scaling, radix 2^" + std::to_string(r));
  util::TextTable table(
      {"logN", "codelets", "edges", "build_ms", "graph_ms", "races_ms", "banks_ms",
       "order_queries", "verdict"});

  for (std::int64_t logn = cli.get_int("min-logn"); logn <= cli.get_int("max-logn");
       ++logn) {
    const std::uint64_t n = std::uint64_t{1} << logn;
    if (n < (std::uint64_t{1} << r)) continue;
    const fft::FftPlan plan(n, r);

    auto t0 = std::chrono::steady_clock::now();
    const analysis::PlanModel model = analysis::build_model(
        plan, fft::TwiddleLayout::kLinear, analysis::Schedule::kCounters);
    const double build_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const analysis::CheckResult graph = analysis::verify_graph(model);
    const double graph_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const analysis::CheckResult races = analysis::detect_races(model);
    const double races_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const analysis::CheckResult banks = analysis::lint_banks(model);
    const double banks_ms = ms_since(t0);

    const bool clean = graph.errors() == 0 && races.errors() == 0;
    table.add_row({util::TextTable::num(static_cast<std::uint64_t>(logn)),
                   util::TextTable::num(model.codelets.size()),
                   util::TextTable::num(model.graph.edge_count()),
                   util::TextTable::num(build_ms, 2), util::TextTable::num(graph_ms, 2),
                   util::TextTable::num(races_ms, 2), util::TextTable::num(banks_ms, 2),
                   util::TextTable::num(races.metrics.at("order_queries"), 0),
                   clean ? "clean" : "DEFECT"});
  }
  bench::emit(table, cli);
  return 0;
}
