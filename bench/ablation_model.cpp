// Ablation of the memory-model calibration (DESIGN.md §2.1 /
// EXPERIMENTS.md §Calibration): sweep each load-bearing knob around its
// default and report how coarse, fine best (LIFO/natural) and guided
// respond at N=2^15 — the quantitative backing for the chosen defaults.

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "simfft/experiment.hpp"

using namespace c64fft;

namespace {

struct Point {
  std::string label;
  std::function<void(c64::ChipConfig&)> apply;
};

void sweep(const std::string& name, const std::vector<Point>& points, std::uint64_t n,
           const c64::ChipConfig& base, util::TextTable& table) {
  for (const auto& p : points) {
    auto cfg = base;
    p.apply(cfg);
    simfft::SimFftOptions opts;
    opts.ordering = {codelet::PoolPolicy::kLifo, fft::SeedOrder::kNatural, 1};
    const auto coarse = simfft::run_fft_sim(simfft::SimVariant::kCoarse, n, cfg, opts);
    const auto fine = simfft::run_fft_sim(simfft::SimVariant::kFineCustom, n, cfg, opts);
    const auto guided = simfft::run_fft_sim(simfft::SimVariant::kFineGuided, n, cfg, opts);
    const auto hash = simfft::run_fft_sim(simfft::SimVariant::kFineHash, n, cfg, opts);
    table.add_row({name, p.label, util::TextTable::num(coarse.gflops, 3),
                   util::TextTable::num(fine.gflops, 3),
                   util::TextTable::num(guided.gflops, 3),
                   util::TextTable::num(hash.gflops, 3),
                   util::TextTable::num(guided.gflops / coarse.gflops, 3)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Ablation of the C64 model knobs: GFLOPS of coarse / fine(lifo,nat) / "
      "guided / fine-hash per setting, plus the guided:coarse ratio");
  cli.add_int("logn", 15, "log2 of the input size");
  bench::add_chip_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  const auto base = bench::chip_from_cli(cli);
  const std::uint64_t n = std::uint64_t{1} << cli.get_int("logn");

  bench::banner("Model ablations, N=2^" + std::to_string(cli.get_int("logn")) + ", " +
                std::to_string(base.thread_units) + " TUs (* = default)");
  util::TextTable table(
      {"knob", "setting", "coarse", "fine", "guided", "fine hash", "guided/coarse"});

  sweep("max_outstanding",
        {{"1 (blocking loads)*", [](c64::ChipConfig& c) { c.max_outstanding = 1; }},
         {"2", [](c64::ChipConfig& c) { c.max_outstanding = 2; }},
         {"8 (deep pipeline)", [](c64::ChipConfig& c) { c.max_outstanding = 8; }}},
        n, base, table);

  sweep("dram_latency",
        {{"25", [](c64::ChipConfig& c) { c.dram_latency = 25; }},
         {"100*", [](c64::ChipConfig& c) { c.dram_latency = 100; }},
         {"200", [](c64::ChipConfig& c) { c.dram_latency = 200; }}},
        n, base, table);

  sweep("hol_window",
        {{"1 (strict HOL)", [](c64::ChipConfig& c) { c.hol_window = 1; }},
         {"16", [](c64::ChipConfig& c) { c.hol_window = 16; }},
         {"256 (per-bank)*", [](c64::ChipConfig& c) { c.hol_window = 256; }}},
        n, base, table);

  sweep("bank_queue_depth",
        {{"2 (buffer hogging)", [](c64::ChipConfig& c) { c.bank_queue_depth = 2; }},
         {"64*", [](c64::ChipConfig& c) { c.bank_queue_depth = 64; }}},
        n, base, table);

  sweep("barrier_cycles",
        {{"0", [](c64::ChipConfig& c) { c.barrier_cycles = 0; }},
         {"4096*", [](c64::ChipConfig& c) { c.barrier_cycles = 4096; }},
         {"32768", [](c64::ChipConfig& c) { c.barrier_cycles = 32768; }}},
        n, base, table);

  sweep("hash_cycles_per_bit",
        {{"0 (free hash)", [](c64::ChipConfig& c) { c.hash_cycles_per_bit = 0; }},
         {"6*", [](c64::ChipConfig& c) { c.hash_cycles_per_bit = 6; }},
         {"12", [](c64::ChipConfig& c) { c.hash_cycles_per_bit = 12; }}},
        n, base, table);

  sweep("coalesce_limit",
        {{"16 (no merging)", [](c64::ChipConfig& c) { c.coalesce_limit = 16; }},
         {"64 (line)*", [](c64::ChipConfig& c) { c.coalesce_limit = 64; }}},
        n, base, table);

  bench::emit(table, cli);
  return 0;
}
