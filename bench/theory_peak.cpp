// Section V-A, Equations (1)-(4): the closed-form theoretical peak of the
// off-chip FFT on C64 — 10 GFLOPS for 64-point tasks at 16 GB/s — and the
// per-task-size table behind the Fig. 7 discussion.

#include <cstdint>
#include <iostream>

#include "bench/bench_common.hpp"
#include "c64/peak_model.hpp"

using namespace c64fft;

int main(int argc, char** argv) {
  util::CliParser cli("Theoretical peak performance (paper Eq. 1-4)");
  cli.add_int("logn", 18, "log2 of N for the N-dependent form (Eq. 2 ceiling)");
  bench::add_chip_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  c64::PeakModel peak{bench::chip_from_cli(cli)};
  const std::uint64_t n = std::uint64_t{1} << cli.get_int("logn");

  bench::banner("Theoretical peak (Eq. 1-4), DRAM " +
                util::TextTable::num(peak.chip.total_dram_gbps(), 1) + " GB/s");
  util::TextTable table({"task_size", "bytes/task", "tasks (N=2^" +
                                          std::to_string(cli.get_int("logn")) + ")",
                         "peak_gflops(N)", "peak_gflops(asymptotic)"});
  for (unsigned r = 2; r <= 7; ++r) {
    const std::uint64_t size = std::uint64_t{1} << r;
    table.add_row({util::TextTable::num(size),
                   util::TextTable::num(c64::PeakModel::task_bytes(size)),
                   util::TextTable::num(c64::PeakModel::task_count(n, size)),
                   util::TextTable::num(peak.peak_gflops(n, size), 3),
                   util::TextTable::num(peak.peak_gflops_asymptotic(size), 3)});
  }
  bench::emit(table, cli);
  std::cout << "paper Eq. 4 headline: peak(64-point tasks) = "
            << util::TextTable::num(peak.peak_gflops_asymptotic(64), 2)
            << " GFLOPS (paper: 10)\n"
            << "compute-bound ceiling: "
            << util::TextTable::num(peak.compute_peak_gflops(), 1) << " GFLOPS\n";
  return 0;
}
