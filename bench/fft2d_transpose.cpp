// Extension experiment (not a paper figure): 2-D FFT on the simulated C64
// with naive vs tiled transpose. The transpose's column reads stride by a
// multiple of the 64 B interleave — the same single-bank pathology the
// paper diagnoses for the twiddle array — and tiling fixes it the same
// way balancing fixes the twiddles.

#include <cstdint>
#include <iostream>

#include "bench/bench_common.hpp"
#include "simfft/fft2d_sim.hpp"

using namespace c64fft;

int main(int argc, char** argv) {
  util::CliParser cli(
      "2-D FFT on the simulated C64: naive vs tiled transpose bank behaviour");
  cli.add_int("log-rows", 8, "log2 of the row count");
  cli.add_int("log-cols", 8, "log2 of the column count");
  bench::add_chip_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  const auto cfg = bench::chip_from_cli(cli);
  simfft::Fft2dSimOptions opts;
  opts.rows = std::uint64_t{1} << cli.get_int("log-rows");
  opts.cols = std::uint64_t{1} << cli.get_int("log-cols");

  bench::banner("2-D FFT " + std::to_string(opts.rows) + "x" + std::to_string(opts.cols) +
                ", " + std::to_string(cfg.thread_units) + " TUs");
  util::TextTable table({"transpose", "row pass", "transpose cyc", "col pass", "total",
                         "gflops", "transpose imbalance"});
  for (bool tiled : {false, true}) {
    opts.tiled_transpose = tiled;
    const auto r = simfft::run_fft2d_sim(cfg, opts);
    table.add_row({tiled ? "tiled 4x4" : "naive column",
                   util::TextTable::num(r.row_pass.cycles),
                   util::TextTable::num(r.transpose.cycles),
                   util::TextTable::num(r.col_pass.cycles),
                   util::TextTable::num(r.total_cycles),
                   util::TextTable::num(r.gflops, 3),
                   util::TextTable::num(r.transpose_bank_imbalance, 2)});
  }
  bench::emit(table, cli);
  return 0;
}
