// Extension experiment (not a paper figure): 2-D FFT on the simulated C64
// with naive vs tiled transpose. The transpose's column reads stride by a
// multiple of the 64 B interleave — the same single-bank pathology the
// paper diagnoses for the twiddle array — and tiling fixes it the same
// way balancing fixes the twiddles.
//
// A second table repeats the comparison on the REAL host: the naive
// element loop against the cache-blocked transpose.hpp kernels that
// fft2d.cpp and the four-step path actually use. On the host the strided
// stream folds onto a handful of L1 sets (the cache analogue of bank-0
// hot-spotting — see fft_lint --cache-sets), so the same tiling fix
// shows up as a wall-clock win instead of a bank-imbalance win.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "fft/transpose.hpp"
#include "simfft/fft2d_sim.hpp"
#include "util/prng.hpp"

using namespace c64fft;

namespace {

double time_ms_best_of(int reps, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

void host_transpose_table(std::uint64_t rows, std::uint64_t cols,
                          const util::CliParser& cli) {
  util::Xoshiro256 rng(42);
  std::vector<fft::cplx> src(rows * cols), dst(rows * cols);
  for (auto& x : src) x = fft::cplx(rng.next_double(), rng.next_double());
  const double bytes = 2.0 * static_cast<double>(src.size()) * sizeof(fft::cplx);
  const int reps = 9;

  bench::banner("Host transpose " + std::to_string(rows) + "x" +
                std::to_string(cols) + " (wall clock, best of " +
                std::to_string(reps) + ")");
  util::TextTable table({"transpose", "ms", "GB/s"});
  const double naive_ms = time_ms_best_of(reps, [&] {
    for (std::uint64_t r = 0; r < rows; ++r)
      for (std::uint64_t c = 0; c < cols; ++c)
        dst[c * rows + r] = src[r * cols + c];
  });
  table.add_row({"naive element loop", util::TextTable::num(naive_ms, 3),
                 util::TextTable::num(bytes / naive_ms / 1e6, 2)});
  const double blocked_ms = time_ms_best_of(
      reps, [&] { fft::transpose_blocked(src, dst, rows, cols); });
  table.add_row({"blocked (transpose.hpp)", util::TextTable::num(blocked_ms, 3),
                 util::TextTable::num(bytes / blocked_ms / 1e6, 2)});
  if (rows == cols) {
    const double inplace_ms = time_ms_best_of(
        reps, [&] { fft::transpose_inplace_square(dst, rows); });
    table.add_row({"in-place square", util::TextTable::num(inplace_ms, 3),
                   util::TextTable::num(bytes / inplace_ms / 1e6, 2)});
  }
  bench::emit(table, cli);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "2-D FFT on the simulated C64: naive vs tiled transpose bank behaviour");
  cli.add_int("log-rows", 8, "log2 of the row count");
  cli.add_int("log-cols", 8, "log2 of the column count");
  bench::add_chip_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  const auto cfg = bench::chip_from_cli(cli);
  simfft::Fft2dSimOptions opts;
  opts.rows = std::uint64_t{1} << cli.get_int("log-rows");
  opts.cols = std::uint64_t{1} << cli.get_int("log-cols");

  bench::banner("2-D FFT " + std::to_string(opts.rows) + "x" + std::to_string(opts.cols) +
                ", " + std::to_string(cfg.thread_units) + " TUs");
  util::TextTable table({"transpose", "row pass", "transpose cyc", "col pass", "total",
                         "gflops", "transpose imbalance"});
  for (bool tiled : {false, true}) {
    opts.tiled_transpose = tiled;
    const auto r = simfft::run_fft2d_sim(cfg, opts);
    table.add_row({tiled ? "tiled 4x4" : "naive column",
                   util::TextTable::num(r.row_pass.cycles),
                   util::TextTable::num(r.transpose.cycles),
                   util::TextTable::num(r.col_pass.cycles),
                   util::TextTable::num(r.total_cycles),
                   util::TextTable::num(r.gflops, 3),
                   util::TextTable::num(r.transpose_bank_imbalance, 2)});
  }
  bench::emit(table, cli);

  host_transpose_table(opts.rows, opts.cols, cli);
  return 0;
}
