#pragma once
// Shared driver for the paper's per-bank access-rate figures (Figs. 1, 2
// and 6): run one FFT version on the simulated C64, bucket every DRAM
// element access into fixed windows, and print one row per window — the
// textual equivalent of the figures' four curves.

#include <cstdint>
#include <string>

#include "bench/bench_common.hpp"
#include "c64/trace.hpp"
#include "simfft/experiment.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::bench {

inline int run_bank_rate_figure(const std::string& figure, simfft::SimVariant variant,
                                int argc, const char* const* argv) {
  util::CliParser cli(figure + ": per-bank DRAM access rates over time for the '" +
                      simfft::to_string(variant) + "' FFT version");
  cli.add_int("logn", 18, "log2 of the input size");
  cli.add_int("windows", 30, "number of time buckets across the run");
  add_chip_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  const auto cfg = chip_from_cli(cli);
  const std::uint64_t n = std::uint64_t{1} << cli.get_int("logn");

  // First pass sizes the run, second traces it with the requested bucket
  // count (the paper buckets per 3e6 cycles; we scale to the run length).
  simfft::SimFftOptions opts;
  const auto sizing = simfft::run_fft_sim(variant, n, cfg, opts);
  const std::uint64_t window =
      std::max<std::uint64_t>(1, sizing.sim.cycles / cli.get_int("windows"));
  c64::BankTrace trace(cfg.dram_banks, window);
  const auto run = simfft::run_fft_sim(variant, n, cfg, opts, &trace);

  banner(figure + " — " + run.name + ", N=2^" + std::to_string(cli.get_int("logn")) +
         ", " + std::to_string(cfg.thread_units) + " TUs, window=" +
         std::to_string(window) + " cycles");
  util::TextTable table({"window", "t_kcycles", "bank0", "bank1", "bank2", "bank3",
                         "bank0/mean"});
  for (std::size_t w = 0; w < trace.windows(); ++w) {
    double sum = 0;
    for (unsigned b = 0; b < 4; ++b) sum += static_cast<double>(trace.at(w, b));
    const double mean = sum / 4.0;
    table.add_row({util::TextTable::num(std::uint64_t{w}),
                   util::TextTable::num(static_cast<std::uint64_t>(w * window / 1000)),
                   util::TextTable::num(trace.at(w, 0)),
                   util::TextTable::num(trace.at(w, 1)),
                   util::TextTable::num(trace.at(w, 2)),
                   util::TextTable::num(trace.at(w, 3)),
                   util::TextTable::num(mean > 0 ? trace.at(w, 0) / mean : 1.0, 2)});
  }
  emit(table, cli);

  const auto totals = trace.totals();
  std::uint64_t total = 0, hot = 0;
  for (auto t : totals) total += t;
  hot = totals[0];
  std::cout << "run: " << run.sim.cycles << " cycles, " << util::TextTable::num(run.gflops, 3)
            << " GFLOPS; bank0 carried "
            << util::TextTable::num(100.0 * static_cast<double>(hot) /
                                        static_cast<double>(total),
                                    1)
            << "% of all accesses (balanced = 25%)\n";
  return 0;
}

}  // namespace c64fft::bench
