// Fig. 8: "Performance of the 5 versions of FFT algorithms on C64" as the
// input size varies from 2^15 to 2^22 elements with 156 thread units.
// One row per input size, one column per Table-I version, in GFLOPS.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "simfft/experiment.hpp"

using namespace c64fft;

int main(int argc, char** argv) {
  util::CliParser cli(
      "Fig. 8: GFLOPS of the six Table-I result rows vs input size "
      "(2^min-logn .. 2^max-logn), 156 TUs");
  cli.add_int("min-logn", 15, "log2 of the smallest input size");
  cli.add_int("max-logn", 22, "log2 of the largest input size");
  bench::add_chip_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  const auto cfg = bench::chip_from_cli(cli);
  bench::banner("Fig. 8 — GFLOPS vs input size, " + std::to_string(cfg.thread_units) +
                " TUs");
  util::TextTable table({"log2(N)", "coarse", "coarse hash", "fine worst", "fine best",
                         "fine hash", "fine guided", "guided/coarse"});

  for (std::int64_t logn = cli.get_int("min-logn"); logn <= cli.get_int("max-logn");
       ++logn) {
    const std::uint64_t n = std::uint64_t{1} << logn;
    const auto rows = simfft::run_all_variants(n, cfg);
    const double coarse = rows[static_cast<int>(simfft::SimVariant::kCoarse)].gflops;
    const double guided =
        rows[static_cast<int>(simfft::SimVariant::kFineGuided)].gflops;
    std::vector<std::string> cells{util::TextTable::num(std::uint64_t(logn))};
    for (const auto& row : rows) cells.push_back(util::TextTable::num(row.gflops, 3));
    cells.push_back(util::TextTable::num(guided / coarse, 3));
    table.add_row(std::move(cells));
    std::cerr << "  [fig8] 2^" << logn << " done\n";
  }
  bench::emit(table, cli);
  return 0;
}
