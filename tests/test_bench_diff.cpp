#include "util/bench_diff.hpp"

#include <gtest/gtest.h>

#include <string>

namespace c64fft::util {
namespace {

JsonValue report(std::initializer_list<std::pair<const char*, double>> rows,
                 const char* metric = "cpu_time") {
  std::string doc = R"({"context": {}, "benchmarks": [)";
  bool first = true;
  for (const auto& [name, value] : rows) {
    if (!first) doc += ",";
    first = false;
    doc += std::string("{\"name\": \"") + name + "\", \"" + metric +
           "\": " + std::to_string(value) + "}";
  }
  doc += "]}";
  return json_parse(doc);
}

TEST(BenchDiff, WithinToleranceIsClean) {
  const auto base = report({{"a", 100.0}, {"b", 200.0}});
  const auto cur = report({{"a", 120.0}, {"b", 190.0}});  // +20%, -5%
  const auto deltas = diff_benchmarks(base, cur, {});
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_FALSE(deltas[0].regressed);
  EXPECT_FALSE(deltas[1].regressed);
  EXPECT_FALSE(has_regression(deltas));
  EXPECT_NEAR(deltas[0].worse_ratio, 1.2, 1e-12);
}

TEST(BenchDiff, SlowdownBeyondToleranceRegresses) {
  const auto base = report({{"a", 100.0}, {"b", 100.0}});
  const auto cur = report({{"a", 131.0}, {"b", 129.0}});
  const auto deltas = diff_benchmarks(base, cur, {});  // tolerance 0.30
  EXPECT_TRUE(deltas[0].regressed);
  EXPECT_FALSE(deltas[1].regressed);
  EXPECT_TRUE(has_regression(deltas));
}

TEST(BenchDiff, RateMetricsRegressDownward) {
  BenchDiffOptions opts;
  opts.metric = "items_per_second";
  opts.tolerance = 0.10;
  const auto base = report({{"a", 1000.0}, {"b", 1000.0}}, "items_per_second");
  const auto cur = report({{"a", 880.0}, {"b", 1500.0}}, "items_per_second");
  const auto deltas = diff_benchmarks(base, cur, opts);
  EXPECT_TRUE(deltas[0].regressed);   // throughput fell 12%
  EXPECT_FALSE(deltas[1].regressed);  // faster is never a regression
  EXPECT_NEAR(deltas[0].worse_ratio, 1000.0 / 880.0, 1e-12);
}

TEST(BenchDiff, MissingBenchmarkFailsUnlessAllowed) {
  const auto base = report({{"a", 100.0}, {"gone", 50.0}});
  const auto cur = report({{"a", 100.0}});
  auto deltas = diff_benchmarks(base, cur, {});
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_TRUE(deltas[1].missing);
  EXPECT_TRUE(deltas[1].regressed);

  BenchDiffOptions lax;
  lax.require_all_baseline = false;
  deltas = diff_benchmarks(base, cur, lax);
  EXPECT_TRUE(deltas[1].missing);
  EXPECT_FALSE(deltas[1].regressed);
}

TEST(BenchDiff, NewBenchmarksInCurrentAreIgnored) {
  const auto base = report({{"a", 100.0}});
  const auto cur = report({{"a", 100.0}, {"brand_new", 9999.0}});
  const auto deltas = diff_benchmarks(base, cur, {});
  EXPECT_EQ(deltas.size(), 1u);
  EXPECT_FALSE(has_regression(deltas));
}

TEST(BenchDiff, NonMeanAggregatesAreSkipped) {
  const auto base = report({{"a", 100.0}});
  const auto cur = json_parse(R"({"benchmarks": [
    {"name": "a", "run_type": "aggregate", "aggregate_name": "mean",
     "cpu_time": 105.0},
    {"name": "a_median", "run_type": "aggregate", "aggregate_name": "median",
     "cpu_time": 1.0},
    {"name": "a_stddev", "run_type": "aggregate", "aggregate_name": "stddev",
     "cpu_time": 9000.0}
  ]})");
  const auto deltas = diff_benchmarks(base, cur, {});
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_FALSE(deltas[0].regressed);
  EXPECT_DOUBLE_EQ(deltas[0].current, 105.0);
}

TEST(BenchDiff, MetricLookupSeesAllAggregateRows) {
  // benchmark_metric must find rows the diff's mean-only aggregate filter
  // hides: the ratio gate targets ".../real_time_median" rows from an
  // aggregates-only interleaved run.
  const auto rep = json_parse(R"({"benchmarks": [
    {"name": "x/4096", "real_time": 10.0},
    {"name": "x/4096/real_time_median", "run_type": "aggregate",
     "aggregate_name": "median", "real_time": 12.0},
    {"name": "x/4096/real_time_stddev", "run_type": "aggregate",
     "aggregate_name": "stddev", "real_time": 0.5}
  ]})");
  EXPECT_DOUBLE_EQ(benchmark_metric(rep, "x/4096", "real_time"), 10.0);
  EXPECT_DOUBLE_EQ(
      benchmark_metric(rep, "x/4096/real_time_median", "real_time"), 12.0);
  EXPECT_DOUBLE_EQ(
      benchmark_metric(rep, "x/4096/real_time_stddev", "real_time"), 0.5);
  EXPECT_THROW(benchmark_metric(rep, "y/1024", "real_time"), JsonParseError);
}

TEST(BenchDiff, MetricMinSpansRepetitionRows) {
  // A --benchmark_repetitions run emits one iteration row per repetition
  // under the shared name; benchmark_metric_min takes the fastest and
  // ignores the aggregate rows the same run appends.
  const auto rep = json_parse(R"({"benchmarks": [
    {"name": "x/4096", "run_type": "iteration", "real_time": 30.0},
    {"name": "x/4096", "run_type": "iteration", "real_time": 21.0},
    {"name": "x/4096", "run_type": "iteration", "real_time": 55.0},
    {"name": "x/4096", "run_type": "aggregate", "aggregate_name": "mean",
     "real_time": 1.0}
  ]})");
  EXPECT_DOUBLE_EQ(benchmark_metric_min(rep, "x/4096", "real_time"), 21.0);
  EXPECT_THROW(benchmark_metric_min(rep, "y/1024", "real_time"),
               JsonParseError);
}

TEST(BenchDiff, MalformedReportThrows) {
  const auto base = report({{"a", 100.0}});
  EXPECT_THROW(diff_benchmarks(base, json_parse("{}"), {}), JsonParseError);
  EXPECT_THROW(
      diff_benchmarks(base, json_parse(R"({"benchmarks": [{"name": "a"}]})"),
                      {}),
      JsonParseError);
}

TEST(BenchDiff, FilterScopesDiffToMatchingRows) {
  const auto base = report({{"BM_Kernel/64", 100.0}, {"LG_Serve", 100.0}});
  const auto cur = report({{"BM_Kernel/64", 500.0}, {"LG_Serve", 100.0}});
  BenchDiffOptions opts;
  opts.filter = "^LG_";
  const auto deltas = diff_benchmarks(base, cur, opts);
  // The 5x-slower BM_ row is outside the filter: ignored entirely, not
  // even reported.
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].name, "LG_Serve");
  EXPECT_FALSE(has_regression(deltas));
}

TEST(BenchDiff, ExcludeDropsMatchingRows) {
  const auto base = report({{"BM_Kernel/64", 100.0}, {"LG_Serve", 100.0}});
  const auto cur = report({{"BM_Kernel/64", 100.0}, {"LG_Serve", 500.0}});
  BenchDiffOptions opts;
  opts.exclude = "^LG_";
  const auto deltas = diff_benchmarks(base, cur, opts);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].name, "BM_Kernel/64");
  EXPECT_FALSE(has_regression(deltas));
}

TEST(BenchDiff, FilterAppliesBeforeMetricExtraction) {
  // A shared baseline carries rows from several binaries, and not every
  // binary's report records every metric. A row the filter drops must
  // never fail the parse for a metric it doesn't have (here: BM_ rows
  // without items_per_second while diffing the LG_ rows on it).
  const JsonValue base = json_parse(R"({"benchmarks": [
    {"name": "BM_Kernel/64", "real_time": 100.0},
    {"name": "LG_Serve", "real_time": 5.0, "items_per_second": 1000.0}]})");
  const JsonValue cur = json_parse(R"({"benchmarks": [
    {"name": "LG_Serve", "real_time": 5.0, "items_per_second": 990.0}]})");
  BenchDiffOptions opts;
  opts.metric = "items_per_second";
  opts.filter = "^LG_";
  const auto deltas = diff_benchmarks(base, cur, opts);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_FALSE(deltas[0].regressed);
  // Without the filter the missing metric on the BM_ row is a real
  // malformed-report error, exactly as before.
  BenchDiffOptions unfiltered;
  unfiltered.metric = "items_per_second";
  EXPECT_THROW(diff_benchmarks(base, cur, unfiltered), JsonParseError);
}

TEST(BenchDiff, FilterUsesSearchNotFullMatch) {
  const auto base = report({{"LG_ServeCoalesced", 100.0}});
  const auto cur = report({{"LG_ServeCoalesced", 100.0}});
  BenchDiffOptions opts;
  opts.filter = "Coalesced";  // substring, no anchors
  EXPECT_EQ(diff_benchmarks(base, cur, opts).size(), 1u);
  opts.filter = "^Coalesced";  // anchored: no longer matches mid-name
  EXPECT_EQ(diff_benchmarks(base, cur, opts).size(), 0u);
}

TEST(BenchDiff, ReportFormatting) {
  const auto base = report({{"fast", 100.0}, {"slow", 100.0}, {"gone", 1.0}});
  const auto cur = report({{"fast", 90.0}, {"slow", 200.0}});
  BenchDiffOptions opts;
  const auto deltas = diff_benchmarks(base, cur, opts);
  const std::string text = format_bench_report(deltas, opts);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("MISSING"), std::string::npos);
  EXPECT_NE(text.find("FAIL: 2 of 3"), std::string::npos);
}

}  // namespace
}  // namespace c64fft::util
