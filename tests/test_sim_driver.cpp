#include "simfft/sim_driver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "c64/engine.hpp"

namespace c64fft::simfft {
namespace {

c64::ChipConfig small_cfg(unsigned tus = 16) {
  c64::ChipConfig cfg;
  cfg.thread_units = tus;
  return cfg;
}

struct Rig {
  fft::FftPlan plan;
  c64::ChipConfig cfg;
  FootprintBuilder fp;
  Rig(std::uint64_t n, unsigned tus = 16)
      : plan(n, 6), cfg(small_cfg(tus)), fp(plan, cfg, fft::TwiddleLayout::kLinear) {}
};

TEST(CoarseSim, CompletesAllTasks) {
  Rig s(1ULL << 12);
  CoarseSimProgram prog(s.fp, s.cfg);
  const auto r = c64::SimEngine(s.cfg, prog).run();
  EXPECT_EQ(r.tasks_completed, s.plan.total_tasks());
  EXPECT_TRUE(prog.finished());
  EXPECT_GT(r.cycles, 0u);
}

TEST(CoarseSim, PaysBarriersBetweenStages) {
  // A 2^12 plan has two stages -> one barrier. Make it enormous and the
  // makespan must grow by about that much.
  Rig s(1ULL << 12);
  auto huge = s.cfg;
  huge.barrier_cycles = 1'000'000;
  CoarseSimProgram a(s.fp, s.cfg), b(s.fp, huge);
  const auto base = c64::SimEngine(s.cfg, a).run();
  const auto with = c64::SimEngine(huge, b).run();
  EXPECT_GT(with.cycles, base.cycles + 900'000u);
  EXPECT_LT(with.cycles, base.cycles + 1'100'000u + s.cfg.barrier_cycles);
}

TEST(FineSim, CompletesAllTasksAllOrderings) {
  Rig s(1ULL << 12);
  for (const auto& o : fft::ordering_sweep()) {
    FineSimProgram prog(s.fp, s.cfg, o);
    const auto r = c64::SimEngine(s.cfg, prog).run();
    EXPECT_EQ(r.tasks_completed, s.plan.total_tasks()) << fft::to_string(o);
  }
}

TEST(FineSim, MovesSameTotalBytesAsCoarse) {
  // Scheduling must not change traffic, only its timing.
  Rig s(1ULL << 12);
  CoarseSimProgram c(s.fp, s.cfg);
  FineSimProgram f(s.fp, s.cfg, {});
  const auto rc = c64::SimEngine(s.cfg, c).run();
  const auto rf = c64::SimEngine(s.cfg, f).run();
  EXPECT_EQ(rc.bytes, rf.bytes);
  EXPECT_EQ(rc.bank_bytes, rf.bank_bytes);
}

// Completion-order instrumented fine program.
class RecordingFineProgram final : public FineSimProgram {
 public:
  using FineSimProgram::FineSimProgram;
  void task_done(unsigned tu, std::uint64_t task_id, std::uint64_t now) override {
    stages_done.push_back(static_cast<std::uint32_t>(
        task_id / 512));  // tasks_per_stage of the 2^15 plan
    FineSimProgram::task_done(tu, task_id, now);
  }
  std::vector<std::uint32_t> stages_done;
};

TEST(FineSim, OverlapsAdjacentStages) {
  // With LIFO/natural, stage-1 codelets start while stage-0 codelets are
  // still completing (the barrier-free pipelining of Alg. 2): count
  // stage-0 completions after the first stage-1 completion.
  Rig s(1ULL << 15, 32);
  RecordingFineProgram prog(s.fp, s.cfg,
                            {codelet::PoolPolicy::kLifo, fft::SeedOrder::kNatural, 1});
  (void)c64::SimEngine(s.cfg, prog).run();
  const auto& seq = prog.stages_done;
  const auto first_s1 =
      std::find(seq.begin(), seq.end(), 1u) - seq.begin();
  std::size_t s0_after = 0;
  for (std::size_t i = static_cast<std::size_t>(first_s1); i < seq.size(); ++i)
    s0_after += seq[i] == 0;
  // A coarse schedule would have zero; pipelining must show substantial
  // interleaving.
  EXPECT_GT(s0_after, 100u);
}

TEST(GuidedSim, CompletesAllTasks) {
  for (std::uint64_t n : {1ULL << 12, 1ULL << 13, 1ULL << 15, 1ULL << 18}) {
    Rig s(n);
    GuidedSimProgram prog(s.fp, s.cfg);
    const auto r = c64::SimEngine(s.cfg, prog).run();
    EXPECT_EQ(r.tasks_completed, s.plan.total_tasks()) << n;
  }
}

TEST(GuidedSim, DegenerateTwoStagePlanWorks) {
  Rig s(1ULL << 12);  // 2 stages -> degenerate path
  GuidedSimProgram prog(s.fp, s.cfg);
  const auto r = c64::SimEngine(s.cfg, prog).run();
  EXPECT_EQ(r.tasks_completed, s.plan.total_tasks());
}

TEST(GuidedSim, PaysExactlyOneBarrier) {
  Rig s(1ULL << 18);  // 3 stages -> real guided path
  auto cheap = s.cfg;
  cheap.barrier_cycles = 0;
  GuidedSimProgram a(s.fp, s.cfg), b(s.fp, cheap);
  const auto with = c64::SimEngine(s.cfg, a).run();
  const auto without = c64::SimEngine(cheap, b).run();
  EXPECT_GE(with.cycles, without.cycles);
  // One barrier, not one per stage: the delta stays well under coarse's.
  CoarseSimProgram ca(s.fp, s.cfg), cb(s.fp, cheap);
  const auto cwith = c64::SimEngine(s.cfg, ca).run();
  const auto cwithout = c64::SimEngine(cheap, cb).run();
  EXPECT_GT(cwith.cycles - cwithout.cycles, with.cycles - without.cycles);
}

TEST(SimPrograms, DeterministicCycleCounts) {
  Rig s(1ULL << 12);
  FineSimProgram a(s.fp, s.cfg, {}), b(s.fp, s.cfg, {});
  EXPECT_EQ(c64::SimEngine(s.cfg, a).run().cycles,
            c64::SimEngine(s.cfg, b).run().cycles);
}

TEST(SimPrograms, TuCountOneWorks) {
  Rig s(1ULL << 12, 1);
  GuidedSimProgram prog(s.fp, s.cfg);
  const auto r = c64::SimEngine(s.cfg, prog).run();
  EXPECT_EQ(r.tasks_completed, s.plan.total_tasks());
}

}  // namespace
}  // namespace c64fft::simfft
