// Hierarchical multi-level large-N path (PlanKind::kHierarchical): split
// algebra and cache-driven leaf selection, plan-cache pinning of the
// recursive sub-plan chain, bit-identity of the tile-pipelined execution
// with the barrier-phased four-step path at N in {2^18, 2^20, 2^22} (both
// precisions), numerical agreement with the classic path and the O(N^2)
// reference, batch-vs-loop identity, forced multi-level recursion, tuned
// block-row overrides, and the consolidated env snapshot that feeds the
// constructor and reconfigure(). Registered under the `large_n` ctest
// label:
//     ctest -L large_n --output-on-failure

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "fft/executor.hpp"
#include "fft/kernels/dispatch.hpp"
#include "fft/plan_cache.hpp"
#include "fft/reference.hpp"
#include "fft/transpose.hpp"
#include "util/cpu_features.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

template <typename T>
std::vector<cplx_t<T>> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx_t<T>> v(n);
  for (auto& x : v)
    x = cplx_t<T>(static_cast<T>(rng.next_double() * 2 - 1),
                  static_cast<T>(rng.next_double() * 2 - 1));
  return v;
}

ExecutorOptions classic_opts() {
  ExecutorOptions o;
  o.workers = 2;
  o.four_step_threshold_log2 = 0;    // never route four-step
  o.hierarchical_threshold_log2 = 0;  // never route hierarchical
  return o;
}

ExecutorOptions four_step_opts() {
  ExecutorOptions o;
  o.workers = 2;
  o.four_step_threshold_log2 = 2;     // always route four-step
  o.hierarchical_threshold_log2 = 0;  // hierarchical disabled
  return o;
}

ExecutorOptions hier_opts() {
  ExecutorOptions o;
  o.workers = 2;
  o.hierarchical_threshold_log2 = 2;  // always route hierarchical
  return o;
}

/// One-entry schedule set forcing the hierarchical knobs for (n, T) under
/// the process-active kernel ISA (the lookup key the executor uses).
template <typename T>
ScheduleSet forced_schedule(std::uint64_t n, std::uint32_t leaf_log2,
                            std::uint32_t block_rows) {
  TunedSchedule s;
  s.n = n;
  s.precision = precision_of<T>;
  s.isa = kernels::active_kernel_isa();
  s.hier_leaf_log2 = leaf_log2;
  s.hier_block_rows = block_rows;
  ScheduleSet set;
  set.insert(s);
  return set;
}

TEST(HierarchicalSplitAlgebra, BalancedBelowTwiceLeaf) {
  // While log2(n) <= 2*leaf the split IS the four-step split: one level,
  // classic children — the bit-identity anchor of the whole path.
  for (unsigned logn : {14u, 18u, 22u, 28u}) {
    const HierarchicalSplit h = hierarchical_split(1ULL << logn, 14);
    const FourStepSplit f = four_step_split(1ULL << logn);
    EXPECT_EQ(h.n1, f.n1) << logn;
    EXPECT_EQ(h.n2, f.n2) << logn;
    EXPECT_EQ(h.levels, 1u) << logn;
    EXPECT_FALSE(h.col_recursive) << logn;
  }
}

TEST(HierarchicalSplitAlgebra, RecursiveAboveTwiceLeaf) {
  // log2(n) > 2*leaf peels a 2^leaf row factor and recurses on the rest.
  const HierarchicalSplit h = hierarchical_split(1ULL << 12, 4);
  EXPECT_EQ(h.n2, 16u);
  EXPECT_EQ(h.n1, 256u);
  EXPECT_TRUE(h.col_recursive);
  EXPECT_EQ(h.levels, 2u);
  // Three levels: 2^18 with leaf 5 -> 32 * (32 * 2^8).
  const HierarchicalSplit deep = hierarchical_split(1ULL << 18, 5);
  EXPECT_EQ(deep.n2, 32u);
  EXPECT_EQ(deep.levels, 3u);
  EXPECT_THROW(hierarchical_split(2, 14), std::invalid_argument);
  EXPECT_THROW(hierarchical_split(96, 14), std::invalid_argument);
}

TEST(HierarchicalSplitAlgebra, LeafTracksCacheSize) {
  // leaf = log2(points that fit in cache at 8 bytes-per-point headroom).
  EXPECT_EQ(hierarchical_leaf_log2(2ull << 20, 16), 14u);  // 2 MiB L2, f64
  EXPECT_EQ(hierarchical_leaf_log2(2ull << 20, 8), 15u);   // f32
  EXPECT_EQ(hierarchical_leaf_log2(1ull << 10, 16), 4u);   // clamped low
  EXPECT_EQ(hierarchical_leaf_log2(1ull << 40, 16), 16u);  // clamped high
  // The measured hierarchy feeds the default: whatever this host reports,
  // the derived leaf stays inside the clamp range.
  const unsigned leaf = hierarchical_leaf_log2(util::cache_info().l2_bytes, 16);
  EXPECT_GE(leaf, 4u);
  EXPECT_LE(leaf, 16u);
}

TEST(HierarchicalGrainPolicy, TileAlignedBlocksCoverAllRows) {
  const HierarchicalGrain g =
      hierarchical_grain(2048, 2048, 2, 16, 2ull << 20, 0);
  EXPECT_EQ(g.block_rows1 % kTransposeTile, 0u);
  EXPECT_EQ(g.block_rows2 % kTransposeTile, 0u);
  EXPECT_GE(g.blocks1 * g.block_rows1, 2048u);
  EXPECT_GE(g.blocks2 * g.block_rows2, 2048u);
  // At least workers*4 blocks so the pipeline has overlap to exploit.
  EXPECT_GE(g.blocks1, 8u);
  // A tuned override wins but is still tile-aligned.
  const HierarchicalGrain t =
      hierarchical_grain(2048, 2048, 2, 16, 2ull << 20, 40);
  EXPECT_EQ(t.block_rows1, 32u);
}

TEST(HierarchicalPlanCache, EntryPinsSubEntriesRecursively) {
  PlanCache cache(8);
  // Forced leaf 4 at 2^12: 16 x 256 with a recursive 256-point column.
  const PlanKey key{1ULL << 12, 6, TwiddleLayout::kLinear,
                    PlanKind::kHierarchical, Precision::kF64, 4};
  auto entry = cache.acquire(key);
  ASSERT_EQ(entry->kind(), PlanKind::kHierarchical);
  EXPECT_EQ(entry->levels(), 2u);
  EXPECT_EQ(entry->split().n1, 256u);
  EXPECT_EQ(entry->split().n2, 16u);
  EXPECT_EQ(entry->row_entry()->kind(), PlanKind::kClassic);
  ASSERT_EQ(entry->col_entry()->kind(), PlanKind::kHierarchical);
  EXPECT_EQ(entry->col_entry()->levels(), 1u);
  EXPECT_EQ(entry->col_entry()->split().n1, 16u);
  EXPECT_EQ(entry->col_entry()->split().n2, 16u);
  // The inner level's square split shares one classic sub-entry, itself an
  // ordinary cache resident.
  EXPECT_EQ(entry->col_entry()->col_entry().get(),
            entry->col_entry()->row_entry().get());
  // Sub-keys carry the radix clamped to the sub-size (16 points -> 4).
  auto direct = cache.acquire(PlanKey{16, 4, TwiddleLayout::kLinear});
  EXPECT_EQ(direct.get(), entry->col_entry()->row_entry().get());
  // Classic-only accessors stay fenced off on composite entries.
  EXPECT_THROW(entry->plan(), std::logic_error);
  // Distinct leaves build distinct plan trees (the leaf is in the key).
  auto other = cache.acquire(PlanKey{1ULL << 12, 6, TwiddleLayout::kLinear,
                                     PlanKind::kHierarchical, Precision::kF64,
                                     6});
  EXPECT_NE(other.get(), entry.get());
  EXPECT_EQ(other->levels(), 1u);
}

TEST(Hierarchical, RoutingPrecedence) {
  // The hierarchical check outranks four-step; 0 disables each path.
  EXPECT_EQ(routed_plan_kind(1ULL << 20, 18, 20), PlanKind::kHierarchical);
  EXPECT_EQ(routed_plan_kind(1ULL << 19, 18, 20), PlanKind::kFourStep);
  EXPECT_EQ(routed_plan_kind(1ULL << 19, 0, 20), PlanKind::kClassic);
  EXPECT_EQ(routed_plan_kind(1ULL << 20, 18, 0), PlanKind::kFourStep);
  EXPECT_EQ(routed_plan_kind(1ULL << 10, 18, 20), PlanKind::kClassic);
  // The 2-arg overload applies the default hierarchical threshold.
  EXPECT_EQ(routed_plan_kind(1ULL << kDefaultHierarchicalThresholdLog2, 18),
            PlanKind::kHierarchical);
}

TEST(Hierarchical, ForwardBitIdenticalToFourStepLargeN) {
  // The tentpole equivalence: at the default leaf the hierarchical split
  // equals the four-step split, the tile grids align, and the kernels are
  // shared — so the pipelined execution must reproduce the barrier-phased
  // four-step output BIT FOR BIT, forward and inverse.
  for (unsigned logn : {18u, 20u, 22u}) {
    const std::uint64_t n = 1ULL << logn;
    const auto input = random_signal<double>(n, logn);
    FftExecutor four(four_step_opts());
    FftExecutor hier(hier_opts());

    auto want = input;
    four.forward(want);
    auto got = input;
    hier.forward(got);
    EXPECT_EQ(hier.stats().hierarchical, 1u);
    EXPECT_EQ(hier.stats().four_step, 0u);
    EXPECT_EQ(got, want) << "forward n=" << n;

    auto want_inv = want;
    four.inverse(want_inv);
    auto got_inv = want;
    hier.inverse(got_inv);
    EXPECT_EQ(got_inv, want_inv) << "inverse n=" << n;
  }
}

TEST(Hierarchical, ForwardBitIdenticalToFourStepF32) {
  for (unsigned logn : {18u, 20u, 22u}) {
    const std::uint64_t n = 1ULL << logn;
    const auto input = random_signal<float>(n, 40 + logn);
    FftExecutor four(four_step_opts());
    FftExecutor hier(hier_opts());
    auto want = input;
    four.forward(want);
    auto got = input;
    hier.forward(got);
    EXPECT_EQ(got, want) << "n=" << n;
  }
}

TEST(Hierarchical, MatchesClassicAndReference) {
  // Independent anchors: the classic monolithic plan at 2^18 and the
  // O(N^2) DFT at 2^12 (where that is still affordable).
  const std::uint64_t n = 1ULL << 18;
  const auto input = random_signal<double>(n, 7);
  FftExecutor classic(classic_opts());
  FftExecutor hier(hier_opts());
  auto want = input;
  classic.forward(want);
  auto got = input;
  hier.forward(got);
  EXPECT_LT(rel_l2_error(got, want), 1e-12);

  const auto small = random_signal<double>(1ULL << 12, 8);
  auto hgot = small;
  hier.forward(hgot);
  EXPECT_LT(rel_l2_error(hgot, dft_reference(small)), 1e-12);
}

TEST(Hierarchical, RoundTripRecoversInput) {
  const std::uint64_t n = 1ULL << 20;
  const auto input = random_signal<double>(n, 11);
  FftExecutor hier(hier_opts());
  auto rt = input;
  hier.forward(rt);
  hier.inverse(rt);
  EXPECT_LT(max_abs_error(rt, input), 1e-9);
}

TEST(Hierarchical, BatchMatchesLoopBitIdentically) {
  // forward_batch/inverse_batch thread through the same locked body one
  // transform at a time — identical dispatch, so identical bits.
  const std::uint64_t n = 1ULL << 20;
  const std::size_t b = 3;
  std::vector<std::vector<cplx>> singles, batch;
  for (std::size_t i = 0; i < b; ++i) {
    singles.push_back(random_signal<double>(n, 300 + i));
    batch.push_back(singles.back());
  }
  FftExecutor hier(hier_opts());
  for (auto& t : singles) hier.forward(t);
  std::vector<std::span<cplx>> spans;
  for (auto& t : batch) spans.emplace_back(t);
  hier.forward_batch(spans);
  EXPECT_EQ(hier.stats().hierarchical, b + 3);  // 3 singles + 3 batched
  for (std::size_t i = 0; i < b; ++i) EXPECT_EQ(batch[i], singles[i]) << i;

  for (auto& t : singles) hier.inverse(t);
  hier.inverse_batch(spans);
  for (std::size_t i = 0; i < b; ++i) EXPECT_EQ(batch[i], singles[i]) << i;
}

TEST(Hierarchical, ForcedMultiLevelRecursionIsCorrect) {
  // A tuned leaf far below the cache-derived default forces real
  // recursion (3 levels at 2^18 with leaf 5). The split now differs from
  // four-step's, so the anchor is numerical agreement with the classic
  // path, not bit-identity.
  const std::uint64_t n = 1ULL << 18;
  const auto input = random_signal<double>(n, 13);
  FftExecutor classic(classic_opts());
  auto want = input;
  classic.forward(want);

  FftExecutor hier(hier_opts());
  hier.set_schedules(forced_schedule<double>(n, 5, 0));
  auto got = input;
  hier.forward(got);
  EXPECT_LT(rel_l2_error(got, want), 1e-12);

  auto rt = got;
  hier.inverse(rt);
  EXPECT_LT(max_abs_error(rt, input), 1e-10);

  // f32 recursion through the same tree.
  const auto input32 = random_signal<float>(n, 14);
  FftExecutor hier32(hier_opts());
  hier32.set_schedules(forced_schedule<float>(n, 5, 0));
  auto got32 = input32;
  hier32.forward(got32);
  FftExecutor classic32(classic_opts());
  auto want32 = input32;
  classic32.forward(want32);
  EXPECT_LT(rel_l2_error(got32, want32), 1e-4);
}

TEST(Hierarchical, TunedBlockRowsIsPureScheduling) {
  // hier_block_rows changes the pipeline grain only — output must stay
  // bit-identical to the default grain.
  const std::uint64_t n = 1ULL << 18;
  const auto input = random_signal<double>(n, 17);
  FftExecutor def(hier_opts());
  auto want = input;
  def.forward(want);
  for (std::uint32_t rows : {16u, 48u, 256u}) {
    FftExecutor tuned(hier_opts());
    tuned.set_schedules(forced_schedule<double>(n, 0, rows));
    auto got = input;
    tuned.forward(got);
    EXPECT_EQ(got, want) << "block_rows=" << rows;
  }
}

TEST(Hierarchical, ThresholdRoutesOnlyEnormousTransforms) {
  ExecutorOptions o;
  o.workers = 2;
  o.four_step_threshold_log2 = 0;
  o.hierarchical_threshold_log2 = 14;
  FftExecutor ex(o);
  auto small = random_signal<double>(1ULL << 12, 1);
  auto large = random_signal<double>(1ULL << 14, 2);
  ex.forward(small);
  EXPECT_EQ(ex.stats().hierarchical, 0u);
  ex.forward(large);
  EXPECT_EQ(ex.stats().hierarchical, 1u);

  ex.set_hierarchical_threshold_log2(0);
  EXPECT_EQ(ex.hierarchical_threshold_log2(), 0u);
  ex.forward(large);
  EXPECT_EQ(ex.stats().hierarchical, 1u);  // unchanged: routing disabled
}

TEST(HierarchicalEnvSnapshot, OneStructFeedsConstructorAndReconfigure) {
  // The consolidated snapshot: every executor env knob is read into one
  // struct, and BOTH construction and reconfigure() apply from it — so a
  // post-warm-up env change is either fully observed or not at all.
  ::setenv("C64FFT_HIERARCHICAL_THRESHOLD_LOG2", "13", 1);
  ::setenv("C64FFT_FOURSTEP_THRESHOLD_LOG2", "11", 1);
  const ExecutorEnvSnapshot snap = read_executor_env();
  ASSERT_TRUE(snap.hierarchical_threshold_log2.has_value());
  EXPECT_EQ(*snap.hierarchical_threshold_log2, 13u);
  ASSERT_TRUE(snap.four_step_threshold_log2.has_value());
  EXPECT_EQ(*snap.four_step_threshold_log2, 11u);
  EXPECT_FALSE(snap.schedule_path.has_value());

  FftExecutor ex(classic_opts());  // ctor applies the env snapshot
  EXPECT_EQ(ex.hierarchical_threshold_log2(), 13u);
  EXPECT_EQ(ex.four_step_threshold_log2(), 11u);

  ::setenv("C64FFT_HIERARCHICAL_THRESHOLD_LOG2", "15", 1);
  ex.reconfigure();
  EXPECT_EQ(ex.hierarchical_threshold_log2(), 15u);

  // Malformed values change nothing (strict parse).
  ::setenv("C64FFT_HIERARCHICAL_THRESHOLD_LOG2", "15x", 1);
  ex.reconfigure();
  EXPECT_EQ(ex.hierarchical_threshold_log2(), 15u);

  ::unsetenv("C64FFT_HIERARCHICAL_THRESHOLD_LOG2");
  ::unsetenv("C64FFT_FOURSTEP_THRESHOLD_LOG2");
  const ExecutorEnvSnapshot clear = read_executor_env();
  EXPECT_FALSE(clear.hierarchical_threshold_log2.has_value());
  EXPECT_FALSE(clear.four_step_threshold_log2.has_value());
}

}  // namespace
}  // namespace c64fft::fft
