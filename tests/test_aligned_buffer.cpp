#include "util/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>

namespace c64fft::util {
namespace {

TEST(AlignedBuffer, DefaultEmpty) {
  AlignedBuffer<double> b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, DefaultAlignmentIsOneCacheLine) {
  static_assert(kSimdAlignment == 64);
  // The default template argument must give cache-line (= AVX-512
  // register width) alignment without the call site spelling it.
  AlignedBuffer<float> f(33);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f.data()) % kSimdAlignment, 0u);
  AlignedBuffer<std::complex<double>> c(9);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % kSimdAlignment, 0u);
}

TEST(AlignedBuffer, AlignmentHolds) {
  AlignedBuffer<double, 64> b(17);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u);
  AlignedBuffer<std::complex<double>, 128> c(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % 128, 0u);
}

TEST(AlignedBuffer, ValueInitialised) {
  AlignedBuffer<int> b(100);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 0);
}

TEST(AlignedBuffer, ReadWriteAndIteration) {
  AlignedBuffer<int> b(10);
  for (std::size_t i = 0; i < 10; ++i) b[i] = static_cast<int>(i * i);
  int sum = 0;
  for (int v : b) sum += v;
  EXPECT_EQ(sum, 285);
  EXPECT_EQ(b.span().size(), 10u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(4);
  a[0] = 7;
  int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 7);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());

  AlignedBuffer<int> c(2);
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(c[0], 7);
}

int g_live_probes = 0;
struct Probe {
  Probe() { ++g_live_probes; }
  ~Probe() { --g_live_probes; }
};

TEST(AlignedBuffer, NonTrivialTypeDestruction) {
  {
    AlignedBuffer<Probe> b(8);
    EXPECT_EQ(g_live_probes, 8);
  }
  EXPECT_EQ(g_live_probes, 0);
}

}  // namespace
}  // namespace c64fft::util
