// Accuracy harness of the precision-generic core: the fp32 pipeline is
// judged against the fp64 serial reference in peak-ULPs (util/ulp.hpp)
// and relative L2, across every size from 2^4 to 2^16, and the fp64
// four-step path gets the same treatment. The tolerances are the
// documented accuracy contract of the f32 path:
//   * forward f32 vs f64 reference:  <= 24 peak-ULPs, rel-L2 <= 2e-6
//   * f32 round trip vs input:       <= 24 peak-ULPs, rel-L2 <= 2e-6
//   * f64 four-step vs reference:    <= 64 peak-ULPs, rel-L2 <= 1e-13
// The four-step budget is larger than the classic one: the fused
// twiddle-transpose multiplies every element by an inter-step factor the
// classic path never applies, adding one rounding per element per pass.
// Everything is seeded and bit-deterministic, so the margins (measured
// ~4x below the bounds on the reference host) absorb libm last-bit
// differences across platforms, not run-to-run noise.

#include "util/ulp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "fft/api.hpp"
#include "fft/executor.hpp"
#include "fft/reference.hpp"
#include "util/prng.hpp"

namespace c64fft {
namespace {

using fft::cplx;
using fft::cplx32;

constexpr double kF32UlpTol = 24.0;
constexpr double kF32RelL2Tol = 2e-6;
constexpr double kF64FourStepUlpTol = 64.0;
constexpr double kF64RelL2Tol = 1e-13;

std::vector<cplx32> random_signal32(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx32> v(n);
  for (auto& x : v)
    x = cplx32(static_cast<float>(rng.next_double() * 2 - 1),
               static_cast<float>(rng.next_double() * 2 - 1));
  return v;
}

std::vector<cplx> widen(const std::vector<cplx32>& v) {
  std::vector<cplx> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = cplx(v[i].real(), v[i].imag());
  return out;
}

TEST(Ulp, UlpAtTracksBinade) {
  const double eps_f = std::numeric_limits<float>::epsilon();
  EXPECT_EQ(util::ulp_at<float>(1.0), eps_f);
  EXPECT_EQ(util::ulp_at<float>(1.75), eps_f);  // same binade as 1.0
  EXPECT_EQ(util::ulp_at<float>(2.0), 2 * eps_f);
  EXPECT_EQ(util::ulp_at<double>(1.0), std::numeric_limits<double>::epsilon());
}

TEST(Ulp, MaxUlpErrorIdentitiesAndEdgeCases) {
  std::vector<cplx> want = {{1.0, -0.5}, {0.0, 4.0}, {-0.25, 0.0}};
  std::vector<cplx32> got(want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    got[i] = cplx32(static_cast<float>(want[i].real()),
                    static_cast<float>(want[i].imag()));
  EXPECT_EQ(util::max_ulp_error(got, want), 0.0);

  // Peak is 4.0; push one component 3 peak-ULPs off.
  const double ulp = util::ulp_at<float>(4.0);
  got[0] = cplx32(static_cast<float>(1.0 + 3 * ulp), got[0].imag());
  EXPECT_NEAR(util::max_ulp_error(got, want), 3.0, 1e-6);

  // Size mismatch and non-finite values are infinite, never silent.
  std::vector<cplx32> shorter(got.begin(), got.end() - 1);
  EXPECT_TRUE(std::isinf(util::max_ulp_error(shorter, want)));
  got[1] = cplx32(std::numeric_limits<float>::quiet_NaN(), 0.0f);
  EXPECT_TRUE(std::isinf(util::max_ulp_error(got, want)));
}

TEST(Ulp, F32ForwardWithinBudgetAcrossSizes) {
  for (unsigned logn = 4; logn <= 16; ++logn) {
    const std::uint64_t n = std::uint64_t{1} << logn;
    const auto input = random_signal32(n, 0x5eed + logn);
    auto want = widen(input);
    fft::fft_serial_inplace(want);

    auto got = input;
    fft::forward(got);  // api wrapper: clamps the radix for tiny sizes
    EXPECT_LT(util::max_ulp_error(got, want), kF32UlpTol) << "n=" << n;
    EXPECT_LT(fft::rel_l2_error(got, want), kF32RelL2Tol) << "n=" << n;
  }
}

TEST(Ulp, F32RoundTripWithinBudgetAcrossSizes) {
  for (unsigned logn = 4; logn <= 16; ++logn) {
    const std::uint64_t n = std::uint64_t{1} << logn;
    const auto input = random_signal32(n, 0xabcd + logn);
    auto data = input;
    fft::forward(data);
    fft::inverse(data);
    const auto want = widen(input);
    EXPECT_LT(util::max_ulp_error(data, want), kF32UlpTol) << "n=" << n;
    EXPECT_LT(fft::rel_l2_error(data, want), kF32RelL2Tol) << "n=" << n;
  }
}

TEST(Ulp, F32CompositeSizesWithinBudget) {
  // The mixed-radix (7-smooth composite) and Bluestein (prime) paths are
  // held to the same f32 accuracy contract as the pow2 pipeline, judged
  // against the exact-N f64 naive DFT. Bluestein's two internal pow2
  // transforms plus the chirp modulations cost a little over the classic
  // budget, so primes get a 2x peak-ULP allowance (rel-L2 is unchanged).
  for (std::uint64_t n : {12ULL, 96ULL, 360ULL, 1000ULL}) {
    const auto input = random_signal32(n, 0xc0de + n);
    auto want = widen(input);
    want = fft::dft_reference(std::span<const cplx>(want));
    auto got = input;
    fft::forward(got);
    EXPECT_LT(util::max_ulp_error(got, want), kF32UlpTol) << "n=" << n;
    EXPECT_LT(fft::rel_l2_error(got, want), kF32RelL2Tol) << "n=" << n;
  }
  for (std::uint64_t n : {101ULL, 499ULL}) {
    const auto input = random_signal32(n, 0xc0de + n);
    auto want = widen(input);
    want = fft::dft_reference(std::span<const cplx>(want));
    auto got = input;
    fft::forward(got);
    EXPECT_LT(util::max_ulp_error(got, want), 2 * kF32UlpTol) << "n=" << n;
    EXPECT_LT(fft::rel_l2_error(got, want), kF32RelL2Tol) << "n=" << n;
  }
}

TEST(Ulp, F32CompositeRoundTripWithinBudget) {
  for (std::uint64_t n : {12ULL, 360ULL, 1000ULL, 101ULL}) {
    const auto input = random_signal32(n, 0xdead + n);
    auto data = input;
    fft::forward(data);
    fft::inverse(data);
    const auto want = widen(input);
    EXPECT_LT(util::max_ulp_error(data, want), 2 * kF32UlpTol) << "n=" << n;
    EXPECT_LT(fft::rel_l2_error(data, want), kF32RelL2Tol) << "n=" << n;
  }
}

TEST(Ulp, F64FourStepWithinBudget) {
  // Route mid sizes through the four-step decomposition and hold it to
  // the same peak-ULP discipline at double precision: the transpose
  // twiddles and the two sub-sweeps must not cost more than the classic
  // path's noise budget.
  fft::ExecutorOptions eopts;
  eopts.four_step_threshold_log2 = 10;
  fft::FftExecutor ex(eopts);
  for (unsigned logn : {10u, 12u, 14u}) {
    const std::uint64_t n = std::uint64_t{1} << logn;
    util::Xoshiro256 rng(0xf00d + logn);
    std::vector<cplx> input(n);
    for (auto& x : input)
      x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
    auto want = input;
    fft::fft_serial_inplace(want);

    auto got = input;
    ex.forward(std::span<cplx>(got));
    ASSERT_GE(ex.stats().four_step, 1u);
    std::vector<std::complex<double>> got_d(got.begin(), got.end());
    EXPECT_LT(util::max_ulp_error(got_d, want), kF64FourStepUlpTol) << "n=" << n;
    EXPECT_LT(fft::rel_l2_error(got, want), kF64RelL2Tol) << "n=" << n;

    auto trip = got;
    ex.inverse(std::span<cplx>(trip));
    EXPECT_LT(fft::rel_l2_error(trip, input), kF64RelL2Tol) << "n=" << n;
  }
}

}  // namespace
}  // namespace c64fft
