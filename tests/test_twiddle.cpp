#include "fft/twiddle.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numbers>
#include <vector>

namespace c64fft::fft {
namespace {

TEST(TwiddleTable, RejectsBadSizes) {
  EXPECT_THROW(TwiddleTable(0, TwiddleLayout::kLinear), std::invalid_argument);
  EXPECT_THROW(TwiddleTable(1, TwiddleLayout::kLinear), std::invalid_argument);
  EXPECT_THROW(TwiddleTable(100, TwiddleLayout::kLinear), std::invalid_argument);
}

TEST(TwiddleTable, SizeIsHalfN) {
  TwiddleTable t(1024, TwiddleLayout::kLinear);
  EXPECT_EQ(t.size(), 512u);
  EXPECT_EQ(t.fft_size(), 1024u);
  EXPECT_EQ(t.index_bits(), 9u);
}

TEST(TwiddleTable, KnownValues) {
  TwiddleTable t(8, TwiddleLayout::kLinear);
  // W[0] = 1, W[2] = e^{-i pi/2} = -i, W[1] = (1-i)/sqrt(2).
  EXPECT_NEAR(t.at(0).real(), 1.0, 1e-15);
  EXPECT_NEAR(t.at(0).imag(), 0.0, 1e-15);
  EXPECT_NEAR(t.at(2).real(), 0.0, 1e-15);
  EXPECT_NEAR(t.at(2).imag(), -1.0, 1e-15);
  EXPECT_NEAR(t.at(1).real(), std::sqrt(0.5), 1e-15);
  EXPECT_NEAR(t.at(1).imag(), -std::sqrt(0.5), 1e-15);
}

TEST(TwiddleTable, UnitModulus) {
  TwiddleTable t(256, TwiddleLayout::kLinear);
  for (std::uint64_t i = 0; i < t.size(); ++i)
    EXPECT_NEAR(std::abs(t.at(i)), 1.0, 1e-14);
}

TEST(TwiddleTable, BitReversedLayoutIsLogicallyIdentical) {
  // The "hash" only changes storage, never the value returned by at().
  TwiddleTable lin(512, TwiddleLayout::kLinear);
  TwiddleTable rev(512, TwiddleLayout::kBitReversed);
  for (std::uint64_t i = 0; i < lin.size(); ++i) {
    EXPECT_NEAR(lin.at(i).real(), rev.at(i).real(), 1e-15) << i;
    EXPECT_NEAR(lin.at(i).imag(), rev.at(i).imag(), 1e-15) << i;
  }
}

TEST(TwiddleTable, StorageIndexIsBijective) {
  TwiddleTable rev(256, TwiddleLayout::kBitReversed);
  std::vector<bool> seen(rev.size(), false);
  for (std::uint64_t i = 0; i < rev.size(); ++i) {
    const auto s = rev.storage_index(i);
    ASSERT_LT(s, rev.size());
    EXPECT_FALSE(seen[s]);
    seen[s] = true;
  }
}

TEST(TwiddleTable, StorageIndexLinearIsIdentity) {
  TwiddleTable lin(64, TwiddleLayout::kLinear);
  for (std::uint64_t i = 0; i < lin.size(); ++i) EXPECT_EQ(lin.storage_index(i), i);
}

TEST(TwiddleTable, StrideMultiplesOfFourScatterUnderHash) {
  // The whole point of the hash (Section IV-B): indices that are
  // multiples of 4 concentrate on one 64 B-interleaved bank linearly but
  // spread under bit reversal.
  TwiddleTable rev(1 << 12, TwiddleLayout::kBitReversed);
  std::array<int, 4> hist{};
  for (std::uint64_t t = 0; t < rev.size(); t += 32) {
    const auto slot = rev.storage_index(t);
    ++hist[(slot / 4) % 4];  // bank of a 16 B element under 64 B interleave
  }
  for (int h : hist) EXPECT_GT(h, 0);
}

TEST(TwiddleTable, InverseDirectionIsExactConjugate) {
  // The executor's inverse path relies on the inverse table being the
  // bitwise conjugate of the forward one (not just numerically close):
  // that is what makes the conj-twiddle FFT bit-identical to the classic
  // conj -> forward -> conj path.
  for (TwiddleLayout layout : {TwiddleLayout::kLinear, TwiddleLayout::kBitReversed}) {
    TwiddleTable fwd(512, layout);
    TwiddleTable inv(512, layout, TwiddleDirection::kInverse);
    EXPECT_EQ(fwd.direction(), TwiddleDirection::kForward);
    EXPECT_EQ(inv.direction(), TwiddleDirection::kInverse);
    for (std::uint64_t t = 0; t < fwd.size(); ++t) {
      EXPECT_EQ(inv.at(t).real(), fwd.at(t).real()) << t;
      EXPECT_EQ(inv.at(t).imag(), -fwd.at(t).imag()) << t;
    }
  }
}

TEST(TwiddleTable, MinimumSize) {
  TwiddleTable t(2, TwiddleLayout::kBitReversed);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_NEAR(t.at(0).real(), 1.0, 1e-15);
}

}  // namespace
}  // namespace c64fft::fft
