#include "fft/plan_stats.hpp"

#include <gtest/gtest.h>

namespace c64fft::fft {
namespace {

TEST(TrafficCensus, AccessCountsMatchPlanArithmetic) {
  const FftPlan plan(1ULL << 15, 6);
  const TrafficCensus census(plan, TwiddleLayout::kLinear);
  ASSERT_EQ(census.stages().size(), 3u);
  for (const auto& st : census.stages()) {
    std::uint64_t data = 0, tw = 0;
    for (unsigned b = 0; b < 4; ++b) {
      data += st.data_accesses[b];
      tw += st.twiddle_accesses[b];
    }
    EXPECT_EQ(data, plan.tasks_per_stage() * plan.radix() * 2) << st.stage;
    EXPECT_EQ(tw, plan.tasks_per_stage() * plan.twiddles_per_task(st.stage)) << st.stage;
  }
}

TEST(TrafficCensus, EarlyStageTwiddlesPinToBankZero) {
  // The paper's Section II observation, as exact arithmetic.
  const FftPlan plan(1ULL << 18, 6);
  const TrafficCensus census(plan, TwiddleLayout::kLinear);
  for (std::uint32_t s = 0; s < 2; ++s) {
    const auto& st = census.stages()[s];
    EXPECT_EQ(st.twiddle_accesses[0],
              plan.tasks_per_stage() * plan.twiddles_per_task(s));
    for (unsigned b = 1; b < 4; ++b) EXPECT_EQ(st.twiddle_accesses[b], 0u) << b;
  }
}

TEST(TrafficCensus, PaperThreeTimesObservation) {
  // "Bank 0 is accessed three times more than the other banks": in an
  // early stage, bank 0 carries ~(63 + 32) accesses per codelet against
  // ~32 on each other bank => bank0 ~= 3x bank1 and ~2x the mean.
  const FftPlan plan(1ULL << 18, 6);
  const TrafficCensus census(plan, TwiddleLayout::kLinear);
  const auto& st = census.stages()[1];
  const double ratio = static_cast<double>(st.bank_total(0)) /
                       static_cast<double>(st.bank_total(1));
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 3.5);
  EXPECT_NEAR(st.imbalance(), 2.0, 0.1);
}

TEST(TrafficCensus, LastStageIsBalanced) {
  const FftPlan plan(1ULL << 18, 6);
  const TrafficCensus census(plan, TwiddleLayout::kLinear);
  EXPECT_LT(census.stages().back().imbalance(), 1.2);
}

TEST(TrafficCensus, HashBalancesEveryStage) {
  const FftPlan plan(1ULL << 15, 6);
  const TrafficCensus census(plan, TwiddleLayout::kBitReversed);
  for (const auto& st : census.stages()) EXPECT_LT(st.imbalance(), 1.25) << st.stage;
  EXPECT_LT(census.total_imbalance(), 1.15);
}

TEST(TrafficCensus, DataAccessesAreBalancedAcrossTasks) {
  // Within a stage the *data* stream is bank-balanced (each task's data
  // may sit in one bank, but tasks rotate banks).
  const FftPlan plan(1ULL << 15, 6);
  const TrafficCensus census(plan, TwiddleLayout::kLinear);
  for (const auto& st : census.stages())
    for (unsigned b = 1; b < 4; ++b)
      EXPECT_EQ(st.data_accesses[b], st.data_accesses[0]) << st.stage << " " << b;
}

TEST(TrafficCensus, TotalsAndInvariantBound) {
  const FftPlan plan(1ULL << 12, 6);
  const TrafficCensus lin(plan, TwiddleLayout::kLinear);
  const TrafficCensus rev(plan, TwiddleLayout::kBitReversed);
  // Hash moves accesses between banks but conserves the total.
  std::uint64_t lin_sum = 0, rev_sum = 0;
  for (auto v : lin.totals()) lin_sum += v;
  for (auto v : rev.totals()) rev_sum += v;
  EXPECT_EQ(lin_sum, rev_sum);
  // Balancing strictly lowers the schedule-invariant bound.
  EXPECT_LT(rev.schedule_invariant_bound_cycles(8.0),
            lin.schedule_invariant_bound_cycles(8.0));
  // Bound sanity: busiest bank occupancy >= total/banks.
  EXPECT_GE(lin.schedule_invariant_bound_cycles(8.0),
            static_cast<double>(lin_sum) * 16.0 / 8.0 / 4.0);
}

TEST(TrafficCensus, BaseOffsetMovesTheHotBank) {
  const FftPlan plan(1ULL << 12, 6);
  const TrafficCensus census(plan, TwiddleLayout::kLinear, 4, 64, 0, 128);
  // Twiddle base on bank 2: stage 0's twiddle hotspot (all indices are
  // multiples of 4 elements there) follows the base bank.
  const auto& st = census.stages()[0];
  EXPECT_EQ(st.twiddle_accesses[2],
            plan.tasks_per_stage() * plan.twiddles_per_task(0));
  EXPECT_EQ(st.twiddle_accesses[0], 0u);
}

}  // namespace
}  // namespace c64fft::fft
