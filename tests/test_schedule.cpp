#include "fft/schedule.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "fft/executor.hpp"
#include "fft/kernels/dispatch.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

TunedSchedule sched(std::uint64_t n, Precision p, util::IsaLevel isa,
                    std::uint32_t radix, std::uint32_t fuse) {
  return TunedSchedule{n, p, isa, radix, fuse};
}

TEST(ScheduleSet, InsertReplacesByKeyAndFindMatchesExactly) {
  ScheduleSet set;
  set.insert(sched(4096, Precision::kF32, util::IsaLevel::kAvx2, 6, 3));
  set.insert(sched(4096, Precision::kF64, util::IsaLevel::kAvx2, 5, 2));
  set.insert(sched(4096, Precision::kF32, util::IsaLevel::kScalar, 4, 0));
  EXPECT_EQ(set.size(), 3u);

  // Same key replaces in place.
  set.insert(sched(4096, Precision::kF32, util::IsaLevel::kAvx2, 7, 0));
  EXPECT_EQ(set.size(), 3u);
  const auto hit = set.find(4096, Precision::kF32, util::IsaLevel::kAvx2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->radix_log2, 7u);
  EXPECT_EQ(hit->fuse_log2, 0u);

  // Every key component must match.
  EXPECT_FALSE(set.find(8192, Precision::kF32, util::IsaLevel::kAvx2));
  EXPECT_FALSE(set.find(4096, Precision::kF64, util::IsaLevel::kScalar));
  EXPECT_FALSE(set.find(4096, Precision::kF32, util::IsaLevel::kAvx512));
}

TEST(ScheduleSet, JsonRoundTripPreservesEveryEntry) {
  ScheduleSet set;
  set.insert(sched(1024, Precision::kF32, util::IsaLevel::kScalar, 5, 0));
  set.insert(sched(4096, Precision::kF64, util::IsaLevel::kAvx2, 6, 3));
  set.insert(sched(65536, Precision::kF32, util::IsaLevel::kAvx512, 8, 2));

  const ScheduleSet back = ScheduleSet::from_json(set.to_json());
  ASSERT_EQ(back.size(), set.size());
  for (const TunedSchedule& e : set.entries()) {
    const auto hit = back.find(e.n, e.precision, e.isa);
    ASSERT_TRUE(hit.has_value()) << "n=" << e.n;
    EXPECT_EQ(hit->radix_log2, e.radix_log2);
    EXPECT_EQ(hit->fuse_log2, e.fuse_log2);
  }
  EXPECT_TRUE(ScheduleSet::from_json(ScheduleSet().to_json()).empty());
}

TEST(ScheduleSet, JsonRoundTripPreservesHierarchicalKnobs) {
  // The fft_tune --hierarchical output: entries whose hierarchical knobs
  // are set round-trip exactly, and entries without them (the
  // pre-hierarchical format) parse to the 0 = planner-default sentinel —
  // the serialized text must not even mention the fields, so old files
  // re-serialize byte-identically.
  TunedSchedule hier = sched(1u << 20, Precision::kF64, util::IsaLevel::kAvx2,
                             6, 3);
  hier.hier_leaf_log2 = 11;
  hier.hier_block_rows = 32;
  ScheduleSet set;
  set.insert(hier);
  set.insert(sched(4096, Precision::kF32, util::IsaLevel::kScalar, 5, 2));

  const std::string json = set.to_json();
  const ScheduleSet back = ScheduleSet::from_json(json);
  const auto tuned = back.find(1u << 20, Precision::kF64,
                               util::IsaLevel::kAvx2);
  ASSERT_TRUE(tuned.has_value());
  EXPECT_EQ(tuned->hier_leaf_log2, 11u);
  EXPECT_EQ(tuned->hier_block_rows, 32u);

  const auto plain = back.find(4096, Precision::kF32, util::IsaLevel::kScalar);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->hier_leaf_log2, 0u);
  EXPECT_EQ(plain->hier_block_rows, 0u);

  // The default-valued entry's serialized line carries no hierarchical
  // fields (count the mentions: exactly one entry was non-default).
  std::size_t mentions = 0;
  for (std::size_t pos = json.find("hier_leaf_log2"); pos != std::string::npos;
       pos = json.find("hier_leaf_log2", pos + 1))
    ++mentions;
  EXPECT_EQ(mentions, 1u);
}

TEST(ScheduleSet, FromJsonRejectsOutOfRangeHierarchicalKnobs) {
  const auto entry = [](const std::string& body) {
    return "{\"version\":1,\"schedules\":[" + body + "]}";
  };
  EXPECT_THROW(ScheduleSet::from_json(entry(
                   "{\"n\":1048576,\"precision\":\"f64\",\"isa\":\"avx2\","
                   "\"radix_log2\":6,\"fuse_log2\":3,\"hier_leaf_log2\":3}")),
               std::invalid_argument);
  EXPECT_THROW(ScheduleSet::from_json(entry(
                   "{\"n\":1048576,\"precision\":\"f64\",\"isa\":\"avx2\","
                   "\"radix_log2\":6,\"fuse_log2\":3,\"hier_leaf_log2\":17}")),
               std::invalid_argument);
  EXPECT_THROW(ScheduleSet::from_json(entry(
                   "{\"n\":1048576,\"precision\":\"f64\",\"isa\":\"avx2\","
                   "\"radix_log2\":6,\"fuse_log2\":3,"
                   "\"hier_block_rows\":8192}")),
               std::invalid_argument);
}

TEST(ScheduleSet, FromJsonRejectsMalformedDocuments) {
  EXPECT_THROW(ScheduleSet::from_json("[]"), std::invalid_argument);
  EXPECT_THROW(ScheduleSet::from_json("{}"), std::invalid_argument);
  const auto entry = [](const std::string& body) {
    return "{\"version\":1,\"schedules\":[" + body + "]}";
  };
  // Missing field, bad enum, non-pow2 n, out-of-range knobs.
  EXPECT_THROW(ScheduleSet::from_json(entry(
                   "{\"n\":4096,\"precision\":\"f32\",\"isa\":\"avx2\","
                   "\"radix_log2\":6}")),
               std::invalid_argument);
  EXPECT_THROW(ScheduleSet::from_json(entry(
                   "{\"n\":4096,\"precision\":\"f16\",\"isa\":\"avx2\","
                   "\"radix_log2\":6,\"fuse_log2\":3}")),
               std::invalid_argument);
  EXPECT_THROW(ScheduleSet::from_json(entry(
                   "{\"n\":4096,\"precision\":\"f32\",\"isa\":\"auto\","
                   "\"radix_log2\":6,\"fuse_log2\":3}")),
               std::invalid_argument);
  EXPECT_THROW(ScheduleSet::from_json(entry(
                   "{\"n\":4095,\"precision\":\"f32\",\"isa\":\"avx2\","
                   "\"radix_log2\":6,\"fuse_log2\":3}")),
               std::invalid_argument);
  EXPECT_THROW(ScheduleSet::from_json(entry(
                   "{\"n\":4096,\"precision\":\"f32\",\"isa\":\"avx2\","
                   "\"radix_log2\":9,\"fuse_log2\":3}")),
               std::invalid_argument);
  EXPECT_THROW(ScheduleSet::from_json(entry(
                   "{\"n\":4096,\"precision\":\"f32\",\"isa\":\"avx2\","
                   "\"radix_log2\":6,\"fuse_log2\":1}")),
               std::invalid_argument);
}

// ---- Executor round trip ----

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v)
    x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

TEST(ScheduleExecutor, TunedRadixChangesTheExecutedPlanShape) {
  // Install a radix-4 schedule for (256, f64, active ISA). The tuned
  // transform must build the SAME plan-cache entry an explicit
  // radix_log2=4 call uses (a cache hit proves the executed radix
  // sequence changed), while the untuned default would have built a
  // radix-6 entry.
  FftExecutor exec;
  ScheduleSet set;
  set.insert(sched(256, Precision::kF64, kernels::active_kernel_isa(), 4, 3));
  exec.set_schedules(std::move(set));

  auto data = random_signal(256, 1);
  exec.forward(std::span<cplx>(data));
  ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_GE(stats.schedule_hits, 1u);

  // Explicit radix-4 call: same PlanKey -> pure cache hit.
  HostFftOptions opts;
  opts.workers = 1;
  opts.radix_log2 = 4;
  exec.forward(std::span<cplx>(data), opts);
  stats = exec.stats();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_GE(stats.cache.hits, 1u);

  // An explicit non-default radix always beats the schedule: radix 5 is a
  // new key, so a second miss appears. (An explicit 6 is indistinguishable
  // from the default and therefore still tuned — the documented contract.)
  opts.radix_log2 = 5;
  exec.forward(std::span<cplx>(data), opts);
  EXPECT_EQ(exec.stats().cache.misses, 2u);
}

TEST(ScheduleExecutor, EveryScheduleIsBitIdentical) {
  // fuse_log2/radix_log2 are pure scheduling: a tuned executor must give
  // bit-identical spectra to an untuned one.
  const auto input = random_signal(1024, 7);
  std::vector<cplx> base = input;
  {
    FftExecutor plain;
    plain.forward(std::span<cplx>(base));
  }
  for (const std::uint32_t radix : {4u, 5u, 6u}) {
    for (const std::uint32_t fuse : {0u, 2u, 3u}) {
      FftExecutor exec;
      ScheduleSet set;
      set.insert(
          sched(1024, Precision::kF64, kernels::active_kernel_isa(), radix, fuse));
      exec.set_schedules(std::move(set));
      std::vector<cplx> data = input;
      exec.forward(std::span<cplx>(data));
      for (std::uint64_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(data[i].real(), base[i].real())
            << "radix=" << radix << " fuse=" << fuse << " i=" << i;
        ASSERT_EQ(data[i].imag(), base[i].imag())
            << "radix=" << radix << " fuse=" << fuse << " i=" << i;
      }
    }
  }
}

TEST(ScheduleExecutor, LoadSchedulesRoundTripsThroughAFile) {
  const std::string path = ::testing::TempDir() + "c64fft_sched_test.json";
  {
    ScheduleSet set;
    set.insert(sched(512, Precision::kF64, kernels::active_kernel_isa(), 5, 2));
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << set.to_json();
  }
  FftExecutor exec;
  EXPECT_EQ(exec.load_schedules(path), 1u);
  auto data = random_signal(512, 3);
  exec.forward(std::span<cplx>(data));
  EXPECT_GE(exec.stats().schedule_hits, 1u);
  std::remove(path.c_str());

  EXPECT_THROW(exec.load_schedules("/nonexistent/sched.json"),
               std::runtime_error);
}

TEST(ScheduleExecutor, EnvScheduleLoadsAtConstruction) {
  const std::string path = ::testing::TempDir() + "c64fft_sched_env.json";
  {
    ScheduleSet set;
    set.insert(sched(512, Precision::kF64, kernels::active_kernel_isa(), 4, 0));
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << set.to_json();
  }
  setenv("C64FFT_SCHEDULE", path.c_str(), 1);
  {
    FftExecutor exec;
    auto data = random_signal(512, 9);
    exec.forward(std::span<cplx>(data));
    EXPECT_GE(exec.stats().schedule_hits, 1u);
  }
  // A malformed file is ignored (env contract: bad values change nothing).
  {
    std::ofstream out(path);
    out << "{not json";
  }
  {
    FftExecutor exec;
    auto data = random_signal(512, 9);
    exec.forward(std::span<cplx>(data));
    EXPECT_EQ(exec.stats().schedule_hits, 0u);
  }
  unsetenv("C64FFT_SCHEDULE");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace c64fft::fft
