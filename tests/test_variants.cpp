// The heart of the functional claims: every scheduling variant — coarse,
// fine (all orderings), guided, with either twiddle layout and any worker
// count — computes exactly the same FFT as the serial reference. This is
// the "well-behaved CDGs are determinate" property of Section III-C3.

#include "fft/variants.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fft/reference.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

void expect_matches_reference(std::uint64_t n, Variant variant,
                              const HostFftOptions& opts) {
  auto data = random_signal(n, n ^ 0x5EED);
  auto want = data;
  fft_serial_inplace(want);
  fft_host(data, variant, opts);
  // Same butterfly order within each task => bit-identical to the
  // stagewise kernel; vs the plain serial FFT only rounding-level
  // differences are possible.
  ASSERT_LT(max_abs_error(data, want), 1e-8)
      << to_string(variant) << " n=" << n << " workers=" << opts.workers;
}

class VariantCorrectness
    : public ::testing::TestWithParam<std::tuple<Variant, unsigned, std::uint64_t>> {};

TEST_P(VariantCorrectness, MatchesSerialReference) {
  const auto [variant, workers, n] = GetParam();
  HostFftOptions opts;
  opts.workers = workers;
  expect_matches_reference(n, variant, opts);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VariantCorrectness,
    ::testing::Combine(
        ::testing::Values(Variant::kCoarse, Variant::kFine, Variant::kGuided),
        ::testing::Values(1u, 4u),
        ::testing::Values(std::uint64_t{64}, std::uint64_t{1} << 12,
                          std::uint64_t{1} << 13, std::uint64_t{1} << 15)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Variants, HashedTwiddlesMatchReference) {
  for (Variant v : {Variant::kCoarse, Variant::kFine}) {
    HostFftOptions opts;
    opts.workers = 3;
    opts.layout = TwiddleLayout::kBitReversed;
    expect_matches_reference(1ULL << 13, v, opts);
  }
}

TEST(Variants, AllFineOrderingsAgreeBitExactly) {
  // Determinacy: the result must not depend on the execution order.
  const std::uint64_t n = 1ULL << 12;
  const auto input = random_signal(n, 99);
  std::vector<cplx> first;
  for (const auto& ordering : ordering_sweep()) {
    auto data = input;
    HostFftOptions opts;
    opts.workers = 4;
    opts.ordering = ordering;
    fft_host(data, Variant::kFine, opts);
    if (first.empty()) {
      first = data;
    } else {
      ASSERT_EQ(max_abs_error(data, first), 0.0) << to_string(ordering);
    }
  }
}

TEST(Variants, RepeatedRunsAreBitIdentical) {
  // With real threads racing on the pool, outputs must still be
  // deterministic (each element has a unique writer per stage).
  const std::uint64_t n = 1ULL << 13;
  const auto input = random_signal(n, 123);
  HostFftOptions opts;
  opts.workers = 4;
  std::vector<cplx> first;
  for (int run = 0; run < 3; ++run) {
    auto data = input;
    fft_host(data, Variant::kFine, opts);
    if (first.empty()) first = data;
    else ASSERT_EQ(max_abs_error(data, first), 0.0) << run;
  }
}

TEST(Variants, SmallerRadixAndPartialStages) {
  HostFftOptions opts;
  opts.workers = 2;
  opts.radix_log2 = 3;
  expect_matches_reference(1ULL << 10, Variant::kGuided, opts);  // 4 stages: 3+1 partial
  expect_matches_reference(1ULL << 9, Variant::kFine, opts);
  opts.radix_log2 = 6;
  expect_matches_reference(1ULL << 8, Variant::kFine, opts);  // cpt > R^{s-1} edge
  expect_matches_reference(1ULL << 8, Variant::kGuided, opts);  // degenerate guided
}

TEST(Variants, GuidedMinimumThreeStagePath) {
  HostFftOptions opts;
  opts.workers = 4;
  expect_matches_reference(1ULL << 18, Variant::kGuided, opts);  // exactly 3 full stages
  expect_matches_reference(1ULL << 19, Variant::kGuided, opts);  // 3 full + 1 partial
}

TEST(Variants, InvalidSizesThrow) {
  HostFftOptions opts;
  std::vector<cplx> one(1);  // any N >= 2 is valid now; N < 2 never is
  EXPECT_THROW(fft_host(one, Variant::kFine, opts), std::invalid_argument);
  std::vector<cplx> small(16);  // pow2 smaller than radix 64: strict path
  EXPECT_THROW(fft_host(small, Variant::kFine, opts), std::invalid_argument);
}

}  // namespace
}  // namespace c64fft::fft
