#include "util/timeseries.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace c64fft::util {
namespace {

TEST(WindowedSeries, RejectsBadArgs) {
  EXPECT_THROW(WindowedSeries(0, 10), std::invalid_argument);
  EXPECT_THROW(WindowedSeries(4, 0), std::invalid_argument);
}

TEST(WindowedSeries, EmptyHasNoWindows) {
  WindowedSeries s(4, 100);
  EXPECT_EQ(s.windows(), 0u);
  EXPECT_EQ(s.at(0, 0), 0u);
  EXPECT_EQ(s.at(57, 3), 0u);
}

TEST(WindowedSeries, BucketsByWindow) {
  WindowedSeries s(2, 100);
  s.record(0, 0);        // window 0
  s.record(99, 0);       // window 0
  s.record(100, 0);      // window 1
  s.record(250, 1, 5);   // window 2
  EXPECT_EQ(s.windows(), 3u);
  EXPECT_EQ(s.at(0, 0), 2u);
  EXPECT_EQ(s.at(1, 0), 1u);
  EXPECT_EQ(s.at(2, 1), 5u);
  EXPECT_EQ(s.at(2, 0), 0u);
}

TEST(WindowedSeries, ChannelSeriesAndTotals) {
  WindowedSeries s(3, 10);
  s.record(5, 2, 7);
  s.record(25, 2, 1);
  const auto series = s.channel_series(2);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0], 7u);
  EXPECT_EQ(series[1], 0u);
  EXPECT_EQ(series[2], 1u);
  EXPECT_EQ(s.channel_total(2), 8u);
  EXPECT_EQ(s.channel_total(0), 0u);
}

TEST(WindowedSeries, OutOfOrderRecording) {
  WindowedSeries s(1, 10);
  s.record(95, 0);
  s.record(5, 0);
  EXPECT_EQ(s.at(0, 0), 1u);
  EXPECT_EQ(s.at(9, 0), 1u);
}

TEST(WindowedSeries, Clear) {
  WindowedSeries s(1, 10);
  s.record(5, 0);
  s.clear();
  EXPECT_EQ(s.windows(), 0u);
  s.record(15, 0);
  EXPECT_EQ(s.at(1, 0), 1u);
}

}  // namespace
}  // namespace c64fft::util
