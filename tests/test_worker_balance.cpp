// The dynamic-balance claim of the fine-grain model (the prior-work
// property the paper builds on): the host runtime's pool spreads codelets
// evenly over the workers, even when codelet costs are skewed.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "codelet/host_runtime.hpp"
#include "fft/api.hpp"
#include "util/signal.hpp"

namespace c64fft::codelet {
namespace {

TEST(WorkerBalance, UniformCodeletsSpreadEvenly) {
  HostRuntime rt(4);
  std::vector<CodeletKey> seeds;
  for (std::uint64_t i = 0; i < 400; ++i) seeds.push_back({0, i});
  rt.run_phase(seeds, PoolPolicy::kLifo, [](CodeletKey, unsigned, Pusher&) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  });
  EXPECT_EQ(rt.executed(), 400u);
  ASSERT_EQ(rt.executed_per_worker().size(), 4u);
  std::uint64_t sum = 0;
  for (auto v : rt.executed_per_worker()) sum += v;
  EXPECT_EQ(sum, 400u);
  // Dynamic scheduling keeps the spread tight even on a loaded machine.
  EXPECT_LT(rt.balance_ratio(), 2.0);
}

TEST(WorkerBalance, SkewedCodeletCostsStillBalance) {
  // One in eight codelets is 20x more expensive; the pool must absorb it.
  HostRuntime rt(4);
  std::vector<CodeletKey> seeds;
  for (std::uint64_t i = 0; i < 160; ++i) seeds.push_back({0, i});
  rt.run_phase(seeds, PoolPolicy::kFifo, [](CodeletKey c, unsigned, Pusher&) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(c.index % 8 == 0 ? 400 : 20));
  });
  EXPECT_EQ(rt.executed(), 160u);
  EXPECT_LT(rt.balance_ratio(), 2.5);
}

TEST(WorkerBalance, SingleWorkerRatioIsOne) {
  HostRuntime rt(1);
  std::vector<CodeletKey> seeds{{0, 0}, {0, 1}};
  rt.run_phase(seeds, PoolPolicy::kLifo, [](CodeletKey, unsigned, Pusher&) {});
  EXPECT_DOUBLE_EQ(rt.balance_ratio(), 1.0);
}

TEST(WorkerBalance, EmptyRuntimeRatioIsOne) {
  HostRuntime rt(3);
  EXPECT_DOUBLE_EQ(rt.balance_ratio(), 1.0);
}

TEST(WorkerBalance, AccumulatesAcrossPhases) {
  HostRuntime rt(2);
  std::vector<CodeletKey> seeds;
  for (std::uint64_t i = 0; i < 10; ++i) seeds.push_back({0, i});
  rt.run_phase(seeds, PoolPolicy::kLifo, [](CodeletKey, unsigned, Pusher&) {});
  rt.run_phase(seeds, PoolPolicy::kLifo, [](CodeletKey, unsigned, Pusher&) {});
  EXPECT_EQ(rt.executed(), 20u);
  std::uint64_t sum = 0;
  for (auto v : rt.executed_per_worker()) sum += v;
  EXPECT_EQ(sum, 20u);
}

}  // namespace
}  // namespace c64fft::codelet
