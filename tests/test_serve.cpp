// FftServer / BufferArena / LatencyHistogram: the multi-tenant serving
// front-end. These tests pin the coalescing-correctness contract (a
// coalesced batch is bit-identical per transform to a loop of single
// executor calls, both precisions), the typed-rejection backpressure and
// per-tenant quotas, zero-copy arena lease semantics, the
// shutdown/teardown ordering (including the borrowed-executor close()
// race this layer exists to fix), and multi-tenant concurrent submission
// (run under TSan via C64FFT_TSAN).

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "serve/metrics.hpp"
#include "util/prng.hpp"

namespace c64fft::serve {
namespace {

template <typename T>
std::vector<std::complex<T>> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::complex<T>> v(n);
  for (auto& x : v)
    x = {static_cast<T>(rng.next_double() * 2 - 1),
         static_cast<T>(rng.next_double() * 2 - 1)};
  return v;
}

TenantQuota roomy_quota() {
  TenantQuota q;
  q.max_arena_bytes = std::size_t{16} << 20;
  q.max_plan_shapes = 16;
  return q;
}

// ---- BufferArena ----

TEST(BufferArena, LeaseIsAlignedZeroCopyAndRecycled) {
  ArenaOptions ao;
  ao.slab_bytes = 4096;
  ao.slab_count = 2;
  BufferArena arena(ao);
  arena.set_tenant_quota(0, std::size_t{1} << 20);

  auto r = arena.lease(0, 1024);
  ASSERT_EQ(r.status, LeaseStatus::kOk);
  ASSERT_TRUE(r.lease.valid());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(r.lease.as<fft::cplx>().data()) % 64,
            0u);
  EXPECT_EQ(r.lease.as<fft::cplx>().size(), 1024u / sizeof(fft::cplx));

  // Writing through the span and reading it back is the same memory —
  // the lease is a view into the arena, never a copy.
  r.lease.as<fft::cplx>()[0] = {3.0, -4.0};
  EXPECT_EQ(r.lease.as<fft::cplx>()[0], (fft::cplx{3.0, -4.0}));

  const std::byte* first = r.lease.as<std::byte>().data();
  EXPECT_EQ(arena.stats().slabs_in_use, 1u);
  r.lease.release();
  EXPECT_EQ(arena.stats().slabs_in_use, 0u);

  // The freed slab is reused (LIFO freelist: warm slab first).
  auto r2 = arena.lease(0, 4096);
  ASSERT_EQ(r2.status, LeaseStatus::kOk);
  EXPECT_EQ(r2.lease.as<std::byte>().data(), first);
}

TEST(BufferArena, TypedRejections) {
  ArenaOptions ao;
  ao.slab_bytes = 1024;
  ao.slab_count = 2;
  BufferArena arena(ao);
  arena.set_tenant_quota(0, 2048);
  arena.set_tenant_quota(1, 1024);

  EXPECT_EQ(arena.lease(7, 64).status, LeaseStatus::kUnknownTenant);
  EXPECT_EQ(arena.lease(0, 4096).status, LeaseStatus::kTooLarge);

  // Tenant 1's quota is one slab: the second lease is a quota reject
  // even though a free slab exists.
  auto a = arena.lease(1, 512);
  ASSERT_EQ(a.status, LeaseStatus::kOk);
  EXPECT_EQ(arena.lease(1, 512).status, LeaseStatus::kQuotaExceeded);

  // Tenant 0 may take the last slab; then the pool is dry for everyone.
  auto b = arena.lease(0, 512);
  ASSERT_EQ(b.status, LeaseStatus::kOk);
  EXPECT_EQ(arena.lease(0, 512).status, LeaseStatus::kExhausted);
  EXPECT_GE(arena.stats().rejected, 3u);
}

// ---- LatencyHistogram ----

TEST(LatencyHistogram, SnapshotTracksPercentilesAndMax) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(1000);
  h.record(1000000);
  const LatencySnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max_ns, 1000000u);
  // p50 lands in the 1000ns bucket; p99 boundary still within the bulk.
  EXPECT_GE(s.p50_ns, 512.0);
  EXPECT_LE(s.p50_ns, 2048.0);
  EXPECT_GE(s.p99_ns, s.p50_ns);
  EXPECT_GT(s.mean_ns, 1000.0);
}

// ---- FftServer: correctness ----

TEST(Serve, CoalescedBatchBitIdenticalToSingleCallLoop) {
  // Bit-identity, not tolerance: coalescing must never change results.
  // Reference: the same executor configuration, one forward() per
  // buffer. Submissions of one shape landing in one dispatch round are
  // grouped into a single forward_batch, which the executor pins as
  // bit-identical to the loop — so the server path must match exactly.
  constexpr std::uint64_t kN = 256;
  constexpr int kK = 8;
  ServerOptions so;
  so.coalesce_window_us = 200000;  // hold the batch open...
  so.max_coalesce = kK;            // ...until all kK requests are in
  so.arena.slab_bytes = kN * sizeof(fft::cplx);
  so.arena.slab_count = kK + 1;
  FftServer server(so);
  const TenantId t = server.add_tenant(roomy_quota());

  fft::FftExecutor reference;
  fft::HostFftOptions hopts;
  hopts.workers = 1;
  hopts.radix_log2 = fft::validate_fft_shape(kN, hopts.radix_log2, true);

  // f64 round.
  {
    std::vector<std::vector<fft::cplx>> want(kK);
    std::vector<BufferLease> leases;
    std::vector<Ticket> tickets;
    for (int i = 0; i < kK; ++i) {
      want[i] = random_signal<double>(kN, 100 + i);
      auto r = server.arena().lease(t, kN * sizeof(fft::cplx));
      ASSERT_EQ(r.status, LeaseStatus::kOk);
      std::memcpy(r.lease.as<fft::cplx>().data(), want[i].data(),
                  kN * sizeof(fft::cplx));
      leases.push_back(std::move(r.lease));
    }
    for (int i = 0; i < kK; ++i) {
      auto s = server.submit(t, leases[i].as<fft::cplx>(), Direction::kForward);
      ASSERT_EQ(s.status, SubmitStatus::kAccepted);
      tickets.push_back(std::move(s.ticket));
    }
    for (auto& tk : tickets)
      EXPECT_EQ(tk.wait().status, RequestStatus::kOk);
    for (int i = 0; i < kK; ++i) {
      reference.forward(std::span<fft::cplx>(want[i]), hopts);
      EXPECT_EQ(std::memcmp(leases[i].as<fft::cplx>().data(), want[i].data(),
                            kN * sizeof(fft::cplx)),
                0)
          << "f64 buffer " << i;
    }
  }

  // f32 round, inverse direction for coverage.
  {
    std::vector<std::vector<fft::cplx32>> want(kK);
    std::vector<BufferLease> leases;
    std::vector<Ticket> tickets;
    for (int i = 0; i < kK; ++i) {
      want[i] = random_signal<float>(kN, 200 + i);
      auto r = server.arena().lease(t, kN * sizeof(fft::cplx32));
      ASSERT_EQ(r.status, LeaseStatus::kOk);
      std::memcpy(r.lease.as<fft::cplx32>().data(), want[i].data(),
                  kN * sizeof(fft::cplx32));
      leases.push_back(std::move(r.lease));
    }
    for (int i = 0; i < kK; ++i) {
      auto s = server.submit(t, leases[i].as<fft::cplx32>(), Direction::kInverse);
      ASSERT_EQ(s.status, SubmitStatus::kAccepted);
      tickets.push_back(std::move(s.ticket));
    }
    for (auto& tk : tickets)
      EXPECT_EQ(tk.wait().status, RequestStatus::kOk);
    for (int i = 0; i < kK; ++i) {
      reference.inverse(std::span<fft::cplx32>(want[i]), hopts);
      EXPECT_EQ(std::memcmp(leases[i].as<fft::cplx32>().data(), want[i].data(),
                            kN * sizeof(fft::cplx32)),
                0)
          << "f32 buffer " << i;
    }
  }

  // The rounds really were coalesced, not drained one by one.
  EXPECT_GE(server.stats().coalescing_factor, 2.0);
}

TEST(Serve, MixedPow2AndCompositeTrafficCoalescesPerExactKey) {
  // One dispatch round of mixed traffic: a pow2 size, a 7-smooth
  // composite, and a prime, plus one f32 shape. Coalescing must group by
  // the EXACT (n, precision, direction) key — one executor batch per key,
  // never a padded or merged one — and every result must stay
  // bit-identical to a loop of single executor calls.
  constexpr int kK = 4;
  const std::uint64_t sizes64[3] = {256, 96, 101};
  constexpr std::uint64_t kN32 = 96;
  ServerOptions so;
  so.coalesce_window_us = 200000;  // hold the round open...
  so.max_coalesce = 4 * kK;        // ...until all 4 keys' requests are in
  so.arena.slab_bytes = 256 * sizeof(fft::cplx);
  so.arena.slab_count = 4 * kK + 1;
  FftServer server(so);
  const TenantId t = server.add_tenant(roomy_quota());

  fft::FftExecutor reference;
  fft::HostFftOptions hopts;
  hopts.workers = 1;

  std::vector<std::vector<fft::cplx>> want64;
  std::vector<std::vector<fft::cplx32>> want32;
  std::vector<BufferLease> leases64, leases32;
  for (int i = 0; i < kK; ++i) {
    for (std::uint64_t n : sizes64) {
      want64.push_back(random_signal<double>(n, 300 + want64.size()));
      auto r = server.arena().lease(t, n * sizeof(fft::cplx));
      ASSERT_EQ(r.status, LeaseStatus::kOk);
      std::memcpy(r.lease.as<fft::cplx>().data(), want64.back().data(),
                  n * sizeof(fft::cplx));
      leases64.push_back(std::move(r.lease));
    }
    want32.push_back(random_signal<float>(kN32, 400 + want32.size()));
    auto r = server.arena().lease(t, kN32 * sizeof(fft::cplx32));
    ASSERT_EQ(r.status, LeaseStatus::kOk);
    std::memcpy(r.lease.as<fft::cplx32>().data(), want32.back().data(),
                kN32 * sizeof(fft::cplx32));
    leases32.push_back(std::move(r.lease));
  }

  std::vector<Ticket> tickets;
  for (auto& l : leases64) {
    auto s = server.submit(t, l.as<fft::cplx>(), Direction::kForward);
    ASSERT_EQ(s.status, SubmitStatus::kAccepted);
    tickets.push_back(std::move(s.ticket));
  }
  for (auto& l : leases32) {
    auto s = server.submit(t, l.as<fft::cplx32>(), Direction::kForward);
    ASSERT_EQ(s.status, SubmitStatus::kAccepted);
    tickets.push_back(std::move(s.ticket));
  }
  for (auto& tk : tickets) EXPECT_EQ(tk.wait().status, RequestStatus::kOk);

  for (std::size_t i = 0; i < want64.size(); ++i) {
    const std::uint64_t n = want64[i].size();
    reference.forward(std::span<fft::cplx>(want64[i]), hopts);
    EXPECT_EQ(std::memcmp(leases64[i].as<fft::cplx>().data(),
                          want64[i].data(), n * sizeof(fft::cplx)),
              0)
        << "f64 n=" << n << " buffer " << i;
  }
  for (std::size_t i = 0; i < want32.size(); ++i) {
    reference.forward(std::span<fft::cplx32>(want32[i]), hopts);
    EXPECT_EQ(std::memcmp(leases32[i].as<fft::cplx32>().data(),
                          want32[i].data(), kN32 * sizeof(fft::cplx32)),
              0)
        << "f32 buffer " << i;
  }

  // Exactly one executor batch per exact key: {256,f64}, {96,f64},
  // {101,f64}, {96,f32} — the pow2 and composite shapes coalesced side by
  // side in one round, kK-deep each.
  const ServerStats st = server.stats();
  EXPECT_EQ(st.completed, 4u * kK);
  EXPECT_EQ(st.batches, 4u);
  EXPECT_GE(st.coalescing_factor, static_cast<double>(kK));
}

TEST(Serve, CallbackCompletionDeliversOnDispatcherThread) {
  FftServer server;
  const TenantId t = server.add_tenant(roomy_quota());
  auto data = random_signal<double>(64, 1);

  struct Ctx {
    std::atomic<int> calls{0};
    std::atomic<bool> ok{false};
  } ctx;
  const CompletionFn cb = [](void* p, const Completion& done) {
    auto* c = static_cast<Ctx*>(p);
    c->ok.store(done.status == RequestStatus::kOk && done.latency_ns > 0);
    c->calls.fetch_add(1);
  };
  auto s = server.submit(t, std::span<fft::cplx>(data), Direction::kForward,
                         Lane::kInteractive, cb, &ctx);
  ASSERT_EQ(s.status, SubmitStatus::kAccepted);
  EXPECT_FALSE(s.ticket.valid());  // callback mode mints no ticket
  while (ctx.calls.load() == 0) std::this_thread::yield();
  EXPECT_TRUE(ctx.ok.load());
  EXPECT_EQ(server.stats().completed, 1u);
}

// ---- FftServer: admission control ----

TEST(Serve, TypedSubmitRejections) {
  ServerOptions so;
  so.queue_capacity = 2;
  so.coalesce_window_us = 10000000;  // park admitted work until shutdown
  FftServer server(so);
  TenantQuota tight;
  tight.max_plan_shapes = 1;
  const TenantId t = server.add_tenant(tight);

  auto good = random_signal<double>(64, 2);
  auto tiny = random_signal<double>(1, 3);

  // Composite lengths are servable now (mixed-radix/Bluestein plans);
  // only the degenerate N < 2 is an invalid size.
  EXPECT_EQ(server
                .submit(t, std::span<fft::cplx>(tiny.data(), 1),
                        Direction::kForward)
                .status,
            SubmitStatus::kInvalidSize);
  EXPECT_EQ(server
                .submit(TenantId{42}, std::span<fft::cplx>(good),
                        Direction::kForward)
                .status,
            SubmitStatus::kUnknownTenant);

  // First shape (64, f64) charges the tenant's only plan-shape slot;
  // a second distinct shape is a quota reject...
  auto s1 = server.submit(t, std::span<fft::cplx>(good), Direction::kForward);
  ASSERT_EQ(s1.status, SubmitStatus::kAccepted);
  auto other = random_signal<double>(128, 4);
  EXPECT_EQ(
      server.submit(t, std::span<fft::cplx>(other), Direction::kForward).status,
      SubmitStatus::kPlanQuotaExceeded);
  // ...while more of the SAME shape is fine (until the pool runs out).
  auto good2 = random_signal<double>(64, 5);
  auto s2 = server.submit(t, std::span<fft::cplx>(good2), Direction::kForward);
  ASSERT_EQ(s2.status, SubmitStatus::kAccepted);

  // queue_capacity 2, both slots taken and parked in the coalescing
  // window: backpressure.
  auto good3 = random_signal<double>(64, 6);
  EXPECT_EQ(
      server.submit(t, std::span<fft::cplx>(good3), Direction::kForward).status,
      SubmitStatus::kQueueFull);

  const ServerStats st = server.stats();
  EXPECT_EQ(st.rejected_invalid, 1u);
  EXPECT_EQ(st.rejected_tenant, 1u);
  EXPECT_EQ(st.rejected_plan_quota, 1u);
  EXPECT_EQ(st.rejected_queue_full, 1u);

  // Shutdown still drains the two admitted requests to completion.
  server.shutdown();
  EXPECT_EQ(s1.ticket.wait().status, RequestStatus::kOk);
  EXPECT_EQ(s2.ticket.wait().status, RequestStatus::kOk);
  EXPECT_EQ(
      server.submit(t, std::span<fft::cplx>(good3), Direction::kForward).status,
      SubmitStatus::kShuttingDown);
}

TEST(Serve, LaneCapacityBackpressuresPerLane) {
  ServerOptions so;
  so.lane_capacity = {1, 4, 4};
  so.coalesce_window_us = 10000000;
  FftServer server(so);
  const TenantId t = server.add_tenant(roomy_quota());
  auto a = random_signal<double>(64, 7);
  auto b = random_signal<double>(64, 8);

  auto s1 = server.submit(t, std::span<fft::cplx>(a), Direction::kForward,
                          Lane::kInteractive);
  ASSERT_EQ(s1.status, SubmitStatus::kAccepted);
  // Interactive ring is full; the normal lane still admits.
  EXPECT_EQ(server
                .submit(t, std::span<fft::cplx>(b), Direction::kForward,
                        Lane::kInteractive)
                .status,
            SubmitStatus::kQueueFull);
  auto s2 = server.submit(t, std::span<fft::cplx>(b), Direction::kForward,
                          Lane::kNormal);
  EXPECT_EQ(s2.status, SubmitStatus::kAccepted);
  server.shutdown();
  EXPECT_EQ(s1.ticket.wait().status, RequestStatus::kOk);
  EXPECT_EQ(s2.ticket.wait().status, RequestStatus::kOk);
}

// ---- FftServer: shutdown & teardown ordering ----

TEST(Serve, ShutdownIsIdempotentAndDrains) {
  FftServer server;
  const TenantId t = server.add_tenant(roomy_quota());
  std::vector<std::vector<fft::cplx>> bufs;
  std::vector<Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    bufs.push_back(random_signal<double>(128, 10 + i));
    auto s =
        server.submit(t, std::span<fft::cplx>(bufs.back()), Direction::kForward);
    ASSERT_EQ(s.status, SubmitStatus::kAccepted);
    tickets.push_back(std::move(s.ticket));
  }
  server.shutdown();
  server.shutdown();  // idempotent
  for (auto& tk : tickets) EXPECT_EQ(tk.wait().status, RequestStatus::kOk);
  EXPECT_FALSE(server.accepting());
  EXPECT_EQ(server.stats().completed, 4u);
}

TEST(Serve, ShutdownRacesWithConcurrentSubmitters) {
  // The regression this layer fixes: tearing the serving path down while
  // clients are mid-submit must never lose an admitted request, deliver
  // a completion twice, or crash — every submit either completes or is
  // rejected with a typed status.
  ServerOptions so;
  so.workers = 2;
  FftServer server(so);
  const TenantId t = server.add_tenant(roomy_quota());

  constexpr int kThreads = 4;
  std::atomic<std::uint64_t> ok{0}, rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      auto data = random_signal<double>(64, 50 + ti);
      for (int i = 0; i < 200; ++i) {
        auto s =
            server.submit(t, std::span<fft::cplx>(data), Direction::kForward);
        if (s.status != SubmitStatus::kAccepted) {
          EXPECT_EQ(s.status, SubmitStatus::kShuttingDown);
          rejected.fetch_add(1);
          continue;
        }
        const Completion done = s.ticket.wait();
        EXPECT_NE(done.status, RequestStatus::kError);
        ok.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.shutdown();
  for (auto& th : threads) th.join();
  EXPECT_EQ(server.stats().completed, ok.load());
  EXPECT_EQ(ok.load() + rejected.load(), kThreads * 200u);
}

TEST(Serve, BorrowedExecutorClosedUnderneathIsTypedShutdown) {
  // Process-teardown ordering hazard: a server borrowing a shared
  // executor must survive that executor being close()d first — in-flight
  // requests complete with kShutdown (not a crash, not a hang), and the
  // server flips to rejecting.
  fft::FftExecutor shared_exec;
  ServerOptions so;
  so.executor = &shared_exec;
  FftServer server(so);
  const TenantId t = server.add_tenant(roomy_quota());

  auto data = random_signal<double>(64, 99);
  auto warm = server.submit(t, std::span<fft::cplx>(data), Direction::kForward);
  ASSERT_EQ(warm.status, SubmitStatus::kAccepted);
  EXPECT_EQ(warm.ticket.wait().status, RequestStatus::kOk);

  shared_exec.close();

  auto s = server.submit(t, std::span<fft::cplx>(data), Direction::kForward);
  ASSERT_EQ(s.status, SubmitStatus::kAccepted);
  EXPECT_EQ(s.ticket.wait().status, RequestStatus::kShutdown);
  EXPECT_FALSE(server.accepting());
  EXPECT_EQ(
      server.submit(t, std::span<fft::cplx>(data), Direction::kForward).status,
      SubmitStatus::kShuttingDown);
  // shutdown() must not try to close the borrowed (already closed)
  // executor.
  server.shutdown();
}

// ---- FftServer: multi-tenant stress (TSan lane) ----

TEST(Serve, MultiTenantConcurrentMixedTraffic) {
  // Mixed shapes, precisions, lanes, and completion styles from many
  // tenant threads at once, against a 2-worker executor. Run under TSan
  // (scripts/check.sh) this is the data-race proof for the whole
  // submit/dispatch/complete surface.
  ServerOptions so;
  so.workers = 2;
  so.coalesce_window_us = 100;
  so.arena.slab_bytes = 512 * sizeof(fft::cplx);
  so.arena.slab_count = 32;
  FftServer server(so);

  constexpr int kTenants = 4;
  constexpr int kPerTenant = 60;
  std::array<TenantId, kTenants> tenants;
  for (auto& id : tenants) id = server.add_tenant(roomy_quota());

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> cb_ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int ti = 0; ti < kTenants; ++ti) {
    threads.emplace_back([&, ti] {
      const TenantId tenant = tenants[ti];
      const std::uint64_t n = ti % 2 == 0 ? 128 : 512;
      const Lane lane = static_cast<Lane>(ti % kLaneCount);
      auto data64 = random_signal<double>(n, 1000 + ti);
      auto data32 = random_signal<float>(n, 2000 + ti);
      for (int i = 0; i < kPerTenant; ++i) {
        const Direction dir =
            i % 2 == 0 ? Direction::kForward : Direction::kInverse;
        if (i % 3 == 2) {
          // Callback-style completion; spin until delivered so the
          // buffer is never submitted twice concurrently.
          std::atomic<int> done{0};
          struct Ctx {
            std::atomic<int>* done;
            std::atomic<std::uint64_t>* cb_ok;
          } ctx{&done, &cb_ok};
          auto s = server.submit(
              tenant, std::span<fft::cplx32>(data32), dir, lane,
              [](void* p, const Completion& c) {
                auto* x = static_cast<Ctx*>(p);
                if (c.status == RequestStatus::kOk) x->cb_ok->fetch_add(1);
                x->done->store(1, std::memory_order_release);
              },
              &ctx);
          ASSERT_EQ(s.status, SubmitStatus::kAccepted);
          while (done.load(std::memory_order_acquire) == 0)
            std::this_thread::yield();
        } else {
          auto s = server.submit(tenant, std::span<fft::cplx>(data64), dir, lane);
          ASSERT_EQ(s.status, SubmitStatus::kAccepted);
          if (s.ticket.wait().status == RequestStatus::kOk) ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const ServerStats st = server.stats();
  EXPECT_EQ(st.completed, kTenants * static_cast<std::uint64_t>(kPerTenant));
  EXPECT_EQ(ok.load() + cb_ok.load(), st.completed);
  EXPECT_EQ(st.rejected_queue_full, 0u);
  EXPECT_GT(st.executor.cache.entries, 0u);  // PlanCache::stats() surfaced
  server.shutdown();
}

TEST(Serve, DefaultServerBorrowsDefaultExecutor) {
  FftServer& server = default_server();
  ASSERT_TRUE(server.accepting());
  const TenantId t = server.add_tenant(roomy_quota());
  auto data = random_signal<double>(64, 321);
  auto s = server.submit(t, std::span<fft::cplx>(data), Direction::kForward);
  ASSERT_EQ(s.status, SubmitStatus::kAccepted);
  EXPECT_EQ(s.ticket.wait().status, RequestStatus::kOk);
  // Teardown ordering (server drained before the borrowed executor dies)
  // is exercised at process exit of this very binary.
}

}  // namespace
}  // namespace c64fft::serve
