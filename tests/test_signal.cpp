#include "util/signal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fft/api.hpp"

namespace c64fft::util {
namespace {

TEST(SignalBuilder, RejectsBadRate) {
  EXPECT_THROW(SignalBuilder(16, 0.0), std::invalid_argument);
  EXPECT_THROW(SignalBuilder(16, -1.0), std::invalid_argument);
}

TEST(SignalBuilder, StartsSilent) {
  SignalBuilder sig(64, 64.0);
  for (double s : sig.real()) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(SignalBuilder, ToneHasRightFrequencyAndAmplitude) {
  const std::size_t n = 1024;
  SignalBuilder sig(n, static_cast<double>(n));
  sig.tone({8.0, 2.0, 0.0});
  const auto& s = sig.real();
  // Peak amplitude ~2, zero crossings every n/16 samples.
  double peak = 0;
  for (double v : s) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 2.0, 1e-3);
  EXPECT_NEAR(s[0], 0.0, 1e-12);
  EXPECT_NEAR(s[n / 32], 2.0, 1e-9);  // quarter period of the 8-cycle tone
}

TEST(SignalBuilder, ComponentsSuperimpose) {
  SignalBuilder a(128, 128.0), b(128, 128.0), both(128, 128.0);
  a.tone({4.0, 1.0, 0.0});
  b.dc(0.5);
  both.tone({4.0, 1.0, 0.0}).dc(0.5);
  for (std::size_t i = 0; i < 128; ++i)
    EXPECT_DOUBLE_EQ(both.real()[i], a.real()[i] + b.real()[i]);
}

TEST(SignalBuilder, NoiseIsDeterministicAndBounded) {
  SignalBuilder a(256, 256.0), b(256, 256.0), c(256, 256.0);
  a.noise(0.5, 42);
  b.noise(0.5, 42);
  c.noise(0.5, 43);
  EXPECT_EQ(a.real(), b.real());
  EXPECT_NE(a.real(), c.real());
  for (double v : a.real()) EXPECT_LE(std::abs(v), 0.5);
}

TEST(SignalBuilder, ImpulseAndBounds) {
  SignalBuilder sig(16, 16.0);
  sig.impulse(3, 2.5);
  EXPECT_DOUBLE_EQ(sig.real()[3], 2.5);
  EXPECT_DOUBLE_EQ(sig.real()[4], 0.0);
  EXPECT_THROW(sig.impulse(16), std::out_of_range);
}

TEST(SignalBuilder, ChirpSweepsUpInFrequency) {
  // Spectral centroid of the second half must exceed the first half's.
  const std::size_t n = 4096;
  SignalBuilder sig(n, static_cast<double>(n));
  sig.chirp(100.0, 1000.0);
  auto centroid = [&](std::size_t offset) {
    std::vector<double> half(sig.real().begin() + offset,
                             sig.real().begin() + offset + n / 2);
    const auto spec = fft::power_spectrum(half);
    double num = 0, den = 0;
    for (std::size_t k = 0; k < spec.size(); ++k) {
      num += static_cast<double>(k) * spec[k];
      den += spec[k];
    }
    return num / den;
  };
  EXPECT_GT(centroid(n / 2), 1.5 * centroid(0));
}

TEST(SignalBuilder, ComplexViewMatchesReal) {
  SignalBuilder sig(32, 32.0);
  sig.tone({1.0, 1.0, 0.3});
  const auto c = sig.complex();
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(c[i].real(), sig.real()[i]);
    EXPECT_DOUBLE_EQ(c[i].imag(), 0.0);
  }
}

TEST(RandomComplex, DeterministicUnitBox) {
  const auto a = random_complex(100, 7);
  const auto b = random_complex(100, 7);
  EXPECT_EQ(a, b);
  for (const auto& v : a) {
    EXPECT_LT(std::abs(v.real()), 1.0);
    EXPECT_LT(std::abs(v.imag()), 1.0);
  }
}

}  // namespace
}  // namespace c64fft::util
