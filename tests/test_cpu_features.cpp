#include "util/cpu_features.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace c64fft::util {
namespace {

struct EnvGuard {
  ~EnvGuard() { unsetenv("C64FFT_ISA"); }
};

TEST(CpuFeatures, NamesRoundTripThroughParse) {
  for (const IsaLevel level :
       {IsaLevel::kScalar, IsaLevel::kAvx2, IsaLevel::kAvx512}) {
    const std::optional<IsaLevel> parsed = parse_isa_name(to_string(level));
    ASSERT_TRUE(parsed.has_value()) << to_string(level);
    EXPECT_EQ(*parsed, level);
  }
}

TEST(CpuFeatures, ParseRejectsUnknownNames) {
  EXPECT_FALSE(parse_isa_name("").has_value());
  EXPECT_FALSE(parse_isa_name("sse2").has_value());
  EXPECT_FALSE(parse_isa_name("AVX2").has_value());  // names are lower-case
  EXPECT_FALSE(parse_isa_name("avx-512").has_value());
}

TEST(CpuFeatures, AutoMeansBestSupported) {
  const std::optional<IsaLevel> parsed = parse_isa_name("auto");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, best_supported_isa());
}

TEST(CpuFeatures, LadderIsConsistent) {
  // Scalar always runs; the best supported level is itself supported; and
  // support is monotone down the ladder (a level implies every lower one).
  EXPECT_TRUE(isa_supported(IsaLevel::kScalar));
  EXPECT_TRUE(isa_supported(best_supported_isa()));
  if (isa_supported(IsaLevel::kAvx512)) EXPECT_TRUE(isa_supported(IsaLevel::kAvx2));
  if (cpu_features().avx512) EXPECT_TRUE(cpu_features().avx2);
}

TEST(CpuFeatures, FeatureBitsMatchSupportedLevels) {
  EXPECT_EQ(isa_supported(IsaLevel::kAvx2), cpu_features().avx2);
  EXPECT_EQ(isa_supported(IsaLevel::kAvx512), cpu_features().avx512);
}

TEST(CpuFeatures, EnvNarrowsButNeverWidens) {
  EnvGuard guard;
  setenv("C64FFT_ISA", "scalar", 1);
  EXPECT_EQ(isa_from_env(), IsaLevel::kScalar);
  // A request above hardware support clamps down, never up.
  setenv("C64FFT_ISA", "avx512", 1);
  EXPECT_LE(static_cast<int>(isa_from_env()),
            static_cast<int>(best_supported_isa()));
  // Unset / empty / garbage all mean "auto".
  unsetenv("C64FFT_ISA");
  EXPECT_EQ(isa_from_env(), best_supported_isa());
  setenv("C64FFT_ISA", "", 1);
  EXPECT_EQ(isa_from_env(), best_supported_isa());
  setenv("C64FFT_ISA", "quantum", 1);
  EXPECT_EQ(isa_from_env(), best_supported_isa());
}

}  // namespace
}  // namespace c64fft::util
