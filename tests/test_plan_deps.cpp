// Brute-force cross-validation of the plan's dependency algebra: the
// ground-truth dependency is "task B of stage s+1 reads an element that
// task A of stage s wrote". We build that relation by element ownership
// and check parents_of / children_of / group_of / group_threshold /
// group_parents against it, for full-stage and partial-last-stage plans
// and several radices. This is the test that pins down Section IV-A2.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "codelet/graph.hpp"
#include "fft/plan.hpp"

namespace c64fft::fft {
namespace {

using TaskSet = std::set<std::uint64_t>;

// Owner task of every element in a stage.
std::vector<std::uint64_t> owners(const FftPlan& p, std::uint32_t s) {
  std::vector<std::uint64_t> own(p.size());
  for (std::uint64_t i = 0; i < p.tasks_per_stage(); ++i)
    for (std::uint64_t k = 0; k < p.radix(); ++k) own[p.element_index(s, i, k)] = i;
  return own;
}

// Ground-truth parent sets of stage s+1 tasks.
std::vector<TaskSet> true_parents(const FftPlan& p, std::uint32_t s) {
  const auto own_prev = owners(p, s);
  std::vector<TaskSet> parents(p.tasks_per_stage());
  for (std::uint64_t i = 0; i < p.tasks_per_stage(); ++i)
    for (std::uint64_t k = 0; k < p.radix(); ++k)
      parents[i].insert(own_prev[p.element_index(s + 1, i, k)]);
  return parents;
}

class PlanDepsTest : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(PlanDepsTest, ParentsMatchElementOwnership) {
  const auto [n, r] = GetParam();
  const FftPlan p(n, r);
  std::vector<std::uint64_t> got;
  for (std::uint32_t s = 0; s + 1 < p.stage_count(); ++s) {
    const auto truth = true_parents(p, s);
    for (std::uint64_t l = 0; l < p.tasks_per_stage(); ++l) {
      p.parents_of(s + 1, l, got);
      const TaskSet got_set(got.begin(), got.end());
      ASSERT_EQ(got_set.size(), got.size()) << "duplicate parents, stage " << s + 1;
      ASSERT_EQ(got_set, truth[l]) << "stage " << s + 1 << " task " << l;
    }
  }
}

TEST_P(PlanDepsTest, ThresholdEqualsDistinctParentCount) {
  const auto [n, r] = GetParam();
  const FftPlan p(n, r);
  for (std::uint32_t s = 1; s < p.stage_count(); ++s) {
    const auto truth = true_parents(p, s - 1);
    for (std::uint64_t l = 0; l < p.tasks_per_stage(); ++l)
      ASSERT_EQ(p.group_threshold(s), truth[l].size()) << s << " " << l;
  }
}

TEST_P(PlanDepsTest, ChildrenAreInverseOfParents) {
  const auto [n, r] = GetParam();
  const FftPlan p(n, r);
  std::vector<std::uint64_t> buf;
  for (std::uint32_t s = 0; s + 1 < p.stage_count(); ++s) {
    // children_of(s, i) == { l : i in parents_of(s+1, l) }
    std::map<std::uint64_t, TaskSet> inverse;
    for (std::uint64_t l = 0; l < p.tasks_per_stage(); ++l) {
      p.parents_of(s + 1, l, buf);
      for (std::uint64_t par : buf) inverse[par].insert(l);
    }
    for (std::uint64_t i = 0; i < p.tasks_per_stage(); ++i) {
      p.children_of(s, i, buf);
      ASSERT_EQ(TaskSet(buf.begin(), buf.end()), inverse[i]) << s << " " << i;
    }
  }
}

TEST_P(PlanDepsTest, GroupsPartitionStageAndShareParents) {
  const auto [n, r] = GetParam();
  const FftPlan p(n, r);
  std::vector<std::uint64_t> members, parents, ref_parents;
  for (std::uint32_t s = 1; s < p.stage_count(); ++s) {
    const std::uint64_t groups = p.groups_in_stage(s);
    ASSERT_EQ(groups * p.group_size(s), p.tasks_per_stage());
    std::vector<int> covered(p.tasks_per_stage(), 0);
    for (std::uint64_t g = 0; g < groups; ++g) {
      p.group_members(s, g, members);
      ASSERT_EQ(members.size(), p.group_size(s));
      for (std::uint64_t m : members) {
        ASSERT_EQ(p.group_of(s, m), g);
        ++covered[m];
      }
      // Every member has the same parent set == group_parents.
      p.group_parents(s, g, ref_parents);
      const TaskSet ref(ref_parents.begin(), ref_parents.end());
      ASSERT_EQ(ref.size(), p.group_threshold(s));
      for (std::uint64_t m : members) {
        p.parents_of(s, m, parents);
        ASSERT_EQ(TaskSet(parents.begin(), parents.end()), ref) << s << " " << m;
      }
    }
    for (std::uint64_t l = 0; l < p.tasks_per_stage(); ++l) ASSERT_EQ(covered[l], 1);
  }
}

TEST_P(PlanDepsTest, ChildGroupIsConsistent) {
  const auto [n, r] = GetParam();
  const FftPlan p(n, r);
  std::vector<std::uint64_t> children;
  for (std::uint32_t s = 0; s + 1 < p.stage_count(); ++s) {
    for (std::uint64_t i = 0; i < p.tasks_per_stage(); ++i) {
      const std::uint64_t g = p.child_group(s, i);
      p.children_of(s, i, children);
      for (std::uint64_t c : children) ASSERT_EQ(p.group_of(s + 1, c), g);
    }
  }
}

TEST_P(PlanDepsTest, CdgIsWellBehavedAndFiresCompletely) {
  const auto [n, r] = GetParam();
  const FftPlan p(n, r);
  codelet::CodeletGraph g;
  std::vector<std::uint64_t> parents;
  for (std::uint64_t i = 0; i < p.tasks_per_stage(); ++i)
    g.add_node({0, i});
  for (std::uint32_t s = 1; s < p.stage_count(); ++s)
    for (std::uint64_t l = 0; l < p.tasks_per_stage(); ++l) {
      p.parents_of(s, l, parents);
      for (std::uint64_t par : parents) g.add_edge({s - 1, par}, {s, l});
    }
  EXPECT_TRUE(g.is_well_behaved());
  EXPECT_EQ(g.node_count(), p.total_tasks());
  for (auto policy : {codelet::PoolPolicy::kFifo, codelet::PoolPolicy::kLifo}) {
    const auto fired = g.simulate_firing(policy);
    EXPECT_EQ(fired.size(), p.total_tasks());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanDepsTest,
    ::testing::Values(
        std::pair<std::uint64_t, unsigned>{1ULL << 12, 6},  // two full stages
        std::pair<std::uint64_t, unsigned>{1ULL << 15, 6},  // partial last (3 lvls)
        std::pair<std::uint64_t, unsigned>{1ULL << 13, 6},  // partial last (1 lvl)
        std::pair<std::uint64_t, unsigned>{1ULL << 8, 6},   // cpt > R^{s-1} degenerate
        std::pair<std::uint64_t, unsigned>{1ULL << 9, 3},   // radix 8, full stages
        std::pair<std::uint64_t, unsigned>{1ULL << 10, 3},  // radix 8, partial
        std::pair<std::uint64_t, unsigned>{1ULL << 6, 2},   // radix 4
        std::pair<std::uint64_t, unsigned>{1ULL << 7, 2},   // radix 4, partial
        std::pair<std::uint64_t, unsigned>{1ULL << 8, 1},   // radix 2 (EARTH-like)
        std::pair<std::uint64_t, unsigned>{1ULL << 14, 7}), // radix 128
    [](const auto& info) {
      return "N" + std::to_string(info.param.first) + "_r" +
             std::to_string(info.param.second);
    });

}  // namespace
}  // namespace c64fft::fft
