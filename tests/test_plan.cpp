#include "fft/plan.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "util/bit_ops.hpp"

namespace c64fft::fft {
namespace {

TEST(FftPlan, RejectsBadArgs) {
  EXPECT_THROW(FftPlan(100, 6), std::invalid_argument);
  EXPECT_THROW(FftPlan(32, 6), std::invalid_argument);  // N < radix
  EXPECT_THROW(FftPlan(64, 0), std::invalid_argument);
  EXPECT_THROW(FftPlan(64, 9), std::invalid_argument);
}

TEST(FftPlan, StageCountMatchesPaper) {
  // ceil(log2 N / 6) stages (Alg. 1).
  EXPECT_EQ(FftPlan(1ULL << 15, 6).stage_count(), 3u);
  EXPECT_EQ(FftPlan(1ULL << 18, 6).stage_count(), 3u);
  EXPECT_EQ(FftPlan(1ULL << 19, 6).stage_count(), 4u);
  EXPECT_EQ(FftPlan(1ULL << 22, 6).stage_count(), 4u);
  EXPECT_EQ(FftPlan(1ULL << 24, 6).stage_count(), 4u);
}

TEST(FftPlan, TasksPerStage) {
  const FftPlan p(1ULL << 15, 6);
  EXPECT_EQ(p.tasks_per_stage(), 512u);
  EXPECT_EQ(p.total_tasks(), 512u * 3u);
}

TEST(FftPlan, FullStageShape) {
  const FftPlan p(1ULL << 18, 6);
  for (std::uint32_t s = 0; s < 3; ++s) {
    const StageInfo& st = p.stage(s);
    EXPECT_FALSE(st.partial);
    EXPECT_EQ(st.levels, 6u);
    EXPECT_EQ(st.chains_per_task, 1u);
    EXPECT_EQ(st.chain_len, 64u);
    EXPECT_EQ(st.chain_stride, util::ipow(64, s));
  }
}

TEST(FftPlan, PartialLastStageShape) {
  const FftPlan p(1ULL << 15, 6);  // 15 = 6 + 6 + 3
  const StageInfo& st = p.stage(2);
  EXPECT_TRUE(st.partial);
  EXPECT_EQ(st.levels, 3u);
  EXPECT_EQ(st.chain_len, 8u);
  EXPECT_EQ(st.chains_per_task, 8u);
  EXPECT_EQ(st.chain_stride, 4096u);
}

TEST(FftPlan, ElementIndexMatchesPaperFormulaFullStages) {
  // data_k = D[64^{j+1} * floor(i/64^j) + i mod 64^j + k*64^j]
  const FftPlan p(1ULL << 18, 6);
  for (std::uint32_t j = 0; j < 3; ++j) {
    const std::uint64_t rj = util::ipow(64, j);
    const std::uint64_t rj1 = util::ipow(64, j + 1);
    for (std::uint64_t i : {std::uint64_t{0}, std::uint64_t{7}, std::uint64_t{80},
                            p.tasks_per_stage() - 1}) {
      for (std::uint64_t k : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{63}}) {
        EXPECT_EQ(p.element_index(j, i, k), rj1 * (i / rj) + i % rj + k * rj)
            << j << " " << i << " " << k;
      }
    }
  }
}

TEST(FftPlan, ElementsStayInRangeEverywhere) {
  for (const std::uint64_t n : {1ULL << 12, 1ULL << 15, 1ULL << 16}) {
    const FftPlan p(n, 6);
    for (std::uint32_t s = 0; s < p.stage_count(); ++s)
      for (std::uint64_t i = 0; i < p.tasks_per_stage(); ++i)
        for (std::uint64_t k = 0; k < p.radix(); ++k)
          ASSERT_LT(p.element_index(s, i, k), n) << s << " " << i << " " << k;
  }
}

TEST(FftPlan, EveryStagePartitionsTheArray) {
  // Each stage's tasks touch every element exactly once.
  for (const std::uint64_t n : {1ULL << 12, 1ULL << 15}) {
    const FftPlan p(n, 6);
    for (std::uint32_t s = 0; s < p.stage_count(); ++s) {
      std::vector<int> hits(n, 0);
      for (std::uint64_t i = 0; i < p.tasks_per_stage(); ++i)
        for (std::uint64_t k = 0; k < p.radix(); ++k) ++hits[p.element_index(s, i, k)];
      for (std::uint64_t e = 0; e < n; ++e) ASSERT_EQ(hits[e], 1) << s << " " << e;
    }
  }
}

TEST(FftPlan, TwiddleIndexMatchesPaperFormulaFullStage) {
  // W[((i mod 64^j) + (k mod 2^v) * 64^j) * 2^{n-L-1}]
  const FftPlan p(1ULL << 18, 6);
  for (std::uint32_t j : {0u, 1u, 2u}) {
    const std::uint64_t rj = util::ipow(64, j);
    for (std::uint64_t i : {std::uint64_t{3}, std::uint64_t{100}}) {
      for (std::uint32_t v = 0; v < 6; ++v) {
        for (std::uint64_t k = 0; k < (std::uint64_t{1} << v); ++k) {
          const std::uint64_t expected =
              ((i % rj) + (k % (std::uint64_t{1} << v)) * rj)
              << (18 - (6 * j + v) - 1);
          EXPECT_EQ(p.twiddle_index(j, i, v, k), expected) << j << " " << i;
        }
      }
    }
  }
}

TEST(FftPlan, TwiddleIndicesInRange) {
  for (const std::uint64_t n : {1ULL << 12, 1ULL << 15}) {
    const FftPlan p(n, 6);
    for (std::uint32_t s = 0; s < p.stage_count(); ++s) {
      const StageInfo& st = p.stage(s);
      for (std::uint64_t i = 0; i < p.tasks_per_stage(); i += 13) {
        for (std::uint32_t v = 0; v < st.levels; ++v)
          for (std::uint64_t c = 0; c < st.chains_per_task; ++c)
            for (std::uint64_t q = 0; q < (std::uint64_t{1} << v); ++q)
              ASSERT_LT(p.twiddle_index(s, i, v, c * st.chain_len + q), n / 2);
      }
    }
  }
}

TEST(FftPlan, EarlyStageTwiddlesAreMultiplesOfFour) {
  // The paper's observation behind Fig. 1: for all levels L <= n-5 the
  // twiddle index is a multiple of 4 elements, pinning accesses to the
  // base bank under 64 B interleave.
  const FftPlan p(1ULL << 18, 6);
  for (std::uint32_t j : {0u, 1u}) {
    const StageInfo& st = p.stage(j);
    for (std::uint64_t i = 0; i < p.tasks_per_stage(); i += 29)
      for (std::uint32_t v = 0; v < st.levels; ++v)
        for (std::uint64_t q = 0; q < (std::uint64_t{1} << v); ++q)
          ASSERT_EQ(p.twiddle_index(j, i, v, q) % 4, 0u);
  }
}

TEST(FftPlan, LastStageTwiddlesHitAllResidues) {
  const FftPlan p(1ULL << 18, 6);
  std::set<std::uint64_t> residues;
  const StageInfo& st = p.stage(2);
  for (std::uint64_t i = 0; i < p.tasks_per_stage(); ++i)
    for (std::uint32_t v = 0; v < st.levels; ++v)
      for (std::uint64_t q = 0; q < (std::uint64_t{1} << v); ++q)
        residues.insert(p.twiddle_index(2, i, v, q) % 4);
  EXPECT_EQ(residues.size(), 4u);
}

TEST(FftPlan, TwiddlesPerTask) {
  const FftPlan full(1ULL << 18, 6);
  for (std::uint32_t s = 0; s < 3; ++s) EXPECT_EQ(full.twiddles_per_task(s), 63u);
  const FftPlan part(1ULL << 15, 6);
  EXPECT_EQ(part.twiddles_per_task(0), 63u);
  EXPECT_EQ(part.twiddles_per_task(2), 8u * 7u);  // cpt * (2^w - 1)
}

TEST(FftPlan, FlopsPerTask) {
  const FftPlan p(1ULL << 15, 6);
  EXPECT_EQ(p.flops_per_task(0), 5u * 64u * 6u);  // 1920, Section V-A
  EXPECT_EQ(p.flops_per_task(2), 5u * 64u * 3u);  // partial: 3 levels
  // Total flops over all tasks = 5 N log2 N.
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < p.stage_count(); ++s)
    total += p.flops_per_task(s) * p.tasks_per_stage();
  EXPECT_EQ(total, 5ULL * (1ULL << 15) * 15ULL);
}

TEST(FftPlan, PaperChildExample) {
  // Section IV-A2: the 80th codelet of stage 3 has parents 80 + 4096*m in
  // stage 2, and 4176 shares them.
  const FftPlan p(1ULL << 24, 6);
  std::vector<std::uint64_t> parents;
  p.parents_of(3, 80, parents);
  ASSERT_EQ(parents.size(), 64u);
  for (std::uint64_t m = 0; m < 64; ++m) EXPECT_EQ(parents[m], 80 + 4096 * m);
  std::vector<std::uint64_t> parents2;
  p.parents_of(3, 4176, parents2);
  EXPECT_EQ(parents, parents2);
  EXPECT_EQ(p.group_of(3, 80), p.group_of(3, 4176));
}

TEST(FftPlan, SmallRadixPlans) {
  // Radix 2 (task = one butterfly pair... 2-point codelet) still works.
  const FftPlan p(16, 1);
  EXPECT_EQ(p.stage_count(), 4u);
  EXPECT_EQ(p.tasks_per_stage(), 8u);
  EXPECT_EQ(p.twiddles_per_task(0), 1u);
  const FftPlan q(64, 3);
  EXPECT_EQ(q.stage_count(), 2u);
  EXPECT_EQ(q.tasks_per_stage(), 8u);
}

TEST(FftPlan, TaskElementsMatchesElementIndex) {
  const std::vector<std::pair<std::uint64_t, unsigned>> cases = {
      {4096, 6}, {1024, 6} /* partial last stage */, {512, 3}};
  for (const auto& [n, r] : cases) {
    const FftPlan p(n, r);
    std::vector<std::uint64_t> elems;
    for (std::uint32_t s = 0; s < p.stage_count(); ++s) {
      p.task_elements(s, p.tasks_per_stage() - 1, elems);
      ASSERT_EQ(elems.size(), p.radix());
      for (std::uint64_t k = 0; k < p.radix(); ++k)
        EXPECT_EQ(elems[k], p.element_index(s, p.tasks_per_stage() - 1, k));
    }
  }
}

TEST(FftPlan, TaskTwiddlesCountAndRange) {
  const std::vector<std::pair<std::uint64_t, unsigned>> cases = {{4096, 6}, {1024, 6}};
  for (const auto& [n, r] : cases) {
    const FftPlan p(n, r);
    std::vector<std::uint64_t> tw;
    for (std::uint32_t s = 0; s < p.stage_count(); ++s) {
      p.task_twiddles(s, 0, tw);
      EXPECT_EQ(tw.size(), p.twiddles_per_task(s));
      for (std::uint64_t t : tw) EXPECT_LT(t, n / 2);
    }
  }
}

TEST(FftPlan, SingleStagePlan) {
  const FftPlan p(64, 6);
  EXPECT_EQ(p.stage_count(), 1u);
  EXPECT_EQ(p.tasks_per_stage(), 1u);
  EXPECT_EQ(p.element_index(0, 0, 17), 17u);
}

}  // namespace
}  // namespace c64fft::fft
