#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace c64fft::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, Interpolation) {
  const std::array<double, 4> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 1.75);
}

TEST(Percentile, UnsortedInputAndClamp) {
  const std::array<double, 5> v{9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 110), 9.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Mean, Basic) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  const std::array<double, 3> v{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
}

TEST(ImbalanceRatio, Balanced) {
  const std::array<double, 4> v{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(imbalance_ratio(v), 1.0);
}

TEST(ImbalanceRatio, PaperLikeSkew) {
  // bank0 gets 3x the traffic of the others: max/mean = 3/1.5 = 2.
  const std::array<double, 4> v{3.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(imbalance_ratio(v), 2.0);
}

TEST(Geomean, Basic) {
  const std::array<double, 3> v{1.0, 8.0, 8.0};
  EXPECT_NEAR(geomean(v), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

}  // namespace
}  // namespace c64fft::util
