#include "codelet/pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <set>
#include <thread>

namespace c64fft::codelet {
namespace {

TEST(ConcurrentPool, LifoOrder) {
  ConcurrentPool pool(PoolPolicy::kLifo);
  pool.push({0, 1});
  pool.push({0, 2});
  pool.push({0, 3});
  EXPECT_EQ(pool.try_pop()->index, 3u);
  EXPECT_EQ(pool.try_pop()->index, 2u);
  EXPECT_EQ(pool.try_pop()->index, 1u);
  EXPECT_FALSE(pool.try_pop().has_value());
}

TEST(ConcurrentPool, FifoOrder) {
  ConcurrentPool pool(PoolPolicy::kFifo);
  pool.push({0, 1});
  pool.push({0, 2});
  pool.push({0, 3});
  EXPECT_EQ(pool.try_pop()->index, 1u);
  EXPECT_EQ(pool.try_pop()->index, 2u);
  EXPECT_EQ(pool.try_pop()->index, 3u);
}

TEST(ConcurrentPool, BatchPushPreservesOrder) {
  ConcurrentPool pool(PoolPolicy::kFifo);
  const std::array<CodeletKey, 3> batch{{{1, 10}, {1, 11}, {1, 12}}};
  pool.push_batch(batch);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.try_pop()->index, 10u);
  EXPECT_EQ(pool.try_pop()->index, 11u);
}

TEST(ConcurrentPool, SizeAndEmpty) {
  ConcurrentPool pool(PoolPolicy::kLifo);
  EXPECT_TRUE(pool.empty());
  pool.push({0, 0});
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_FALSE(pool.empty());
}

TEST(ConcurrentPool, ConcurrentPushPopLosesNothing) {
  ConcurrentPool pool(PoolPolicy::kLifo);
  constexpr int kPerThread = 2000;
  constexpr int kThreads = 4;
  std::atomic<int> popped{0};
  std::atomic<bool> done_pushing{false};
  std::array<std::atomic<int>, kThreads> seen{};

  std::vector<std::thread> producers, consumers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&pool, t] {
      for (int i = 0; i < kPerThread; ++i)
        pool.push({static_cast<std::uint32_t>(t), static_cast<std::uint64_t>(i)});
    });
  }
  for (int t = 0; t < 2; ++t) {
    consumers.emplace_back([&] {
      while (true) {
        auto item = pool.try_pop();
        if (item) {
          seen[item->stage].fetch_add(1);
          popped.fetch_add(1);
        } else if (done_pushing.load()) {
          if (!pool.try_pop().has_value()) break;
          popped.fetch_add(1);  // raced one more
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  done_pushing.store(true);
  for (auto& c : consumers) c.join();
  // Drain any remainder on this thread.
  while (pool.try_pop()) popped.fetch_add(1);
  EXPECT_EQ(popped.load(), kPerThread * kThreads);
}

}  // namespace
}  // namespace c64fft::codelet
