#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace c64fft::util {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  std::vector<std::uint64_t> sa, sb, sc;
  for (int i = 0; i < 16; ++i) {
    sa.push_back(a.next());
    sb.push_back(b.next());
    sc.push_back(c.next());
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
  EXPECT_EQ(std::set<std::uint64_t>(sa.begin(), sa.end()).size(), sa.size());
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowInRangeAndCoversAll) {
  Xoshiro256 rng(1);
  std::vector<int> hist(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++hist[static_cast<int>(v)];
  }
  for (int h : hist) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Xoshiro256, NextBelowOne) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextDoubleUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, ShuffleIsPermutationAndDeterministic) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> w = v;
  Xoshiro256 a(11), b(11);
  a.shuffle(std::span<int>(v));
  b.shuffle(std::span<int>(w));
  EXPECT_EQ(v, w);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  // A 100-element shuffle is essentially never the identity.
  bool identity = true;
  for (int i = 0; i < 100; ++i) identity &= v[i] == i;
  EXPECT_FALSE(identity);
}

}  // namespace
}  // namespace c64fft::util
