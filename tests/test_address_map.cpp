#include "c64/address_map.hpp"

#include <gtest/gtest.h>

#include <array>

#include "fft/types.hpp"

namespace c64fft::c64 {
namespace {

TEST(AddressMap, RoundRobinInterleave) {
  AddressMap m(4, 64);
  EXPECT_EQ(m.bank_of(0), 0u);
  EXPECT_EQ(m.bank_of(63), 0u);
  EXPECT_EQ(m.bank_of(64), 1u);
  EXPECT_EQ(m.bank_of(128), 2u);
  EXPECT_EQ(m.bank_of(192), 3u);
  EXPECT_EQ(m.bank_of(256), 0u);  // wraps around
}

TEST(AddressMap, FourComplexElementsPerLine) {
  // "switching banks every 64 bytes (or 4 double precision complex
  // elements)" — Section II.
  AddressMap m(4, 64);
  for (unsigned e = 0; e < 4; ++e) EXPECT_EQ(m.bank_of_element(0, e, 16), 0u);
  EXPECT_EQ(m.bank_of_element(0, 4, 16), 1u);
  EXPECT_EQ(m.bank_of_element(0, 8, 16), 2u);
  EXPECT_EQ(m.bank_of_element(0, 16, 16), 0u);
}

TEST(AddressMap, Stride4MultiplesPinToOneBank) {
  // The paper's root cause: twiddle indices that are multiples of 4
  // elements (64 B) always hit the base bank.
  AddressMap m(4, 64);
  for (std::uint64_t idx = 0; idx < 4096; idx += 16)
    EXPECT_EQ(m.bank_of_element(0, idx, 16), 0u) << idx;
}

TEST(AddressMap, BanksTouchedByStride) {
  AddressMap m(4, 64);
  // Multiples of interleave * banks = 256 B pin the stream to one bank —
  // the static form of the twiddle hotspot (element stride 16 at 16 B).
  EXPECT_EQ(m.banks_touched_by_stride(0), 1u);
  EXPECT_EQ(m.banks_touched_by_stride(256), 1u);
  EXPECT_EQ(m.banks_touched_by_stride(1024), 1u);
  // Line-granular strides visit banks / gcd(hop, banks) banks.
  EXPECT_EQ(m.banks_touched_by_stride(64), 4u);
  EXPECT_EQ(m.banks_touched_by_stride(128), 2u);
  EXPECT_EQ(m.banks_touched_by_stride(192), 4u);  // hop 3, coprime with 4
  // Sub-line strides sweep every bank eventually.
  EXPECT_EQ(m.banks_touched_by_stride(16), 4u);
  EXPECT_EQ(m.banks_touched_by_stride(96), 4u);
}

TEST(AddressMap, BaseOffsetShiftsBank) {
  AddressMap m(4, 64);
  EXPECT_EQ(m.bank_of_element(64, 0, 16), 1u);
  EXPECT_EQ(m.bank_of_element(128, 4, 16), 3u);
}

TEST(AddressMap, BytesLeftInLine) {
  AddressMap m(4, 64);
  EXPECT_EQ(m.bytes_left_in_line(0), 64u);
  EXPECT_EQ(m.bytes_left_in_line(1), 63u);
  EXPECT_EQ(m.bytes_left_in_line(63), 1u);
  EXPECT_EQ(m.bytes_left_in_line(64), 64u);
}

TEST(AddressMap, FromChipConfig) {
  ChipConfig cfg;
  AddressMap m(cfg);
  EXPECT_EQ(m.banks(), 4u);
  EXPECT_EQ(m.interleave_bytes(), 64u);
}

TEST(AddressMap, UniformCoverageOverContiguousRange) {
  AddressMap m(4, 64);
  std::array<int, 4> hist{};
  for (std::uint64_t addr = 0; addr < 4096; addr += 16) ++hist[m.bank_of(addr)];
  for (int h : hist) EXPECT_EQ(h, 64);
}

}  // namespace
}  // namespace c64fft::c64
