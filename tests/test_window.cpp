#include "fft/window.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fft/api.hpp"
#include "util/signal.hpp"

namespace c64fft::fft {
namespace {

TEST(Window, RectangularIsAllOnes) {
  const auto w = make_window(WindowKind::kRectangular, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(coherent_gain(WindowKind::kRectangular, 16), 1.0);
}

TEST(Window, EmptyWindow) {
  EXPECT_TRUE(make_window(WindowKind::kHann, 0).empty());
  EXPECT_DOUBLE_EQ(coherent_gain(WindowKind::kHann, 0), 1.0);
}

TEST(Window, HannEndpointsAndPeak) {
  const auto w = make_window(WindowKind::kHann, 64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);  // periodic form peaks at n/2
}

TEST(Window, KnownCoherentGains) {
  EXPECT_NEAR(coherent_gain(WindowKind::kHann, 1024), 0.5, 1e-3);
  EXPECT_NEAR(coherent_gain(WindowKind::kHamming, 1024), 0.54, 1e-3);
  EXPECT_NEAR(coherent_gain(WindowKind::kBlackman, 1024), 0.42, 1e-3);
}

TEST(Window, ValuesStayInUnitRange) {
  for (auto kind : {WindowKind::kHann, WindowKind::kHamming, WindowKind::kBlackman}) {
    for (double v : make_window(kind, 257)) {
      EXPECT_GE(v, -1e-12) << to_string(kind);
      EXPECT_LE(v, 1.0 + 1e-12) << to_string(kind);
    }
  }
}

TEST(Window, ApplyInPlaceMatchesCoefficients) {
  std::vector<double> signal(128, 2.0);
  apply_window(WindowKind::kHamming, signal);
  const auto w = make_window(WindowKind::kHamming, 128);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_DOUBLE_EQ(signal[i], 2.0 * w[i]);
}

TEST(Window, SuppressesSpectralLeakage) {
  // An off-bin tone leaks across the whole rectangular spectrum; a Hann
  // window concentrates it: energy two bins away from the peak must drop
  // by orders of magnitude.
  const std::size_t n = 1024;
  util::SignalBuilder sig(n, static_cast<double>(n));
  sig.tone({100.5, 1.0, 0.0});  // exactly between two bins

  auto rect = sig.real();
  const auto rect_spec = power_spectrum(rect);
  auto hann = sig.real();
  apply_window(WindowKind::kHann, hann);
  const auto hann_spec = power_spectrum(hann);

  // Compare relative leakage at 40 bins off the tone.
  const double rect_leak = rect_spec[140] / rect_spec[100];
  const double hann_leak = hann_spec[140] / hann_spec[100];
  EXPECT_LT(hann_leak, rect_leak / 100.0);
}

TEST(Window, Names) {
  EXPECT_EQ(to_string(WindowKind::kBlackman), "blackman");
  EXPECT_EQ(to_string(WindowKind::kRectangular), "rectangular");
}

}  // namespace
}  // namespace c64fft::fft
