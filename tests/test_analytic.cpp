#include "simfft/analytic.hpp"

#include <gtest/gtest.h>

#include "c64/engine.hpp"
#include "simfft/experiment.hpp"
#include "simfft/sim_driver.hpp"

namespace c64fft::simfft {
namespace {

struct Rig {
  fft::FftPlan plan;
  c64::ChipConfig cfg;
  FootprintBuilder fp;
  explicit Rig(std::uint64_t n, unsigned tus = 156)
      : plan(n, 6), cfg(), fp(plan, cfg, fft::TwiddleLayout::kLinear) {
    cfg.thread_units = tus;
  }
};

TEST(AnalyticModel, PerStageShape) {
  Rig r(1ULL << 15);
  AnalyticModel m(r.fp, r.cfg);
  ASSERT_EQ(m.stages().size(), 3u);
  // Full stages move 191 element requests; the 3-level partial last stage
  // moves 64+56+64 = 184. Stage 0's contiguous data gathers coalesce 4:1
  // (16 line requests per pass instead of 64): 16+63+16 = 95.
  EXPECT_EQ(m.stages()[0].requests, 95u);
  EXPECT_EQ(m.stages()[1].requests, 191u);
  EXPECT_EQ(m.stages()[2].requests, 184u);
  for (const auto& st : m.stages()) EXPECT_GT(st.codelet_cycles, 2000.0);
}

TEST(AnalyticModel, CoarseEstimateBracketsSimulation) {
  // The unloaded estimate must lower-bound the simulated coarse run, and
  // the simulation must stay within a reasonable congestion factor of it.
  Rig r(1ULL << 15);
  AnalyticModel m(r.fp, r.cfg);
  CoarseSimProgram prog(r.fp, r.cfg);
  const auto sim = c64::SimEngine(r.cfg, prog).run();
  EXPECT_GT(static_cast<double>(sim.cycles), 0.8 * m.coarse_cycles());
  EXPECT_LT(static_cast<double>(sim.cycles), 2.5 * m.coarse_cycles());
}

TEST(AnalyticModel, FineIdealIsBelowCoarse) {
  Rig r(1ULL << 15);
  AnalyticModel m(r.fp, r.cfg);
  EXPECT_LT(m.fine_ideal_cycles(), m.coarse_cycles());
  // In the *unloaded* model the schedule-invariant bank bound nearly
  // matches the coarse estimate — the analytical statement that any
  // reordering gain must come from latency/queueing effects the unloaded
  // model excludes (DESIGN.md §2.1). The ceiling therefore sits near 1.
  EXPECT_GT(m.reorder_gain_ceiling(), 0.9);
  EXPECT_LT(m.reorder_gain_ceiling(), 1.6);
}

TEST(AnalyticModel, NoSimulatedScheduleBeatsTheBankBound) {
  // The order-invariance bound of DESIGN.md §2.1, checked against every
  // simulated version.
  Rig r(1ULL << 12, 64);
  AnalyticModel m(r.fp, r.cfg);
  for (const auto& row : run_all_variants(1ULL << 12, r.cfg)) {
    if (row.name.find("hash") != std::string::npos) continue;  // different traffic
    EXPECT_GE(static_cast<double>(row.sim.cycles), m.bank_bound_cycles()) << row.name;
  }
}

TEST(AnalyticModel, GainCeilingShrinksWhenLatencyShrinks) {
  // With cheap memory the machine saturates and the reorder headroom
  // (waves/latency effects) shrinks.
  Rig r(1ULL << 15);
  AnalyticModel slow(r.fp, r.cfg);
  auto cheap = r.cfg;
  cheap.dram_latency = 5;
  FootprintBuilder fp2(r.plan, cheap, fft::TwiddleLayout::kLinear);
  AnalyticModel fast(fp2, cheap);
  EXPECT_LT(fast.coarse_cycles(), slow.coarse_cycles());
}

TEST(AnalyticModel, MoreTusLowerFineIdeal) {
  Rig narrow(1ULL << 15, 32);
  Rig wide(1ULL << 15, 156);
  AnalyticModel a(narrow.fp, narrow.cfg), b(wide.fp, wide.cfg);
  EXPECT_GT(a.fine_ideal_cycles(), b.fine_ideal_cycles());
}

}  // namespace
}  // namespace c64fft::simfft
