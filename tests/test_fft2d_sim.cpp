#include "simfft/fft2d_sim.hpp"

#include <gtest/gtest.h>

namespace c64fft::simfft {
namespace {

c64::ChipConfig cfg_with(unsigned tus) {
  c64::ChipConfig cfg;
  cfg.thread_units = tus;
  return cfg;
}

TEST(Fft2dSim, RejectsBadShapes) {
  const auto cfg = cfg_with(16);
  Fft2dSimOptions o;
  o.rows = 12;
  EXPECT_THROW(run_fft2d_sim(cfg, o), std::invalid_argument);
  o = {};
  o.cols = 2;
  EXPECT_THROW(run_fft2d_sim(cfg, o), std::invalid_argument);
  o = {};
  o.tile = 3;  // does not divide 256
  EXPECT_THROW(run_fft2d_sim(cfg, o), std::invalid_argument);
}

TEST(Fft2dSim, CompletesAllTasksPerPass) {
  const auto cfg = cfg_with(32);
  Fft2dSimOptions o;
  o.rows = 64;
  o.cols = 128;
  const auto r = run_fft2d_sim(cfg, o);
  EXPECT_EQ(r.row_pass.tasks_completed, 64u);
  EXPECT_EQ(r.transpose.tasks_completed, 64u / o.tile * (128u / o.tile));
  EXPECT_EQ(r.col_pass.tasks_completed, 128u);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_EQ(r.total_cycles, r.row_pass.cycles + r.transpose.cycles +
                                r.col_pass.cycles + 2 * cfg.barrier_cycles);
}

TEST(Fft2dSim, TrafficConservation) {
  // Row pass moves 2*R*C elements; transpose 2*R*C; col pass 2*R*C.
  const auto cfg = cfg_with(16);
  Fft2dSimOptions o;
  o.rows = 64;
  o.cols = 64;
  const auto r = run_fft2d_sim(cfg, o);
  const std::uint64_t pass_bytes = 2ULL * 64 * 64 * 16;
  EXPECT_EQ(r.row_pass.bytes, pass_bytes);
  EXPECT_EQ(r.transpose.bytes, pass_bytes);
  EXPECT_EQ(r.col_pass.bytes, pass_bytes);
}

TEST(Fft2dSim, NaiveTransposeLosesToTiling) {
  // Column reads stride by cols*16 B (a multiple of the interleave), so
  // one naive task serialises all its reads on a single bank. The
  // *aggregate* per-bank occupancy stays balanced (column j's bank
  // rotates with j), so the cost is per-task latency — tiling removes it
  // and the pass gets materially faster.
  const auto cfg = cfg_with(64);
  Fft2dSimOptions naive;
  naive.rows = naive.cols = 128;
  naive.tiled_transpose = false;
  Fft2dSimOptions tiled = naive;
  tiled.tiled_transpose = true;
  const auto rn = run_fft2d_sim(cfg, naive);
  const auto rt = run_fft2d_sim(cfg, tiled);
  EXPECT_LT(static_cast<double>(rt.transpose.cycles),
            0.9 * static_cast<double>(rn.transpose.cycles));
  // Both passes stay aggregate-balanced.
  EXPECT_LT(rn.transpose_bank_imbalance, 1.3);
  EXPECT_LT(rt.transpose_bank_imbalance, 1.3);
}

TEST(Fft2dSim, Deterministic) {
  const auto cfg = cfg_with(16);
  Fft2dSimOptions o;
  o.rows = o.cols = 64;
  const auto a = run_fft2d_sim(cfg, o);
  const auto b = run_fft2d_sim(cfg, o);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

TEST(Fft2dSim, ScalesWithTus) {
  Fft2dSimOptions o;
  o.rows = o.cols = 128;
  const auto narrow = run_fft2d_sim(cfg_with(16), o);
  const auto wide = run_fft2d_sim(cfg_with(128), o);
  EXPECT_LT(wide.total_cycles, narrow.total_cycles);
}

TEST(Fft2dSim, RectangularShapes) {
  const auto cfg = cfg_with(32);
  for (auto [r, c] : {std::pair<std::uint64_t, std::uint64_t>{32, 256},
                      std::pair<std::uint64_t, std::uint64_t>{256, 32}}) {
    Fft2dSimOptions o;
    o.rows = r;
    o.cols = c;
    const auto res = run_fft2d_sim(cfg, o);
    EXPECT_EQ(res.row_pass.tasks_completed, r);
    EXPECT_EQ(res.col_pass.tasks_completed, c);
  }
}

}  // namespace
}  // namespace c64fft::simfft
