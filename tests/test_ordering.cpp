#include "fft/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace c64fft::fft {
namespace {

bool is_permutation_of_iota(const std::vector<std::uint64_t>& v) {
  std::set<std::uint64_t> s(v.begin(), v.end());
  if (s.size() != v.size()) return false;
  return v.empty() || (*s.begin() == 0 && *s.rbegin() == v.size() - 1);
}

TEST(Ordering, NaturalIsIota) {
  const auto v = make_seed_order(SeedOrder::kNatural, 8, 1);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(v[i], i);
}

TEST(Ordering, ReverseIsDescending) {
  const auto v = make_seed_order(SeedOrder::kReverse, 8, 1);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(v[i], 7 - i);
}

TEST(Ordering, StridedIsBitReversedOrder) {
  const auto v = make_seed_order(SeedOrder::kStrided, 8, 1);
  const std::uint64_t expect[] = {0, 4, 2, 6, 1, 5, 3, 7};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(v[i], expect[i]);
}

TEST(Ordering, StridedRejectsNonPow2) {
  EXPECT_THROW(make_seed_order(SeedOrder::kStrided, 12, 1), std::invalid_argument);
}

TEST(Ordering, AllOrdersArePermutations) {
  for (auto o : {SeedOrder::kNatural, SeedOrder::kReverse, SeedOrder::kStrided,
                 SeedOrder::kRandom})
    EXPECT_TRUE(is_permutation_of_iota(make_seed_order(o, 256, 5))) << to_string(o);
}

TEST(Ordering, RandomIsSeedDeterministic) {
  const auto a = make_seed_order(SeedOrder::kRandom, 128, 42);
  const auto b = make_seed_order(SeedOrder::kRandom, 128, 42);
  const auto c = make_seed_order(SeedOrder::kRandom, 128, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Ordering, SweepCoversBestAndWorstShapes) {
  const auto sweep = ordering_sweep();
  EXPECT_GE(sweep.size(), 4u);
  auto has = [&](codelet::PoolPolicy p, SeedOrder o) {
    return std::any_of(sweep.begin(), sweep.end(), [&](const FineOrdering& f) {
      return f.policy == p && f.order == o;
    });
  };
  EXPECT_TRUE(has(codelet::PoolPolicy::kLifo, SeedOrder::kNatural));  // best-like
  EXPECT_TRUE(has(codelet::PoolPolicy::kFifo, SeedOrder::kStrided));  // worst-like
}

TEST(Ordering, ToStringRoundTrips) {
  EXPECT_EQ(to_string(SeedOrder::kNatural), "natural");
  EXPECT_EQ(to_string(FineOrdering{codelet::PoolPolicy::kFifo, SeedOrder::kStrided, 1}),
            "fifo/strided");
}

TEST(Ordering, EmptyAndSingle) {
  EXPECT_TRUE(make_seed_order(SeedOrder::kRandom, 0, 1).empty());
  const auto one = make_seed_order(SeedOrder::kStrided, 1, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

}  // namespace
}  // namespace c64fft::fft
