#include "codelet/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace c64fft::codelet {
namespace {

CodeletKey k(std::uint32_t s, std::uint64_t i) { return {s, i}; }

TEST(CodeletGraph, NodesAndEdges) {
  CodeletGraph g;
  g.add_edge(k(0, 0), k(1, 0));
  g.add_edge(k(0, 1), k(1, 0));
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.contains(k(0, 1)));
  EXPECT_FALSE(g.contains(k(2, 0)));
  EXPECT_EQ(g.in_degree(k(1, 0)), 2u);
  EXPECT_EQ(g.in_degree(k(0, 0)), 0u);
}

TEST(CodeletGraph, ChildrenAndParents) {
  CodeletGraph g;
  g.add_edge(k(0, 0), k(1, 0));
  g.add_edge(k(0, 0), k(1, 1));
  const auto ch = g.children(k(0, 0));
  EXPECT_EQ(ch.size(), 2u);
  const auto pa = g.parents(k(1, 1));
  ASSERT_EQ(pa.size(), 1u);
  EXPECT_EQ(pa[0], k(0, 0));
  EXPECT_THROW(g.children(k(9, 9)), std::out_of_range);
}

TEST(CodeletGraph, ParallelEdgesKeepMultiplicity) {
  // A consumer waiting for two outputs of one producer holds two tokens.
  CodeletGraph g;
  g.add_edge(k(0, 0), k(1, 0));
  g.add_edge(k(0, 0), k(1, 0));
  EXPECT_EQ(g.in_degree(k(1, 0)), 2u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(CodeletGraph, WellBehavedDag) {
  CodeletGraph g;
  g.add_edge(k(0, 0), k(1, 0));
  g.add_edge(k(1, 0), k(2, 0));
  g.add_edge(k(0, 1), k(2, 0));
  EXPECT_TRUE(g.is_well_behaved());
  const auto order = g.topological_order();
  EXPECT_EQ(order.size(), 4u);
  auto pos = [&](CodeletKey key) {
    return std::find(order.begin(), order.end(), key) - order.begin();
  };
  EXPECT_LT(pos(k(0, 0)), pos(k(1, 0)));
  EXPECT_LT(pos(k(1, 0)), pos(k(2, 0)));
  EXPECT_LT(pos(k(0, 1)), pos(k(2, 0)));
}

TEST(CodeletGraph, CycleDetected) {
  CodeletGraph g;
  g.add_edge(k(0, 0), k(0, 1));
  g.add_edge(k(0, 1), k(0, 2));
  g.add_edge(k(0, 2), k(0, 0));
  EXPECT_FALSE(g.is_well_behaved());
  EXPECT_THROW(g.topological_order(), std::logic_error);
  EXPECT_THROW(g.simulate_firing(PoolPolicy::kFifo), std::logic_error);
}

TEST(CodeletGraph, FiringCoversAllNodesBothPolicies) {
  CodeletGraph g;
  // Diamond plus a tail.
  g.add_edge(k(0, 0), k(1, 0));
  g.add_edge(k(0, 0), k(1, 1));
  g.add_edge(k(1, 0), k(2, 0));
  g.add_edge(k(1, 1), k(2, 0));
  g.add_edge(k(2, 0), k(3, 0));
  for (auto policy : {PoolPolicy::kFifo, PoolPolicy::kLifo}) {
    const auto fired = g.simulate_firing(policy);
    EXPECT_EQ(fired.size(), g.node_count());
    const std::set<CodeletKey> unique(fired.begin(), fired.end());
    EXPECT_EQ(unique.size(), fired.size());
    // Every firing respects dependencies.
    auto pos = [&](CodeletKey key) {
      return std::find(fired.begin(), fired.end(), key) - fired.begin();
    };
    EXPECT_LT(pos(k(0, 0)), pos(k(1, 0)));
    EXPECT_LT(pos(k(1, 1)), pos(k(2, 0)));
    EXPECT_LT(pos(k(2, 0)), pos(k(3, 0)));
  }
}

TEST(CodeletGraph, LifoAndFifoGiveDifferentOrders) {
  CodeletGraph g;
  // Two independent chains; LIFO dives into the most recent, FIFO
  // alternates.
  g.add_node(k(0, 0));
  g.add_node(k(0, 1));
  g.add_edge(k(0, 1), k(1, 1));
  const auto fifo = g.simulate_firing(PoolPolicy::kFifo);
  const auto lifo = g.simulate_firing(PoolPolicy::kLifo);
  EXPECT_EQ(fifo.size(), lifo.size());
  EXPECT_NE(fifo, lifo);  // [00,01,11] vs [01,11,00]
}

}  // namespace
}  // namespace c64fft::codelet
