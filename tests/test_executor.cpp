// FftExecutor: the cached-plan / persistent-team layer. These tests pin
// down the amortization contract (steady state spawns no worker teams, no
// trig is recomputed), the batch semantics (bit-identical to a loop of
// single calls for every variant and layout), the conjugated-twiddle
// inverse path, LRU cache accounting, shutdown/re-create, and concurrent
// callers (run under TSan via C64FFT_TSAN).

#include "fft/executor.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "codelet/host_runtime.hpp"
#include "fft/api.hpp"
#include "fft/reference.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

TEST(Executor, ForwardMatchesSerialReference) {
  FftExecutor ex;
  for (std::uint64_t n : {std::uint64_t{64}, std::uint64_t{1} << 12}) {
    auto data = random_signal(n, n);
    auto want = data;
    fft_serial_inplace(want);
    HostFftOptions opts;
    opts.workers = 2;
    opts.radix_log2 = 6;
    ex.forward(data, opts);
    ASSERT_LT(max_abs_error(data, want), 1e-8) << n;
  }
}

TEST(Executor, InverseBitIdenticalToConjugateForwardPath) {
  // The conjugated-twiddle inverse must reproduce the classic
  // conj -> forward -> conj * 1/N path exactly (every rounding in the
  // butterflies is sign-symmetric), for both twiddle layouts.
  for (TwiddleLayout layout : {TwiddleLayout::kLinear, TwiddleLayout::kBitReversed}) {
    const std::uint64_t n = 1ULL << 12;
    const auto input = random_signal(n, 7 + static_cast<int>(layout));
    HostFftOptions opts;
    opts.workers = 3;
    opts.layout = layout;

    FftExecutor ex;
    auto got = input;
    ex.inverse(got, opts);

    auto want = input;
    for (auto& v : want) v = std::conj(v);
    ex.forward(want, opts);
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : want) v = std::conj(v) * inv;

    ASSERT_EQ(max_abs_error(got, want), 0.0);
  }
}

TEST(Executor, RoundTripRestoresInput) {
  FftExecutor ex;
  const std::uint64_t n = 1ULL << 11;
  const auto input = random_signal(n, 42);
  auto data = input;
  HostFftOptions opts;
  opts.workers = 4;
  ex.forward(data, opts);
  ex.inverse(data, opts);
  ASSERT_LT(max_abs_error(data, input), 1e-9);
}

TEST(Executor, BatchMatchesLoopBitExactlyAllVariantsAndLayouts) {
  const std::uint64_t n = 1ULL << 13;  // 3 stages at radix 64: real guided path
  const std::size_t batch_size = 4;
  for (Variant variant : {Variant::kCoarse, Variant::kFine, Variant::kGuided}) {
    for (TwiddleLayout layout : {TwiddleLayout::kLinear, TwiddleLayout::kBitReversed}) {
      HostFftOptions opts;
      opts.workers = 4;
      opts.layout = layout;

      std::vector<std::vector<cplx>> loop_bufs, batch_bufs;
      for (std::size_t b = 0; b < batch_size; ++b) {
        loop_bufs.push_back(random_signal(n, 1000 + b));
        batch_bufs.push_back(loop_bufs.back());
      }

      FftExecutor ex;
      for (auto& buf : loop_bufs) ex.forward(buf, opts, variant);

      std::vector<std::span<cplx>> spans;
      for (auto& buf : batch_bufs) spans.emplace_back(buf);
      ex.forward_batch(spans, opts, variant);

      for (std::size_t b = 0; b < batch_size; ++b)
        ASSERT_EQ(max_abs_error(batch_bufs[b], loop_bufs[b]), 0.0)
            << to_string(variant) << " layout=" << static_cast<int>(layout)
            << " b=" << b;
    }
  }
}

TEST(Executor, InverseBatchMatchesLoop) {
  const std::uint64_t n = 1ULL << 10;
  HostFftOptions opts;
  opts.workers = 2;
  std::vector<std::vector<cplx>> loop_bufs, batch_bufs;
  for (std::size_t b = 0; b < 3; ++b) {
    loop_bufs.push_back(random_signal(n, 77 + b));
    batch_bufs.push_back(loop_bufs.back());
  }
  FftExecutor ex;
  for (auto& buf : loop_bufs) ex.inverse(buf, opts);
  std::vector<std::span<cplx>> spans;
  for (auto& buf : batch_bufs) spans.emplace_back(buf);
  ex.inverse_batch(spans, opts);
  for (std::size_t b = 0; b < 3; ++b)
    ASSERT_EQ(max_abs_error(batch_bufs[b], loop_bufs[b]), 0.0) << b;
}

TEST(Executor, BatchRejectsMixedLengths) {
  FftExecutor ex;
  std::vector<cplx> a(256), b(512);
  std::span<cplx> spans[2] = {a, b};
  EXPECT_THROW(ex.forward_batch(spans, HostFftOptions{}), std::invalid_argument);
}

TEST(Executor, ConcurrentCallersComputeCorrectTransforms) {
  // Several caller threads share one executor (and its single team); the
  // phase mutex must serialize them with no data races (run under TSan).
  FftExecutor ex;
  constexpr int kThreads = 4;
  constexpr int kIters = 8;
  std::vector<std::thread> threads;
  std::vector<double> errors(kThreads, 0.0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Distinct sizes per thread also exercise concurrent cache misses.
      const std::uint64_t n = std::uint64_t{256} << (t % 3);
      HostFftOptions opts;
      opts.workers = 2;
      for (int i = 0; i < kIters; ++i) {
        auto data = random_signal(n, t * 100 + i);
        auto want = data;
        fft_serial_inplace(want);
        ex.forward(data, opts);
        errors[t] = std::max(errors[t], max_abs_error(data, want));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_LT(errors[t], 1e-8) << t;
}

TEST(Executor, CacheHitMissAndLruEvictionAccounting) {
  ExecutorOptions eopts;
  eopts.capacity = 2;
  FftExecutor ex(eopts);
  HostFftOptions opts;
  opts.workers = 1;

  auto a = random_signal(256, 1), b = random_signal(512, 2), c = random_signal(1024, 3);
  ex.forward(a, opts);  // miss: {A}
  ex.forward(a, opts);  // hit
  ex.forward(b, opts);  // miss: {B, A}
  ex.forward(c, opts);  // miss, evicts LRU = A: {C, B}
  auto s = ex.stats();
  EXPECT_EQ(s.cache.hits, 1u);
  EXPECT_EQ(s.cache.misses, 3u);
  EXPECT_EQ(s.cache.evictions, 1u);

  ex.forward(a, opts);  // A was evicted: miss again, evicts B
  s = ex.stats();
  EXPECT_EQ(s.cache.misses, 4u);
  EXPECT_EQ(s.cache.evictions, 2u);
  EXPECT_EQ(s.transforms, 5u);

  // Layout is part of the key: same n, other layout must miss.
  opts.layout = TwiddleLayout::kBitReversed;
  ex.forward(a, opts);
  EXPECT_EQ(ex.stats().cache.misses, 5u);
}

TEST(Executor, ShutdownThenRecreate) {
  FftExecutor ex;
  HostFftOptions opts;
  opts.workers = 2;
  auto data = random_signal(1024, 5);
  auto want = data;
  fft_serial_inplace(want);

  auto first = data;
  ex.forward(first, opts);
  EXPECT_EQ(ex.stats().teams_created, 1u);

  ex.shutdown();  // joins the team; the plan cache survives
  auto second = data;
  ex.forward(second, opts);
  EXPECT_EQ(ex.stats().teams_created, 2u);
  EXPECT_EQ(ex.stats().cache.misses, 1u);  // no rebuild after shutdown
  ASSERT_EQ(max_abs_error(second, first), 0.0);
  ASSERT_LT(max_abs_error(second, want), 1e-8);
}

TEST(Executor, SteadyStateSpawnsNoTeams) {
  // Regression guard for the tentpole claim: 1000 steady-state forward()
  // calls must not create a single new worker team (the old code spawned
  // two per call — one in fft_host, one in the bit-reversal).
  FftExecutor ex;
  HostFftOptions opts;
  opts.workers = 2;
  auto data = random_signal(1ULL << 10, 11);
  ex.forward(data, opts);  // warm: plan cached, team spawned
  const std::uint64_t before = codelet::HostRuntime::teams_created();
  for (int i = 0; i < 1000; ++i) ex.forward(data, opts);
  EXPECT_EQ(codelet::HostRuntime::teams_created(), before);
}

TEST(Executor, PublicApiLoopCreatesAtMostOneTeam) {
  // Same guard through the api.cpp wrappers / the process-wide default
  // executor: a 1000-iteration forward() loop may lazily create at most
  // one team in total.
  auto data = random_signal(1ULL << 10, 13);
  const std::uint64_t before = codelet::HostRuntime::teams_created();
  for (int i = 0; i < 1000; ++i) forward(data);
  EXPECT_LE(codelet::HostRuntime::teams_created() - before, 1u);
}

TEST(Executor, ResizeChangesDefaultTeam) {
  FftExecutor ex;
  auto data = random_signal(512, 17);
  ex.forward(data);  // default ExecutorOptions team (4 workers)
  EXPECT_EQ(ex.stats().teams_created, 1u);
  ex.resize(2);
  ex.forward(data);
  EXPECT_EQ(ex.stats().teams_created, 2u);
  ex.forward(data);  // steady again
  EXPECT_EQ(ex.stats().teams_created, 2u);
}

TEST(PlanCache, SharedEntriesSurviveEviction) {
  PlanCache cache(1);
  auto a = cache.acquire(PlanKey{1024, 6, TwiddleLayout::kLinear});
  auto a2 = cache.acquire(PlanKey{1024, 6, TwiddleLayout::kLinear});
  EXPECT_EQ(a.get(), a2.get());  // one immutable entry, shared
  auto b = cache.acquire(PlanKey{2048, 6, TwiddleLayout::kLinear});  // evicts a
  EXPECT_EQ(cache.size(), 1u);
  // The evicted entry stays valid for holders — eviction only drops the
  // cache's reference.
  EXPECT_EQ(a->plan().size(), 1024u);
  EXPECT_EQ(a->twiddles(TwiddleDirection::kForward).fft_size(), 1024u);
  EXPECT_EQ(b->plan().size(), 2048u);
}

TEST(PlanCache, BadShapesAreNotCached) {
  PlanCache cache(4);
  EXPECT_THROW(cache.acquire(PlanKey{100, 6, TwiddleLayout::kLinear}),
               std::invalid_argument);
  EXPECT_THROW(cache.acquire(PlanKey{16, 6, TwiddleLayout::kLinear}),
               std::invalid_argument);  // N < radix: no clamping on this path
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Executor, EnvOverridesSnapshotAtConstructionOnly) {
  // The C64FFT_* variables are read exactly once, when the executor is
  // constructed; later environment mutations are invisible until
  // reconfigure() re-reads them (the documented first-use-only contract).
  ::setenv("C64FFT_FOURSTEP_THRESHOLD_LOG2", "7", 1);
  ::setenv("C64FFT_WORKERS", "3", 1);
  FftExecutor ex;
  EXPECT_EQ(ex.four_step_threshold_log2(), 7u);
  EXPECT_EQ(ex.default_workers(), 3u);

  ::setenv("C64FFT_FOURSTEP_THRESHOLD_LOG2", "9", 1);
  ::setenv("C64FFT_WORKERS", "2", 1);
  auto warm = random_signal(1ULL << 6, 1);  // below the threshold: classic
  ex.forward(warm);  // warm up: team spawned, plan cached
  EXPECT_EQ(ex.four_step_threshold_log2(), 7u);
  EXPECT_EQ(ex.default_workers(), 3u);
  EXPECT_EQ(ex.stats().four_step, 0u);

  ex.reconfigure();
  EXPECT_EQ(ex.four_step_threshold_log2(), 9u);
  EXPECT_EQ(ex.default_workers(), 2u);
  // The re-read threshold takes effect on the very next transform.
  auto large = random_signal(1ULL << 10, 2);
  ex.forward(large);
  EXPECT_EQ(ex.stats().four_step, 1u);

  ::unsetenv("C64FFT_WORKERS");
  // Malformed or empty values leave the corresponding option untouched.
  ::setenv("C64FFT_FOURSTEP_THRESHOLD_LOG2", "banana", 1);
  FftExecutor defaults;
  EXPECT_EQ(defaults.four_step_threshold_log2(), kDefaultFourStepThresholdLog2);
  ::unsetenv("C64FFT_FOURSTEP_THRESHOLD_LOG2");
}

}  // namespace
}  // namespace c64fft::fft
