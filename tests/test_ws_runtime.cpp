// Work-stealing HostRuntime behavior: forced steals under skewed seeding,
// balance accounting, the sequential (paper-order) compatibility mode,
// exception capture, and the bridge to the static analyzer — the
// race-freedom proof over "any pop order" is exactly what licenses letting
// thieves reorder execution.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "analysis/model.hpp"
#include "analysis/race.hpp"
#include "codelet/host_runtime.hpp"
#include "fft/reference.hpp"
#include "fft/variants.hpp"
#include "util/prng.hpp"

namespace c64fft {
namespace {

using codelet::CodeletKey;
using codelet::HostRuntime;
using codelet::PoolPolicy;
using codelet::SchedulerMode;

// A few microseconds of un-optimizable work, so codelets are long enough
// for parked thieves to wake and find the victim's deque non-empty.
void spin_work() {
  volatile double sink = 1.0;
  for (int i = 0; i < 400; ++i) sink = sink * 1.0000001 + 1e-9;
}

std::uint64_t fan_out_total(std::uint32_t depth) {
  return (std::uint64_t{1} << (depth + 1)) - 1;
}

// One seed, binary fan-out: all work originates in one worker's deque, so
// any codelet executed by another worker got there by stealing.
codelet::CodeletBody fan_out_body(std::uint32_t depth) {
  return [depth](CodeletKey c, unsigned, codelet::Pusher& push) {
    spin_work();
    if (c.stage < depth) {
      const CodeletKey kids[2] = {{c.stage + 1, c.index * 2},
                                  {c.stage + 1, c.index * 2 + 1}};
      push.push_batch(kids);
    }
  };
}

TEST(WsRuntime, SkewedSeedingForcesSteals) {
  constexpr std::uint32_t kDepth = 10;
  HostRuntime rt(4);
  const std::vector<CodeletKey> seeds{{0, 0}};
  // Stealing is probabilistic under OS scheduling; a handful of phases is
  // overwhelmingly enough for at least one steal to land.
  std::uint64_t phases = 0;
  while (rt.steals() == 0 && phases < 50) {
    rt.run_phase(seeds, PoolPolicy::kLifo, fan_out_body(kDepth));
    ++phases;
  }
  EXPECT_GT(rt.steals(), 0u) << "no steal landed in " << phases << " phases";
  EXPECT_EQ(rt.executed(), phases * fan_out_total(kDepth));
}

TEST(WsRuntime, BalanceAccountingSumsToExecutedUnderStealing) {
  constexpr std::uint32_t kDepth = 11;
  HostRuntime rt(4);
  const std::vector<CodeletKey> seeds{{0, 0}};
  for (int phase = 0; phase < 5; ++phase)
    rt.run_phase(seeds, PoolPolicy::kLifo, fan_out_body(kDepth));

  const auto& per_worker = rt.executed_per_worker();
  ASSERT_EQ(per_worker.size(), rt.workers());
  std::uint64_t sum = 0;
  for (std::uint64_t c : per_worker) sum += c;
  EXPECT_EQ(sum, rt.executed());
  EXPECT_EQ(rt.executed(), 5 * fan_out_total(kDepth));
  EXPECT_GE(rt.balance_ratio(), 1.0);
  // max <= n * mean always; equality only if one worker did everything
  // while others show nonzero — i.e. the ratio is a valid max/mean.
  EXPECT_LE(rt.balance_ratio(), static_cast<double>(rt.workers()));
}

TEST(WsRuntime, SequentialModeRunsEverythingOnWorkerZero) {
  HostRuntime rt(4, SchedulerMode::kSequential);
  EXPECT_EQ(rt.mode(), SchedulerMode::kSequential);
  const std::vector<CodeletKey> seeds{{0, 0}};
  rt.run_phase(seeds, PoolPolicy::kLifo, fan_out_body(6));
  EXPECT_EQ(rt.executed(), fan_out_total(6));
  EXPECT_EQ(rt.executed_per_worker()[0], rt.executed());
  for (unsigned w = 1; w < rt.workers(); ++w)
    EXPECT_EQ(rt.executed_per_worker()[w], 0u);
  EXPECT_EQ(rt.steals(), 0u);
}

TEST(WsRuntime, SequentialModeIsDeterministic) {
  auto record_run = [](PoolPolicy policy) {
    HostRuntime rt(3, SchedulerMode::kSequential);
    std::vector<CodeletKey> order;
    const std::vector<CodeletKey> seeds{{0, 0}, {0, 1}, {0, 2}};
    rt.run_phase(seeds, policy,
                 [&order](CodeletKey c, unsigned worker, codelet::Pusher& push) {
                   EXPECT_EQ(worker, 0u);
                   order.push_back(c);
                   if (c.stage == 0) push.push({1, c.index});
                 });
    return order;
  };
  const auto lifo_a = record_run(PoolPolicy::kLifo);
  const auto lifo_b = record_run(PoolPolicy::kLifo);
  ASSERT_EQ(lifo_a.size(), 6u);
  EXPECT_EQ(lifo_a, lifo_b);
  // Strict single-pool LIFO: last seed first, each child runs immediately
  // after its parent (it is the newest entry).
  const std::vector<CodeletKey> want_lifo{{0, 2}, {1, 2}, {0, 1},
                                          {1, 1}, {0, 0}, {1, 0}};
  EXPECT_EQ(lifo_a, want_lifo);

  // Strict FIFO: seeds in order, then the children in push order.
  const auto fifo = record_run(PoolPolicy::kFifo);
  const std::vector<CodeletKey> want_fifo{{0, 0}, {0, 1}, {0, 2},
                                          {1, 0}, {1, 1}, {1, 2}};
  EXPECT_EQ(fifo, want_fifo);
}

TEST(WsRuntime, ExceptionPropagatesAndTeamSurvives) {
  HostRuntime rt(4);
  std::vector<CodeletKey> seeds;
  for (std::uint64_t i = 0; i < 64; ++i) seeds.push_back({0, i});
  auto throwing = [](CodeletKey c, unsigned, codelet::Pusher&) {
    spin_work();
    if (c.index == 13) throw std::runtime_error("codelet 13 failed");
  };
  EXPECT_THROW(
      rt.run_phase(seeds, PoolPolicy::kFifo, throwing), std::runtime_error);

  // The persistent team must remain usable after a failed phase.
  const std::uint64_t before = rt.executed();
  rt.run_phase(seeds, PoolPolicy::kFifo,
               [](CodeletKey, unsigned, codelet::Pusher&) { spin_work(); });
  EXPECT_EQ(rt.executed(), before + seeds.size());
}

TEST(WsRuntime, ManyPhasesOnOnePersistentTeam) {
  HostRuntime rt(4);
  std::atomic<std::uint64_t> bodies{0};
  const std::vector<CodeletKey> seeds{{0, 0}, {0, 1}, {0, 2}, {0, 3}};
  for (int phase = 0; phase < 200; ++phase)
    rt.run_phase(seeds, PoolPolicy::kLifo,
                 [&bodies](CodeletKey, unsigned, codelet::Pusher&) {
                   bodies.fetch_add(1, std::memory_order_relaxed);
                 });
  EXPECT_EQ(bodies.load(), 200u * 4u);
  EXPECT_EQ(rt.executed(), 200u * 4u);
}

TEST(WsRuntime, EmptyPhaseIsANoOp) {
  HostRuntime rt(2);
  rt.run_phase({}, PoolPolicy::kLifo,
               [](CodeletKey, unsigned, codelet::Pusher&) { FAIL(); });
  EXPECT_EQ(rt.executed(), 0u);
}

// The license for stealing: the static analyzer proves the fine-grain
// schedule race-free for ANY pop order (codelets ordered only by the
// counter DAG), so a thief reordering execution cannot change the result.
// Verify both halves: the proof holds, and the work-stealing runtime's
// output is bit-identical to the strict paper-order sequential mode.
TEST(WsRuntime, AnyPopOrderProofLicensesStealing) {
  const std::uint64_t n = 1 << 12;
  const fft::FftPlan plan(n, 6);
  const auto model = analysis::build_model(plan, fft::TwiddleLayout::kLinear,
                                           analysis::Schedule::kCounters);
  const auto races = analysis::detect_races(model);
  ASSERT_EQ(races.status, "pass") << races.note;

  util::Xoshiro256 rng(99);
  std::vector<fft::cplx> input(n);
  for (auto& x : input)
    x = fft::cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);

  fft::HostFftOptions seq_opts;
  seq_opts.workers = 1;
  seq_opts.mode = SchedulerMode::kSequential;
  auto want = input;
  fft::fft_host(want, fft::Variant::kFine, seq_opts);

  fft::HostFftOptions ws_opts;
  ws_opts.workers = 4;  // default kWorkStealing
  for (int run = 0; run < 3; ++run) {
    auto got = input;
    fft::fft_host(got, fft::Variant::kFine, ws_opts);
    ASSERT_EQ(fft::max_abs_error(got, want), 0.0) << "run " << run;
  }
}

}  // namespace
}  // namespace c64fft
