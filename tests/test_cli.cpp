#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace c64fft::util {
namespace {

CliParser make_parser() {
  CliParser p("test program");
  p.add_flag("verbose", "enable chatter");
  p.add_int("n", 1024, "input size");
  p.add_double("scale", 1.5, "scale factor");
  p.add_string("variant", "fine", "algorithm");
  return p;
}

TEST(CliParser, Defaults) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_FALSE(p.flag("verbose"));
  EXPECT_EQ(p.get_int("n"), 1024);
  EXPECT_DOUBLE_EQ(p.get_double("scale"), 1.5);
  EXPECT_EQ(p.get_string("variant"), "fine");
}

TEST(CliParser, EqualsSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n=4096", "--scale=2.25", "--variant=coarse",
                        "--verbose"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_TRUE(p.flag("verbose"));
  EXPECT_EQ(p.get_int("n"), 4096);
  EXPECT_DOUBLE_EQ(p.get_double("scale"), 2.25);
  EXPECT_EQ(p.get_string("variant"), "coarse");
}

TEST(CliParser, SpaceSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n", "99"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("n"), 99);
}

TEST(CliParser, Positional) {
  auto p = make_parser();
  const char* argv[] = {"prog", "input.dat", "--n=2", "more"};
  ASSERT_TRUE(p.parse(4, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.dat");
  EXPECT_EQ(p.positional()[1], "more");
}

TEST(CliParser, UnknownOptionThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(CliParser, MissingValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(CliParser, BadIntThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(CliParser, HelpReturnsFalse) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--help"};
  testing::internal::CaptureStdout();
  EXPECT_FALSE(p.parse(2, argv));
  const std::string help = testing::internal::GetCapturedStdout();
  EXPECT_NE(help.find("--variant"), std::string::npos);
}

TEST(CliParser, WrongTypeAccessThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_THROW(p.get_int("variant"), std::logic_error);
  EXPECT_THROW(p.flag("n"), std::logic_error);
}

TEST(CliParser, BoolValueForms) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--verbose=true"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_TRUE(p.flag("verbose"));

  auto q = make_parser();
  const char* argv2[] = {"prog", "--verbose=0"};
  ASSERT_TRUE(q.parse(2, argv2));
  EXPECT_FALSE(q.flag("verbose"));
}

}  // namespace
}  // namespace c64fft::util
