#include "c64/trace.hpp"

#include <gtest/gtest.h>

namespace c64fft::c64 {
namespace {

TEST(BankTrace, TotalsAndSeries) {
  BankTrace t(4, 100);
  t.record(10, 0, 3);
  t.record(50, 1, 1);
  t.record(150, 0, 2);
  EXPECT_EQ(t.windows(), 2u);
  EXPECT_EQ(t.at(0, 0), 3u);
  EXPECT_EQ(t.at(0, 1), 1u);
  EXPECT_EQ(t.at(1, 0), 2u);
  const auto totals = t.totals();
  EXPECT_EQ(totals[0], 5u);
  EXPECT_EQ(totals[1], 1u);
  EXPECT_EQ(totals[2], 0u);
}

TEST(BankTrace, ImbalanceBalanced) {
  BankTrace t(4, 10);
  for (unsigned b = 0; b < 4; ++b) t.record(5, b, 10);
  const auto imb = t.imbalance_series();
  ASSERT_EQ(imb.size(), 1u);
  EXPECT_DOUBLE_EQ(imb[0], 1.0);
  EXPECT_DOUBLE_EQ(t.total_imbalance(), 1.0);
}

TEST(BankTrace, ImbalancePaperShape) {
  // Fig. 1 shape: bank 0 gets ~3x each other bank => max/mean = 2.
  BankTrace t(4, 10);
  t.record(0, 0, 30);
  t.record(0, 1, 10);
  t.record(0, 2, 10);
  t.record(0, 3, 10);
  EXPECT_DOUBLE_EQ(t.total_imbalance(), 2.0);
}

TEST(BankTrace, EmptyWindowImbalanceIsOne) {
  BankTrace t(4, 10);
  t.record(25, 0, 1);  // windows 0 and 1 empty of other banks; window 2 hit
  const auto imb = t.imbalance_series();
  ASSERT_EQ(imb.size(), 3u);
  EXPECT_DOUBLE_EQ(imb[0], 1.0);
  EXPECT_DOUBLE_EQ(imb[2], 4.0);  // one bank has all traffic
}

TEST(BankTrace, Clear) {
  BankTrace t(2, 10);
  t.record(0, 0, 1);
  t.clear();
  EXPECT_EQ(t.windows(), 0u);
  EXPECT_DOUBLE_EQ(t.total_imbalance(), 1.0);
}

}  // namespace
}  // namespace c64fft::c64
