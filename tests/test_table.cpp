#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace c64fft::util {
namespace {

TEST(TextTable, RejectsEmptyHeaderAndBadRow) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, StoresCells) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"y", "2"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.cell(0, 0), "x");
  EXPECT_EQ(t.cell(1, 1), "2");
}

TEST(TextTable, PrintAligns) {
  TextTable t({"n", "gflops"});
  t.add_row({"32768", "4.2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n      gflops"), std::string::npos);
  EXPECT_NE(out.find("32768  4.2"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  std::ostringstream os;
  t.csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::uint64_t{123456}), "123456");
  EXPECT_EQ(TextTable::num(0.5, 0), "0");  // rounds down at .5 per IEEE even
}

}  // namespace
}  // namespace c64fft::util
