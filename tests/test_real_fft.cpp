#include "fft/real_fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "fft/reference.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<double> random_real(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_double() * 2 - 1;
  return v;
}

// Full complex reference spectrum of a real signal.
std::vector<cplx> full_spectrum(const std::vector<double>& signal) {
  std::vector<cplx> buf(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) buf[i] = cplx(signal[i], 0.0);
  fft_serial_inplace(buf);
  return buf;
}

TEST(RealFft, RejectsBadLengths) {
  EXPECT_THROW(real_forward(std::vector<double>(12)), std::invalid_argument);
  EXPECT_THROW(real_forward(std::vector<double>(1)), std::invalid_argument);
  EXPECT_THROW(real_inverse(std::vector<cplx>(1)), std::invalid_argument);
  EXPECT_THROW(real_inverse(std::vector<cplx>(12)), std::invalid_argument);
}

class RealFftSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RealFftSizes, HalfSpectrumMatchesFullFft) {
  const std::uint64_t n = GetParam();
  const auto signal = random_real(n, n);
  const auto want = full_spectrum(signal);
  const auto got = real_forward(signal);
  ASSERT_EQ(got.size(), n / 2 + 1);
  for (std::uint64_t k = 0; k <= n / 2; ++k)
    EXPECT_LT(std::abs(got[k] - want[k]), 1e-9) << "bin " << k << " n " << n;
}

TEST_P(RealFftSizes, RoundTrip) {
  const std::uint64_t n = GetParam();
  const auto signal = random_real(n, n + 17);
  const auto spec = real_forward(signal);
  const auto back = real_inverse(spec);
  ASSERT_EQ(back.size(), n);
  for (std::uint64_t i = 0; i < n; ++i)
    EXPECT_NEAR(back[i], signal[i], 1e-10) << i;
}

INSTANTIATE_TEST_SUITE_P(Pow2, RealFftSizes,
                         ::testing::Values(2, 4, 8, 32, 256, 4096));

TEST(RealFft, DcAndNyquistAreReal) {
  const auto signal = random_real(1024, 3);
  const auto spec = real_forward(signal);
  EXPECT_NEAR(spec.front().imag(), 0.0, 1e-9);
  EXPECT_NEAR(spec.back().imag(), 0.0, 1e-9);
}

TEST(RealFft, PureToneLandsInOneBin) {
  const std::uint64_t n = 1024, tone = 37;
  std::vector<double> signal(n);
  for (std::uint64_t i = 0; i < n; ++i)
    signal[i] = std::cos(2.0 * std::numbers::pi * static_cast<double>(tone * i) /
                         static_cast<double>(n));
  const auto spec = real_forward(signal);
  for (std::uint64_t k = 0; k <= n / 2; ++k) {
    if (k == tone)
      EXPECT_NEAR(std::abs(spec[k]), static_cast<double>(n) / 2, 1e-8);
    else
      EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-8) << k;
  }
}

TEST(RealFft, WorksOnEverySchedulerVariant) {
  const auto signal = random_real(4096, 9);
  const auto want = real_forward(signal);
  for (Variant v : {Variant::kCoarse, Variant::kGuided}) {
    HostFftOptions opts;
    opts.workers = 3;
    const auto got = real_forward(signal, opts, v);
    for (std::size_t k = 0; k < want.size(); ++k)
      ASSERT_LT(std::abs(got[k] - want[k]), 1e-10) << to_string(v);
  }
}

}  // namespace
}  // namespace c64fft::fft
