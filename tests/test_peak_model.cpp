#include "c64/peak_model.hpp"

#include <gtest/gtest.h>

namespace c64fft::c64 {
namespace {

TEST(PeakModel, FftFlops) {
  EXPECT_DOUBLE_EQ(PeakModel::fft_flops(64), 5.0 * 64 * 6);
  EXPECT_DOUBLE_EQ(PeakModel::fft_flops(1ULL << 20), 5.0 * (1ULL << 20) * 20);
  EXPECT_THROW(PeakModel::fft_flops(100), std::invalid_argument);
}

TEST(PeakModel, TaskCountMatchesPaperEq2) {
  // #tasks = N/64 * ceil(log2 N / 6)
  EXPECT_EQ(PeakModel::task_count(1ULL << 15, 64), (1ULL << 9) * 3);
  EXPECT_EQ(PeakModel::task_count(1ULL << 18, 64), (1ULL << 12) * 3);
  EXPECT_EQ(PeakModel::task_count(1ULL << 22, 64), (1ULL << 16) * 4);
  EXPECT_EQ(PeakModel::task_count(1ULL << 24, 64), (1ULL << 18) * 4);
  EXPECT_THROW(PeakModel::task_count(1ULL << 15, 3), std::invalid_argument);
  EXPECT_THROW(PeakModel::task_count(100, 64), std::invalid_argument);
}

TEST(PeakModel, TaskBytesMatchesPaperEq3) {
  // (64 + 64 + 63) * 16 bytes
  EXPECT_EQ(PeakModel::task_bytes(64), 191u * 16u);
  EXPECT_EQ(PeakModel::task_bytes(8), 23u * 16u);
}

TEST(PeakModel, TaskSecondsAt16GBps) {
  PeakModel m;  // default chip: 16 GB/s aggregate
  EXPECT_NEAR(m.chip.total_dram_gbps(), 16.0, 1e-12);
  EXPECT_NEAR(m.task_seconds(64), 191.0 * 16.0 / 16e9, 1e-18);
}

TEST(PeakModel, PaperHeadlineTenGflops) {
  // Eq. 4: peak = 10 GFLOPS for 64-point tasks on the 16 GB/s DRAM.
  PeakModel m;
  EXPECT_NEAR(m.peak_gflops_asymptotic(64), 10.05, 0.05);
  // With the stage ceiling the N-dependent value is never above the
  // asymptotic one.
  for (unsigned lg = 12; lg <= 24; ++lg)
    EXPECT_LE(m.peak_gflops(1ULL << lg, 64), m.peak_gflops_asymptotic(64) + 1e-9);
  // ...and equals it when 6 | log2 N.
  EXPECT_NEAR(m.peak_gflops(1ULL << 18, 64), m.peak_gflops_asymptotic(64), 1e-9);
  EXPECT_NEAR(m.peak_gflops(1ULL << 24, 64), m.peak_gflops_asymptotic(64), 1e-9);
}

TEST(PeakModel, LargerTasksRaiseTheMemoryBoundPeak) {
  // Fig. 7 rationale: flops/byte grows with the codelet size, so the
  // memory-bound ceiling is monotonically increasing in R...
  PeakModel m;
  double prev = 0.0;
  for (std::uint64_t r = 4; r <= 128; r *= 2) {
    const double p = m.peak_gflops_asymptotic(r);
    EXPECT_GT(p, prev) << r;
    prev = p;
  }
}

TEST(PeakModel, ComputePeak) {
  PeakModel m;  // 156 TUs * 1 flop/cycle * 0.5 GHz = 78 GFLOPS
  EXPECT_NEAR(m.compute_peak_gflops(), 78.0, 1e-9);
  // The FFT on off-chip data is memory-bound: DRAM peak << compute peak.
  EXPECT_LT(m.peak_gflops_asymptotic(64), m.compute_peak_gflops() / 4);
}

}  // namespace
}  // namespace c64fft::c64
