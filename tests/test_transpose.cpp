// Blocked transpose kernels: equivalence with the naive element loop for
// arbitrary (not just tile-multiple or power-of-two) shapes, the
// involution property transpose(transpose(x)) == x on non-square
// matrices, the in-place square kernel against the out-of-place one, and
// the fused twiddle-transpose against an unfused reference built from
// std::polar.

#include "fft/transpose.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "fft/reference.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_matrix(std::uint64_t rows, std::uint64_t cols,
                                std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> m(rows * cols);
  for (auto& x : m) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return m;
}

std::vector<cplx> transpose_naive(const std::vector<cplx>& src, std::uint64_t rows,
                                  std::uint64_t cols) {
  std::vector<cplx> dst(src.size());
  for (std::uint64_t r = 0; r < rows; ++r)
    for (std::uint64_t c = 0; c < cols; ++c) dst[c * rows + r] = src[r * cols + c];
  return dst;
}

TEST(Transpose, BlockedMatchesNaiveAcrossShapes) {
  // Shapes straddle every tiling case: smaller than a tile, exact tile
  // multiples, ragged edges in one or both dimensions, and tall/wide
  // aspect ratios.
  const std::pair<std::uint64_t, std::uint64_t> shapes[] = {
      {1, 1}, {1, 7}, {5, 3}, {16, 16}, {16, 48}, {33, 17}, {128, 64}, {31, 129}};
  for (auto [rows, cols] : shapes) {
    const auto src = random_matrix(rows, cols, rows * 1000 + cols);
    std::vector<cplx> dst(src.size());
    transpose_blocked(src, dst, rows, cols);
    EXPECT_EQ(dst, transpose_naive(src, rows, cols)) << rows << "x" << cols;
  }
}

TEST(Transpose, BlockedIsAnInvolutionOnNonSquare) {
  const std::uint64_t rows = 96, cols = 40;
  const auto src = random_matrix(rows, cols, 42);
  std::vector<cplx> t(src.size()), back(src.size());
  transpose_blocked(src, t, rows, cols);
  transpose_blocked(t, back, cols, rows);
  EXPECT_EQ(back, src);
}

TEST(Transpose, InplaceSquareMatchesBlocked) {
  for (std::uint64_t n : {std::uint64_t{1}, std::uint64_t{8}, std::uint64_t{16},
                          std::uint64_t{33}, std::uint64_t{100}, std::uint64_t{128}}) {
    auto data = random_matrix(n, n, n);
    std::vector<cplx> want(data.size());
    transpose_blocked(data, want, n, n);
    transpose_inplace_square(data, n);
    EXPECT_EQ(data, want) << n;
  }
}

TEST(Transpose, InplaceSquareIsAnInvolution) {
  const std::uint64_t n = 80;
  const auto src = random_matrix(n, n, 7);
  auto data = src;
  transpose_inplace_square(data, n);
  transpose_inplace_square(data, n);
  EXPECT_EQ(data, src);
}

TEST(Transpose, TwiddleBlockedMatchesPolarReference) {
  for (TwiddleDirection dir :
       {TwiddleDirection::kForward, TwiddleDirection::kInverse}) {
    const std::uint64_t rows = 24, cols = 40;  // n = 960, ragged tiles
    const std::uint64_t n = rows * cols;
    const double sign = dir == TwiddleDirection::kForward ? -1.0 : 1.0;
    const auto src = random_matrix(rows, cols, 11);
    std::vector<cplx> got(n), want(n);
    transpose_twiddle_blocked(src, got, rows, cols, dir);
    for (std::uint64_t r = 0; r < rows; ++r)
      for (std::uint64_t c = 0; c < cols; ++c) {
        const double angle =
            sign * 2.0 * std::numbers::pi * static_cast<double>(r * c) /
            static_cast<double>(n);
        want[c * rows + r] = src[r * cols + c] * std::polar(1.0, angle);
      }
    // The per-tile geometric recurrence is at most kTransposeTile steps
    // long, so its drift against direct polar evaluation stays at a few
    // ulps even for the largest exponents.
    EXPECT_LT(max_abs_error(got, want), 1e-12) << static_cast<int>(dir);
  }
}

TEST(Transpose, TwiddleFusionEquivalentToSeparatePasses) {
  const std::uint64_t rows = 32, cols = 32;
  const auto src = random_matrix(rows, cols, 3);
  std::vector<cplx> fused(src.size());
  transpose_twiddle_blocked(src, fused, rows, cols, TwiddleDirection::kForward);

  std::vector<cplx> scaled = src;
  for (std::uint64_t r = 0; r < rows; ++r)
    for (std::uint64_t c = 0; c < cols; ++c)
      scaled[r * cols + c] *= unit_root(rows * cols, r * c);
  std::vector<cplx> unfused(src.size());
  transpose_blocked(scaled, unfused, rows, cols);
  // Not bit-identical (the fused kernel generates factors by recurrence,
  // the reference evaluates each root directly) but within a few ulps.
  EXPECT_LT(max_abs_error(fused, unfused), 1e-13);
}

TEST(Transpose, ShapeMismatchThrows) {
  std::vector<cplx> src(12), dst(12), small(11);
  EXPECT_THROW(transpose_blocked(src, dst, 3, 5), std::invalid_argument);
  EXPECT_THROW(transpose_blocked(src, small, 3, 4), std::invalid_argument);
  EXPECT_THROW(transpose_inplace_square(src, 4), std::invalid_argument);
  EXPECT_THROW(
      transpose_twiddle_blocked(src, small, 3, 4, TwiddleDirection::kForward),
      std::invalid_argument);
}

}  // namespace
}  // namespace c64fft::fft
