#include "fft/stockham.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fft/reference.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

TEST(Stockham, RejectsNonPow2) {
  EXPECT_THROW(fft_stockham(std::vector<cplx>(12)), std::invalid_argument);
  EXPECT_THROW(fft_stockham(std::vector<cplx>(0)), std::invalid_argument);
}

TEST(Stockham, TrivialSizes) {
  const std::vector<cplx> one{cplx(3, -2)};
  const auto o = fft_stockham(one);
  EXPECT_EQ(o.size(), 1u);
  EXPECT_DOUBLE_EQ(o[0].real(), 3.0);

  const std::vector<cplx> two{cplx(1, 0), cplx(2, 0)};
  const auto t = fft_stockham(two);
  EXPECT_NEAR(t[0].real(), 3.0, 1e-15);
  EXPECT_NEAR(t[1].real(), -1.0, 1e-15);
}

class StockhamSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StockhamSizes, MatchesDft) {
  const std::uint64_t n = GetParam();
  const auto x = random_signal(n, n ^ 0xF00);
  const auto want = n <= 512 ? dft_reference(x) : fft_recursive(x);
  const auto got = fft_stockham(x);
  EXPECT_LT(max_abs_error(got, want), 1e-8) << n;
}

INSTANTIATE_TEST_SUITE_P(Pow2, StockhamSizes,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024, 1 << 14));

TEST(Stockham, NoBitReversalNeeded) {
  // The autosort property: feeding natural-order input yields natural-
  // order output identical (within rounding) to the bit-reversal-based
  // serial FFT.
  auto x = random_signal(1 << 10, 5);
  auto serial = x;
  fft_serial_inplace(serial);
  const auto stockham = fft_stockham(x);
  EXPECT_LT(max_abs_error(stockham, serial), 1e-9);
}

TEST(Stockham, InplaceWrapperAgrees) {
  auto x = random_signal(256, 6);
  const auto out = fft_stockham(x);
  fft_stockham_inplace(x);
  EXPECT_EQ(max_abs_error(x, out), 0.0);
}

TEST(Stockham, LinearityAndParseval) {
  const std::uint64_t n = 512;
  const auto a = random_signal(n, 7);
  auto A = fft_stockham(a);
  double te = 0, fe = 0;
  for (const auto& v : a) te += std::norm(v);
  for (const auto& v : A) fe += std::norm(v);
  EXPECT_NEAR(fe / static_cast<double>(n), te, 1e-8);
}

}  // namespace
}  // namespace c64fft::fft
