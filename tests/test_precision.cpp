// The precision-generic core's contract: the f32 path is a first-class
// citizen of every shipped variant and layout (round trip + vs the f64
// reference, classic and four-step), the two widths are bit-independent
// (interleaving f64 work never changes an f32 result), the plan cache
// keys entries by Precision (distinct entries, LRU accounting, and the
// wrong-width twiddle accessor throws), and a precision switch never
// respawns the persistent worker team.

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "codelet/host_runtime.hpp"
#include "fft/api.hpp"
#include "fft/executor.hpp"
#include "fft/fft2d.hpp"
#include "fft/real_fft.hpp"
#include "fft/reference.hpp"
#include "util/prng.hpp"
#include "util/ulp.hpp"

namespace c64fft::fft {
namespace {

constexpr double kF32RelL2Tol = 2e-6;
// The four-step decomposition adds the fused twiddle-transpose's extra
// rounding per element per pass; a forward+inverse pair crosses it twice.
constexpr double kF32FourStepRelL2Tol = 1e-5;

std::vector<cplx32> random_signal32(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx32> v(n);
  for (auto& x : v)
    x = cplx32(static_cast<float>(rng.next_double() * 2 - 1),
               static_cast<float>(rng.next_double() * 2 - 1));
  return v;
}

std::vector<cplx> widen(const std::vector<cplx32>& v) {
  std::vector<cplx> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = cplx(v[i].real(), v[i].imag());
  return out;
}

TEST(Precision, F32MatchesReferenceAllVariantsAndLayouts) {
  const std::uint64_t n = 1ULL << 12;
  const auto input = random_signal32(n, 31);
  auto want = widen(input);
  fft_serial_inplace(want);
  FftExecutor ex;
  for (Variant variant : {Variant::kCoarse, Variant::kFine, Variant::kGuided}) {
    for (TwiddleLayout layout : {TwiddleLayout::kLinear, TwiddleLayout::kBitReversed}) {
      HostFftOptions opts;
      opts.workers = 3;
      opts.layout = layout;
      auto got = input;
      ex.forward(std::span<cplx32>(got), opts, variant);
      EXPECT_LT(rel_l2_error(got, want), kF32RelL2Tol)
          << to_string(variant) << " layout=" << static_cast<int>(layout);
    }
  }
}

TEST(Precision, F32RoundTripAllVariantsAndLayouts) {
  const std::uint64_t n = 1ULL << 11;
  const auto input = random_signal32(n, 47);
  const auto want = widen(input);
  FftExecutor ex;
  for (Variant variant : {Variant::kCoarse, Variant::kFine, Variant::kGuided}) {
    for (TwiddleLayout layout : {TwiddleLayout::kLinear, TwiddleLayout::kBitReversed}) {
      HostFftOptions opts;
      opts.workers = 2;
      opts.layout = layout;
      auto data = input;
      ex.forward(std::span<cplx32>(data), opts, variant);
      ex.inverse(std::span<cplx32>(data), opts, variant);
      EXPECT_LT(rel_l2_error(data, want), kF32RelL2Tol)
          << to_string(variant) << " layout=" << static_cast<int>(layout);
    }
  }
}

TEST(Precision, F32FourStepRoundTripAndReference) {
  ExecutorOptions eopts;
  eopts.four_step_threshold_log2 = 10;
  FftExecutor ex(eopts);
  const std::uint64_t n = 1ULL << 12;
  const auto input = random_signal32(n, 53);
  auto want = widen(input);
  fft_serial_inplace(want);

  auto got = input;
  ex.forward(std::span<cplx32>(got));
  EXPECT_GE(ex.stats().four_step, 1u);
  EXPECT_LT(rel_l2_error(got, want), kF32FourStepRelL2Tol);

  ex.inverse(std::span<cplx32>(got));
  EXPECT_LT(rel_l2_error(got, widen(input)), kF32FourStepRelL2Tol);
}

TEST(Precision, F32ResultsBitIndependentOfF64Interleaving) {
  // Computing the same f32 transform before, between, and after f64 work
  // must give bit-identical spectra: the widths share the team and cache
  // but never each other's numeric state.
  const std::uint64_t n = 1ULL << 10;
  const auto input32 = random_signal32(n, 61);
  util::Xoshiro256 rng(62);
  std::vector<cplx> input64(n);
  for (auto& x : input64)
    x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);

  FftExecutor ex;
  HostFftOptions opts;
  opts.workers = 2;
  auto alone = input32;
  ex.forward(std::span<cplx32>(alone), opts);

  auto mixed = input32;
  auto d = input64;
  ex.forward(std::span<cplx>(d), opts);
  ex.forward(std::span<cplx32>(mixed), opts);
  ex.inverse(std::span<cplx>(d), opts);
  EXPECT_EQ(max_abs_error(mixed, alone), 0.0);

  // And the f64 side is equally undisturbed by f32 traffic.
  auto d2 = input64;
  FftExecutor fresh;
  fresh.forward(std::span<cplx>(d2), opts);
  auto d3 = input64;
  auto warm32 = input32;
  FftExecutor interleaved;
  interleaved.forward(std::span<cplx32>(warm32), opts);
  interleaved.forward(std::span<cplx>(d3), opts);
  EXPECT_EQ(max_abs_error(d3, d2), 0.0);
}

TEST(Precision, F32BatchMatchesLoopBitExactly) {
  const std::uint64_t n = 1ULL << 10;
  const std::size_t batch_size = 4;
  HostFftOptions opts;
  opts.workers = 4;
  std::vector<std::vector<cplx32>> loop_bufs, batch_bufs;
  for (std::size_t b = 0; b < batch_size; ++b) {
    loop_bufs.push_back(random_signal32(n, 500 + b));
    batch_bufs.push_back(loop_bufs.back());
  }
  FftExecutor ex;
  for (auto& buf : loop_bufs) ex.forward(std::span<cplx32>(buf), opts);
  std::vector<std::span<cplx32>> spans;
  for (auto& buf : batch_bufs) spans.emplace_back(buf);
  ex.forward_batch(spans, opts);
  for (std::size_t b = 0; b < batch_size; ++b)
    EXPECT_EQ(max_abs_error(batch_bufs[b], loop_bufs[b]), 0.0) << b;
}

TEST(Precision, MixedPrecisionPlanCacheKeepsDistinctEntries) {
  FftExecutor ex;
  HostFftOptions opts;
  opts.workers = 2;
  auto f64 = std::vector<cplx>(256);
  auto f32 = random_signal32(256, 3);
  for (auto& x : f64) x = cplx(1.0, -1.0);

  ex.forward(std::span<cplx>(f64), opts);   // miss: f64 entry
  ex.forward(std::span<cplx32>(f32), opts); // miss: same n, NEW f32 entry
  auto s = ex.stats();
  EXPECT_EQ(s.cache.misses, 2u);
  EXPECT_EQ(s.cache.hits, 0u);

  ex.forward(std::span<cplx>(f64), opts);   // hit each existing entry
  ex.forward(std::span<cplx32>(f32), opts);
  s = ex.stats();
  EXPECT_EQ(s.cache.misses, 2u);
  EXPECT_EQ(s.cache.hits, 2u);

  // One persistent team serves both widths: the precision switches above
  // must not have respawned it.
  EXPECT_EQ(s.teams_created, 1u);
}

TEST(Precision, LruAccountingCountsPrecisionKeysSeparately) {
  ExecutorOptions eopts;
  eopts.capacity = 2;
  FftExecutor ex(eopts);
  HostFftOptions opts;
  opts.workers = 1;

  std::vector<cplx> a64(256, cplx(1, 0)), b64(512, cplx(1, 0));
  auto a32 = random_signal32(256, 9);

  ex.forward(std::span<cplx>(a64), opts);    // miss: {256/f64}
  ex.forward(std::span<cplx32>(a32), opts);  // miss: {256/f32, 256/f64}
  ex.forward(std::span<cplx>(b64), opts);    // miss, evicts LRU 256/f64
  auto s = ex.stats();
  EXPECT_EQ(s.cache.misses, 3u);
  EXPECT_EQ(s.cache.evictions, 1u);

  ex.forward(std::span<cplx32>(a32), opts);  // still cached: hit
  a64.assign(256, cplx(1, 0));
  ex.forward(std::span<cplx>(a64), opts);    // evicted above: miss again
  s = ex.stats();
  EXPECT_EQ(s.cache.hits, 1u);
  EXPECT_EQ(s.cache.misses, 4u);
  EXPECT_EQ(s.cache.evictions, 2u);
}

TEST(Precision, PlanEntryRejectsWrongWidthTwiddleAccessor) {
  PlanCache cache(4);
  PlanKey k32{1024, 6, TwiddleLayout::kLinear, PlanKind::kClassic, Precision::kF32};
  auto e32 = cache.acquire(k32);
  EXPECT_EQ(e32->precision(), Precision::kF32);
  EXPECT_EQ(e32->twiddles_f32(TwiddleDirection::kForward).fft_size(), 1024u);
  EXPECT_THROW(e32->twiddles(TwiddleDirection::kForward), std::logic_error);

  PlanKey k64{1024, 6, TwiddleLayout::kLinear, PlanKind::kClassic, Precision::kF64};
  auto e64 = cache.acquire(k64);
  EXPECT_NE(e32.get(), e64.get());
  EXPECT_EQ(e64->precision(), Precision::kF64);
  EXPECT_EQ(e64->twiddles(TwiddleDirection::kForward).fft_size(), 1024u);
  EXPECT_THROW(e64->twiddles_f32(TwiddleDirection::kForward), std::logic_error);
}

TEST(Precision, F32TwiddlesAreNarrowedF64Twiddles) {
  // The f32 tables must be the correctly rounded f64 tables, slot by slot
  // (trig evaluated in double once, narrowed per element) — not a float
  // re-derivation with its own error.
  TwiddleTable t64(512, TwiddleLayout::kLinear, TwiddleDirection::kForward);
  TwiddleTableF t32(512, TwiddleLayout::kLinear, TwiddleDirection::kForward);
  ASSERT_EQ(t64.size(), t32.size());
  for (std::size_t i = 0; i < t64.size(); ++i) {
    const cplx w = t64.storage()[i];
    const cplx32 f = t32.storage()[i];
    EXPECT_EQ(f.real(), static_cast<float>(w.real())) << i;
    EXPECT_EQ(f.imag(), static_cast<float>(w.imag())) << i;
  }
}

TEST(Precision, ApiCopyAndRealAnd2dF32Paths) {
  // forward_copy/inverse_copy round trip.
  const auto input = random_signal32(1024, 71);
  const auto spec = forward_copy(std::span<const cplx32>(input.data(), input.size()));
  const auto back = inverse_copy(std::span<const cplx32>(spec.data(), spec.size()));
  EXPECT_LT(rel_l2_error(back, widen(input)), kF32RelL2Tol);

  // Real packing trick at f32: round trip a real signal.
  util::Xoshiro256 rng(72);
  std::vector<float> sig(2048);
  for (auto& x : sig) x = static_cast<float>(rng.next_double() * 2 - 1);
  const auto half = real_forward(std::span<const float>(sig.data(), sig.size()));
  EXPECT_EQ(half.size(), sig.size() / 2 + 1);
  const auto rec = real_inverse(std::span<const cplx32>(half.data(), half.size()));
  ASSERT_EQ(rec.size(), sig.size());
  double worst = 0;
  for (std::size_t i = 0; i < sig.size(); ++i)
    worst = std::max(worst, std::abs(static_cast<double>(rec[i]) - sig[i]));
  EXPECT_LT(worst, 1e-5);

  // 2-D separable path (rectangular shape exercises the out-of-place
  // transpose pair).
  const std::uint64_t rows = 32, cols = 64;
  auto img = random_signal32(rows * cols, 73);
  const auto orig = widen(img);
  forward_2d(std::span<cplx32>(img), rows, cols);
  inverse_2d(std::span<cplx32>(img), rows, cols);
  EXPECT_LT(rel_l2_error(img, orig), kF32RelL2Tol);
}

TEST(Precision, ElementBytesOfPrecision) {
  EXPECT_EQ(element_bytes(Precision::kF32), 8u);
  EXPECT_EQ(element_bytes(Precision::kF64), 16u);
  EXPECT_EQ(precision_of<float>, Precision::kF32);
  EXPECT_EQ(precision_of<double>, Precision::kF64);
  EXPECT_EQ(to_string(Precision::kF32), "f32");
  EXPECT_EQ(to_string(Precision::kF64), "f64");
}

}  // namespace
}  // namespace c64fft::fft
