#include "simfft/tuning.hpp"

#include <gtest/gtest.h>

#include "c64/peak_model.hpp"

namespace c64fft::simfft {
namespace {

TEST(Tuning, WorkingSetFormula) {
  EXPECT_EQ(codelet_working_set_bytes(6), (64u + 63u) * 16u);  // 2032 B
  EXPECT_EQ(codelet_working_set_bytes(7), (128u + 127u) * 16u);
  EXPECT_EQ(codelet_working_set_bytes(1), 48u);
}

TEST(Tuning, DefaultChipPicks64PointCodelets) {
  // The paper's Section V-A conclusion, derived instead of assumed.
  c64::ChipConfig cfg;
  EXPECT_EQ(best_radix_log2(cfg), 6u);
}

TEST(Tuning, BiggerScratchpadPicksBiggerCodelets) {
  c64::ChipConfig cfg;
  cfg.scratchpad_bytes = 8192;
  EXPECT_EQ(best_radix_log2(cfg), 8u);
  cfg.scratchpad_bytes = 1024;  // 32-point working set = 1008 B fits
  EXPECT_EQ(best_radix_log2(cfg), 5u);
  cfg.scratchpad_bytes = 1;  // nothing fits; clamp to the minimum radix
  EXPECT_EQ(best_radix_log2(cfg), 1u);
}

TEST(Tuning, RespectsMaxRadix) {
  c64::ChipConfig cfg;
  cfg.scratchpad_bytes = 1 << 20;
  EXPECT_EQ(best_radix_log2(cfg, 4), 4u);
  EXPECT_THROW(best_radix_log2(cfg, 0), std::invalid_argument);
}

TEST(Tuning, PeakIsMonotoneSoLargestFittingWins) {
  // Cross-check the monotonicity claim the tuner relies on.
  c64::PeakModel peak;
  double prev = 0.0;
  for (unsigned r = 1; r <= 8; ++r) {
    const double p = peak.peak_gflops_asymptotic(std::uint64_t{1} << r);
    EXPECT_GT(p, prev) << r;
    prev = p;
  }
}

}  // namespace
}  // namespace c64fft::simfft
