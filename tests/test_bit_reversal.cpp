#include "fft/bit_reversal.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/bit_ops.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> iota(std::uint64_t n) {
  std::vector<cplx> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = cplx(static_cast<double>(i), 0.0);
  return v;
}

TEST(BitReversal, RejectsNonPow2) {
  std::vector<cplx> v(12);
  EXPECT_THROW(bit_reverse_permute(v), std::invalid_argument);
}

TEST(BitReversal, KnownPermutationN8) {
  auto v = iota(8);
  bit_reverse_permute(v);
  const double expect[] = {0, 4, 2, 6, 1, 5, 3, 7};
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(v[i].real(), expect[i]);
}

TEST(BitReversal, IsInvolution) {
  auto v = iota(256);
  const auto orig = v;
  bit_reverse_permute(v);
  EXPECT_NE(v, orig);
  bit_reverse_permute(v);
  EXPECT_EQ(v, orig);
}

TEST(BitReversal, ElementLandsAtReversedIndex) {
  const unsigned bits = 10;
  auto v = iota(1 << bits);
  bit_reverse_permute(v);
  for (std::uint64_t i = 0; i < v.size(); ++i)
    EXPECT_DOUBLE_EQ(v[i].real(),
                     static_cast<double>(util::bit_reverse(i, bits)));
}

TEST(BitReversal, TrivialSizes) {
  std::vector<cplx> one{cplx(5, 0)};
  bit_reverse_permute(one);
  EXPECT_DOUBLE_EQ(one[0].real(), 5.0);
  std::vector<cplx> two{cplx(1, 0), cplx(2, 0)};
  bit_reverse_permute(two);
  EXPECT_DOUBLE_EQ(two[0].real(), 1.0);
  EXPECT_DOUBLE_EQ(two[1].real(), 2.0);
}

class ParallelBitReversal : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelBitReversal, MatchesSerial) {
  const unsigned workers = GetParam();
  for (std::uint64_t n : {2ULL, 64ULL, 1024ULL, 1ULL << 14}) {
    auto serial = iota(n);
    auto parallel = serial;
    bit_reverse_permute(serial);
    bit_reverse_permute_parallel(parallel, workers);
    ASSERT_EQ(serial, parallel) << "n=" << n << " workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelBitReversal, ::testing::Values(1, 2, 3, 8));

TEST(BitReversal, ParallelOddChunkCounts) {
  auto serial = iota(1 << 12);
  auto parallel = serial;
  bit_reverse_permute(serial);
  bit_reverse_permute_parallel(parallel, 4, 7);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace c64fft::fft
