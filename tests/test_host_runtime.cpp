#include "codelet/host_runtime.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "codelet/dep_counter.hpp"

namespace c64fft::codelet {
namespace {

TEST(HostRuntime, RejectsZeroWorkers) {
  EXPECT_THROW(HostRuntime(0), std::invalid_argument);
}

TEST(HostRuntime, EmptyPhaseReturnsImmediately) {
  HostRuntime rt(2);
  rt.run_phase({}, PoolPolicy::kFifo, [](CodeletKey, unsigned, Pusher&) {
    FAIL() << "no codelet should run";
  });
  EXPECT_EQ(rt.executed(), 0u);
}

TEST(HostRuntime, RunsEverySeedExactlyOnce) {
  for (unsigned workers : {1u, 2u, 4u}) {
    HostRuntime rt(workers);
    std::vector<CodeletKey> seeds;
    for (std::uint64_t i = 0; i < 100; ++i) seeds.push_back({0, i});
    std::mutex m;
    std::set<std::uint64_t> seen;
    rt.run_phase(seeds, PoolPolicy::kLifo, [&](CodeletKey c, unsigned, Pusher&) {
      std::lock_guard lock(m);
      EXPECT_TRUE(seen.insert(c.index).second) << "duplicate execution";
    });
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(rt.executed(), 100u);
  }
}

TEST(HostRuntime, DynamicallyPushedWorkRuns) {
  HostRuntime rt(3);
  std::atomic<int> count{0};
  const std::vector<CodeletKey> seeds{{0, 0}};
  rt.run_phase(seeds, PoolPolicy::kLifo, [&](CodeletKey c, unsigned, Pusher& push) {
    count.fetch_add(1);
    // Binary fan-out to depth 6: 127 codelets total.
    if (c.stage < 6) {
      push.push({c.stage + 1, c.index * 2});
      push.push({c.stage + 1, c.index * 2 + 1});
    }
  });
  EXPECT_EQ(count.load(), 127);
  EXPECT_EQ(rt.executed(), 127u);
}

TEST(HostRuntime, PhaseBoundaryIsABarrier) {
  HostRuntime rt(4);
  std::atomic<int> phase1{0};
  std::vector<CodeletKey> seeds;
  for (std::uint64_t i = 0; i < 64; ++i) seeds.push_back({0, i});
  rt.run_phase(seeds, PoolPolicy::kFifo,
               [&](CodeletKey, unsigned, Pusher&) { phase1.fetch_add(1); });
  // After run_phase returns, every phase-1 codelet has completed.
  EXPECT_EQ(phase1.load(), 64);
  rt.run_phase(seeds, PoolPolicy::kFifo, [&](CodeletKey, unsigned, Pusher&) {
    EXPECT_EQ(phase1.load(), 64);
  });
}

TEST(HostRuntime, WorkerIndexInRange) {
  const unsigned workers = 3;
  HostRuntime rt(workers);
  std::vector<CodeletKey> seeds;
  for (std::uint64_t i = 0; i < 200; ++i) seeds.push_back({0, i});
  std::atomic<bool> ok{true};
  rt.run_phase(seeds, PoolPolicy::kFifo, [&](CodeletKey, unsigned w, Pusher&) {
    if (w >= workers) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

TEST(HostRuntime, ExceptionPropagates) {
  HostRuntime rt(2);
  std::vector<CodeletKey> seeds;
  for (std::uint64_t i = 0; i < 10; ++i) seeds.push_back({0, i});
  EXPECT_THROW(rt.run_phase(seeds, PoolPolicy::kFifo,
                            [&](CodeletKey c, unsigned, Pusher&) {
                              if (c.index == 5) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(HostRuntime, CounterGatedDataflowRunsAllStages) {
  // 8 producers -> shared counter -> 8 consumers, with real threads.
  HostRuntime rt(4);
  const std::array<std::uint64_t, 2> groups{0, 1};
  const std::array<std::uint32_t, 2> thresholds{1, 8};
  DependencyCounters counters(groups, thresholds);
  std::atomic<int> produced{0}, consumed{0};
  std::vector<CodeletKey> seeds;
  for (std::uint64_t i = 0; i < 8; ++i) seeds.push_back({0, i});
  rt.run_phase(seeds, PoolPolicy::kLifo, [&](CodeletKey c, unsigned, Pusher& push) {
    if (c.stage == 0) {
      produced.fetch_add(1);
      if (counters.arrive(1, 0))
        for (std::uint64_t i = 0; i < 8; ++i) push.push({1, i});
    } else {
      // Dataflow firing rule: consumers must observe all producers done.
      EXPECT_EQ(produced.load(), 8);
      consumed.fetch_add(1);
    }
  });
  EXPECT_EQ(consumed.load(), 8);
}

}  // namespace
}  // namespace c64fft::codelet
