#include "c64/engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

namespace c64fft::c64 {
namespace {

// Minimal program: a fixed list of identical independent tasks.
class ListProgram : public SimProgram {
 public:
  ListProgram(std::vector<TaskSpec> tasks) : tasks_(std::move(tasks)) {}

  PopResult next_task(unsigned, std::uint64_t, TaskSpec& out, std::uint64_t&) override {
    if (next_ >= tasks_.size())
      return done_ == tasks_.size() ? PopResult::kFinished : PopResult::kIdle;
    out = tasks_[next_++];
    return PopResult::kTask;
  }
  void task_done(unsigned, std::uint64_t id, std::uint64_t now) override {
    ++done_;
    completion_order.push_back(id);
    completion_time[id] = now;
    last_completion = now;
  }
  bool finished() const override { return done_ == tasks_.size(); }

  std::vector<std::uint64_t> completion_order;
  std::map<std::uint64_t, std::uint64_t> completion_time;
  std::uint64_t last_completion = 0;

 private:
  std::vector<TaskSpec> tasks_;
  std::size_t next_ = 0;
  std::size_t done_ = 0;
};

ChipConfig tiny_config(unsigned tus) {
  ChipConfig cfg;
  cfg.thread_units = tus;
  cfg.dram_latency = 10;
  cfg.issue_cycles = 1;
  cfg.max_outstanding = 2;
  cfg.hol_window = 1;
  return cfg;
}

TaskSpec compute_only(std::uint64_t id, std::uint64_t cycles) {
  TaskSpec t;
  t.task_id = id;
  t.compute_cycles = cycles;
  return t;
}

TEST(SimEngine, RejectsBadConfig) {
  ChipConfig cfg = tiny_config(0);
  ListProgram p({});
  EXPECT_THROW(SimEngine(cfg, p), std::invalid_argument);
  cfg = tiny_config(1);
  cfg.hol_window = 0;
  EXPECT_THROW(SimEngine(cfg, p), std::invalid_argument);
  cfg = tiny_config(1);
  cfg.max_outstanding = 0;
  EXPECT_THROW(SimEngine(cfg, p), std::invalid_argument);
}

TEST(SimEngine, EmptyProgramFinishesAtTimeZero) {
  const ChipConfig cfg = tiny_config(4);
  ListProgram p({});
  const SimResult r = SimEngine(cfg, p).run();
  EXPECT_EQ(r.cycles, 0u);
  EXPECT_EQ(r.tasks_completed, 0u);
}

TEST(SimEngine, SingleComputeTaskTakesItsCycles) {
  const ChipConfig cfg = tiny_config(1);
  ListProgram p({compute_only(0, 500)});
  const SimResult r = SimEngine(cfg, p).run();
  EXPECT_EQ(r.cycles, 500u);
  EXPECT_EQ(r.tasks_completed, 1u);
  EXPECT_EQ(r.tu_busy_cycles, 500u);
}

TEST(SimEngine, StartAndFinishOverheadsAreCharged) {
  const ChipConfig cfg = tiny_config(1);
  TaskSpec t = compute_only(0, 100);
  t.start_overhead_cycles = 30;
  t.finish_overhead_cycles = 20;
  ListProgram p({t});
  const SimResult r = SimEngine(cfg, p).run();
  EXPECT_EQ(r.cycles, 150u);
}

TEST(SimEngine, ComputeTasksRunInParallelAcrossTus) {
  const ChipConfig cfg = tiny_config(4);
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back(compute_only(i, 100));
  ListProgram p(std::move(tasks));
  const SimResult r = SimEngine(cfg, p).run();
  // 8 tasks on 4 TUs, 100 cycles each -> 2 waves.
  EXPECT_EQ(r.cycles, 200u);
}

TEST(SimEngine, SingleLoadLatency) {
  const ChipConfig cfg = tiny_config(1);
  TaskSpec t;
  t.task_id = 0;
  t.requests.push_back({0, 0, 16});
  t.first_store = 1;
  ListProgram p({t});
  const SimResult r = SimEngine(cfg, p).run();
  // issue (1) + service ceil(16/8)=2 + latency 10.
  EXPECT_EQ(r.cycles, 1u + 2u + 10u);
  EXPECT_EQ(r.requests, 1u);
  EXPECT_EQ(r.bytes, 16u);
  EXPECT_EQ(r.bank_busy_cycles[0], 2u);
}

TEST(SimEngine, PreIssueCyclesDelayTheRequest) {
  const ChipConfig cfg = tiny_config(1);
  TaskSpec t;
  t.requests.push_back({0, 25, 16});
  t.first_store = 1;
  ListProgram p({t});
  const SimResult r = SimEngine(cfg, p).run();
  EXPECT_EQ(r.cycles, 26u + 2u + 10u);
}

TEST(SimEngine, StoresHappenAfterCompute) {
  const ChipConfig cfg = tiny_config(1);
  TaskSpec t;
  t.compute_cycles = 100;
  t.requests.push_back({0, 0, 16});  // load
  t.requests.push_back({1, 0, 16});  // store
  t.first_store = 1;
  ListProgram p({t});
  const SimResult r = SimEngine(cfg, p).run();
  // load: 1+2+10 = 13; compute: 100; store: 1+2+10 = 13.
  EXPECT_EQ(r.cycles, 126u);
}

TEST(SimEngine, BankContentionSerialises) {
  // Two TUs each load 64 B from bank 0: services serialise (8 cycles
  // each), so the second completes ~8 cycles after the first.
  const ChipConfig cfg = tiny_config(2);
  TaskSpec t;
  t.requests.push_back({0, 0, 64});
  t.first_store = 1;
  ListProgram p({t, t});
  const SimResult r = SimEngine(cfg, p).run();
  EXPECT_EQ(r.bank_busy_cycles[0], 16u);
  EXPECT_EQ(r.cycles, 1u + 16u + 10u);
}

TEST(SimEngine, DistinctBanksProceedInParallel) {
  const ChipConfig cfg = tiny_config(2);
  TaskSpec a, b;
  a.requests.push_back({0, 0, 64});
  a.first_store = 1;
  b.requests.push_back({1, 0, 64});
  b.first_store = 1;
  ListProgram p({a, b});
  const SimResult r = SimEngine(cfg, p).run();
  EXPECT_EQ(r.cycles, 1u + 8u + 10u);
}

TEST(SimEngine, SaturatedBankStarvesOtherBanksThroughAdmission) {
  // TU0 and TU1 fill bank 0's controller slots (depth 2); TU2's bank-0
  // request is stuck at the admission head, and TU3's request behind it
  // targets the idle bank 1 but cannot be admitted either. With a
  // lookahead window it proceeds at once.
  ChipConfig cfg = tiny_config(4);
  cfg.bank_queue_depth = 2;
  TaskSpec big0;  // 128-cycle service on bank 0
  big0.task_id = 10;
  big0.requests.push_back({0, 0, 1024});
  big0.first_store = 1;
  TaskSpec big1 = big0, big2 = big0;
  big1.task_id = 11;
  big2.task_id = 12;
  TaskSpec other;  // tiny request for the idle bank 1
  other.task_id = 42;
  other.requests.push_back({1, 0, 16});
  other.first_store = 1;

  ListProgram strict_prog({big0, big1, big2, other});
  const SimResult strict = SimEngine(cfg, strict_prog).run();
  // Admission blocked: the bank-1 task completes only after a bank-0
  // slot frees (cycle ~129), despite bank 1 being idle the whole time.
  EXPECT_GT(strict_prog.completion_time.at(42), 120u);

  ChipConfig wide = cfg;
  wide.hol_window = 8;
  ListProgram open_prog({big0, big1, big2, other});
  const SimResult open = SimEngine(wide, open_prog).run();
  EXPECT_LT(open_prog.completion_time.at(42), 30u);
  EXPECT_EQ(open_prog.completion_order.front(), 42u);
  EXPECT_EQ(open.bank_busy_cycles[1], strict.bank_busy_cycles[1]);
  EXPECT_EQ(open.cycles, strict.cycles);  // makespan set by bank 0 anyway
}

TEST(SimEngine, BankQueueDepthAllowsBackToBackService) {
  // Depth 2 lets a second request queue behind the first on the same
  // bank: the bank never idles between them.
  ChipConfig cfg = tiny_config(2);
  cfg.bank_queue_depth = 2;
  TaskSpec t;
  t.requests.push_back({0, 0, 64});
  t.first_store = 1;
  ListProgram p({t, t});
  const SimResult r = SimEngine(cfg, p).run();
  EXPECT_EQ(r.bank_busy_cycles[0], 16u);
  // Both admitted at ~1; second served [9,17), done 17+10.
  EXPECT_EQ(r.cycles, 27u);
}

TEST(SimEngine, MaxOutstandingThrottlesIssue) {
  // 8 loads of 16 B from 8 distinct... 4 banks round robin; with
  // outstanding=1 the TU serialises latency; with 8 it pipelines.
  ChipConfig cfg = tiny_config(1);
  cfg.hol_window = 8;
  cfg.max_outstanding = 1;
  TaskSpec t;
  for (int i = 0; i < 8; ++i)
    t.requests.push_back({static_cast<std::uint16_t>(i % 4), 0, 16});
  t.first_store = 8;
  ListProgram p({t});
  const SimResult serial = SimEngine(cfg, p).run();

  cfg.max_outstanding = 8;
  ListProgram p2({t});
  const SimResult pipelined = SimEngine(cfg, p2).run();
  EXPECT_LT(pipelined.cycles, serial.cycles);
  // Serial: every load pays full latency: 8 * (1 + 2 + 10) = 104.
  EXPECT_EQ(serial.cycles, 104u);
}

TEST(SimEngine, TraceRecordsElementAccesses) {
  const ChipConfig cfg = tiny_config(1);
  TaskSpec t;
  t.requests.push_back({2, 0, 64});  // 4 elements on bank 2
  t.first_store = 1;
  ListProgram p({t});
  BankTrace trace(4, 1000);
  SimEngine(cfg, p, &trace).run();
  const auto totals = trace.totals();
  EXPECT_EQ(totals[2], 4u);
  EXPECT_EQ(totals[0], 0u);
}

TEST(SimEngine, DeterministicAcrossRuns) {
  const ChipConfig cfg = tiny_config(3);
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 20; ++i) {
    TaskSpec t;
    t.task_id = i;
    t.compute_cycles = 10 + i;
    t.requests.push_back({static_cast<std::uint16_t>(i % 4), 0, 32});
    t.requests.push_back({static_cast<std::uint16_t>((i + 1) % 4), 0, 16});
    t.first_store = 1;
    tasks.push_back(t);
  }
  ListProgram p1(tasks), p2(tasks);
  const SimResult a = SimEngine(cfg, p1).run();
  const SimResult b = SimEngine(cfg, p2).run();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(p1.completion_order, p2.completion_order);
}

// A program that claims work remains but never provides any: deadlock.
class DeadlockProgram : public SimProgram {
 public:
  PopResult next_task(unsigned, std::uint64_t, TaskSpec&, std::uint64_t&) override {
    return PopResult::kIdle;
  }
  void task_done(unsigned, std::uint64_t, std::uint64_t) override {}
  bool finished() const override { return false; }
};

TEST(SimEngine, DeadlockDetected) {
  const ChipConfig cfg = tiny_config(2);
  DeadlockProgram p;
  EXPECT_THROW(SimEngine(cfg, p).run(), std::runtime_error);
}

TEST(SimEngine, WaitResultRetriesAtGivenTime) {
  // Program: one task that only becomes available at cycle 1000.
  class WaitProgram : public SimProgram {
   public:
    PopResult next_task(unsigned, std::uint64_t now, TaskSpec& out,
                        std::uint64_t& wake_at) override {
      if (issued_) return done_ ? PopResult::kFinished : PopResult::kIdle;
      if (now < 1000) {
        wake_at = 1000;
        return PopResult::kWait;
      }
      out.task_id = 1;
      out.compute_cycles = 50;
      issued_ = true;
      return PopResult::kTask;
    }
    void task_done(unsigned, std::uint64_t, std::uint64_t) override { done_ = true; }
    bool finished() const override { return done_; }
    bool issued_ = false;
    bool done_ = false;
  };
  const ChipConfig cfg = tiny_config(1);
  WaitProgram p;
  const SimResult r = SimEngine(cfg, p).run();
  EXPECT_EQ(r.cycles, 1050u);
}

TEST(SimEngine, BankUtilisationComputed) {
  const ChipConfig cfg = tiny_config(1);
  TaskSpec t;
  t.requests.push_back({0, 0, 800});  // 100 cycles of service
  t.first_store = 1;
  ListProgram p({t});
  const SimResult r = SimEngine(cfg, p).run();
  const auto util = r.bank_utilisation();
  ASSERT_EQ(util.size(), 4u);
  EXPECT_NEAR(util[0], 100.0 / static_cast<double>(r.cycles), 1e-12);
  EXPECT_DOUBLE_EQ(util[1], 0.0);
}

}  // namespace
}  // namespace c64fft::c64
