#include "util/json.hpp"

#include <gtest/gtest.h>

namespace c64fft::util {
namespace {

TEST(Json, Scalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_EQ(json_parse("true").as_bool(), true);
  EXPECT_EQ(json_parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(json_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json_parse("-3.5").as_number(), -3.5);
  EXPECT_DOUBLE_EQ(json_parse("1.25e3").as_number(), 1250.0);
  EXPECT_DOUBLE_EQ(json_parse("2E-2").as_number(), 0.02);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(json_parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(json_parse(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(json_parse(R"("€")").as_string(), "\xe2\x82\xac");
}

TEST(Json, ArraysAndNesting) {
  const JsonValue v = json_parse("[1, [2, 3], {\"k\": 4}, \"x\"]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.items().size(), 4u);
  EXPECT_DOUBLE_EQ(v.items()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v.items()[1].items()[1].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(v.items()[2].at("k").as_number(), 4.0);
  EXPECT_EQ(v.items()[3].as_string(), "x");
}

TEST(Json, ObjectsPreserveOrderAndLookUp) {
  const JsonValue v = json_parse(R"({"b": 1, "a": 2, "c": {"d": [true]}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");  // insertion order kept
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 2.0);
  EXPECT_TRUE(v.at("c").at("d").items()[0].as_bool());
  EXPECT_EQ(v.find("zzz"), nullptr);
  EXPECT_THROW(v.at("zzz"), JsonParseError);
}

TEST(Json, EmptyContainersAndWhitespace) {
  EXPECT_TRUE(json_parse(" \n\t{ } ").members().empty());
  EXPECT_TRUE(json_parse("[\r\n]").items().empty());
}

TEST(Json, GoogleBenchmarkShape) {
  // The exact document shape bench_check consumes.
  const JsonValue v = json_parse(R"({
    "context": {"date": "2026-08-05T00:00:00", "num_cpus": 1},
    "benchmarks": [
      {"name": "BM_RunCodelet/6", "run_type": "iteration",
       "iterations": 1000, "real_time": 1.5e3, "cpu_time": 1.4e3,
       "time_unit": "ns", "items_per_second": 4.5e7}
    ]
  })");
  const JsonValue& b = v.at("benchmarks").items()[0];
  EXPECT_EQ(b.at("name").as_string(), "BM_RunCodelet/6");
  EXPECT_DOUBLE_EQ(b.at("cpu_time").as_number(), 1400.0);
  EXPECT_DOUBLE_EQ(b.at("items_per_second").as_number(), 4.5e7);
}

TEST(Json, MalformedInputThrowsWithPosition) {
  EXPECT_THROW(json_parse(""), JsonParseError);
  EXPECT_THROW(json_parse("{"), JsonParseError);
  EXPECT_THROW(json_parse("[1,]"), JsonParseError);
  EXPECT_THROW(json_parse("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW(json_parse("tru"), JsonParseError);
  EXPECT_THROW(json_parse("1 2"), JsonParseError);
  EXPECT_THROW(json_parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(json_parse("01x"), JsonParseError);
  try {
    json_parse("{\n  \"a\": !\n}");
    FAIL();
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Json, TypeMismatchThrows) {
  const JsonValue v = json_parse("[1]");
  EXPECT_THROW(v.as_number(), JsonParseError);
  EXPECT_THROW(v.as_string(), JsonParseError);
  EXPECT_THROW(v.members(), JsonParseError);
  EXPECT_THROW(v.items()[0].items(), JsonParseError);
}

TEST(Json, ParseFileMissingThrows) {
  EXPECT_THROW(json_parse_file("/nonexistent/bench.json"), std::runtime_error);
}

}  // namespace
}  // namespace c64fft::util
