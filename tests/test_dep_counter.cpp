#include "codelet/dep_counter.hpp"

#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

namespace c64fft::codelet {
namespace {

TEST(DependencyCounters, RejectsBadArgs) {
  const std::array<std::uint64_t, 2> groups{4, 4};
  const std::array<std::uint32_t, 1> thresholds{2};
  EXPECT_THROW(DependencyCounters(groups, thresholds), std::invalid_argument);
  const std::array<std::uint32_t, 2> zero{2, 0};
  EXPECT_THROW(DependencyCounters(groups, zero), std::invalid_argument);
}

TEST(DependencyCounters, ArriveFiresExactlyOnce) {
  const std::array<std::uint64_t, 1> groups{1};
  DependencyCounters c(groups, 3u);
  EXPECT_FALSE(c.arrive(0, 0));
  EXPECT_FALSE(c.arrive(0, 0));
  EXPECT_TRUE(c.arrive(0, 0));
  EXPECT_THROW(c.arrive(0, 0), std::logic_error);
}

TEST(DependencyCounters, PerStageThresholds) {
  const std::array<std::uint64_t, 3> groups{0, 2, 1};
  const std::array<std::uint32_t, 3> thresholds{1, 2, 3};
  DependencyCounters c(groups, thresholds);
  EXPECT_EQ(c.threshold(1), 2u);
  EXPECT_EQ(c.threshold(2), 3u);
  EXPECT_FALSE(c.arrive(1, 0));
  EXPECT_TRUE(c.arrive(1, 0));
  EXPECT_FALSE(c.arrive(2, 0));
  EXPECT_FALSE(c.arrive(2, 0));
  EXPECT_TRUE(c.arrive(2, 0));
}

TEST(DependencyCounters, IndependentGroups) {
  const std::array<std::uint64_t, 1> groups{3};
  DependencyCounters c(groups, 2u);
  EXPECT_FALSE(c.arrive(0, 0));
  EXPECT_FALSE(c.arrive(0, 1));
  EXPECT_TRUE(c.arrive(0, 1));
  EXPECT_EQ(c.value(0, 0), 1u);
  EXPECT_EQ(c.value(0, 2), 0u);
}

TEST(DependencyCounters, OutOfRangeThrows) {
  const std::array<std::uint64_t, 2> groups{2, 0};
  DependencyCounters c(groups, 1u);
  EXPECT_THROW(c.arrive(2, 0), std::out_of_range);
  EXPECT_THROW(c.arrive(0, 2), std::out_of_range);
  EXPECT_THROW(c.arrive(1, 0), std::out_of_range);
}

TEST(DependencyCounters, ResetZeroesEverything) {
  const std::array<std::uint64_t, 1> groups{2};
  DependencyCounters c(groups, 2u);
  c.arrive(0, 0);
  c.reset();
  EXPECT_EQ(c.value(0, 0), 0u);
  EXPECT_FALSE(c.arrive(0, 0));
  EXPECT_TRUE(c.arrive(0, 0));
}

TEST(DependencyCounters, ConcurrentArrivalsFireExactlyOnce) {
  // 64 producers per group (the paper's threshold), 4 threads arriving
  // concurrently: exactly one arrival must report readiness per group.
  const std::array<std::uint64_t, 1> groups{8};
  DependencyCounters c(groups, 64u);
  std::atomic<int> fired[8] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t g = 0; g < 8; ++g)
        for (int k = 0; k < 16; ++k)  // 4 threads * 16 = 64 arrivals
          if (c.arrive(0, g)) fired[g].fetch_add(1);
      (void)t;
    });
  }
  for (auto& th : threads) th.join();
  for (int g = 0; g < 8; ++g) EXPECT_EQ(fired[g].load(), 1) << g;
}

}  // namespace
}  // namespace c64fft::codelet
