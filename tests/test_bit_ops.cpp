#include "util/bit_ops.hpp"

#include <gtest/gtest.h>

namespace c64fft::util {
namespace {

TEST(BitOps, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
  EXPECT_FALSE(is_pow2(6));
}

TEST(BitOps, Ilog2Exact) {
  for (unsigned b = 0; b < 64; ++b) EXPECT_EQ(ilog2(1ULL << b), b) << b;
}

TEST(BitOps, Ilog2Floor) {
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(5), 2u);
  EXPECT_EQ(ilog2(1023), 9u);
  EXPECT_EQ(ilog2(1025), 10u);
}

TEST(BitOps, Ilog2Ceil) {
  EXPECT_EQ(ilog2_ceil(1), 0u);
  EXPECT_EQ(ilog2_ceil(2), 1u);
  EXPECT_EQ(ilog2_ceil(3), 2u);
  EXPECT_EQ(ilog2_ceil(4), 2u);
  EXPECT_EQ(ilog2_ceil(5), 3u);
  EXPECT_EQ(ilog2_ceil(1ULL << 40), 40u);
}

TEST(BitOps, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(BitOps, BitReverse64KnownValues) {
  EXPECT_EQ(bit_reverse64(0), 0u);
  EXPECT_EQ(bit_reverse64(1), 1ULL << 63);
  EXPECT_EQ(bit_reverse64(0xFFFFFFFFFFFFFFFFULL), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(bit_reverse64(0x8000000000000000ULL), 1u);
}

TEST(BitOps, BitReverseWidth) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
  EXPECT_EQ(bit_reverse(0, 0), 0u);
  EXPECT_EQ(bit_reverse(0b1011, 4), 0b1101u);
}

TEST(BitOps, BitReverseIsInvolution) {
  for (unsigned bits : {1u, 4u, 9u, 15u, 22u}) {
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    for (std::uint64_t x = 0; x <= mask; x += std::max<std::uint64_t>(1, mask / 257))
      EXPECT_EQ(bit_reverse(bit_reverse(x, bits), bits), x) << bits << " " << x;
  }
}

TEST(BitOps, BitReverseIsBijectionSmall) {
  const unsigned bits = 10;
  std::vector<bool> seen(1 << bits, false);
  for (std::uint64_t x = 0; x < (1u << bits); ++x) {
    const auto y = bit_reverse(x, bits);
    ASSERT_LT(y, seen.size());
    EXPECT_FALSE(seen[y]);
    seen[y] = true;
  }
}

TEST(BitOps, Ipow) {
  EXPECT_EQ(ipow(2, 0), 1u);
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(64, 3), 262144u);
  EXPECT_EQ(ipow(3, 4), 81u);
}

TEST(BitOps, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(22, 6), 4u);  // the paper's stage count at N=2^22
}

}  // namespace
}  // namespace c64fft::util
