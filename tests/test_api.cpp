#include "fft/api.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "fft/reference.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

TEST(Api, ForwardMatchesReference) {
  auto data = random_signal(1ULL << 12, 1);
  auto want = data;
  fft_serial_inplace(want);
  forward(data);
  EXPECT_LT(max_abs_error(data, want), 1e-9);
}

TEST(Api, TinySizesClampRadix) {
  // Sizes below 64 transparently use a narrower radix.
  for (std::uint64_t n : {2ULL, 4ULL, 16ULL, 32ULL}) {
    auto data = random_signal(n, n);
    auto want = data;
    fft_serial_inplace(want);
    forward(data);
    EXPECT_LT(max_abs_error(data, want), 1e-10) << n;
  }
}

TEST(Api, RejectsBadSizes) {
  // Arbitrary N >= 2 is accepted (composite sizes run the mixed-radix or
  // Bluestein plan); only the degenerate sizes still throw.
  std::vector<cplx> one(1);
  EXPECT_THROW(forward(one), std::invalid_argument);
  std::vector<cplx> empty;
  EXPECT_THROW(forward(empty), std::invalid_argument);
}

TEST(Api, CompositeSizesRoundTrip) {
  for (std::uint64_t n : {10ULL, 100ULL, 360ULL, 101ULL}) {
    const auto input = random_signal(n, 17);
    auto data = input;
    forward(data);
    inverse(data);
    EXPECT_LT(max_abs_error(data, input), 1e-9) << "n=" << n;
  }
}

TEST(Api, RoundTripAllVariants) {
  const auto input = random_signal(1ULL << 12, 5);
  for (Variant v : {Variant::kCoarse, Variant::kFine, Variant::kGuided}) {
    auto data = input;
    forward(data, {}, v);
    inverse(data, {}, v);
    EXPECT_LT(max_abs_error(data, input), 1e-10) << to_string(v);
  }
}

TEST(Api, OutOfPlaceFormsLeaveInputIntact) {
  const auto input = random_signal(256, 8);
  const auto copy = input;
  const auto spec = forward_copy(input);
  EXPECT_EQ(max_abs_error(input, copy), 0.0);
  const auto back = inverse_copy(spec);
  EXPECT_LT(max_abs_error(back, input), 1e-10);
}

TEST(Api, PowerSpectrumFindsTone) {
  // 440-bin tone in a 4096-sample window.
  const std::size_t n = 4096, tone = 440;
  std::vector<double> signal(n);
  for (std::size_t i = 0; i < n; ++i)
    signal[i] = std::sin(2.0 * std::numbers::pi * tone * i / static_cast<double>(n));
  const auto spec = power_spectrum(signal);
  ASSERT_EQ(spec.size(), n / 2 + 1);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < spec.size(); ++k)
    if (spec[k] > spec[peak]) peak = k;
  EXPECT_EQ(peak, tone);
}

TEST(Api, PowerSpectrumPadsToPow2) {
  std::vector<double> signal(1000, 1.0);
  const auto spec = power_spectrum(signal);
  EXPECT_EQ(spec.size(), 1024 / 2 + 1);
  EXPECT_TRUE(power_spectrum({}).empty());
}

TEST(Api, CircularConvolutionMatchesDirect) {
  const std::size_t n = 64;
  const auto a = random_signal(n, 2);
  const auto b = random_signal(n, 3);
  // Direct O(n^2) circular convolution.
  std::vector<cplx> want(n, cplx{0, 0});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) want[(i + j) % n] += a[i] * b[j];
  const auto got = circular_convolve(a, b);
  EXPECT_LT(max_abs_error(got, want), 1e-9);
}

TEST(Api, ConvolutionRejectsMismatch) {
  EXPECT_THROW(circular_convolve(std::vector<cplx>(8), std::vector<cplx>(16)),
               std::invalid_argument);
}

TEST(Api, ConvolutionWithDeltaIsIdentity) {
  const auto a = random_signal(128, 4);
  std::vector<cplx> delta(128, cplx{0, 0});
  delta[0] = cplx(1, 0);
  const auto got = circular_convolve(a, delta);
  EXPECT_LT(max_abs_error(got, a), 1e-10);
}

}  // namespace
}  // namespace c64fft::fft
