// End-to-end checks tying the layers together: the simulated machine and
// the host runtime agree on the workload shape, and the paper's headline
// qualitative results hold on the default calibration (the quantitative
// reproduction lives in bench/ and EXPERIMENTS.md).

#include <gtest/gtest.h>

#include "c64/peak_model.hpp"
#include "fft/api.hpp"
#include "fft/reference.hpp"
#include "simfft/experiment.hpp"
#include "util/prng.hpp"

namespace c64fft {
namespace {

c64::ChipConfig paper_chip() { return c64::ChipConfig{}; }  // 156 TUs etc.

TEST(Integration, SimTrafficMatchesAnalyticByteCount) {
  // Off-chip bytes = tasks * (2R + twiddles) * 16, summed over stages.
  const std::uint64_t n = 1ULL << 15;
  const fft::FftPlan plan(n, 6);
  std::uint64_t expect = 0;
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s)
    expect += plan.tasks_per_stage() *
              (2 * plan.radix() + plan.twiddles_per_task(s)) * 16;
  auto cfg = paper_chip();
  cfg.thread_units = 32;
  const auto run = simfft::run_fft_sim(simfft::SimVariant::kCoarse, n, cfg);
  EXPECT_EQ(run.sim.bytes, expect);
}

TEST(Integration, NoSimulatedRunBeatsTheTheoreticalPeak) {
  c64::PeakModel peak;
  const std::uint64_t n = 1ULL << 15;
  auto cfg = paper_chip();
  for (const auto& row : simfft::run_all_variants(n, cfg))
    EXPECT_LE(row.gflops, peak.peak_gflops(n, 64) * 1.0001) << row.name;
}

TEST(Integration, PaperObservationOne) {
  // Observation 1 (Section V-C): fine best, fine hash and fine guided
  // outperform coarse, coarse hash and fine worst.
  const std::uint64_t n = 1ULL << 15;
  const auto rows = simfft::run_all_variants(n, paper_chip());
  auto cycles = [&](simfft::SimVariant v) {
    return rows[static_cast<int>(v)].sim.cycles;
  };
  using SV = simfft::SimVariant;
  for (SV fast : {SV::kFineBest, SV::kFineHash, SV::kFineGuided})
    for (SV slow : {SV::kCoarse, SV::kCoarseHash, SV::kFineWorst})
      EXPECT_LT(cycles(fast), cycles(slow))
          << simfft::to_string(fast) << " vs " << simfft::to_string(slow);
}

TEST(Integration, PaperObservationTwoFineBestLeadsItsCluster) {
  // The paper reports fine best as the single fastest version; in our
  // reproduction fine best and fine hash are within a fraction of a
  // percent of each other (the paper itself calls them "close"), so we
  // assert fine best is within 2% of the overall winner and strictly
  // ahead of every slow-cluster version.
  const std::uint64_t n = 1ULL << 15;
  const auto rows = simfft::run_all_variants(n, paper_chip());
  const auto best_cycles =
      rows[static_cast<int>(simfft::SimVariant::kFineBest)].sim.cycles;
  std::uint64_t overall = best_cycles;
  for (const auto& row : rows) overall = std::min(overall, row.sim.cycles);
  EXPECT_LT(static_cast<double>(best_cycles),
            static_cast<double>(overall) * 1.02);
}

TEST(Integration, GuidedBeatsCoarseSubstantially) {
  // The paper's headline is ~46% at N=2^15; our model reproduces the win
  // at a smaller magnitude (see EXPERIMENTS.md for the analysis of why a
  // work-conserving bandwidth model bounds the reachable gap). Assert a
  // solid double-digit-percent advantage.
  const std::uint64_t n = 1ULL << 15;
  const auto guided =
      simfft::run_fft_sim(simfft::SimVariant::kFineGuided, n, paper_chip());
  const auto coarse = simfft::run_fft_sim(simfft::SimVariant::kCoarse, n, paper_chip());
  EXPECT_GT(guided.gflops / coarse.gflops, 1.10);
}

TEST(Integration, HostAndSimAgreeOnTaskCounts) {
  const std::uint64_t n = 1ULL << 12;
  // Host: run the fine FFT for real and count codelets via the runtime.
  auto data = std::vector<fft::cplx>(n, fft::cplx{1.0, 0.0});
  fft::forward(data);  // functional check happens in test_variants
  // Sim: the engine's completed-task count for the same plan.
  auto cfg = paper_chip();
  cfg.thread_units = 8;
  const auto run = simfft::run_fft_sim(simfft::SimVariant::kFineBest, n, cfg);
  const fft::FftPlan plan(n, 6);
  EXPECT_EQ(run.sim.tasks_completed, plan.total_tasks());
}

TEST(Integration, FunctionalSimulatorProperty) {
  // "Functionally-accurate": the variant the simulator times is the same
  // code path the host executes — verify the host fine FFT against the
  // naive DFT at a nontrivial size.
  const std::uint64_t n = 1ULL << 10;
  util::Xoshiro256 rng(2026);
  std::vector<fft::cplx> x(n);
  for (auto& v : x) v = fft::cplx(rng.next_double() - 0.5, rng.next_double() - 0.5);
  const auto want = fft::dft_reference(x);
  fft::forward(x);
  EXPECT_LT(fft::rel_l2_error(x, want), 1e-10);
}

}  // namespace
}  // namespace c64fft
