#include "fft/mixed_radix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <numbers>
#include <numeric>
#include <vector>

#include "fft/api.hpp"
#include "fft/executor.hpp"
#include "fft/reference.hpp"
#include "util/bit_ops.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

std::vector<cplx32> random_signal32(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx32> v(n);
  for (auto& x : v)
    x = cplx32(static_cast<float>(rng.next_double() * 2 - 1),
               static_cast<float>(rng.next_double() * 2 - 1));
  return v;
}

/// Single DFT bin computed in double regardless of input precision:
/// X[k] = sum_j x[j] exp(-2 pi i j k / N). O(N) per bin, so usable at
/// sizes where the full O(N^2) dft_reference is out of reach.
template <typename C>
cplx dft_bin(std::span<const C> x, std::uint64_t k) {
  const std::uint64_t n = x.size();
  cplx acc{0.0, 0.0};
  for (std::uint64_t j = 0; j < n; ++j) {
    // Reduce j*k mod n before the trig so the angle stays well below the
    // range where sin/cos argument reduction loses digits.
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>((j * k) % n) /
        static_cast<double>(n);
    const cplx xj(static_cast<double>(x[j].real()),
                  static_cast<double>(x[j].imag()));
    acc += xj * cplx(std::cos(angle), std::sin(angle));
  }
  return acc;
}

// ---------------------------------------------------------------------------
// factorize / digest
// ---------------------------------------------------------------------------

TEST(Factorize, ProductRecoversSmoothSizes) {
  for (std::uint64_t n : {2ULL, 3ULL, 5ULL, 6ULL, 7ULL, 12ULL, 15ULL, 60ULL,
                          120ULL, 360ULL, 1000ULL, 46305ULL, 1000000ULL}) {
    const Factorization f = factorize(n);
    EXPECT_TRUE(f.smooth) << n;
    EXPECT_EQ(f.residue, 1u) << n;
    std::uint64_t prod = 1;
    for (std::uint32_t r : f.factors) {
      EXPECT_TRUE(r == 2 || r == 3 || r == 4 || r == 5 || r == 7 || r == 8)
          << n << " radix " << r;
      prod *= r;
    }
    EXPECT_EQ(prod, n) << n;
  }
}

TEST(Factorize, NonSmoothSizesReportResidue) {
  for (std::uint64_t n : {11ULL, 13ULL, 101ULL, 46349ULL, 2ULL * 46349ULL}) {
    const Factorization f = factorize(n);
    EXPECT_FALSE(f.smooth) << n;
    EXPECT_GT(f.residue, 1u) << n;
    std::uint64_t prod = f.residue;
    for (std::uint32_t r : f.factors) prod *= r;
    EXPECT_EQ(prod, n) << n;
    EXPECT_EQ(factorization_digest(f), 0u) << n;
  }
}

TEST(Factorize, MillionIsFiveSixTwoSix) {
  // 10^6 = 2^6 * 5^6: the planner's wide-radix preference packs the pow2
  // part as two radix-8 stages.
  const Factorization f = factorize(1000000);
  ASSERT_TRUE(f.smooth);
  const std::vector<std::uint32_t> want{8, 8, 5, 5, 5, 5, 5, 5};
  EXPECT_EQ(f.factors, want);
}

TEST(Factorize, DigestSeparatesDistinctExponentVectors) {
  // 12 = 2^2*3 vs 18 = 2*3^2 vs 2048 = 2^11: all distinct digests, and a
  // digest is stable across the two orderings factorize can't even emit.
  const auto d12 = factorization_digest(factorize(12));
  const auto d18 = factorization_digest(factorize(18));
  const auto d2048 = factorization_digest(factorize(2048));
  EXPECT_NE(d12, d18);
  EXPECT_NE(d12, d2048);
  EXPECT_NE(d18, d2048);
  EXPECT_NE(d12, 0u);
}

// ---------------------------------------------------------------------------
// digit reversal
// ---------------------------------------------------------------------------

TEST(DigitReverse, MatchesBitReverseOnPow2) {
  for (unsigned bits : {1u, 4u, 7u, 10u}) {
    const std::uint64_t n = 1ULL << bits;
    const std::vector<std::uint32_t> factors(bits, 2u);
    for (std::uint64_t p = 0; p < n; ++p)
      EXPECT_EQ(digit_reverse(p, factors), util::bit_reverse(p, bits))
          << "bits=" << bits << " p=" << p;
  }
}

TEST(DigitReverse, ReversedFactorsInvertThePermutation) {
  // Digit reversal is NOT an involution for non-palindromic factor lists;
  // the inverse permutation is digit reversal over the reversed factors.
  const std::vector<std::vector<std::uint32_t>> cases{
      {3, 2, 2, 2},        // 3 * 2^3 = 24
      {5, 3, 2, 2, 2, 2},  // 5 * 3 * 2^4 = 240
      {8, 5, 3},           // 120
      {7, 4, 3, 2},        // 168
  };
  for (const auto& factors : cases) {
    std::vector<std::uint32_t> reversed(factors.rbegin(), factors.rend());
    const std::uint64_t n = std::accumulate(
        factors.begin(), factors.end(), std::uint64_t{1},
        [](std::uint64_t a, std::uint32_t b) { return a * b; });
    std::vector<bool> hit(n, false);
    for (std::uint64_t p = 0; p < n; ++p) {
      const std::uint64_t q = digit_reverse(p, factors);
      ASSERT_LT(q, n);
      EXPECT_FALSE(hit[q]) << "not a permutation at p=" << p;
      hit[q] = true;
      EXPECT_EQ(digit_reverse(q, reversed), p) << "p=" << p;
    }
  }
}

TEST(DigitReverse, PlanPermutationMatchesDigitReversal) {
  for (std::uint64_t n : {24ULL, 240ULL, 360ULL, 1000ULL}) {
    const MixedRadixPlan plan(n);
    // The plan gathers working[p] = input[perm[p]]; the table must be the
    // digit reversal over the stage radices in execution order.
    const auto perm = plan.permutation();
    ASSERT_EQ(perm.size(), n);
    for (std::uint64_t p = 0; p < n; ++p)
      EXPECT_EQ(perm[p], digit_reverse(p, plan.factors())) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// serial mixed-radix transform vs the naive DFT
// ---------------------------------------------------------------------------

TEST(MixedRadixSerial, MatchesNaiveDftF64) {
  for (std::uint64_t n : {3ULL, 5ULL, 6ULL, 7ULL, 9ULL, 10ULL, 12ULL, 14ULL,
                          15ULL, 21ULL, 25ULL, 35ULL, 49ULL, 120ULL, 360ULL,
                          1000ULL}) {
    const MixedRadixPlan plan(n);
    const auto tw = mixed_radix_twiddles<double>(plan, TwiddleDirection::kForward);
    auto data = random_signal(n, n);
    const auto want = dft_reference(std::span<const cplx>(data));
    std::vector<cplx> scratch;
    mixed_radix_serial<double>(plan, tw, data, scratch,
                               TwiddleDirection::kForward);
    EXPECT_LT(max_abs_error(data, want), 1e-10 * std::sqrt(double(n))) << n;
  }
}

TEST(MixedRadixSerial, MatchesNaiveDftF32) {
  for (std::uint64_t n : {6ULL, 12ULL, 15ULL, 35ULL, 120ULL, 360ULL, 1000ULL}) {
    const MixedRadixPlan plan(n);
    const auto tw = mixed_radix_twiddles<float>(plan, TwiddleDirection::kForward);
    auto data = random_signal32(n, n);
    // f32 result judged against the f64 ground truth of the same input.
    std::vector<cplx> wide(n);
    for (std::uint64_t j = 0; j < n; ++j)
      wide[j] = cplx(data[j].real(), data[j].imag());
    const auto want = dft_reference(std::span<const cplx>(wide));
    std::vector<cplx32> scratch;
    mixed_radix_serial<float>(plan, tw, data, scratch,
                              TwiddleDirection::kForward);
    EXPECT_LT(rel_l2_error(std::span<const cplx32>(data), want), 2e-6) << n;
  }
}

TEST(MixedRadixSerial, InverseRoundTrips) {
  for (std::uint64_t n : {6ULL, 15ULL, 120ULL, 1000ULL}) {
    const MixedRadixPlan plan(n);
    const auto fwd = mixed_radix_twiddles<double>(plan, TwiddleDirection::kForward);
    const auto inv = mixed_radix_twiddles<double>(plan, TwiddleDirection::kInverse);
    const auto input = random_signal(n, 3 * n);
    auto data = input;
    std::vector<cplx> scratch;
    mixed_radix_serial<double>(plan, fwd, data, scratch,
                               TwiddleDirection::kForward);
    mixed_radix_serial<double>(plan, inv, data, scratch,
                               TwiddleDirection::kInverse);
    // The serial core is unscaled; apply the unitary 1/N here.
    for (auto& x : data) x /= static_cast<double>(n);
    EXPECT_LT(max_abs_error(data, input), 1e-10 * std::sqrt(double(n))) << n;
  }
}

// ---------------------------------------------------------------------------
// executor: acceptance sweep, both precisions
// ---------------------------------------------------------------------------

TEST(MixedRadixExecutor, AcceptanceSizesMatchNaiveDft) {
  FftExecutor ex({.workers = 2});
  for (std::uint64_t n : {6ULL, 12ULL, 15ULL, 120ULL, 1000ULL}) {
    auto data = random_signal(n, n + 7);
    const auto want = dft_reference(std::span<const cplx>(data));
    ex.forward(data);
    EXPECT_LT(max_abs_error(data, want), 1e-9) << n;
    ex.inverse(data);
    auto again = random_signal(n, n + 7);
    EXPECT_LT(max_abs_error(data, again), 1e-9) << n;
  }
  const ExecutorStats st = ex.stats();
  EXPECT_EQ(st.mixed_radix, 10u);  // 5 sizes x (forward + inverse)
  EXPECT_EQ(st.bluestein, 0u);
}

TEST(MixedRadixExecutor, AcceptanceSizesMatchNaiveDftF32) {
  FftExecutor ex({.workers = 2});
  for (std::uint64_t n : {6ULL, 12ULL, 15ULL, 120ULL, 1000ULL}) {
    auto data = random_signal32(n, n + 7);
    std::vector<cplx> wide(n);
    for (std::uint64_t j = 0; j < n; ++j)
      wide[j] = cplx(data[j].real(), data[j].imag());
    const auto want = dft_reference(std::span<const cplx>(wide));
    ex.forward(data);
    EXPECT_LT(rel_l2_error(std::span<const cplx32>(data), want), 2e-6) << n;
  }
}

TEST(MixedRadixExecutor, BatchBitIdenticalToLoopAnyWorkerCount) {
  // Stage butterflies touch disjoint indices, so the result must be
  // bit-identical across batch-vs-loop AND across worker counts.
  for (std::uint64_t n : {96ULL, 360ULL, 101ULL}) {
    constexpr std::size_t kB = 3;
    std::vector<std::vector<cplx>> loop_data, batch_data;
    for (std::size_t b = 0; b < kB; ++b)
      loop_data.push_back(random_signal(n, 100 * n + b));
    batch_data = loop_data;

    FftExecutor serial({.workers = 1});
    for (auto& v : loop_data) serial.forward(v);

    FftExecutor wide({.workers = 3});
    std::vector<std::span<cplx>> spans(batch_data.begin(), batch_data.end());
    wide.forward_batch(spans);

    for (std::size_t b = 0; b < kB; ++b)
      EXPECT_EQ(0, std::memcmp(loop_data[b].data(), batch_data[b].data(),
                               n * sizeof(cplx)))
          << "n=" << n << " b=" << b;
  }
}

// ---------------------------------------------------------------------------
// Bluestein: primes and non-smooth sizes
// ---------------------------------------------------------------------------

TEST(Bluestein, ChirpSymmetryAndUnitModulus) {
  const std::uint64_t n = 97;
  for (std::uint64_t j = 0; j < n; ++j) {
    const cplx c = bluestein_chirp<double>(n, j, TwiddleDirection::kForward);
    EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
    const cplx ci = bluestein_chirp<double>(n, j, TwiddleDirection::kInverse);
    EXPECT_NEAR(std::abs(c - std::conj(ci)), 0.0, 1e-15) << j;
  }
  EXPECT_EQ(bluestein_fft_size(97), 256u);   // next_pow2(193)
  EXPECT_EQ(bluestein_fft_size(1024), 2048u);
}

TEST(Bluestein, PrimeSweepMatchesNaiveDft) {
  FftExecutor ex({.workers = 2});
  for (std::uint64_t n : {11ULL, 13ULL, 97ULL, 101ULL, 499ULL, 997ULL}) {
    auto data = random_signal(n, 5 * n);
    const auto want = dft_reference(std::span<const cplx>(data));
    ex.forward(data);
    EXPECT_LT(rel_l2_error(std::span<const cplx>(data), want), 1e-12) << n;
  }
  const ExecutorStats st = ex.stats();
  EXPECT_EQ(st.bluestein, 6u);
  EXPECT_EQ(st.mixed_radix, 0u);
}

TEST(Bluestein, PrimeSweepMatchesNaiveDftF32) {
  FftExecutor ex({.workers = 2});
  for (std::uint64_t n : {13ULL, 101ULL, 499ULL}) {
    auto data = random_signal32(n, 5 * n);
    std::vector<cplx> wide(n);
    for (std::uint64_t j = 0; j < n; ++j)
      wide[j] = cplx(data[j].real(), data[j].imag());
    const auto want = dft_reference(std::span<const cplx>(wide));
    ex.forward(data);
    EXPECT_LT(rel_l2_error(std::span<const cplx32>(data), want), 1e-5) << n;
  }
}

TEST(Bluestein, InverseRoundTrips) {
  FftExecutor ex({.workers = 2});
  for (std::uint64_t n : {11ULL, 101ULL, 997ULL}) {
    const auto input = random_signal(n, 7 * n);
    auto data = input;
    ex.forward(data);
    ex.inverse(data);
    EXPECT_LT(max_abs_error(data, input), 1e-10) << n;
  }
}

// ---------------------------------------------------------------------------
// large-N acceptance: sampled-bin DFT + round trip
// ---------------------------------------------------------------------------

/// Spot-checks `got` (the forward transform of `input`) against O(N)
/// per-bin naive DFT evaluation at a pseudo-random set of bins, then
/// round-trips through the executor's inverse. Full O(N^2) references are
/// infeasible at these sizes; sampled bins plus the round trip together
/// pin both the transform's values and its invertibility.
void check_large_n(FftExecutor& ex, std::uint64_t n, double bin_tol,
                   double round_tol) {
  const auto input = random_signal(n, n ^ 0x9e3779b97f4a7c15ULL);
  auto data = input;
  ex.forward(data);
  util::Xoshiro256 rng(n);
  const double scale = std::sqrt(static_cast<double>(n));
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t k = rng.next_below(n);
    const cplx want = dft_bin(std::span<const cplx>(input), k);
    EXPECT_LT(std::abs(data[k] - want) / scale, bin_tol)
        << "n=" << n << " k=" << k;
  }
  ex.inverse(data);
  EXPECT_LT(max_abs_error(data, input), round_tol) << "n=" << n;
}

TEST(MixedRadixExecutor, LargeSmoothMillion) {
  FftExecutor ex({.workers = 4});
  check_large_n(ex, 1000000, 1e-9, 1e-9);
  const ExecutorStats st = ex.stats();
  EXPECT_EQ(st.mixed_radix, 2u);  // forward + inverse
}

TEST(Bluestein, LargePrime46349) {
  FftExecutor ex({.workers = 4});
  check_large_n(ex, 46349, 1e-9, 1e-9);
  const ExecutorStats st = ex.stats();
  EXPECT_EQ(st.bluestein, 2u);
}

TEST(MixedRadixExecutor, LargeSmoothMillionF32) {
  FftExecutor ex({.workers = 4});
  const std::uint64_t n = 1000000;
  const auto input = random_signal32(n, 42);
  auto data = input;
  ex.forward(data);
  util::Xoshiro256 rng(n);
  const double scale = std::sqrt(static_cast<double>(n));
  std::vector<cplx> wide(input.size());
  for (std::uint64_t j = 0; j < n; ++j)
    wide[j] = cplx(input[j].real(), input[j].imag());
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t k = rng.next_below(n);
    const cplx want = dft_bin(std::span<const cplx>(wide), k);
    const cplx got(data[k].real(), data[k].imag());
    // f32 forward error grows ~sqrt(log N) * eps * ||x||; normalize by
    // sqrt(N) (the rms bin magnitude of unit-variance input).
    EXPECT_LT(std::abs(got - want) / scale, 1e-4) << "k=" << k;
  }
  ex.inverse(data);
  EXPECT_LT(max_abs_error(std::span<const cplx32>(data),
                          std::span<const cplx32>(input)),
            1e-3);
}

// ---------------------------------------------------------------------------
// pow2 unchanged: composite routing must not perturb pow2 dispatch
// ---------------------------------------------------------------------------

TEST(MixedRadixExecutor, Pow2StillRoutesClassic) {
  FftExecutor ex({.workers = 2});
  auto data = random_signal(1ULL << 10, 9);
  auto want = data;
  fft_serial_inplace(want);
  ex.forward(data);
  EXPECT_EQ(0, std::memcmp(data.data(), want.data(), data.size() * sizeof(cplx)));
  const ExecutorStats st = ex.stats();
  EXPECT_EQ(st.mixed_radix, 0u);
  EXPECT_EQ(st.bluestein, 0u);
}

// ---------------------------------------------------------------------------
// circular convolution at composite length (exact-N plan, satellite)
// ---------------------------------------------------------------------------

TEST(MixedRadixApi, CircularConvolveCompositeLengthExact) {
  for (std::uint64_t n : {12ULL, 60ULL, 101ULL}) {
    const auto a = random_signal(n, 11 * n);
    const auto b = random_signal(n, 13 * n);
    std::vector<cplx> want(n, cplx{0.0, 0.0});
    for (std::uint64_t i = 0; i < n; ++i)
      for (std::uint64_t j = 0; j < n; ++j) want[(i + j) % n] += a[i] * b[j];
    const auto got = circular_convolve(a, b);
    EXPECT_LT(rel_l2_error(std::span<const cplx>(got), want), 1e-12) << n;
  }
}

}  // namespace
}  // namespace c64fft::fft
