// Cross-cutting invariants of the simulated machine — the properties that
// must hold for ANY scheduling decision, configuration, or input size.

#include <gtest/gtest.h>

#include "c64/peak_model.hpp"
#include "fft/plan_stats.hpp"
#include "simfft/experiment.hpp"

namespace c64fft::simfft {
namespace {

c64::ChipConfig cfg_with(unsigned tus) {
  c64::ChipConfig cfg;
  cfg.thread_units = tus;
  return cfg;
}

const std::vector<SimVariant> kAllVariants{
    SimVariant::kCoarse,   SimVariant::kCoarseHash, SimVariant::kFineWorst,
    SimVariant::kFineBest, SimVariant::kFineHash,   SimVariant::kFineGuided};

TEST(SimProperties, TrafficIsScheduleInvariant) {
  // Loads + stores + twiddles are fixed by the plan; no scheduler may
  // change the total or the per-bank byte distribution (hash variants
  // redistribute twiddles, so compare within layout groups).
  const std::uint64_t n = 1ULL << 13;
  std::vector<std::uint64_t> linear_bytes, hash_bytes;
  std::vector<std::vector<std::uint64_t>> linear_banks;
  for (auto v : kAllVariants) {
    const auto run = run_fft_sim(v, n, cfg_with(24));
    const bool hashed = v == SimVariant::kCoarseHash || v == SimVariant::kFineHash;
    (hashed ? hash_bytes : linear_bytes).push_back(run.sim.bytes);
    if (!hashed) linear_banks.push_back(run.sim.bank_bytes);
  }
  for (auto b : linear_bytes) EXPECT_EQ(b, linear_bytes.front());
  for (auto b : hash_bytes) EXPECT_EQ(b, hash_bytes.front());
  EXPECT_EQ(hash_bytes.front(), linear_bytes.front());  // layout moves, not adds
  for (const auto& banks : linear_banks) EXPECT_EQ(banks, linear_banks.front());
}

TEST(SimProperties, TrafficMatchesPlanStatsCensus) {
  // Simulator byte movement == pure-algebra census, element for element.
  const std::uint64_t n = 1ULL << 13;
  const fft::FftPlan plan(n, 6);
  for (auto layout : {fft::TwiddleLayout::kLinear, fft::TwiddleLayout::kBitReversed}) {
    const fft::TrafficCensus census(plan, layout);
    const auto v = layout == fft::TwiddleLayout::kLinear ? SimVariant::kCoarse
                                                         : SimVariant::kCoarseHash;
    const auto run = run_fft_sim(v, n, cfg_with(16));
    const auto totals = census.totals();
    ASSERT_EQ(run.sim.bank_bytes.size(), totals.size());
    for (unsigned b = 0; b < totals.size(); ++b)
      EXPECT_EQ(run.sim.bank_bytes[b], totals[b] * 16) << b;
  }
}

TEST(SimProperties, EveryVariantIsDeterministic) {
  const std::uint64_t n = 1ULL << 12;
  for (auto v : kAllVariants) {
    const auto a = run_fft_sim(v, n, cfg_with(32));
    const auto b = run_fft_sim(v, n, cfg_with(32));
    EXPECT_EQ(a.sim.cycles, b.sim.cycles) << to_string(v);
    EXPECT_EQ(a.bank_totals, b.bank_totals) << to_string(v);
  }
}

TEST(SimProperties, NothingBeatsTheoreticalPeak) {
  c64::PeakModel peak;
  for (std::uint64_t logn : {12ULL, 14ULL, 16ULL}) {
    const std::uint64_t n = 1ULL << logn;
    for (const auto& row : run_all_variants(n, cfg_with(156)))
      EXPECT_LE(row.gflops, peak.peak_gflops(n, 64) * 1.0001)
          << row.name << " n=2^" << logn;
  }
}

TEST(SimProperties, MoreBandwidthNeverHurts) {
  const std::uint64_t n = 1ULL << 13;
  auto slow = cfg_with(64);
  auto fast = cfg_with(64);
  fast.bank_bytes_per_cycle = 32.0;
  for (auto v : {SimVariant::kCoarse, SimVariant::kFineGuided}) {
    const auto a = run_fft_sim(v, n, slow);
    const auto b = run_fft_sim(v, n, fast);
    EXPECT_LE(b.sim.cycles, a.sim.cycles) << to_string(v);
  }
}

TEST(SimProperties, LowerLatencyNeverHurts) {
  const std::uint64_t n = 1ULL << 13;
  auto high = cfg_with(64);
  high.dram_latency = 300;
  auto low = cfg_with(64);
  low.dram_latency = 20;
  for (auto v : {SimVariant::kCoarse, SimVariant::kFineBest}) {
    EXPECT_LT(run_fft_sim(v, n, low).sim.cycles, run_fft_sim(v, n, high).sim.cycles)
        << to_string(v);
  }
}

TEST(SimProperties, CoarseMakespanMonotoneInBarrierCost) {
  const std::uint64_t n = 1ULL << 12;
  std::uint64_t prev = 0;
  for (unsigned barrier : {0u, 4096u, 65536u}) {
    auto cfg = cfg_with(32);
    cfg.barrier_cycles = barrier;
    const auto run = run_fft_sim(SimVariant::kCoarse, n, cfg);
    EXPECT_GE(run.sim.cycles, prev) << barrier;
    prev = run.sim.cycles;
  }
}

TEST(SimProperties, ScalesWithThreadUnits) {
  // 4x the TUs must give a substantially shorter run (we are latency-
  // bound, so near-linear: demand at least 2.5x).
  const std::uint64_t n = 1ULL << 14;
  for (auto v : {SimVariant::kCoarse, SimVariant::kFineGuided}) {
    const auto narrow = run_fft_sim(v, n, cfg_with(20));
    const auto wide = run_fft_sim(v, n, cfg_with(80));
    EXPECT_GT(static_cast<double>(narrow.sim.cycles),
              2.5 * static_cast<double>(wide.sim.cycles))
        << to_string(v);
  }
}

TEST(SimProperties, HashBalancesBankBytesForEveryScheduler) {
  const std::uint64_t n = 1ULL << 13;
  for (auto v : {SimVariant::kCoarseHash, SimVariant::kFineHash}) {
    const auto run = run_fft_sim(v, n, cfg_with(32));
    const double hot = static_cast<double>(run.sim.bank_bytes[0]);
    const double other = static_cast<double>(run.sim.bank_bytes[1]);
    EXPECT_LT(hot / other, 1.25) << to_string(v);
  }
}

TEST(SimProperties, RadixSweepCompletesAndConservesFlops) {
  const std::uint64_t n = 1ULL << 12;
  for (unsigned r = 2; r <= 7; ++r) {
    SimFftOptions opts;
    opts.radix_log2 = r;
    const auto run = run_fft_sim(SimVariant::kFineBest, n, cfg_with(32), opts);
    const fft::FftPlan plan(n, r);
    EXPECT_EQ(run.sim.tasks_completed, plan.total_tasks()) << r;
    std::uint64_t flops = 0;
    for (std::uint32_t s = 0; s < plan.stage_count(); ++s)
      flops += plan.flops_per_task(s) * plan.tasks_per_stage();
    EXPECT_EQ(flops, 5ULL * n * 12ULL) << r;  // 5 N log2 N regardless of radix
  }
}

TEST(SimProperties, SingleTuDegeneratesToSerialSum) {
  // With one TU and no contention, the makespan approximates the summed
  // codelet latencies; every variant lands within a few percent of every
  // other (scheduling freedom is worthless without parallelism).
  const std::uint64_t n = 1ULL << 12;
  std::vector<std::uint64_t> cycles;
  for (auto v : {SimVariant::kCoarse, SimVariant::kFineBest, SimVariant::kFineGuided})
    cycles.push_back(run_fft_sim(v, n, cfg_with(1)).sim.cycles);
  for (auto c : cycles) {
    EXPECT_GT(static_cast<double>(c), 0.97 * static_cast<double>(cycles[0]));
    EXPECT_LT(static_cast<double>(c), 1.03 * static_cast<double>(cycles[0]));
  }
}

}  // namespace
}  // namespace c64fft::simfft
