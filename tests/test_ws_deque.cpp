#include "codelet/ws_deque.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace c64fft::codelet {
namespace {

using StealResult = WorkStealingDeque::StealResult;

TEST(WorkStealingDeque, OwnerPopsLifo) {
  WorkStealingDeque dq;
  for (std::uint64_t i = 0; i < 10; ++i) dq.push({1, i});
  CodeletKey k;
  for (std::uint64_t i = 10; i-- > 0;) {
    ASSERT_TRUE(dq.pop(k));
    EXPECT_EQ(k.stage, 1u);
    EXPECT_EQ(k.index, i);
  }
  EXPECT_FALSE(dq.pop(k));
  EXPECT_TRUE(dq.empty_relaxed());
}

TEST(WorkStealingDeque, ThievesStealFifo) {
  WorkStealingDeque dq;
  for (std::uint64_t i = 0; i < 10; ++i) dq.push({2, i});
  CodeletKey k;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(dq.steal(k), StealResult::kStolen);
    EXPECT_EQ(k.index, i);  // oldest first
  }
  EXPECT_EQ(dq.steal(k), StealResult::kEmpty);
}

TEST(WorkStealingDeque, MixedPopAndStealMeetInTheMiddle) {
  WorkStealingDeque dq;
  for (std::uint64_t i = 0; i < 6; ++i) dq.push({0, i});
  CodeletKey k;
  ASSERT_EQ(dq.steal(k), StealResult::kStolen);
  EXPECT_EQ(k.index, 0u);
  ASSERT_TRUE(dq.pop(k));
  EXPECT_EQ(k.index, 5u);
  ASSERT_EQ(dq.steal(k), StealResult::kStolen);
  EXPECT_EQ(k.index, 1u);
  ASSERT_TRUE(dq.pop(k));
  EXPECT_EQ(k.index, 4u);
  ASSERT_TRUE(dq.pop(k));
  EXPECT_EQ(k.index, 3u);
  ASSERT_EQ(dq.steal(k), StealResult::kStolen);
  EXPECT_EQ(k.index, 2u);
  EXPECT_EQ(dq.steal(k), StealResult::kEmpty);
  EXPECT_FALSE(dq.pop(k));
}

TEST(WorkStealingDeque, GrowthPreservesPendingItems) {
  WorkStealingDeque dq(2);  // force several doublings
  const std::uint64_t n = 1000;
  for (std::uint64_t i = 0; i < n; ++i) dq.push({3, i});
  EXPECT_EQ(dq.size_relaxed(), n);
  CodeletKey k;
  for (std::uint64_t i = n; i-- > 0;) {
    ASSERT_TRUE(dq.pop(k));
    ASSERT_EQ(k.index, i);
    ASSERT_EQ(k.stage, 3u);
  }
  EXPECT_FALSE(dq.pop(k));
}

TEST(WorkStealingDeque, GrowthInterleavedWithSteals) {
  WorkStealingDeque dq(2);
  CodeletKey k;
  std::uint64_t next = 0, expect_top = 0;
  for (int round = 0; round < 8; ++round) {
    for (int j = 0; j < 5; ++j) dq.push({0, next++});
    ASSERT_EQ(dq.steal(k), StealResult::kStolen);
    EXPECT_EQ(k.index, expect_top++);  // still FIFO across growth
  }
  std::size_t drained = 0;
  while (dq.pop(k)) ++drained;
  EXPECT_EQ(drained + expect_top, next);
}

// Owner drains its own deque while thieves hammer the top: every pushed
// key must surface exactly once, across owner pops and steals combined.
// (Run under -DC64FFT_TSAN=ON this is also the deque's data-race proof.)
TEST(WorkStealingDeque, ConcurrentStealStressLosesAndDuplicatesNothing) {
  constexpr std::uint64_t kItems = 50000;
  constexpr unsigned kThieves = 3;
  WorkStealingDeque dq(4);

  std::atomic<bool> done{false};
  std::vector<std::vector<std::uint64_t>> stolen(kThieves);
  std::atomic<std::uint64_t> lost_races{0};

  std::vector<std::thread> thieves;
  for (unsigned t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      CodeletKey k;
      while (true) {
        switch (dq.steal(k)) {
          case StealResult::kStolen:
            stolen[t].push_back(k.index);
            break;
          case StealResult::kLost:
            lost_races.fetch_add(1, std::memory_order_relaxed);
            break;
          case StealResult::kEmpty:
            if (done.load(std::memory_order_acquire)) return;
            std::this_thread::yield();
            break;
        }
      }
    });
  }

  // Owner: push in bursts, pop in bursts — exercises the b==t race and
  // ring growth concurrently with the thieves.
  std::vector<std::uint64_t> popped;
  CodeletKey k;
  std::uint64_t next = 0;
  while (next < kItems) {
    for (int j = 0; j < 37 && next < kItems; ++j) dq.push({0, next++});
    for (int j = 0; j < 11; ++j)
      if (dq.pop(k)) popped.push_back(k.index);
  }
  while (dq.pop(k)) popped.push_back(k.index);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::vector<std::uint64_t> all = popped;
  for (const auto& v : stolen) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), kItems);
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < kItems; ++i)
    ASSERT_EQ(all[i], i) << "key lost or duplicated around index " << i;
}

}  // namespace
}  // namespace c64fft::codelet
