// The static analyzer must (a) pass every shipped plan variant clean of
// errors, flagging only the linear twiddle layout's bank-0 hotspot, and
// (b) catch each class of seeded defect: a dependency cycle, a wrong
// counter threshold, overlapping unordered writes, an orphaned codelet,
// and a bank-0-heavy twiddle stride.

#include "analysis/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/model.hpp"
#include "fft/plan.hpp"

namespace c64fft::analysis {
namespace {

using fft::FftPlan;
using fft::TwiddleLayout;

bool has_code(const AnalysisReport& report, const std::string& check,
              const std::string& code) {
  for (const auto& c : report.checks) {
    if (c.name != check) continue;
    for (const auto& d : c.diagnostics)
      if (d.code == code) return true;
  }
  return false;
}

const CheckResult& check_of(const AnalysisReport& report, const std::string& name) {
  for (const auto& c : report.checks)
    if (c.name == name) return c;
  throw std::logic_error("missing check " + name);
}

PlanModel clean_model(std::uint64_t n = 4096, unsigned r = 6,
                      TwiddleLayout layout = TwiddleLayout::kLinear,
                      Schedule schedule = Schedule::kCounters) {
  return build_model(FftPlan(n, r), layout, schedule);
}

// ---- Shipped variants ----

TEST(Analyzer, AllShippedVariantsAreErrorFree) {
  for (const std::uint64_t n : {std::uint64_t{256}, std::uint64_t{4096}}) {
    for (const unsigned r : {3u, 6u}) {
      if ((std::uint64_t{1} << r) > n) continue;
      for (const auto layout : {TwiddleLayout::kLinear, TwiddleLayout::kBitReversed}) {
        for (const auto schedule : {Schedule::kBarrier, Schedule::kCounters}) {
          const auto report = analyze_plan(FftPlan(n, r), layout, schedule);
          EXPECT_EQ(report.errors(), 0u)
              << "n=" << n << " r=" << r << " " << report.to_json();
          EXPECT_TRUE(report.passed());
        }
      }
    }
  }
}

TEST(Analyzer, PartialLastStagePlanIsErrorFree) {
  // 2^10 with radix 2^6: the second stage applies only 4 levels — the
  // partial-stage group algebra must still verify clean.
  const auto report = analyze_plan(FftPlan(1024, 6), TwiddleLayout::kLinear,
                                   Schedule::kCounters);
  EXPECT_EQ(report.errors(), 0u) << report.to_json();
}

TEST(Analyzer, LinearLayoutFlaggedBank0HashedClean) {
  const FftPlan plan(4096, 6);
  const auto linear =
      analyze_plan(plan, TwiddleLayout::kLinear, Schedule::kCounters);
  ASSERT_TRUE(has_code(linear, "banks", "bank-imbalance")) << linear.to_json();
  EXPECT_TRUE(has_code(linear, "banks", "twiddle-single-bank"));
  EXPECT_EQ(check_of(linear, "banks").metrics.at("hottest_bank"), 0.0);
  EXPECT_GT(check_of(linear, "banks").metrics.at("twiddle_imbalance"), 2.0);
  // Findings are warnings, not errors: shipped linear variants still pass.
  EXPECT_EQ(linear.errors(), 0u);
  EXPECT_EQ(linear.status(), "warn");

  const auto hashed =
      analyze_plan(plan, TwiddleLayout::kBitReversed, Schedule::kCounters);
  EXPECT_FALSE(has_code(hashed, "banks", "bank-imbalance")) << hashed.to_json();
  EXPECT_FALSE(has_code(hashed, "banks", "twiddle-single-bank"));
  EXPECT_EQ(hashed.status(), "pass");
  EXPECT_LT(check_of(hashed, "banks").metrics.at("twiddle_imbalance"), 1.5);
}

TEST(Analyzer, CacheSetLintFlagsStridedStagesOnly) {
  // Opt-in report mode: absent by default, present when requested.
  const FftPlan plan(4096, 6);
  const auto off = analyze_plan(plan, TwiddleLayout::kLinear, Schedule::kCounters);
  EXPECT_THROW(check_of(off, "cache-sets"), std::logic_error);

  AnalysisOptions opts;
  opts.check_cache_sets = true;
  const auto report =
      analyze_plan(plan, TwiddleLayout::kLinear, Schedule::kCounters, opts);
  const CheckResult& cs = check_of(report, "cache-sets");
  // Stage 0 walks contiguous chains -> every set in the footprint's range;
  // stage 1 strides by R = 64 elements = 16 lines -> its 64-line codelet
  // footprint folds onto 64/gcd(64,16) = 4 of the 64 sets.
  ASSERT_TRUE(has_code(report, "cache-sets", "cache-set-conflict"))
      << report.to_json();
  EXPECT_EQ(cs.metrics.at("stage0_chain_sets"), 16.0);
  EXPECT_EQ(cs.metrics.at("stage1_chain_sets"), 4.0);
  EXPECT_EQ(cs.metrics.at("stage1_stride"), 64.0);
  // Warnings by default (a performance hazard, not a correctness bug).
  EXPECT_EQ(report.errors(), 0u);

  AnalysisOptions strict = opts;
  strict.cache_sets.strict = true;
  EXPECT_GT(analyze_plan(plan, TwiddleLayout::kLinear, Schedule::kCounters, strict)
                .errors(),
            0u);
}

TEST(Analyzer, CacheSetLintCleanOnTinyPlan) {
  // A cache-resident plan (N = 256: 64 lines total) has nothing to flag —
  // every stage's footprint covers the whole (tiny) index range it uses.
  AnalysisOptions opts;
  opts.check_cache_sets = true;
  const auto report = analyze_plan(FftPlan(256, 6), TwiddleLayout::kLinear,
                                   Schedule::kCounters, opts);
  EXPECT_FALSE(has_code(report, "cache-sets", "cache-set-conflict"))
      << report.to_json();
}

TEST(Analyzer, StrictBanksPromotesToError) {
  AnalysisOptions opts;
  opts.banks.strict = true;
  const auto report =
      analyze_plan(FftPlan(4096, 6), TwiddleLayout::kLinear, Schedule::kCounters, opts);
  EXPECT_GT(report.errors(), 0u);
  EXPECT_FALSE(report.passed());
}

// ---- Seeded defects ----

TEST(Analyzer, SeededCycleIsDetected) {
  PlanModel m = clean_model();
  // Close a loop: some stage-1 consumer also "produces for" its parent.
  m.graph.add_edge({1, 0}, {0, 0});
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "graph", "cycle")) << report.to_json();
  EXPECT_FALSE(report.passed());
  // Reachability is undefined on a cyclic graph: races must be skipped,
  // not silently passed.
  EXPECT_EQ(check_of(report, "races").status, "skipped");
}

TEST(Analyzer, SeededThresholdTooHighDeadlocks) {
  PlanModel m = clean_model();
  m.groups.front().threshold += 1;  // one counter can never fill
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "graph", "threshold-mismatch")) << report.to_json();
  EXPECT_TRUE(has_code(report, "graph", "deadlock"));
  EXPECT_FALSE(report.passed());
}

TEST(Analyzer, SeededThresholdTooLowOverArrives) {
  PlanModel m = clean_model();
  m.groups.front().threshold -= 1;  // fires before the last parent: the
                                    // runtime counter would over-satisfy
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "graph", "threshold-mismatch")) << report.to_json();
  EXPECT_TRUE(has_code(report, "graph", "over-arrival"));
  EXPECT_FALSE(report.passed());
}

TEST(Analyzer, SeededOverlappingUnorderedWritesRace) {
  PlanModel m = clean_model();
  // Two stage-0 codelets are unordered by construction; make task 1
  // write into task 0's footprint.
  ASSERT_EQ(m.codelets[0].key.stage, 0u);
  ASSERT_EQ(m.codelets[1].key.stage, 0u);
  m.codelets[1].writes = m.codelets[0].writes;
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "races", "race-ww")) << report.to_json();
  EXPECT_FALSE(report.passed());
  EXPECT_GE(check_of(report, "races").metrics.at("racing_pairs"), 1.0);
}

TEST(Analyzer, SeededMissingEdgeReadWriteRace) {
  PlanModel m = clean_model();
  // Rebuild the graph with one producer->consumer edge dropped: the
  // consumer now reads elements its missing parent writes, unordered.
  codelet::CodeletGraph pruned;
  bool dropped = false;
  for (const CodeletModel& c : m.codelets) pruned.add_node(c.key);
  for (const GroupModel& g : m.groups)
    for (std::uint64_t p : g.producers)
      for (std::uint64_t mem : g.members) {
        if (!dropped && g.stage == 1 && p == 0 && mem == 0) {
          dropped = true;
          continue;
        }
        pruned.add_edge({g.stage - 1, p}, {g.stage, mem});
      }
  ASSERT_TRUE(dropped);
  m.graph = pruned;
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "races", "race-rw") ||
              has_code(report, "races", "race-ww"))
      << report.to_json();
  // The verifier independently sees the member's parent set shrink.
  EXPECT_TRUE(has_code(report, "graph", "parent-set-mismatch"));
  EXPECT_FALSE(report.passed());
}

TEST(Analyzer, SeededOrphanCodeletIsDetected) {
  PlanModel m = clean_model();
  // A codelet of stage >= 1 that no sibling group releases can never fire.
  CodeletModel extra;
  extra.key = {1, m.codelets.back().key.index + 1};
  extra.reads = {0};
  extra.writes = {0};
  m.graph.add_node(extra.key);
  m.codelets.push_back(extra);
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "graph", "orphan")) << report.to_json();
  EXPECT_TRUE(has_code(report, "graph", "deadlock"));
  EXPECT_FALSE(report.passed());
}

TEST(Analyzer, SeededBank0HeavyTwiddleStrideIsFlagged) {
  PlanModel m = clean_model(4096, 6, TwiddleLayout::kBitReversed);
  {
    // Sanity: the hashed layout starts clean.
    const auto before = analyze(m);
    EXPECT_FALSE(has_code(before, "banks", "bank-imbalance"));
  }
  // Force every codelet's twiddle stream onto slots 16 elements apart:
  // 16 * 16 B = 256 B = interleave * banks, so every load lands on the
  // bank of the table base — the Fig. 1 hotspot in its purest form.
  for (CodeletModel& c : m.codelets)
    for (std::size_t i = 0; i < c.twiddle_slots.size(); ++i)
      c.twiddle_slots[i] = 16 * static_cast<std::uint64_t>(i);
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "banks", "bank-imbalance")) << report.to_json();
  EXPECT_TRUE(has_code(report, "banks", "twiddle-single-bank"));
  EXPECT_EQ(check_of(report, "banks").metrics.at("hottest_bank"), 0.0);
}

TEST(Analyzer, ElementBytesChangesBankVerdict) {
  // The same slot set lints clean at 16 B elements but bank-0/1-heavy at
  // 8 B: element size is a genuine input of the verdict, not a scale
  // factor. Give every codelet the bounded twiddle stream {0,2,...,14}.
  PlanModel m = clean_model(4096, 6, TwiddleLayout::kBitReversed);
  for (CodeletModel& c : m.codelets) {
    c.twiddle_slots.clear();
    for (std::uint64_t s = 0; s < 16; s += 2) c.twiddle_slots.push_back(s);
  }

  // At 16 B the eight slots are 32 B apart: 0..224 B covers all four
  // 64 B-interleaved banks with two loads each — perfectly balanced.
  const auto at16 = analyze(m);
  EXPECT_FALSE(has_code(at16, "banks", "bank-imbalance")) << at16.to_json();
  EXPECT_EQ(check_of(at16, "banks").metrics.at("element_bytes"), 16.0);
  EXPECT_EQ(check_of(at16, "banks").metrics.at("twiddle_imbalance"), 1.0);

  // At 8 B the same slots span only 0..112 B: banks 2 and 3 are never
  // touched and the twiddle imbalance doubles to 2.0 — flagged. First via
  // the explicit option override...
  AnalysisOptions opts;
  opts.banks.element_bytes = 8;
  const auto at8 = analyze(m, opts);
  EXPECT_TRUE(has_code(at8, "banks", "bank-imbalance")) << at8.to_json();
  EXPECT_EQ(check_of(at8, "banks").metrics.at("element_bytes"), 8.0);
  EXPECT_EQ(check_of(at8, "banks").metrics.at("twiddle_imbalance"), 2.0);

  // ...then inherited from the model's own width (option 0 = inherit).
  m.element_bytes = 8;
  const auto inherited = analyze(m);
  EXPECT_TRUE(has_code(inherited, "banks", "bank-imbalance"))
      << inherited.to_json();
  EXPECT_EQ(check_of(inherited, "banks").metrics.at("element_bytes"), 8.0);
}

// ---- Model / report plumbing ----

TEST(Analyzer, ModelMatchesPlanAlgebra) {
  const FftPlan plan(4096, 6);
  const PlanModel m = build_model(plan, TwiddleLayout::kLinear, Schedule::kCounters);
  EXPECT_EQ(m.codelets.size(), plan.total_tasks());
  EXPECT_EQ(m.graph.node_count(), plan.total_tasks());
  ASSERT_FALSE(m.groups.empty());
  for (const GroupModel& g : m.groups) {
    EXPECT_EQ(g.threshold, plan.group_threshold(g.stage));
    EXPECT_EQ(g.producers.size(), g.threshold);
    EXPECT_EQ(g.members.size(), plan.group_size(g.stage));
  }
  // Spot-check one footprint against the plan's index algebra.
  std::vector<std::uint64_t> elems;
  plan.task_elements(1, 3, elems);
  const std::size_t pos = m.find({1, 3});
  ASSERT_NE(pos, PlanModel::npos);
  EXPECT_EQ(m.codelets[pos].reads, elems);
  EXPECT_EQ(m.codelets[pos].writes, elems);
}

TEST(Analyzer, BarrierScheduleSkipsCounterChecksButOrdersStages) {
  const auto report = analyze(clean_model(256, 6, TwiddleLayout::kLinear,
                                          Schedule::kBarrier));
  EXPECT_EQ(report.errors(), 0u) << report.to_json();
  EXPECT_FALSE(check_of(report, "graph").note.empty());

  // Same-stage overlap still races under barriers.
  PlanModel m = clean_model(256, 6, TwiddleLayout::kLinear, Schedule::kBarrier);
  m.codelets[1].writes = m.codelets[0].writes;
  EXPECT_TRUE(has_code(analyze(m), "races", "race-ww"));
}

TEST(Analyzer, JsonReportIsWellFormed) {
  const auto report =
      analyze_plan(FftPlan(4096, 6), TwiddleLayout::kLinear, Schedule::kCounters);
  const std::string json = report.to_json();
  for (const char* needle :
       {"\"fft_lint\"", "\"version\":1", "\"plan\"", "\"checks\"", "\"graph\"",
        "\"races\"", "\"banks\"", "\"status\"", "\"imbalance\""})
    EXPECT_NE(json.find(needle), std::string::npos) << needle << " missing:\n" << json;
  // Balanced braces/brackets (cheap structural sanity without a parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace c64fft::analysis
