// The static analyzer must (a) pass every shipped plan variant clean of
// errors, flagging only the linear twiddle layout's bank-0 hotspot, and
// (b) catch each class of seeded defect: a dependency cycle, a wrong
// counter threshold, overlapping unordered writes, an orphaned codelet,
// and a bank-0-heavy twiddle stride.

#include "analysis/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/baseline.hpp"
#include "analysis/model.hpp"
#include "fft/executor.hpp"
#include "fft/kernels/dispatch.hpp"
#include "fft/plan.hpp"
#include "util/cpu_features.hpp"
#include "util/json.hpp"

namespace c64fft::analysis {
namespace {

using fft::FftPlan;
using fft::TwiddleLayout;

bool has_code(const AnalysisReport& report, const std::string& check,
              const std::string& code) {
  for (const auto& c : report.checks) {
    if (c.name != check) continue;
    for (const auto& d : c.diagnostics)
      if (d.code == code) return true;
  }
  return false;
}

const CheckResult& check_of(const AnalysisReport& report, const std::string& name) {
  for (const auto& c : report.checks)
    if (c.name == name) return c;
  throw std::logic_error("missing check " + name);
}

PlanModel clean_model(std::uint64_t n = 4096, unsigned r = 6,
                      TwiddleLayout layout = TwiddleLayout::kLinear,
                      Schedule schedule = Schedule::kCounters) {
  return build_model(FftPlan(n, r), layout, schedule);
}

// ---- Shipped variants ----

TEST(Analyzer, AllShippedVariantsAreErrorFree) {
  for (const std::uint64_t n : {std::uint64_t{256}, std::uint64_t{4096}}) {
    for (const unsigned r : {3u, 6u}) {
      if ((std::uint64_t{1} << r) > n) continue;
      for (const auto layout : {TwiddleLayout::kLinear, TwiddleLayout::kBitReversed}) {
        for (const auto schedule : {Schedule::kBarrier, Schedule::kCounters}) {
          const auto report = analyze_plan(FftPlan(n, r), layout, schedule);
          EXPECT_EQ(report.errors(), 0u)
              << "n=" << n << " r=" << r << " " << report.to_json();
          EXPECT_TRUE(report.passed());
        }
      }
    }
  }
}

TEST(Analyzer, PartialLastStagePlanIsErrorFree) {
  // 2^10 with radix 2^6: the second stage applies only 4 levels — the
  // partial-stage group algebra must still verify clean.
  const auto report = analyze_plan(FftPlan(1024, 6), TwiddleLayout::kLinear,
                                   Schedule::kCounters);
  EXPECT_EQ(report.errors(), 0u) << report.to_json();
}

TEST(Analyzer, LinearLayoutFlaggedBank0HashedClean) {
  const FftPlan plan(4096, 6);
  const auto linear =
      analyze_plan(plan, TwiddleLayout::kLinear, Schedule::kCounters);
  ASSERT_TRUE(has_code(linear, "banks", "bank-imbalance")) << linear.to_json();
  EXPECT_TRUE(has_code(linear, "banks", "twiddle-single-bank"));
  EXPECT_EQ(check_of(linear, "banks").metrics.at("hottest_bank"), 0.0);
  EXPECT_GT(check_of(linear, "banks").metrics.at("twiddle_imbalance"), 2.0);
  // Findings are warnings, not errors: shipped linear variants still pass.
  EXPECT_EQ(linear.errors(), 0u);
  EXPECT_EQ(linear.status(), "warn");

  const auto hashed =
      analyze_plan(plan, TwiddleLayout::kBitReversed, Schedule::kCounters);
  EXPECT_FALSE(has_code(hashed, "banks", "bank-imbalance")) << hashed.to_json();
  EXPECT_FALSE(has_code(hashed, "banks", "twiddle-single-bank"));
  EXPECT_EQ(hashed.status(), "pass");
  EXPECT_LT(check_of(hashed, "banks").metrics.at("twiddle_imbalance"), 1.5);
}

TEST(Analyzer, CacheSetLintFlagsStridedStagesOnly) {
  // Opt-in report mode: absent by default, present when requested.
  const FftPlan plan(4096, 6);
  const auto off = analyze_plan(plan, TwiddleLayout::kLinear, Schedule::kCounters);
  EXPECT_THROW(check_of(off, "cache-sets"), std::logic_error);

  AnalysisOptions opts;
  opts.check_cache_sets = true;
  const auto report =
      analyze_plan(plan, TwiddleLayout::kLinear, Schedule::kCounters, opts);
  const CheckResult& cs = check_of(report, "cache-sets");
  // Stage 0 walks contiguous chains -> every set in the footprint's range;
  // stage 1 strides by R = 64 elements = 16 lines -> its 64-line codelet
  // footprint folds onto 64/gcd(64,16) = 4 of the 64 sets.
  ASSERT_TRUE(has_code(report, "cache-sets", "cache-set-conflict"))
      << report.to_json();
  EXPECT_EQ(cs.metrics.at("stage0_chain_sets"), 16.0);
  EXPECT_EQ(cs.metrics.at("stage1_chain_sets"), 4.0);
  EXPECT_EQ(cs.metrics.at("stage1_stride"), 64.0);
  // Warnings by default (a performance hazard, not a correctness bug).
  EXPECT_EQ(report.errors(), 0u);

  AnalysisOptions strict = opts;
  strict.cache_sets.strict = true;
  EXPECT_GT(analyze_plan(plan, TwiddleLayout::kLinear, Schedule::kCounters, strict)
                .errors(),
            0u);
}

TEST(Analyzer, CacheSetLintCleanOnTinyPlan) {
  // A cache-resident plan (N = 256: 64 lines total) has nothing to flag —
  // every stage's footprint covers the whole (tiny) index range it uses.
  AnalysisOptions opts;
  opts.check_cache_sets = true;
  const auto report = analyze_plan(FftPlan(256, 6), TwiddleLayout::kLinear,
                                   Schedule::kCounters, opts);
  EXPECT_FALSE(has_code(report, "cache-sets", "cache-set-conflict"))
      << report.to_json();
}

TEST(Analyzer, StrictBanksPromotesToError) {
  AnalysisOptions opts;
  opts.banks.strict = true;
  const auto report =
      analyze_plan(FftPlan(4096, 6), TwiddleLayout::kLinear, Schedule::kCounters, opts);
  EXPECT_GT(report.errors(), 0u);
  EXPECT_FALSE(report.passed());
}

// ---- Seeded defects ----

TEST(Analyzer, SeededCycleIsDetected) {
  PlanModel m = clean_model();
  // Close a loop: some stage-1 consumer also "produces for" its parent.
  m.graph.add_edge({1, 0}, {0, 0});
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "graph", "cycle")) << report.to_json();
  EXPECT_FALSE(report.passed());
  // Reachability is undefined on a cyclic graph: races must be skipped,
  // not silently passed.
  EXPECT_EQ(check_of(report, "races").status, "skipped");
}

TEST(Analyzer, SeededThresholdTooHighDeadlocks) {
  PlanModel m = clean_model();
  m.groups.front().threshold += 1;  // one counter can never fill
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "graph", "threshold-mismatch")) << report.to_json();
  EXPECT_TRUE(has_code(report, "graph", "deadlock"));
  EXPECT_FALSE(report.passed());
}

TEST(Analyzer, SeededThresholdTooLowOverArrives) {
  PlanModel m = clean_model();
  m.groups.front().threshold -= 1;  // fires before the last parent: the
                                    // runtime counter would over-satisfy
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "graph", "threshold-mismatch")) << report.to_json();
  EXPECT_TRUE(has_code(report, "graph", "over-arrival"));
  EXPECT_FALSE(report.passed());
}

TEST(Analyzer, SeededOverlappingUnorderedWritesRace) {
  PlanModel m = clean_model();
  // Two stage-0 codelets are unordered by construction; make task 1
  // write into task 0's footprint.
  ASSERT_EQ(m.codelets[0].key.stage, 0u);
  ASSERT_EQ(m.codelets[1].key.stage, 0u);
  m.codelets[1].writes = m.codelets[0].writes;
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "races", "race-ww")) << report.to_json();
  EXPECT_FALSE(report.passed());
  EXPECT_GE(check_of(report, "races").metrics.at("racing_pairs"), 1.0);
}

TEST(Analyzer, SeededMissingEdgeReadWriteRace) {
  PlanModel m = clean_model();
  // Rebuild the graph with one producer->consumer edge dropped: the
  // consumer now reads elements its missing parent writes, unordered.
  codelet::CodeletGraph pruned;
  bool dropped = false;
  for (const CodeletModel& c : m.codelets) pruned.add_node(c.key);
  for (const GroupModel& g : m.groups)
    for (std::uint64_t p : g.producers)
      for (std::uint64_t mem : g.members) {
        if (!dropped && g.stage == 1 && p == 0 && mem == 0) {
          dropped = true;
          continue;
        }
        pruned.add_edge({g.stage - 1, p}, {g.stage, mem});
      }
  ASSERT_TRUE(dropped);
  m.graph = pruned;
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "races", "race-rw") ||
              has_code(report, "races", "race-ww"))
      << report.to_json();
  // The verifier independently sees the member's parent set shrink.
  EXPECT_TRUE(has_code(report, "graph", "parent-set-mismatch"));
  EXPECT_FALSE(report.passed());
}

TEST(Analyzer, SeededOrphanCodeletIsDetected) {
  PlanModel m = clean_model();
  // A codelet of stage >= 1 that no sibling group releases can never fire.
  CodeletModel extra;
  extra.key = {1, m.codelets.back().key.index + 1};
  extra.reads = {0};
  extra.writes = {0};
  m.graph.add_node(extra.key);
  m.codelets.push_back(extra);
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "graph", "orphan")) << report.to_json();
  EXPECT_TRUE(has_code(report, "graph", "deadlock"));
  EXPECT_FALSE(report.passed());
}

TEST(Analyzer, SeededBank0HeavyTwiddleStrideIsFlagged) {
  PlanModel m = clean_model(4096, 6, TwiddleLayout::kBitReversed);
  {
    // Sanity: the hashed layout starts clean.
    const auto before = analyze(m);
    EXPECT_FALSE(has_code(before, "banks", "bank-imbalance"));
  }
  // Force every codelet's twiddle stream onto slots 16 elements apart:
  // 16 * 16 B = 256 B = interleave * banks, so every load lands on the
  // bank of the table base — the Fig. 1 hotspot in its purest form.
  for (CodeletModel& c : m.codelets)
    for (std::size_t i = 0; i < c.twiddle_slots.size(); ++i)
      c.twiddle_slots[i] = 16 * static_cast<std::uint64_t>(i);
  const auto report = analyze(m);
  EXPECT_TRUE(has_code(report, "banks", "bank-imbalance")) << report.to_json();
  EXPECT_TRUE(has_code(report, "banks", "twiddle-single-bank"));
  EXPECT_EQ(check_of(report, "banks").metrics.at("hottest_bank"), 0.0);
}

TEST(Analyzer, ElementBytesChangesBankVerdict) {
  // The same slot set lints clean at 16 B elements but bank-0/1-heavy at
  // 8 B: element size is a genuine input of the verdict, not a scale
  // factor. Give every codelet the bounded twiddle stream {0,2,...,14}.
  PlanModel m = clean_model(4096, 6, TwiddleLayout::kBitReversed);
  for (CodeletModel& c : m.codelets) {
    c.twiddle_slots.clear();
    for (std::uint64_t s = 0; s < 16; s += 2) c.twiddle_slots.push_back(s);
  }

  // At 16 B the eight slots are 32 B apart: 0..224 B covers all four
  // 64 B-interleaved banks with two loads each — perfectly balanced.
  const auto at16 = analyze(m);
  EXPECT_FALSE(has_code(at16, "banks", "bank-imbalance")) << at16.to_json();
  EXPECT_EQ(check_of(at16, "banks").metrics.at("element_bytes"), 16.0);
  EXPECT_EQ(check_of(at16, "banks").metrics.at("twiddle_imbalance"), 1.0);

  // At 8 B the same slots span only 0..112 B: banks 2 and 3 are never
  // touched and the twiddle imbalance doubles to 2.0 — flagged. First via
  // the explicit option override...
  AnalysisOptions opts;
  opts.banks.element_bytes = 8;
  const auto at8 = analyze(m, opts);
  EXPECT_TRUE(has_code(at8, "banks", "bank-imbalance")) << at8.to_json();
  EXPECT_EQ(check_of(at8, "banks").metrics.at("element_bytes"), 8.0);
  EXPECT_EQ(check_of(at8, "banks").metrics.at("twiddle_imbalance"), 2.0);

  // ...then inherited from the model's own width (option 0 = inherit).
  m.element_bytes = 8;
  const auto inherited = analyze(m);
  EXPECT_TRUE(has_code(inherited, "banks", "bank-imbalance"))
      << inherited.to_json();
  EXPECT_EQ(check_of(inherited, "banks").metrics.at("element_bytes"), 8.0);
}

// ---- Model / report plumbing ----

TEST(Analyzer, ModelMatchesPlanAlgebra) {
  const FftPlan plan(4096, 6);
  const PlanModel m = build_model(plan, TwiddleLayout::kLinear, Schedule::kCounters);
  EXPECT_EQ(m.codelets.size(), plan.total_tasks());
  EXPECT_EQ(m.graph.node_count(), plan.total_tasks());
  ASSERT_FALSE(m.groups.empty());
  for (const GroupModel& g : m.groups) {
    EXPECT_EQ(g.threshold, plan.group_threshold(g.stage));
    EXPECT_EQ(g.producers.size(), g.threshold);
    EXPECT_EQ(g.members.size(), plan.group_size(g.stage));
  }
  // Spot-check one footprint against the plan's index algebra.
  std::vector<std::uint64_t> elems;
  plan.task_elements(1, 3, elems);
  const std::size_t pos = m.find({1, 3});
  ASSERT_NE(pos, PlanModel::npos);
  EXPECT_EQ(m.codelets[pos].reads, elems);
  EXPECT_EQ(m.codelets[pos].writes, elems);
}

TEST(Analyzer, BarrierScheduleSkipsCounterChecksButOrdersStages) {
  const auto report = analyze(clean_model(256, 6, TwiddleLayout::kLinear,
                                          Schedule::kBarrier));
  EXPECT_EQ(report.errors(), 0u) << report.to_json();
  EXPECT_FALSE(check_of(report, "graph").note.empty());

  // Same-stage overlap still races under barriers.
  PlanModel m = clean_model(256, 6, TwiddleLayout::kLinear, Schedule::kBarrier);
  m.codelets[1].writes = m.codelets[0].writes;
  EXPECT_TRUE(has_code(analyze(m), "races", "race-ww"));
}

TEST(Analyzer, JsonReportIsWellFormed) {
  const auto report =
      analyze_plan(FftPlan(4096, 6), TwiddleLayout::kLinear, Schedule::kCounters);
  const std::string json = report.to_json();
  for (const char* needle :
       {"\"fft_lint\"", "\"version\":1", "\"plan\"", "\"checks\"", "\"graph\"",
        "\"races\"", "\"banks\"", "\"status\"", "\"imbalance\""})
    EXPECT_NE(json.find(needle), std::string::npos) << needle << " missing:\n" << json;
  // Balanced braces/brackets (cheap structural sanity without a parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ---- Pipeline model: shipped composite shapes verify clean ----

TEST(Pipeline, EveryBuilderIsCleanAtBothPrecisions) {
  for (const unsigned eb : {16u, 8u}) {
    PipelineBuildOptions opts;
    opts.element_bytes = eb;
    std::vector<PipelineModel> models;
    models.push_back(build_classic_pipeline(FftPlan(4096, 6), opts));
    opts.layout = TwiddleLayout::kBitReversed;
    models.push_back(build_classic_pipeline(FftPlan(4096, 6), opts));
    opts.layout = TwiddleLayout::kLinear;
    models.push_back(build_batch_pipeline(FftPlan(256, 6), 8, opts));
    models.push_back(build_four_step_pipeline(4096, 6, opts));   // 64 x 64
    models.push_back(build_four_step_pipeline(8192, 6, opts));   // 64 x 128
    opts.hier_leaf_log2 = 6;
    models.push_back(build_hierarchical_pipeline(4096, 6, opts));  // 64 x 64
    opts.hier_leaf_log2 = 5;
    models.push_back(build_hierarchical_pipeline(4096, 6, opts));  // 2 levels
    opts.hier_leaf_log2 = 0;
    models.push_back(build_fft2d_pipeline(32, 32, 6, opts));
    models.push_back(build_fft2d_pipeline(16, 32, 6, opts));
    models.push_back(build_real_fft_pipeline(512, 6, opts));
    models.push_back(build_mixed_radix_pipeline(360, opts));   // [8, 5, 3, 3]
    models.push_back(build_mixed_radix_pipeline(1000, opts));  // [8, 5, 5, 5]
    models.push_back(build_bluestein_pipeline(101, 6, opts));  // prime, conv 256
    for (const PipelineModel& m : models) {
      const auto report = analyze_pipeline(m);
      EXPECT_EQ(report.errors(), 0u)
          << m.name << " eb=" << eb << "\n" << report.to_json();
      EXPECT_EQ(report.schedule, "pipeline");
      EXPECT_EQ(check_of(report, "coverage").status, "pass")
          << m.name << "\n" << report.to_json();
      EXPECT_EQ(check_of(report, "coverage").metrics.at("write_overlaps"), 0.0);
      EXPECT_EQ(check_of(report, "coverage").metrics.at("undefined_reads"), 0.0);
    }
  }
}

TEST(Pipeline, ModelMirrorsExecutorGrains) {
  // The model's phase shapes must be the executor's, derived from the
  // same hooks — not a lookalike that can drift.
  PipelineBuildOptions opts;
  opts.workers = 4;
  const PipelineModel classic = build_classic_pipeline(FftPlan(4096, 6), opts);
  ASSERT_GE(classic.phases.size(), 2u);
  EXPECT_EQ(classic.phases.front().name, "bitrev");
  EXPECT_EQ(classic.phases.front().tasks.size(),
            fft::bitrev_sweep_grain(4096, 4).chunks);
  EXPECT_EQ(classic.phases[1].tasks.size(), FftPlan(4096, 6).tasks_per_stage());

  const PipelineModel fs = build_four_step_pipeline(4096, 6, opts);  // 64 x 64
  ASSERT_EQ(fs.phases.size(), 5u);
  EXPECT_EQ(fs.phases[1].name, "col-sweep");
  EXPECT_EQ(fs.phases[1].tasks.size(), fft::four_step_sweep_grain(64, 4).chunks);
  // Square split: the final transpose runs in place, no copy-back phase.
  EXPECT_EQ(fs.phases.back().name, "final-transpose");
  const PipelineModel rect = build_four_step_pipeline(8192, 6, opts);
  EXPECT_EQ(rect.phases.back().name, "copy-back");

  // Hierarchical tasks are the dependency-counted blocks of the runtime
  // grain, not per-tile fictions.
  PipelineBuildOptions hopts;
  hopts.workers = 4;
  hopts.hier_leaf_log2 = 6;
  const PipelineModel hier = build_hierarchical_pipeline(4096, 6, hopts);
  ASSERT_EQ(hier.phases.size(), 3u);
  EXPECT_EQ(hier.phases[0].name, "gather");
  EXPECT_EQ(hier.phases[1].name, "col-sweep");
  EXPECT_EQ(hier.phases[2].name, "fused-row");
  const fft::HierarchicalGrain grain = fft::hierarchical_grain(
      64, 64, 4, 16, util::cache_info().l2_bytes, 0);
  EXPECT_EQ(hier.phases[0].tasks.size(), grain.blocks1);
  EXPECT_EQ(hier.phases[1].tasks.size(), grain.blocks1);
  EXPECT_EQ(hier.phases[2].tasks.size(), grain.blocks2);

  // A forced-small leaf recurses: the column transform condenses to one
  // task per gather row, charged the inner levels' full pass count.
  hopts.hier_leaf_log2 = 5;
  const PipelineModel multi = build_hierarchical_pipeline(4096, 6, hopts);
  ASSERT_EQ(multi.phases.size(), 3u);
  EXPECT_EQ(multi.phases[1].name, "col-recursive");
  EXPECT_EQ(multi.phases[1].tasks.size(),
            fft::hierarchical_split(4096, 5).n2);
  EXPECT_GT(multi.phases[1].tasks.front().passes, 1u);
}

TEST(Pipeline, TileTrafficSplitsTransposeFromButterfly) {
  PipelineBuildOptions opts;
  opts.hier_leaf_log2 = 6;
  const PipelineModel m = build_hierarchical_pipeline(4096, 6, opts);
  const auto report = analyze_pipeline(m);
  const auto& metrics = check_of(report, "tile-traffic").metrics;
  // Gather is pure movement, the column sweep pure butterfly, and the
  // fused tail exactly two movement passes (gather-in + writeback-out)
  // around its row-FFT streams.
  EXPECT_GT(metrics.at("phase0_transpose_bytes"), 0.0);
  EXPECT_EQ(metrics.at("phase0_butterfly_bytes"), 0.0);
  EXPECT_EQ(metrics.at("phase1_transpose_bytes"), 0.0);
  EXPECT_GT(metrics.at("phase1_butterfly_bytes"), 0.0);
  const double fused_transpose = metrics.at("phase2_transpose_bytes");
  const double fused_butterfly = metrics.at("phase2_butterfly_bytes");
  EXPECT_GT(fused_transpose, 0.0);
  EXPECT_GT(fused_butterfly, 0.0);
  const fft::FftPlan row_plan(64, 6);
  const auto& fused = m.phases[2].tasks.front();
  EXPECT_EQ(fused.passes, row_plan.stage_count() + 2);
  EXPECT_EQ(fused.movement_passes, 2u);
  EXPECT_NEAR(metrics.at("transpose_bytes") + metrics.at("butterfly_bytes"),
              metrics.at("total_bytes"), 0.5);
}

// ---- Seeded pipeline defects ----

TEST(Pipeline, SeededTileOverlapIsCaught) {
  PipelineModel m = build_four_step_pipeline(4096, 6);
  // A transpose tile that also writes its neighbour's first element — the
  // tile-bounds off-by-one the coverage proof exists for.
  PhaseModel& transpose = m.phases.front();
  ASSERT_GE(transpose.tasks.size(), 2u);
  transpose.tasks[1].writes.push_back(transpose.tasks[0].writes.front());
  const auto report = analyze_pipeline(m);
  EXPECT_TRUE(has_code(report, "coverage", "write-overlap")) << report.to_json();
  EXPECT_FALSE(report.passed());
}

TEST(Pipeline, SeededDroppedTileIsACoverageGap) {
  PipelineModel m = build_four_step_pipeline(4096, 6);
  m.phases.front().tasks.pop_back();
  const auto report = analyze_pipeline(m);
  EXPECT_TRUE(has_code(report, "coverage", "coverage-gap")) << report.to_json();
  EXPECT_FALSE(report.passed());
}

TEST(Pipeline, SeededMissingProducerPhaseIsReadBeforeWrite) {
  PipelineModel m = build_four_step_pipeline(4096, 6);
  // Drop the initial transpose: the column sweep now reads scratch no
  // phase ever wrote.
  m.phases.erase(m.phases.begin());
  const auto report = analyze_pipeline(m);
  EXPECT_TRUE(has_code(report, "coverage", "read-before-write"))
      << report.to_json();
  EXPECT_FALSE(report.passed());
}

TEST(Pipeline, SeededIntraPhaseAliasIsCaught) {
  PipelineModel m = build_four_step_pipeline(4096, 6);
  // A tile reading an element another tile of the same phase writes:
  // unordered tasks, so the read races the write (fused-stage aliasing).
  PhaseModel& transpose = m.phases.front();
  transpose.tasks[0].reads.push_back(transpose.tasks[1].writes.front());
  const auto report = analyze_pipeline(m);
  EXPECT_TRUE(has_code(report, "coverage", "phase-aliasing")) << report.to_json();
  EXPECT_FALSE(report.passed());
}

TEST(Pipeline, SeededOutOfBoundsAccessIsCaught) {
  PipelineModel m = build_classic_pipeline(FftPlan(256, 6));
  PipelineTask& task = m.phases.back().tasks.front();
  task.writes.push_back({0, m.buffers[0].elements});  // one past the end
  const auto report = analyze_pipeline(m);
  EXPECT_TRUE(has_code(report, "coverage", "oob-access")) << report.to_json();
  EXPECT_FALSE(report.passed());
}

TEST(Pipeline, SameTaskRewriteIsLegal) {
  // "Exactly once" is per element per phase across distinct tasks: a
  // task revisiting its own element (in-place multi-level butterflies)
  // must not trip the proof.
  PipelineModel m = build_classic_pipeline(FftPlan(256, 6));
  PipelineTask& task = m.phases.back().tasks.front();
  task.writes.push_back(task.writes.front());
  const auto report = analyze_pipeline(m);
  EXPECT_EQ(report.errors(), 0u) << report.to_json();
}

TEST(Pipeline, SeededSkewIsFlaggedAndStrictPromotes) {
  PipelineModel skewed = build_classic_pipeline(FftPlan(4096, 6));
  // One codelet of the last stage streams its footprint 64x: the skewed
  // schedule the cost model exists for.
  skewed.phases.back().tasks.front().passes *= 64;
  const auto report = analyze_pipeline(skewed);
  EXPECT_TRUE(has_code(report, "cost", "load-imbalance")) << report.to_json();
  EXPECT_EQ(report.errors(), 0u);  // warning by default

  PipelineAnalysisOptions strict;
  strict.cost.strict = true;
  const auto hard = analyze_pipeline(skewed, strict);
  EXPECT_GT(hard.errors(), 0u);
  EXPECT_FALSE(hard.passed());
}

TEST(Pipeline, SeededTileTrafficImbalanceIsFlaggedAndStrictPromotes) {
  PipelineBuildOptions opts;
  opts.hier_leaf_log2 = 6;
  PipelineModel balanced = build_hierarchical_pipeline(4096, 6, opts);
  {
    const auto report = analyze_pipeline(balanced);
    EXPECT_FALSE(has_code(report, "tile-traffic", "tile-traffic-imbalance"))
        << report.to_json();
  }

  // One gather block suddenly re-streams its tiles 16x — the skewed
  // per-level traffic the report exists to surface (a mis-grained block
  // doing many blocks' movement behind the same dependency counter).
  PipelineModel skewed = std::move(balanced);
  skewed.phases.front().tasks.front().passes *= 16;
  const auto report = analyze_pipeline(skewed);
  EXPECT_TRUE(has_code(report, "tile-traffic", "tile-traffic-imbalance"))
      << report.to_json();
  EXPECT_EQ(report.errors(), 0u);  // warning by default

  PipelineAnalysisOptions strict;
  strict.tile_traffic.strict = true;
  const auto hard = analyze_pipeline(skewed, strict);
  EXPECT_GT(hard.errors(), 0u);
  EXPECT_FALSE(hard.passed());
}

TEST(Pipeline, SeededBankConcentrationIsFlagged) {
  // Hand-built phase whose every access strides by banks * interleave
  // bytes: all traffic on the base bank, imbalance = banks.
  PipelineModel m;
  m.name = "seeded-bank";
  m.n = 64;
  const std::uint32_t buf = m.add_buffer("data", 64, /*input=*/true);
  PhaseModel phase;
  phase.name = "hot";
  for (std::uint64_t t = 0; t < 4; ++t) {
    PipelineTask task;
    task.index = t;
    for (std::uint64_t e = 0; e < 64; e += 16)  // 16 * 16 B = 256 B stride
      task.reads.push_back({buf, e});
    phase.tasks.push_back(std::move(task));
  }
  m.phases.push_back(std::move(phase));
  const auto report = analyze_pipeline(m);
  EXPECT_TRUE(has_code(report, "cost", "bank-bytes-imbalance"))
      << report.to_json();
  EXPECT_EQ(check_of(report, "cost").metrics.at("bank_imbalance"), 4.0);
}

TEST(Pipeline, CostProfileIsConsistent) {
  const PipelineModel m = build_four_step_pipeline(1 << 14, 6);
  const auto report = analyze_pipeline(m);
  const auto& metrics = check_of(report, "cost").metrics;
  const double span = metrics.at("span_cost");
  const double work = metrics.at("total_work");
  const double bound = metrics.at("makespan_bound");
  // Graham's bound is sandwiched between the two trivial schedules.
  EXPECT_GE(bound, span * (1.0 - 1e-9));
  EXPECT_LE(bound, work * (1.0 + 1e-9));
  EXPECT_GE(metrics.at("avg_parallelism"), 1.0);
  // Per-phase rows exist for every phase.
  for (std::size_t p = 0; p < m.phases.size(); ++p)
    EXPECT_TRUE(metrics.count("phase" + std::to_string(p) + "_span")) << p;
}

// ---- Kernel dispatch check ----

TEST(Pipeline, ModelsRecordTheActiveKernelIsa) {
  const PipelineModel m = build_classic_pipeline(FftPlan(1024, 5));
  EXPECT_EQ(m.kernel_isa,
            util::to_string(fft::kernels::active_kernel_isa()));
  const auto report = analyze_pipeline(m);
  EXPECT_EQ(check_of(report, "kernel").status, "pass") << report.to_json();
  // Pipeline reports surface the dispatch id in the layout slot.
  EXPECT_EQ(report.layout, m.kernel_isa);
}

TEST(Pipeline, ForcedIsaLevelsAreStampedAndVerifyClean) {
  const util::IsaLevel prev = fft::kernels::active_kernel_isa();
  for (const util::IsaLevel level :
       {util::IsaLevel::kScalar, util::IsaLevel::kAvx2,
        util::IsaLevel::kAvx512}) {
    const util::IsaLevel active = fft::kernels::set_kernel_isa(level);
    const PipelineModel m = build_four_step_pipeline(4096, 6);
    EXPECT_EQ(m.kernel_isa, util::to_string(active));
    const auto& check = check_of(analyze_pipeline(m), "kernel");
    EXPECT_EQ(check.status, "pass") << util::to_string(level);
    EXPECT_EQ(check.metrics.at("isa_level"), static_cast<double>(active));
  }
  fft::kernels::set_kernel_isa(prev);
}

TEST(Pipeline, UnknownKernelIsaIdFailsTheKernelCheck) {
  PipelineModel m = build_classic_pipeline(FftPlan(256, 4));
  m.kernel_isa = "sse9";
  const auto report = analyze_pipeline(m);
  EXPECT_TRUE(has_code(report, "kernel", "unknown-kernel-isa"))
      << report.to_json();
  EXPECT_FALSE(report.passed());
}

TEST(Pipeline, UnsupportedKernelIsaIdFailsOnLesserHosts) {
  // Only meaningful where the hardware cannot execute AVX-512: a model
  // claiming the avx512 table then names a kernel this host cannot run.
  if (util::isa_supported(util::IsaLevel::kAvx512))
    GTEST_SKIP() << "host executes every registered table";
  PipelineModel m = build_classic_pipeline(FftPlan(256, 4));
  m.kernel_isa = "avx512";
  const auto report = analyze_pipeline(m);
  EXPECT_TRUE(has_code(report, "kernel", "unsupported-kernel-isa"))
      << report.to_json();
}

TEST(Pipeline, HandBuiltModelsSkipTheKernelCheck) {
  PipelineModel m;
  m.name = "hand-built";
  m.n = 16;
  const std::uint32_t buf = m.add_buffer("data", 16, /*input=*/true);
  PhaseModel phase;
  phase.name = "noop";
  PipelineTask task;
  task.reads.push_back({buf, 0});
  phase.tasks.push_back(std::move(task));
  m.phases.push_back(std::move(phase));
  const auto report = analyze_pipeline(m);
  EXPECT_EQ(check_of(report, "kernel").status, "skipped");
  EXPECT_EQ(check_of(report, "kernel").errors(), 0u);
}

// ---- Baseline gate ----

TEST(LintBaseline, RowsRoundTripThroughJson) {
  const auto rows = collect_lint_rows();
  ASSERT_EQ(rows.size(), 22u);  // 11 shapes x 2 precisions
  const std::string json = lint_rows_to_json(rows);
  const auto parsed = lint_rows_from_json(util::json_parse(json));
  ASSERT_EQ(parsed.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(parsed[i].key, rows[i].key);
    ASSERT_EQ(parsed[i].metrics.size(), rows[i].metrics.size());
    for (std::size_t k = 0; k < rows[i].metrics.size(); ++k) {
      EXPECT_EQ(parsed[i].metrics[k].first, rows[i].metrics[k].first);
      EXPECT_EQ(parsed[i].metrics[k].second, rows[i].metrics[k].second);
    }
  }
  // Deterministic inputs: a self-diff is clean at any tolerance.
  LintGateOptions tight;
  tight.tolerance = 0.0;
  EXPECT_FALSE(has_lint_regression(diff_lint_rows(rows, rows, tight)));
}

TEST(LintBaseline, GateCatchesRegressionAndMissingRow) {
  const auto baseline = collect_lint_rows();
  auto current = collect_lint_rows();

  // Higher-is-worse drift beyond tolerance fails...
  for (auto& [name, value] : current[0].metrics)
    if (name == "span_cost") value *= 1.2;
  auto deltas = diff_lint_rows(baseline, current, {});
  EXPECT_TRUE(has_lint_regression(deltas));
  bool found = false;
  for (const auto& d : deltas)
    if (d.key == baseline[0].key && d.metric == "span_cost") {
      EXPECT_TRUE(d.regressed);
      EXPECT_NEAR(d.worse_ratio, 1.2, 1e-9);
      found = true;
    }
  EXPECT_TRUE(found);

  // ...as does a lower-is-worse drop in parallelism...
  current = collect_lint_rows();
  for (auto& [name, value] : current[1].metrics)
    if (name == "avg_parallelism") value *= 0.8;
  EXPECT_TRUE(has_lint_regression(diff_lint_rows(baseline, current, {})));

  // ...and a shape silently vanishing from the matrix.
  current = collect_lint_rows();
  current.pop_back();
  deltas = diff_lint_rows(baseline, current, {});
  EXPECT_TRUE(has_lint_regression(deltas));
  const std::string report = format_lint_report(deltas, {});
  EXPECT_NE(report.find("missing"), std::string::npos);
  EXPECT_NE(report.find("FAIL"), std::string::npos);

  // Within-tolerance drift passes.
  current = collect_lint_rows();
  for (auto& [name, value] : current[0].metrics)
    if (name == "span_cost") value *= 1.05;
  EXPECT_FALSE(has_lint_regression(diff_lint_rows(baseline, current, {})));
}

}  // namespace
}  // namespace c64fft::analysis
