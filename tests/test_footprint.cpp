#include "simfft/footprint.hpp"

#include <gtest/gtest.h>

#include <array>

#include "fft/types.hpp"

namespace c64fft::simfft {
namespace {

c64::ChipConfig default_cfg() { return c64::ChipConfig{}; }

std::uint64_t request_bytes(const c64::TaskSpec& t, bool loads) {
  std::uint64_t sum = 0;
  for (std::uint32_t i = 0; i < t.requests.size(); ++i) {
    const bool is_load = i < t.first_store;
    if (is_load == loads) sum += t.requests[i].bytes;
  }
  return sum;
}

std::array<std::uint64_t, 4> bank_bytes(const c64::TaskSpec& t) {
  std::array<std::uint64_t, 4> out{};
  for (const auto& r : t.requests) out[r.bank] += r.bytes;
  return out;
}

TEST(Footprint, FullStageByteCountsMatchPaperEq3) {
  // 64 loads + 63 twiddles + 64 stores, 16 B each.
  const fft::FftPlan plan(1ULL << 18, 6);
  const auto cfg = default_cfg();
  FootprintBuilder fp(plan, cfg, fft::TwiddleLayout::kLinear);
  c64::TaskSpec t;
  fp.build(1, 37, t);
  EXPECT_EQ(request_bytes(t, true), (64u + 63u) * 16u);
  EXPECT_EQ(request_bytes(t, false), 64u * 16u);
  EXPECT_EQ(fp.bytes_per_task(1), 191u * 16u);
  EXPECT_FALSE(fp.spills());
}

TEST(Footprint, PartialStageByteCounts) {
  const fft::FftPlan plan(1ULL << 15, 6);
  const auto cfg = default_cfg();
  FootprintBuilder fp(plan, cfg, fft::TwiddleLayout::kLinear);
  c64::TaskSpec t;
  fp.build(2, 5, t);
  EXPECT_EQ(request_bytes(t, true), (64u + 56u) * 16u);  // cpt*(2^w-1)=56 twiddles
  EXPECT_EQ(request_bytes(t, false), 64u * 16u);
}

TEST(Footprint, EarlyStageTwiddlesAllOnBankZero) {
  // The paper's Fig. 1 root cause, reproduced structurally: in early
  // stages bank 0 receives the 63 twiddles plus its 1/4 share of data.
  const fft::FftPlan plan(1ULL << 18, 6);
  const auto cfg = default_cfg();
  FootprintBuilder fp(plan, cfg, fft::TwiddleLayout::kLinear);
  std::array<std::uint64_t, 4> total{};
  c64::TaskSpec t;
  for (std::uint64_t i = 0; i < plan.tasks_per_stage(); i += 7) {
    fp.build(0, i, t);
    const auto bb = bank_bytes(t);
    for (int b = 0; b < 4; ++b) total[b] += bb[b];
  }
  // bank0 ~= 3x the other banks in *access counts*; in bytes:
  // (63 + 32) / 32 with data spread evenly in stage 0.
  EXPECT_GT(total[0], 2 * total[1]);
  EXPECT_NEAR(static_cast<double>(total[1]), static_cast<double>(total[2]),
              static_cast<double>(total[1]) * 0.01);
}

TEST(Footprint, StridedDataOfOneTaskStaysInOneBank) {
  // Stage j >= 1 loads with stride 64^j (a multiple of 4 elements): all
  // 64 data elements of one codelet live in a single bank.
  const fft::FftPlan plan(1ULL << 18, 6);
  const auto cfg = default_cfg();
  FootprintBuilder fp(plan, cfg, fft::TwiddleLayout::kLinear);
  c64::TaskSpec t;
  fp.build(1, 129, t);
  // Split data vs twiddle requests: twiddles are all bank 0; data (loads
  // minus twiddles) must be a single bank.
  std::array<std::uint64_t, 4> stores{};
  for (std::uint32_t i = t.first_store; i < t.requests.size(); ++i)
    stores[t.requests[i].bank] += t.requests[i].bytes;
  int banks_used = 0;
  for (auto b : stores) banks_used += b > 0;
  EXPECT_EQ(banks_used, 1);
}

TEST(Footprint, HashedLayoutBalancesTwiddleBanks) {
  const fft::FftPlan plan(1ULL << 18, 6);
  const auto cfg = default_cfg();
  FootprintBuilder lin(plan, cfg, fft::TwiddleLayout::kLinear);
  FootprintBuilder rev(plan, cfg, fft::TwiddleLayout::kBitReversed);
  std::array<std::uint64_t, 4> lin_total{}, rev_total{};
  c64::TaskSpec t;
  for (std::uint64_t i = 0; i < 512; ++i) {
    lin.build(0, i, t);
    for (const auto& r : t.requests) lin_total[r.bank] += r.bytes;
    rev.build(0, i, t);
    for (const auto& r : t.requests) rev_total[r.bank] += r.bytes;
  }
  const double lin_imb = static_cast<double>(lin_total[0]) /
                         static_cast<double>(lin_total[1]);
  const double rev_imb = static_cast<double>(rev_total[0]) /
                         static_cast<double>(rev_total[1]);
  EXPECT_GT(lin_imb, 2.0);
  EXPECT_LT(rev_imb, 1.3);
}

TEST(Footprint, HashedLayoutChargesPreIssueCost) {
  const fft::FftPlan plan(1ULL << 15, 6);
  const auto cfg = default_cfg();
  FootprintBuilder lin(plan, cfg, fft::TwiddleLayout::kLinear);
  FootprintBuilder rev(plan, cfg, fft::TwiddleLayout::kBitReversed);
  c64::TaskSpec a, b;
  lin.build(0, 3, a);
  rev.build(0, 3, b);
  auto pre = [](const c64::TaskSpec& t) {
    std::uint64_t sum = 0;
    for (const auto& r : t.requests) sum += r.pre_issue_cycles;
    return sum;
  };
  EXPECT_EQ(pre(a), 0u);
  // 63 twiddles, each charged hash_cost(index_bits) with 14 index bits.
  EXPECT_EQ(pre(b), 63u * cfg.hash_cost(14));
}

TEST(Footprint, CoalescingMergesOnlyContiguousRuns) {
  const fft::FftPlan plan(1ULL << 12, 6);
  auto cfg = default_cfg();
  cfg.coalesce_limit = 16;  // no merging at all
  FootprintBuilder fp16(plan, cfg, fft::TwiddleLayout::kLinear);
  cfg.coalesce_limit = 64;  // merge within one interleave line
  FootprintBuilder fp64(plan, cfg, fft::TwiddleLayout::kLinear);
  c64::TaskSpec a, b;
  // Stage 0 gathers 64 *contiguous* elements: 64 requests unmerged vs 16
  // line-sized requests merged.
  fp16.build(0, 7, a);
  fp64.build(0, 7, b);
  EXPECT_GT(a.requests.size(), b.requests.size());
  for (const auto& r : b.requests) EXPECT_LE(r.bytes, 64u);
  EXPECT_EQ(request_bytes(a, true), request_bytes(b, true));
  EXPECT_EQ(request_bytes(a, false), request_bytes(b, false));
  // Stage 1 gathers with a 64-element stride: nothing is contiguous, so
  // the limit must not merge anything (C64 multi-word loads cannot span
  // strided addresses).
  c64::TaskSpec s16, s64;
  fp16.build(1, 7, s16);
  fp64.build(1, 7, s64);
  EXPECT_EQ(s16.requests.size(), s64.requests.size());
  for (const auto& r : s64.requests) EXPECT_EQ(r.bytes, 16u);
}

TEST(Footprint, ComputeCyclesFromFlops) {
  const fft::FftPlan plan(1ULL << 18, 6);
  const auto cfg = default_cfg();
  FootprintBuilder fp(plan, cfg, fft::TwiddleLayout::kLinear);
  c64::TaskSpec t;
  fp.build(0, 0, t);
  // 1920 flops at 1 flop/cycle + fixed overhead.
  EXPECT_EQ(t.compute_cycles, 1920u + cfg.task_overhead_cycles);
}

TEST(Footprint, Radix128Spills) {
  const fft::FftPlan plan(1ULL << 14, 7);
  const auto cfg = default_cfg();
  FootprintBuilder fp(plan, cfg, fft::TwiddleLayout::kLinear);
  EXPECT_TRUE(fp.spills());
  c64::TaskSpec t;
  fp.build(0, 0, t);
  // Data loads doubled: 2*128 + 127 twiddles.
  EXPECT_EQ(request_bytes(t, true), (2u * 128u + 127u) * 16u);
  EXPECT_EQ(request_bytes(t, false), 2u * 128u * 16u);
}

TEST(Footprint, StoresMirrorDataLoadBanks) {
  const fft::FftPlan plan(1ULL << 12, 6);
  const auto cfg = default_cfg();
  FootprintBuilder fp(plan, cfg, fft::TwiddleLayout::kLinear);
  c64::TaskSpec t;
  fp.build(0, 11, t);
  // Stage 0 data is contiguous: stores spread round-robin over all banks.
  std::array<std::uint64_t, 4> stores{};
  for (std::uint32_t i = t.first_store; i < t.requests.size(); ++i)
    stores[t.requests[i].bank] += t.requests[i].bytes;
  for (auto b : stores) EXPECT_EQ(b, 256u);  // 1024 B over 4 banks
}

}  // namespace
}  // namespace c64fft::simfft
