#include "fft/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fft/bit_reversal.hpp"
#include "fft/reference.hpp"
#include "util/bit_ops.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

// Running every stage's codelets serially in natural order must equal the
// serial FFT — this validates gather/butterfly/twiddle/scatter in one go.
void check_stagewise(std::uint64_t n, unsigned radix_log2, TwiddleLayout layout) {
  auto data = random_signal(n, n ^ 0xABCD);
  auto want = data;
  fft_serial_inplace(want);

  const FftPlan plan(n, radix_log2);
  const TwiddleTable tw(n, layout);
  KernelScratch scratch(plan.radix());
  bit_reverse_permute(data);
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s)
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i)
      run_codelet(plan, s, i, data, tw, scratch);
  ASSERT_LT(max_abs_error(data, want), 1e-9)
      << "n=" << n << " r=" << radix_log2;
}

// The vectorized split-complex kernel must be bit-identical to the scalar
// std::complex reference: same butterflies, same twiddles, same operation
// order — only the data layout differs.
void check_split_matches_scalar(std::uint64_t n, unsigned radix_log2,
                                TwiddleLayout layout) {
  auto a = random_signal(n, n ^ 0xFEED);
  auto b = a;
  const FftPlan plan(n, radix_log2);
  const TwiddleTable tw(n, layout);
  KernelScratch scratch(plan.radix());
  std::vector<cplx> scalar_scratch(plan.radix());
  bit_reverse_permute(a);
  bit_reverse_permute(b);
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s)
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i) {
      run_codelet(plan, s, i, a, tw, scratch);
      run_codelet_scalar(plan, s, i, b, tw, scalar_scratch);
    }
  ASSERT_EQ(max_abs_error(a, b), 0.0) << "n=" << n << " r=" << radix_log2;
}

// The fused bit-reversal + stage-0 sweep must be bit-identical to
// bit-reversing the data and then running every stage-0 codelet — it is
// the same butterflies in the same order, only the permutation is folded
// into the gather.
void check_stage0_bitrev_fused(std::uint64_t n, unsigned radix_log2) {
  auto fused = random_signal(n, n ^ 0xB17E);
  auto ref = fused;
  const FftPlan plan(n, radix_log2);
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  KernelScratch scratch(plan.radix());

  bit_reverse_permute(ref);
  for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i)
    run_codelet(plan, 0, i, ref, tw, scratch);

  std::vector<std::uint32_t> brev(n);
  for (std::uint64_t i = 0; i < n; ++i)
    brev[i] = static_cast<std::uint32_t>(util::bit_reverse(i, plan.log2_size()));
  std::vector<double> split(2 * n);
  run_stage0_bitrev(plan, fused, tw, brev, split.data(), split.data() + n,
                    scratch);
  ASSERT_EQ(max_abs_error(fused, ref), 0.0) << "n=" << n << " r=" << radix_log2;
}

TEST(Kernel, Stage0BitrevFusedMatchesUnfused) {
  check_stage0_bitrev_fused(1ULL << 12, 6);
  check_stage0_bitrev_fused(1ULL << 9, 6);   // partial last stage
  check_stage0_bitrev_fused(1ULL << 10, 3);
}

TEST(Kernel, Radix64FullStages) { check_stagewise(1ULL << 12, 6, TwiddleLayout::kLinear); }

TEST(Kernel, Radix64PartialLastStage) {
  check_stagewise(1ULL << 13, 6, TwiddleLayout::kLinear);  // 1-level last stage
  check_stagewise(1ULL << 15, 6, TwiddleLayout::kLinear);  // 3-level last stage
  check_stagewise(1ULL << 17, 6, TwiddleLayout::kLinear);  // 5-level last stage
}

TEST(Kernel, HashedTwiddleLayoutGivesSameNumbers) {
  check_stagewise(1ULL << 12, 6, TwiddleLayout::kBitReversed);
  check_stagewise(1ULL << 15, 6, TwiddleLayout::kBitReversed);
}

TEST(Kernel, SmallerRadices) {
  check_stagewise(1ULL << 8, 3, TwiddleLayout::kLinear);
  check_stagewise(1ULL << 9, 3, TwiddleLayout::kLinear);
  check_stagewise(1ULL << 6, 2, TwiddleLayout::kLinear);
  check_stagewise(64, 1, TwiddleLayout::kLinear);
}

TEST(Kernel, Radix128) { check_stagewise(1ULL << 14, 7, TwiddleLayout::kLinear); }

TEST(Kernel, VectorizedMatchesScalarBitExactly) {
  check_split_matches_scalar(1ULL << 12, 6, TwiddleLayout::kLinear);
  check_split_matches_scalar(1ULL << 13, 6, TwiddleLayout::kLinear);   // partial last
  check_split_matches_scalar(1ULL << 15, 6, TwiddleLayout::kLinear);
  check_split_matches_scalar(1ULL << 12, 6, TwiddleLayout::kBitReversed);
  check_split_matches_scalar(1ULL << 9, 3, TwiddleLayout::kLinear);
  check_split_matches_scalar(64, 1, TwiddleLayout::kLinear);
}

TEST(Kernel, SingleTaskWholeTransform) {
  // N == R: one codelet is the whole FFT.
  const std::uint64_t n = 64;
  auto data = random_signal(n, 3);
  auto want = data;
  fft_serial_inplace(want);
  const FftPlan plan(n, 6);
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  KernelScratch scratch(plan.radix());
  bit_reverse_permute(data);
  run_codelet(plan, 0, 0, data, tw, scratch);
  EXPECT_LT(max_abs_error(data, want), 1e-10);
}

TEST(Kernel, StageOrderWithinStageIsIrrelevant) {
  // Tasks of one stage touch disjoint data: any order gives the same
  // result (the freedom the fine-grain scheduler exploits).
  const std::uint64_t n = 1ULL << 12;
  auto a = random_signal(n, 17);
  auto b = a;
  const FftPlan plan(n, 6);
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  KernelScratch scratch(plan.radix());
  bit_reverse_permute(a);
  bit_reverse_permute(b);
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s) {
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i)
      run_codelet(plan, s, i, a, tw, scratch);
    for (std::uint64_t i = plan.tasks_per_stage(); i-- > 0;)
      run_codelet(plan, s, i, b, tw, scratch);
  }
  EXPECT_EQ(max_abs_error(a, b), 0.0);  // bit-identical
}

TEST(ButterflyChain, SingleLevelMatchesDirectButterfly) {
  const std::uint64_t n = 16;
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  // Chain of 2 at base 3, stride 4, level 2 (global): lower element g=3.
  std::vector<cplx> chain{cplx(1, 1), cplx(2, -1)};
  const cplx w = tw.at((3 % 4) << (4 - 2 - 1));
  const cplx t = w * chain[1];
  const cplx want_lo = chain[0] + t;
  const cplx want_hi = chain[0] - t;
  butterfly_chain(chain, 3, 4, 2, 1, 4, tw);
  EXPECT_NEAR(std::abs(chain[0] - want_lo), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(chain[1] - want_hi), 0.0, 1e-15);
}

TEST(ButterflyChain, SplitMatchesComplexOnGenericChain) {
  // Exercise butterfly_chain_split directly, including a base/stride
  // combination where the twiddle progression wraps mod 2^L (c >= stride),
  // forcing the per-element fallback path.
  const std::uint64_t n = 1 << 10;
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  for (const auto& [base, stride] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0, 1}, {64, 1}, {3, 4}, {192, 8}, {7, 2}}) {
    const std::uint32_t levels = 5;
    const std::uint64_t len = 1u << levels;
    auto chain = random_signal(len, base * 131 + stride);
    std::vector<double> re(len), im(len), twr(len / 2), twi(len / 2);
    for (std::uint64_t q = 0; q < len; ++q) {
      re[q] = chain[q].real();
      im[q] = chain[q].imag();
    }
    butterfly_chain(chain, base, stride, 3, levels, 10, tw);
    butterfly_chain_split(re.data(), im.data(), len, base, stride, 3, levels, 10,
                          tw, twr.data(), twi.data());
    for (std::uint64_t q = 0; q < len; ++q) {
      EXPECT_EQ(re[q], chain[q].real()) << "base=" << base << " q=" << q;
      EXPECT_EQ(im[q], chain[q].imag()) << "base=" << base << " q=" << q;
    }
  }
}

}  // namespace
}  // namespace c64fft::fft
