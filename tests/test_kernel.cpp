#include "fft/kernel.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "fft/bit_reversal.hpp"
#include "fft/reference.hpp"
#include "fft/stockham.hpp"
#include "fft/transpose.hpp"
#include "util/bit_ops.hpp"
#include "util/cpu_features.hpp"
#include "util/prng.hpp"
#include "util/ulp.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

// Running every stage's codelets serially in natural order must equal the
// serial FFT — this validates gather/butterfly/twiddle/scatter in one go.
void check_stagewise(std::uint64_t n, unsigned radix_log2, TwiddleLayout layout) {
  auto data = random_signal(n, n ^ 0xABCD);
  auto want = data;
  fft_serial_inplace(want);

  const FftPlan plan(n, radix_log2);
  const TwiddleTable tw(n, layout);
  KernelScratch scratch(plan.radix());
  bit_reverse_permute(data);
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s)
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i)
      run_codelet(plan, s, i, data, tw, scratch);
  ASSERT_LT(max_abs_error(data, want), 1e-9)
      << "n=" << n << " r=" << radix_log2;
}

// The vectorized split-complex kernel must be bit-identical to the scalar
// std::complex reference: same butterflies, same twiddles, same operation
// order — only the data layout differs.
void check_split_matches_scalar(std::uint64_t n, unsigned radix_log2,
                                TwiddleLayout layout) {
  auto a = random_signal(n, n ^ 0xFEED);
  auto b = a;
  const FftPlan plan(n, radix_log2);
  const TwiddleTable tw(n, layout);
  KernelScratch scratch(plan.radix());
  std::vector<cplx> scalar_scratch(plan.radix());
  bit_reverse_permute(a);
  bit_reverse_permute(b);
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s)
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i) {
      run_codelet(plan, s, i, a, tw, scratch);
      run_codelet_scalar(plan, s, i, b, tw, scalar_scratch);
    }
  ASSERT_EQ(max_abs_error(a, b), 0.0) << "n=" << n << " r=" << radix_log2;
}

// The fused bit-reversal + stage-0 sweep must be bit-identical to
// bit-reversing the data and then running every stage-0 codelet — it is
// the same butterflies in the same order, only the permutation is folded
// into the gather.
void check_stage0_bitrev_fused(std::uint64_t n, unsigned radix_log2) {
  auto fused = random_signal(n, n ^ 0xB17E);
  auto ref = fused;
  const FftPlan plan(n, radix_log2);
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  KernelScratch scratch(plan.radix());

  bit_reverse_permute(ref);
  for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i)
    run_codelet(plan, 0, i, ref, tw, scratch);

  std::vector<std::uint32_t> brev(n);
  for (std::uint64_t i = 0; i < n; ++i)
    brev[i] = static_cast<std::uint32_t>(util::bit_reverse(i, plan.log2_size()));
  std::vector<double> split(2 * n);
  run_stage0_bitrev(plan, fused, tw, brev, split.data(), split.data() + n,
                    scratch);
  ASSERT_EQ(max_abs_error(fused, ref), 0.0) << "n=" << n << " r=" << radix_log2;
}

TEST(Kernel, Stage0BitrevFusedMatchesUnfused) {
  check_stage0_bitrev_fused(1ULL << 12, 6);
  check_stage0_bitrev_fused(1ULL << 9, 6);   // partial last stage
  check_stage0_bitrev_fused(1ULL << 10, 3);
}

TEST(Kernel, Radix64FullStages) { check_stagewise(1ULL << 12, 6, TwiddleLayout::kLinear); }

TEST(Kernel, Radix64PartialLastStage) {
  check_stagewise(1ULL << 13, 6, TwiddleLayout::kLinear);  // 1-level last stage
  check_stagewise(1ULL << 15, 6, TwiddleLayout::kLinear);  // 3-level last stage
  check_stagewise(1ULL << 17, 6, TwiddleLayout::kLinear);  // 5-level last stage
}

TEST(Kernel, HashedTwiddleLayoutGivesSameNumbers) {
  check_stagewise(1ULL << 12, 6, TwiddleLayout::kBitReversed);
  check_stagewise(1ULL << 15, 6, TwiddleLayout::kBitReversed);
}

TEST(Kernel, SmallerRadices) {
  check_stagewise(1ULL << 8, 3, TwiddleLayout::kLinear);
  check_stagewise(1ULL << 9, 3, TwiddleLayout::kLinear);
  check_stagewise(1ULL << 6, 2, TwiddleLayout::kLinear);
  check_stagewise(64, 1, TwiddleLayout::kLinear);
}

TEST(Kernel, Radix128) { check_stagewise(1ULL << 14, 7, TwiddleLayout::kLinear); }

TEST(Kernel, VectorizedMatchesScalarBitExactly) {
  check_split_matches_scalar(1ULL << 12, 6, TwiddleLayout::kLinear);
  check_split_matches_scalar(1ULL << 13, 6, TwiddleLayout::kLinear);   // partial last
  check_split_matches_scalar(1ULL << 15, 6, TwiddleLayout::kLinear);
  check_split_matches_scalar(1ULL << 12, 6, TwiddleLayout::kBitReversed);
  check_split_matches_scalar(1ULL << 9, 3, TwiddleLayout::kLinear);
  check_split_matches_scalar(64, 1, TwiddleLayout::kLinear);
}

TEST(Kernel, SingleTaskWholeTransform) {
  // N == R: one codelet is the whole FFT.
  const std::uint64_t n = 64;
  auto data = random_signal(n, 3);
  auto want = data;
  fft_serial_inplace(want);
  const FftPlan plan(n, 6);
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  KernelScratch scratch(plan.radix());
  bit_reverse_permute(data);
  run_codelet(plan, 0, 0, data, tw, scratch);
  EXPECT_LT(max_abs_error(data, want), 1e-10);
}

TEST(Kernel, StageOrderWithinStageIsIrrelevant) {
  // Tasks of one stage touch disjoint data: any order gives the same
  // result (the freedom the fine-grain scheduler exploits).
  const std::uint64_t n = 1ULL << 12;
  auto a = random_signal(n, 17);
  auto b = a;
  const FftPlan plan(n, 6);
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  KernelScratch scratch(plan.radix());
  bit_reverse_permute(a);
  bit_reverse_permute(b);
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s) {
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i)
      run_codelet(plan, s, i, a, tw, scratch);
    for (std::uint64_t i = plan.tasks_per_stage(); i-- > 0;)
      run_codelet(plan, s, i, b, tw, scratch);
  }
  EXPECT_EQ(max_abs_error(a, b), 0.0);  // bit-identical
}

TEST(ButterflyChain, SingleLevelMatchesDirectButterfly) {
  const std::uint64_t n = 16;
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  // Chain of 2 at base 3, stride 4, level 2 (global): lower element g=3.
  std::vector<cplx> chain{cplx(1, 1), cplx(2, -1)};
  const cplx w = tw.at((3 % 4) << (4 - 2 - 1));
  const cplx t = w * chain[1];
  const cplx want_lo = chain[0] + t;
  const cplx want_hi = chain[0] - t;
  butterfly_chain(chain, 3, 4, 2, 1, 4, tw);
  EXPECT_NEAR(std::abs(chain[0] - want_lo), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(chain[1] - want_hi), 0.0, 1e-15);
}

// ---- Kernel dispatch matrix ----
//
// Every supported ISA level must produce (a) results bit-identical to the
// scalar table — the wide kernels execute one butterfly per lane in the
// scalar operation order, with FMA contraction disabled — and (b) results
// within the documented peak-ULP envelope of the f64 serial reference.
// The sweep covers both precisions and every N in 2^4..2^12, crossing
// every chain shape the codelet algebra produces at radix 64 (single
// whole-transform task, full stages, 1..5-level partial last stages).

/// Restores the process-default kernel ISA (and scrubs C64FFT_ISA) no
/// matter how a test exits, so ISA forcing never leaks across tests.
struct IsaGuard {
  ~IsaGuard() {
    unsetenv("C64FFT_ISA");
    kernels::reset_kernel_isa_from_env();
  }
};

constexpr double kF32SweepUlpTol = 24.0;  // matches test_ulp's pipeline tol
constexpr double kF64SweepUlpTol = 64.0;  // two f64 orderings vs each other

template <typename T>
std::vector<cplx_t<T>> codelet_transform(util::IsaLevel isa,
                                         const std::vector<cplx_t<T>>& input,
                                         unsigned radix_log2) {
  kernels::set_kernel_isa(isa);
  std::vector<cplx_t<T>> data = input;
  const FftPlan plan(data.size(), radix_log2);
  const BasicTwiddleTable<T> tw(data.size(), TwiddleLayout::kLinear);
  BasicKernelScratch<T> scratch(plan.radix());
  bit_reverse_permute(std::span<cplx_t<T>>(data));
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s)
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i)
      run_codelet(plan, s, i, std::span<cplx_t<T>>(data), tw, scratch);
  return data;
}

template <typename T>
void check_dispatch_matrix() {
  IsaGuard guard;
  util::Xoshiro256 rng(0x15A);
  for (unsigned logn = 4; logn <= 12; ++logn) {
    const std::uint64_t n = std::uint64_t{1} << logn;
    std::vector<cplx_t<T>> input(n);
    for (cplx_t<T>& v : input)
      v = cplx_t<T>(static_cast<T>(rng.next_double() * 2 - 1),
                    static_cast<T>(rng.next_double() * 2 - 1));
    // f64 reference spectrum for the accuracy envelope.
    std::vector<cplx> want(n);
    for (std::uint64_t i = 0; i < n; ++i)
      want[i] = cplx(static_cast<double>(input[i].real()),
                     static_cast<double>(input[i].imag()));
    fft_serial_inplace(want);

    const unsigned radix_log2 = std::min(6u, logn);
    const std::vector<cplx_t<T>> scalar =
        codelet_transform<T>(util::IsaLevel::kScalar, input, radix_log2);
    const double tol =
        std::is_same_v<T, float> ? kF32SweepUlpTol : kF64SweepUlpTol;
    EXPECT_LT(util::max_ulp_error<T>(scalar, want), tol)
        << "scalar n=" << n;

    for (const util::IsaLevel isa :
         {util::IsaLevel::kAvx2, util::IsaLevel::kAvx512}) {
      if (!util::isa_supported(isa)) continue;
      const std::vector<cplx_t<T>> wide =
          codelet_transform<T>(isa, input, radix_log2);
      ASSERT_EQ(kernels::active_kernel_isa(), isa);
      for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_EQ(wide[i].real(), scalar[i].real())
            << "isa=" << util::to_string(isa) << " n=" << n << " i=" << i;
        ASSERT_EQ(wide[i].imag(), scalar[i].imag())
            << "isa=" << util::to_string(isa) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(KernelDispatch, MatrixSweepF32BitIdenticalAcrossIsas) {
  check_dispatch_matrix<float>();
}

TEST(KernelDispatch, MatrixSweepF64BitIdenticalAcrossIsas) {
  check_dispatch_matrix<double>();
}

TEST(KernelDispatch, StockhamAndTransposeMatchScalarPerIsa) {
  // The dispatch table's other entries (stockham_combine, transpose_tile)
  // must also be bit-identical across levels.
  IsaGuard guard;
  const std::uint64_t n = 1ULL << 10;
  const auto input = random_signal(n, 0x57C);
  const std::uint64_t rows = 24, cols = 40;  // ragged: exercises tile edges
  const auto matrix = random_signal(rows * cols, 0x7A2);
  kernels::set_kernel_isa(util::IsaLevel::kScalar);
  const std::vector<cplx> want = fft_stockham(input);
  std::vector<cplx> want_t(rows * cols);
  transpose_blocked(matrix, want_t, rows, cols);
  for (const util::IsaLevel isa :
       {util::IsaLevel::kAvx2, util::IsaLevel::kAvx512}) {
    if (!util::isa_supported(isa)) continue;
    kernels::set_kernel_isa(isa);
    const std::vector<cplx> got = fft_stockham(input);
    ASSERT_EQ(max_abs_error(got, want), 0.0) << util::to_string(isa);
    std::vector<cplx> got_t(rows * cols);
    transpose_blocked(matrix, got_t, rows, cols);
    ASSERT_EQ(max_abs_error(got_t, want_t), 0.0) << util::to_string(isa);
  }
}

TEST(KernelDispatch, EnvForcedScalarFallback) {
  // C64FFT_ISA=scalar must drop the process to the portable table (the
  // narrow-only contract), and the forced run must bit-match an explicit
  // scalar run.
  IsaGuard guard;
  setenv("C64FFT_ISA", "scalar", 1);
  kernels::reset_kernel_isa_from_env();
  ASSERT_EQ(kernels::active_kernel_isa(), util::IsaLevel::kScalar);

  const std::uint64_t n = 1ULL << 11;
  auto input = random_signal(n, 0xE57);
  const std::vector<cplx> forced =
      codelet_transform<double>(util::IsaLevel::kScalar, input, 6);
  unsetenv("C64FFT_ISA");
  kernels::reset_kernel_isa_from_env();
  const std::vector<cplx> scalar =
      codelet_transform<double>(util::IsaLevel::kScalar, input, 6);
  ASSERT_EQ(max_abs_error(forced, scalar), 0.0);
}

TEST(KernelDispatch, EnvRequestsAboveSupportClampDown) {
  IsaGuard guard;
  setenv("C64FFT_ISA", "avx512", 1);
  kernels::reset_kernel_isa_from_env();
  EXPECT_LE(static_cast<int>(kernels::active_kernel_isa()),
            static_cast<int>(util::best_supported_isa()));
}

TEST(ButterflyChain, SplitMatchesComplexOnGenericChain) {
  // Exercise butterfly_chain_split directly, including a base/stride
  // combination where the twiddle progression wraps mod 2^L (c >= stride),
  // forcing the per-element fallback path.
  const std::uint64_t n = 1 << 10;
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  for (const auto& [base, stride] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0, 1}, {64, 1}, {3, 4}, {192, 8}, {7, 2}}) {
    const std::uint32_t levels = 5;
    const std::uint64_t len = 1u << levels;
    auto chain = random_signal(len, base * 131 + stride);
    std::vector<double> re(len), im(len), twr(len / 2), twi(len / 2);
    for (std::uint64_t q = 0; q < len; ++q) {
      re[q] = chain[q].real();
      im[q] = chain[q].imag();
    }
    butterfly_chain(chain, base, stride, 3, levels, 10, tw);
    butterfly_chain_split(re.data(), im.data(), len, base, stride, 3, levels, 10,
                          tw, twr.data(), twi.data());
    for (std::uint64_t q = 0; q < len; ++q) {
      EXPECT_EQ(re[q], chain[q].real()) << "base=" << base << " q=" << q;
      EXPECT_EQ(im[q], chain[q].imag()) << "base=" << base << " q=" << q;
    }
  }
}

}  // namespace
}  // namespace c64fft::fft
