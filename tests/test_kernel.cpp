#include "fft/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fft/bit_reversal.hpp"
#include "fft/reference.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

// Running every stage's codelets serially in natural order must equal the
// serial FFT — this validates gather/butterfly/twiddle/scatter in one go.
void check_stagewise(std::uint64_t n, unsigned radix_log2, TwiddleLayout layout) {
  auto data = random_signal(n, n ^ 0xABCD);
  auto want = data;
  fft_serial_inplace(want);

  const FftPlan plan(n, radix_log2);
  const TwiddleTable tw(n, layout);
  std::vector<cplx> scratch(plan.radix());
  bit_reverse_permute(data);
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s)
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i)
      run_codelet(plan, s, i, data, tw, scratch);
  ASSERT_LT(max_abs_error(data, want), 1e-9)
      << "n=" << n << " r=" << radix_log2;
}

TEST(Kernel, Radix64FullStages) { check_stagewise(1ULL << 12, 6, TwiddleLayout::kLinear); }

TEST(Kernel, Radix64PartialLastStage) {
  check_stagewise(1ULL << 13, 6, TwiddleLayout::kLinear);  // 1-level last stage
  check_stagewise(1ULL << 15, 6, TwiddleLayout::kLinear);  // 3-level last stage
  check_stagewise(1ULL << 17, 6, TwiddleLayout::kLinear);  // 5-level last stage
}

TEST(Kernel, HashedTwiddleLayoutGivesSameNumbers) {
  check_stagewise(1ULL << 12, 6, TwiddleLayout::kBitReversed);
  check_stagewise(1ULL << 15, 6, TwiddleLayout::kBitReversed);
}

TEST(Kernel, SmallerRadices) {
  check_stagewise(1ULL << 8, 3, TwiddleLayout::kLinear);
  check_stagewise(1ULL << 9, 3, TwiddleLayout::kLinear);
  check_stagewise(1ULL << 6, 2, TwiddleLayout::kLinear);
  check_stagewise(64, 1, TwiddleLayout::kLinear);
}

TEST(Kernel, Radix128) { check_stagewise(1ULL << 14, 7, TwiddleLayout::kLinear); }

TEST(Kernel, SingleTaskWholeTransform) {
  // N == R: one codelet is the whole FFT.
  const std::uint64_t n = 64;
  auto data = random_signal(n, 3);
  auto want = data;
  fft_serial_inplace(want);
  const FftPlan plan(n, 6);
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  std::vector<cplx> scratch(64);
  bit_reverse_permute(data);
  run_codelet(plan, 0, 0, data, tw, scratch);
  EXPECT_LT(max_abs_error(data, want), 1e-10);
}

TEST(Kernel, StageOrderWithinStageIsIrrelevant) {
  // Tasks of one stage touch disjoint data: any order gives the same
  // result (the freedom the fine-grain scheduler exploits).
  const std::uint64_t n = 1ULL << 12;
  auto a = random_signal(n, 17);
  auto b = a;
  const FftPlan plan(n, 6);
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  std::vector<cplx> scratch(plan.radix());
  bit_reverse_permute(a);
  bit_reverse_permute(b);
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s) {
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i)
      run_codelet(plan, s, i, a, tw, scratch);
    for (std::uint64_t i = plan.tasks_per_stage(); i-- > 0;)
      run_codelet(plan, s, i, b, tw, scratch);
  }
  EXPECT_EQ(max_abs_error(a, b), 0.0);  // bit-identical
}

TEST(ButterflyChain, SingleLevelMatchesDirectButterfly) {
  const std::uint64_t n = 16;
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  // Chain of 2 at base 3, stride 4, level 2 (global): lower element g=3.
  std::vector<cplx> chain{cplx(1, 1), cplx(2, -1)};
  const cplx w = tw.at((3 % 4) << (4 - 2 - 1));
  const cplx t = w * chain[1];
  const cplx want_lo = chain[0] + t;
  const cplx want_hi = chain[0] - t;
  butterfly_chain(chain, 3, 4, 2, 1, 4, tw);
  EXPECT_NEAR(std::abs(chain[0] - want_lo), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(chain[1] - want_hi), 0.0, 1e-15);
}

}  // namespace
}  // namespace c64fft::fft
