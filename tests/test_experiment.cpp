#include "simfft/experiment.hpp"

#include <gtest/gtest.h>

namespace c64fft::simfft {
namespace {

c64::ChipConfig cfg_with(unsigned tus) {
  c64::ChipConfig cfg;
  cfg.thread_units = tus;
  return cfg;
}

TEST(Experiment, GflopsFormula) {
  // 5 N log2 N flops; 2^15 in 1 ms -> 2.4576 GFLOPS.
  EXPECT_NEAR(fft_gflops(1ULL << 15, 1e-3), 5.0 * 32768 * 15 / 1e-3 / 1e9, 1e-9);
  EXPECT_EQ(fft_gflops(1ULL << 15, 0.0), 0.0);
}

TEST(Experiment, NamesMatchTableOne) {
  EXPECT_EQ(to_string(SimVariant::kCoarse), "coarse");
  EXPECT_EQ(to_string(SimVariant::kCoarseHash), "coarse hash");
  EXPECT_EQ(to_string(SimVariant::kFineWorst), "fine worst");
  EXPECT_EQ(to_string(SimVariant::kFineBest), "fine best");
  EXPECT_EQ(to_string(SimVariant::kFineHash), "fine hash");
  EXPECT_EQ(to_string(SimVariant::kFineGuided), "fine guided");
}

TEST(Experiment, RunsEveryVariant) {
  const auto cfg = cfg_with(16);
  const auto rows = run_all_variants(1ULL << 12, cfg);
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_GT(r.sim.cycles, 0u) << r.name;
    EXPECT_GT(r.gflops, 0.0) << r.name;
    EXPECT_EQ(r.sim.tasks_completed, (1ULL << 12) / 64 * 2) << r.name;
  }
}

TEST(Experiment, FineBestNoSlowerThanFineWorst) {
  const auto cfg = cfg_with(32);
  const auto best = run_fft_sim(SimVariant::kFineBest, 1ULL << 15, cfg);
  const auto worst = run_fft_sim(SimVariant::kFineWorst, 1ULL << 15, cfg);
  EXPECT_LE(best.sim.cycles, worst.sim.cycles);
  ASSERT_TRUE(best.ordering.has_value());
  ASSERT_TRUE(worst.ordering.has_value());
}

TEST(Experiment, TraceIsPopulatedWhenRequested) {
  const auto cfg = cfg_with(16);
  c64::BankTrace trace(cfg.dram_banks, 10'000);
  const auto r = run_fft_sim(SimVariant::kCoarse, 1ULL << 12, cfg, {}, &trace);
  EXPECT_GT(trace.windows(), 0u);
  // Total accesses = loads+stores elements = tasks * 191 elements (full
  // stages of a 2^12 plan).
  std::uint64_t total = 0;
  for (auto t : trace.totals()) total += t;
  EXPECT_EQ(total, r.sim.bytes / 16);
}

TEST(Experiment, BankTotalsExposeTheHotspot) {
  const auto cfg = cfg_with(16);
  const auto coarse = run_fft_sim(SimVariant::kCoarse, 1ULL << 12, cfg);
  ASSERT_EQ(coarse.bank_totals.size(), 4u);
  EXPECT_GT(coarse.bank_totals[0], coarse.bank_totals[1]);
  const auto hash = run_fft_sim(SimVariant::kCoarseHash, 1ULL << 12, cfg);
  const double hot = static_cast<double>(hash.bank_totals[0]);
  const double other = static_cast<double>(hash.bank_totals[1]);
  EXPECT_LT(hot / other, 1.3);
}

TEST(Experiment, CustomOrderingIsHonoured) {
  const auto cfg = cfg_with(8);
  SimFftOptions opts;
  opts.ordering = {codelet::PoolPolicy::kFifo, fft::SeedOrder::kReverse, 3};
  const auto r = run_fft_sim(SimVariant::kFineCustom, 1ULL << 12, cfg, opts);
  ASSERT_TRUE(r.ordering.has_value());
  EXPECT_EQ(r.ordering->order, fft::SeedOrder::kReverse);
  EXPECT_GT(r.sim.cycles, 0u);
}

}  // namespace
}  // namespace c64fft::simfft
