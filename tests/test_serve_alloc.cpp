// The zero-allocation serving contract, measured: this binary implements
// the serve/alloc_probe.hpp operator-new replacement (its OWN global
// new/delete — which is why it is a separate test binary), warms a
// server, then counts every heap allocation across a steady-state
// submit→complete loop. The client thread's counter covers
// submit()/Ticket::wait(); the ServerOptions::alloc_probe hook has the
// dispatcher split its thread's count into executor-internal work and
// the serving layer's own drain/group/complete path. Steady state, both
// must hold: client-side delta 0, serving-layer delta 0.

#define C64FFT_ALLOC_PROBE_IMPLEMENT
#include "serve/alloc_probe.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "util/prng.hpp"

namespace c64fft::serve {
namespace {

std::vector<fft::cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<fft::cplx> v(n);
  for (auto& x : v)
    x = fft::cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

TEST(ServeAllocProbe, CountsThisThreadsAllocations) {
  const std::uint64_t before = thread_alloc_count();
  auto* p = new int(7);
  const std::uint64_t after = thread_alloc_count();
  delete p;
  EXPECT_GT(after, before);  // the probe really is this binary's new
}

TEST(ServeAllocProbe, SteadyStateSubmitCompletePathIsAllocationFree) {
  ServerOptions so;
  so.alloc_probe = &thread_alloc_count;
  FftServer server(so);
  TenantQuota quota;
  quota.max_plan_shapes = 4;
  const TenantId t = server.add_tenant(quota);

  constexpr std::uint64_t kN = 256;
  auto data = random_signal(kN, 42);
  const std::span<fft::cplx> span(data);

  // Warmup: first submissions build the plan (trig tables, bitrev
  // tables — and, first time each DIRECTION runs, the conjugated
  // twiddles of the inverse path) and fault in any lazy runtime state.
  // Allocations here are expected and not the contract.
  for (int i = 0; i < 16; ++i) {
    auto s = server.submit(t, span,
                           i % 2 == 0 ? Direction::kForward
                                      : Direction::kInverse);
    ASSERT_EQ(s.status, SubmitStatus::kAccepted);
    ASSERT_EQ(s.ticket.wait().status, RequestStatus::kOk);
  }

  const ServerStats warm = server.stats();
  const std::uint64_t client_before = thread_alloc_count();
  std::uint64_t client_after = client_before;
  for (int i = 0; i < 100; ++i) {
    auto s = server.submit(t, span,
                           i % 2 == 0 ? Direction::kForward
                                      : Direction::kInverse);
    if (s.status != SubmitStatus::kAccepted) break;  // assert after loop
    if (s.ticket.wait().status != RequestStatus::kOk) break;
    client_after = thread_alloc_count();
  }
  // Assertions AFTER the measured loop: gtest machinery allocates.
  const ServerStats steady = server.stats();
  EXPECT_EQ(client_after - client_before, 0u)
      << "submit()/Ticket::wait() allocated on the client thread";
  EXPECT_EQ(steady.dispatch_allocs - warm.dispatch_allocs, 0u)
      << "the dispatcher's drain/group/complete path allocated";
  // workers=1 rides the executor's serial fast path, whose steady state
  // (cached plan, cached bitrev table, no team) is also allocation-free.
  EXPECT_EQ(steady.executor_allocs - warm.executor_allocs, 0u)
      << "the executor allocated on a cache-hit serial transform";
  EXPECT_EQ(steady.completed - warm.completed, 100u);
}

// Self-resubmitting completion chain for the callback-mode test below
// (namespace scope: the callback must name itself to re-arm).
struct ChainCtx {
  FftServer* server = nullptr;
  TenantId tenant = 0;
  std::span<fft::cplx> span;
  std::atomic<int> remaining{0};
  std::atomic<int> errors{0};
};

void chain_on_done(void* p, const Completion& done) {
  auto* c = static_cast<ChainCtx*>(p);
  if (done.status != RequestStatus::kOk) c->errors.fetch_add(1);
  if (c->remaining.fetch_sub(1, std::memory_order_acq_rel) <= 1) return;
  c->server->submit(c->tenant, c->span, Direction::kForward, Lane::kNormal,
                    &chain_on_done, p);
}

TEST(ServeAllocProbe, CallbackResubmitLoopIsAllocationFree) {
  // The async serving shape tools/fft_loadgen drives: completions
  // resubmit from the dispatcher thread, so the ENTIRE steady-state
  // cycle (complete → callback → submit → drain → execute) runs on one
  // thread under the serving layer's allocation accounting.
  ServerOptions so;
  so.alloc_probe = &thread_alloc_count;
  FftServer server(so);
  const TenantId t = server.add_tenant({});

  constexpr std::uint64_t kN = 128;
  auto data = random_signal(kN, 7);

  ChainCtx ctx;
  ctx.server = &server;
  ctx.tenant = t;
  ctx.span = std::span<fft::cplx>(data);

  // Warmup round trip, then measure a 200-cycle self-sustaining chain.
  ctx.remaining.store(8);
  ASSERT_EQ(server
                .submit(t, ctx.span, Direction::kForward, Lane::kNormal,
                        &chain_on_done, &ctx)
                .status,
            SubmitStatus::kAccepted);
  while (ctx.remaining.load(std::memory_order_acquire) > 0)
    std::this_thread::yield();

  const ServerStats warm = server.stats();
  ctx.remaining.store(200);
  ASSERT_EQ(server
                .submit(t, ctx.span, Direction::kForward, Lane::kNormal,
                        &chain_on_done, &ctx)
                .status,
            SubmitStatus::kAccepted);
  while (ctx.remaining.load(std::memory_order_acquire) > 0)
    std::this_thread::yield();
  const ServerStats steady = server.stats();

  EXPECT_EQ(ctx.errors.load(), 0);
  EXPECT_EQ(steady.dispatch_allocs - warm.dispatch_allocs, 0u)
      << "callback-resubmit steady state allocated in the serving layer";
  EXPECT_EQ(steady.completed - warm.completed, 200u);
}

}  // namespace
}  // namespace c64fft::serve
