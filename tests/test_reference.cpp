#include "fft/reference.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

TEST(Reference, DftOfImpulseIsFlat) {
  std::vector<cplx> x(8, cplx{0, 0});
  x[0] = cplx(1, 0);
  const auto X = dft_reference(x);
  for (const auto& v : X) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Reference, DftOfConstantIsImpulse) {
  std::vector<cplx> x(16, cplx{1, 0});
  const auto X = dft_reference(x);
  EXPECT_NEAR(X[0].real(), 16.0, 1e-10);
  for (std::size_t k = 1; k < 16; ++k) EXPECT_NEAR(std::abs(X[k]), 0.0, 1e-10);
}

TEST(Reference, DftOfPureToneIsSingleBin) {
  const std::size_t n = 32, tone = 5;
  std::vector<cplx> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double a = 2.0 * std::numbers::pi * static_cast<double>(tone * j) / n;
    x[j] = cplx(std::cos(a), std::sin(a));
  }
  const auto X = dft_reference(x);
  EXPECT_NEAR(std::abs(X[tone]), static_cast<double>(n), 1e-9);
  for (std::size_t k = 0; k < n; ++k)
    if (k != tone) EXPECT_NEAR(std::abs(X[k]), 0.0, 1e-9) << k;
}

TEST(Reference, RecursiveMatchesDft) {
  for (std::uint64_t n : {2ULL, 8ULL, 64ULL, 256ULL}) {
    const auto x = random_signal(n, n);
    const auto want = dft_reference(x);
    const auto got = fft_recursive(x);
    EXPECT_LT(max_abs_error(got, want), 1e-9) << n;
  }
}

TEST(Reference, SerialInplaceMatchesDft) {
  for (std::uint64_t n : {2ULL, 4ULL, 32ULL, 128ULL, 1024ULL}) {
    auto x = random_signal(n, n + 1);
    const auto want = dft_reference(x);
    fft_serial_inplace(x);
    EXPECT_LT(max_abs_error(x, want), 1e-8) << n;
  }
}

TEST(Reference, RecursiveRejectsNonPow2) {
  EXPECT_THROW(fft_recursive(std::vector<cplx>(3)), std::invalid_argument);
}

TEST(Reference, ForwardInverseRoundTrip) {
  const auto x = random_signal(512, 7);
  auto y = x;
  fft_serial_inplace(y);
  const auto back = ifft_reference(y);
  EXPECT_LT(max_abs_error(back, x), 1e-10);
}

TEST(Reference, ParsevalHolds) {
  const auto x = random_signal(256, 9);
  auto X = x;
  fft_serial_inplace(X);
  double time_energy = 0, freq_energy = 0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : X) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 256.0, time_energy, 1e-8);
}

TEST(Reference, LinearityHolds) {
  const auto a = random_signal(128, 1);
  const auto b = random_signal(128, 2);
  std::vector<cplx> sum(128);
  for (int i = 0; i < 128; ++i) sum[i] = a[i] + 2.0 * b[i];
  auto fa = a, fb = b, fs = sum;
  fft_serial_inplace(fa);
  fft_serial_inplace(fb);
  fft_serial_inplace(fs);
  for (int i = 0; i < 128; ++i)
    EXPECT_NEAR(std::abs(fs[i] - (fa[i] + 2.0 * fb[i])), 0.0, 1e-9);
}

TEST(Reference, ErrorMetrics) {
  std::vector<cplx> a{cplx(1, 0), cplx(0, 0)};
  std::vector<cplx> b{cplx(1, 0), cplx(0, 1)};
  EXPECT_DOUBLE_EQ(max_abs_error(a, a), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_error(a, b), 1.0);
  EXPECT_TRUE(std::isinf(max_abs_error(a, std::vector<cplx>(3))));
  EXPECT_NEAR(rel_l2_error(a, b), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(rel_l2_error(b, b), 0.0);
}

}  // namespace
}  // namespace c64fft::fft
