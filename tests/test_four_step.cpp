// Four-step large-N path (PlanKind::kFourStep): split algebra, cache
// wiring, numerical equivalence with the classic monolithic plan at
// N in {2^14, 2^16, 2^18} (forward, inverse, round-trip, batch, every
// scheduling variant), and the executor's threshold routing. Registered
// under the `large_n` ctest label:
//     ctest -L large_n --output-on-failure

#include <gtest/gtest.h>

#include <vector>

#include "fft/executor.hpp"
#include "fft/plan_cache.hpp"
#include "fft/reference.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_signal(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

ExecutorOptions classic_opts() {
  ExecutorOptions o;
  o.workers = 2;
  o.four_step_threshold_log2 = 0;  // never route four-step
  return o;
}

ExecutorOptions four_step_opts() {
  ExecutorOptions o;
  o.workers = 2;
  o.four_step_threshold_log2 = 2;  // always route four-step
  return o;
}

TEST(FourStepSplitAlgebra, BalancedPowerOfTwoSplit) {
  EXPECT_EQ(four_step_split(1ULL << 14).n1, 128u);
  EXPECT_EQ(four_step_split(1ULL << 14).n2, 128u);
  EXPECT_EQ(four_step_split(1ULL << 16).n1, 256u);
  EXPECT_EQ(four_step_split(1ULL << 18).n2, 512u);
  // Odd log2: n1 = 2^floor(log2/2) < n2, product preserved.
  const FourStepSplit odd = four_step_split(1ULL << 13);
  EXPECT_EQ(odd.n1, 64u);
  EXPECT_EQ(odd.n2, 128u);
  EXPECT_EQ(four_step_split(4).n1 * four_step_split(4).n2, 4u);
  EXPECT_THROW(four_step_split(2), std::invalid_argument);
  EXPECT_THROW(four_step_split(96), std::invalid_argument);
}

TEST(FourStepPlanCache, EntryPinsClassicSubEntries) {
  PlanCache cache(8);
  const PlanKey key{1ULL << 13, 6, TwiddleLayout::kLinear, PlanKind::kFourStep};
  auto entry = cache.acquire(key);
  ASSERT_EQ(entry->kind(), PlanKind::kFourStep);
  EXPECT_EQ(entry->split().n1, 64u);
  EXPECT_EQ(entry->split().n2, 128u);
  EXPECT_EQ(entry->col_entry()->key().n, 64u);
  EXPECT_EQ(entry->row_entry()->key().n, 128u);
  EXPECT_EQ(entry->col_entry()->kind(), PlanKind::kClassic);
  // Classic-only accessors are fenced off on the four-step entry...
  EXPECT_THROW(entry->plan(), std::logic_error);
  EXPECT_THROW(entry->twiddles(TwiddleDirection::kForward), std::logic_error);
  // ...and vice versa.
  EXPECT_THROW(entry->col_entry()->split(), std::logic_error);
  // The classic sub-entries are ordinary cache residents, shared with a
  // direct acquire of the same shape.
  auto direct = cache.acquire(PlanKey{64, 6, TwiddleLayout::kLinear});
  EXPECT_EQ(direct.get(), entry->col_entry().get());
  // A square split shares one sub-entry for both dimensions.
  auto square = cache.acquire(
      PlanKey{1ULL << 14, 6, TwiddleLayout::kLinear, PlanKind::kFourStep});
  EXPECT_EQ(square->col_entry().get(), square->row_entry().get());
}

TEST(FourStep, ForwardMatchesClassicLargeN) {
  for (unsigned logn : {14u, 16u, 18u}) {
    const std::uint64_t n = 1ULL << logn;
    const auto input = random_signal(n, logn);
    FftExecutor classic(classic_opts());
    FftExecutor four(four_step_opts());

    auto want = input;
    classic.forward(want);
    auto got = input;
    four.forward(got);

    EXPECT_EQ(four.stats().four_step, 1u);
    EXPECT_EQ(classic.stats().four_step, 0u);
    // Output magnitudes grow like sqrt(N); compare relative to that scale.
    EXPECT_LT(rel_l2_error(got, want), 1e-12) << "n=" << n;
    EXPECT_LT(max_abs_error(got, want), 1e-8) << "n=" << n;
  }
}

TEST(FourStep, InverseAndRoundTripLargeN) {
  for (unsigned logn : {14u, 16u, 18u}) {
    const std::uint64_t n = 1ULL << logn;
    const auto input = random_signal(n, 100 + logn);
    FftExecutor classic(classic_opts());
    FftExecutor four(four_step_opts());

    // Inverse parity: both paths invert the same spectrum.
    auto spectrum = input;
    classic.forward(spectrum);
    auto want = spectrum;
    classic.inverse(want);
    auto got = spectrum;
    four.inverse(got);
    EXPECT_LT(max_abs_error(got, want), 1e-10) << "n=" << n;

    // Round trip entirely on the four-step path recovers the input (the
    // single 1/N normalization lives in the public inverse wrapper).
    auto rt = input;
    four.forward(rt);
    four.inverse(rt);
    EXPECT_LT(max_abs_error(rt, input), 1e-10) << "n=" << n;
  }
}

TEST(FourStep, MatchesReferenceDft) {
  // Direct O(N^2) cross-check at a size where that is still affordable.
  const std::uint64_t n = 1ULL << 12;
  const auto input = random_signal(n, 5);
  FftExecutor four(four_step_opts());
  auto got = input;
  four.forward(got);
  const auto want = dft_reference(input);
  EXPECT_LT(rel_l2_error(got, want), 1e-12);
}

TEST(FourStep, BatchMatchesSingles) {
  const std::uint64_t n = 1ULL << 14;
  const std::size_t b = 3;
  std::vector<std::vector<cplx>> singles, batch;
  for (std::size_t i = 0; i < b; ++i) {
    singles.push_back(random_signal(n, 200 + i));
    batch.push_back(singles.back());
  }
  FftExecutor four(four_step_opts());
  for (auto& t : singles) four.forward(t);
  std::vector<std::span<cplx>> spans;
  for (auto& t : batch) spans.emplace_back(t);
  four.forward_batch(spans);
  EXPECT_EQ(four.stats().four_step, b + 3);  // 3 singles + 3 batched
  for (std::size_t i = 0; i < b; ++i)
    EXPECT_EQ(batch[i], singles[i]) << i;  // same dispatch, bit-identical
}

TEST(FourStep, AllVariantsAgree) {
  const std::uint64_t n = 1ULL << 14;
  const auto input = random_signal(n, 9);
  FftExecutor classic(classic_opts());
  auto want = input;
  classic.forward(want);
  for (Variant v : {Variant::kCoarse, Variant::kFine, Variant::kGuided}) {
    FftExecutor four(four_step_opts());
    auto got = input;
    HostFftOptions opts;
    opts.workers = 2;
    four.forward(got, opts, v);
    EXPECT_LT(rel_l2_error(got, want), 1e-12) << static_cast<int>(v);
  }
}

TEST(FourStep, ThresholdRoutesOnlyLargeTransforms) {
  ExecutorOptions o;
  o.workers = 2;
  o.four_step_threshold_log2 = 12;
  FftExecutor ex(o);
  auto small = random_signal(1ULL << 10, 1);
  auto large = random_signal(1ULL << 12, 2);
  ex.forward(small);
  EXPECT_EQ(ex.stats().four_step, 0u);
  ex.forward(large);
  EXPECT_EQ(ex.stats().four_step, 1u);

  // Threshold changes apply to the next transform; 0 disables routing.
  ex.set_four_step_threshold_log2(0);
  EXPECT_EQ(ex.four_step_threshold_log2(), 0u);
  ex.forward(large);
  EXPECT_EQ(ex.stats().four_step, 1u);
}

}  // namespace
}  // namespace c64fft::fft
