// Randomized stress tests of the discrete-event engine against analytic
// bounds: for arbitrary task soups, the makespan must respect compute and
// bank-occupancy lower bounds, stay deterministic, and account every
// request exactly once.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "c64/engine.hpp"
#include "util/prng.hpp"

namespace c64fft::c64 {
namespace {

class SoupProgram : public SimProgram {
 public:
  explicit SoupProgram(std::vector<TaskSpec> tasks) : tasks_(std::move(tasks)) {}
  PopResult next_task(unsigned, std::uint64_t, TaskSpec& out, std::uint64_t&) override {
    if (next_ >= tasks_.size())
      return done_ == tasks_.size() ? PopResult::kFinished : PopResult::kIdle;
    out = tasks_[next_++];
    return PopResult::kTask;
  }
  void task_done(unsigned, std::uint64_t, std::uint64_t) override { ++done_; }
  bool finished() const override { return done_ == tasks_.size(); }

 private:
  std::vector<TaskSpec> tasks_;
  std::size_t next_ = 0;
  std::size_t done_ = 0;
};

std::vector<TaskSpec> random_soup(std::uint64_t seed, std::size_t count) {
  util::Xoshiro256 rng(seed);
  std::vector<TaskSpec> tasks(count);
  for (std::size_t i = 0; i < count; ++i) {
    TaskSpec& t = tasks[i];
    t.task_id = i;
    t.compute_cycles = rng.next_below(500);
    t.start_overhead_cycles = static_cast<std::uint32_t>(rng.next_below(40));
    t.finish_overhead_cycles = static_cast<std::uint32_t>(rng.next_below(40));
    const auto loads = 1 + rng.next_below(12);
    const auto stores = rng.next_below(6);
    for (std::uint64_t r = 0; r < loads + stores; ++r) {
      MemRequest req;
      req.bank = static_cast<std::uint16_t>(rng.next_below(4));
      req.bytes = static_cast<std::uint32_t>(16 * (1 + rng.next_below(4)));
      req.pre_issue_cycles = static_cast<std::uint16_t>(rng.next_below(8));
      t.requests.push_back(req);
    }
    t.first_store = static_cast<std::uint32_t>(loads);
  }
  return tasks;
}

class EngineStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineStress, RespectsAnalyticBounds) {
  const auto tasks = random_soup(GetParam(), 300);
  ChipConfig cfg;
  cfg.thread_units = 16;

  // Analytic lower bounds.
  std::vector<double> bank_occ(4, 0.0);
  std::uint64_t total_bytes = 0, total_requests = 0;
  double max_task_chain = 0.0;
  for (const auto& t : tasks) {
    double chain = static_cast<double>(t.compute_cycles) + t.start_overhead_cycles +
                   t.finish_overhead_cycles;
    for (const auto& r : t.requests) {
      bank_occ[r.bank] += std::ceil(r.bytes / cfg.bank_bytes_per_cycle);
      total_bytes += r.bytes;
      ++total_requests;
      chain += cfg.issue_cycles + r.pre_issue_cycles;  // serial with outstanding=1
    }
    max_task_chain = std::max(max_task_chain, chain);
  }

  SoupProgram prog(tasks);
  const SimResult r = SimEngine(cfg, prog).run();

  EXPECT_EQ(r.tasks_completed, tasks.size());
  EXPECT_EQ(r.bytes, total_bytes);
  EXPECT_EQ(r.requests, total_requests);
  for (unsigned b = 0; b < 4; ++b)
    EXPECT_EQ(static_cast<double>(r.bank_busy_cycles[b]), bank_occ[b]) << b;
  // Makespan lower bounds: busiest bank; longest single task chain.
  for (unsigned b = 0; b < 4; ++b)
    EXPECT_GE(static_cast<double>(r.cycles), bank_occ[b]);
  EXPECT_GE(static_cast<double>(r.cycles), max_task_chain);
  // Sanity upper bound: fully serialised execution.
  double serial = 0;
  for (const auto& t : tasks) {
    serial += static_cast<double>(t.compute_cycles) + t.start_overhead_cycles +
              t.finish_overhead_cycles;
    for (const auto& req : t.requests)
      serial += cfg.issue_cycles + req.pre_issue_cycles + cfg.dram_latency +
                std::ceil(req.bytes / cfg.bank_bytes_per_cycle);
  }
  EXPECT_LE(static_cast<double>(r.cycles), serial);
}

TEST_P(EngineStress, DeterministicAndTuCountMonotoneish) {
  const auto tasks = random_soup(GetParam() ^ 0xBEEF, 200);
  ChipConfig cfg;
  cfg.thread_units = 8;
  SoupProgram p1(tasks), p2(tasks);
  const auto a = SimEngine(cfg, p1).run();
  const auto b = SimEngine(cfg, p2).run();
  EXPECT_EQ(a.cycles, b.cycles);

  // 4x the TUs: independent tasks, so the makespan must improve a lot.
  cfg.thread_units = 32;
  SoupProgram p3(tasks);
  const auto wide = SimEngine(cfg, p3).run();
  EXPECT_LT(static_cast<double>(wide.cycles), 0.6 * static_cast<double>(a.cycles));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStress, ::testing::Values(1, 2, 3, 42, 1234));

TEST(EngineStress, ZeroByteRequestRejectedGracefully) {
  // A zero-byte request would alias the internal tombstone encoding; the
  // footprint layer never produces one, and the engine treats it as an
  // immediately-complete no-op if it ever appears.
  TaskSpec t;
  t.compute_cycles = 10;
  ChipConfig cfg;
  cfg.thread_units = 1;
  SoupProgram prog({t});
  const auto r = SimEngine(cfg, prog).run();
  EXPECT_EQ(r.tasks_completed, 1u);
}

}  // namespace
}  // namespace c64fft::c64
