#include "fft/fft2d.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "fft/reference.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {
namespace {

std::vector<cplx> random_matrix(std::uint64_t rows, std::uint64_t cols,
                                std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<cplx> v(rows * cols);
  for (auto& x : v) x = cplx(rng.next_double() * 2 - 1, rng.next_double() * 2 - 1);
  return v;
}

// Reference 2-D DFT by definition (O(n^4), tiny sizes only).
std::vector<cplx> dft2d(const std::vector<cplx>& x, std::uint64_t rows,
                        std::uint64_t cols) {
  std::vector<cplx> out(rows * cols);
  for (std::uint64_t kr = 0; kr < rows; ++kr)
    for (std::uint64_t kc = 0; kc < cols; ++kc) {
      cplx acc{0, 0};
      for (std::uint64_t r = 0; r < rows; ++r)
        for (std::uint64_t c = 0; c < cols; ++c) {
          const double ang = -2.0 * std::numbers::pi *
                             (static_cast<double>(kr * r) / rows +
                              static_cast<double>(kc * c) / cols);
          acc += x[r * cols + c] * cplx(std::cos(ang), std::sin(ang));
        }
      out[kr * cols + kc] = acc;
    }
  return out;
}

TEST(Fft2d, MatchesDirect2dDft) {
  const std::uint64_t rows = 8, cols = 16;
  auto m = random_matrix(rows, cols, 1);
  const auto want = dft2d(m, rows, cols);
  forward_2d(m, rows, cols);
  EXPECT_LT(max_abs_error(m, want), 1e-9);
}

TEST(Fft2d, SquareMatrix) {
  const std::uint64_t n = 16;
  auto m = random_matrix(n, n, 2);
  const auto want = dft2d(m, n, n);
  forward_2d(m, n, n);
  EXPECT_LT(max_abs_error(m, want), 1e-9);
}

TEST(Fft2d, RoundTrip) {
  const std::uint64_t rows = 32, cols = 64;
  const auto input = random_matrix(rows, cols, 3);
  auto m = input;
  HostFftOptions opts;
  opts.workers = 4;
  forward_2d(m, rows, cols, opts);
  inverse_2d(m, rows, cols, opts);
  EXPECT_LT(max_abs_error(m, input), 1e-10);
}

TEST(Fft2d, ConstantImageIsDcOnly) {
  const std::uint64_t n = 8;
  std::vector<cplx> m(n * n, cplx{1, 0});
  forward_2d(m, n, n);
  EXPECT_NEAR(m[0].real(), static_cast<double>(n * n), 1e-9);
  for (std::size_t i = 1; i < m.size(); ++i) EXPECT_NEAR(std::abs(m[i]), 0.0, 1e-9);
}

TEST(Fft2d, RejectsBadDims) {
  std::vector<cplx> m(12);
  EXPECT_THROW(forward_2d(m, 3, 4, {}), std::invalid_argument);
  std::vector<cplx> m2(16);
  EXPECT_THROW(forward_2d(m2, 2, 4, {}), std::invalid_argument);  // size mismatch
  std::vector<cplx> m3(8);
  EXPECT_THROW(forward_2d(m3, 1, 8, {}), std::invalid_argument);  // dim < 2
}

TEST(Fft2d, WorkerCountDoesNotChangeResult) {
  const std::uint64_t rows = 16, cols = 16;
  const auto input = random_matrix(rows, cols, 4);
  auto a = input, b = input;
  HostFftOptions one;
  one.workers = 1;
  HostFftOptions four;
  four.workers = 4;
  forward_2d(a, rows, cols, one);
  forward_2d(b, rows, cols, four);
  EXPECT_EQ(max_abs_error(a, b), 0.0);
}

}  // namespace
}  // namespace c64fft::fft
