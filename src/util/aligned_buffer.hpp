#pragma once
// Cache-line / SIMD aligned owning buffer. FFT working arrays use this so
// the host kernels never straddle allocator-dependent alignments and so the
// simulated address map can assume a deterministic base alignment.

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <utility>

namespace c64fft::util {

/// Default buffer alignment: one full cache line, which is also the width
/// of one AVX-512 register. Kernel working tiles allocated at this
/// alignment guarantee that no aligned 512-bit (or narrower) SIMD load of
/// a tile row is ever split across two cache lines.
inline constexpr std::size_t kSimdAlignment = 64;

template <typename T, std::size_t Alignment = kSimdAlignment>
class AlignedBuffer {
  static_assert(Alignment >= alignof(T));
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");
  static_assert(Alignment >= kSimdAlignment,
                "kernel buffers must be at least one cache line aligned so "
                "AVX-512 loads never straddle two lines");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    void* p = ::operator new[](count * sizeof(T), std::align_val_t{Alignment});
    data_ = static_cast<T*>(p);
    for (std::size_t i = 0; i < count; ++i) new (data_ + i) T();
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      destroy();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { destroy(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  std::span<T> span() noexcept { return {data_, size_}; }
  std::span<const T> span() const noexcept { return {data_, size_}; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  void destroy() noexcept {
    if (!data_) return;
    for (std::size_t i = size_; i-- > 0;) data_[i].~T();
    ::operator delete[](data_, std::align_val_t{Alignment});
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace c64fft::util
