#pragma once
// Minimal command-line option parser for the bench and example binaries.
// Supports `--key=value`, `--key value`, and boolean `--flag`. Unknown
// options raise; `--help` prints the registered option set.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace c64fft::util {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Register options before parse(). `doc` shows up in --help output.
  void add_flag(const std::string& name, const std::string& doc);
  void add_int(const std::string& name, std::int64_t default_value, const std::string& doc);
  void add_double(const std::string& name, double default_value, const std::string& doc);
  void add_string(const std::string& name, std::string default_value, const std::string& doc);

  /// Parse argv. Returns false if --help was requested (help already
  /// printed to stdout); throws std::invalid_argument on bad input.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

  std::string help() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind = Kind::kFlag;
    std::string doc;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  const Option& require(const std::string& name, Kind kind) const;
  void set_value(Option& opt, const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace c64fft::util
