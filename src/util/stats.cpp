#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace c64fft::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double s = 0.0;
  for (double x : sample) s += x;
  return s / static_cast<double>(sample.size());
}

double imbalance_ratio(std::span<const double> sample) {
  const double m = mean(sample);
  if (m <= 0.0) return 1.0;
  double mx = sample[0];
  for (double x : sample) mx = std::max(mx, x);
  return mx / m;
}

double geomean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : sample) logsum += std::log(x);
  return std::exp(logsum / static_cast<double>(sample.size()));
}

}  // namespace c64fft::util
