#pragma once
// Compare two google-benchmark JSON reports (--benchmark_out=json) and
// flag per-benchmark regressions beyond a relative tolerance. This is the
// engine behind tools/bench_check — the perf-regression gate that diffs a
// fresh micro_kernels run against the committed BENCH_baseline.json.
//
// Matching is by benchmark "name" (which already encodes Args, e.g.
// "BM_RunCodelet/6"). Aggregate rows emitted by --benchmark_repetitions
// ("run_type": "aggregate") other than the mean are ignored so medians /
// stddevs don't double-count.

#include <span>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace c64fft::util {

struct BenchDiffOptions {
  /// Which per-benchmark field to compare. Time-like metrics ("cpu_time",
  /// "real_time") regress upward; rate-like metrics ("items_per_second",
  /// "bytes_per_second") regress downward.
  std::string metric = "cpu_time";
  /// Allowed relative slowdown before a benchmark counts as regressed
  /// (0.30 = current may be up to 30% worse than baseline). Generous by
  /// default: CI machines are noisy, and the gate is for order-of-magnitude
  /// mistakes (lost vectorization, accidental lock convoy), not 5% drift.
  double tolerance = 0.30;
  /// When true, a baseline benchmark missing from the current report is a
  /// failure (benchmarks silently disappearing hides regressions).
  bool require_all_baseline = true;
  /// ECMAScript regexes scoping the diff by benchmark name (searched, not
  /// anchored — anchor explicitly with ^). Empty = no constraint. They
  /// exist so ONE committed baseline file can hold rows produced by
  /// different binaries (micro_kernels "BM_*" rows next to fft_loadgen
  /// "LG_*" rows) while each gate diffs only the rows its own run
  /// regenerated — without them, require_all_baseline would fail every
  /// gate on the other binary's rows.
  std::string filter;   ///< keep only names matching this
  std::string exclude;  ///< then drop names matching this
};

struct BenchDelta {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  /// current/baseline for time metrics, baseline/current for rate metrics:
  /// > 1 always means "worse".
  double worse_ratio = 0.0;
  bool regressed = false;
  /// Present in baseline but absent from the current report.
  bool missing = false;
};

/// True for metrics where larger is better (throughput rates).
bool metric_is_rate(const std::string& metric);

/// Diff two parsed reports. Throws JsonParseError when either document
/// lacks the google-benchmark "benchmarks" array or a row lacks `metric`,
/// std::regex_error on a malformed filter/exclude. Benchmarks only
/// present in `current` are ignored (new benches are not regressions);
/// baseline rows outside filter/exclude are ignored entirely (neither
/// compared nor reported missing).
std::vector<BenchDelta> diff_benchmarks(const JsonValue& baseline,
                                        const JsonValue& current,
                                        const BenchDiffOptions& opts = {});

/// Any regressed or (per options) missing entries?
bool has_regression(std::span<const BenchDelta> deltas);

/// Human-readable table of the diff, one line per benchmark, regressions
/// marked. Ends with a PASS/FAIL summary line.
std::string format_bench_report(std::span<const BenchDelta> deltas,
                                const BenchDiffOptions& opts);

/// The `metric` value of the named benchmark row in one report (raw rows,
/// so aggregate rows are addressable by their full ".../real_time_median"
/// names). Throws JsonParseError when the report has no such row — the
/// engine behind bench_check's cross-row --ratio-min gate (e.g.
/// "forced-scalar time / SIMD time must stay >= 1.3x").
double benchmark_metric(const JsonValue& report, const std::string& name,
                        const std::string& metric = "real_time");

/// The minimum `metric` over every non-aggregate row with this name — in
/// a --benchmark_repetitions run each repetition is its own row under the
/// shared name. The minimum over interleaved repetitions estimates each
/// row's *uncontended* runtime, which is what a code-speedup gate asserts:
/// noisy-neighbor interference only ever adds time, and a spike would have
/// to hit all repetitions of one row but none of the other to bias the
/// ratio. Throws JsonParseError when no such row exists.
double benchmark_metric_min(const JsonValue& report, const std::string& name,
                            const std::string& metric = "real_time");

}  // namespace c64fft::util
