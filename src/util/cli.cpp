#include "util/cli.hpp"

#include <iostream>
#include <sstream>
#include <stdexcept>

namespace c64fft::util {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name, const std::string& doc) {
  Option o;
  o.kind = Kind::kFlag;
  o.doc = doc;
  options_[name] = std::move(o);
}
void CliParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& doc) {
  Option o;
  o.kind = Kind::kInt;
  o.doc = doc;
  o.int_value = default_value;
  options_[name] = std::move(o);
}
void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& doc) {
  Option o;
  o.kind = Kind::kDouble;
  o.doc = doc;
  o.double_value = default_value;
  options_[name] = std::move(o);
}
void CliParser::add_string(const std::string& name, std::string default_value,
                           const std::string& doc) {
  Option o;
  o.kind = Kind::kString;
  o.doc = doc;
  o.string_value = std::move(default_value);
  options_[name] = std::move(o);
}

void CliParser::set_value(Option& opt, const std::string& name, const std::string& value) {
  try {
    switch (opt.kind) {
      case Kind::kFlag:
        if (value == "true" || value == "1") opt.flag_value = true;
        else if (value == "false" || value == "0") opt.flag_value = false;
        else throw std::invalid_argument("bad bool");
        break;
      case Kind::kInt:
        opt.int_value = std::stoll(value);
        break;
      case Kind::kDouble:
        opt.double_value = std::stod(value);
        break;
      case Kind::kString:
        opt.string_value = value;
        break;
    }
  } catch (const std::exception&) {
    throw std::invalid_argument("invalid value '" + value + "' for option --" + name);
  }
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = options_.find(name);
    if (it == options_.end()) throw std::invalid_argument("unknown option --" + name);
    Option& opt = it->second;
    if (!value) {
      if (opt.kind == Kind::kFlag) {
        opt.flag_value = true;
        continue;
      }
      if (i + 1 >= argc) throw std::invalid_argument("option --" + name + " needs a value");
      value = argv[++i];
    }
    set_value(opt, name, *value);
  }
  return true;
}

const CliParser::Option& CliParser::require(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind)
    throw std::logic_error("option --" + name + " not registered with this type");
  return it->second;
}

bool CliParser::flag(const std::string& name) const {
  return require(name, Kind::kFlag).flag_value;
}
std::int64_t CliParser::get_int(const std::string& name) const {
  return require(name, Kind::kInt).int_value;
}
double CliParser::get_double(const std::string& name) const {
  return require(name, Kind::kDouble).double_value;
}
const std::string& CliParser::get_string(const std::string& name) const {
  return require(name, Kind::kString).string_value;
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << description_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::kFlag: os << " (flag)"; break;
      case Kind::kInt: os << "=<int, default " << opt.int_value << ">"; break;
      case Kind::kDouble: os << "=<float, default " << opt.double_value << ">"; break;
      case Kind::kString: os << "=<string, default '" << opt.string_value << "'>"; break;
    }
    os << "\n      " << opt.doc << "\n";
  }
  return os.str();
}

}  // namespace c64fft::util
