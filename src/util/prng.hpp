#pragma once
// Small deterministic PRNGs. Experiments must be reproducible across runs
// and platforms, so we avoid std::mt19937 (whose distributions are
// implementation-defined) and implement SplitMix64 + xoshiro256** with our
// own bounded-int / unit-double helpers.

#include <array>
#include <cstdint>
#include <span>

namespace c64fft::util {

/// SplitMix64: used to seed xoshiro and for cheap one-off hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator for workloads and shuffles.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Fisher-Yates shuffle of a span, deterministic given the seed.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      T tmp = items[i - 1];
      items[i - 1] = items[j];
      items[j] = tmp;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace c64fft::util
