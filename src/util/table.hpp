#pragma once
// Plain-text column-aligned tables and CSV emission. Every bench binary
// prints its figure/table through this so the output format is uniform and
// machine-recoverable (pass a stream to csv()).

#include <iosfwd>
#include <string>
#include <vector>

namespace c64fft::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 3);
  static std::string num(std::uint64_t v);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return header_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const;

  /// Column-aligned ASCII rendering with a rule under the header.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace c64fft::util
