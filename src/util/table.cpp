#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace c64fft::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("TextTable: row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::num(std::uint64_t v) { return std::to_string(v); }

const std::string& TextTable::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 != row.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 != width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TextTable::csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 != row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace c64fft::util
