#include "util/bench_diff.hpp"

#include <algorithm>
#include <iomanip>
#include <optional>
#include <regex>
#include <sstream>

namespace c64fft::util {

namespace {

struct Row {
  std::string name;
  double value;
};

// Extract (name, metric) rows, skipping non-mean aggregates and rows
// the name filters drop. Filtering happens BEFORE the metric is read:
// a shared baseline file may carry rows from several binaries whose
// reports don't all record the same metrics (e.g. the fft_loadgen LG_
// rows have items_per_second, plain micro_kernels timing rows don't),
// and a filtered-out row must not fail the parse for a metric it was
// never going to contribute to.
std::vector<Row> extract_rows(const JsonValue& report, const std::string& metric,
                              const std::optional<std::regex>& keep,
                              const std::optional<std::regex>& drop) {
  const JsonValue& benches = report.at("benchmarks");
  std::vector<Row> rows;
  for (const JsonValue& b : benches.items()) {
    if (const JsonValue* rt = b.find("run_type");
        rt && rt->is_string() && rt->as_string() == "aggregate") {
      const JsonValue* agg = b.find("aggregate_name");
      if (!agg || !agg->is_string() || agg->as_string() != "mean") continue;
    }
    std::string name = b.at("name").as_string();
    if (keep && !std::regex_search(name, *keep)) continue;
    if (drop && std::regex_search(name, *drop)) continue;
    rows.push_back({std::move(name), b.at(metric).as_number()});
  }
  return rows;
}

}  // namespace

bool metric_is_rate(const std::string& metric) {
  return metric == "items_per_second" || metric == "bytes_per_second";
}

std::vector<BenchDelta> diff_benchmarks(const JsonValue& baseline,
                                        const JsonValue& current,
                                        const BenchDiffOptions& opts) {
  const bool rate = metric_is_rate(opts.metric);
  std::optional<std::regex> keep, drop;
  if (!opts.filter.empty()) keep.emplace(opts.filter);
  if (!opts.exclude.empty()) drop.emplace(opts.exclude);
  const auto base_rows = extract_rows(baseline, opts.metric, keep, drop);
  const auto cur_rows = extract_rows(current, opts.metric, keep, drop);

  std::vector<BenchDelta> deltas;
  deltas.reserve(base_rows.size());
  for (const Row& b : base_rows) {
    BenchDelta d;
    d.name = b.name;
    d.baseline = b.value;
    const auto it = std::find_if(cur_rows.begin(), cur_rows.end(),
                                 [&](const Row& r) { return r.name == b.name; });
    if (it == cur_rows.end()) {
      d.missing = true;
      d.regressed = opts.require_all_baseline;
      deltas.push_back(std::move(d));
      continue;
    }
    d.current = it->value;
    if (b.value > 0.0 && it->value > 0.0)
      d.worse_ratio = rate ? b.value / it->value : it->value / b.value;
    else
      d.worse_ratio = 1.0;  // degenerate zero timings: never flag
    d.regressed = d.worse_ratio > 1.0 + opts.tolerance;
    deltas.push_back(std::move(d));
  }
  return deltas;
}

double benchmark_metric(const JsonValue& report, const std::string& name,
                        const std::string& metric) {
  // Scans the raw rows, not extract_rows: a metric lookup may target an
  // aggregate row by its full name (e.g. ".../real_time_median" from a
  // --benchmark_report_aggregates_only run), which the diff's
  // mean-only aggregate filter would hide.
  for (const JsonValue& b : report.at("benchmarks").items())
    if (b.at("name").as_string() == name) return b.at(metric).as_number();
  throw JsonParseError("benchmark row '" + name + "' not found in report");
}

double benchmark_metric_min(const JsonValue& report, const std::string& name,
                            const std::string& metric) {
  double best = 0.0;
  bool found = false;
  for (const JsonValue& b : report.at("benchmarks").items()) {
    if (b.at("name").as_string() != name) continue;
    if (const JsonValue* rt = b.find("run_type");
        rt && rt->is_string() && rt->as_string() == "aggregate")
      continue;
    const double v = b.at(metric).as_number();
    if (!found || v < best) best = v;
    found = true;
  }
  if (!found)
    throw JsonParseError("benchmark row '" + name + "' not found in report");
  return best;
}

bool has_regression(std::span<const BenchDelta> deltas) {
  return std::any_of(deltas.begin(), deltas.end(),
                     [](const BenchDelta& d) { return d.regressed; });
}

std::string format_bench_report(std::span<const BenchDelta> deltas,
                                const BenchDiffOptions& opts) {
  std::size_t width = 4;
  for (const BenchDelta& d : deltas) width = std::max(width, d.name.size());

  std::ostringstream out;
  out << "benchmark diff (metric=" << opts.metric << ", tolerance=+"
      << static_cast<int>(opts.tolerance * 100 + 0.5) << "%)\n";
  std::size_t failures = 0;
  for (const BenchDelta& d : deltas) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << d.name
        << std::right;
    if (d.missing) {
      out << "  MISSING from current report";
    } else {
      out << "  base=" << std::scientific << std::setprecision(3) << d.baseline
          << "  cur=" << d.current << std::defaultfloat << "  worse-by="
          << std::fixed << std::setprecision(2) << d.worse_ratio << "x"
          << std::defaultfloat;
    }
    if (d.regressed) {
      out << "  <-- REGRESSED";
      ++failures;
    }
    out << "\n";
  }
  out << (failures ? "FAIL: " : "PASS: ") << failures << " of " << deltas.size()
      << " benchmarks regressed\n";
  return out.str();
}

}  // namespace c64fft::util
