#pragma once
// Runtime CPU feature probe and the ISA-level ladder of the explicit-SIMD
// kernel layer (src/fft/kernels/).
//
// The kernel dispatch table is selected once per process from two inputs:
// what the hardware supports (cpuid, via the compiler's
// __builtin_cpu_supports on x86) and what the user allows (the C64FFT_ISA
// environment variable, which can only narrow — asking for avx512 on an
// AVX2-only host clamps down to avx2, and on a non-x86 build everything
// clamps to scalar). `kScalar` is always valid: it is the portable
// autovectorized kernel set that every other level is tested against.

#include <cstdint>
#include <optional>
#include <string>

namespace c64fft::util {

/// Kernel ISA ladder, ordered: a level implies every lower one. The
/// numeric order is load-bearing (clamping picks the min of request and
/// support).
enum class IsaLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Stable lower-case name ("scalar" / "avx2" / "avx512") used by
/// C64FFT_ISA, the tuner schedule file, fft_lint reports, and tests.
const char* to_string(IsaLevel level) noexcept;

/// Parse an ISA name (the C64FFT_ISA vocabulary, plus "auto" meaning
/// "best supported"); nullopt on anything else.
std::optional<IsaLevel> parse_isa_name(const std::string& name);

/// What the hardware this process runs on can execute. Detected once via
/// cpuid (x86) and cached; all-false on other architectures.
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  /// F + DQ + VL: the subset the AVX-512 kernels require (512-bit
  /// arithmetic plus the narrowing/masked forms used for tails).
  bool avx512 = false;
};

const CpuFeatures& cpu_features();

/// Highest IsaLevel cpu_features() can execute.
IsaLevel best_supported_isa();

/// True when this host can execute `level`.
bool isa_supported(IsaLevel level);

/// Data-cache capacities of the executing core, in bytes. Probed once via
/// sysconf (Linux exposes the cpuid/dt leaves through
/// _SC_LEVEL*_DCACHE_SIZE / _SC_LEVEL*_CACHE_SIZE) and cached; levels the
/// OS does not report fall back to conservative defaults so planner
/// arithmetic never divides by zero on exotic hosts.
struct CacheInfo {
  std::uint64_t l1d_bytes = 32ull << 10;
  std::uint64_t l2_bytes = 1ull << 20;
  std::uint64_t l3_bytes = 8ull << 20;
};

const CacheInfo& cache_info();

/// The process-default kernel ISA: best_supported_isa(), narrowed by a
/// valid C64FFT_ISA environment variable ("scalar" | "avx2" | "avx512" |
/// "auto"). An unset, empty, or unparsable variable means "auto"; a
/// request above hardware support clamps to the best supported level.
/// Reads the environment on every call (cheap; callers that need a
/// snapshot cache the result — see fft::kernels::active_kernels).
IsaLevel isa_from_env();

}  // namespace c64fft::util
