#include "util/timeseries.hpp"

#include <cassert>
#include <stdexcept>

namespace c64fft::util {

WindowedSeries::WindowedSeries(std::size_t channels, std::uint64_t window_width)
    : channels_(channels), width_(window_width) {
  if (channels == 0) throw std::invalid_argument("WindowedSeries: channels == 0");
  if (window_width == 0) throw std::invalid_argument("WindowedSeries: window_width == 0");
}

void WindowedSeries::record(std::uint64_t t, std::size_t channel, std::uint64_t count) {
  assert(channel < channels_);
  const std::size_t w = static_cast<std::size_t>(t / width_);
  const std::size_t needed = (w + 1) * channels_;
  if (buckets_.size() < needed) buckets_.resize(needed, 0);
  buckets_[w * channels_ + channel] += count;
}

std::size_t WindowedSeries::windows() const noexcept {
  return buckets_.size() / channels_;
}

std::uint64_t WindowedSeries::at(std::size_t window, std::size_t channel) const {
  assert(channel < channels_);
  if (window >= windows()) return 0;
  return buckets_[window * channels_ + channel];
}

std::vector<std::uint64_t> WindowedSeries::channel_series(std::size_t channel) const {
  assert(channel < channels_);
  std::vector<std::uint64_t> out(windows());
  for (std::size_t w = 0; w < out.size(); ++w) out[w] = buckets_[w * channels_ + channel];
  return out;
}

std::uint64_t WindowedSeries::channel_total(std::size_t channel) const {
  assert(channel < channels_);
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < windows(); ++w) total += buckets_[w * channels_ + channel];
  return total;
}

void WindowedSeries::clear() { buckets_.clear(); }

}  // namespace c64fft::util
