#pragma once
// Synthetic signal and workload generators shared by the tests, examples
// and benches: tones, chirps, noise, impulses — deterministic given the
// seed, so every experiment is exactly reproducible.

#include <complex>
#include <cstdint>
#include <vector>

namespace c64fft::util {

using cplx_t = std::complex<double>;

struct ToneSpec {
  double frequency_hz = 0.0;
  double amplitude = 1.0;
  double phase_rad = 0.0;
};

class SignalBuilder {
 public:
  /// `n` samples at `sample_rate_hz`.
  SignalBuilder(std::size_t n, double sample_rate_hz);

  /// Add a real sinusoid.
  SignalBuilder& tone(const ToneSpec& spec);
  /// Add a linear chirp sweeping f0..f1 across the window.
  SignalBuilder& chirp(double f0_hz, double f1_hz, double amplitude = 1.0);
  /// Add uniform white noise in [-amplitude, amplitude] (deterministic).
  SignalBuilder& noise(double amplitude, std::uint64_t seed);
  /// Add a unit impulse at `index` scaled by `amplitude`.
  SignalBuilder& impulse(std::size_t index, double amplitude = 1.0);
  /// Add a DC offset.
  SignalBuilder& dc(double level);

  const std::vector<double>& real() const noexcept { return samples_; }
  /// As a complex vector (imaginary parts zero).
  std::vector<cplx_t> complex() const;

  std::size_t size() const noexcept { return samples_.size(); }
  double sample_rate() const noexcept { return rate_; }

 private:
  std::vector<double> samples_;
  double rate_;
};

/// Deterministic complex white-noise vector (used as generic FFT input).
std::vector<cplx_t> random_complex(std::size_t n, std::uint64_t seed);

}  // namespace c64fft::util
