#pragma once
// Minimal recursive-descent JSON parser — just enough to read
// google-benchmark's --benchmark_out=json reports (objects, arrays,
// strings with escapes, numbers, booleans, null). No external
// dependencies; values are an ordered tree of JsonValue nodes.
//
// Not a general-purpose serializer: there is no writer, no comment
// support, and numbers are always parsed as double (fine for benchmark
// timings; benchmark iteration counts < 2^53 round-trip exactly).

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace c64fft::util {

/// Error thrown on malformed input, with 1-based line/column context.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  explicit JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue make_array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue make_object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Typed accessors; throw JsonParseError("type mismatch...") when the
  /// value holds something else, so callers get a diagnosable failure
  /// instead of UB on malformed reports.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object lookup (first match, insertion order); nullptr when absent or
  /// when this value is not an object.
  const JsonValue* find(std::string_view key) const;
  /// find() that throws when the key is missing.
  const JsonValue& at(std::string_view key) const;

  // Builder mutators (used by the parser and by tests).
  void push_back(JsonValue v);
  void emplace_member(std::string key, JsonValue v);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parse one JSON document; trailing non-whitespace is an error.
/// Throws JsonParseError with line/column on malformed input.
JsonValue json_parse(std::string_view text);

/// Read and parse a file. Throws std::runtime_error when unreadable.
JsonValue json_parse_file(const std::string& path);

}  // namespace c64fft::util
