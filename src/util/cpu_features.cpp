#include "util/cpu_features.hpp"

#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace c64fft::util {

const char* to_string(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::kAvx512:
      return "avx512";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kScalar:
    default:
      return "scalar";
  }
}

std::optional<IsaLevel> parse_isa_name(const std::string& name) {
  if (name == "scalar") return IsaLevel::kScalar;
  if (name == "avx2") return IsaLevel::kAvx2;
  if (name == "avx512") return IsaLevel::kAvx512;
  if (name == "auto") return best_supported_isa();
  return std::nullopt;
}

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports reads cpuid once at startup (libgcc caches the
  // leaves); it also checks OS XSAVE support for the wide register files,
  // which a raw cpuid leaf test would miss.
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512 = __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

namespace {

CacheInfo detect_caches() {
  CacheInfo c;  // conservative defaults from the struct initializers
#if defined(__unix__) || defined(__APPLE__)
  const auto probe = [](int name, std::uint64_t& out) {
#ifdef _SC_LEVEL1_DCACHE_SIZE
    const long v = ::sysconf(name);
    if (v > 0) out = static_cast<std::uint64_t>(v);
#else
    (void)name;
    (void)out;
#endif
  };
#ifdef _SC_LEVEL1_DCACHE_SIZE
  probe(_SC_LEVEL1_DCACHE_SIZE, c.l1d_bytes);
  probe(_SC_LEVEL2_CACHE_SIZE, c.l2_bytes);
  probe(_SC_LEVEL3_CACHE_SIZE, c.l3_bytes);
#endif
#endif
  return c;
}

}  // namespace

const CacheInfo& cache_info() {
  static const CacheInfo c = detect_caches();
  return c;
}

IsaLevel best_supported_isa() {
  const CpuFeatures& f = cpu_features();
  if (f.avx512) return IsaLevel::kAvx512;
  if (f.avx2) return IsaLevel::kAvx2;
  return IsaLevel::kScalar;
}

bool isa_supported(IsaLevel level) {
  return static_cast<int>(level) <= static_cast<int>(best_supported_isa());
}

IsaLevel isa_from_env() {
  const IsaLevel best = best_supported_isa();
  const char* raw = std::getenv("C64FFT_ISA");
  if (raw == nullptr || *raw == '\0') return best;
  const std::optional<IsaLevel> parsed = parse_isa_name(raw);
  if (!parsed) return best;
  return static_cast<int>(*parsed) < static_cast<int>(best) ? *parsed : best;
}

}  // namespace c64fft::util
