#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace c64fft::util {

namespace {

[[noreturn]] void type_error(const char* want, JsonValue::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw JsonParseError(std::string("json: type mismatch: wanted ") + want +
                       ", value holds " + kNames[static_cast<int>(got)]);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': expect_word("true"); return JsonValue(true);
      case 'f': expect_word("false"); return JsonValue(false);
      case 'n': expect_word("null"); return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      obj.emplace_member(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': out += parse_unicode_escape(); break;
          default: fail("unknown escape character");
        }
      } else {
        out += c;
      }
    }
  }

  // \uXXXX → UTF-8. Surrogate pairs are not recombined (benchmark names
  // never contain them); lone surrogates encode as-is.
  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      if (pos_ == before) fail("malformed number");
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      digits();
    }
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc{}) fail("number out of range");
    return JsonValue(value);
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("unexpected token");
    pos_ += word.size();
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[noreturn]] void fail(const char* what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream msg;
    msg << "json: " << what << " at line " << line << ", column " << col;
    throw JsonParseError(msg.str());
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (!v)
    throw JsonParseError("json: missing key \"" + std::string(key) + "\"");
  return *v;
}

void JsonValue::push_back(JsonValue v) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(v));
}

void JsonValue::emplace_member(std::string key, JsonValue v) {
  if (type_ != Type::kObject) type_error("object", type_);
  object_.emplace_back(std::move(key), std::move(v));
}

JsonValue json_parse(std::string_view text) { return Parser(text).run(); }

JsonValue json_parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return json_parse(buf.str());
}

}  // namespace c64fft::util
