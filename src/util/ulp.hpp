#pragma once
// Accuracy metric in units-in-the-last-place (ULP) of a target precision.
//
// The fp32 pipeline is validated against the fp64 reference. Absolute
// thresholds would have to be re-derived per transform size and signal
// scale; a ULP bound at float precision is size-stable, so one documented
// tolerance covers N from 2^4 to 2^16. The unit is the ULP of the
// reference spectrum's PEAK component's binade, ldexp(eps_T, ilogb(peak)):
// an FFT's rounding error is additive noise proportional to the peak it
// was computed alongside, so small components carry the same absolute
// noise floor as large ones — judging each component against its own
// binade would blow up on the (rare, legitimate) near-zero bins while
// saying nothing new about the transform. max_ulp_error is therefore the
// max absolute component error expressed in peak-ULPs: the scale-free
// "how many last places of the biggest bin did we lose" number.

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace c64fft::util {

/// One ULP of precision T in the binade of `ref` (`ref` > 0, finite).
template <typename T>
inline double ulp_at(double ref) {
  return std::ldexp(static_cast<double>(std::numeric_limits<T>::epsilon()),
                    std::ilogb(ref));
}

/// Max over all real/imag components of |got - want|, in T-precision ULPs
/// of the reference peak's binade (see file comment). An all-zero
/// reference is judged in absolute eps_T units. Size mismatch or a
/// non-finite value anywhere returns +inf.
template <typename T>
double max_ulp_error(std::span<const std::complex<T>> got,
                     std::span<const std::complex<double>> want) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (got.size() != want.size()) return kInf;
  double peak = 0.0;
  for (const auto& w : want) {
    if (!std::isfinite(w.real()) || !std::isfinite(w.imag())) return kInf;
    peak = std::max({peak, std::abs(w.real()), std::abs(w.imag())});
  }
  if (peak == 0.0) peak = 1.0;  // all-zero reference: absolute eps_T units
  const double ulp = ulp_at<T>(peak);
  double worst = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double re = static_cast<double>(got[i].real());
    const double im = static_cast<double>(got[i].imag());
    if (!std::isfinite(re) || !std::isfinite(im)) return kInf;
    worst = std::max({worst, std::abs(re - want[i].real()) / ulp,
                      std::abs(im - want[i].imag()) / ulp});
  }
  return worst;
}

/// Vector convenience overload (span deduction does not look through
/// std::vector's user-defined conversion).
template <typename T>
double max_ulp_error(const std::vector<std::complex<T>>& got,
                     const std::vector<std::complex<double>>& want) {
  return max_ulp_error<T>(
      std::span<const std::complex<T>>(got.data(), got.size()),
      std::span<const std::complex<double>>(want.data(), want.size()));
}

}  // namespace c64fft::util
