#pragma once
// Streaming and batch statistics used by benches and the simulator's
// per-bank utilisation reports.

#include <cstddef>
#include <span>
#include <vector>

namespace c64fft::util {

/// Welford streaming accumulator: mean / variance / min / max in one pass.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Linear-interpolated percentile of an unsorted sample (p in [0,100]).
/// Copies and sorts internally; empty input returns 0.
double percentile(std::span<const double> sample, double p);

/// Arithmetic mean; empty input returns 0.
double mean(std::span<const double> sample);

/// Population coefficient of imbalance used for bank-load reports:
/// max(sample) / mean(sample). Returns 1 for empty/zero input.
double imbalance_ratio(std::span<const double> sample);

/// Geometric mean of strictly positive values; empty input returns 0.
double geomean(std::span<const double> sample);

}  // namespace c64fft::util
