#include "util/signal.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/prng.hpp"

namespace c64fft::util {

SignalBuilder::SignalBuilder(std::size_t n, double sample_rate_hz)
    : samples_(n, 0.0), rate_(sample_rate_hz) {
  if (sample_rate_hz <= 0) throw std::invalid_argument("SignalBuilder: bad sample rate");
}

SignalBuilder& SignalBuilder::tone(const ToneSpec& spec) {
  const double w = 2.0 * std::numbers::pi * spec.frequency_hz / rate_;
  for (std::size_t i = 0; i < samples_.size(); ++i)
    samples_[i] += spec.amplitude * std::sin(w * static_cast<double>(i) + spec.phase_rad);
  return *this;
}

SignalBuilder& SignalBuilder::chirp(double f0_hz, double f1_hz, double amplitude) {
  const std::size_t n = samples_.size();
  if (n == 0) return *this;
  const double k = (f1_hz - f0_hz) / (static_cast<double>(n) / rate_);  // Hz per second
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / rate_;
    const double phase = 2.0 * std::numbers::pi * (f0_hz * t + 0.5 * k * t * t);
    samples_[i] += amplitude * std::sin(phase);
  }
  return *this;
}

SignalBuilder& SignalBuilder::noise(double amplitude, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (auto& s : samples_) s += amplitude * (rng.next_double() * 2.0 - 1.0);
  return *this;
}

SignalBuilder& SignalBuilder::impulse(std::size_t index, double amplitude) {
  samples_.at(index) += amplitude;
  return *this;
}

SignalBuilder& SignalBuilder::dc(double level) {
  for (auto& s : samples_) s += level;
  return *this;
}

std::vector<cplx_t> SignalBuilder::complex() const {
  std::vector<cplx_t> out(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) out[i] = cplx_t(samples_[i], 0.0);
  return out;
}

std::vector<cplx_t> random_complex(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<cplx_t> out(n);
  for (auto& v : out)
    v = cplx_t(rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0);
  return out;
}

}  // namespace c64fft::util
