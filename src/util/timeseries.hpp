#pragma once
// Windowed event-count time series. The simulator feeds (time, channel)
// events in; the series buckets them into fixed-width windows per channel.
// This is exactly the instrument behind the paper's Figs. 1, 2 and 6
// ("number of memory accesses per 3e6 cycles" for each of the 4 DRAM banks).

#include <cstdint>
#include <vector>

namespace c64fft::util {

class WindowedSeries {
 public:
  /// `channels` parallel series, bucketed into windows of `window_width`
  /// time units each (e.g. cycles).
  WindowedSeries(std::size_t channels, std::uint64_t window_width);

  /// Record `count` events on `channel` at absolute time `t`.
  void record(std::uint64_t t, std::size_t channel, std::uint64_t count = 1);

  std::size_t channels() const noexcept { return channels_; }
  std::uint64_t window_width() const noexcept { return width_; }
  /// Number of windows that have at least one recorded bucket.
  std::size_t windows() const noexcept;

  /// Event count for (window, channel); zero when beyond recorded range.
  std::uint64_t at(std::size_t window, std::size_t channel) const;

  /// One channel as a dense vector of per-window counts.
  std::vector<std::uint64_t> channel_series(std::size_t channel) const;

  /// Sum of all events recorded on a channel.
  std::uint64_t channel_total(std::size_t channel) const;

  void clear();

 private:
  std::size_t channels_;
  std::uint64_t width_;
  // buckets_[w * channels_ + c]; grown on demand.
  std::vector<std::uint64_t> buckets_;
};

}  // namespace c64fft::util
