#pragma once
// Bit-manipulation helpers used throughout the FFT plan algebra and the
// hashed twiddle layout (the paper's bit-reversal "hash", Section IV-B).

#include <bit>
#include <cassert>
#include <cstdint>

namespace c64fft::util {

/// True iff `x` is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x > 0.
constexpr unsigned ilog2(std::uint64_t x) noexcept {
  assert(x != 0);
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// ceil(log2(x)) for x > 0.
constexpr unsigned ilog2_ceil(std::uint64_t x) noexcept {
  assert(x != 0);
  return x == 1 ? 0u : ilog2(x - 1) + 1u;
}

/// Smallest power of two >= x (x > 0).
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return std::uint64_t{1} << ilog2_ceil(x);
}

/// Reverse all 64 bits of `x` (bitwise mirror).
constexpr std::uint64_t bit_reverse64(std::uint64_t x) noexcept {
  x = ((x & 0x5555555555555555ULL) << 1) | ((x >> 1) & 0x5555555555555555ULL);
  x = ((x & 0x3333333333333333ULL) << 2) | ((x >> 2) & 0x3333333333333333ULL);
  x = ((x & 0x0F0F0F0F0F0F0F0FULL) << 4) | ((x >> 4) & 0x0F0F0F0F0F0F0F0FULL);
  x = ((x & 0x00FF00FF00FF00FFULL) << 8) | ((x >> 8) & 0x00FF00FF00FF00FFULL);
  x = ((x & 0x0000FFFF0000FFFFULL) << 16) | ((x >> 16) & 0x0000FFFF0000FFFFULL);
  return (x << 32) | (x >> 32);
}

/// Reverse the low `bits` bits of `x` (the paper's BR hash function).
/// Bits at and above position `bits` must be zero.
constexpr std::uint64_t bit_reverse(std::uint64_t x, unsigned bits) noexcept {
  assert(bits <= 64);
  assert(bits == 64 || (x >> bits) == 0);
  if (bits == 0) return 0;
  return bit_reverse64(x) >> (64u - bits);
}

/// Integer power `base^exp` (no overflow checking; exponents are tiny here).
constexpr std::uint64_t ipow(std::uint64_t base, unsigned exp) noexcept {
  std::uint64_t r = 1;
  while (exp--) r *= base;
  return r;
}

/// Ceiling division for unsigned integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  assert(b != 0);
  return (a + b - 1) / b;
}

}  // namespace c64fft::util
