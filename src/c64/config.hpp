#pragma once
// Timing/topology parameters of the modelled Cyclops-64 node.
//
// Architectural constants (core count, clock, bank count, interleave,
// bandwidths) are taken from the paper's Section III-A. The queueing /
// overhead constants are *model calibration knobs*: the paper used the
// proprietary FAST simulator, so we expose every mechanism it models
// (port bandwidth, request latency, per-bank queueing behind an in-order
// admission stream, bounded outstanding requests per in-order TU, barrier
// and runtime overheads) as explicit, documented numbers. See DESIGN.md
// §2.1 for the load-bearing choice: blocking loads + element-granular
// strided requests keep the machine latency-bound below DRAM saturation,
// which is the only regime where codelet reordering can pay (a purely
// bandwidth-bound model is provably order-invariant).

#include <cstdint>

namespace c64fft::c64 {

struct ChipConfig {
  // ---- Architecture (Section III-A of the paper) ----
  /// Thread units available to the application (160 minus 4 reserved for
  /// the OS kernel, as in the paper's experiments).
  unsigned thread_units = 156;
  /// Core clock in GHz (500 MHz).
  double clock_ghz = 0.5;
  /// Off-chip DRAM ports/banks.
  unsigned dram_banks = 4;
  /// Bank interleave granularity in bytes ("switching banks every 64
  /// bytes (or 4 double precision complex elements)").
  unsigned interleave_bytes = 64;
  /// Per-bank service bandwidth in bytes/cycle. 16 GB/s aggregate over 4
  /// banks at 500 MHz = 8 B/cycle per bank.
  double bank_bytes_per_cycle = 8.0;
  /// Sustained floating-point throughput per TU in flops/cycle. Two TUs
  /// share one FMA unit issuing 1 FMA (2 flops) per cycle -> 1 flop/cycle
  /// per TU.
  double flops_per_cycle_per_tu = 1.0;

  // ---- Memory-system model knobs ----
  /// Fixed pipeline latency (cycles) added to every off-chip request on
  /// top of its bank service time.
  unsigned dram_latency = 100;
  /// The shared request stream may be dispatched out of order only within
  /// this many entries from the head (1 = strict head-of-line blocking).
  unsigned hol_window = 256;
  /// Per-bank controller queue slots. A request is admitted from the
  /// shared stream only when its bank has a free slot; shallow settings
  /// model "buffer hogging" at the crossbar->DRAM path (a saturated bank
  /// blocks admission and starves the others). The wide default makes the
  /// banks effectively independent FIFO queues; the knob is exposed for
  /// the ablation bench.
  unsigned bank_queue_depth = 64;
  /// Maximum outstanding off-chip requests per thread unit (in-order core
  /// with a small load/store queue).
  unsigned max_outstanding = 1;
  /// Cycles to issue one memory request from a TU.
  unsigned issue_cycles = 1;
  /// Same-bank address-adjacent accesses from one codelet are merged into
  /// requests of at most this many bytes (simulation granularity knob;
  /// element-exact traffic is preserved, see DESIGN.md).
  unsigned coalesce_limit = 64;

  // ---- Runtime overheads ----
  /// Cycles to pop one codelet from the concurrent pool.
  unsigned pop_cycles = 30;
  /// Cycles per codelet for dependency-counter updates (fine variants).
  unsigned counter_update_cycles = 20;
  /// Cycles for a full-chip hardware barrier (coarse/guided variants).
  unsigned barrier_cycles = 4096;
  /// Fixed per-codelet kernel entry/exit overhead in cycles.
  unsigned task_overhead_cycles = 64;

  // ---- Capacity limits ----
  /// Usable per-TU scratchpad working set in bytes. A 64-point codelet
  /// (64 in-place points + 63 twiddles = 2032 B) fits; a 128-point codelet
  /// (4080 B) does not and spills (paper §V-A: sizes over 64 "exceed the
  /// scratchpad limit").
  unsigned scratchpad_bytes = 3072;

  // ---- Hash (bit-reversed twiddle layout) cost model ----
  /// Cycles charged before issuing each hashed twiddle load:
  /// hash_base_cycles + hash_cycles_per_bit * bits(index). The paper
  /// observes this cost grows with the input size ("the work of handling
  /// more bits for each element").
  unsigned hash_base_cycles = 2;
  double hash_cycles_per_bit = 6.0;

  /// Hash cost in cycles for an index of `bits` significant bits.
  unsigned hash_cost(unsigned bits) const {
    return hash_base_cycles + static_cast<unsigned>(hash_cycles_per_bit * bits);
  }

  /// Aggregate off-chip bandwidth in bytes/cycle.
  double total_dram_bytes_per_cycle() const { return bank_bytes_per_cycle * dram_banks; }
  /// Aggregate off-chip bandwidth in GB/s.
  double total_dram_gbps() const { return total_dram_bytes_per_cycle() * clock_ghz; }
  /// Seconds per cycle.
  double seconds_per_cycle() const { return 1e-9 / clock_ghz; }
};

}  // namespace c64fft::c64
