#pragma once
// Discrete-event model of a C64 node executing a pool of tasks (codelets).
//
// The engine models:
//   * `thread_units` in-order TUs. Each TU repeatedly asks the SimProgram
//     for a task, pays the pool-pop cost, issues the task's load requests
//     (bounded by `max_outstanding`, one per `issue_cycles`, plus any
//     per-request pre-issue cost such as the twiddle hash), waits for all
//     loads, computes, issues and waits for the stores, then reports
//     completion (which is when the program updates dependency counters
//     and may make new tasks ready).
//   * a shared off-chip request stream with bounded-lookahead dispatch
//     (`hol_window`) feeding `dram_banks` banks of `bank_bytes_per_cycle`
//     service bandwidth each, plus a fixed `dram_latency`.
//
// The event loop is deterministic: ties are broken by event sequence
// number, and the program's callbacks are invoked in a fixed order.

#include <cstdint>
#include <optional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "c64/config.hpp"
#include "c64/trace.hpp"

namespace c64fft::c64 {

/// One off-chip memory request of a task. `pre_issue_cycles` is charged on
/// the issuing TU before the request enters the memory system (used for the
/// hashed-twiddle address computation).
struct MemRequest {
  std::uint16_t bank = 0;
  std::uint16_t pre_issue_cycles = 0;
  std::uint32_t bytes = 0;
};

/// A schedulable unit of work (one codelet instance).
struct TaskSpec {
  /// Opaque program-defined identity, echoed back in task_done().
  std::uint64_t task_id = 0;
  /// Busy-compute cycles between the last load and the first store.
  std::uint64_t compute_cycles = 0;
  /// Cycles charged before the first load issues (pool pop, kernel entry).
  std::uint32_t start_overhead_cycles = 0;
  /// Cycles charged after the last store completes (dependency-counter
  /// updates, children enqueue) before task_done() fires.
  std::uint32_t finish_overhead_cycles = 0;
  /// requests[0..first_store) are loads; requests[first_store..) stores.
  std::uint32_t first_store = 0;
  std::vector<MemRequest> requests;

  void clear() {
    task_id = 0;
    compute_cycles = 0;
    start_overhead_cycles = 0;
    finish_overhead_cycles = 0;
    first_store = 0;
    requests.clear();
  }
};

/// What a SimProgram tells an idle TU.
enum class PopResult {
  kTask,      ///< `out` was filled; run it.
  kWait,      ///< nothing ready; retry at `wake_at` (e.g. barrier release).
  kIdle,      ///< nothing ready; retry when any task completes.
  kFinished,  ///< this TU is done for good.
};

/// The workload driven by the engine. Implementations provide the codelet
/// pool semantics (ordering policy, dependency counters, barriers).
class SimProgram {
 public:
  virtual ~SimProgram() = default;

  /// Called when TU `tu` is free at `now`. On kTask, fill `out`
  /// (out.requests may reuse its capacity). On kWait, set `wake_at > now`.
  virtual PopResult next_task(unsigned tu, std::uint64_t now, TaskSpec& out,
                              std::uint64_t& wake_at) = 0;

  /// Called when the task `task_id` issued by `tu` has fully completed
  /// (stores done, runtime overhead paid) at `now`.
  virtual void task_done(unsigned tu, std::uint64_t task_id, std::uint64_t now) = 0;

  /// True when every task has been issued and completed.
  virtual bool finished() const = 0;
};

/// Aggregate results of one simulation.
struct SimResult {
  std::uint64_t cycles = 0;          ///< makespan in cycles
  std::uint64_t tasks_completed = 0;
  std::uint64_t requests = 0;        ///< off-chip requests dispatched
  std::uint64_t bytes = 0;           ///< off-chip bytes moved
  std::vector<std::uint64_t> bank_busy_cycles;  ///< per-bank service occupancy
  std::vector<std::uint64_t> bank_bytes;        ///< per-bank bytes moved
  std::uint64_t tu_busy_cycles = 0;  ///< summed non-idle TU time
  double seconds = 0.0;              ///< makespan in seconds

  /// Per-bank service utilisation over the makespan.
  std::vector<double> bank_utilisation() const;
};

class SimEngine {
 public:
  /// `trace` may be null; when provided, every dispatched request records
  /// bytes/16 element accesses on its bank at dispatch time.
  SimEngine(const ChipConfig& cfg, SimProgram& program, BankTrace* trace = nullptr);

  /// Run to completion and return aggregate statistics.
  /// Throws std::runtime_error on deadlock (program not finished but no
  /// event can ever fire) — which would indicate a malformed codelet graph.
  SimResult run();

 private:
  enum class EventKind : std::uint8_t {
    kTuReady,    ///< TU is free; ask program for work
    kTuIssue,    ///< TU attempts to issue its next memory request
    kReqDone,    ///< a TU's memory request completed
    kBankSlotFree,  ///< a bank finished one service; a queue slot freed
    kComputeDone,  ///< TU finished its compute phase
    kTaskDone,   ///< task fully retired (incl. finish overhead)
  };

  struct Event {
    std::uint64_t time;
    std::uint64_t seq;
    EventKind kind;
    std::uint32_t tu;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  enum class TuState : std::uint8_t {
    kIdle,
    kLoads,      ///< issuing/waiting loads
    kCompute,
    kStores,     ///< issuing/waiting stores
  };

  struct TuContext {
    TuState state = TuState::kIdle;
    TaskSpec task;
    std::uint32_t next_req = 0;      ///< next request index to issue
    std::uint32_t inflight = 0;      ///< outstanding requests
    std::uint32_t issue_limit = 0;   ///< one-past-last request of current phase
    bool issue_scheduled = false;    ///< a kTuIssue event is pending
    std::uint64_t busy_since = 0;
  };

  struct PendingReq {
    std::uint32_t tu;
    std::uint16_t bank;
    std::uint32_t bytes;
  };

  void push_event(std::uint64_t time, EventKind kind, std::uint32_t tu);
  void on_tu_ready(std::uint32_t tu, std::uint64_t now);
  void on_tu_issue(std::uint32_t tu, std::uint64_t now);
  void on_req_done(std::uint32_t tu, std::uint64_t now);
  void on_compute_done(std::uint32_t tu, std::uint64_t now);
  void on_task_done(std::uint32_t tu, std::uint64_t now);
  void begin_phase(std::uint32_t tu, std::uint64_t now);
  void schedule_issue(std::uint32_t tu, std::uint64_t now);
  void phase_complete(std::uint32_t tu, std::uint64_t now);
  void dispatch_pending(std::uint64_t now);
  void wake_idle_tus(std::uint64_t now);

  const ChipConfig& cfg_;
  SimProgram& program_;
  BankTrace* trace_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_ = 0;

  std::vector<TuContext> tus_;
  std::vector<std::uint32_t> idle_tus_;  // TUs parked in kIdle PopResult
  std::vector<bool> tu_idle_parked_;
  std::vector<bool> tu_finished_;

  std::vector<PendingReq> pending_;  // admission FIFO via head index
  std::size_t pending_head_ = 0;
  std::vector<std::uint64_t> bank_free_;   // service-pipe availability
  std::vector<std::uint32_t> bank_depth_;  // occupied controller slots

  SimResult result_;
};

}  // namespace c64fft::c64
