#include "c64/peak_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/bit_ops.hpp"

namespace c64fft::c64 {

double PeakModel::fft_flops(std::uint64_t n) {
  if (!util::is_pow2(n)) throw std::invalid_argument("fft_flops: N must be a power of two");
  return 5.0 * static_cast<double>(n) * static_cast<double>(util::ilog2(n));
}

std::uint64_t PeakModel::task_count(std::uint64_t n, std::uint64_t task_size) {
  if (!util::is_pow2(n) || !util::is_pow2(task_size) || task_size < 2 || task_size > n)
    throw std::invalid_argument("task_count: bad N or task size");
  const std::uint64_t stages = util::ceil_div(util::ilog2(n), util::ilog2(task_size));
  return n / task_size * stages;
}

std::uint64_t PeakModel::task_bytes(std::uint64_t task_size) {
  return (task_size + task_size + (task_size - 1)) * 16;
}

double PeakModel::task_seconds(std::uint64_t task_size) const {
  const double bw_bytes_per_sec = chip.total_dram_gbps() * 1e9;
  return static_cast<double>(task_bytes(task_size)) / bw_bytes_per_sec;
}

double PeakModel::peak_gflops(std::uint64_t n, std::uint64_t task_size) const {
  const double total_seconds =
      task_seconds(task_size) * static_cast<double>(task_count(n, task_size));
  return fft_flops(n) / total_seconds / 1e9;
}

double PeakModel::peak_gflops_asymptotic(std::uint64_t task_size) const {
  // peak = 5 * log2(R) * R * BW / ((3R - 1) * 16), in flops/sec.
  const double r = static_cast<double>(task_size);
  const double bw = chip.total_dram_gbps() * 1e9;
  const double lg = static_cast<double>(util::ilog2(task_size));
  return 5.0 * lg * r * bw / ((3.0 * r - 1.0) * 16.0) / 1e9;
}

double PeakModel::compute_peak_gflops() const {
  return chip.flops_per_cycle_per_tu * static_cast<double>(chip.thread_units) *
         chip.clock_ghz;
}

}  // namespace c64fft::c64
