#include "c64/trace.hpp"

namespace c64fft::c64 {

std::vector<double> BankTrace::imbalance_series() const {
  std::vector<double> out;
  out.reserve(windows());
  for (std::size_t w = 0; w < windows(); ++w) {
    std::uint64_t sum = 0, mx = 0;
    for (unsigned b = 0; b < banks(); ++b) {
      const std::uint64_t v = at(w, b);
      sum += v;
      if (v > mx) mx = v;
    }
    out.push_back(sum == 0 ? 1.0
                           : static_cast<double>(mx) * banks() / static_cast<double>(sum));
  }
  return out;
}

double BankTrace::total_imbalance() const {
  const auto t = totals();
  std::uint64_t sum = 0, mx = 0;
  for (auto v : t) {
    sum += v;
    if (v > mx) mx = v;
  }
  return sum == 0 ? 1.0 : static_cast<double>(mx) * banks() / static_cast<double>(sum);
}

}  // namespace c64fft::c64
