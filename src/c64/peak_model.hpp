#pragma once
// Closed-form theoretical peak performance of off-chip FFT on C64,
// Equations (1)-(4) of the paper (Section V-A):
//
//   peak = (5 N log2 N) / (exectime_per_task * #tasks)
//   #tasks = N/R * ceil(log2 N / log2 R)           (R = task size)
//   exectime_per_task = (R + R + (R-1)) * 16 B / DRAM_bandwidth
//
// With R = 64 and 16 GB/s this evaluates to 10 GFLOPS. The model assumes
// the off-chip ports are fully and evenly busy; any bank imbalance or
// synchronization stall only lowers achieved performance.

#include <cstdint>

#include "c64/config.hpp"

namespace c64fft::c64 {

struct PeakModel {
  ChipConfig chip;

  /// Flops the radix-2 FFT performs on N points (5 N log2 N, paper Eq. 1).
  static double fft_flops(std::uint64_t n);

  /// Number of R-point tasks for an N-point FFT (paper Eq. 2, with the
  /// ceiling retained).
  static std::uint64_t task_count(std::uint64_t n, std::uint64_t task_size);

  /// Off-chip bytes one R-point task moves: R loads + R stores + (R-1)
  /// twiddle loads, 16 B each (paper Eq. 3 numerator).
  static std::uint64_t task_bytes(std::uint64_t task_size);

  /// Best-case execution seconds of one task (paper Eq. 3).
  double task_seconds(std::uint64_t task_size) const;

  /// Theoretical peak in GFLOPS for an N-point FFT with R-point tasks
  /// (paper Eq. 1). Dropping the stage ceiling, this is independent of N:
  /// peak(R=64) = 10.05 GFLOPS.
  double peak_gflops(std::uint64_t n, std::uint64_t task_size) const;

  /// N-independent closed form (ceiling removed as in paper Eq. 4).
  double peak_gflops_asymptotic(std::uint64_t task_size) const;

  /// Compute-bound ceiling from the TU/FPU budget, for completeness:
  /// flops_per_cycle_per_tu * thread_units * clock.
  double compute_peak_gflops() const;
};

}  // namespace c64fft::c64
