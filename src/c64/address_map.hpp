#pragma once
// Byte-address -> DRAM-bank mapping of the C64 node: data is interleaved
// across the banks round-robin, switching banks every `interleave_bytes`
// (64 B = 4 double-precision complex elements). This tiny piece of address
// algebra is the root cause of the whole paper: twiddle indices that are
// multiples of 4 elements all land on the bank holding the array base.

#include <cstdint>

#include "c64/config.hpp"

namespace c64fft::c64 {

class AddressMap {
 public:
  explicit AddressMap(const ChipConfig& cfg)
      : banks_(cfg.dram_banks), interleave_(cfg.interleave_bytes) {}

  AddressMap(unsigned banks, unsigned interleave_bytes)
      : banks_(banks), interleave_(interleave_bytes) {}

  unsigned banks() const noexcept { return banks_; }
  unsigned interleave_bytes() const noexcept { return interleave_; }

  /// Bank holding byte address `addr`.
  unsigned bank_of(std::uint64_t addr) const noexcept {
    return static_cast<unsigned>((addr / interleave_) % banks_);
  }

  /// Bank of element `index` (of `elem_bytes` each) in an array whose
  /// first byte lives at `base`.
  unsigned bank_of_element(std::uint64_t base, std::uint64_t index,
                           unsigned elem_bytes) const noexcept {
    return bank_of(base + index * elem_bytes);
  }

  /// Number of bytes from `addr` to the end of its interleave line
  /// (i.e. the longest run starting at `addr` that stays in one bank).
  std::uint64_t bytes_left_in_line(std::uint64_t addr) const noexcept {
    return interleave_ - (addr % interleave_);
  }

 private:
  unsigned banks_;
  unsigned interleave_;
};

}  // namespace c64fft::c64
