#pragma once
// Byte-address -> DRAM-bank mapping of the C64 node: data is interleaved
// across the banks round-robin, switching banks every `interleave_bytes`
// (64 B = 4 double-precision complex elements). This tiny piece of address
// algebra is the root cause of the whole paper: twiddle indices that are
// multiples of 4 elements all land on the bank holding the array base.

#include <cstdint>
#include <numeric>

#include "c64/config.hpp"

namespace c64fft::c64 {

class AddressMap {
 public:
  explicit AddressMap(const ChipConfig& cfg)
      : banks_(cfg.dram_banks), interleave_(cfg.interleave_bytes) {}

  AddressMap(unsigned banks, unsigned interleave_bytes)
      : banks_(banks), interleave_(interleave_bytes) {}

  unsigned banks() const noexcept { return banks_; }
  unsigned interleave_bytes() const noexcept { return interleave_; }

  /// Bank holding byte address `addr`.
  unsigned bank_of(std::uint64_t addr) const noexcept {
    return static_cast<unsigned>((addr / interleave_) % banks_);
  }

  /// Bank of element `index` (of `elem_bytes` each) in an array whose
  /// first byte lives at `base`.
  unsigned bank_of_element(std::uint64_t base, std::uint64_t index,
                           unsigned elem_bytes) const noexcept {
    return bank_of(base + index * elem_bytes);
  }

  /// Number of bytes from `addr` to the end of its interleave line
  /// (i.e. the longest run starting at `addr` that stays in one bank).
  std::uint64_t bytes_left_in_line(std::uint64_t addr) const noexcept {
    return interleave_ - (addr % interleave_);
  }

  /// Distinct banks an unbounded line-aligned stream with the given byte
  /// stride touches. Strides that are a multiple of interleave * banks hit
  /// exactly one bank — the static signature of the twiddle hotspot: with
  /// 64 B lines and 16 B elements every element stride that is a multiple
  /// of 4 returns 1 here. A zero stride trivially touches one bank.
  unsigned banks_touched_by_stride(std::uint64_t stride_bytes) const noexcept {
    if (stride_bytes == 0) return 1;
    if (stride_bytes % interleave_ == 0) {
      // Line-granular hops: bank advances by stride/interleave mod banks.
      const std::uint64_t hop = (stride_bytes / interleave_) % banks_;
      return hop == 0 ? 1 : banks_ / static_cast<unsigned>(std::gcd(hop, std::uint64_t{banks_}));
    }
    // Sub-line stride: walk until the address phase repeats (period divides
    // interleave * banks / gcd, so the loop is tightly bounded). The visit
    // mask holds up to 64 banks; wider configs (never built for C64, which
    // has 4) conservatively report all banks touched.
    if (banks_ > 64) return banks_;
    const std::uint64_t period = std::uint64_t{interleave_} * banks_;
    std::uint64_t seen_mask = 0, addr = 0;
    do {
      seen_mask |= std::uint64_t{1} << bank_of(addr);
      addr = (addr + stride_bytes) % period;
    } while (addr != 0);
    unsigned count = 0;
    for (unsigned b = 0; b < banks_; ++b)
      if (seen_mask & (std::uint64_t{1} << b)) ++count;
    return count;
  }

 private:
  unsigned banks_;
  unsigned interleave_;
};

}  // namespace c64fft::c64
