#include "c64/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace c64fft::c64 {

std::vector<double> SimResult::bank_utilisation() const {
  std::vector<double> out(bank_busy_cycles.size(), 0.0);
  if (cycles == 0) return out;
  for (std::size_t b = 0; b < out.size(); ++b)
    out[b] = static_cast<double>(bank_busy_cycles[b]) / static_cast<double>(cycles);
  return out;
}

SimEngine::SimEngine(const ChipConfig& cfg, SimProgram& program, BankTrace* trace)
    : cfg_(cfg), program_(program), trace_(trace) {
  if (cfg_.thread_units == 0) throw std::invalid_argument("SimEngine: zero thread units");
  if (cfg_.dram_banks == 0) throw std::invalid_argument("SimEngine: zero banks");
  if (cfg_.max_outstanding == 0) throw std::invalid_argument("SimEngine: max_outstanding == 0");
  if (cfg_.hol_window == 0) throw std::invalid_argument("SimEngine: hol_window == 0");
  if (cfg_.bank_queue_depth == 0)
    throw std::invalid_argument("SimEngine: bank_queue_depth == 0");
  tus_.resize(cfg_.thread_units);
  tu_idle_parked_.assign(cfg_.thread_units, false);
  tu_finished_.assign(cfg_.thread_units, false);
  bank_free_.assign(cfg_.dram_banks, 0);
  bank_depth_.assign(cfg_.dram_banks, 0);
  result_.bank_busy_cycles.assign(cfg_.dram_banks, 0);
  result_.bank_bytes.assign(cfg_.dram_banks, 0);
}

void SimEngine::push_event(std::uint64_t time, EventKind kind, std::uint32_t tu) {
  events_.push(Event{time, seq_++, kind, tu});
}

SimResult SimEngine::run() {
  for (std::uint32_t tu = 0; tu < cfg_.thread_units; ++tu)
    push_event(0, EventKind::kTuReady, tu);

  std::uint64_t last_time = 0;
  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    last_time = std::max(last_time, ev.time);
    switch (ev.kind) {
      case EventKind::kTuReady:
        on_tu_ready(ev.tu, ev.time);
        break;
      case EventKind::kTuIssue:
        on_tu_issue(ev.tu, ev.time);
        break;
      case EventKind::kReqDone:
        on_req_done(ev.tu, ev.time);
        break;
      case EventKind::kBankSlotFree:
        --bank_depth_[ev.tu];  // `tu` field carries the bank id here
        dispatch_pending(ev.time);
        break;
      case EventKind::kComputeDone:
        on_compute_done(ev.tu, ev.time);
        break;
      case EventKind::kTaskDone:
        on_task_done(ev.tu, ev.time);
        break;
    }
  }

  if (!program_.finished())
    throw std::runtime_error(
        "SimEngine: deadlock — event queue drained but the program reports "
        "unfinished work (malformed codelet graph or barrier)");

  result_.cycles = last_time;
  result_.seconds = static_cast<double>(last_time) * cfg_.seconds_per_cycle();
  return result_;
}

void SimEngine::on_tu_ready(std::uint32_t tu, std::uint64_t now) {
  if (tu_finished_[tu]) return;
  if (tu_idle_parked_[tu]) tu_idle_parked_[tu] = false;

  TuContext& ctx = tus_[tu];
  if (ctx.state != TuState::kIdle) return;  // stale wake-up while busy

  ctx.task.clear();
  std::uint64_t wake_at = 0;
  switch (program_.next_task(tu, now, ctx.task, wake_at)) {
    case PopResult::kTask: {
      ctx.state = TuState::kLoads;
      ctx.busy_since = now;
      ctx.next_req = 0;
      ctx.inflight = 0;
      ctx.issue_limit = ctx.task.first_store;
      ctx.issue_scheduled = false;
      begin_phase(tu, now + ctx.task.start_overhead_cycles);
      break;
    }
    case PopResult::kWait:
      if (wake_at <= now)
        throw std::logic_error("SimProgram returned kWait with wake_at <= now");
      push_event(wake_at, EventKind::kTuReady, tu);
      break;
    case PopResult::kIdle:
      if (!tu_idle_parked_[tu]) {
        tu_idle_parked_[tu] = true;
        idle_tus_.push_back(tu);
      }
      break;
    case PopResult::kFinished:
      tu_finished_[tu] = true;
      break;
  }
}

void SimEngine::begin_phase(std::uint32_t tu, std::uint64_t now) {
  TuContext& ctx = tus_[tu];
  if (ctx.next_req >= ctx.issue_limit && ctx.inflight == 0) {
    phase_complete(tu, now);
    return;
  }
  schedule_issue(tu, now);
}

void SimEngine::schedule_issue(std::uint32_t tu, std::uint64_t now) {
  TuContext& ctx = tus_[tu];
  if (ctx.issue_scheduled) return;
  if (ctx.next_req >= ctx.issue_limit) return;
  if (ctx.inflight >= cfg_.max_outstanding) return;
  const MemRequest& req = ctx.task.requests[ctx.next_req];
  ctx.issue_scheduled = true;
  push_event(now + cfg_.issue_cycles + req.pre_issue_cycles, EventKind::kTuIssue, tu);
}

void SimEngine::on_tu_issue(std::uint32_t tu, std::uint64_t now) {
  TuContext& ctx = tus_[tu];
  ctx.issue_scheduled = false;
  assert(ctx.next_req < ctx.issue_limit);
  assert(ctx.inflight < cfg_.max_outstanding);
  const MemRequest& req = ctx.task.requests[ctx.next_req];
  ++ctx.next_req;
  ++ctx.inflight;
  pending_.push_back(PendingReq{tu, req.bank, req.bytes});
  dispatch_pending(now);
  schedule_issue(tu, now);
}

void SimEngine::on_req_done(std::uint32_t tu, std::uint64_t now) {
  TuContext& ctx = tus_[tu];
  assert(ctx.inflight > 0);
  --ctx.inflight;
  if (ctx.next_req >= ctx.issue_limit && ctx.inflight == 0) {
    phase_complete(tu, now);
  } else {
    schedule_issue(tu, now);
  }
}

void SimEngine::phase_complete(std::uint32_t tu, std::uint64_t now) {
  TuContext& ctx = tus_[tu];
  if (ctx.state == TuState::kLoads) {
    ctx.state = TuState::kCompute;
    push_event(now + ctx.task.compute_cycles, EventKind::kComputeDone, tu);
  } else {
    assert(ctx.state == TuState::kStores);
    push_event(now + ctx.task.finish_overhead_cycles, EventKind::kTaskDone, tu);
  }
}

void SimEngine::on_compute_done(std::uint32_t tu, std::uint64_t now) {
  TuContext& ctx = tus_[tu];
  assert(ctx.state == TuState::kCompute);
  ctx.state = TuState::kStores;
  ctx.issue_limit = static_cast<std::uint32_t>(ctx.task.requests.size());
  begin_phase(tu, now);
}

void SimEngine::on_task_done(std::uint32_t tu, std::uint64_t now) {
  TuContext& ctx = tus_[tu];
  ctx.state = TuState::kIdle;
  result_.tu_busy_cycles += now - ctx.busy_since;
  ++result_.tasks_completed;
  program_.task_done(tu, ctx.task.task_id, now);
  wake_idle_tus(now);
  push_event(now, EventKind::kTuReady, tu);
}

void SimEngine::wake_idle_tus(std::uint64_t now) {
  if (idle_tus_.empty()) return;
  for (std::uint32_t tu : idle_tus_) {
    if (tu_idle_parked_[tu]) {
      tu_idle_parked_[tu] = false;
      push_event(now, EventKind::kTuReady, tu);
    }
  }
  idle_tus_.clear();
}

void SimEngine::dispatch_pending(std::uint64_t now) {
  // Drop leading tombstones, compact occasionally.
  auto live_head = [&]() {
    while (pending_head_ < pending_.size() && pending_[pending_head_].bytes == 0)
      ++pending_head_;
  };
  live_head();
  if (pending_head_ > 4096 && pending_head_ * 2 > pending_.size()) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(pending_head_));
    pending_head_ = 0;
  }

  // Admit requests from the stream head (with `hol_window` lookahead)
  // into any bank with a free controller slot. A request admitted to a
  // busy bank queues behind it; a bank with no free slot blocks admission
  // of its requests — and, within the window, of everything behind them.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    unsigned scanned = 0;
    for (std::size_t i = pending_head_;
         i < pending_.size() && scanned < cfg_.hol_window; ++i) {
      PendingReq& req = pending_[i];
      if (req.bytes == 0) continue;  // tombstone
      ++scanned;
      if (bank_depth_[req.bank] < cfg_.bank_queue_depth) {
        const auto svc = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(req.bytes) / cfg_.bank_bytes_per_cycle));
        const std::uint64_t start = std::max(now, bank_free_[req.bank]);
        bank_free_[req.bank] = start + svc;
        ++bank_depth_[req.bank];
        result_.bank_busy_cycles[req.bank] += svc;
        result_.bank_bytes[req.bank] += req.bytes;
        result_.bytes += req.bytes;
        ++result_.requests;
        if (trace_) trace_->record(start, req.bank, req.bytes / 16);
        push_event(start + svc, EventKind::kBankSlotFree, req.bank);
        push_event(start + svc + cfg_.dram_latency, EventKind::kReqDone, req.tu);
        req.bytes = 0;  // tombstone
        progressed = true;
        break;
      }
    }
    live_head();
  }
  // A blocked head always waits on a bank whose kBankSlotFree event is
  // already scheduled, so no extra wake-up bookkeeping is needed.
}

}  // namespace c64fft::c64
