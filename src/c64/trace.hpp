#pragma once
// Per-bank access-rate tracing: the instrument behind the paper's Figs. 1,
// 2 and 6 ("access rates (number of memory accesses per 3x10^6 cycles) of
// the 4 memory banks").

#include <cstdint>
#include <vector>

#include "util/timeseries.hpp"

namespace c64fft::c64 {

class BankTrace {
 public:
  BankTrace(unsigned banks, std::uint64_t window_cycles)
      : series_(banks, window_cycles) {}

  /// Record `elements` accesses to `bank` at cycle `t`.
  void record(std::uint64_t t, unsigned bank, std::uint64_t elements) {
    series_.record(t, bank, elements);
  }

  unsigned banks() const noexcept { return static_cast<unsigned>(series_.channels()); }
  std::uint64_t window_cycles() const noexcept { return series_.window_width(); }
  std::size_t windows() const noexcept { return series_.windows(); }

  /// Accesses on `bank` during window `w`.
  std::uint64_t at(std::size_t w, unsigned bank) const { return series_.at(w, bank); }

  /// Full series for one bank.
  std::vector<std::uint64_t> bank_series(unsigned bank) const {
    return series_.channel_series(bank);
  }

  /// Total accesses per bank over the whole run.
  std::vector<std::uint64_t> totals() const {
    std::vector<std::uint64_t> out(banks());
    for (unsigned b = 0; b < banks(); ++b) out[b] = series_.channel_total(b);
    return out;
  }

  /// max/mean access-count ratio per window; 1.0 means perfectly balanced.
  std::vector<double> imbalance_series() const;

  /// max/mean ratio of the whole-run per-bank totals.
  double total_imbalance() const;

  void clear() { series_.clear(); }

 private:
  util::WindowedSeries series_;
};

}  // namespace c64fft::c64
