#include "fft/plan_cache.hpp"

#include <algorithm>
#include <utility>

namespace c64fft::fft {

PlanEntry::PlanEntry(const PlanKey& key)
    : key_(key), plan_(key.n, key.radix_log2), forward_(key.n, key.layout) {
  const std::uint32_t stages = plan_.stage_count();
  groups_.assign(stages, 0);
  thresholds_.assign(stages, 1);
  for (std::uint32_t s = 1; s < stages; ++s) {
    groups_[s] = plan_.groups_in_stage(s);
    thresholds_[s] = plan_.group_threshold(s);
  }
}

const TwiddleTable& PlanEntry::twiddles(TwiddleDirection dir) const {
  if (dir == TwiddleDirection::kForward) return forward_;
  std::call_once(inverse_once_, [this] {
    inverse_ = std::make_unique<TwiddleTable>(key_.n, key_.layout,
                                              TwiddleDirection::kInverse);
  });
  return *inverse_;
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::shared_ptr<const PlanEntry> PlanCache::acquire(const PlanKey& key) {
  {
    std::lock_guard lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      return it->second->second;
    }
    ++stats_.misses;
  }

  // O(N) plan + trig build runs unlocked; a losing racer adopts the entry
  // the winner inserted.
  auto entry = std::make_shared<const PlanEntry>(key);

  std::lock_guard lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, entry);
  map_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return entry;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void PlanCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  map_.clear();
}

}  // namespace c64fft::fft
