#include "fft/plan_cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fft/reference.hpp"
#include "util/cpu_features.hpp"

namespace c64fft::fft {

namespace {

std::vector<cplx32> narrow(const std::vector<cplx>& v) {
  std::vector<cplx32> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = cplx32(static_cast<float>(v[i].real()),
                    static_cast<float>(v[i].imag()));
  return out;
}

}  // namespace

PlanEntry::PlanEntry(const PlanKey& key) : key_(key) {
  if (key.kind == PlanKind::kMixedRadix) {
    mixed_ = std::make_unique<MixedRadixPlan>(key.n);
    if (key.precision == Precision::kF32)
      mixed_fwd32_ =
          mixed_radix_twiddles<float>(*mixed_, TwiddleDirection::kForward);
    else
      mixed_fwd_ =
          mixed_radix_twiddles<double>(*mixed_, TwiddleDirection::kForward);
    return;
  }
  if (key.kind == PlanKind::kBluestein) {
    if (key.n < 2)
      throw std::invalid_argument("PlanEntry: Bluestein size must be >= 2");
    conv_n_ = bluestein_fft_size(key.n);
    std::vector<cplx> chirp, bfft;
    build_bluestein(TwiddleDirection::kForward, chirp, bfft);
    if (key.precision == Precision::kF32) {
      chirp_fwd32_ = narrow(chirp);
      bfft_fwd32_ = narrow(bfft);
    } else {
      chirp_fwd_ = std::move(chirp);
      bfft_fwd_ = std::move(bfft);
    }
    return;
  }
  if (key.kind != PlanKind::kClassic)
    throw std::invalid_argument(
        "PlanEntry: single-key constructor requires kClassic, kMixedRadix, "
        "or kBluestein");
  plan_ = std::make_unique<FftPlan>(key.n, key.radix_log2);
  if (key.precision == Precision::kF32)
    forward32_ = std::make_unique<TwiddleTableF>(key.n, key.layout);
  else
    forward_ = std::make_unique<TwiddleTable>(key.n, key.layout);
  const std::uint32_t stages = plan_->stage_count();
  groups_.assign(stages, 0);
  thresholds_.assign(stages, 1);
  for (std::uint32_t s = 1; s < stages; ++s) {
    groups_[s] = plan_->groups_in_stage(s);
    thresholds_[s] = plan_->group_threshold(s);
  }
}

void PlanEntry::build_bluestein(TwiddleDirection dir,
                                std::vector<cplx>& chirp_out,
                                std::vector<cplx>& bfft_out) const {
  // Everything evaluates in double regardless of the entry precision (the
  // f32 tables are narrowed images), including the chirp-filter FFT: the
  // serial pow2 reference keeps the filter's own rounding at f64.
  const std::uint64_t n = key_.n;
  chirp_out.resize(n);
  for (std::uint64_t j = 0; j < n; ++j)
    chirp_out[j] = bluestein_chirp<double>(n, j, dir);
  bfft_out.assign(conv_n_, cplx{});
  bfft_out[0] = std::conj(chirp_out[0]);
  for (std::uint64_t j = 1; j < n; ++j) {
    const cplx b = std::conj(chirp_out[j]);
    bfft_out[j] = b;
    bfft_out[conv_n_ - j] = b;
  }
  fft_serial_inplace(std::span<cplx>(bfft_out));
}

void PlanEntry::build_inverse_tables() const {
  if (key_.kind == PlanKind::kMixedRadix) {
    if (key_.precision == Precision::kF32)
      mixed_inv32_ =
          mixed_radix_twiddles<float>(*mixed_, TwiddleDirection::kInverse);
    else
      mixed_inv_ =
          mixed_radix_twiddles<double>(*mixed_, TwiddleDirection::kInverse);
    return;
  }
  std::vector<cplx> chirp, bfft;
  build_bluestein(TwiddleDirection::kInverse, chirp, bfft);
  if (key_.precision == Precision::kF32) {
    chirp_inv32_ = narrow(chirp);
    bfft_inv32_ = narrow(bfft);
  } else {
    chirp_inv_ = std::move(chirp);
    bfft_inv_ = std::move(bfft);
  }
}

PlanEntry::PlanEntry(const PlanKey& key, FourStepSplit split,
                     std::shared_ptr<const PlanEntry> col_entry,
                     std::shared_ptr<const PlanEntry> row_entry)
    : key_(key),
      split_(split),
      col_entry_(std::move(col_entry)),
      row_entry_(std::move(row_entry)) {
  if (key.kind != PlanKind::kFourStep)
    throw std::invalid_argument("PlanEntry: four-step constructor requires kFourStep key");
  if (split_.n1 * split_.n2 != key.n || !col_entry_ || !row_entry_ ||
      col_entry_->key().n != split_.n1 || row_entry_->key().n != split_.n2 ||
      col_entry_->precision() != key.precision ||
      row_entry_->precision() != key.precision)
    throw std::invalid_argument("PlanEntry: four-step split/sub-entry mismatch");
}

PlanEntry::PlanEntry(const PlanKey& key, HierarchicalSplit split,
                     std::shared_ptr<const PlanEntry> col_entry,
                     std::shared_ptr<const PlanEntry> row_entry)
    : key_(key),
      split_{split.n1, split.n2},
      levels_(split.levels),
      col_entry_(std::move(col_entry)),
      row_entry_(std::move(row_entry)) {
  if (key.kind != PlanKind::kHierarchical)
    throw std::invalid_argument(
        "PlanEntry: hierarchical constructor requires kHierarchical key");
  const PlanKind col_kind =
      split.col_recursive ? PlanKind::kHierarchical : PlanKind::kClassic;
  if (split_.n1 * split_.n2 != key.n || !col_entry_ || !row_entry_ ||
      col_entry_->key().n != split_.n1 || row_entry_->key().n != split_.n2 ||
      col_entry_->kind() != col_kind ||
      row_entry_->kind() != PlanKind::kClassic ||
      col_entry_->precision() != key.precision ||
      row_entry_->precision() != key.precision)
    throw std::invalid_argument(
        "PlanEntry: hierarchical split/sub-entry mismatch");
}

const PlanEntry& PlanEntry::require_classic() const {
  if (key_.kind != PlanKind::kClassic)
    throw std::logic_error("PlanEntry: classic-only accessor on a composite entry");
  return *this;
}

const PlanEntry& PlanEntry::require_composite() const {
  if (key_.kind != PlanKind::kFourStep && key_.kind != PlanKind::kHierarchical)
    throw std::logic_error(
        "PlanEntry: composite accessor on a non-four-step/hierarchical entry");
  return *this;
}

const PlanEntry& PlanEntry::require_mixed() const {
  if (key_.kind != PlanKind::kMixedRadix)
    throw std::logic_error(
        "PlanEntry: mixed-radix accessor on a non-mixed-radix entry");
  return *this;
}

const PlanEntry& PlanEntry::require_bluestein() const {
  if (key_.kind != PlanKind::kBluestein)
    throw std::logic_error(
        "PlanEntry: Bluestein accessor on a non-Bluestein entry");
  return *this;
}

const MixedRadixPlan& PlanEntry::mixed_plan() const {
  return *require_mixed().mixed_;
}

std::span<const cplx> PlanEntry::mixed_twiddles(TwiddleDirection dir) const {
  const PlanEntry& e = require_mixed();
  if (e.key_.precision != Precision::kF64)
    throw std::logic_error("PlanEntry: f64 twiddle accessor on an f32 entry");
  if (dir == TwiddleDirection::kForward) return e.mixed_fwd_;
  std::call_once(inverse_once_, [this] { build_inverse_tables(); });
  return mixed_inv_;
}

std::span<const cplx32> PlanEntry::mixed_twiddles_f32(
    TwiddleDirection dir) const {
  const PlanEntry& e = require_mixed();
  if (e.key_.precision != Precision::kF32)
    throw std::logic_error("PlanEntry: f32 twiddle accessor on an f64 entry");
  if (dir == TwiddleDirection::kForward) return e.mixed_fwd32_;
  std::call_once(inverse_once_, [this] { build_inverse_tables(); });
  return mixed_inv32_;
}

std::uint64_t PlanEntry::conv_size() const {
  return require_bluestein().conv_n_;
}

std::span<const cplx> PlanEntry::chirp(TwiddleDirection dir) const {
  const PlanEntry& e = require_bluestein();
  if (e.key_.precision != Precision::kF64)
    throw std::logic_error("PlanEntry: f64 chirp accessor on an f32 entry");
  if (dir == TwiddleDirection::kForward) return e.chirp_fwd_;
  std::call_once(inverse_once_, [this] { build_inverse_tables(); });
  return chirp_inv_;
}

std::span<const cplx32> PlanEntry::chirp_f32(TwiddleDirection dir) const {
  const PlanEntry& e = require_bluestein();
  if (e.key_.precision != Precision::kF32)
    throw std::logic_error("PlanEntry: f32 chirp accessor on an f64 entry");
  if (dir == TwiddleDirection::kForward) return e.chirp_fwd32_;
  std::call_once(inverse_once_, [this] { build_inverse_tables(); });
  return chirp_inv32_;
}

std::span<const cplx> PlanEntry::chirp_fft(TwiddleDirection dir) const {
  const PlanEntry& e = require_bluestein();
  if (e.key_.precision != Precision::kF64)
    throw std::logic_error("PlanEntry: f64 chirp accessor on an f32 entry");
  if (dir == TwiddleDirection::kForward) return e.bfft_fwd_;
  std::call_once(inverse_once_, [this] { build_inverse_tables(); });
  return bfft_inv_;
}

std::span<const cplx32> PlanEntry::chirp_fft_f32(TwiddleDirection dir) const {
  const PlanEntry& e = require_bluestein();
  if (e.key_.precision != Precision::kF32)
    throw std::logic_error("PlanEntry: f32 chirp accessor on an f64 entry");
  if (dir == TwiddleDirection::kForward) return e.bfft_fwd32_;
  std::call_once(inverse_once_, [this] { build_inverse_tables(); });
  return bfft_inv32_;
}

const TwiddleTable& PlanEntry::twiddles(TwiddleDirection dir) const {
  const PlanEntry& e = require_classic();
  if (e.key_.precision != Precision::kF64)
    throw std::logic_error("PlanEntry: f64 twiddle accessor on an f32 entry");
  if (dir == TwiddleDirection::kForward) return *e.forward_;
  std::call_once(inverse_once_, [this] {
    inverse_ = std::make_unique<TwiddleTable>(key_.n, key_.layout,
                                              TwiddleDirection::kInverse);
  });
  return *inverse_;
}

const TwiddleTableF& PlanEntry::twiddles_f32(TwiddleDirection dir) const {
  const PlanEntry& e = require_classic();
  if (e.key_.precision != Precision::kF32)
    throw std::logic_error("PlanEntry: f32 twiddle accessor on an f64 entry");
  if (dir == TwiddleDirection::kForward) return *e.forward32_;
  std::call_once(inverse_once_, [this] {
    inverse32_ = std::make_unique<TwiddleTableF>(key_.n, key_.layout,
                                                 TwiddleDirection::kInverse);
  });
  return *inverse32_;
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::shared_ptr<const PlanEntry> PlanCache::acquire(const PlanKey& key) {
  {
    std::lock_guard lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      return it->second->second;
    }
    ++stats_.misses;
  }

  // O(N) plan + trig build runs unlocked; a losing racer adopts the entry
  // the winner inserted.
  std::shared_ptr<const PlanEntry> entry;
  if (key.kind == PlanKind::kFourStep) {
    // Recursion depth is exactly 1: sub-keys are always kClassic, with the
    // radix narrowed when a sub-size is smaller than 2^radix_log2.
    const FourStepSplit split = four_step_split(key.n);
    // Sub-keys inherit the parent's precision: an f32 four-step transform
    // pins f32 row/column sub-plans.
    PlanKey col_key{split.n1, validate_fft_shape(split.n1, key.radix_log2, true),
                    key.layout, PlanKind::kClassic, key.precision};
    PlanKey row_key{split.n2, validate_fft_shape(split.n2, key.radix_log2, true),
                    key.layout, PlanKind::kClassic, key.precision};
    auto col = acquire(col_key);
    auto row = split.n1 == split.n2 ? col : acquire(row_key);
    entry = std::make_shared<const PlanEntry>(key, split, std::move(col),
                                              std::move(row));
  } else if (key.kind == PlanKind::kHierarchical) {
    // Recursion depth equals the level count: the row leaf is classic,
    // the column sub-key re-enters as kHierarchical (same leaf cap) until
    // the balanced split fits inside two leaves.
    const unsigned leaf =
        key.hier_leaf_log2 != 0
            ? key.hier_leaf_log2
            : hierarchical_leaf_log2(
                  util::cache_info().l2_bytes,
                  key.precision == Precision::kF32 ? 8 : 16);
    const HierarchicalSplit split = hierarchical_split(key.n, leaf);
    PlanKey row_key{split.n2, validate_fft_shape(split.n2, key.radix_log2, true),
                    key.layout, PlanKind::kClassic, key.precision};
    std::shared_ptr<const PlanEntry> col;
    if (split.col_recursive) {
      PlanKey col_key{split.n1, key.radix_log2, key.layout,
                      PlanKind::kHierarchical, key.precision, leaf};
      col = acquire(col_key);
    } else {
      PlanKey col_key{split.n1,
                      validate_fft_shape(split.n1, key.radix_log2, true),
                      key.layout, PlanKind::kClassic, key.precision};
      col = split.n1 == split.n2 ? nullptr : acquire(col_key);
    }
    auto row = acquire(row_key);
    if (!col) col = row;  // square single-level split shares one sub-entry
    entry = std::make_shared<const PlanEntry>(key, split, std::move(col),
                                              std::move(row));
  } else {
    entry = std::make_shared<const PlanEntry>(key);
  }

  std::lock_guard lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, entry);
  map_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return entry;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard lock(mutex_);
  PlanCacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

void PlanCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  map_.clear();
}

void PlanCache::set_schedules(ScheduleSet schedules) {
  std::lock_guard lock(mutex_);
  schedules_ = std::move(schedules);
}

std::optional<TunedSchedule> PlanCache::tuned_for(std::uint64_t n,
                                                  Precision precision,
                                                  util::IsaLevel isa) const {
  std::lock_guard lock(mutex_);
  return schedules_.find(n, precision, isa);
}

}  // namespace c64fft::fft
