#include "fft/mixed_radix.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/bit_ops.hpp"

namespace c64fft::fft {

namespace {

/// Naive complex product. std::complex operator* lowers to the __muldc3
/// libcall (NaN/Inf recovery branches) and costs ~3x the four-mul kernel
/// on finite inputs; every value in an FFT stage is finite, where the two
/// agree bit-for-bit, so the stage runners use this form.
template <typename T>
inline cplx_t<T> cmul(const cplx_t<T>& a, const cplx_t<T>& b) {
  return cplx_t<T>(a.real() * b.real() - a.imag() * b.imag(),
                   a.real() * b.imag() + a.imag() * b.real());
}

/// Codelet DFT-matrix constants of an odd radix R: c[k-1][j-1] =
/// cos(2*pi*k*j/R), s[k-1][j-1] = sin(2*pi*k*j/R) for k, j in
/// [1, (R-1)/2]. Evaluated once in double; the f32 codelet narrows at
/// use, so both precisions share one correctly rounded constant set.
template <unsigned R>
struct OddRadixConstants {
  double c[(R - 1) / 2][(R - 1) / 2];
  double s[(R - 1) / 2][(R - 1) / 2];
};

template <unsigned R>
const OddRadixConstants<R>& odd_radix_constants() {
  static const OddRadixConstants<R> table = [] {
    OddRadixConstants<R> t{};
    constexpr unsigned kHalf = (R - 1) / 2;
    for (unsigned k = 1; k <= kHalf; ++k)
      for (unsigned j = 1; j <= kHalf; ++j) {
        const double a =
            2.0 * std::numbers::pi * static_cast<double>(k * j) / R;
        t.c[k - 1][j - 1] = std::cos(a);
        t.s[k - 1][j - 1] = std::sin(a);
      }
    return t;
  }();
  return table;
}

/// Odd-radix DFT via the real/imaginary pairing a_j = t_j + t_{R-j},
/// b_j = t_j - t_{R-j}: y_k = m_k -+ i*d_k with m_k = t0 + sum_j c_kj*a_j
/// and d_k = sum_j s_kj*b_j (forward takes -i*d_k; the inverse conjugates
/// every root, which flips only the d term's sign).
template <typename T, unsigned R>
inline void butterfly_odd(cplx_t<T>* v, bool inverse) {
  constexpr unsigned kHalf = (R - 1) / 2;
  const OddRadixConstants<R>& C = odd_radix_constants<R>();
  const cplx_t<T> t0 = v[0];
  cplx_t<T> a[kHalf], b[kHalf];
  for (unsigned j = 1; j <= kHalf; ++j) {
    a[j - 1] = v[j] + v[R - j];
    b[j - 1] = v[j] - v[R - j];
  }
  cplx_t<T> y0 = t0;
  for (unsigned j = 0; j < kHalf; ++j) y0 += a[j];
  v[0] = y0;
  for (unsigned k = 1; k <= kHalf; ++k) {
    cplx_t<T> m = t0;
    cplx_t<T> d{};
    for (unsigned j = 1; j <= kHalf; ++j) {
      m += static_cast<T>(C.c[k - 1][j - 1]) * a[j - 1];
      d += static_cast<T>(C.s[k - 1][j - 1]) * b[j - 1];
    }
    const T dre = inverse ? -d.real() : d.real();
    const T dim = inverse ? -d.imag() : d.imag();
    v[k] = cplx_t<T>(m.real() + dim, m.imag() - dre);
    v[R - k] = cplx_t<T>(m.real() - dim, m.imag() + dre);
  }
}

/// Radix-4: a = t0+t2, b = t0-t2, c = t1+t3, d = t1-t3; y0 = a+c,
/// y2 = a-c, y1/y3 = b -+ i*d (forward), sign flipped for inverse.
template <typename T>
inline void butterfly4(cplx_t<T>* v, bool inverse) {
  const cplx_t<T> a = v[0] + v[2];
  const cplx_t<T> b = v[0] - v[2];
  const cplx_t<T> c = v[1] + v[3];
  const cplx_t<T> d = v[1] - v[3];
  const T dre = inverse ? -d.real() : d.real();
  const T dim = inverse ? -d.imag() : d.imag();
  v[0] = a + c;
  v[1] = cplx_t<T>(b.real() + dim, b.imag() - dre);
  v[2] = a - c;
  v[3] = cplx_t<T>(b.real() - dim, b.imag() + dre);
}

/// Radix-8 as two radix-4 halves over the even/odd subsequences combined
/// through W_8^k: y_k = e_k + W_8^k*o_k, y_{k+4} = e_k - W_8^k*o_k with
/// W_8 = exp(-2*pi*i/8) forward (conjugated inverse).
template <typename T>
inline void butterfly8(cplx_t<T>* v, bool inverse) {
  cplx_t<T> e[4] = {v[0], v[2], v[4], v[6]};
  cplx_t<T> o[4] = {v[1], v[3], v[5], v[7]};
  butterfly4<T>(e, inverse);
  butterfly4<T>(o, inverse);
  const T c = static_cast<T>(std::numbers::sqrt2 / 2.0);
  const T sgn = inverse ? T(1) : T(-1);
  const cplx_t<T> w1(c, sgn * c);
  const cplx_t<T> w3(-c, sgn * c);
  const cplx_t<T> t1 = cmul<T>(w1, o[1]);
  const cplx_t<T> t2 = inverse ? cplx_t<T>(-o[2].imag(), o[2].real())
                               : cplx_t<T>(o[2].imag(), -o[2].real());
  const cplx_t<T> t3 = cmul<T>(w3, o[3]);
  v[0] = e[0] + o[0];
  v[4] = e[0] - o[0];
  v[1] = e[1] + t1;
  v[5] = e[1] - t1;
  v[2] = e[2] + t2;
  v[6] = e[2] - t2;
  v[3] = e[3] + t3;
  v[7] = e[3] - t3;
}

/// Stage sweep with the radix fixed at compile time: the per-butterfly
/// radix switch of the generic loop costs register pressure more than
/// branches — with R a constant the compiler unrolls the leg loads, the
/// codelet, and the stores into straight-line code with v[] fully in
/// registers. Same operations in the same order as the generic loop, so
/// results are bit-identical.
template <typename T, unsigned R>
void run_stage_fixed(const MixedRadixStage& st, const cplx_t<T>* tw,
                     std::span<const cplx_t<T>> src, std::span<cplx_t<T>> dst,
                     std::uint64_t g_begin, std::uint64_t g_end,
                     bool inverse) {
  const std::uint64_t lp = st.prev_len;
  const std::uint64_t len = st.len;
  cplx_t<T> v[R];
  // Butterfly g has digits (b, j) = (g / lp, g % lp); carrying the digits
  // across iterations replaces two 64-bit divisions per butterfly (the
  // single hottest instruction pair of the original loop) with one
  // compare-and-carry.
  std::uint64_t b = g_begin / lp;
  std::uint64_t j = g_begin - b * lp;
  for (std::uint64_t g = g_begin; g < g_end; ++g) {
    const std::uint64_t base = b * len + j;
    const cplx_t<T>* const wj = tw + j * (R - 1);
    v[0] = src[base];
    for (unsigned u = 1; u < R; ++u)
      v[u] = cmul<T>(src[base + u * lp], wj[u - 1]);
    if constexpr (R == 2) {
      const cplx_t<T> s = v[0] + v[1];
      v[1] = v[0] - v[1];
      v[0] = s;
    } else if constexpr (R == 4) {
      butterfly4<T>(v, inverse);
    } else if constexpr (R == 8) {
      butterfly8<T>(v, inverse);
    } else {
      butterfly_odd<T, R>(v, inverse);
    }
    for (unsigned k = 0; k < R; ++k) dst[base + k * lp] = v[k];
    if (++j == lp) {
      j = 0;
      ++b;
    }
  }
}

}  // namespace

Factorization factorize(std::uint64_t n) {
  Factorization f;
  if (n == 0) {
    f.residue = 0;
    return f;
  }
  std::uint64_t m = n;
  unsigned e2 = 0;
  while ((m & 1) == 0) {
    m >>= 1;
    ++e2;
  }
  // Pow2 part as the widest codelets that tile it: 8s while more than a
  // 4,4 remainder is left, then one 4/4,4/2 tail. (e2=4 prefers 4*4 over
  // 8*2: two mid radices beat one wide plus the narrowest.)
  while (e2 >= 3 && e2 != 4) {
    f.factors.push_back(8);
    e2 -= 3;
  }
  if (e2 == 4) {
    f.factors.push_back(4);
    f.factors.push_back(4);
  } else if (e2 == 2) {
    f.factors.push_back(4);
  } else if (e2 == 1) {
    f.factors.push_back(2);
  }
  while (m % 7 == 0) {
    f.factors.push_back(7);
    m /= 7;
  }
  while (m % 5 == 0) {
    f.factors.push_back(5);
    m /= 5;
  }
  while (m % 3 == 0) {
    f.factors.push_back(3);
    m /= 3;
  }
  f.residue = m;
  f.smooth = m == 1;
  return f;
}

std::uint64_t factorization_digest(const Factorization& f) {
  if (!f.smooth) return 0;
  std::uint64_t e2 = 0, e3 = 0, e5 = 0, e7 = 0;
  for (const std::uint32_t r : f.factors) {
    switch (r) {
      case 2: e2 += 1; break;
      case 4: e2 += 2; break;
      case 8: e2 += 3; break;
      case 3: ++e3; break;
      case 5: ++e5; break;
      case 7: ++e7; break;
      default: break;
    }
  }
  return e2 | (e3 << 8) | (e5 << 16) | (e7 << 24);
}

std::uint64_t digit_reverse(std::uint64_t p,
                            std::span<const std::uint32_t> factors) {
  // Horner over the execution-order digit bases: peeling the least
  // significant digit (base f_0) first leaves it most significant in the
  // result, which is exactly the recursive DIT requirement that the
  // top-stage residue u land as src = f_top * sigma(q) + u.
  std::uint64_t t = p;
  std::uint64_t src = 0;
  for (const std::uint32_t f : factors) {
    src = src * f + t % f;
    t /= f;
  }
  return src;
}

MixedRadixPlan::MixedRadixPlan(std::uint64_t n)
    : n_(n), factorization_(factorize(n)) {
  if (n < 2)
    throw std::invalid_argument("MixedRadixPlan: size must be >= 2");
  if (n >> 32)
    throw std::invalid_argument(
        "MixedRadixPlan: size must be < 2^32 (permutation table width)");
  if (!factorization_.smooth)
    throw std::invalid_argument(
        "MixedRadixPlan: size must be 7-smooth (non-smooth sizes route to "
        "Bluestein)");
  std::uint64_t len = 1;
  std::uint64_t off = 0;
  stages_.reserve(factorization_.factors.size());
  for (const std::uint32_t r : factorization_.factors) {
    MixedRadixStage st;
    st.radix = r;
    st.prev_len = len;
    len *= r;
    st.len = len;
    st.twiddle_offset = off;
    off += st.prev_len * (r - 1);
    stages_.push_back(st);
    max_radix_ = std::max(max_radix_, r);
  }
  perm_.resize(n);
  const std::span<const std::uint32_t> factors(factorization_.factors);
  for (std::uint64_t p = 0; p < n; ++p)
    perm_[p] = static_cast<std::uint32_t>(digit_reverse(p, factors));
}

std::uint64_t MixedRadixPlan::butterfly_flops(std::uint32_t radix) {
  // Twiddle multiplies (6 real flops each, u = 1..r-1) plus the codelet
  // DFT body; the radix-2 value (10) matches FftPlan's historical
  // 10-per-butterfly convention so cost baselines stay comparable.
  switch (radix) {
    case 2: return 10;
    case 3: return 30;
    case 4: return 34;
    case 5: return 64;
    case 7: return 120;
    case 8: return 110;
    default: return 10;
  }
}

std::uint64_t MixedRadixPlan::total_flops() const noexcept {
  std::uint64_t flops = 0;
  for (const MixedRadixStage& st : stages_)
    flops += (n_ / st.radix) * butterfly_flops(st.radix);
  return flops;
}

template <typename T>
std::vector<cplx_t<T>> mixed_radix_twiddles(const MixedRadixPlan& plan,
                                            TwiddleDirection direction) {
  std::vector<cplx_t<T>> tw;
  tw.reserve(plan.twiddle_count());
  for (const MixedRadixStage& st : plan.stages())
    for (std::uint64_t j = 0; j < st.prev_len; ++j)
      for (std::uint32_t u = 1; u < st.radix; ++u)
        tw.push_back(unit_root<T>(st.len, (j * u) % st.len, direction));
  return tw;
}

template <typename T>
void mixed_radix_permute(const MixedRadixPlan& plan,
                         std::span<const cplx_t<T>> src,
                         std::span<cplx_t<T>> dst, std::uint64_t begin,
                         std::uint64_t end) {
  const std::span<const std::uint32_t> perm = plan.permutation();
  for (std::uint64_t p = begin; p < end; ++p) dst[p] = src[perm[p]];
}

template <typename T>
void run_mixed_radix_stage(const MixedRadixPlan& plan, std::uint32_t stage,
                           std::span<const cplx_t<T>> twiddles,
                           std::span<const cplx_t<T>> src,
                           std::span<cplx_t<T>> dst, std::uint64_t g_begin,
                           std::uint64_t g_end, TwiddleDirection direction) {
  const MixedRadixStage& st = plan.stages()[stage];
  const bool inverse = direction == TwiddleDirection::kInverse;
  const cplx_t<T>* const tw = twiddles.data() + st.twiddle_offset;
  switch (st.radix) {
    case 2: run_stage_fixed<T, 2>(st, tw, src, dst, g_begin, g_end, inverse); break;
    case 3: run_stage_fixed<T, 3>(st, tw, src, dst, g_begin, g_end, inverse); break;
    case 4: run_stage_fixed<T, 4>(st, tw, src, dst, g_begin, g_end, inverse); break;
    case 5: run_stage_fixed<T, 5>(st, tw, src, dst, g_begin, g_end, inverse); break;
    case 7: run_stage_fixed<T, 7>(st, tw, src, dst, g_begin, g_end, inverse); break;
    case 8: run_stage_fixed<T, 8>(st, tw, src, dst, g_begin, g_end, inverse); break;
    default: break;
  }
}

template <typename T>
void mixed_radix_serial(const MixedRadixPlan& plan,
                        std::span<const cplx_t<T>> twiddles,
                        std::span<cplx_t<T>> data,
                        std::vector<cplx_t<T>>& scratch,
                        TwiddleDirection direction) {
  const std::uint64_t n = plan.size();
  if (scratch.size() < n) scratch.resize(n);
  const std::span<cplx_t<T>> s(scratch.data(), n);
  mixed_radix_permute<T>(plan, data, s, 0, n);
  // Stage 0 reads the permuted scratch and writes data (identical
  // indices, disjoint buffers); stages 1+ run in place on data.
  const std::uint32_t stages = plan.stage_count();
  run_mixed_radix_stage<T>(plan, 0, twiddles, s, data, 0,
                           n / plan.stages()[0].radix, direction);
  for (std::uint32_t st = 1; st < stages; ++st)
    run_mixed_radix_stage<T>(plan, st, twiddles, data, data, 0,
                             n / plan.stages()[st].radix, direction);
}

template <typename T>
cplx_t<T> bluestein_chirp(std::uint64_t n, std::uint64_t j,
                          TwiddleDirection direction) {
  const std::uint64_t two_n = 2 * n;
  const std::uint64_t t = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(j) * j) % two_n);
  return unit_root<T>(two_n, t, direction);
}

std::uint64_t bluestein_fft_size(std::uint64_t n) {
  if (n < 2) return 2;
  return util::next_pow2(2 * n - 1);
}

template std::vector<cplx> mixed_radix_twiddles<double>(const MixedRadixPlan&,
                                                        TwiddleDirection);
template std::vector<cplx32> mixed_radix_twiddles<float>(const MixedRadixPlan&,
                                                         TwiddleDirection);
template void mixed_radix_permute<double>(const MixedRadixPlan&,
                                          std::span<const cplx>,
                                          std::span<cplx>, std::uint64_t,
                                          std::uint64_t);
template void mixed_radix_permute<float>(const MixedRadixPlan&,
                                         std::span<const cplx32>,
                                         std::span<cplx32>, std::uint64_t,
                                         std::uint64_t);
template void run_mixed_radix_stage<double>(const MixedRadixPlan&,
                                            std::uint32_t,
                                            std::span<const cplx>,
                                            std::span<const cplx>,
                                            std::span<cplx>, std::uint64_t,
                                            std::uint64_t, TwiddleDirection);
template void run_mixed_radix_stage<float>(const MixedRadixPlan&,
                                           std::uint32_t,
                                           std::span<const cplx32>,
                                           std::span<const cplx32>,
                                           std::span<cplx32>, std::uint64_t,
                                           std::uint64_t, TwiddleDirection);
template void mixed_radix_serial<double>(const MixedRadixPlan&,
                                         std::span<const cplx>,
                                         std::span<cplx>, std::vector<cplx>&,
                                         TwiddleDirection);
template void mixed_radix_serial<float>(const MixedRadixPlan&,
                                        std::span<const cplx32>,
                                        std::span<cplx32>,
                                        std::vector<cplx32>&,
                                        TwiddleDirection);
template cplx bluestein_chirp<double>(std::uint64_t, std::uint64_t,
                                      TwiddleDirection);
template cplx32 bluestein_chirp<float>(std::uint64_t, std::uint64_t,
                                       TwiddleDirection);

}  // namespace c64fft::fft
