#pragma once
// Stage/task decomposition of an N-point radix-2^r Cooley-Tukey FFT into
// 2^r-point codelets — the index algebra of the paper's Section IV-A.
//
// With N = 2^n, radix R = 2^r (paper: R = 64, r = 6) and S = ceil(n/r)
// stages, every stage has N/R tasks. A task of a *full* stage j gathers
// one chain of R elements
//     data_k = D[R^{j+1} * floor(i/R^j) + (i mod R^j) + k * R^j]
// and applies r butterfly levels. When r does not divide n, the last
// stage applies only w = n mod r levels; its tasks still move R elements
// but as R/2^w independent chains of 2^w points each:
//     data_{c,q} = D[(cpt*i + c) + q * 2^{r*j}],  cpt = R / 2^w
// (this degenerates to the full-stage chain when w = r). The twiddle of a
// butterfly whose lower element has global index g at global level L is
//     W[(g mod 2^L) * 2^{n-L-1}]
// which reduces to the paper's per-task formula.
//
// Dependency structure: a stage-(j+1) task reads outputs of exactly
// `group_threshold(j+1)` distinct stage-j tasks, and tasks sharing that
// parent set form a *sibling group* which shares one dependency counter
// (Section IV-A2). All of this algebra is cross-validated in the tests
// against a brute-force element-ownership graph.

#include <cstdint>
#include <vector>

namespace c64fft::fft {

struct StageInfo {
  std::uint32_t index = 0;
  /// Butterfly levels this stage applies (r, or n mod r for a partial
  /// last stage).
  std::uint32_t levels = 0;
  /// Independent chains per task (1 for a full stage).
  std::uint64_t chains_per_task = 1;
  /// Points per chain (R for a full stage, 2^levels otherwise).
  std::uint64_t chain_len = 0;
  /// Element stride within a chain: R^index... = 2^{r*index}.
  std::uint64_t chain_stride = 1;
  bool partial = false;
};

/// How a transform of a given size is executed:
///  * kClassic  — the paper's stage/task codelet decomposition below.
///  * kFourStep — Bailey's four-step decomposition for large N: the data
///    is viewed as an N1 x N2 matrix, each sub-dimension is transformed
///    as a batch of classic cache-resident FFTs, and the inter-step
///    twiddle scaling is fused into a blocked transpose (transpose.hpp).
///    The executor routes N at/above its threshold through this kind.
///  * kHierarchical — the four-step decomposition applied recursively:
///    the row sub-FFT is capped at a cache-resident leaf size and the
///    column sub-FFT re-splits hierarchically until it fits too, so
///    every butterfly sweep at every level runs on a working set sized
///    for the targeted cache level. The executor drives it as a
///    tile-granular dependency-counted pipeline instead of the
///    four-step path's barrier-phased passes.
///  * kMixedRadix — factorization-driven composite-N plan (mixed_radix
///    .hpp): a factorize(n) stage vector of radix-2/3/4/5/7/8 codelets
///    with generalized digit-reversal and per-stage twiddles. The
///    executor routes every non-pow2 7-smooth size through this kind.
///  * kBluestein — chirp-z for prime and non-7-smooth N: the transform
///    becomes a circular convolution of length next_pow2(2n-1), executed
///    through the shared pow2 plans of the same cache.
enum class PlanKind {
  kClassic,
  kFourStep,
  kHierarchical,
  kMixedRadix,
  kBluestein
};

/// Stable lower-case name ("classic" / "four-step" / "hierarchical" /
/// "mixed-radix" / "bluestein") used by lint tooling and baseline metric
/// keys.
const char* to_string(PlanKind kind) noexcept;

/// Factorization N = n1 * n2 used by the four-step path. Balanced
/// (n1 = 2^floor(log2(N)/2) <= n2) so both sub-transforms are as small —
/// and as cache-resident — as possible; the matrix view has n1 rows of
/// n2 columns.
struct FourStepSplit {
  std::uint64_t n1 = 0;
  std::uint64_t n2 = 0;
};

/// Split for the four-step path. N must be a power of two >= 4 (both
/// factors >= 2); throws std::invalid_argument otherwise.
FourStepSplit four_step_split(std::uint64_t n);

/// One level of the hierarchical decomposition: N = n1 * n2 viewed as an
/// n1 x n2 matrix, where n2 is the row sub-FFT (always a classic
/// cache-resident leaf) and n1 the column sub-FFT, which re-splits
/// hierarchically whenever it is still too large for the leaf cap.
struct HierarchicalSplit {
  std::uint64_t n1 = 0;
  std::uint64_t n2 = 0;
  /// Total decomposition levels at and below this node (1 == the split
  /// degenerates to the balanced four-step factorization).
  unsigned levels = 1;
  /// True when the n1 sub-FFT is itself hierarchical (levels > 1).
  bool col_recursive = false;
};

/// Leaf size cap (log2 points) for the hierarchical planner: the largest
/// sub-FFT whose working set — a block of rows plus its scratch, ~8x the
/// row itself — still fits `cache_bytes`. Clamped to [4, 16] so exotic
/// sysconf answers can never produce degenerate or unbounded leaves.
unsigned hierarchical_leaf_log2(std::uint64_t cache_bytes, unsigned element_bytes);

/// Split for the hierarchical path. While log2(N) <= 2 * leaf_log2 the
/// split is balanced — identical to four_step_split(n), one level — so
/// the default planner reproduces the four-step shape (and its bit-exact
/// output) until N genuinely outgrows two leaf halves; beyond that the
/// row factor is pinned to the leaf and the column factor recurses.
/// N must be a power of two >= 4; leaf_log2 is clamped to [2, 30].
HierarchicalSplit hierarchical_split(std::uint64_t n, unsigned leaf_log2);

/// Shared shape validator for every FFT entry point (plan construction,
/// the public api.cpp wrappers, the executor): any N >= 2 is accepted —
/// pow2 sizes run the classic/four-step/hierarchical plans, composite
/// sizes the mixed-radix plan, and everything else Bluestein — with
/// radix_log2 in [1, 8]. Returns the radix_log2 to use. For pow2 N, when
/// `clamp_radix` is true a radix wider than log2(N) is narrowed to
/// log2(N) (the public-API convenience); when false it throws (the plan
/// contract, relied on by tests). For non-pow2 N the radix is advisory —
/// mixed-radix and Bluestein plans ignore it — so it is always clamped
/// (against floor(log2 N)) and never throws on width.
unsigned validate_fft_shape(std::uint64_t n, unsigned radix_log2, bool clamp_radix);

class FftPlan {
 public:
  /// N must be a power of two with N >= R = 2^radix_log2, radix_log2 in
  /// [1, 8] (the paper uses 6; Fig. 7 sweeps 2..7).
  FftPlan(std::uint64_t n, unsigned radix_log2);

  std::uint64_t size() const noexcept { return n_; }
  unsigned log2_size() const noexcept { return log2n_; }
  std::uint64_t radix() const noexcept { return std::uint64_t{1} << r_; }
  unsigned radix_log2() const noexcept { return r_; }

  std::uint32_t stage_count() const noexcept { return static_cast<std::uint32_t>(stages_.size()); }
  const StageInfo& stage(std::uint32_t s) const { return stages_.at(s); }
  /// Tasks per stage (N/R, identical for every stage).
  std::uint64_t tasks_per_stage() const noexcept { return tasks_; }
  /// Total codelets over all stages.
  std::uint64_t total_tasks() const noexcept { return tasks_ * stage_count(); }

  /// Global data index of local point k (0 <= k < R) of task i in stage s.
  /// Local points enumerate chains contiguously: k = c * chain_len + q.
  std::uint64_t element_index(std::uint32_t s, std::uint64_t i, std::uint64_t k) const;

  /// Base (first element) of chain c of task i in stage s.
  std::uint64_t chain_base(std::uint32_t s, std::uint64_t i, std::uint64_t c) const;

  /// Logical twiddle index of the butterfly at local level v whose lower
  /// element is local point k of task i in stage s. k must be in the lower
  /// half of its 2^{v+1} sub-block: (k mod 2^{v+1}) < 2^v within its chain.
  std::uint64_t twiddle_index(std::uint32_t s, std::uint64_t i, std::uint32_t v,
                              std::uint64_t k) const;

  /// Distinct twiddle factors one task of stage s loads
  /// (R-1 for a full stage; cpt*(2^w - 1) for the partial last stage).
  std::uint64_t twiddles_per_task(std::uint32_t s) const;

  /// The R data element indices task i of stage s reads and writes (the
  /// in-place kernel's footprint), in local-point order k = 0..R-1.
  void task_elements(std::uint32_t s, std::uint64_t i, std::vector<std::uint64_t>& out) const;

  /// Logical twiddle indices task i of stage s loads, one per butterfly
  /// (twiddles_per_task(s) entries, level-major).
  void task_twiddles(std::uint32_t s, std::uint64_t i, std::vector<std::uint64_t>& out) const;

  /// Real floating-point operations per task of stage s
  /// (10 flops per 2-point butterfly; 5*R*levels total).
  std::uint64_t flops_per_task(std::uint32_t s) const;

  // ---- Dependency / sibling-group algebra ----

  /// Number of distinct stage-(s-1) producers one stage-s task reads
  /// (== the shared counter threshold of stage s). s >= 1.
  std::uint32_t group_threshold(std::uint32_t s) const;

  /// Number of sibling groups in stage s (s >= 1); groups * members == tasks.
  std::uint64_t groups_in_stage(std::uint32_t s) const;

  /// Members of one sibling group in stage s (s >= 1); tasks/groups entries.
  std::uint64_t group_size(std::uint32_t s) const;

  /// Sibling-group id of task l in stage s (s >= 1).
  std::uint64_t group_of(std::uint32_t s, std::uint64_t l) const;

  /// The sibling group of stage s+1 whose counter task i of stage s
  /// increments on completion (every task increments exactly one).
  std::uint64_t child_group(std::uint32_t s, std::uint64_t i) const;

  /// Tasks of sibling group g in stage s, ascending (s >= 1).
  void group_members(std::uint32_t s, std::uint64_t g, std::vector<std::uint64_t>& out) const;

  /// The distinct stage-(s-1) producers of sibling group g in stage s,
  /// ascending — used by the guided algorithm's phase-2 seeding (Alg. 3).
  void group_parents(std::uint32_t s, std::uint64_t g, std::vector<std::uint64_t>& out) const;

  /// Direct consumers of task i in stage s (empty for the last stage):
  /// exactly the members of sibling group child_group(s, i) in stage s+1.
  void children_of(std::uint32_t s, std::uint64_t i, std::vector<std::uint64_t>& out) const;

  /// Distinct producers of task l in stage s (s >= 1), ascending.
  void parents_of(std::uint32_t s, std::uint64_t l, std::vector<std::uint64_t>& out) const;

 private:
  std::uint64_t rpow(unsigned e) const noexcept { return std::uint64_t{1} << (r_ * e); }

  std::uint64_t n_;
  unsigned log2n_;
  unsigned r_;
  std::uint64_t tasks_;
  std::vector<StageInfo> stages_;
};

}  // namespace c64fft::fft
