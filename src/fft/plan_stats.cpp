#include "fft/plan_stats.hpp"

#include <algorithm>

#include "util/bit_ops.hpp"

namespace c64fft::fft {

double StageTraffic::imbalance() const {
  std::uint64_t sum = 0, mx = 0;
  for (unsigned b = 0; b < data_accesses.size(); ++b) {
    const std::uint64_t v = bank_total(b);
    sum += v;
    mx = std::max(mx, v);
  }
  if (sum == 0) return 1.0;
  return static_cast<double>(mx) * static_cast<double>(data_accesses.size()) /
         static_cast<double>(sum);
}

TrafficCensus::TrafficCensus(const FftPlan& plan, TwiddleLayout layout, unsigned banks,
                             unsigned interleave_bytes, std::uint64_t data_base,
                             std::uint64_t twiddle_base, unsigned element_bytes)
    : banks_(banks) {
  const std::uint64_t half = plan.size() / 2;
  const unsigned tw_bits = half > 1 ? util::ilog2(half) : 0;
  auto bank_of = [&](std::uint64_t addr) {
    return static_cast<unsigned>((addr / interleave_bytes) % banks);
  };

  stages_.reserve(plan.stage_count());
  std::vector<std::uint64_t> elems, twiddles;
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s) {
    StageTraffic st;
    st.stage = s;
    st.data_accesses.assign(banks, 0);
    st.twiddle_accesses.assign(banks, 0);
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i) {
      // Data: one load + one store per element.
      plan.task_elements(s, i, elems);
      for (std::uint64_t e : elems)
        st.data_accesses[bank_of(data_base + e * element_bytes)] += 2;
      // Twiddles: one load per distinct factor.
      plan.task_twiddles(s, i, twiddles);
      for (std::uint64_t t : twiddles) {
        const std::uint64_t slot =
            layout == TwiddleLayout::kBitReversed ? util::bit_reverse(t, tw_bits) : t;
        st.twiddle_accesses[bank_of(twiddle_base + slot * element_bytes)] += 1;
      }
    }
    stages_.push_back(std::move(st));
  }
}

std::vector<std::uint64_t> TrafficCensus::totals() const {
  std::vector<std::uint64_t> out(banks_, 0);
  for (const auto& st : stages_)
    for (unsigned b = 0; b < banks_; ++b) out[b] += st.bank_total(b);
  return out;
}

double TrafficCensus::total_imbalance() const {
  const auto t = totals();
  std::uint64_t sum = 0, mx = 0;
  for (auto v : t) {
    sum += v;
    mx = std::max(mx, v);
  }
  if (sum == 0) return 1.0;
  return static_cast<double>(mx) * banks_ / static_cast<double>(sum);
}

double TrafficCensus::schedule_invariant_bound_cycles(double bytes_per_cycle,
                                                      unsigned element_bytes) const {
  const auto t = totals();
  std::uint64_t mx = 0;
  for (auto v : t) mx = std::max(mx, v);
  return static_cast<double>(mx) * element_bytes / bytes_per_cycle;
}

}  // namespace c64fft::fft
