#pragma once
// Initial pool orderings for the fine-grain algorithm. The paper observes
// that "the initial order of the ready codelets in the concurrent pool may
// affect the performance a lot" and reports the empirically best and worst
// cases; these named orders (combined with a LIFO/FIFO pop policy) realise
// that sweep.

#include <cstdint>
#include <string>
#include <vector>

#include "codelet/codelet.hpp"

namespace c64fft::fft {

enum class SeedOrder {
  kNatural,     ///< 0,1,2,... — with LIFO this completes sibling groups
                ///  quickly and cascades depth-first ("fine best" shape)
  kReverse,     ///< T-1,...,0
  kStrided,     ///< bit-reversed task order — maximally scatters sibling
                ///  groups, delaying group completion ("fine worst" shape)
  kRandom,      ///< deterministic shuffle of the natural order
};

/// Pool discipline + seed order + shuffle seed. The paper's named cases:
///   fine best  ~ {kLifo, kNatural}
///   fine worst ~ {kFifo, kStrided}
struct FineOrdering {
  codelet::PoolPolicy policy = codelet::PoolPolicy::kLifo;
  SeedOrder order = SeedOrder::kNatural;
  std::uint64_t seed = 1;
};

/// The stage-0 task ids (count `tasks`) in the given order.
std::vector<std::uint64_t> make_seed_order(SeedOrder order, std::uint64_t tasks,
                                           std::uint64_t seed);

/// Presets used by benches: the orderings swept to produce the paper's
/// "fine best"/"fine worst" envelope.
std::vector<FineOrdering> ordering_sweep();

class FftPlan;

/// Phase-2 seed order for the guided algorithm (Alg. 3): the tasks of
/// stage last-1, grouped by the last-stage sibling group they enable
/// ("columns"). All members of one column draw their data from the same
/// DRAM bank, so columns are emitted in batches of up to `banks` columns
/// with distinct banks, member-interleaved: a batch completes together
/// (enabling several last-stage groups at once) without turning one bank
/// into a burst hotspot. Bank geometry defaults to the C64 interleave.
std::vector<std::uint64_t> guided_phase2_order(const FftPlan& plan,
                                               unsigned banks = 4,
                                               unsigned interleave_bytes = 64,
                                               unsigned elem_bytes = 16);

std::string to_string(SeedOrder order);
std::string to_string(const FineOrdering& o);

}  // namespace c64fft::fft
