#include "fft/kernel.hpp"

#include <cassert>

namespace c64fft::fft {

void butterfly_chain(std::span<cplx> chain, std::uint64_t base, std::uint64_t stride,
                     std::uint32_t first_level, std::uint32_t levels, unsigned log2n,
                     const TwiddleTable& twiddles) {
  const std::uint64_t len = chain.size();
  assert(len == (std::uint64_t{1} << levels));
  for (std::uint32_t v = 0; v < levels; ++v) {
    const std::uint64_t half = std::uint64_t{1} << v;
    const std::uint32_t level = first_level + v;  // global butterfly level L
    const std::uint64_t block_mask = (std::uint64_t{1} << level) - 1;
    const unsigned shift = log2n - level - 1;
    for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
      for (std::uint64_t q = lo; q < lo + half; ++q) {
        // Twiddle of the butterfly whose lower element has global index g:
        // W[(g mod 2^L) << (n - L - 1)].
        const std::uint64_t g = base + q * stride;
        const cplx w = twiddles.at((g & block_mask) << shift);
        const cplx t = w * chain[q + half];
        chain[q + half] = chain[q] - t;
        chain[q] += t;
      }
    }
  }
}

void butterfly_chain_split(double* re, double* im, std::uint64_t len,
                           std::uint64_t base, std::uint64_t stride,
                           std::uint32_t first_level, std::uint32_t levels,
                           unsigned log2n, const TwiddleTable& twiddles,
                           double* tw_re, double* tw_im) {
  assert(len == (std::uint64_t{1} << levels));
  for (std::uint32_t v = 0; v < levels; ++v) {
    const std::uint64_t half = std::uint64_t{1} << v;
    const std::uint32_t level = first_level + v;  // global butterfly level L
    const std::uint64_t block_mask = (std::uint64_t{1} << level) - 1;
    const unsigned shift = log2n - level - 1;
    // Within one block, butterfly u (0 <= u < half) twiddles with
    // W[((base + lo*stride + u*stride) mod 2^L) << shift]. Block starts lo
    // are multiples of 2^{v+1}, so whenever stride*2^{v+1} ≡ 0 (mod 2^L)
    // every block of this level reuses the same `half` twiddles (plan
    // chains always qualify: stride = 2^{first_level} there, giving
    // stride*2^{v+1} = 2^{L+1}). If the progression additionally never
    // wraps mod 2^L (also true for every plan chain: base mod 2^L <
    // stride), it can be materialized once into a contiguous span;
    // otherwise fall back to the per-element index computation.
    const std::uint64_t c = base & block_mask;
    const bool blocks_share = ((stride << (v + 1)) & block_mask) == 0;
    const bool wrap_free = c + (half - 1) * stride <= block_mask;
    if (blocks_share && wrap_free) {
      for (std::uint64_t u = 0; u < half; ++u) {
        const cplx w = twiddles.at((c + u * stride) << shift);
        tw_re[u] = w.real();
        tw_im[u] = w.imag();
      }
      for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
        double* __restrict ar = re + lo;
        double* __restrict ai = im + lo;
        double* __restrict br = re + lo + half;
        double* __restrict bi = im + lo + half;
        const double* __restrict wr = tw_re;
        const double* __restrict wi = tw_im;
        for (std::uint64_t u = 0; u < half; ++u) {
          const double tr = wr[u] * br[u] - wi[u] * bi[u];
          const double ti = wr[u] * bi[u] + wi[u] * br[u];
          br[u] = ar[u] - tr;
          bi[u] = ai[u] - ti;
          ar[u] += tr;
          ai[u] += ti;
        }
      }
    } else {
      for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
        for (std::uint64_t q = lo; q < lo + half; ++q) {
          const std::uint64_t g = base + q * stride;
          const cplx w = twiddles.at((g & block_mask) << shift);
          const double tr = w.real() * re[q + half] - w.imag() * im[q + half];
          const double ti = w.real() * im[q + half] + w.imag() * re[q + half];
          re[q + half] = re[q] - tr;
          im[q + half] = im[q] - ti;
          re[q] += tr;
          im[q] += ti;
        }
      }
    }
  }
}

void run_codelet(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                 std::span<cplx> data, const TwiddleTable& twiddles,
                 KernelScratch& scratch) {
  const StageInfo& st = plan.stage(stage);
  assert(scratch.re.size() >= plan.radix());
  assert(twiddles.fft_size() == plan.size());

  for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
    const std::uint64_t base = plan.chain_base(stage, task, c);
    double* __restrict re = scratch.re.data() + c * st.chain_len;
    double* __restrict im = scratch.im.data() + c * st.chain_len;
    // Gather, deinterleaved (the simulated machine's "load into
    // scratchpad" plus the split-complex layout the SIMD loops want).
    const cplx* d = data.data();
    for (std::uint64_t q = 0; q < st.chain_len; ++q) {
      const cplx x = d[base + q * st.chain_stride];
      re[q] = x.real();
      im[q] = x.imag();
    }

    butterfly_chain_split(re, im, st.chain_len, base, st.chain_stride,
                          plan.radix_log2() * stage, st.levels, plan.log2_size(),
                          twiddles, scratch.tw_re.data(), scratch.tw_im.data());

    // Scatter back in place, re-interleaving.
    cplx* out = data.data();
    for (std::uint64_t q = 0; q < st.chain_len; ++q)
      out[base + q * st.chain_stride] = cplx(re[q], im[q]);
  }
}

void run_stage0_bitrev(const FftPlan& plan, std::span<cplx> data,
                       const TwiddleTable& twiddles,
                       std::span<const std::uint32_t> bitrev_idx, double* re,
                       double* im, KernelScratch& scratch) {
  const StageInfo& st = plan.stage(0);
  const std::uint64_t n = plan.size();
  assert(st.chain_stride == 1);
  assert(data.size() == n);
  assert(bitrev_idx.size() >= n);
  assert(twiddles.fft_size() == n);

  // Permuted gather: the whole row deinterleaves into the split scratch in
  // one pass (scattered reads stay inside the cache-resident row).
  const cplx* d = data.data();
  for (std::uint64_t g = 0; g < n; ++g) {
    const cplx x = d[bitrev_idx[g]];
    re[g] = x.real();
    im[g] = x.imag();
  }

  // Stage-0 chains are contiguous [base, base + chain_len) slices of the
  // scratch (stride 1), so the butterflies run directly on it.
  for (std::uint64_t t = 0; t < plan.tasks_per_stage(); ++t)
    for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
      const std::uint64_t base = plan.chain_base(0, t, c);
      butterfly_chain_split(re + base, im + base, st.chain_len, base,
                            st.chain_stride, 0, st.levels, plan.log2_size(),
                            twiddles, scratch.tw_re.data(),
                            scratch.tw_im.data());
    }

  cplx* out = data.data();
  for (std::uint64_t g = 0; g < n; ++g) out[g] = cplx(re[g], im[g]);
}

void run_codelet_scalar(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                        std::span<cplx> data, const TwiddleTable& twiddles,
                        std::span<cplx> scratch) {
  const StageInfo& st = plan.stage(stage);
  assert(scratch.size() >= plan.radix());
  assert(twiddles.fft_size() == plan.size());

  for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
    const std::uint64_t base = plan.chain_base(stage, task, c);
    cplx* local = scratch.data() + c * st.chain_len;
    // Gather (the simulated machine's "load into scratchpad").
    for (std::uint64_t q = 0; q < st.chain_len; ++q)
      local[q] = data[base + q * st.chain_stride];

    butterfly_chain({local, st.chain_len}, base, st.chain_stride,
                    plan.radix_log2() * stage, st.levels, plan.log2_size(), twiddles);

    // Scatter back in place.
    for (std::uint64_t q = 0; q < st.chain_len; ++q)
      data[base + q * st.chain_stride] = local[q];
  }
}

}  // namespace c64fft::fft
