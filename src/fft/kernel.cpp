#include "fft/kernel.hpp"

#include <cassert>

namespace c64fft::fft {
namespace {

template <typename T>
void chain_impl(std::span<cplx_t<T>> chain, std::uint64_t base, std::uint64_t stride,
                std::uint32_t first_level, std::uint32_t levels, unsigned log2n,
                const BasicTwiddleTable<T>& twiddles) {
  const std::uint64_t len = chain.size();
  assert(len == (std::uint64_t{1} << levels));
  for (std::uint32_t v = 0; v < levels; ++v) {
    const std::uint64_t half = std::uint64_t{1} << v;
    const std::uint32_t level = first_level + v;  // global butterfly level L
    const std::uint64_t block_mask = (std::uint64_t{1} << level) - 1;
    const unsigned shift = log2n - level - 1;
    for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
      for (std::uint64_t q = lo; q < lo + half; ++q) {
        // Twiddle of the butterfly whose lower element has global index g:
        // W[(g mod 2^L) << (n - L - 1)].
        const std::uint64_t g = base + q * stride;
        const cplx_t<T> w = twiddles.at((g & block_mask) << shift);
        const cplx_t<T> t = w * chain[q + half];
        chain[q + half] = chain[q] - t;
        chain[q] += t;
      }
    }
  }
}

template <typename T>
inline void butterfly_split(T* __restrict r, T* __restrict i, std::uint64_t a,
                            std::uint64_t b, T wr, T wi) {
  const T tr = wr * r[b] - wi * i[b];
  const T ti = wr * i[b] + wi * r[b];
  r[b] = r[a] - tr;
  i[b] = i[a] - ti;
  r[a] += tr;
  i[a] += ti;
}

template <typename T>
void chain_split_impl(T* __restrict re, T* __restrict im, std::uint64_t len,
                      std::uint64_t base, std::uint64_t stride,
                      std::uint32_t first_level, std::uint32_t levels,
                      unsigned log2n, const BasicTwiddleTable<T>& twiddles,
                      T* __restrict tw_re, T* __restrict tw_im) {
  assert(len == (std::uint64_t{1} << levels));

  // Fused radix-8 first pass: levels v = 0..2 have half = 1/2/4, so the
  // per-level inner loops below run 1-4 scalar butterflies per block —
  // pure loop overhead the vectorizer can't touch, identical for both
  // precisions. When all three levels share their twiddles across blocks
  // (every plan chain does: stride = 2^{first_level}), the 12 butterflies
  // of one 8-element group use 7 twiddles total, so the whole group
  // becomes one straight-line body the SLP vectorizer packs at the full
  // register width — this is where f32's doubled lane count actually
  // shows. Butterfly order within a group matches the per-level loops
  // exactly (each element sees the same operation sequence), so results
  // are bit-identical to the generic path.
  std::uint32_t v_start = 0;
  if (levels >= 3) {
    bool fuse = true;
    T twr[7], twi[7];
    int k = 0;
    for (std::uint32_t v = 0; v < 3 && fuse; ++v) {
      const std::uint64_t half = std::uint64_t{1} << v;
      const std::uint32_t level = first_level + v;
      const std::uint64_t block_mask = (std::uint64_t{1} << level) - 1;
      const unsigned shift = log2n - level - 1;
      const std::uint64_t c = base & block_mask;
      fuse = ((stride << (v + 1)) & block_mask) == 0 &&
             c + (half - 1) * stride <= block_mask;
      for (std::uint64_t u = 0; u < half && fuse; ++u) {
        const cplx_t<T> w = twiddles.at((c + u * stride) << shift);
        twr[k] = w.real();
        twi[k] = w.imag();
        ++k;
      }
    }
    if (fuse) {
      for (std::uint64_t g = 0; g < len; g += 8) {
        T* __restrict r = re + g;
        T* __restrict i = im + g;
        butterfly_split(r, i, 0, 1, twr[0], twi[0]);  // v=0, half=1
        butterfly_split(r, i, 2, 3, twr[0], twi[0]);
        butterfly_split(r, i, 4, 5, twr[0], twi[0]);
        butterfly_split(r, i, 6, 7, twr[0], twi[0]);
        butterfly_split(r, i, 0, 2, twr[1], twi[1]);  // v=1, half=2
        butterfly_split(r, i, 1, 3, twr[2], twi[2]);
        butterfly_split(r, i, 4, 6, twr[1], twi[1]);
        butterfly_split(r, i, 5, 7, twr[2], twi[2]);
        butterfly_split(r, i, 0, 4, twr[3], twi[3]);  // v=2, half=4
        butterfly_split(r, i, 1, 5, twr[4], twi[4]);
        butterfly_split(r, i, 2, 6, twr[5], twi[5]);
        butterfly_split(r, i, 3, 7, twr[6], twi[6]);
      }
      v_start = 3;
    }
  }

  for (std::uint32_t v = v_start; v < levels; ++v) {
    const std::uint64_t half = std::uint64_t{1} << v;
    const std::uint32_t level = first_level + v;  // global butterfly level L
    const std::uint64_t block_mask = (std::uint64_t{1} << level) - 1;
    const unsigned shift = log2n - level - 1;
    // Within one block, butterfly u (0 <= u < half) twiddles with
    // W[((base + lo*stride + u*stride) mod 2^L) << shift]. Block starts lo
    // are multiples of 2^{v+1}, so whenever stride*2^{v+1} ≡ 0 (mod 2^L)
    // every block of this level reuses the same `half` twiddles (plan
    // chains always qualify: stride = 2^{first_level} there, giving
    // stride*2^{v+1} = 2^{L+1}). If the progression additionally never
    // wraps mod 2^L (also true for every plan chain: base mod 2^L <
    // stride), it can be materialized once into a contiguous span;
    // otherwise fall back to the per-element index computation.
    const std::uint64_t c = base & block_mask;
    const bool blocks_share = ((stride << (v + 1)) & block_mask) == 0;
    const bool wrap_free = c + (half - 1) * stride <= block_mask;
    if (blocks_share && wrap_free) {
      for (std::uint64_t u = 0; u < half; ++u) {
        const cplx_t<T> w = twiddles.at((c + u * stride) << shift);
        tw_re[u] = w.real();
        tw_im[u] = w.imag();
      }
      // Indexed form, not per-block pointers: recomputing `re + lo + half`
      // style pointers inside the lo loop defeats GCC's dependence
      // analysis ("no vectype") and the butterflies stay scalar; with the
      // affine indices below plus the __restrict parameters the u loop
      // vectorizes at both element widths.
      for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
        for (std::uint64_t u = 0; u < half; ++u) {
          const T tr = tw_re[u] * re[lo + half + u] - tw_im[u] * im[lo + half + u];
          const T ti = tw_re[u] * im[lo + half + u] + tw_im[u] * re[lo + half + u];
          re[lo + half + u] = re[lo + u] - tr;
          im[lo + half + u] = im[lo + u] - ti;
          re[lo + u] += tr;
          im[lo + u] += ti;
        }
      }
    } else {
      for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
        for (std::uint64_t q = lo; q < lo + half; ++q) {
          const std::uint64_t g = base + q * stride;
          const cplx_t<T> w = twiddles.at((g & block_mask) << shift);
          const T tr = w.real() * re[q + half] - w.imag() * im[q + half];
          const T ti = w.real() * im[q + half] + w.imag() * re[q + half];
          re[q + half] = re[q] - tr;
          im[q + half] = im[q] - ti;
          re[q] += tr;
          im[q] += ti;
        }
      }
    }
  }
}

template <typename T>
void run_codelet_impl(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                      std::span<cplx_t<T>> data, const BasicTwiddleTable<T>& twiddles,
                      BasicKernelScratch<T>& scratch) {
  const StageInfo& st = plan.stage(stage);
  assert(scratch.re.size() >= plan.radix());
  assert(twiddles.fft_size() == plan.size());

  for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
    const std::uint64_t base = plan.chain_base(stage, task, c);
    T* __restrict re = scratch.re.data() + c * st.chain_len;
    T* __restrict im = scratch.im.data() + c * st.chain_len;
    // Gather, deinterleaved (the simulated machine's "load into
    // scratchpad" plus the split-complex layout the SIMD loops want).
    const cplx_t<T>* d = data.data();
    for (std::uint64_t q = 0; q < st.chain_len; ++q) {
      const cplx_t<T> x = d[base + q * st.chain_stride];
      re[q] = x.real();
      im[q] = x.imag();
    }

    chain_split_impl<T>(re, im, st.chain_len, base, st.chain_stride,
                        plan.radix_log2() * stage, st.levels, plan.log2_size(),
                        twiddles, scratch.tw_re.data(), scratch.tw_im.data());

    // Scatter back in place, re-interleaving.
    cplx_t<T>* out = data.data();
    for (std::uint64_t q = 0; q < st.chain_len; ++q)
      out[base + q * st.chain_stride] = cplx_t<T>(re[q], im[q]);
  }
}

template <typename T>
void run_stage0_bitrev_impl(const FftPlan& plan, std::span<cplx_t<T>> data,
                            const BasicTwiddleTable<T>& twiddles,
                            std::span<const std::uint32_t> bitrev_idx, T* re,
                            T* im, BasicKernelScratch<T>& scratch) {
  const StageInfo& st = plan.stage(0);
  const std::uint64_t n = plan.size();
  assert(st.chain_stride == 1);
  assert(data.size() == n);
  assert(bitrev_idx.size() >= n);
  assert(twiddles.fft_size() == n);

  // Permuted gather: the whole row deinterleaves into the split scratch in
  // one pass (scattered reads stay inside the cache-resident row).
  const cplx_t<T>* d = data.data();
  for (std::uint64_t g = 0; g < n; ++g) {
    const cplx_t<T> x = d[bitrev_idx[g]];
    re[g] = x.real();
    im[g] = x.imag();
  }

  // Stage-0 chains are contiguous [base, base + chain_len) slices of the
  // scratch (stride 1), so the butterflies run directly on it.
  for (std::uint64_t t = 0; t < plan.tasks_per_stage(); ++t)
    for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
      const std::uint64_t base = plan.chain_base(0, t, c);
      chain_split_impl<T>(re + base, im + base, st.chain_len, base,
                          st.chain_stride, 0, st.levels, plan.log2_size(),
                          twiddles, scratch.tw_re.data(), scratch.tw_im.data());
    }

  cplx_t<T>* out = data.data();
  for (std::uint64_t g = 0; g < n; ++g) out[g] = cplx_t<T>(re[g], im[g]);
}

template <typename T>
void run_codelet_scalar_impl(const FftPlan& plan, std::uint32_t stage,
                             std::uint64_t task, std::span<cplx_t<T>> data,
                             const BasicTwiddleTable<T>& twiddles,
                             std::span<cplx_t<T>> scratch) {
  const StageInfo& st = plan.stage(stage);
  assert(scratch.size() >= plan.radix());
  assert(twiddles.fft_size() == plan.size());

  for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
    const std::uint64_t base = plan.chain_base(stage, task, c);
    cplx_t<T>* local = scratch.data() + c * st.chain_len;
    // Gather (the simulated machine's "load into scratchpad").
    for (std::uint64_t q = 0; q < st.chain_len; ++q)
      local[q] = data[base + q * st.chain_stride];

    chain_impl<T>({local, st.chain_len}, base, st.chain_stride,
                  plan.radix_log2() * stage, st.levels, plan.log2_size(), twiddles);

    // Scatter back in place.
    for (std::uint64_t q = 0; q < st.chain_len; ++q)
      data[base + q * st.chain_stride] = local[q];
  }
}

}  // namespace

void butterfly_chain(std::span<cplx> chain, std::uint64_t base, std::uint64_t stride,
                     std::uint32_t first_level, std::uint32_t levels, unsigned log2n,
                     const TwiddleTable& twiddles) {
  chain_impl<double>(chain, base, stride, first_level, levels, log2n, twiddles);
}

void butterfly_chain(std::span<cplx32> chain, std::uint64_t base,
                     std::uint64_t stride, std::uint32_t first_level,
                     std::uint32_t levels, unsigned log2n,
                     const TwiddleTableF& twiddles) {
  chain_impl<float>(chain, base, stride, first_level, levels, log2n, twiddles);
}

void butterfly_chain_split(double* re, double* im, std::uint64_t len,
                           std::uint64_t base, std::uint64_t stride,
                           std::uint32_t first_level, std::uint32_t levels,
                           unsigned log2n, const TwiddleTable& twiddles,
                           double* tw_re, double* tw_im) {
  chain_split_impl<double>(re, im, len, base, stride, first_level, levels, log2n,
                           twiddles, tw_re, tw_im);
}

void butterfly_chain_split(float* re, float* im, std::uint64_t len,
                           std::uint64_t base, std::uint64_t stride,
                           std::uint32_t first_level, std::uint32_t levels,
                           unsigned log2n, const TwiddleTableF& twiddles,
                           float* tw_re, float* tw_im) {
  chain_split_impl<float>(re, im, len, base, stride, first_level, levels, log2n,
                          twiddles, tw_re, tw_im);
}

void run_codelet(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                 std::span<cplx> data, const TwiddleTable& twiddles,
                 KernelScratch& scratch) {
  run_codelet_impl<double>(plan, stage, task, data, twiddles, scratch);
}

void run_codelet(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                 std::span<cplx32> data, const TwiddleTableF& twiddles,
                 KernelScratchF& scratch) {
  run_codelet_impl<float>(plan, stage, task, data, twiddles, scratch);
}

void run_stage0_bitrev(const FftPlan& plan, std::span<cplx> data,
                       const TwiddleTable& twiddles,
                       std::span<const std::uint32_t> bitrev_idx, double* re,
                       double* im, KernelScratch& scratch) {
  run_stage0_bitrev_impl<double>(plan, data, twiddles, bitrev_idx, re, im, scratch);
}

void run_stage0_bitrev(const FftPlan& plan, std::span<cplx32> data,
                       const TwiddleTableF& twiddles,
                       std::span<const std::uint32_t> bitrev_idx, float* re,
                       float* im, KernelScratchF& scratch) {
  run_stage0_bitrev_impl<float>(plan, data, twiddles, bitrev_idx, re, im, scratch);
}

void run_codelet_scalar(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                        std::span<cplx> data, const TwiddleTable& twiddles,
                        std::span<cplx> scratch) {
  run_codelet_scalar_impl<double>(plan, stage, task, data, twiddles, scratch);
}

void run_codelet_scalar(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                        std::span<cplx32> data, const TwiddleTableF& twiddles,
                        std::span<cplx32> scratch) {
  run_codelet_scalar_impl<float>(plan, stage, task, data, twiddles, scratch);
}

}  // namespace c64fft::fft
