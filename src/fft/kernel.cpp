#include "fft/kernel.hpp"

#include <cassert>

namespace c64fft::fft {

void butterfly_chain(std::span<cplx> chain, std::uint64_t base, std::uint64_t stride,
                     std::uint32_t first_level, std::uint32_t levels, unsigned log2n,
                     const TwiddleTable& twiddles) {
  const std::uint64_t len = chain.size();
  assert(len == (std::uint64_t{1} << levels));
  for (std::uint32_t v = 0; v < levels; ++v) {
    const std::uint64_t half = std::uint64_t{1} << v;
    const std::uint32_t level = first_level + v;  // global butterfly level L
    const std::uint64_t block_mask = (std::uint64_t{1} << level) - 1;
    const unsigned shift = log2n - level - 1;
    for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
      for (std::uint64_t q = lo; q < lo + half; ++q) {
        // Twiddle of the butterfly whose lower element has global index g:
        // W[(g mod 2^L) << (n - L - 1)].
        const std::uint64_t g = base + q * stride;
        const cplx w = twiddles.at((g & block_mask) << shift);
        const cplx t = w * chain[q + half];
        chain[q + half] = chain[q] - t;
        chain[q] += t;
      }
    }
  }
}

void run_codelet(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                 std::span<cplx> data, const TwiddleTable& twiddles,
                 std::span<cplx> scratch) {
  const StageInfo& st = plan.stage(stage);
  assert(scratch.size() >= plan.radix());
  assert(twiddles.fft_size() == plan.size());

  for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
    const std::uint64_t base = plan.chain_base(stage, task, c);
    cplx* local = scratch.data() + c * st.chain_len;
    // Gather (the simulated machine's "load into scratchpad").
    for (std::uint64_t q = 0; q < st.chain_len; ++q)
      local[q] = data[base + q * st.chain_stride];

    butterfly_chain({local, st.chain_len}, base, st.chain_stride,
                    plan.radix_log2() * stage, st.levels, plan.log2_size(), twiddles);

    // Scatter back in place.
    for (std::uint64_t q = 0; q < st.chain_len; ++q)
      data[base + q * st.chain_stride] = local[q];
  }
}

}  // namespace c64fft::fft
