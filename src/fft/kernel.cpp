#include "fft/kernel.hpp"

#include <cassert>

#include "fft/kernels/dispatch.hpp"
#include "fft/kernels/generic_kernels.hpp"

namespace c64fft::fft {
namespace {

template <typename T>
void chain_impl(std::span<cplx_t<T>> chain, std::uint64_t base, std::uint64_t stride,
                std::uint32_t first_level, std::uint32_t levels, unsigned log2n,
                const BasicTwiddleTable<T>& twiddles) {
  const std::uint64_t len = chain.size();
  assert(len == (std::uint64_t{1} << levels));
  for (std::uint32_t v = 0; v < levels; ++v) {
    const std::uint64_t half = std::uint64_t{1} << v;
    const std::uint32_t level = first_level + v;  // global butterfly level L
    const std::uint64_t block_mask = (std::uint64_t{1} << level) - 1;
    const unsigned shift = log2n - level - 1;
    for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
      for (std::uint64_t q = lo; q < lo + half; ++q) {
        // Twiddle of the butterfly whose lower element has global index g:
        // W[(g mod 2^L) << (n - L - 1)].
        const std::uint64_t g = base + q * stride;
        const cplx_t<T> w = twiddles.at((g & block_mask) << shift);
        const cplx_t<T> t = w * chain[q + half];
        chain[q + half] = chain[q] - t;
        chain[q] += t;
      }
    }
  }
}

template <typename T>
void run_codelet_impl(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                      std::span<cplx_t<T>> data, const BasicTwiddleTable<T>& twiddles,
                      BasicKernelScratch<T>& scratch, unsigned fuse_log2) {
  const StageInfo& st = plan.stage(stage);
  assert(scratch.re.size() >= plan.radix());
  assert(twiddles.fft_size() == plan.size());

  // One table resolve per codelet: every hot loop below runs through the
  // process-active ISA's kernels (scalar table = the historical
  // autovectorized loops, bit-identical by contract).
  const kernels::KernelDispatch<T>& K = kernels::active_kernels<T>();

  for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
    const std::uint64_t base = plan.chain_base(stage, task, c);
    T* re = scratch.re.data() + c * st.chain_len;
    T* im = scratch.im.data() + c * st.chain_len;
    // Gather, deinterleaved (the simulated machine's "load into
    // scratchpad" plus the split-complex layout the SIMD loops want).
    K.gather_split(data.data() + base, st.chain_stride, st.chain_len, re, im);

    K.chain_split(re, im, st.chain_len, base, st.chain_stride,
                  plan.radix_log2() * stage, st.levels, plan.log2_size(),
                  twiddles, scratch.tw_re.data(), scratch.tw_im.data(),
                  fuse_log2);

    // Scatter back in place, re-interleaving.
    K.scatter_merge(re, im, st.chain_len, data.data() + base, st.chain_stride);
  }
}

template <typename T>
void run_stage0_bitrev_impl(const FftPlan& plan, std::span<cplx_t<T>> data,
                            const BasicTwiddleTable<T>& twiddles,
                            std::span<const std::uint32_t> bitrev_idx, T* re,
                            T* im, BasicKernelScratch<T>& scratch,
                            unsigned fuse_log2) {
  const StageInfo& st = plan.stage(0);
  const std::uint64_t n = plan.size();
  assert(st.chain_stride == 1);
  assert(data.size() == n);
  assert(bitrev_idx.size() >= n);
  assert(twiddles.fft_size() == n);

  const kernels::KernelDispatch<T>& K = kernels::active_kernels<T>();

  // Permuted gather: the whole row deinterleaves into the split scratch in
  // one pass (scattered reads stay inside the cache-resident row).
  K.permute_split(data.data(), bitrev_idx.data(), n, re, im);

  // Stage-0 chains are contiguous [base, base + chain_len) slices of the
  // scratch (stride 1), so the butterflies run directly on it.
  for (std::uint64_t t = 0; t < plan.tasks_per_stage(); ++t)
    for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
      const std::uint64_t base = plan.chain_base(0, t, c);
      K.chain_split(re + base, im + base, st.chain_len, base, st.chain_stride,
                    0, st.levels, plan.log2_size(), twiddles,
                    scratch.tw_re.data(), scratch.tw_im.data(), fuse_log2);
    }

  // Contiguous re-interleave of the whole transform.
  K.scatter_merge(re, im, n, data.data(), 1);
}

template <typename T>
void run_codelet_scalar_impl(const FftPlan& plan, std::uint32_t stage,
                             std::uint64_t task, std::span<cplx_t<T>> data,
                             const BasicTwiddleTable<T>& twiddles,
                             std::span<cplx_t<T>> scratch) {
  const StageInfo& st = plan.stage(stage);
  assert(scratch.size() >= plan.radix());
  assert(twiddles.fft_size() == plan.size());

  for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
    const std::uint64_t base = plan.chain_base(stage, task, c);
    cplx_t<T>* local = scratch.data() + c * st.chain_len;
    // Gather (the simulated machine's "load into scratchpad").
    for (std::uint64_t q = 0; q < st.chain_len; ++q)
      local[q] = data[base + q * st.chain_stride];

    chain_impl<T>({local, st.chain_len}, base, st.chain_stride,
                  plan.radix_log2() * stage, st.levels, plan.log2_size(), twiddles);

    // Scatter back in place.
    for (std::uint64_t q = 0; q < st.chain_len; ++q)
      data[base + q * st.chain_stride] = local[q];
  }
}

}  // namespace

void butterfly_chain(std::span<cplx> chain, std::uint64_t base, std::uint64_t stride,
                     std::uint32_t first_level, std::uint32_t levels, unsigned log2n,
                     const TwiddleTable& twiddles) {
  chain_impl<double>(chain, base, stride, first_level, levels, log2n, twiddles);
}

void butterfly_chain(std::span<cplx32> chain, std::uint64_t base,
                     std::uint64_t stride, std::uint32_t first_level,
                     std::uint32_t levels, unsigned log2n,
                     const TwiddleTableF& twiddles) {
  chain_impl<float>(chain, base, stride, first_level, levels, log2n, twiddles);
}

void butterfly_chain_split(double* re, double* im, std::uint64_t len,
                           std::uint64_t base, std::uint64_t stride,
                           std::uint32_t first_level, std::uint32_t levels,
                           unsigned log2n, const TwiddleTable& twiddles,
                           double* tw_re, double* tw_im) {
  kernels::detail::chain_split_generic<double>(re, im, len, base, stride,
                                               first_level, levels, log2n,
                                               twiddles, tw_re, tw_im,
                                               kernels::kDefaultFuseLog2);
}

void butterfly_chain_split(float* re, float* im, std::uint64_t len,
                           std::uint64_t base, std::uint64_t stride,
                           std::uint32_t first_level, std::uint32_t levels,
                           unsigned log2n, const TwiddleTableF& twiddles,
                           float* tw_re, float* tw_im) {
  kernels::detail::chain_split_generic<float>(re, im, len, base, stride,
                                              first_level, levels, log2n,
                                              twiddles, tw_re, tw_im,
                                              kernels::kDefaultFuseLog2);
}

void run_codelet(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                 std::span<cplx> data, const TwiddleTable& twiddles,
                 KernelScratch& scratch, unsigned fuse_log2) {
  run_codelet_impl<double>(plan, stage, task, data, twiddles, scratch, fuse_log2);
}

void run_codelet(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                 std::span<cplx32> data, const TwiddleTableF& twiddles,
                 KernelScratchF& scratch, unsigned fuse_log2) {
  run_codelet_impl<float>(plan, stage, task, data, twiddles, scratch, fuse_log2);
}

void run_stage0_bitrev(const FftPlan& plan, std::span<cplx> data,
                       const TwiddleTable& twiddles,
                       std::span<const std::uint32_t> bitrev_idx, double* re,
                       double* im, KernelScratch& scratch, unsigned fuse_log2) {
  run_stage0_bitrev_impl<double>(plan, data, twiddles, bitrev_idx, re, im,
                                 scratch, fuse_log2);
}

void run_stage0_bitrev(const FftPlan& plan, std::span<cplx32> data,
                       const TwiddleTableF& twiddles,
                       std::span<const std::uint32_t> bitrev_idx, float* re,
                       float* im, KernelScratchF& scratch, unsigned fuse_log2) {
  run_stage0_bitrev_impl<float>(plan, data, twiddles, bitrev_idx, re, im,
                                scratch, fuse_log2);
}

void run_codelet_scalar(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                        std::span<cplx> data, const TwiddleTable& twiddles,
                        std::span<cplx> scratch) {
  run_codelet_scalar_impl<double>(plan, stage, task, data, twiddles, scratch);
}

void run_codelet_scalar(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                        std::span<cplx32> data, const TwiddleTableF& twiddles,
                        std::span<cplx32> scratch) {
  run_codelet_scalar_impl<float>(plan, stage, task, data, twiddles, scratch);
}

}  // namespace c64fft::fft
