#pragma once
// Tuned execution schedules: the output of the offline autotuner
// (tools/fft_tune) and the input the executor uses to pick a plan shape.
//
// A schedule is keyed by (transform size, precision, kernel ISA) and
// carries the two searched knobs:
//   radix_log2 — the plan's codelet radix (changes the stage
//                decomposition, and with it the task graph, the chain
//                algebra, and the memory-traffic census), and
//   fuse_log2  — how many leading butterfly levels of each chain the
//                kernel collapses into one fused pass (3 = radix-8,
//                2 = radix-4, 0 = per-level loops only).
// Both knobs are pure scheduling: every setting computes bit-identical
// results, only the loop/stage structure (and therefore throughput)
// changes.
//
// The on-disk form is JSON (see to_json); the executor loads it when
// C64FFT_SCHEDULE names a file, and PlanCache serves lookups. An entry
// tuned for one machine is safe — at worst slower — on another, which is
// why the ISA is part of the key: the tuner records what the kernels were
// running on, and lookups only match schedules tuned for the ISA that is
// actually active.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fft/types.hpp"
#include "util/cpu_features.hpp"

namespace c64fft::fft {

struct TunedSchedule {
  std::uint64_t n = 0;
  Precision precision = Precision::kF64;
  util::IsaLevel isa = util::IsaLevel::kScalar;
  std::uint32_t radix_log2 = 6;
  std::uint32_t fuse_log2 = 3;
  /// Hierarchical-path knobs (tools/fft_tune --hierarchical). 0 means
  /// "planner default" — derive the leaf from the measured cache
  /// hierarchy and the block-row grain from the worker count — and is
  /// omitted from the JSON, so files tuned before these knobs existed
  /// parse (and re-serialize) unchanged.
  ///   hier_leaf_log2  — leaf sub-FFT cap (log2 points) of the recursive
  ///                     split; fixes the level count and every per-level
  ///                     (n1, n2).
  ///   hier_block_rows — rows per pipelined tile-block of the scatter /
  ///                     row-sweep stages.
  std::uint32_t hier_leaf_log2 = 0;
  std::uint32_t hier_block_rows = 0;
};

/// An ordered set of tuned schedules with (n, precision, isa) as the
/// unique key. Small (tens of entries) — lookups scan linearly.
class ScheduleSet {
 public:
  /// Insert or replace the entry with s's key.
  void insert(const TunedSchedule& s);

  std::optional<TunedSchedule> find(std::uint64_t n, Precision precision,
                                    util::IsaLevel isa) const;

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const std::vector<TunedSchedule>& entries() const noexcept { return entries_; }

  /// Serialize as {"version":1,"schedules":[...]} (stable field order,
  /// one schedule per line — diff-friendly for committing tuned files).
  std::string to_json() const;

  /// Parse the to_json() format. Unknown fields are ignored; a missing
  /// required field, a bad enum name, or out-of-range knob values throw
  /// std::invalid_argument naming the offending entry.
  static ScheduleSet from_json(const std::string& text);

  /// from_json() over a file's contents; std::runtime_error when
  /// unreadable.
  static ScheduleSet load_file(const std::string& path);

 private:
  std::vector<TunedSchedule> entries_;
};

}  // namespace c64fft::fft
