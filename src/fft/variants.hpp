#pragma once
// Host (real-thread) implementations of the paper's FFT algorithms:
//
//   kCoarse — Algorithm 1: barrier after every stage (one runtime phase
//             per stage).
//   kFine   — Algorithm 2: single phase; codelets become ready through
//             shared dependency counters; pool order is free and chosen
//             by FineOrdering.
//   kGuided — Algorithm 3: fine-grain over the early stages, one barrier,
//             then the last two stages seeded sibling-group-by-group into
//             a LIFO pool so last-stage codelets start as early as
//             possible.
//
// The hashed-twiddle versions of each are obtained by passing
// TwiddleLayout::kBitReversed (the "coarse hash"/"fine hash" rows of
// Table I). All variants compute bit-identical results to the serial
// in-place FFT: only scheduling differs.

#include <span>
#include <string>

#include "fft/ordering.hpp"
#include "fft/plan.hpp"
#include "fft/twiddle.hpp"
#include "fft/types.hpp"

namespace c64fft::fft {

enum class Variant { kCoarse, kFine, kGuided };

struct HostFftOptions {
  unsigned workers = 4;
  unsigned radix_log2 = 6;
  TwiddleLayout layout = TwiddleLayout::kLinear;
  /// Pool ordering for kFine (ignored by kCoarse; kGuided always follows
  /// Alg. 3's LIFO grouped seeding).
  FineOrdering ordering = {};
  /// kWorkStealing (default) runs on the lock-free per-worker deques with
  /// free steal order; kSequential reproduces the exact paper-order
  /// execution sequence of the single-pool runtime on one thread (use it
  /// for the "fine best"/"fine worst" ordering experiments).
  codelet::SchedulerMode mode = codelet::SchedulerMode::kWorkStealing;
};

/// In-place forward FFT of `data` (power-of-two length >= radix) with the
/// chosen algorithm. Throws std::invalid_argument on bad sizes.
void fft_host(std::span<cplx> data, Variant variant, const HostFftOptions& opts);

std::string to_string(Variant v);

}  // namespace c64fft::fft
