#pragma once
// Twiddle-factor table W[t] = exp(-2*pi*i * t / N), t in [0, N/2).
//
// Two storage layouts (Section IV-B):
//  * kLinear      — W[t] stored at index t. Early-stage accesses have
//                   strides that are multiples of 4 elements, so on the
//                   64 B-interleaved DRAM they all hit the bank holding
//                   the array base (the paper's bank-0 hotspot).
//  * kBitReversed — W[t] stored at index BR(t) over log2(N/2) bits (the
//                   paper's software "hash"). Accesses spread uniformly
//                   over the banks at the price of computing BR on every
//                   access.
//
// The table is precision-generic (BasicTwiddleTable<T>, T in {float,
// double}); angles are always evaluated in double and narrowed at store
// time, so the f32 table is the correctly rounded image of the f64 one.
// `TwiddleTable` remains the double-precision alias every pre-existing
// call site uses.

#include <cstdint>
#include <span>
#include <vector>

#include "fft/types.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::fft {

enum class TwiddleLayout { kLinear, kBitReversed };

/// kInverse holds the exact conjugates W[t] = exp(+2*pi*i * t / N) of the
/// forward entries. Running the forward stage kernels against a conjugated
/// table computes conj(FFT(conj(x))) bit-identically (every rounding is
/// sign-symmetric), which is how the executor's inverse path drops the
/// input-conjugation pass.
enum class TwiddleDirection { kForward, kInverse };

/// The N-th unit root W_N^t = exp(-2*pi*i * t / n) (conjugated for
/// kInverse) — the primitive every BasicTwiddleTable entry is built from.
/// Exposed so on-the-fly consumers (the four-step path's fused
/// twiddle-transpose) can generate inter-step factors per tile instead of
/// materializing an O(N) table. Bit-identical to the corresponding table
/// entry: the table constructor calls this. The trig always runs in
/// double; unit_root<float> narrows the result.
template <typename T>
cplx_t<T> unit_root(std::uint64_t n, std::uint64_t t,
                    TwiddleDirection direction = TwiddleDirection::kForward);

/// Double-precision convenience overload (the historical signature).
cplx unit_root(std::uint64_t n, std::uint64_t t,
               TwiddleDirection direction = TwiddleDirection::kForward);

template <typename T>
class BasicTwiddleTable {
 public:
  /// Precompute the N/2 twiddles of an N-point transform (N = power of
  /// two, N >= 2) in the given layout.
  BasicTwiddleTable(std::uint64_t n, TwiddleLayout layout,
                    TwiddleDirection direction = TwiddleDirection::kForward);

  std::uint64_t fft_size() const noexcept { return n_; }
  std::uint64_t size() const noexcept { return table_.size(); }
  TwiddleLayout layout() const noexcept { return layout_; }
  TwiddleDirection direction() const noexcept { return direction_; }
  /// Significant bits of a table index (log2(N/2)); the hash cost model
  /// charges per-access work proportional to this.
  unsigned index_bits() const noexcept { return bits_; }

  /// Storage slot of logical twiddle index `t` (identity for kLinear).
  std::uint64_t storage_index(std::uint64_t t) const noexcept {
    return layout_ == TwiddleLayout::kLinear ? t : util::bit_reverse(t, bits_);
  }

  /// W[t] (logical index, layout-transparent).
  cplx_t<T> at(std::uint64_t t) const noexcept {
    return table_[storage_index(t)];
  }

  /// Raw storage (for address/bank analysis).
  std::span<const cplx_t<T>> storage() const noexcept { return table_; }

 private:
  std::uint64_t n_;
  TwiddleLayout layout_;
  TwiddleDirection direction_;
  unsigned bits_;
  std::vector<cplx_t<T>> table_;
};

extern template class BasicTwiddleTable<float>;
extern template class BasicTwiddleTable<double>;

/// The double-precision table (historical name) and its f32 sibling.
using TwiddleTable = BasicTwiddleTable<double>;
using TwiddleTableF = BasicTwiddleTable<float>;

}  // namespace c64fft::fft
