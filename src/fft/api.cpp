#include "fft/api.hpp"

#include <algorithm>
#include <stdexcept>

#include "fft/executor.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::fft {

namespace {
// The codelet decomposition needs at least one radix-R stage; tiny inputs
// use a narrower radix transparently. Delegates to the shared validator
// (plan.hpp) so the public wrappers, the plan, and the executor agree on
// one set of checks and messages.
HostFftOptions clamp_radix(std::size_t n, HostFftOptions opts) {
  opts.radix_log2 = validate_fft_shape(n, opts.radix_log2,
                                       /*clamp_radix=*/true);
  return opts;
}
}  // namespace

void forward(std::span<cplx> data, const HostFftOptions& opts, Variant variant) {
  default_executor().forward(data, clamp_radix(data.size(), opts), variant);
}

void forward(std::span<cplx32> data, const HostFftOptions& opts, Variant variant) {
  default_executor().forward(data, clamp_radix(data.size(), opts), variant);
}

void inverse(std::span<cplx> data, const HostFftOptions& opts, Variant variant) {
  // The executor's inverse runs the forward stage kernels against the
  // cached conjugated twiddle table, so the old pre-conjugation pass over
  // the input is gone; only the 1/N scale epilogue remains.
  default_executor().inverse(data, clamp_radix(data.size(), opts), variant);
}

void inverse(std::span<cplx32> data, const HostFftOptions& opts, Variant variant) {
  default_executor().inverse(data, clamp_radix(data.size(), opts), variant);
}

std::vector<cplx> forward_copy(std::span<const cplx> data, const HostFftOptions& opts,
                               Variant variant) {
  std::vector<cplx> out(data.begin(), data.end());
  forward(out, opts, variant);
  return out;
}

std::vector<cplx32> forward_copy(std::span<const cplx32> data,
                                 const HostFftOptions& opts, Variant variant) {
  std::vector<cplx32> out(data.begin(), data.end());
  forward(out, opts, variant);
  return out;
}

std::vector<cplx> inverse_copy(std::span<const cplx> data, const HostFftOptions& opts,
                               Variant variant) {
  std::vector<cplx> out(data.begin(), data.end());
  inverse(out, opts, variant);
  return out;
}

std::vector<cplx32> inverse_copy(std::span<const cplx32> data,
                                 const HostFftOptions& opts, Variant variant) {
  std::vector<cplx32> out(data.begin(), data.end());
  inverse(out, opts, variant);
  return out;
}

std::vector<double> power_spectrum(std::span<const double> signal,
                                   const HostFftOptions& opts) {
  if (signal.empty()) return {};
  std::uint64_t n = util::next_pow2(signal.size());
  n = std::max<std::uint64_t>(n, 2);
  std::vector<cplx> buf(n, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < signal.size(); ++i) buf[i] = cplx(signal[i], 0.0);
  forward(buf, opts);
  std::vector<double> out(n / 2 + 1);
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = std::norm(buf[k]) / static_cast<double>(n);
  return out;
}

std::vector<cplx> circular_convolve(std::span<const cplx> a, std::span<const cplx> b,
                                    const HostFftOptions& opts) {
  if (a.size() != b.size())
    throw std::invalid_argument("circular_convolve: length mismatch");
  if (a.size() < 2)
    throw std::invalid_argument("circular_convolve: length must be >= 2");
  std::vector<cplx> fa(a.begin(), a.end());
  std::vector<cplx> fb(b.begin(), b.end());
  // Transforms run at the EXACT length — the executor routes composite
  // sizes to the mixed-radix plan and awkward ones to Bluestein — because
  // a circular convolution's period is its length: padding here would
  // compute a different convolution. Both forwards go down as ONE batched
  // submission (shared plan/twiddle lookups for the pair), and `fa` is
  // reused as the output buffer of the pointwise product and the inverse.
  const HostFftOptions clamped = clamp_radix(fa.size(), opts);
  const std::span<cplx> pair[2] = {fa, fb};
  default_executor().forward_batch(pair, clamped);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= fb[i];
  default_executor().inverse(fa, clamped);
  return fa;
}

}  // namespace c64fft::fft
