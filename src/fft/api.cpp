#include "fft/api.hpp"

#include <stdexcept>

#include "util/bit_ops.hpp"

namespace c64fft::fft {

namespace {
// The codelet decomposition needs at least one radix-R stage; tiny inputs
// use a narrower radix transparently.
HostFftOptions clamp_radix(std::span<const cplx> data, HostFftOptions opts) {
  if (!util::is_pow2(data.size()) || data.size() < 2)
    throw std::invalid_argument("fft: size must be a power of two >= 2");
  const unsigned bits = util::ilog2(data.size());
  if (opts.radix_log2 > bits) opts.radix_log2 = bits;
  return opts;
}
}  // namespace

void forward(std::span<cplx> data, const HostFftOptions& opts, Variant variant) {
  fft_host(data, variant, clamp_radix(data, opts));
}

void inverse(std::span<cplx> data, const HostFftOptions& opts, Variant variant) {
  for (auto& v : data) v = std::conj(v);
  fft_host(data, variant, clamp_radix(data, opts));
  const double inv = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v = std::conj(v) * inv;
}

std::vector<cplx> forward_copy(std::span<const cplx> data, const HostFftOptions& opts,
                               Variant variant) {
  std::vector<cplx> out(data.begin(), data.end());
  forward(out, opts, variant);
  return out;
}

std::vector<cplx> inverse_copy(std::span<const cplx> data, const HostFftOptions& opts,
                               Variant variant) {
  std::vector<cplx> out(data.begin(), data.end());
  inverse(out, opts, variant);
  return out;
}

std::vector<double> power_spectrum(std::span<const double> signal,
                                   const HostFftOptions& opts) {
  if (signal.empty()) return {};
  std::uint64_t n = util::next_pow2(signal.size());
  n = std::max<std::uint64_t>(n, 2);
  std::vector<cplx> buf(n, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < signal.size(); ++i) buf[i] = cplx(signal[i], 0.0);
  forward(buf, opts);
  std::vector<double> out(n / 2 + 1);
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = std::norm(buf[k]) / static_cast<double>(n);
  return out;
}

std::vector<cplx> circular_convolve(std::span<const cplx> a, std::span<const cplx> b,
                                    const HostFftOptions& opts) {
  if (a.size() != b.size())
    throw std::invalid_argument("circular_convolve: length mismatch");
  std::vector<cplx> fa(a.begin(), a.end());
  std::vector<cplx> fb(b.begin(), b.end());
  forward(fa, opts);
  forward(fb, opts);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= fb[i];
  inverse(fa, opts);
  return fa;
}

}  // namespace c64fft::fft
