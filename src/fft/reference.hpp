#pragma once
// Reference transforms for correctness checking: a naive O(N^2) DFT (the
// ground truth for small sizes) and a serial recursive radix-2 FFT (for
// sizes where the DFT is too slow). Also inverse transforms and error
// metrics. Each exists at both precisions; the error metrics always
// accumulate in double (so f32 comparisons are not polluted by the
// metric's own rounding) and there are mixed-precision overloads that
// measure an f32 result against the f64 ground truth directly.

#include <span>
#include <vector>

#include "fft/types.hpp"

namespace c64fft::fft {

/// Naive O(N^2) forward DFT: X[k] = sum_j x[j] exp(-2 pi i jk / N).
/// Any N >= 1.
std::vector<cplx> dft_reference(std::span<const cplx> input);
std::vector<cplx32> dft_reference(std::span<const cplx32> input);

/// Serial recursive radix-2 decimation-in-time FFT (power-of-two N),
/// out-of-place.
std::vector<cplx> fft_recursive(std::span<const cplx> input);
std::vector<cplx32> fft_recursive(std::span<const cplx32> input);

/// In-place serial iterative radix-2 FFT (bit reversal + n levels).
void fft_serial_inplace(std::span<cplx> data);
void fft_serial_inplace(std::span<cplx32> data);

/// Inverse FFT via conjugation: ifft(x) = conj(fft(conj(x))) / N.
std::vector<cplx> ifft_reference(std::span<const cplx> input);
std::vector<cplx32> ifft_reference(std::span<const cplx32> input);

/// Max elementwise absolute error between two vectors (inf for size
/// mismatch). Always accumulated in double.
double max_abs_error(std::span<const cplx> a, std::span<const cplx> b);
double max_abs_error(std::span<const cplx32> a, std::span<const cplx32> b);
/// Mixed: f32 result against the f64 ground truth.
double max_abs_error(std::span<const cplx32> a, std::span<const cplx> b);

/// Relative L2 error ||a-b|| / max(||b||, eps). Always accumulated in
/// double.
double rel_l2_error(std::span<const cplx> a, std::span<const cplx> b);
double rel_l2_error(std::span<const cplx32> a, std::span<const cplx32> b);
/// Mixed: f32 result against the f64 ground truth.
double rel_l2_error(std::span<const cplx32> a, std::span<const cplx> b);

}  // namespace c64fft::fft
