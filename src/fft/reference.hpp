#pragma once
// Reference transforms for correctness checking: a naive O(N^2) DFT (the
// ground truth for small sizes) and a serial recursive radix-2 FFT (for
// sizes where the DFT is too slow). Also inverse transforms and error
// metrics.

#include <span>
#include <vector>

#include "fft/types.hpp"

namespace c64fft::fft {

/// Naive O(N^2) forward DFT: X[k] = sum_j x[j] exp(-2 pi i jk / N).
/// Any N >= 1.
std::vector<cplx> dft_reference(std::span<const cplx> input);

/// Serial recursive radix-2 decimation-in-time FFT (power-of-two N),
/// out-of-place.
std::vector<cplx> fft_recursive(std::span<const cplx> input);

/// In-place serial iterative radix-2 FFT (bit reversal + n levels).
void fft_serial_inplace(std::span<cplx> data);

/// Inverse FFT via conjugation: ifft(x) = conj(fft(conj(x))) / N.
std::vector<cplx> ifft_reference(std::span<const cplx> input);

/// Max elementwise absolute error between two vectors (inf for size
/// mismatch).
double max_abs_error(std::span<const cplx> a, std::span<const cplx> b);

/// Relative L2 error ||a-b|| / max(||b||, eps).
double rel_l2_error(std::span<const cplx> a, std::span<const cplx> b);

}  // namespace c64fft::fft
