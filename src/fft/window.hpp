#pragma once
// Window functions for spectral analysis. Applied before the forward
// transform they trade main-lobe width for side-lobe suppression —
// standard companions to any FFT library's spectrum API.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace c64fft::fft {

enum class WindowKind {
  kRectangular,  ///< no windowing (all ones)
  kHann,
  kHamming,
  kBlackman,
};

/// The window coefficients w[0..n-1] (periodic form, suitable for
/// spectral analysis of continuous signals).
std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Multiply `signal` by the window in place.
void apply_window(WindowKind kind, std::span<double> signal);

/// Coherent gain of the window (mean of the coefficients): divide a
/// windowed spectrum's magnitudes by this to recover amplitudes.
double coherent_gain(WindowKind kind, std::size_t n);

std::string to_string(WindowKind kind);

}  // namespace c64fft::fft
