#pragma once
// Bit-reversal permutation of the input array — the first step of every
// Cooley-Tukey variant in the paper (Fig. 4: "applied once and only once
// in the whole FFT computation"). Available at both precisions; the
// overloads are concrete so vector-to-span conversions at call sites keep
// working (bodies are shared templates in bit_reversal.cpp).

#include <cstdint>
#include <span>

#include "fft/types.hpp"

namespace c64fft::fft {

/// In-place bit-reversal permutation; data.size() must be a power of two.
void bit_reverse_permute(std::span<cplx> data);
void bit_reverse_permute(std::span<cplx32> data);

/// Parallel variant: the permutation is split into `chunks` independent
/// codelets executed on `workers` threads (the paper's
/// "Bit_reversal(D) in parallel"). Equivalent to the serial form.
void bit_reverse_permute_parallel(std::span<cplx> data, unsigned workers,
                                  unsigned chunks = 0);
void bit_reverse_permute_parallel(std::span<cplx32> data, unsigned workers,
                                  unsigned chunks = 0);

}  // namespace c64fft::fft
