#include "fft/variants.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

#include "codelet/dep_counter.hpp"
#include "codelet/host_runtime.hpp"
#include "fft/bit_reversal.hpp"
#include "fft/kernel.hpp"

namespace c64fft::fft {

namespace {

using codelet::CodeletKey;
using codelet::PoolPolicy;

// Per-run execution context shared by the three drivers.
struct Driver {
  Driver(std::span<cplx> data, const HostFftOptions& opts)
      : data(data),
        plan(data.size(), opts.radix_log2),
        twiddles(data.size(), opts.layout),
        runtime(opts.workers, opts.mode) {
    scratch.reserve(opts.workers);
    for (unsigned w = 0; w < opts.workers; ++w) scratch.emplace_back(plan.radix());
    members_buf.resize(opts.workers);
    keys_buf.resize(opts.workers);
  }

  // Shared counters for the consumer stages in [first_consumer, last]
  // (inclusive); other entries have zero groups.
  codelet::DependencyCounters make_counters(std::uint32_t first_consumer,
                                            std::uint32_t last) const {
    const std::uint32_t stages = plan.stage_count();
    std::vector<std::uint64_t> groups(stages, 0);
    std::vector<std::uint32_t> thresholds(stages, 1);
    for (std::uint32_t s = first_consumer; s <= last && s < stages; ++s) {
      if (s == 0) continue;
      groups[s] = plan.groups_in_stage(s);
      thresholds[s] = plan.group_threshold(s);
    }
    return codelet::DependencyCounters(groups, thresholds);
  }

  // Codelet body that executes the kernel and propagates readiness to
  // child groups in stages <= last_propagated.
  codelet::CodeletBody fine_body(codelet::DependencyCounters& counters,
                                 std::uint32_t last_propagated) {
    return [this, &counters, last_propagated](CodeletKey key, unsigned worker,
                                              codelet::Pusher& pusher) {
      run_codelet(plan, key.stage, key.index, data, twiddles, scratch[worker]);
      if (key.stage >= last_propagated || key.stage + 1 >= plan.stage_count()) return;
      const std::uint64_t g = plan.child_group(key.stage, key.index);
      if (counters.arrive(key.stage + 1, g)) {
        // Release the whole sibling group in one batched injection: one
        // pending update and one wake signal instead of one per child.
        std::vector<std::uint64_t>& members = members_buf[worker];
        plan.group_members(key.stage + 1, g, members);
        std::vector<CodeletKey>& keys = keys_buf[worker];
        keys.clear();
        keys.reserve(members.size());
        for (std::uint64_t m : members) keys.push_back({key.stage + 1, m});
        pusher.push_batch(keys);
      }
    };
  }

  std::span<cplx> data;
  FftPlan plan;
  TwiddleTable twiddles;
  codelet::HostRuntime runtime;
  std::vector<KernelScratch> scratch;
  std::vector<std::vector<std::uint64_t>> members_buf;
  std::vector<std::vector<CodeletKey>> keys_buf;
};

void run_coarse(Driver& d) {
  // Algorithm 1: one phase per stage; the phase boundary is the barrier.
  std::vector<CodeletKey> seeds(d.plan.tasks_per_stage());
  for (std::uint32_t s = 0; s < d.plan.stage_count(); ++s) {
    for (std::uint64_t i = 0; i < seeds.size(); ++i) seeds[i] = {s, i};
    d.runtime.run_phase(seeds, PoolPolicy::kFifo,
                        [&](CodeletKey key, unsigned worker, codelet::Pusher&) {
                          run_codelet(d.plan, key.stage, key.index, d.data, d.twiddles,
                                      d.scratch[worker]);
                        });
  }
}

void run_fine(Driver& d, const FineOrdering& ordering) {
  // Algorithm 2: all stage-0 codelets seeded in the chosen order; shared
  // counters enable everything else.
  auto counters = d.make_counters(1, d.plan.stage_count() - 1);
  const auto order =
      make_seed_order(ordering.order, d.plan.tasks_per_stage(), ordering.seed);
  std::vector<CodeletKey> seeds(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) seeds[i] = {0, order[i]};
  d.runtime.run_phase(seeds, ordering.policy,
                      d.fine_body(counters, d.plan.stage_count() - 1));
}

void run_guided(Driver& d) {
  const std::uint32_t stages = d.plan.stage_count();
  if (stages < 3) {
    // Degenerate input: too few stages to split; Alg. 3 reduces to the
    // fine algorithm with its LIFO pool.
    run_fine(d, FineOrdering{PoolPolicy::kLifo, SeedOrder::kNatural, 1});
    return;
  }

  // Phase 1 (Alg. 3): fine-grain over the early stages 0..last_stage-2;
  // codelets of the last early stage do not propagate readiness.
  const std::uint32_t last_early = stages - 3;  // "last_stage - 2"
  auto counters = d.make_counters(1, stages - 1);
  std::vector<CodeletKey> seeds(d.plan.tasks_per_stage());
  for (std::uint64_t i = 0; i < seeds.size(); ++i) seeds[i] = {0, i};
  d.runtime.run_phase(seeds, PoolPolicy::kLifo, d.fine_body(counters, last_early));
  // (the implicit end-of-phase barrier is the "barrier" of Alg. 3)

  // Phase 2: seed stage last_stage-1 sibling-group-by-sibling-group into a
  // LIFO pool, so finishing one group immediately enables a whole
  // last-stage group.
  const std::uint32_t penultimate = stages - 2;
  std::vector<CodeletKey> phase2;
  phase2.reserve(d.plan.tasks_per_stage());
  // Column batches with distinct data banks, member-interleaved (see
  // fft::guided_phase2_order) — same seed sequence as the simulator.
  for (std::uint64_t p : guided_phase2_order(d.plan))
    phase2.push_back({penultimate, p});
  if (phase2.size() != d.plan.tasks_per_stage())
    throw std::logic_error("guided: phase-2 seeding does not cover the stage");
  d.runtime.run_phase(phase2, PoolPolicy::kLifo, d.fine_body(counters, stages - 1));
}

}  // namespace

void fft_host(std::span<cplx> data, Variant variant, const HostFftOptions& opts) {
  Driver d(data, opts);
  bit_reverse_permute_parallel(data, opts.workers);
  switch (variant) {
    case Variant::kCoarse:
      run_coarse(d);
      break;
    case Variant::kFine:
      run_fine(d, opts.ordering);
      break;
    case Variant::kGuided:
      run_guided(d);
      break;
  }
}

std::string to_string(Variant v) {
  switch (v) {
    case Variant::kCoarse: return "coarse";
    case Variant::kFine: return "fine";
    case Variant::kGuided: return "guided";
  }
  return "?";
}

}  // namespace c64fft::fft
