#include "fft/variants.hpp"

#include "fft/executor.hpp"

namespace c64fft::fft {

// Compatibility shim. The per-call Driver (plan + twiddle + worker-team
// construction on every invocation) moved into FftExecutor, which caches
// the plan/twiddles and keeps one persistent team; this free function now
// just dispatches a single-transform batch through the process-wide
// executor. Shape validation is unchanged: bad sizes throw
// std::invalid_argument and the radix is not clamped.
void fft_host(std::span<cplx> data, Variant variant, const HostFftOptions& opts) {
  default_executor().forward(data, opts, variant);
}

std::string to_string(Variant v) {
  switch (v) {
    case Variant::kCoarse: return "coarse";
    case Variant::kFine: return "fine";
    case Variant::kGuided: return "guided";
  }
  return "?";
}

}  // namespace c64fft::fft
