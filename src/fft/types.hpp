#pragma once
// Common numeric types of the FFT library. The core is precision-generic:
// every hot kernel is instantiated for both double-complex (16 bytes, the
// paper's experimental setup) and float-complex (8 bytes, where SIMD width
// doubles and the bank/cache-set mapping of a given element stride
// genuinely changes — see DESIGN.md "Precision-generic core"). `cplx`
// stays the double-precision default so existing call sites are
// unaffected.

#include <complex>

namespace c64fft::fft {

/// The complex element type of a transform with real type T.
template <typename T>
using cplx_t = std::complex<T>;

/// Double-precision complex — the historical (and default) element type.
using cplx = cplx_t<double>;

/// Single-precision complex.
using cplx32 = cplx_t<float>;

/// Runtime tag of a transform's element type: the plan-cache key, the
/// executor entry points, and the byte-level analyses (bank balance,
/// cache sets, simulated footprints) are parameterized by it.
enum class Precision { kF32, kF64 };

/// Bytes of one data/twiddle element at the given precision
/// (sizeof(std::complex<float>) = 8, sizeof(std::complex<double>) = 16).
constexpr unsigned element_bytes(Precision p) noexcept {
  return p == Precision::kF32 ? 8u : 16u;
}

/// Precision tag of a real scalar type (float or double).
template <typename T>
inline constexpr Precision precision_of = Precision::kF64;
template <>
inline constexpr Precision precision_of<float> = Precision::kF32;

constexpr const char* to_string(Precision p) noexcept {
  return p == Precision::kF32 ? "f32" : "f64";
}

}  // namespace c64fft::fft
