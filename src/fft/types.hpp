#pragma once
// Common numeric types of the FFT library. Data elements are
// double-precision complex numbers (16 bytes), matching the paper's
// experimental setup.

#include <complex>

namespace c64fft::fft {

using cplx = std::complex<double>;

/// Bytes of one data/twiddle element on C64 (double-precision complex).
inline constexpr unsigned kElementBytes = 16;

}  // namespace c64fft::fft
