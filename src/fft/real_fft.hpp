#pragma once
// Real-input FFT via the classic packing trick: an N-point real sequence
// is transformed with one N/2-point complex FFT plus an O(N) untangling
// pass — halving both the work and the off-chip traffic for the common
// signal-processing case the paper's introduction motivates. The float
// overloads are the f32 path (untangling trig still evaluated in double,
// narrowed per factor).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "fft/variants.hpp"

namespace c64fft::fft {

/// Validated shape of one real forward transform: the N/2-point packed
/// complex sub-transform and its clamped radix. Model-builder hook shared
/// between real_forward and the static pipeline model
/// (analysis::build_real_fft_pipeline). Throws std::invalid_argument when
/// n is not a power of two >= 2.
struct RealFftShape {
  std::uint64_t n = 0;
  std::uint64_t half = 0;
  /// Radix of the half-point packed transform after the clamp; 0 when the
  /// packed length is 1 (n == 2) and no sub-transform runs.
  unsigned radix_log2 = 0;
};
RealFftShape real_forward_shape(std::uint64_t n, unsigned radix_log2);

/// Packed-spectrum elements bin k of the untangled half-spectrum reads:
/// {k % half, (half - k) % half}. Exposed so the static verifier proves
/// the untangling pass against the same index algebra the kernel runs.
inline std::array<std::uint64_t, 2> real_unpack_sources(std::uint64_t k,
                                                        std::uint64_t half) {
  return {k % half, (half - k) % half};
}

/// Forward transform of a real sequence (power-of-two length N >= 2).
/// Returns the N/2+1 non-redundant spectrum bins X[0..N/2]; the remaining
/// bins are their conjugate mirror. Runs on the host codelet engine with
/// `opts` / `variant` (same knobs as fft::forward).
std::vector<cplx> real_forward(std::span<const double> signal,
                               const HostFftOptions& opts = {},
                               Variant variant = Variant::kFine);
std::vector<cplx32> real_forward(std::span<const float> signal,
                                 const HostFftOptions& opts = {},
                                 Variant variant = Variant::kFine);

/// Inverse of real_forward: reconstructs the N-sample real sequence from
/// its N/2+1 half-spectrum.
std::vector<double> real_inverse(std::span<const cplx> half_spectrum,
                                 const HostFftOptions& opts = {},
                                 Variant variant = Variant::kFine);
std::vector<float> real_inverse(std::span<const cplx32> half_spectrum,
                                const HostFftOptions& opts = {},
                                Variant variant = Variant::kFine);

}  // namespace c64fft::fft
