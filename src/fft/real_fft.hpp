#pragma once
// Real-input FFT via the classic packing trick: an N-point real sequence
// is transformed with one N/2-point complex FFT plus an O(N) untangling
// pass — halving both the work and the off-chip traffic for the common
// signal-processing case the paper's introduction motivates. The float
// overloads are the f32 path (untangling trig still evaluated in double,
// narrowed per factor).

#include <span>
#include <vector>

#include "fft/variants.hpp"

namespace c64fft::fft {

/// Forward transform of a real sequence (power-of-two length N >= 2).
/// Returns the N/2+1 non-redundant spectrum bins X[0..N/2]; the remaining
/// bins are their conjugate mirror. Runs on the host codelet engine with
/// `opts` / `variant` (same knobs as fft::forward).
std::vector<cplx> real_forward(std::span<const double> signal,
                               const HostFftOptions& opts = {},
                               Variant variant = Variant::kFine);
std::vector<cplx32> real_forward(std::span<const float> signal,
                                 const HostFftOptions& opts = {},
                                 Variant variant = Variant::kFine);

/// Inverse of real_forward: reconstructs the N-sample real sequence from
/// its N/2+1 half-spectrum.
std::vector<double> real_inverse(std::span<const cplx> half_spectrum,
                                 const HostFftOptions& opts = {},
                                 Variant variant = Variant::kFine);
std::vector<float> real_inverse(std::span<const cplx32> half_spectrum,
                                const HostFftOptions& opts = {},
                                Variant variant = Variant::kFine);

}  // namespace c64fft::fft
