#include "fft/transpose.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fft/kernels/dispatch.hpp"

namespace c64fft::fft {

namespace {

void check_shape(std::size_t src_size, std::size_t dst_size, std::uint64_t rows,
                 std::uint64_t cols) {
  if (src_size != rows * cols || dst_size != rows * cols)
    throw std::invalid_argument("transpose: buffer size != rows * cols");
}

/// Diagonal-tile micro-kernel of the in-place square transpose: swap the
/// strict upper triangle of the tile at (d0, d0) with its mirror. The
/// whole tile is L1-resident, so the triangular (non-streaming) access
/// pattern costs nothing extra.
template <typename T>
void transpose_diag_tile(cplx_t<T>* data, std::uint64_t n, std::uint64_t d0,
                         std::uint64_t dmax) {
  for (std::uint64_t r = d0; r < dmax; ++r)
    for (std::uint64_t c = r + 1; c < dmax; ++c)
      std::swap(data[r * n + c], data[c * n + r]);
}

template <typename T>
void blocked_impl(std::span<const cplx_t<T>> src, std::span<cplx_t<T>> dst,
                  std::uint64_t rows, std::uint64_t cols) {
  check_shape(src.size(), dst.size(), rows, cols);
  // Each tile runs through the process-active SIMD kernel table's
  // transpose micro-kernel (register-blocked shuffles on AVX2+, the plain
  // doubly-nested copy on the scalar table). Pure element moves — the
  // result is the same permutation whatever the table.
  const kernels::KernelDispatch<T>& K = kernels::active_kernels<T>();
  for_each_transpose_tile(
      rows, cols,
      [&](std::uint64_t r0, std::uint64_t rmax, std::uint64_t c0,
          std::uint64_t cmax) {
        K.transpose_tile(src.data() + r0 * cols + c0, dst.data() + c0 * rows + r0,
                         cols, rows, rmax - r0, cmax - c0);
      });
}

template <typename T>
void inplace_square_impl(std::span<cplx_t<T>> data, std::uint64_t n) {
  check_shape(data.size(), data.size(), n, n);
  // Off-diagonal tiles come in mirror pairs: swap-transpose (r0,c0)
  // with (c0,r0) in one pass so each pair is touched exactly once.
  for_each_transpose_tile_pair(
      n, [&](std::uint64_t r0, std::uint64_t rmax, std::uint64_t c0,
             std::uint64_t cmax) {
        if (r0 == c0) {
          transpose_diag_tile<T>(data.data(), n, r0, rmax);
          return;
        }
        for (std::uint64_t r = r0; r < rmax; ++r)
          for (std::uint64_t c = c0; c < cmax; ++c)
            std::swap(data[r * n + c], data[c * n + r]);
      });
}

template <typename T>
void twiddle_blocked_impl(std::span<const cplx_t<T>> src, std::span<cplx_t<T>> dst,
                          std::uint64_t rows, std::uint64_t cols,
                          TwiddleDirection dir) {
  check_shape(src.size(), dst.size(), rows, cols);
  const std::uint64_t n = rows * cols;
  const cplx_t<T> w1 = unit_root<T>(n, 1, dir);
  for_each_transpose_tile(
      rows, cols,
      [&](std::uint64_t r0, std::uint64_t rmax, std::uint64_t c0,
          std::uint64_t cmax) {
        transpose_twiddle_tile<T>(src.data(), dst.data(), rows, cols, dir, r0,
                                  rmax, c0, cmax, w1);
      });
}

}  // namespace

void transpose_blocked(std::span<const cplx> src, std::span<cplx> dst,
                       std::uint64_t rows, std::uint64_t cols) {
  blocked_impl<double>(src, dst, rows, cols);
}

void transpose_blocked(std::span<const cplx32> src, std::span<cplx32> dst,
                       std::uint64_t rows, std::uint64_t cols) {
  blocked_impl<float>(src, dst, rows, cols);
}

void transpose_inplace_square(std::span<cplx> data, std::uint64_t n) {
  inplace_square_impl<double>(data, n);
}

void transpose_inplace_square(std::span<cplx32> data, std::uint64_t n) {
  inplace_square_impl<float>(data, n);
}

void transpose_twiddle_blocked(std::span<const cplx> src, std::span<cplx> dst,
                               std::uint64_t rows, std::uint64_t cols,
                               TwiddleDirection dir) {
  twiddle_blocked_impl<double>(src, dst, rows, cols, dir);
}

void transpose_twiddle_blocked(std::span<const cplx32> src, std::span<cplx32> dst,
                               std::uint64_t rows, std::uint64_t cols,
                               TwiddleDirection dir) {
  twiddle_blocked_impl<float>(src, dst, rows, cols, dir);
}

}  // namespace c64fft::fft
