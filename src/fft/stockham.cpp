#include "fft/stockham.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fft/kernels/dispatch.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::fft {

namespace {

// One decimation step: combine sub-transforms of length `len` from `src`
// into length 2*len in `dst`, autosorting along the way. The twiddle of
// combine column k depends only on k — never on the group — so it is
// evaluated once per pass into `tw` (same trig calls, in double,
// narrowed per element for the f32 variant: bit-identical to computing
// it inside the group loop) and the data sweep runs through the
// process-active SIMD kernel table.
template <typename T>
void stockham_pass(const cplx_t<T>* src, cplx_t<T>* dst, std::uint64_t n,
                   std::uint64_t len, cplx_t<T>* tw) {
  const double step = -std::numbers::pi / static_cast<double>(len);
  for (std::uint64_t k = 0; k < len; ++k) {
    const double angle = step * static_cast<double>(k);
    tw[k] = cplx_t<T>(static_cast<T>(std::cos(angle)),
                      static_cast<T>(std::sin(angle)));
  }
  kernels::active_kernels<T>().stockham_combine(src, dst, n, len, tw);
}

template <typename T>
std::vector<cplx_t<T>> stockham_impl(std::span<const cplx_t<T>> input) {
  const std::uint64_t n = input.size();
  if (!util::is_pow2(n) || n == 0)
    throw std::invalid_argument("fft_stockham: N must be a power of two >= 1");
  std::vector<cplx_t<T>> a(input.begin(), input.end());
  if (n == 1) return a;
  std::vector<cplx_t<T>> b(n);
  std::vector<cplx_t<T>> tw(n / 2);
  cplx_t<T>* src = a.data();
  cplx_t<T>* dst = b.data();
  for (std::uint64_t len = 1; len < n; len *= 2) {
    stockham_pass<T>(src, dst, n, len, tw.data());
    std::swap(src, dst);
  }
  return src == a.data() ? a : b;
}

}  // namespace

std::vector<cplx> fft_stockham(std::span<const cplx> input) {
  return stockham_impl<double>(input);
}

std::vector<cplx32> fft_stockham(std::span<const cplx32> input) {
  return stockham_impl<float>(input);
}

void fft_stockham_inplace(std::span<cplx> data) {
  auto out = fft_stockham(data);
  std::copy(out.begin(), out.end(), data.begin());
}

void fft_stockham_inplace(std::span<cplx32> data) {
  auto out = fft_stockham(data);
  std::copy(out.begin(), out.end(), data.begin());
}

}  // namespace c64fft::fft
