#include "fft/stockham.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/bit_ops.hpp"

namespace c64fft::fft {

namespace {

// One decimation step: combine sub-transforms of length `len` from `src`
// into length 2*len in `dst`, autosorting along the way. The twiddle trig
// is evaluated in double and narrowed per element for the f32 variant.
template <typename T>
void stockham_pass(const cplx_t<T>* src, cplx_t<T>* dst, std::uint64_t n,
                   std::uint64_t len) {
  const std::uint64_t half = n / 2;
  const std::uint64_t groups = half / len;  // sub-transform pairs
  const double step = -std::numbers::pi / static_cast<double>(len);
  for (std::uint64_t g = 0; g < groups; ++g) {
    for (std::uint64_t k = 0; k < len; ++k) {
      const double angle = step * static_cast<double>(k);
      const cplx_t<T> w(static_cast<T>(std::cos(angle)),
                        static_cast<T>(std::sin(angle)));
      const cplx_t<T> a = src[g * len + k];
      const cplx_t<T> b = src[g * len + k + half];
      const cplx_t<T> t = w * b;
      dst[2 * g * len + k] = a + t;
      dst[2 * g * len + k + len] = a - t;
    }
  }
}

template <typename T>
std::vector<cplx_t<T>> stockham_impl(std::span<const cplx_t<T>> input) {
  const std::uint64_t n = input.size();
  if (!util::is_pow2(n) || n == 0)
    throw std::invalid_argument("fft_stockham: N must be a power of two >= 1");
  std::vector<cplx_t<T>> a(input.begin(), input.end());
  if (n == 1) return a;
  std::vector<cplx_t<T>> b(n);
  cplx_t<T>* src = a.data();
  cplx_t<T>* dst = b.data();
  for (std::uint64_t len = 1; len < n; len *= 2) {
    stockham_pass<T>(src, dst, n, len);
    std::swap(src, dst);
  }
  return src == a.data() ? a : b;
}

}  // namespace

std::vector<cplx> fft_stockham(std::span<const cplx> input) {
  return stockham_impl<double>(input);
}

std::vector<cplx32> fft_stockham(std::span<const cplx32> input) {
  return stockham_impl<float>(input);
}

void fft_stockham_inplace(std::span<cplx> data) {
  auto out = fft_stockham(data);
  std::copy(out.begin(), out.end(), data.begin());
}

void fft_stockham_inplace(std::span<cplx32> data) {
  auto out = fft_stockham(data);
  std::copy(out.begin(), out.end(), data.begin());
}

}  // namespace c64fft::fft
