#pragma once
// 2-D FFT (row-column decomposition) built on the 1-D codelet variants —
// the extension direction the paper inherits from Chen et al.'s 1-D/2-D
// C64 study. Rows and columns are independent 1-D transforms, so each
// pass is itself a pool of parallel codelets. Both precisions are served
// by one template body in fft2d.cpp (the cplx32 overloads are the f32
// path).

#include <cstdint>
#include <span>

#include "fft/variants.hpp"

namespace c64fft::fft {

/// Validated shape of one 2-D transform: the dimensions, whether the
/// column pass transposes in place (square) or bounces through a scratch
/// buffer, and the per-pass clamped radices. This is the model-builder
/// hook shared between forward_2d/inverse_2d and the static pipeline
/// model (analysis::build_fft2d_pipeline), so the verifier analyzes
/// exactly the pass structure the runtime executes. Throws
/// std::invalid_argument on non-power-of-two dims or a size mismatch.
struct Fft2dShape {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  bool square = false;
  /// Radix of the cols-point row transforms / rows-point column
  /// transforms after the public-API clamp.
  unsigned row_radix_log2 = 0;
  unsigned col_radix_log2 = 0;
};
Fft2dShape fft2d_shape(std::size_t size, std::uint64_t rows, std::uint64_t cols,
                       unsigned radix_log2);

/// In-place 2-D forward FFT of a row-major `rows x cols` matrix; both
/// dimensions must be powers of two >= 2.
void forward_2d(std::span<cplx> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts = {}, Variant variant = Variant::kFine);
void forward_2d(std::span<cplx32> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts = {}, Variant variant = Variant::kFine);

/// In-place 2-D inverse FFT (1/(rows*cols) scaling).
void inverse_2d(std::span<cplx> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts = {}, Variant variant = Variant::kFine);
void inverse_2d(std::span<cplx32> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts = {}, Variant variant = Variant::kFine);

}  // namespace c64fft::fft
