#pragma once
// 2-D FFT (row-column decomposition) built on the 1-D codelet variants —
// the extension direction the paper inherits from Chen et al.'s 1-D/2-D
// C64 study. Rows and columns are independent 1-D transforms, so each
// pass is itself a pool of parallel codelets. Both precisions are served
// by one template body in fft2d.cpp (the cplx32 overloads are the f32
// path).

#include <cstdint>
#include <span>

#include "fft/variants.hpp"

namespace c64fft::fft {

/// In-place 2-D forward FFT of a row-major `rows x cols` matrix; both
/// dimensions must be powers of two >= 2.
void forward_2d(std::span<cplx> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts = {}, Variant variant = Variant::kFine);
void forward_2d(std::span<cplx32> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts = {}, Variant variant = Variant::kFine);

/// In-place 2-D inverse FFT (1/(rows*cols) scaling).
void inverse_2d(std::span<cplx> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts = {}, Variant variant = Variant::kFine);
void inverse_2d(std::span<cplx32> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts = {}, Variant variant = Variant::kFine);

}  // namespace c64fft::fft
