#pragma once
// Factorization-driven plan geometry for arbitrary N (Salishev's regular
// mixed-radix DFT matrix factorization): a `factorize(n)` planner emits a
// vector of stage radices drawn from {2, 3, 4, 5, 7, 8}, generalized
// digit-reversal replaces bit-reversal as the input permutation, and a
// flat per-stage twiddle vector (exactly N-1 entries — the per-stage
// counts L_{s-1}*(r-1) telescope) replaces the pow2-indexed half table.
//
// Stage algebra (decimation-in-time, natural-order output): stage s has
// radix r, transform length L = r * L_p where L_p is the previous stage's
// length. The butterfly at (block b, offset j), j in [0, L_p), computes
//   t_u = A[b*L + j + u*L_p] * W_L^{j*u}          u = 0..r-1
//   A[b*L + j + k*L_p] = sum_u t_u * W_r^{u*k}    k = 0..r-1
// with every root conjugated for the inverse direction. Butterflies of
// one stage touch disjoint index sets, so any per-stage parallel split is
// race-free and bit-deterministic regardless of scheduling order.
//
// Sizes whose residue after 7-smooth extraction exceeds 1 (large-prime N)
// are not representable here; they route to the Bluestein chirp-z path,
// whose chirp primitive also lives in this header (the chirp is the same
// any-n unit-root evaluation, with j^2 reduced mod 2n before the trig).

#include <cstdint>
#include <span>
#include <vector>

#include "fft/twiddle.hpp"
#include "fft/types.hpp"

namespace c64fft::fft {

/// Stage-radix decomposition of n. `factors` holds the execution-order
/// stage radices of the 7-smooth part (8s, then 4/2 remainders, then 3s,
/// 5s, 7s); `residue` is what remains after extracting them (1 when n is
/// 7-smooth, i.e. `smooth`). factorize(12) = {[8? no: [4, 3]], ...}:
/// 12 = 4 * 3 -> factors [4, 3], residue 1.
struct Factorization {
  std::vector<std::uint32_t> factors;
  std::uint64_t residue = 1;
  bool smooth = false;
};

Factorization factorize(std::uint64_t n);

/// Packed prime-exponent digest (2^e2 * 3^e3 * 5^e5 * 7^e7) of a
/// factorization — the PlanKey's fixed-width image of the stage vector.
/// Zero for non-smooth sizes (the residue is keyed by n itself).
std::uint64_t factorization_digest(const Factorization& f);

/// Generalized digit reversal of `p` over the mixed-radix digit bases
/// `factors` (execution order). When every factor is 2 this is exactly
/// util::bit_reverse(p, factors.size()). Unlike bit reversal it is NOT an
/// involution for non-palindromic factor vectors: the inverse permutation
/// is digit reversal over the REVERSED factor list.
std::uint64_t digit_reverse(std::uint64_t p,
                            std::span<const std::uint32_t> factors);

struct MixedRadixStage {
  std::uint32_t radix = 0;
  std::uint64_t len = 0;       ///< transform length after this stage (r*prev)
  std::uint64_t prev_len = 0;  ///< transform length before this stage
  std::uint64_t twiddle_offset = 0;  ///< base into the flat twiddle vector
};

/// Geometry of a mixed-radix plan: the stage vector plus the precomputed
/// input permutation table (out[p] = in[perm[p]]). Twiddles are built
/// separately per precision/direction (mixed_radix_twiddles) so one plan
/// can back all four tables. Throws std::invalid_argument unless
/// 2 <= n < 2^32 and n is 7-smooth.
class MixedRadixPlan {
 public:
  explicit MixedRadixPlan(std::uint64_t n);

  std::uint64_t size() const noexcept { return n_; }
  const std::vector<std::uint32_t>& factors() const noexcept {
    return factorization_.factors;
  }
  const Factorization& factorization() const noexcept { return factorization_; }
  const std::vector<MixedRadixStage>& stages() const noexcept { return stages_; }
  std::uint32_t stage_count() const noexcept {
    return static_cast<std::uint32_t>(stages_.size());
  }
  /// Input permutation: working[p] = input[permutation()[p]].
  std::span<const std::uint32_t> permutation() const noexcept { return perm_; }
  /// Total flat twiddle entries across all stages (always n - 1).
  std::uint64_t twiddle_count() const noexcept { return n_ - 1; }
  /// Largest stage radix (scratch sizing).
  std::uint32_t max_radix() const noexcept { return max_radix_; }
  /// Estimated real flops of one radix-r butterfly including its twiddle
  /// multiplies (feeds the analysis cost model; deterministic, not exact).
  static std::uint64_t butterfly_flops(std::uint32_t radix);
  /// Estimated real flops of the whole transform.
  std::uint64_t total_flops() const noexcept;

 private:
  std::uint64_t n_ = 0;
  std::uint32_t max_radix_ = 0;
  Factorization factorization_;
  std::vector<MixedRadixStage> stages_;
  std::vector<std::uint32_t> perm_;
};

/// Flat per-stage twiddle vector for `plan` (twiddle_count() entries):
/// stage s's butterfly (b, j) reads entries
/// [stage.twiddle_offset + j*(r-1) + (u-1)] = W_L^{j*u}, u = 1..r-1.
/// Angles always evaluate in double and narrow at store time, mirroring
/// BasicTwiddleTable's precision contract.
template <typename T>
std::vector<cplx_t<T>> mixed_radix_twiddles(const MixedRadixPlan& plan,
                                            TwiddleDirection direction);

/// Gather pass of the input permutation: dst[p] = src[perm[p]] for
/// p in [begin, end). src and dst must be distinct buffers of plan size.
template <typename T>
void mixed_radix_permute(const MixedRadixPlan& plan,
                         std::span<const cplx_t<T>> src,
                         std::span<cplx_t<T>> dst, std::uint64_t begin,
                         std::uint64_t end);

/// Run butterflies [g_begin, g_end) of `stage` (g in [0, n/r), block
/// b = g / L_p, offset j = g % L_p). src and dst may alias exactly
/// (in-place) or be fully disjoint buffers (the permuted-scratch ->
/// data stage-0 pass); each butterfly writes the same indices it reads.
/// Scalar bodies only — these are the bit-exact oracle the pow2 SIMD
/// kernels are judged against, and the composite path's sole backend.
template <typename T>
void run_mixed_radix_stage(const MixedRadixPlan& plan, std::uint32_t stage,
                           std::span<const cplx_t<T>> twiddles,
                           std::span<const cplx_t<T>> src,
                           std::span<cplx_t<T>> dst, std::uint64_t g_begin,
                           std::uint64_t g_end, TwiddleDirection direction);

/// Whole-transform serial convenience (tests, reference checks): permutes
/// `data` through `scratch` (resized to plan size) and runs every stage.
template <typename T>
void mixed_radix_serial(const MixedRadixPlan& plan,
                        std::span<const cplx_t<T>> twiddles,
                        std::span<cplx_t<T>> data,
                        std::vector<cplx_t<T>>& scratch,
                        TwiddleDirection direction);

/// Bluestein chirp c[j] = exp(-pi*i*j^2/n) (conjugated for kInverse),
/// evaluated as the (2n)-th unit root at j^2 mod 2n — the reduction runs
/// in 128-bit so j^2 cannot overflow — keeping it bit-identical to the
/// table-free unit_root every other path uses.
template <typename T>
cplx_t<T> bluestein_chirp(std::uint64_t n, std::uint64_t j,
                          TwiddleDirection direction);

/// Convolution length of the Bluestein path: next_pow2(2n - 1).
std::uint64_t bluestein_fft_size(std::uint64_t n);

}  // namespace c64fft::fft
