#pragma once
// AVX2 intrinsic kernel bodies, shared by kernels_avx2.cpp and
// kernels_avx512.cpp (AVX-512 implies AVX2; the 512-bit TU reuses these
// for the register-blocked fused pass, the 256-bit butterfly widths, and
// the transpose tiles). Everything lives in an anonymous namespace ON
// PURPOSE: each including TU is compiled with different ISA flags, and
// internal linkage guarantees each gets its own copy — an inline function
// here would be COMDAT-folded by the linker, and the surviving copy could
// be the one compiled with the wider ISA, crashing the narrower table on
// hosts that lack it.
//
// Numerics: one butterfly (or one element) per lane, scalar operation
// order — multiply, subtract, add, never FMA (the including TUs are built
// with -ffp-contract=off, and neither -mavx2 nor -mavx512* enables -mfma
// codegen for these explicit mul/add intrinsics). Shuffles and
// transposes only move lanes. Results are bit-identical to the portable
// kernels for finite data.
//
// The including TU must define C64FFT_KERNEL_ARCH_NS and include
// "fft/kernels/generic_kernels.hpp" BEFORE this header so the scalar
// helpers (fused tails, twiddle derivation) resolve to that TU's arch
// namespace.

#include <immintrin.h>

#include <cstdint>

#include "fft/kernels/generic_kernels.hpp"
#include "fft/twiddle.hpp"
#include "fft/types.hpp"

namespace c64fft::fft::kernels::detail {
namespace {

// ---- Register transposes (pure lane moves, exact) ----

/// 8x8 f32 in-register transpose: r[j] = row j on entry, column j on exit.
inline void transpose8x8_ps(__m256 r[8]) {
  const __m256 t0 = _mm256_unpacklo_ps(r[0], r[1]);
  const __m256 t1 = _mm256_unpackhi_ps(r[0], r[1]);
  const __m256 t2 = _mm256_unpacklo_ps(r[2], r[3]);
  const __m256 t3 = _mm256_unpackhi_ps(r[2], r[3]);
  const __m256 t4 = _mm256_unpacklo_ps(r[4], r[5]);
  const __m256 t5 = _mm256_unpackhi_ps(r[4], r[5]);
  const __m256 t6 = _mm256_unpacklo_ps(r[6], r[7]);
  const __m256 t7 = _mm256_unpackhi_ps(r[6], r[7]);
  const __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  r[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
  r[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
  r[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
  r[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
  r[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
  r[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
  r[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
  r[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
}

/// 4x4 f64 in-register transpose.
inline void transpose4x4_pd(__m256d r[4]) {
  const __m256d t0 = _mm256_unpacklo_pd(r[0], r[1]);
  const __m256d t1 = _mm256_unpackhi_pd(r[0], r[1]);
  const __m256d t2 = _mm256_unpacklo_pd(r[2], r[3]);
  const __m256d t3 = _mm256_unpackhi_pd(r[2], r[3]);
  r[0] = _mm256_permute2f128_pd(t0, t2, 0x20);
  r[1] = _mm256_permute2f128_pd(t1, t3, 0x20);
  r[2] = _mm256_permute2f128_pd(t0, t2, 0x31);
  r[3] = _mm256_permute2f128_pd(t1, t3, 0x31);
}

// ---- Vector butterflies (element a/b of W independent chains per lane) ----

inline void bf_ps(__m256 r[8], __m256 i[8], int a, int b, float wr, float wi) {
  const __m256 vwr = _mm256_set1_ps(wr);
  const __m256 vwi = _mm256_set1_ps(wi);
  const __m256 tr = _mm256_sub_ps(_mm256_mul_ps(vwr, r[b]), _mm256_mul_ps(vwi, i[b]));
  const __m256 ti = _mm256_add_ps(_mm256_mul_ps(vwr, i[b]), _mm256_mul_ps(vwi, r[b]));
  r[b] = _mm256_sub_ps(r[a], tr);
  i[b] = _mm256_sub_ps(i[a], ti);
  r[a] = _mm256_add_ps(r[a], tr);
  i[a] = _mm256_add_ps(i[a], ti);
}

inline void bf_pd(__m256d r[8], __m256d i[8], int a, int b, double wr, double wi) {
  const __m256d vwr = _mm256_set1_pd(wr);
  const __m256d vwi = _mm256_set1_pd(wi);
  const __m256d tr = _mm256_sub_pd(_mm256_mul_pd(vwr, r[b]), _mm256_mul_pd(vwi, i[b]));
  const __m256d ti = _mm256_add_pd(_mm256_mul_pd(vwr, i[b]), _mm256_mul_pd(vwi, r[b]));
  r[b] = _mm256_sub_pd(r[a], tr);
  i[b] = _mm256_sub_pd(i[a], ti);
  r[a] = _mm256_add_pd(r[a], tr);
  i[a] = _mm256_add_pd(i[a], ti);
}

/// The 12 butterflies of a fused radix-8 group over register-resident
/// element slices x?[j] = element j of each lane's group. Same order as
/// detail::fused8_group.
template <typename V, typename BF, typename T>
inline void fused8_regs(V xr[8], V xi[8], const T* twr, const T* twi, BF&& bf) {
  bf(xr, xi, 0, 1, twr[0], twi[0]);
  bf(xr, xi, 2, 3, twr[0], twi[0]);
  bf(xr, xi, 4, 5, twr[0], twi[0]);
  bf(xr, xi, 6, 7, twr[0], twi[0]);
  bf(xr, xi, 0, 2, twr[1], twi[1]);
  bf(xr, xi, 1, 3, twr[2], twi[2]);
  bf(xr, xi, 4, 6, twr[1], twi[1]);
  bf(xr, xi, 5, 7, twr[2], twi[2]);
  bf(xr, xi, 0, 4, twr[3], twi[3]);
  bf(xr, xi, 1, 5, twr[4], twi[4]);
  bf(xr, xi, 2, 6, twr[5], twi[5]);
  bf(xr, xi, 3, 7, twr[6], twi[6]);
}

// ---- Register-blocked fused radix-8 first pass ----

/// f32: 8 groups of 8 at a time — 8x8 transpose puts element j of all 8
/// groups in one register, the 12 butterflies run on full vectors, and
/// the transpose back restores group-contiguous layout.
inline void fused8_pass_avx2(float* re, float* im, std::uint64_t len,
                             const float* twr, const float* twi) {
  std::uint64_t g = 0;
  for (; g + 64 <= len; g += 64) {
    __m256 xr[8], xi[8];
    for (int j = 0; j < 8; ++j) {
      xr[j] = _mm256_loadu_ps(re + g + 8 * j);
      xi[j] = _mm256_loadu_ps(im + g + 8 * j);
    }
    transpose8x8_ps(xr);
    transpose8x8_ps(xi);
    fused8_regs(xr, xi, twr, twi, [](__m256 r[8], __m256 i[8], int a, int b,
                                     float wr, float wi) { bf_ps(r, i, a, b, wr, wi); });
    transpose8x8_ps(xr);
    transpose8x8_ps(xi);
    for (int j = 0; j < 8; ++j) {
      _mm256_storeu_ps(re + g + 8 * j, xr[j]);
      _mm256_storeu_ps(im + g + 8 * j, xi[j]);
    }
  }
  for (; g < len; g += 8) fused8_group<float>(re + g, im + g, twr, twi);
}

/// f64: 4 groups of 8 at a time — two 4x4 transposes (low/high half of
/// each group) produce the eight element slices.
inline void fused8_pass_avx2(double* re, double* im, std::uint64_t len,
                             const double* twr, const double* twi) {
  std::uint64_t g = 0;
  for (; g + 32 <= len; g += 32) {
    __m256d xr[8], xi[8];
    for (int k = 0; k < 4; ++k) {
      xr[k] = _mm256_loadu_pd(re + g + 8 * k);
      xr[4 + k] = _mm256_loadu_pd(re + g + 8 * k + 4);
      xi[k] = _mm256_loadu_pd(im + g + 8 * k);
      xi[4 + k] = _mm256_loadu_pd(im + g + 8 * k + 4);
    }
    transpose4x4_pd(xr);
    transpose4x4_pd(xr + 4);
    transpose4x4_pd(xi);
    transpose4x4_pd(xi + 4);
    fused8_regs(xr, xi, twr, twi, [](__m256d r[8], __m256d i[8], int a, int b,
                                     double wr, double wi) { bf_pd(r, i, a, b, wr, wi); });
    transpose4x4_pd(xr);
    transpose4x4_pd(xr + 4);
    transpose4x4_pd(xi);
    transpose4x4_pd(xi + 4);
    for (int k = 0; k < 4; ++k) {
      _mm256_storeu_pd(re + g + 8 * k, xr[k]);
      _mm256_storeu_pd(re + g + 8 * k + 4, xr[4 + k]);
      _mm256_storeu_pd(im + g + 8 * k, xi[k]);
      _mm256_storeu_pd(im + g + 8 * k + 4, xi[4 + k]);
    }
  }
  for (; g < len; g += 8) fused8_group<double>(re + g, im + g, twr, twi);
}

// ---- 256-bit shared-twiddle butterfly level (half must be a multiple of
// the vector width) ----

inline void span_level_avx2(float* re, float* im, std::uint64_t len,
                            std::uint64_t half, const float* tw_re,
                            const float* tw_im) {
  for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
    for (std::uint64_t u = 0; u < half; u += 8) {
      const __m256 wr = _mm256_loadu_ps(tw_re + u);
      const __m256 wi = _mm256_loadu_ps(tw_im + u);
      const __m256 ar = _mm256_loadu_ps(re + lo + u);
      const __m256 ai = _mm256_loadu_ps(im + lo + u);
      const __m256 br = _mm256_loadu_ps(re + lo + half + u);
      const __m256 bi = _mm256_loadu_ps(im + lo + half + u);
      const __m256 tr = _mm256_sub_ps(_mm256_mul_ps(wr, br), _mm256_mul_ps(wi, bi));
      const __m256 ti = _mm256_add_ps(_mm256_mul_ps(wr, bi), _mm256_mul_ps(wi, br));
      _mm256_storeu_ps(re + lo + half + u, _mm256_sub_ps(ar, tr));
      _mm256_storeu_ps(im + lo + half + u, _mm256_sub_ps(ai, ti));
      _mm256_storeu_ps(re + lo + u, _mm256_add_ps(ar, tr));
      _mm256_storeu_ps(im + lo + u, _mm256_add_ps(ai, ti));
    }
  }
}

inline void span_level_avx2(double* re, double* im, std::uint64_t len,
                            std::uint64_t half, const double* tw_re,
                            const double* tw_im) {
  for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
    for (std::uint64_t u = 0; u < half; u += 4) {
      const __m256d wr = _mm256_loadu_pd(tw_re + u);
      const __m256d wi = _mm256_loadu_pd(tw_im + u);
      const __m256d ar = _mm256_loadu_pd(re + lo + u);
      const __m256d ai = _mm256_loadu_pd(im + lo + u);
      const __m256d br = _mm256_loadu_pd(re + lo + half + u);
      const __m256d bi = _mm256_loadu_pd(im + lo + half + u);
      const __m256d tr = _mm256_sub_pd(_mm256_mul_pd(wr, br), _mm256_mul_pd(wi, bi));
      const __m256d ti = _mm256_add_pd(_mm256_mul_pd(wr, bi), _mm256_mul_pd(wi, br));
      _mm256_storeu_pd(re + lo + half + u, _mm256_sub_pd(ar, tr));
      _mm256_storeu_pd(im + lo + half + u, _mm256_sub_pd(ai, ti));
      _mm256_storeu_pd(re + lo + u, _mm256_add_pd(ar, tr));
      _mm256_storeu_pd(im + lo + u, _mm256_add_pd(ai, ti));
    }
  }
}

template <typename T>
inline constexpr std::uint64_t kAvx2Width = 32 / sizeof(T);

/// vgather/vscatter instructions take i32 element indices: a strided
/// access pattern may only use them when its last index fits (stride2 is
/// the scalar-element stride, i.e. twice the complex stride).
inline bool gather_fits_i32(std::uint64_t stride2, std::uint64_t count) {
  return count == 0 || (count - 1) * stride2 + 1 <= 0x7fffffffull;
}

template <typename T>
void gather_split_avx2(const cplx_t<T>* src, std::uint64_t stride,
                       std::uint64_t count, T* re, T* im);

/// SIMD sibling of detail::level_twiddle_span — same shareability
/// predicate, but with a kLinear table the span is an affine strided read
/// of the storage array (storage[(c << shift) + u * (stride << shift)]),
/// so the materialization runs through the vgather path instead of the
/// scalar at() loop. The entries loaded are the identical table values —
/// lane moves only, bit-identical spans. kBitReversed layouts index
/// through bit_reverse (not affine) and keep the scalar loop.
template <typename T>
inline bool level_twiddle_span_x86(std::uint64_t base, std::uint64_t stride,
                                   std::uint32_t level, std::uint32_t v,
                                   unsigned log2n,
                                   const BasicTwiddleTable<T>& twiddles,
                                   T* __restrict tw_re, T* __restrict tw_im) {
  const std::uint64_t half = std::uint64_t{1} << v;
  const std::uint64_t block_mask = (std::uint64_t{1} << level) - 1;
  const unsigned shift = log2n - level - 1;
  const std::uint64_t c = base & block_mask;
  const bool blocks_share = ((stride << (v + 1)) & block_mask) == 0;
  const bool wrap_free = c + (half - 1) * stride <= block_mask;
  if (!(blocks_share && wrap_free)) return false;
  const std::uint64_t tw_stride = stride << shift;
  if (twiddles.layout() == TwiddleLayout::kLinear &&
      half >= kAvx2Width<T> && gather_fits_i32(2 * tw_stride, half)) {
    gather_split_avx2<T>(twiddles.storage().data() + (c << shift), tw_stride,
                         half, tw_re, tw_im);
    return true;
  }
  for (std::uint64_t u = 0; u < half; ++u) {
    const cplx_t<T> w = twiddles.at((c + u * stride) << shift);
    tw_re[u] = w.real();
    tw_im[u] = w.imag();
  }
  return true;
}

// ---- chain_split: fused register-blocked first pass + wide levels ----

template <typename T>
void chain_split_avx2(T* re, T* im, std::uint64_t len, std::uint64_t base,
                      std::uint64_t stride, std::uint32_t first_level,
                      std::uint32_t levels, unsigned log2n,
                      const BasicTwiddleTable<T>& twiddles, T* tw_re, T* tw_im,
                      unsigned fuse_log2) {
  const std::uint32_t v_start = fused_first_pass<T>(
      re, im, len, base, stride, first_level, levels, log2n, twiddles,
      fuse_log2, [&](unsigned f, const T* twr, const T* twi) {
        if (f == 3) {
          fused8_pass_avx2(re, im, len, twr, twi);
        } else {
          for (std::uint64_t g = 0; g < len; g += 4)
            fused4_group<T>(re + g, im + g, twr, twi);
        }
      });

  for (std::uint32_t v = v_start; v < levels; ++v) {
    const std::uint64_t half = std::uint64_t{1} << v;
    const std::uint32_t level = first_level + v;
    if (level_twiddle_span_x86<T>(base, stride, level, v, log2n, twiddles,
                                  tw_re, tw_im)) {
      if (half >= kAvx2Width<T>)
        span_level_avx2(re, im, len, half, tw_re, tw_im);
      else
        span_level<T>(re, im, len, half, tw_re, tw_im);
    } else {
      generic_level<T>(re, im, len, base, stride, level, v, log2n, twiddles);
    }
  }
}

// ---- Complex de/interleave (the codelet gather/scatter, stride 1) ----

inline void deinterleave8_ps(const float* src, float* re, float* im) {
  const __m256 v0 = _mm256_loadu_ps(src);      // r0 i0 r1 i1 | r2 i2 r3 i3
  const __m256 v1 = _mm256_loadu_ps(src + 8);  // r4 i4 r5 i5 | r6 i6 r7 i7
  const __m256 lo = _mm256_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));
  const __m256 hi = _mm256_shuffle_ps(v0, v1, _MM_SHUFFLE(3, 1, 3, 1));
  // lo = r0 r1 r4 r5 | r2 r3 r6 r7; fix qword order 0,2,1,3.
  _mm256_storeu_ps(re, _mm256_castpd_ps(_mm256_permute4x64_pd(
                           _mm256_castps_pd(lo), _MM_SHUFFLE(3, 1, 2, 0))));
  _mm256_storeu_ps(im, _mm256_castpd_ps(_mm256_permute4x64_pd(
                           _mm256_castps_pd(hi), _MM_SHUFFLE(3, 1, 2, 0))));
}

inline void interleave8_ps(const float* re, const float* im, float* dst) {
  // Qword swap 1<->2 is an involution, so the same permute undoes the
  // deinterleave ordering before the unpacks rebuild (re, im) pairs.
  const __m256 a = _mm256_castpd_ps(_mm256_permute4x64_pd(
      _mm256_castps_pd(_mm256_loadu_ps(re)), _MM_SHUFFLE(3, 1, 2, 0)));
  const __m256 b = _mm256_castpd_ps(_mm256_permute4x64_pd(
      _mm256_castps_pd(_mm256_loadu_ps(im)), _MM_SHUFFLE(3, 1, 2, 0)));
  _mm256_storeu_ps(dst, _mm256_unpacklo_ps(a, b));
  _mm256_storeu_ps(dst + 8, _mm256_unpackhi_ps(a, b));
}

inline void deinterleave4_pd(const double* src, double* re, double* im) {
  const __m256d a = _mm256_loadu_pd(src);      // r0 i0 | r1 i1
  const __m256d b = _mm256_loadu_pd(src + 4);  // r2 i2 | r3 i3
  const __m256d t0 = _mm256_permute2f128_pd(a, b, 0x20);  // r0 i0 | r2 i2
  const __m256d t1 = _mm256_permute2f128_pd(a, b, 0x31);  // r1 i1 | r3 i3
  _mm256_storeu_pd(re, _mm256_unpacklo_pd(t0, t1));
  _mm256_storeu_pd(im, _mm256_unpackhi_pd(t0, t1));
}

inline void interleave4_pd(const double* re, const double* im, double* dst) {
  const __m256d r = _mm256_loadu_pd(re);
  const __m256d i = _mm256_loadu_pd(im);
  const __m256d t0 = _mm256_unpacklo_pd(r, i);  // r0 i0 | r2 i2
  const __m256d t1 = _mm256_unpackhi_pd(r, i);  // r1 i1 | r3 i3
  _mm256_storeu_pd(dst, _mm256_permute2f128_pd(t0, t1, 0x20));
  _mm256_storeu_pd(dst + 4, _mm256_permute2f128_pd(t0, t1, 0x31));
}

// ---- Strided split-complex loads via hardware vgather ----
//
// For stride != 1 the codelet reads re[q] = s[q*stride2] and
// im[q] = s[q*stride2 + 1] with s the scalar view of the complex array
// and stride2 = 2*stride. A vgather per component replaces the scalar
// address-generation chain (two dependent loads plus indexing per
// element). Gathers are plain loads — lane moves only, bit-identical to
// the scalar loop. vgather takes i32 indices, so callers must guard the
// reachable span (gather_fits_i32, declared further up).

inline void gather_strided_avx2(const float* s, std::uint64_t stride2,
                                std::uint64_t count, float* re, float* im) {
  const __m256i step = _mm256_set1_epi32(static_cast<int>(stride2));
  __m256i idx = _mm256_mullo_epi32(
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7), step);
  const __m256i step8 = _mm256_slli_epi32(step, 3);
  const __m256i one = _mm256_set1_epi32(1);
  std::uint64_t q = 0;
  for (; q + 8 <= count; q += 8) {
    _mm256_storeu_ps(re + q, _mm256_i32gather_ps(s, idx, 4));
    _mm256_storeu_ps(im + q,
                     _mm256_i32gather_ps(s, _mm256_add_epi32(idx, one), 4));
    idx = _mm256_add_epi32(idx, step8);
  }
  for (; q < count; ++q) {
    re[q] = s[q * stride2];
    im[q] = s[q * stride2 + 1];
  }
}

inline void gather_strided_avx2(const double* s, std::uint64_t stride2,
                                std::uint64_t count, double* re, double* im) {
  const __m128i step = _mm_set1_epi32(static_cast<int>(stride2));
  __m128i idx = _mm_mullo_epi32(_mm_setr_epi32(0, 1, 2, 3), step);
  const __m128i step4 = _mm_slli_epi32(step, 2);
  const __m128i one = _mm_set1_epi32(1);
  std::uint64_t q = 0;
  for (; q + 4 <= count; q += 4) {
    _mm256_storeu_pd(re + q, _mm256_i32gather_pd(s, idx, 8));
    _mm256_storeu_pd(im + q,
                     _mm256_i32gather_pd(s, _mm_add_epi32(idx, one), 8));
    idx = _mm_add_epi32(idx, step4);
  }
  for (; q < count; ++q) {
    re[q] = s[q * stride2];
    im[q] = s[q * stride2 + 1];
  }
}

// ---- Bit-reversal permuted split loads ----
//
// re/im[q] = src[idx[q]]: the index vector comes from memory (the cached
// bit-reversal table) instead of an affine progression, otherwise the
// same two-gathers-per-vector shape as the strided path. idx entries are
// < 2^30 by the dispatch contract, so doubling into scalar-component
// indices cannot overflow i32.

inline void permute_split_x86(const cplx_t<float>* src,
                              const std::uint32_t* idx, std::uint64_t count,
                              float* re, float* im) {
  const float* s = reinterpret_cast<const float*>(src);
  const __m256i one = _mm256_set1_epi32(1);
  std::uint64_t q = 0;
  for (; q + 8 <= count; q += 8) {
    const __m256i fi = _mm256_slli_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + q)), 1);
    _mm256_storeu_ps(re + q, _mm256_i32gather_ps(s, fi, 4));
    _mm256_storeu_ps(im + q,
                     _mm256_i32gather_ps(s, _mm256_add_epi32(fi, one), 4));
  }
  for (; q < count; ++q) {
    const cplx_t<float> x = src[idx[q]];
    re[q] = x.real();
    im[q] = x.imag();
  }
}

inline void permute_split_x86(const cplx_t<double>* src,
                              const std::uint32_t* idx, std::uint64_t count,
                              double* re, double* im) {
  const double* s = reinterpret_cast<const double*>(src);
  const __m128i one = _mm_set1_epi32(1);
  std::uint64_t q = 0;
  for (; q + 4 <= count; q += 4) {
    const __m128i fi = _mm_slli_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + q)), 1);
    _mm256_storeu_pd(re + q, _mm256_i32gather_pd(s, fi, 8));
    _mm256_storeu_pd(im + q,
                     _mm256_i32gather_pd(s, _mm_add_epi32(fi, one), 8));
  }
  for (; q < count; ++q) {
    const cplx_t<double> x = src[idx[q]];
    re[q] = x.real();
    im[q] = x.imag();
  }
}

template <typename T>
void permute_split_avx2(const cplx_t<T>* src, const std::uint32_t* idx,
                        std::uint64_t count, T* re, T* im) {
  permute_split_x86(src, idx, count, re, im);
}

template <typename T>
void gather_split_avx2(const cplx_t<T>* src, std::uint64_t stride,
                       std::uint64_t count, T* re, T* im) {
  if (stride != 1) {
    if (gather_fits_i32(2 * stride, count))
      gather_strided_avx2(reinterpret_cast<const T*>(src), 2 * stride, count,
                          re, im);
    else
      gather_split_generic<T>(src, stride, count, re, im);
    return;
  }
  const std::uint64_t w = kAvx2Width<T>;
  const T* s = reinterpret_cast<const T*>(src);
  std::uint64_t q = 0;
  for (; q + w <= count; q += w) {
    if constexpr (sizeof(T) == 4)
      deinterleave8_ps(s + 2 * q, re + q, im + q);
    else
      deinterleave4_pd(s + 2 * q, re + q, im + q);
  }
  for (; q < count; ++q) {
    const cplx_t<T> x = src[q];
    re[q] = x.real();
    im[q] = x.imag();
  }
}

template <typename T>
void scatter_merge_avx2(const T* re, const T* im, std::uint64_t count,
                        cplx_t<T>* dst, std::uint64_t stride) {
  if (stride != 1) {
    scatter_merge_generic<T>(re, im, count, dst, stride);
    return;
  }
  const std::uint64_t w = kAvx2Width<T>;
  T* d = reinterpret_cast<T*>(dst);
  std::uint64_t q = 0;
  for (; q + w <= count; q += w) {
    if constexpr (sizeof(T) == 4)
      interleave8_ps(re + q, im + q, d + 2 * q);
    else
      interleave4_pd(re + q, im + q, d + 2 * q);
  }
  for (; q < count; ++q) dst[q] = cplx_t<T>(re[q], im[q]);
}

// ---- Stockham combine: addsub-based complex multiply on interleaved
// data. Lane 2k holds wr*br - wi*bi, lane 2k+1 holds wr*bi + wi*br — the
// exact scalar operation sequence of cplx_t<T> multiplication. ----

inline void stockham_combine_avx2_impl(const cplx_t<float>* src,
                                       cplx_t<float>* dst, std::uint64_t n,
                                       std::uint64_t len,
                                       const cplx_t<float>* tw) {
  const std::uint64_t half = n / 2;
  const std::uint64_t groups = half / len;
  const float* s = reinterpret_cast<const float*>(src);
  const float* w = reinterpret_cast<const float*>(tw);
  float* d = reinterpret_cast<float*>(dst);
  for (std::uint64_t g = 0; g < groups; ++g) {
    std::uint64_t k = 0;
    for (; k + 4 <= len; k += 4) {
      const __m256 wv = _mm256_loadu_ps(w + 2 * k);
      const __m256 a = _mm256_loadu_ps(s + 2 * (g * len + k));
      const __m256 b = _mm256_loadu_ps(s + 2 * (g * len + k + half));
      const __m256 wr = _mm256_moveldup_ps(wv);
      const __m256 wi = _mm256_movehdup_ps(wv);
      const __m256 bsw = _mm256_permute_ps(b, 0xB1);
      const __m256 t = _mm256_addsub_ps(_mm256_mul_ps(wr, b), _mm256_mul_ps(wi, bsw));
      _mm256_storeu_ps(d + 2 * (2 * g * len + k), _mm256_add_ps(a, t));
      _mm256_storeu_ps(d + 2 * (2 * g * len + k + len), _mm256_sub_ps(a, t));
    }
    for (; k < len; ++k) {
      const cplx_t<float> a = src[g * len + k];
      const cplx_t<float> t = tw[k] * src[g * len + k + half];
      dst[2 * g * len + k] = a + t;
      dst[2 * g * len + k + len] = a - t;
    }
  }
}

inline void stockham_combine_avx2_impl(const cplx_t<double>* src,
                                       cplx_t<double>* dst, std::uint64_t n,
                                       std::uint64_t len,
                                       const cplx_t<double>* tw) {
  const std::uint64_t half = n / 2;
  const std::uint64_t groups = half / len;
  const double* s = reinterpret_cast<const double*>(src);
  const double* w = reinterpret_cast<const double*>(tw);
  double* d = reinterpret_cast<double*>(dst);
  for (std::uint64_t g = 0; g < groups; ++g) {
    std::uint64_t k = 0;
    for (; k + 2 <= len; k += 2) {
      const __m256d wv = _mm256_loadu_pd(w + 2 * k);
      const __m256d a = _mm256_loadu_pd(s + 2 * (g * len + k));
      const __m256d b = _mm256_loadu_pd(s + 2 * (g * len + k + half));
      const __m256d wr = _mm256_movedup_pd(wv);
      const __m256d wi = _mm256_permute_pd(wv, 0xF);
      const __m256d bsw = _mm256_permute_pd(b, 0x5);
      const __m256d t = _mm256_addsub_pd(_mm256_mul_pd(wr, b), _mm256_mul_pd(wi, bsw));
      _mm256_storeu_pd(d + 2 * (2 * g * len + k), _mm256_add_pd(a, t));
      _mm256_storeu_pd(d + 2 * (2 * g * len + k + len), _mm256_sub_pd(a, t));
    }
    for (; k < len; ++k) {
      const cplx_t<double> a = src[g * len + k];
      const cplx_t<double> t = tw[k] * src[g * len + k + half];
      dst[2 * g * len + k] = a + t;
      dst[2 * g * len + k + len] = a - t;
    }
  }
}

template <typename T>
void stockham_combine_avx2(const cplx_t<T>* src, cplx_t<T>* dst, std::uint64_t n,
                           std::uint64_t len, const cplx_t<T>* tw) {
  stockham_combine_avx2_impl(src, dst, n, len, tw);
}

// ---- Transpose tile micro-kernels (complex elements as 64-bit /
// 128-bit lane moves) ----

inline void transpose_tile_avx2_impl(const cplx_t<float>* src, cplx_t<float>* dst,
                                     std::uint64_t ss, std::uint64_t ds,
                                     std::uint64_t rows, std::uint64_t cols) {
  std::uint64_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    std::uint64_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      const __m256i* s0 = reinterpret_cast<const __m256i*>(src + (r + 0) * ss + c);
      const __m256i* s1 = reinterpret_cast<const __m256i*>(src + (r + 1) * ss + c);
      const __m256i* s2 = reinterpret_cast<const __m256i*>(src + (r + 2) * ss + c);
      const __m256i* s3 = reinterpret_cast<const __m256i*>(src + (r + 3) * ss + c);
      const __m256i r0 = _mm256_loadu_si256(s0);
      const __m256i r1 = _mm256_loadu_si256(s1);
      const __m256i r2 = _mm256_loadu_si256(s2);
      const __m256i r3 = _mm256_loadu_si256(s3);
      const __m256i t0 = _mm256_unpacklo_epi64(r0, r1);  // a0 b0 | a2 b2
      const __m256i t1 = _mm256_unpackhi_epi64(r0, r1);  // a1 b1 | a3 b3
      const __m256i t2 = _mm256_unpacklo_epi64(r2, r3);
      const __m256i t3 = _mm256_unpackhi_epi64(r2, r3);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + (c + 0) * ds + r),
                          _mm256_permute2x128_si256(t0, t2, 0x20));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + (c + 1) * ds + r),
                          _mm256_permute2x128_si256(t1, t3, 0x20));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + (c + 2) * ds + r),
                          _mm256_permute2x128_si256(t0, t2, 0x31));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + (c + 3) * ds + r),
                          _mm256_permute2x128_si256(t1, t3, 0x31));
    }
    for (; c < cols; ++c)
      for (std::uint64_t rr = r; rr < r + 4; ++rr)
        dst[c * ds + rr] = src[rr * ss + c];
  }
  for (; r < rows; ++r)
    for (std::uint64_t c = 0; c < cols; ++c) dst[c * ds + r] = src[r * ss + c];
}

inline void transpose_tile_avx2_impl(const cplx_t<double>* src, cplx_t<double>* dst,
                                     std::uint64_t ss, std::uint64_t ds,
                                     std::uint64_t rows, std::uint64_t cols) {
  std::uint64_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    std::uint64_t c = 0;
    for (; c + 2 <= cols; c += 2) {
      const __m256d r0 =
          _mm256_loadu_pd(reinterpret_cast<const double*>(src + (r + 0) * ss + c));
      const __m256d r1 =
          _mm256_loadu_pd(reinterpret_cast<const double*>(src + (r + 1) * ss + c));
      _mm256_storeu_pd(reinterpret_cast<double*>(dst + (c + 0) * ds + r),
                       _mm256_permute2f128_pd(r0, r1, 0x20));
      _mm256_storeu_pd(reinterpret_cast<double*>(dst + (c + 1) * ds + r),
                       _mm256_permute2f128_pd(r0, r1, 0x31));
    }
    for (; c < cols; ++c) {
      dst[c * ds + r] = src[r * ss + c];
      dst[c * ds + r + 1] = src[(r + 1) * ss + c];
    }
  }
  for (; r < rows; ++r)
    for (std::uint64_t c = 0; c < cols; ++c) dst[c * ds + r] = src[r * ss + c];
}

template <typename T>
void transpose_tile_avx2(const cplx_t<T>* src, cplx_t<T>* dst,
                         std::uint64_t src_stride, std::uint64_t dst_stride,
                         std::uint64_t rows, std::uint64_t cols) {
  transpose_tile_avx2_impl(src, dst, src_stride, dst_stride, rows, cols);
}

}  // namespace
}  // namespace c64fft::fft::kernels::detail
