// AVX2 kernel table. This translation unit — and only this one — is
// compiled with -mavx2 -ffp-contract=off (see src/fft/CMakeLists.txt), so
// every function pointer it exports runs 256-bit code while the rest of
// the library stays at the build's baseline ISA.

#define C64FFT_KERNEL_ARCH_NS arch_avx2
#include "fft/kernels/generic_kernels.hpp"
//
#include "fft/kernels/kernels_x86_common.hpp"
#include "fft/kernels/tables.hpp"

namespace c64fft::fft::kernels::detail {

namespace {

template <typename T>
const KernelDispatch<T> kAvx2Table{
    util::IsaLevel::kAvx2,
    "avx2",
    &chain_split_avx2<T>,
    &gather_split_avx2<T>,
    &permute_split_avx2<T>,
    &scatter_merge_avx2<T>,
    &stockham_combine_avx2<T>,
    &transpose_tile_avx2<T>,
};

}  // namespace

template <>
const KernelDispatch<float>& avx2_table<float>() {
  return kAvx2Table<float>;
}

template <>
const KernelDispatch<double>& avx2_table<double>() {
  return kAvx2Table<double>;
}

}  // namespace c64fft::fft::kernels::detail
