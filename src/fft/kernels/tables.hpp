#pragma once
// Internal: per-ISA table accessors linked into dispatch.cpp. Each
// translation unit (kernels_scalar.cpp / kernels_avx2.cpp /
// kernels_avx512.cpp) owns its table so its function pointers are
// compiled with that TU's ISA flags. The SIMD accessors exist only when
// CMake compiled their TU (C64FFT_KERNELS_AVX2 / _AVX512 definitions);
// dispatch.cpp aliases missing levels to the scalar table.

#include "fft/kernels/dispatch.hpp"

namespace c64fft::fft::kernels::detail {

template <typename T>
const KernelDispatch<T>& scalar_table();

#if defined(C64FFT_KERNELS_AVX2)
template <typename T>
const KernelDispatch<T>& avx2_table();
#endif

#if defined(C64FFT_KERNELS_AVX512)
template <typename T>
const KernelDispatch<T>& avx512_table();
#endif

}  // namespace c64fft::fft::kernels::detail
