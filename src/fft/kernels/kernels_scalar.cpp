// Scalar (portable) kernel table: the generic template bodies compiled at
// the build's baseline ISA. This TU deliberately has no extra ISA flags —
// it IS the historical autovectorized path, and the oracle every SIMD
// table is compared against.

#include "fft/kernels/generic_kernels.hpp"
#include "fft/kernels/tables.hpp"

namespace c64fft::fft::kernels::detail {

namespace {

template <typename T>
constexpr KernelDispatch<T> make_scalar_table() {
  return KernelDispatch<T>{
      util::IsaLevel::kScalar,
      "scalar",
      &chain_split_generic<T>,
      &gather_split_generic<T>,
      &permute_split_generic<T>,
      &scatter_merge_generic<T>,
      &stockham_combine_generic<T>,
      &transpose_tile_generic<T>,
  };
}

}  // namespace

template <>
const KernelDispatch<float>& scalar_table<float>() {
  static constexpr KernelDispatch<float> t = make_scalar_table<float>();
  return t;
}

template <>
const KernelDispatch<double>& scalar_table<double>() {
  static constexpr KernelDispatch<double> t = make_scalar_table<double>();
  return t;
}

}  // namespace c64fft::fft::kernels::detail
