#pragma once
// Portable template bodies of every dispatched kernel (dispatch.hpp) plus
// the helpers the SIMD translation units share: fused-twiddle derivation,
// per-group fused butterfly micro-bodies (used as scalar tails by the
// vector kernels), and the per-level twiddle-span materialization.
//
// These are the pre-existing autovectorized loops of kernel.cpp /
// stockham.cpp / transpose.cpp, moved here verbatim so the scalar table
// IS the historical path: C64FFT_ISA=scalar reproduces the previous
// release bit-for-bit. The only addition is the fuse_log2 schedule knob,
// which selects how many leading butterfly levels collapse into one
// straight-line fused pass (radix-8, radix-4, or none) — a pure loop
// restructuring that performs the same operations on each element in the
// same order, so every setting is bit-identical (asserted by tests).

#include <cassert>
#include <cstdint>

#include "fft/twiddle.hpp"
#include "fft/types.hpp"

// Each translation unit that includes this header instantiates the
// templates below under its own inline namespace (the SIMD TUs define
// C64FFT_KERNEL_ARCH_NS before including). Without this, the linker would
// COMDAT-fold the instantiations across TUs compiled with different ISA
// flags and could install, e.g., AVX2-compiled code behind the scalar
// table's pointers — breaking the "scalar table runs on any host" rule.
#ifndef C64FFT_KERNEL_ARCH_NS
#define C64FFT_KERNEL_ARCH_NS arch_portable
#endif

namespace c64fft::fft::kernels::detail {
inline namespace C64FFT_KERNEL_ARCH_NS {

/// One split-complex butterfly: the canonical operation sequence every
/// kernel in the library — scalar or SIMD, fused or per-level — performs
/// per element pair. a/b index the lower/upper elements.
template <typename T>
inline void butterfly_split(T* __restrict r, T* __restrict i, std::uint64_t a,
                            std::uint64_t b, T wr, T wi) {
  const T tr = wr * r[b] - wi * i[b];
  const T ti = wr * i[b] + wi * r[b];
  r[b] = r[a] - tr;
  i[b] = i[a] - ti;
  r[a] += tr;
  i[a] += ti;
}

/// Derive the 2^fuse - 1 twiddles shared by every 2^fuse-element group of
/// the first `fuse` levels of a chain. Returns false when the chain's
/// twiddle progression is not block-shared or wraps mod 2^L (then the
/// per-level loops must run instead). `twr`/`twi` need 2^fuse - 1 slots,
/// filled level-major exactly as the per-level loops would read them.
template <typename T>
inline bool fused_twiddles(std::uint64_t base, std::uint64_t stride,
                           std::uint32_t first_level, unsigned log2n,
                           const BasicTwiddleTable<T>& twiddles, unsigned fuse,
                           T* twr, T* twi) {
  int k = 0;
  for (std::uint32_t v = 0; v < fuse; ++v) {
    const std::uint64_t half = std::uint64_t{1} << v;
    const std::uint32_t level = first_level + v;
    const std::uint64_t block_mask = (std::uint64_t{1} << level) - 1;
    const unsigned shift = log2n - level - 1;
    const std::uint64_t c = base & block_mask;
    const bool fusable = ((stride << (v + 1)) & block_mask) == 0 &&
                         c + (half - 1) * stride <= block_mask;
    if (!fusable) return false;
    for (std::uint64_t u = 0; u < half; ++u) {
      const cplx_t<T> w = twiddles.at((c + u * stride) << shift);
      twr[k] = w.real();
      twi[k] = w.imag();
      ++k;
    }
  }
  return true;
}

/// Fused radix-8 group: the 12 butterflies of levels v = 0..2 over one
/// 8-element group, in per-level loop order (each element sees the exact
/// operation sequence of the unfused loops). twr/twi hold the 7 fused
/// twiddles from fused_twiddles(..., 3, ...).
template <typename T>
inline void fused8_group(T* __restrict r, T* __restrict i,
                         const T* __restrict twr, const T* __restrict twi) {
  butterfly_split(r, i, 0, 1, twr[0], twi[0]);  // v=0, half=1
  butterfly_split(r, i, 2, 3, twr[0], twi[0]);
  butterfly_split(r, i, 4, 5, twr[0], twi[0]);
  butterfly_split(r, i, 6, 7, twr[0], twi[0]);
  butterfly_split(r, i, 0, 2, twr[1], twi[1]);  // v=1, half=2
  butterfly_split(r, i, 1, 3, twr[2], twi[2]);
  butterfly_split(r, i, 4, 6, twr[1], twi[1]);
  butterfly_split(r, i, 5, 7, twr[2], twi[2]);
  butterfly_split(r, i, 0, 4, twr[3], twi[3]);  // v=2, half=4
  butterfly_split(r, i, 1, 5, twr[4], twi[4]);
  butterfly_split(r, i, 2, 6, twr[5], twi[5]);
  butterfly_split(r, i, 3, 7, twr[6], twi[6]);
}

/// Fused radix-4 group: the 4 butterflies of levels v = 0..1 over one
/// 4-element group. twr/twi hold 3 fused twiddles.
template <typename T>
inline void fused4_group(T* __restrict r, T* __restrict i,
                         const T* __restrict twr, const T* __restrict twi) {
  butterfly_split(r, i, 0, 1, twr[0], twi[0]);  // v=0, half=1
  butterfly_split(r, i, 2, 3, twr[0], twi[0]);
  butterfly_split(r, i, 0, 2, twr[1], twi[1]);  // v=1, half=2
  butterfly_split(r, i, 1, 3, twr[2], twi[2]);
}

/// Attempt the fused first pass: picks the widest fusion allowed by
/// fuse_log2/levels whose twiddle progression qualifies, runs it over the
/// whole chain with `group` applied per 2^f-element block, and returns
/// the level the per-level loops should resume from (0 when nothing
/// fused). `run_groups(f, twr, twi)` is the caller-supplied sweep (SIMD
/// kernels substitute register-blocked group sweeps).
template <typename T, typename RunGroups>
inline std::uint32_t fused_first_pass(T* re, T* im, std::uint64_t len,
                                      std::uint64_t base, std::uint64_t stride,
                                      std::uint32_t first_level,
                                      std::uint32_t levels, unsigned log2n,
                                      const BasicTwiddleTable<T>& twiddles,
                                      unsigned fuse_log2, RunGroups&& run_groups) {
  T twr[7], twi[7];
  if (fuse_log2 >= 3 && levels >= 3 &&
      fused_twiddles<T>(base, stride, first_level, log2n, twiddles, 3, twr, twi)) {
    run_groups(3u, twr, twi);
    return 3;
  }
  if (fuse_log2 >= 2 && levels >= 2 &&
      fused_twiddles<T>(base, stride, first_level, log2n, twiddles, 2, twr, twi)) {
    run_groups(2u, twr, twi);
    return 2;
  }
  (void)len;
  (void)re;
  (void)im;
  return 0;
}

/// Per-level twiddle materialization check of the generic loops: when
/// every block of level v shares its `half` twiddles and the progression
/// never wraps, they can be loaded once into tw_re/tw_im.
template <typename T>
inline bool level_twiddle_span(std::uint64_t base, std::uint64_t stride,
                               std::uint32_t level, std::uint32_t v,
                               unsigned log2n,
                               const BasicTwiddleTable<T>& twiddles,
                               T* __restrict tw_re, T* __restrict tw_im) {
  const std::uint64_t half = std::uint64_t{1} << v;
  const std::uint64_t block_mask = (std::uint64_t{1} << level) - 1;
  const unsigned shift = log2n - level - 1;
  const std::uint64_t c = base & block_mask;
  const bool blocks_share = ((stride << (v + 1)) & block_mask) == 0;
  const bool wrap_free = c + (half - 1) * stride <= block_mask;
  if (!(blocks_share && wrap_free)) return false;
  for (std::uint64_t u = 0; u < half; ++u) {
    const cplx_t<T> w = twiddles.at((c + u * stride) << shift);
    tw_re[u] = w.real();
    tw_im[u] = w.imag();
  }
  return true;
}

/// One butterfly level with a materialized twiddle span (tw_re/tw_im hold
/// the `half` twiddles shared by every block). Indexed form, not
/// per-block pointers: recomputing `re + lo + half` style pointers inside
/// the lo loop defeats GCC's dependence analysis ("no vectype") and the
/// butterflies stay scalar; with the affine indices below plus the
/// __restrict parameters the u loop vectorizes at both element widths.
template <typename T>
inline void span_level(T* __restrict re, T* __restrict im, std::uint64_t len,
                       std::uint64_t half, const T* __restrict tw_re,
                       const T* __restrict tw_im) {
  for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
    for (std::uint64_t u = 0; u < half; ++u) {
      const T tr = tw_re[u] * re[lo + half + u] - tw_im[u] * im[lo + half + u];
      const T ti = tw_re[u] * im[lo + half + u] + tw_im[u] * re[lo + half + u];
      re[lo + half + u] = re[lo + u] - tr;
      im[lo + half + u] = im[lo + u] - ti;
      re[lo + u] += tr;
      im[lo + u] += ti;
    }
  }
}

/// Generic (per-element twiddle index) fallback of one butterfly level —
/// the path taken when the twiddle progression wraps or is not shared.
template <typename T>
inline void generic_level(T* __restrict re, T* __restrict im, std::uint64_t len,
                          std::uint64_t base, std::uint64_t stride,
                          std::uint32_t level, std::uint32_t v, unsigned log2n,
                          const BasicTwiddleTable<T>& twiddles) {
  const std::uint64_t half = std::uint64_t{1} << v;
  const std::uint64_t block_mask = (std::uint64_t{1} << level) - 1;
  const unsigned shift = log2n - level - 1;
  for (std::uint64_t lo = 0; lo < len; lo += 2 * half) {
    for (std::uint64_t q = lo; q < lo + half; ++q) {
      const std::uint64_t g = base + q * stride;
      const cplx_t<T> w = twiddles.at((g & block_mask) << shift);
      const T tr = w.real() * re[q + half] - w.imag() * im[q + half];
      const T ti = w.real() * im[q + half] + w.imag() * re[q + half];
      re[q + half] = re[q] - tr;
      im[q + half] = im[q] - ti;
      re[q] += tr;
      im[q] += ti;
    }
  }
}

// ---- Portable kernel bodies (the scalar dispatch table) ----

template <typename T>
void chain_split_generic(T* __restrict re, T* __restrict im, std::uint64_t len,
                         std::uint64_t base, std::uint64_t stride,
                         std::uint32_t first_level, std::uint32_t levels,
                         unsigned log2n, const BasicTwiddleTable<T>& twiddles,
                         T* __restrict tw_re, T* __restrict tw_im,
                         unsigned fuse_log2) {
  assert(len == (std::uint64_t{1} << levels));

  // Fused first pass: levels with half = 1/2/4 run 1-4 scalar butterflies
  // per block in the per-level loops below — pure loop overhead the
  // vectorizer can't touch. When the leading levels share their twiddles
  // across blocks (every plan chain does: stride = 2^{first_level}), each
  // 2^f-element group becomes one straight-line body the SLP vectorizer
  // packs at the full register width.
  const std::uint32_t v_start = fused_first_pass<T>(
      re, im, len, base, stride, first_level, levels, log2n, twiddles,
      fuse_log2, [&](unsigned f, const T* twr, const T* twi) {
        const std::uint64_t glen = std::uint64_t{1} << f;
        if (f == 3) {
          for (std::uint64_t g = 0; g < len; g += glen)
            fused8_group<T>(re + g, im + g, twr, twi);
        } else {
          for (std::uint64_t g = 0; g < len; g += glen)
            fused4_group<T>(re + g, im + g, twr, twi);
        }
      });

  for (std::uint32_t v = v_start; v < levels; ++v) {
    const std::uint64_t half = std::uint64_t{1} << v;
    const std::uint32_t level = first_level + v;  // global butterfly level L
    if (level_twiddle_span<T>(base, stride, level, v, log2n, twiddles, tw_re,
                              tw_im)) {
      span_level<T>(re, im, len, half, tw_re, tw_im);
    } else {
      generic_level<T>(re, im, len, base, stride, level, v, log2n, twiddles);
    }
  }
}

template <typename T>
void gather_split_generic(const cplx_t<T>* __restrict src, std::uint64_t stride,
                          std::uint64_t count, T* __restrict re,
                          T* __restrict im) {
  for (std::uint64_t q = 0; q < count; ++q) {
    const cplx_t<T> x = src[q * stride];
    re[q] = x.real();
    im[q] = x.imag();
  }
}

template <typename T>
void permute_split_generic(const cplx_t<T>* __restrict src,
                           const std::uint32_t* __restrict idx,
                           std::uint64_t count, T* __restrict re,
                           T* __restrict im) {
  for (std::uint64_t q = 0; q < count; ++q) {
    const cplx_t<T> x = src[idx[q]];
    re[q] = x.real();
    im[q] = x.imag();
  }
}

template <typename T>
void scatter_merge_generic(const T* __restrict re, const T* __restrict im,
                           std::uint64_t count, cplx_t<T>* __restrict dst,
                           std::uint64_t stride) {
  for (std::uint64_t q = 0; q < count; ++q)
    dst[q * stride] = cplx_t<T>(re[q], im[q]);
}

template <typename T>
void stockham_combine_generic(const cplx_t<T>* __restrict src,
                              cplx_t<T>* __restrict dst, std::uint64_t n,
                              std::uint64_t len, const cplx_t<T>* __restrict tw) {
  const std::uint64_t half = n / 2;
  const std::uint64_t groups = half / len;
  for (std::uint64_t g = 0; g < groups; ++g) {
    for (std::uint64_t k = 0; k < len; ++k) {
      const cplx_t<T> a = src[g * len + k];
      const cplx_t<T> b = src[g * len + k + half];
      const cplx_t<T> t = tw[k] * b;
      dst[2 * g * len + k] = a + t;
      dst[2 * g * len + k + len] = a - t;
    }
  }
}

template <typename T>
void transpose_tile_generic(const cplx_t<T>* __restrict src,
                            cplx_t<T>* __restrict dst, std::uint64_t src_stride,
                            std::uint64_t dst_stride, std::uint64_t rows,
                            std::uint64_t cols) {
  for (std::uint64_t r = 0; r < rows; ++r)
    for (std::uint64_t c = 0; c < cols; ++c)
      dst[c * dst_stride + r] = src[r * src_stride + c];
}

}  // inline namespace C64FFT_KERNEL_ARCH_NS
}  // namespace c64fft::fft::kernels::detail
