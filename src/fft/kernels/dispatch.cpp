#include "fft/kernels/dispatch.hpp"

#include <atomic>

#include "fft/kernels/tables.hpp"

namespace c64fft::fft::kernels {

namespace {

// Active level, shared by both precisions so a forced ISA applies to the
// whole process. kUnresolved (-1) means "resolve lazily from the
// environment on first use".
constexpr int kUnresolved = -1;
std::atomic<int> g_active_level{kUnresolved};

util::IsaLevel clamp_to_supported(util::IsaLevel level) {
  return util::isa_supported(level) ? level : util::best_supported_isa();
}

util::IsaLevel resolve_active() {
  int cur = g_active_level.load(std::memory_order_acquire);
  if (cur == kUnresolved) {
    const util::IsaLevel from_env = util::isa_from_env();
    // Benign race: concurrent first users resolve the same environment.
    g_active_level.store(static_cast<int>(from_env), std::memory_order_release);
    return from_env;
  }
  return static_cast<util::IsaLevel>(cur);
}

}  // namespace

template <typename T>
const KernelDispatch<T>& kernels_for(util::IsaLevel level) {
#if defined(C64FFT_KERNELS_AVX512)
  if (level == util::IsaLevel::kAvx512) return detail::avx512_table<T>();
#endif
#if defined(C64FFT_KERNELS_AVX2)
  if (level >= util::IsaLevel::kAvx2) return detail::avx2_table<T>();
#endif
  (void)level;
  return detail::scalar_table<T>();
}

template <typename T>
const KernelDispatch<T>& active_kernels() {
  return kernels_for<T>(resolve_active());
}

util::IsaLevel set_kernel_isa(util::IsaLevel level) {
  const util::IsaLevel installed = clamp_to_supported(level);
  g_active_level.store(static_cast<int>(installed), std::memory_order_release);
  return installed;
}

util::IsaLevel reset_kernel_isa_from_env() {
  const util::IsaLevel level = util::isa_from_env();
  g_active_level.store(static_cast<int>(level), std::memory_order_release);
  return level;
}

util::IsaLevel active_kernel_isa() { return resolve_active(); }

template const KernelDispatch<float>& kernels_for<float>(util::IsaLevel);
template const KernelDispatch<double>& kernels_for<double>(util::IsaLevel);
template const KernelDispatch<float>& active_kernels<float>();
template const KernelDispatch<double>& active_kernels<double>();

}  // namespace c64fft::fft::kernels
