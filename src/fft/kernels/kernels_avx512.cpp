// AVX-512 kernel table, compiled (only this TU) with -mavx512f
// -mavx512dq -mavx512vl -mprefer-vector-width=256 -ffp-contract=off.
//
// Width policy, settled by measurement rather than by the widest
// available register: full 512-bit bodies were written and benchmarked
// for the shared-twiddle butterfly levels (zmm span_level), the stride-1
// complex de/interleave (vpermt2ps/pd), and the strided codelet
// gather/scatter (vpgatherdd/vscatterdps). Under codelet-sized working
// sets on AVX-512 hardware every one of them lost to the 256-bit bodies
// from kernels_x86_common.hpp — the zmm butterfly spans by ~15% on the
// whole transform, the zmm de/interleave and scatter by similar margins.
// Recompiling those 256-bit bodies here with EVEX encodings measured
// another few percent slower than the AVX2 TU's VEX build of the exact
// same source, so this table goes the rest of the way and shares the
// AVX2 table's function pointers for the butterfly and data-movement
// entries (make_avx512_table below). Only the Stockham combine — a long
// contiguous stream with no cross-lane shuffles, where 512-bit genuinely
// wins — keeps a zmm body of its own.
//
// AVX-512 has no vaddsubps, so the combine negates the even lanes of the
// cross product with a sign-mask XOR and adds: x + (-y) is bit-identical
// to x - y in IEEE-754, keeping the scalar operation-order contract.

#define C64FFT_KERNEL_ARCH_NS arch_avx512
#include "fft/kernels/generic_kernels.hpp"
//
#include "fft/kernels/kernels_x86_common.hpp"
#include "fft/kernels/tables.hpp"

namespace c64fft::fft::kernels::detail {

namespace {

// ---- Stockham combine (sign-flip addsub) ----

inline void stockham_combine_avx512_impl(const cplx_t<float>* src,
                                         cplx_t<float>* dst, std::uint64_t n,
                                         std::uint64_t len,
                                         const cplx_t<float>* tw) {
  const std::uint64_t half = n / 2;
  const std::uint64_t groups = half / len;
  const float* s = reinterpret_cast<const float*>(src);
  const float* w = reinterpret_cast<const float*>(tw);
  float* d = reinterpret_cast<float*>(dst);
  // Sign bit on even (real) lanes only: p1 + (p2 ^ flip) computes
  // p1 - p2 there and p1 + p2 on the odd (imag) lanes.
  const __m512 flip =
      _mm512_castsi512_ps(_mm512_set1_epi64(0x0000000080000000LL));
  for (std::uint64_t g = 0; g < groups; ++g) {
    std::uint64_t k = 0;
    for (; k + 8 <= len; k += 8) {
      const __m512 wv = _mm512_loadu_ps(w + 2 * k);
      const __m512 a = _mm512_loadu_ps(s + 2 * (g * len + k));
      const __m512 b = _mm512_loadu_ps(s + 2 * (g * len + k + half));
      const __m512 wr = _mm512_moveldup_ps(wv);
      const __m512 wi = _mm512_movehdup_ps(wv);
      const __m512 bsw = _mm512_permute_ps(b, 0xB1);
      const __m512 t = _mm512_add_ps(
          _mm512_mul_ps(wr, b), _mm512_xor_ps(_mm512_mul_ps(wi, bsw), flip));
      _mm512_storeu_ps(d + 2 * (2 * g * len + k), _mm512_add_ps(a, t));
      _mm512_storeu_ps(d + 2 * (2 * g * len + k + len), _mm512_sub_ps(a, t));
    }
    for (; k < len; ++k) {
      const cplx_t<float> a = src[g * len + k];
      const cplx_t<float> t = tw[k] * src[g * len + k + half];
      dst[2 * g * len + k] = a + t;
      dst[2 * g * len + k + len] = a - t;
    }
  }
}

inline void stockham_combine_avx512_impl(const cplx_t<double>* src,
                                         cplx_t<double>* dst, std::uint64_t n,
                                         std::uint64_t len,
                                         const cplx_t<double>* tw) {
  const std::uint64_t half = n / 2;
  const std::uint64_t groups = half / len;
  const double* s = reinterpret_cast<const double*>(src);
  const double* w = reinterpret_cast<const double*>(tw);
  double* d = reinterpret_cast<double*>(dst);
  const long long kSign = static_cast<long long>(0x8000000000000000ULL);
  const __m512d flip = _mm512_castsi512_pd(
      _mm512_setr_epi64(kSign, 0, kSign, 0, kSign, 0, kSign, 0));
  for (std::uint64_t g = 0; g < groups; ++g) {
    std::uint64_t k = 0;
    for (; k + 4 <= len; k += 4) {
      const __m512d wv = _mm512_loadu_pd(w + 2 * k);
      const __m512d a = _mm512_loadu_pd(s + 2 * (g * len + k));
      const __m512d b = _mm512_loadu_pd(s + 2 * (g * len + k + half));
      const __m512d wr = _mm512_movedup_pd(wv);
      const __m512d wi = _mm512_permute_pd(wv, 0xFF);
      const __m512d bsw = _mm512_permute_pd(b, 0x55);
      const __m512d t = _mm512_add_pd(
          _mm512_mul_pd(wr, b), _mm512_xor_pd(_mm512_mul_pd(wi, bsw), flip));
      _mm512_storeu_pd(d + 2 * (2 * g * len + k), _mm512_add_pd(a, t));
      _mm512_storeu_pd(d + 2 * (2 * g * len + k + len), _mm512_sub_pd(a, t));
    }
    for (; k < len; ++k) {
      const cplx_t<double> a = src[g * len + k];
      const cplx_t<double> t = tw[k] * src[g * len + k + half];
      dst[2 * g * len + k] = a + t;
      dst[2 * g * len + k + len] = a - t;
    }
  }
}

template <typename T>
void stockham_combine_avx512(const cplx_t<T>* src, cplx_t<T>* dst,
                             std::uint64_t n, std::uint64_t len,
                             const cplx_t<T>* tw) {
  stockham_combine_avx512_impl(src, dst, n, len, tw);
}

// Measured-fastest per entry (see the width-policy note at the top):
// everything except the Stockham combine is the AVX2 table's own VEX
// pointer, so the classic codelet path runs identical code bytes under
// either SIMD level and only the Stockham variant differs.
template <typename T>
KernelDispatch<T> make_avx512_table() {
  KernelDispatch<T> t = avx2_table<T>();
  t.isa = util::IsaLevel::kAvx512;
  t.id = "avx512";
  t.stockham_combine = &stockham_combine_avx512<T>;
  return t;
}

}  // namespace

template <>
const KernelDispatch<float>& avx512_table<float>() {
  static const KernelDispatch<float> t = make_avx512_table<float>();
  return t;
}

template <>
const KernelDispatch<double>& avx512_table<double>() {
  static const KernelDispatch<double> t = make_avx512_table<double>();
  return t;
}

}  // namespace c64fft::fft::kernels::detail
