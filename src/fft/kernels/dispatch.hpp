#pragma once
// Runtime-dispatched explicit-SIMD kernel table.
//
// Every data-parallel inner loop of the hot path — the split-complex
// butterfly levels, the fused radix-4/8 first pass, the complex
// de/interleave of the codelet gather/scatter (strided and bit-reversal
// permuted), the Stockham combine pass, and the tiled-transpose copy — is
// reached through one KernelDispatch<T> of function pointers instead of
// being compiled inline. Three tables
// exist per precision:
//
//   scalar  — the portable kernels (the pre-existing autovectorized
//             loops), compiled at the build's baseline ISA. Always valid;
//             this is the oracle every other table is tested against.
//   avx2    — 256-bit AVX2 kernels (kernels_avx2.cpp, compiled with
//             -mavx2 for just that translation unit).
//   avx512  — 512-bit AVX-512 F/DQ/VL kernels (kernels_avx512.cpp).
//
// Which table is *active* is decided once, lazily, from the cpuid probe
// (util::best_supported_isa) narrowed by the C64FFT_ISA environment
// variable, and can be forced programmatically with set_kernel_isa()
// (tests, the tuner, fft_lint --isa). A request the hardware cannot
// execute clamps down, so dereferencing an active table is always safe.
//
// Numerics contract: every SIMD kernel assigns one butterfly (or one
// element) per vector lane and keeps the scalar kernel's per-element
// operation sequence — multiplies, adds and subtracts in the same order,
// no FMA contraction (the SIMD translation units are built with
// -ffp-contract=off). For finite data each table therefore produces
// BIT-IDENTICAL results to the scalar table; the dispatch-matrix test
// asserts agreement within the peak-ULP bounds of util/ulp.hpp so a
// future kernel that does reassociate (e.g. an FMA variant) has a
// documented contract to meet, and the scalar table remains the exact
// bit-comparison oracle for the dispatch plumbing itself.

#include <cstdint>

#include "fft/twiddle.hpp"
#include "fft/types.hpp"
#include "util/cpu_features.hpp"

namespace c64fft::fft::kernels {

/// Caps the fused first pass of chain_split: 3 = radix-8 (the default,
/// and the historical behavior), 2 = radix-4, 0 = never fuse. A pure
/// scheduling knob searched by tools/fft_tune — every setting computes
/// bit-identical results, only the loop structure changes.
inline constexpr unsigned kDefaultFuseLog2 = 3;

template <typename T>
struct KernelDispatch {
  /// The table's ISA level and its stable id ("scalar"/"avx2"/"avx512") —
  /// recorded by fft_lint pipeline reports and the tuner schedule file.
  util::IsaLevel isa;
  const char* id;

  /// Butterfly levels over a gathered split-complex chain; the semantics
  /// of fft::butterfly_chain_split plus the fuse_log2 schedule knob.
  void (*chain_split)(T* re, T* im, std::uint64_t len, std::uint64_t base,
                      std::uint64_t stride, std::uint32_t first_level,
                      std::uint32_t levels, unsigned log2n,
                      const BasicTwiddleTable<T>& twiddles, T* tw_re, T* tw_im,
                      unsigned fuse_log2);

  /// Deinterleave `count` complex elements at src[k * stride] into re/im.
  void (*gather_split)(const cplx_t<T>* src, std::uint64_t stride,
                       std::uint64_t count, T* re, T* im);

  /// Permuted deinterleave: re/im[k] = src[idx[k]] — the bit-reversal
  /// reorder fused with the split-complex gather that opens stage 0
  /// (kernel.cpp run_stage0_bitrev). idx entries must be < 2^30 (the SIMD
  /// tables address scalar components through i32 gather indices).
  void (*permute_split)(const cplx_t<T>* src, const std::uint32_t* idx,
                        std::uint64_t count, T* re, T* im);

  /// Re-interleave re/im into dst[k * stride].
  void (*scatter_merge)(const T* re, const T* im, std::uint64_t count,
                        cplx_t<T>* dst, std::uint64_t stride);

  /// One Stockham DIT combine pass (stockham.cpp): twiddles precomputed
  /// per k into `tw` (len entries), src/dst of n elements,
  ///   dst[2g*len + k]        = src[g*len + k] + tw[k] * src[g*len + k + n/2]
  ///   dst[2g*len + k + len]  = src[g*len + k] - tw[k] * src[g*len + k + n/2]
  void (*stockham_combine)(const cplx_t<T>* src, cplx_t<T>* dst,
                           std::uint64_t n, std::uint64_t len,
                           const cplx_t<T>* tw);

  /// Tiled-transpose micro-kernel: dst[c * dst_stride + r] =
  /// src[r * src_stride + c] for r < rows, c < cols (pointers pre-offset
  /// to the tile origin). dst must not alias src.
  void (*transpose_tile)(const cplx_t<T>* src, cplx_t<T>* dst,
                         std::uint64_t src_stride, std::uint64_t dst_stride,
                         std::uint64_t rows, std::uint64_t cols);
};

/// The table for one ISA level. `level` above hardware support still
/// returns that level's table (the caller asked for it explicitly — the
/// tests force levels through set_kernel_isa, which clamps); levels not
/// compiled into this build (non-x86) alias the scalar table.
template <typename T>
const KernelDispatch<T>& kernels_for(util::IsaLevel level);

/// The process-active table: resolved on first use from
/// util::isa_from_env() (cpuid best, narrowed by C64FFT_ISA), sticky
/// until set_kernel_isa()/reset_kernel_isa_from_env().
template <typename T>
const KernelDispatch<T>& active_kernels();

/// Force the active ISA level (clamped to hardware support; returns the
/// level actually installed). Not thread-safe against in-flight
/// transforms — call at startup, between phases, or from tests/tools.
util::IsaLevel set_kernel_isa(util::IsaLevel level);

/// Re-resolve the active level from C64FFT_ISA + cpuid (the executor's
/// reconfigure() calls this so env changes after warm-up are observable).
util::IsaLevel reset_kernel_isa_from_env();

/// The currently active level (resolving it on first call).
util::IsaLevel active_kernel_isa();

extern template const KernelDispatch<float>& kernels_for<float>(util::IsaLevel);
extern template const KernelDispatch<double>& kernels_for<double>(util::IsaLevel);
extern template const KernelDispatch<float>& active_kernels<float>();
extern template const KernelDispatch<double>& active_kernels<double>();

}  // namespace c64fft::fft::kernels
