#pragma once
// The R-point codelet kernel: gather R strided elements into a local
// buffer (the "scratchpad"), apply the stage's butterfly levels with the
// proper twiddles, scatter back in place. This is the computational body
// of every task in Algorithms 1-3 (FFT_64p_kernel / FFT_last_stage_kernel).
//
// The hot path works on a split-complex tile: the gather deinterleaves
// each chain into separate real/imaginary arrays (64-byte aligned), the
// butterfly levels run as contiguous real-arithmetic loops the compiler
// auto-vectorizes, and the twiddles of a level are precomputed once into a
// span shared by every block of that level (the chain algebra makes the
// twiddle sequence identical across blocks — see butterfly_chain_split).
// The std::complex scalar path is kept as the bit-identical reference the
// tests and micro-benchmarks compare against.
//
// Every kernel exists at both precisions (f64 = cplx, f32 = cplx32); the
// overloads are concrete — not deduced — so call sites that pass a
// std::vector<cplx> where a span is expected keep compiling. The bodies
// are one internal template per kernel, explicitly instantiated in
// kernel.cpp.

#include <cstdint>
#include <span>

#include "fft/kernels/dispatch.hpp"
#include "fft/plan.hpp"
#include "fft/twiddle.hpp"
#include "fft/types.hpp"
#include "util/aligned_buffer.hpp"

namespace c64fft::fft {

/// Per-worker working set of the vectorized kernel: a split-complex data
/// tile of `radix` points plus the per-level twiddle spans (at most
/// radix/2 butterflies per level). Reused across codelets; never shared
/// between workers.
template <typename T>
struct BasicKernelScratch {
  explicit BasicKernelScratch(std::uint64_t radix)
      : re(radix), im(radix), tw_re(radix / 2), tw_im(radix / 2) {}

  util::AlignedBuffer<T> re, im;
  util::AlignedBuffer<T> tw_re, tw_im;
};

using KernelScratch = BasicKernelScratch<double>;
using KernelScratchF = BasicKernelScratch<float>;

/// Execute task `task` of stage `stage` on `data` (the full N-point
/// array) using `scratch` as the local working tile (sized for
/// plan.radix()). Thread-safe across distinct tasks of one stage: tasks
/// touch disjoint elements. Bit-identical to run_codelet_scalar.
///
/// All loops route through the process-active SIMD kernel table
/// (fft/kernels/dispatch.hpp). `fuse_log2` is the tuner's stage-fusion
/// knob (how many leading butterfly levels fuse into one pass — see
/// kernels::kDefaultFuseLog2); every setting is bit-identical.
void run_codelet(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                 std::span<cplx> data, const TwiddleTable& twiddles,
                 KernelScratch& scratch,
                 unsigned fuse_log2 = kernels::kDefaultFuseLog2);
void run_codelet(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                 std::span<cplx32> data, const TwiddleTableF& twiddles,
                 KernelScratchF& scratch,
                 unsigned fuse_log2 = kernels::kDefaultFuseLog2);

/// Fused bit-reversal + stage-0 sweep of one whole transform: gathers all
/// of `data` through the precomputed bit-reversal index table into a
/// transform-length split-complex scratch, applies every stage-0 chain
/// there, and scatters back contiguously. One read and one write pass over
/// the data replace the separate permutation pass plus stage 0's own pass;
/// the four-step sub-sweeps (FftExecutor::run_rows_locked) run their rows
/// through this. Bit-identical to bit-reversing `data` and then running
/// every stage-0 codelet via run_codelet.
///
/// Requirements: `bitrev_idx[g]` is the log2_size()-bit reversal of g for
/// g < plan.size(); `re`/`im` hold plan.size() scalars. (Stage 0 always
/// has chain_stride == 1, so the split scratch holds its chains
/// contiguously — asserted.)
void run_stage0_bitrev(const FftPlan& plan, std::span<cplx> data,
                       const TwiddleTable& twiddles,
                       std::span<const std::uint32_t> bitrev_idx, double* re,
                       double* im, KernelScratch& scratch,
                       unsigned fuse_log2 = kernels::kDefaultFuseLog2);
void run_stage0_bitrev(const FftPlan& plan, std::span<cplx32> data,
                       const TwiddleTableF& twiddles,
                       std::span<const std::uint32_t> bitrev_idx, float* re,
                       float* im, KernelScratchF& scratch,
                       unsigned fuse_log2 = kernels::kDefaultFuseLog2);

/// Reference scalar implementation on std::complex scratch (the original
/// kernel): kept for unit tests and the vectorized-vs-old benchmark.
void run_codelet_scalar(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                        std::span<cplx> data, const TwiddleTable& twiddles,
                        std::span<cplx> scratch);
void run_codelet_scalar(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                        std::span<cplx32> data, const TwiddleTableF& twiddles,
                        std::span<cplx32> scratch);

/// Apply `levels` in-place radix-2 DIT butterfly levels to a chain of
/// `len = 2^levels` points already gathered in `chain`, where the chain's
/// lower element at local q has global index `base + q*stride` and the
/// transform size is 2^log2n. Exposed separately for unit tests and
/// micro-benchmarks (scalar reference path).
void butterfly_chain(std::span<cplx> chain, std::uint64_t base, std::uint64_t stride,
                     std::uint32_t first_level, std::uint32_t levels, unsigned log2n,
                     const TwiddleTable& twiddles);
void butterfly_chain(std::span<cplx32> chain, std::uint64_t base,
                     std::uint64_t stride, std::uint32_t first_level,
                     std::uint32_t levels, unsigned log2n,
                     const TwiddleTableF& twiddles);

/// Split-complex butterfly levels over a gathered chain of `len = 2^levels`
/// points held in `re`/`im`. `tw_re`/`tw_im` must hold at least len/2
/// entries of scratch for the per-level twiddle spans. Same butterfly and
/// twiddle order as butterfly_chain — results are bit-identical.
void butterfly_chain_split(double* re, double* im, std::uint64_t len,
                           std::uint64_t base, std::uint64_t stride,
                           std::uint32_t first_level, std::uint32_t levels,
                           unsigned log2n, const TwiddleTable& twiddles,
                           double* tw_re, double* tw_im);
void butterfly_chain_split(float* re, float* im, std::uint64_t len,
                           std::uint64_t base, std::uint64_t stride,
                           std::uint32_t first_level, std::uint32_t levels,
                           unsigned log2n, const TwiddleTableF& twiddles,
                           float* tw_re, float* tw_im);

}  // namespace c64fft::fft
