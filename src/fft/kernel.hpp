#pragma once
// The R-point codelet kernel: gather R strided elements into a local
// buffer (the "scratchpad"), apply the stage's butterfly levels with the
// proper twiddles, scatter back in place. This is the computational body
// of every task in Algorithms 1-3 (FFT_64p_kernel / FFT_last_stage_kernel).

#include <cstdint>
#include <span>

#include "fft/plan.hpp"
#include "fft/twiddle.hpp"
#include "fft/types.hpp"

namespace c64fft::fft {

/// Execute task `task` of stage `stage` on `data` (the full N-point
/// array) using `scratch` as the local working buffer (at least
/// plan.radix() elements). Thread-safe across distinct tasks of one stage:
/// tasks touch disjoint elements.
void run_codelet(const FftPlan& plan, std::uint32_t stage, std::uint64_t task,
                 std::span<cplx> data, const TwiddleTable& twiddles,
                 std::span<cplx> scratch);

/// Apply `levels` in-place radix-2 DIT butterfly levels to a chain of
/// `len = 2^levels` points already gathered in `chain`, where the chain's
/// lower element at local q has global index `base + q*stride` and the
/// transform size is 2^log2n. Exposed separately for unit tests and
/// micro-benchmarks.
void butterfly_chain(std::span<cplx> chain, std::uint64_t base, std::uint64_t stride,
                     std::uint32_t first_level, std::uint32_t levels, unsigned log2n,
                     const TwiddleTable& twiddles);

}  // namespace c64fft::fft
