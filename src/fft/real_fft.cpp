#include "fft/real_fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fft/executor.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::fft {

namespace {
// Half-size packed transforms go straight through the process-wide
// executor (cached plan/twiddles, persistent team), with the same radix
// clamping the api.cpp wrappers apply.
HostFftOptions clamp_for(std::uint64_t n, HostFftOptions opts) {
  opts.radix_log2 = validate_fft_shape(n, opts.radix_log2, /*clamp_radix=*/true);
  return opts;
}

template <typename T>
std::vector<cplx_t<T>> real_forward_impl(std::span<const T> signal,
                                         const HostFftOptions& opts,
                                         Variant variant) {
  const RealFftShape shape = real_forward_shape(signal.size(), opts.radix_log2);
  const std::uint64_t n = shape.n;
  const std::uint64_t half = shape.half;

  // Pack even samples into the real parts and odd samples into the
  // imaginary parts of an N/2-point complex sequence.
  std::vector<cplx_t<T>> packed(half);
  for (std::uint64_t i = 0; i < half; ++i)
    packed[i] = cplx_t<T>(signal[2 * i], signal[2 * i + 1]);
  if (half >= 2) {
    HostFftOptions sub = opts;
    sub.radix_log2 = shape.radix_log2;
    default_executor().forward(std::span<cplx_t<T>>(packed), sub, variant);
  } else {
    packed[0] = cplx_t<T>(signal[0], signal[1]);
  }

  // Untangle: with E/O the transforms of the even/odd subsequences,
  //   Z[k] = E[k] + i O[k],  Z*[half-k] = E[k] - i O[k]
  //   X[k] = E[k] + w^k O[k],  w = exp(-2 pi i / N).
  std::vector<cplx_t<T>> out(half + 1);
  const double step = -2.0 * std::numbers::pi / static_cast<double>(n);
  const T h = static_cast<T>(0.5);
  for (std::uint64_t k = 0; k <= half; ++k) {
    const auto src = real_unpack_sources(k, half);
    const cplx_t<T> zk = packed[src[0]];
    const cplx_t<T> zm = std::conj(packed[src[1]]);
    const cplx_t<T> even = h * (zk + zm);
    const cplx_t<T> odd = cplx_t<T>(0, -h) * (zk - zm);
    const cplx_t<T> w(static_cast<T>(std::cos(step * static_cast<double>(k))),
                      static_cast<T>(std::sin(step * static_cast<double>(k))));
    out[k] = even + w * odd;
  }
  return out;
}

template <typename T>
std::vector<T> real_inverse_impl(std::span<const cplx_t<T>> half_spectrum,
                                 const HostFftOptions& opts, Variant variant) {
  if (half_spectrum.size() < 2)
    throw std::invalid_argument("real_inverse: need at least 2 bins");
  const std::uint64_t half = half_spectrum.size() - 1;
  const std::uint64_t n = 2 * half;
  if (!util::is_pow2(n))
    throw std::invalid_argument("real_inverse: (bins-1)*2 must be a power of two");

  // Invert the untangling: recover Z[k] = E[k] + i O[k] for k < half.
  std::vector<cplx_t<T>> packed(half);
  const double step = 2.0 * std::numbers::pi / static_cast<double>(n);
  const T h = static_cast<T>(0.5);
  for (std::uint64_t k = 0; k < half; ++k) {
    const cplx_t<T> xk = half_spectrum[k];
    const cplx_t<T> xm = std::conj(half_spectrum[half - k]);
    const cplx_t<T> even = h * (xk + xm);
    const cplx_t<T> odd_w = h * (xk - xm);  // w^k O[k]
    const cplx_t<T> winv(static_cast<T>(std::cos(step * static_cast<double>(k))),
                         static_cast<T>(std::sin(step * static_cast<double>(k))));
    const cplx_t<T> odd = winv * odd_w;
    packed[k] = even + cplx_t<T>(0, 1) * odd;
  }
  if (half >= 2) default_executor().inverse(std::span<cplx_t<T>>(packed),
                                            clamp_for(half, opts), variant);

  std::vector<T> out(n);
  for (std::uint64_t i = 0; i < half; ++i) {
    out[2 * i] = packed[i].real();
    out[2 * i + 1] = packed[i].imag();
  }
  return out;
}

}  // namespace

RealFftShape real_forward_shape(std::uint64_t n, unsigned radix_log2) {
  if (!util::is_pow2(n) || n < 2)
    throw std::invalid_argument("real_forward: length must be a power of two >= 2");
  RealFftShape s;
  s.n = n;
  s.half = n / 2;
  s.radix_log2 =
      s.half >= 2 ? validate_fft_shape(s.half, radix_log2, /*clamp_radix=*/true)
                  : 0;
  return s;
}

std::vector<cplx> real_forward(std::span<const double> signal,
                               const HostFftOptions& opts, Variant variant) {
  return real_forward_impl<double>(signal, opts, variant);
}

std::vector<cplx32> real_forward(std::span<const float> signal,
                                 const HostFftOptions& opts, Variant variant) {
  return real_forward_impl<float>(signal, opts, variant);
}

std::vector<double> real_inverse(std::span<const cplx> half_spectrum,
                                 const HostFftOptions& opts, Variant variant) {
  return real_inverse_impl<double>(half_spectrum, opts, variant);
}

std::vector<float> real_inverse(std::span<const cplx32> half_spectrum,
                                const HostFftOptions& opts, Variant variant) {
  return real_inverse_impl<float>(half_spectrum, opts, variant);
}

}  // namespace c64fft::fft
