#pragma once
// Pure-algebra traffic analytics over an FftPlan: how many element
// accesses each DRAM bank receives per stage, split by data vs twiddle
// stream — the analytical counterpart of the simulator's BankTrace, and
// the numbers behind the paper's "bank 0 is accessed three times more"
// observation (Section II).

#include <array>
#include <cstdint>
#include <vector>

#include "fft/plan.hpp"
#include "fft/twiddle.hpp"

namespace c64fft::fft {

struct StageTraffic {
  std::uint32_t stage = 0;
  /// Element accesses (loads + stores) per bank from the data array.
  std::vector<std::uint64_t> data_accesses;
  /// Element accesses per bank from the twiddle array.
  std::vector<std::uint64_t> twiddle_accesses;

  std::uint64_t bank_total(unsigned b) const {
    return data_accesses.at(b) + twiddle_accesses.at(b);
  }
  /// max-bank / mean-bank ratio of the stage's total accesses.
  double imbalance() const;
};

/// Per-stage per-bank access census of a whole plan under the given
/// twiddle layout and array base addresses (both interleave-aligned by
/// default, as in the paper's setup). `element_bytes` is the runtime size
/// of one complex element (16 for cplx, 8 for cplx32): halving it folds
/// twice as many consecutive elements onto one interleave unit, which
/// genuinely changes which strides collide on a bank — the f32 census of
/// a plan is NOT the f64 census scaled.
class TrafficCensus {
 public:
  TrafficCensus(const FftPlan& plan, TwiddleLayout layout, unsigned banks = 4,
                unsigned interleave_bytes = 64, std::uint64_t data_base = 0,
                std::uint64_t twiddle_base = 0, unsigned element_bytes = 16);

  const std::vector<StageTraffic>& stages() const noexcept { return stages_; }

  /// Whole-run per-bank totals.
  std::vector<std::uint64_t> totals() const;

  /// Whole-run max/mean ratio.
  double total_imbalance() const;

  /// Lower bound on the makespan of ANY schedule, in cycles: the busiest
  /// bank's total occupancy at `bytes_per_cycle` service. This is the
  /// order-invariance bound discussed in DESIGN.md §2.1.
  double schedule_invariant_bound_cycles(double bytes_per_cycle,
                                         unsigned element_bytes = 16) const;

 private:
  std::vector<StageTraffic> stages_;
  unsigned banks_;
};

}  // namespace c64fft::fft
