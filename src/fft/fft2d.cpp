#include "fft/fft2d.hpp"

#include <stdexcept>
#include <vector>

#include "fft/executor.hpp"
#include "fft/transpose.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::fft {

namespace {

// Transform every row as one batched executor submission: the rows share
// the cached plan/twiddles and run as codelets of one phase set on the
// persistent team (the old per-call HostRuntime + serial-kernel-per-row
// scheme is gone). Row-level and intra-row parallelism both land on the
// same work-stealing deques.
template <typename T>
void rows_pass(std::span<cplx_t<T>> data, std::uint64_t rows, std::uint64_t cols,
               unsigned radix_log2, const HostFftOptions& opts, Variant variant) {
  std::vector<std::span<cplx_t<T>>> row_spans;
  row_spans.reserve(rows);
  for (std::uint64_t r = 0; r < rows; ++r)
    row_spans.push_back(data.subspan(r * cols, cols));
  HostFftOptions clamped = opts;
  clamped.radix_log2 = radix_log2;
  default_executor().forward_batch(row_spans, clamped, variant);
}

template <typename T>
void forward_2d_impl(std::span<cplx_t<T>> data, std::uint64_t rows,
                     std::uint64_t cols, const HostFftOptions& opts,
                     Variant variant) {
  const Fft2dShape shape = fft2d_shape(data.size(), rows, cols, opts.radix_log2);
  rows_pass<T>(data, rows, cols, shape.row_radix_log2, opts, variant);
  // Column pass via the cache-blocked transpose kernels (transpose.hpp):
  // square matrices flip in place, rectangular ones bounce through one
  // scratch buffer.
  if (shape.square) {
    transpose_inplace_square(data, rows);
    rows_pass<T>(data, cols, rows, shape.col_radix_log2, opts, variant);
    transpose_inplace_square(data, rows);
    return;
  }
  std::vector<cplx_t<T>> t(data.size());
  transpose_blocked(std::span<const cplx_t<T>>(data.data(), data.size()), t,
                    rows, cols);
  rows_pass<T>(std::span<cplx_t<T>>(t), cols, rows, shape.col_radix_log2, opts,
               variant);
  transpose_blocked(std::span<const cplx_t<T>>(t.data(), t.size()), data, cols,
                    rows);
}

template <typename T>
void inverse_2d_impl(std::span<cplx_t<T>> data, std::uint64_t rows,
                     std::uint64_t cols, const HostFftOptions& opts,
                     Variant variant) {
  (void)fft2d_shape(data.size(), rows, cols, opts.radix_log2);
  for (auto& v : data) v = std::conj(v);
  forward_2d_impl<T>(data, rows, cols, opts, variant);
  const T inv = static_cast<T>(1.0 / static_cast<double>(data.size()));
  for (auto& v : data) v = std::conj(v) * inv;
}

}  // namespace

Fft2dShape fft2d_shape(std::size_t size, std::uint64_t rows, std::uint64_t cols,
                       unsigned radix_log2) {
  if (!util::is_pow2(rows) || !util::is_pow2(cols) || rows < 2 || cols < 2)
    throw std::invalid_argument("fft2d: dimensions must be powers of two >= 2");
  if (size != rows * cols) throw std::invalid_argument("fft2d: size mismatch");
  Fft2dShape s;
  s.rows = rows;
  s.cols = cols;
  s.square = rows == cols;
  s.row_radix_log2 = validate_fft_shape(cols, radix_log2, /*clamp_radix=*/true);
  s.col_radix_log2 = validate_fft_shape(rows, radix_log2, /*clamp_radix=*/true);
  return s;
}

void forward_2d(std::span<cplx> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts, Variant variant) {
  forward_2d_impl<double>(data, rows, cols, opts, variant);
}

void forward_2d(std::span<cplx32> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts, Variant variant) {
  forward_2d_impl<float>(data, rows, cols, opts, variant);
}

void inverse_2d(std::span<cplx> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts, Variant variant) {
  inverse_2d_impl<double>(data, rows, cols, opts, variant);
}

void inverse_2d(std::span<cplx32> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts, Variant variant) {
  inverse_2d_impl<float>(data, rows, cols, opts, variant);
}

}  // namespace c64fft::fft
