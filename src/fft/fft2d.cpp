#include "fft/fft2d.hpp"

#include <stdexcept>
#include <vector>

#include "codelet/host_runtime.hpp"
#include "fft/reference.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::fft {

namespace {

void check_dims(std::span<cplx> data, std::uint64_t rows, std::uint64_t cols) {
  if (!util::is_pow2(rows) || !util::is_pow2(cols) || rows < 2 || cols < 2)
    throw std::invalid_argument("fft2d: dimensions must be powers of two >= 2");
  if (data.size() != rows * cols) throw std::invalid_argument("fft2d: size mismatch");
}

// Transform every row with a pool of per-row codelets. Each codelet runs
// the serial in-place kernel on its own row — parallelism across rows is
// the codelet-level parallelism here.
void rows_pass(std::span<cplx> data, std::uint64_t rows, std::uint64_t cols,
               unsigned workers) {
  codelet::HostRuntime rt(workers);
  std::vector<codelet::CodeletKey> seeds(rows);
  for (std::uint64_t r = 0; r < rows; ++r) seeds[r] = {0, r};
  rt.run_phase(seeds, codelet::PoolPolicy::kFifo,
               [&](codelet::CodeletKey key, unsigned, codelet::Pusher&) {
                 fft_serial_inplace(data.subspan(key.index * cols, cols));
               });
}

void transpose_into(std::span<const cplx> src, std::span<cplx> dst, std::uint64_t rows,
                    std::uint64_t cols) {
  for (std::uint64_t r = 0; r < rows; ++r)
    for (std::uint64_t c = 0; c < cols; ++c) dst[c * rows + r] = src[r * cols + c];
}

}  // namespace

void forward_2d(std::span<cplx> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts, Variant /*variant*/) {
  check_dims(data, rows, cols);
  rows_pass(data, rows, cols, opts.workers);
  std::vector<cplx> t(data.size());
  transpose_into(data, t, rows, cols);
  rows_pass(t, cols, rows, opts.workers);
  transpose_into(t, data, cols, rows);
}

void inverse_2d(std::span<cplx> data, std::uint64_t rows, std::uint64_t cols,
                const HostFftOptions& opts, Variant variant) {
  check_dims(data, rows, cols);
  for (auto& v : data) v = std::conj(v);
  forward_2d(data, rows, cols, opts, variant);
  const double inv = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v = std::conj(v) * inv;
}

}  // namespace c64fft::fft
