#pragma once
// Cached-plan FFT executor: the steady-state entry point of the library.
//
// Every fft_host call used to rebuild the FftPlan, recompute the O(N)
// trig TwiddleTable, and spawn + join a fresh HostRuntime worker team.
// FftExecutor amortizes all three: plans/twiddles/counter templates live
// in a thread-safe LRU PlanCache, and one lazily created persistent
// worker team is reused across transforms (and resized only when a call
// asks for a different team shape). Steady-state forward() therefore does
// zero thread spawns and zero trig recomputation.
//
// forward_batch()/inverse_batch() submit many independent equal-length
// transforms as codelets of ONE runtime phase: CodeletKey::index encodes
// (transform, task) as b * tasks_per_stage + t, each transform gets its
// own DependencyCounters instance stamped from the shared template, and
// all transforms share the plan/twiddles. Thousands of small FFTs then
// saturate the work-stealing deques instead of paying a phase (or, worse,
// a team lifecycle) per call.
//
// Large transforms route through Bailey's four-step decomposition
// (PlanKind::kFourStep): N = n1*n2 splits into an n2-wide batch of
// n1-point column FFTs and an n1-wide batch of n2-point row FFTs, glued
// together by the blocked transpose kernels of transpose.hpp — the middle
// transpose applies the inter-step twiddles on the fly, so no O(N) table
// is ever built for the large size. Each sub-batch runs as a row-serial
// sweep on the persistent team (chunks of rows are the codelets; each
// sub-FFT completes while cache-resident). The routing threshold is
// env-overridable and read at construction only (see the constructor and
// reconfigure()). See DESIGN.md "Four-step large-N path".
//
// Enormous transforms route through the hierarchical multi-level path
// (PlanKind::kHierarchical): the same N = n1*n2 algebra, recursively
// applied until every sub-FFT's working set fits the targeted cache
// level, and executed as ONE tile-granular dependency-counted pipeline
// phase instead of barrier-separated passes — the gather-transpose of one
// tile block overlaps the butterfly sweep of another, and per-block
// counter fan-ins replace every full-array sync point. See DESIGN.md
// "Hierarchical multi-level path".
//
// Precision: every entry point exists for cplx (f64) and cplx32 (f32).
// The two precisions dispatch through one shared member-template body
// (run_t<T> and friends, defined in executor.cpp), share the ONE
// persistent worker team and the plan cache (entries keyed by Precision),
// and keep separate per-worker numeric scratch (NumericState<T>) so a
// precision switch never respawns the team or clobbers the other width's
// buffers. See DESIGN.md "Precision-generic core".
//
// Concurrency: any number of caller threads may use one executor; a mutex
// serializes the runtime phases (HostRuntime::run_phase is single-caller
// by contract), while the PlanCache has its own finer lock. See DESIGN.md
// "Executor & plan cache".

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "codelet/host_runtime.hpp"
#include "fft/kernel.hpp"
#include "fft/plan_cache.hpp"
#include "fft/variants.hpp"

namespace c64fft::fft {

/// Transforms with log2(N) >= this route through the four-step path by
/// default. 2^18 = 4 MiB of cplx data: at that size the classic path's
/// data + O(N) twiddle table are far beyond this host's L2, while both
/// four-step sub-sweeps (512-point row FFTs) stay L1-resident — measured
/// crossover (bench/micro_kernels BM_FourStepFftLargeN vs
/// BM_ClassicFftLargeN): four-step is ~0.95x at 2^17, >= 1.35x at 2^18,
/// and the gap widens with N (~1.9x at 2^20). (The f32 footprint at a
/// given N is half this, moving the true crossover up one octave; the
/// shared default stays size-based for predictability.)
inline constexpr unsigned kDefaultFourStepThresholdLog2 = 18;

/// Transforms with log2(N) >= this route through the hierarchical
/// multi-level path (PlanKind::kHierarchical) by default, taking
/// precedence over the four-step routing. 2^20 = 16 MiB of cplx data: by
/// then the four-step path's five barrier-phased full-array passes are
/// memory-bound end to end, and the hierarchical pipeline — which fuses
/// transpose, twiddle application, and butterfly sweeps into
/// tile-granular dependency-counted tasks on one runtime phase — wins on
/// traffic alone (three streaming passes instead of five, with every
/// butterfly sweep running on a cache-hot block). At the default leaf the
/// split equals the four-step factorization, so routing through this path
/// changes scheduling only: the output stays bit-identical.
inline constexpr unsigned kDefaultHierarchicalThresholdLog2 = 20;

/// Chunk decomposition of the executor's data-parallel utility phases
/// (`chunks` codelets of `per` units each; the last chunk may be short).
/// Exposed so the static pipeline model (analysis::build_*_pipeline)
/// enumerates exactly the codelet grain the executor runs — these are
/// model-builder hooks, not tuning knobs.
struct SweepGrain {
  std::uint64_t chunks = 0;
  std::uint64_t per = 0;
};

/// Grain of the four-step sub-FFT row sweeps (run_rows_locked): row_count
/// plan-sized rows spread over at most workers*4 row-chunk codelets.
SweepGrain four_step_sweep_grain(std::uint64_t row_count, unsigned workers);

/// Grain of the single-transform chunked bit-reversal phase
/// (run_classic_locked): always workers*4 chunk codelets over n elements.
SweepGrain bitrev_sweep_grain(std::uint64_t n, unsigned workers);

/// Tile-block grain of the hierarchical pipeline (run_hierarchical_locked)
/// for one level with split n1 x n2: the gather/column stages sweep the
/// n2 x n1 scratch in `blocks1` blocks of `block_rows1` rows (the last
/// block may be short), and the scatter/row stages sweep the n1 x n2
/// scratch in `blocks2` blocks of `block_rows2` rows. Block rows are
/// multiples of the transpose tile edge so no tile ever straddles two
/// blocks — that alignment is what makes the pipelined per-block tile
/// sweeps bit-identical to the full-matrix barrier passes.
struct HierarchicalGrain {
  std::uint64_t block_rows1 = 0;
  std::uint64_t blocks1 = 0;
  std::uint64_t block_rows2 = 0;
  std::uint64_t blocks2 = 0;
};

/// The grain policy, exported so the static pipeline model
/// (analysis::build_hierarchical_pipeline) enumerates exactly the blocks
/// the executor runs: a block's row panel targets half of `l2_bytes`
/// (leaving the other half for the destination tiles streaming through),
/// capped so at least workers*4 blocks exist to overlap, rounded down to
/// a tile-edge multiple. `tuned_block_rows` (a TunedSchedule's
/// hier_block_rows; 0 = policy default) overrides the panel target.
HierarchicalGrain hierarchical_grain(std::uint64_t n1, std::uint64_t n2,
                                     unsigned workers, unsigned element_bytes,
                                     std::uint64_t l2_bytes,
                                     std::uint64_t tuned_block_rows);

/// The PlanKind run_t routes an n-point transform to. Non-pow2 sizes are
/// decided first, by factorization alone: 7-smooth composites run
/// kMixedRadix, everything else kBluestein (the thresholds never apply —
/// they govern only which pow2 decomposition runs, including Bluestein's
/// internal convolution FFTs). Pow2 sizes fall through to the two
/// log2-thresholds (each 0 disables its path; the hierarchical check wins
/// when both match) — the executor's own routing predicate, shared with
/// fft_lint --plan-kind=auto. The two-argument overload applies the
/// default hierarchical threshold.
PlanKind routed_plan_kind(std::uint64_t n, unsigned threshold_log2);
PlanKind routed_plan_kind(std::uint64_t n, unsigned four_step_threshold_log2,
                          unsigned hierarchical_threshold_log2);

struct ExecutorOptions {
  /// Team shape used by the option-less transform overloads (per-call
  /// HostFftOptions override it, recreating the team when they differ).
  unsigned workers = 4;
  codelet::SchedulerMode mode = codelet::SchedulerMode::kWorkStealing;
  /// Plan-cache capacity in entries (>= 1).
  std::size_t capacity = 16;
  /// forward()/inverse() route transforms with log2(N) >= this value
  /// through the four-step decomposition (PlanKind::kFourStep); 0 disables
  /// the routing so every size runs the classic monolithic plan.
  unsigned four_step_threshold_log2 = kDefaultFourStepThresholdLog2;
  /// Transforms with log2(N) >= this value route through the hierarchical
  /// pipelined path (PlanKind::kHierarchical) instead — checked before the
  /// four-step rule; 0 disables hierarchical routing entirely.
  unsigned hierarchical_threshold_log2 = kDefaultHierarchicalThresholdLog2;
};

/// One consistent snapshot of every C64FFT_* variable the executor reads,
/// taken by read_executor_env(). The constructor and reconfigure() both
/// apply overrides FROM THIS STRUCT ONLY — adding an env knob means adding
/// a field here, so the two code paths cannot silently diverge (the bug
/// this replaces: a knob read at construction that reconfigure() forgot,
/// leaving a live executor half-updated). A field is nullopt when its
/// variable is unset or failed to parse (strict parse: full-string,
/// non-negative decimal for the numeric knobs).
struct ExecutorEnvSnapshot {
  /// C64FFT_WORKERS (>= 1; 0 parses but is rejected at apply time).
  std::optional<unsigned> workers;
  /// C64FFT_FOURSTEP_THRESHOLD_LOG2 (0 disables the four-step path).
  std::optional<unsigned> four_step_threshold_log2;
  /// C64FFT_HIERARCHICAL_THRESHOLD_LOG2 (0 disables the hierarchical
  /// path).
  std::optional<unsigned> hierarchical_threshold_log2;
  /// C64FFT_SCHEDULE — path of a tuned-schedule JSON file.
  std::optional<std::string> schedule_path;
};

/// Read every executor env knob once, into one snapshot (no caching: each
/// call re-reads the environment).
ExecutorEnvSnapshot read_executor_env();

/// Thrown by every transform entry point after close(): the typed
/// "serving is over" error. Distinct from std::invalid_argument shape
/// errors so a serving front-end can map it to a clean shutdown rejection
/// instead of a client bug.
class ExecutorClosedError : public std::runtime_error {
 public:
  ExecutorClosedError() : std::runtime_error("FftExecutor: closed") {}
};

struct ExecutorStats {
  PlanCacheStats cache;
  /// Transforms dispatched one at a time / via batch submissions (both
  /// precisions; the plan cache distinguishes them by key).
  std::uint64_t transforms = 0;
  std::uint64_t batched = 0;
  /// Top-level transforms that took the four-step path (their internal
  /// sub-batches are not double-counted in transforms/batched).
  std::uint64_t four_step = 0;
  /// Top-level transforms that took the hierarchical pipelined path
  /// (recursive inner levels are not double-counted).
  std::uint64_t hierarchical = 0;
  /// Top-level transforms that ran a factorization-driven mixed-radix plan
  /// (every non-pow2 7-smooth size).
  std::uint64_t mixed_radix = 0;
  /// Top-level transforms that ran the Bluestein chirp-z path (prime and
  /// non-7-smooth sizes); the two internal pow2 convolution FFTs are not
  /// double-counted in transforms/four_step/hierarchical.
  std::uint64_t bluestein = 0;
  /// Worker teams this executor created over its lifetime.
  std::uint64_t teams_created = 0;
  /// Plan-shape lookups answered by a loaded tuned schedule (one per
  /// classic dispatch or four-step row sweep whose size/precision/ISA
  /// matched an entry — the observable proof a schedule file is live).
  std::uint64_t schedule_hits = 0;
};

class FftExecutor {
 public:
  /// Environment overrides are applied ON TOP of `opts` here, at
  /// construction time ONLY (they are never re-read per transform):
  ///  * C64FFT_WORKERS                 — default team size (>= 1)
  ///  * C64FFT_FOURSTEP_THRESHOLD_LOG2 — four-step routing threshold
  ///                                     (0 disables the four-step path)
  ///  * C64FFT_HIERARCHICAL_THRESHOLD_LOG2 — hierarchical routing
  ///                                     threshold (0 disables the path)
  ///  * C64FFT_SCHEDULE                — path of a tuned-schedule JSON
  ///                                     file (tools/fft_tune --emit)
  ///                                     loaded into the plan cache
  /// All of them arrive via ONE ExecutorEnvSnapshot (read_executor_env),
  /// the single list of env knobs shared with reconfigure(). A variable
  /// that is unset or fails to parse leaves the corresponding option
  /// untouched (an unreadable or malformed schedule file is likewise
  /// ignored — use load_schedules() for a throwing load). Call
  /// reconfigure() to re-read them after warm-up.
  explicit FftExecutor(const ExecutorOptions& opts = {});
  ~FftExecutor();

  FftExecutor(const FftExecutor&) = delete;
  FftExecutor& operator=(const FftExecutor&) = delete;

  /// In-place transforms. Shape validation matches fft_host: bad sizes
  /// throw std::invalid_argument, the radix is NOT clamped (the api.cpp
  /// wrappers clamp before calling). opts.workers/opts.mode select the
  /// team; the option-less overloads use the ExecutorOptions defaults.
  /// The cplx32 overloads are the f32 path — same plan algebra, f32
  /// twiddles/kernels, separate plan-cache entries.
  void forward(std::span<cplx> data, const HostFftOptions& opts,
               Variant variant = Variant::kFine);
  void forward(std::span<cplx> data, Variant variant = Variant::kFine);
  void forward(std::span<cplx32> data, const HostFftOptions& opts,
               Variant variant = Variant::kFine);
  void forward(std::span<cplx32> data, Variant variant = Variant::kFine);
  void inverse(std::span<cplx> data, const HostFftOptions& opts,
               Variant variant = Variant::kFine);
  void inverse(std::span<cplx> data, Variant variant = Variant::kFine);
  void inverse(std::span<cplx32> data, const HostFftOptions& opts,
               Variant variant = Variant::kFine);
  void inverse(std::span<cplx32> data, Variant variant = Variant::kFine);

  /// Batched transforms: every span is one independent transform; all must
  /// share one length >= 2 (throws std::invalid_argument otherwise). A
  /// pow2 batch runs as one bit-reversal phase plus the variant's stage
  /// phases; composite/prime lengths run their mixed-radix or Bluestein
  /// plan per transform with the plan/twiddle lookups amortized across the
  /// batch. Bit-identical per transform to a loop of single calls.
  void forward_batch(std::span<const std::span<cplx>> batch,
                     const HostFftOptions& opts, Variant variant = Variant::kFine);
  void forward_batch(std::span<const std::span<cplx>> batch,
                     Variant variant = Variant::kFine);
  void forward_batch(std::span<const std::span<cplx32>> batch,
                     const HostFftOptions& opts, Variant variant = Variant::kFine);
  void forward_batch(std::span<const std::span<cplx32>> batch,
                     Variant variant = Variant::kFine);
  void inverse_batch(std::span<const std::span<cplx>> batch,
                     const HostFftOptions& opts, Variant variant = Variant::kFine);
  void inverse_batch(std::span<const std::span<cplx>> batch,
                     Variant variant = Variant::kFine);
  void inverse_batch(std::span<const std::span<cplx32>> batch,
                     const HostFftOptions& opts, Variant variant = Variant::kFine);
  void inverse_batch(std::span<const std::span<cplx32>> batch,
                     Variant variant = Variant::kFine);

  /// Default team size for the option-less overloads; an existing team of
  /// a different size is dropped (and respawned lazily at next use).
  void resize(unsigned workers);

  /// Re-read the environment overrides (see the constructor) and apply
  /// them to a live executor: the four-step threshold changes take effect
  /// on the next transform, and a team whose size no longer matches is
  /// dropped. This is the escape hatch for the first-use-only env
  /// snapshot — processes that mutate C64FFT_* after warming the executor
  /// up must call this for the change to be observed.
  void reconfigure();

  /// Programmatic equivalent of C64FFT_FOURSTEP_THRESHOLD_LOG2
  /// (0 disables four-step routing). Takes effect on the next transform;
  /// cached plans of either kind stay valid.
  void set_four_step_threshold_log2(unsigned log2n);
  unsigned four_step_threshold_log2() const;

  /// Programmatic equivalent of C64FFT_HIERARCHICAL_THRESHOLD_LOG2
  /// (0 disables hierarchical routing). Takes effect on the next
  /// transform; cached plans of any kind stay valid.
  void set_hierarchical_threshold_log2(unsigned log2n);
  unsigned hierarchical_threshold_log2() const;

  /// Install a tuned-schedule set (tools/fft_tune output): subsequent
  /// transforms whose (size, precision, active kernel ISA) match an entry
  /// use its radix_log2 — unless the caller passed a non-default
  /// HostFftOptions::radix_log2, which always wins — and its fuse_log2.
  /// Every schedule computes bit-identical results; only throughput moves.
  void set_schedules(ScheduleSet schedules);

  /// load_file + set_schedules; returns the number of schedules loaded.
  /// Throws (std::runtime_error / std::invalid_argument) on an unreadable
  /// or malformed file — the strict counterpart of the forgiving
  /// C64FFT_SCHEDULE env path.
  std::size_t load_schedules(const std::string& path);

  /// Team size the option-less overloads currently use (after the
  /// constructor/reconfigure() env snapshot).
  unsigned default_workers() const;

  /// Join and destroy the worker team (the plan cache survives). The next
  /// transform lazily spawns a fresh team — intended for tests and for
  /// quiescing the process.
  void shutdown();

  /// Terminal shutdown: like shutdown(), but transforms submitted after
  /// (or concurrently with) the call throw ExecutorClosedError instead of
  /// lazily respawning the team. This is the teardown-ordering fix for the
  /// serving path: before close(), a caller racing shutdown() would
  /// observe the joined team being respawned under it — a transform
  /// "completing" on a team the quiescing thread believed dead. After
  /// close() returns, teams_created never moves again. Irreversible for
  /// this executor instance; calls already executing a phase finish
  /// normally (close() waits for them via the phase mutex).
  void close();
  bool closed() const noexcept;

  /// Install a phase completion hook (codelet::PhaseHook) on the
  /// persistent team — re-installed automatically when the team is
  /// respawned after shutdown()/resize(). The serving layer's metrics use
  /// this to count scheduler phases and codelets without polling. Pass an
  /// empty function to clear.
  void set_phase_hook(codelet::PhaseHook hook);

  void clear_cache();
  ExecutorStats stats() const;

 private:
  /// Per-precision mutable working set: per-worker kernel scratch tiles,
  /// the four-step ping buffer, and the per-worker row-length split
  /// scratch of the fused stage-0 pass. One instance per element width so
  /// alternating precisions never thrash each other's allocations; the
  /// worker team, key/member buffers, and bit-reversal index table stay
  /// shared (they are precision-independent).
  template <typename T>
  struct NumericState {
    std::vector<BasicKernelScratch<T>> scratch;
    std::vector<cplx_t<T>> four_step_scratch;
    std::vector<std::vector<T>> row_split;
    std::uint64_t scratch_radix = 0;
    /// Hierarchical-path gather matrix (the n2 x n1 `s`), one buffer per
    /// recursion depth so an inner level's pipeline never clobbers the
    /// buffer its caller is mid-way through. There is no second (n1 x n2)
    /// matrix: the fused row stage never materializes the twiddled
    /// transpose — each T4 gathers its own block of it into a per-worker
    /// panel (below). The buffers are madvise'd toward huge pages: the
    /// strided side of every gather/scatter tile walks `s` in 16-element
    /// chunks one row apart, and 2 MiB pages cut those walks' TLB misses
    /// by the page-size ratio.
    std::vector<std::vector<cplx_t<T>>> hier_scratch;
    /// Per-worker row panel of the fused T4 stage: block_rows2 contiguous
    /// n2-point rows, twiddle-gathered from `s`, swept in place, then
    /// transposed out to `data`. Sized for the largest (block_rows2 x n2)
    /// seen; L2-resident by the grain policy's construction.
    std::vector<std::vector<cplx_t<T>>> hier_panel;
    /// Mixed-radix ping buffer: the digit-reversal permutation target
    /// (stage 0 reads it back into `data`; later stages run in place).
    std::vector<cplx_t<T>> mixed_scratch;
    /// Bluestein convolution buffer of length M = next_pow2(2n-1). Its
    /// inner pow2 FFTs may themselves route four-step/hierarchical, which
    /// use four_step_scratch / hier_scratch — never this buffer — so the
    /// chirp-modulated signal survives the inner transforms.
    std::vector<cplx_t<T>> bluestein_scratch;
    /// Per-worker whole-transform scratch of the BATCHED composite paths
    /// (one root codelet per transform, each transform serialized by the
    /// worker that claims it — the same phase-amortization shape as the
    /// pow2 batch path, so coalesced composite traffic pays one phase per
    /// batch instead of several per transform). Each worker needs its own
    /// permutation / convolution buffer because transforms run
    /// concurrently.
    std::vector<std::vector<cplx_t<T>>> mixed_batch_scratch;
    std::vector<std::vector<cplx_t<T>>> bluestein_batch_scratch;
  };

  template <typename T>
  NumericState<T>& num() {
    if constexpr (std::is_same_v<T, float>)
      return f32_;
    else
      return f64_;
  }

  codelet::HostRuntime& team(unsigned workers, codelet::SchedulerMode mode);
  template <typename T>
  void ensure_worker_buffers(std::uint64_t radix, unsigned workers);
  template <typename T>
  void run_t(std::span<const std::span<cplx_t<T>>> batch,
             const HostFftOptions& opts, Variant variant, TwiddleDirection dir);
  /// The classic stage/task dispatch (mutex_ held by the caller). Never
  /// scales — inverse normalization lives in the public wrappers only.
  template <typename T>
  void run_classic_locked(const PlanEntry& entry,
                          std::span<const std::span<cplx_t<T>>> batch,
                          const HostFftOptions& opts, Variant variant,
                          TwiddleDirection dir);
  /// One four-step transform (mutex_ held): transpose, n2-row sub-sweep of
  /// n1-point FFTs, fused twiddle-transpose, n1-row sub-sweep of n2-point
  /// FFTs, final transpose. Sub-sweeps go straight to run_rows_locked, so
  /// they never re-enter the routing (no recursion, any threshold).
  template <typename T>
  void run_four_step_locked(const PlanEntry& entry, std::span<cplx_t<T>> data,
                            const HostFftOptions& opts, Variant variant,
                            TwiddleDirection dir);
  /// One hierarchical transform (mutex_ held), recursive over the plan
  /// entry's column chain. The single-level body runs ONE runtime phase of
  /// dependency-counted tile-block tasks — gather-transpose of block i+1
  /// and the twiddle-scatter of block i overlap the butterfly sweep of
  /// block i-1, with a per-scatter-block counter fan-in gating each row
  /// sweep — instead of the four-step path's five barrier-separated
  /// full-array passes. Multi-level entries first recurse per column row,
  /// then pipeline the scatter/row-sweep/writeback tail. Output is
  /// bit-identical to run_four_step_locked for the same (n1, n2) split.
  template <typename T>
  void run_hierarchical_locked(const PlanEntry& entry, std::span<cplx_t<T>> data,
                               const HostFftOptions& opts, TwiddleDirection dir,
                               std::uint64_t tuned_block_rows, unsigned depth);
  /// One mixed-radix transform (mutex_ held): digit-reversal permutation
  /// into the ping buffer as a chunked phase, then one data-parallel phase
  /// per stage over its butterfly groups (butterflies of one stage touch
  /// disjoint indices, so any schedule is race-free and bit-identical).
  /// A one-worker team runs the same butterflies serially in order.
  template <typename T>
  void run_mixed_radix_locked(const PlanEntry& entry, std::span<cplx_t<T>> data,
                              const HostFftOptions& opts, TwiddleDirection dir);
  /// A batch of mixed-radix transforms (mutex_ held): ONE phase with one
  /// codelet per transform, each running the serial whole-transform body
  /// against a per-worker scratch buffer — same butterflies in the same
  /// order as the phased single-transform path, so bit-identical, while a
  /// coalesced batch of B composite transforms pays one phase instead of
  /// B * (stages + 1). One-worker teams loop the serial body directly.
  template <typename T>
  void run_mixed_radix_batch_locked(const PlanEntry& entry,
                                    std::span<const std::span<cplx_t<T>>> batch,
                                    const HostFftOptions& opts,
                                    TwiddleDirection dir);
  /// One Bluestein chirp-z transform (mutex_ held): chirp-modulate into
  /// the M-point convolution buffer, run the shared-cache pow2 forward
  /// plan, pointwise-multiply by the precomputed chirp-filter spectrum,
  /// run the pow2 inverse plan, then demodulate (folding the 1/M) back
  /// into `data`. `conv` is the inner pow2 plan entry (kind = the routed
  /// kind for M); both inner FFTs always run forward+inverse of M
  /// regardless of the outer direction — the direction lives entirely in
  /// the chirp tables.
  template <typename T>
  void run_bluestein_locked(const PlanEntry& entry, const PlanEntry& conv,
                            std::span<cplx_t<T>> data,
                            const HostFftOptions& opts, Variant variant,
                            TwiddleDirection dir);
  /// A batch of Bluestein transforms (mutex_ held): when the inner
  /// convolution is a classic plan, ONE phase with one codelet per
  /// transform — each worker runs the whole chirp-z chain (modulate,
  /// serial M-point forward, pointwise, serial M-point inverse,
  /// demodulate) against its own convolution buffer, using the same
  /// fused-stage-0 serial classic body as the one-worker fast path (bit-
  /// identical to the phased inner transforms by the classic contract).
  /// Falls back to the per-transform path for one-worker teams and for
  /// convolution sizes that route four-step/hierarchical (those pipelines
  /// cannot nest inside a codelet).
  template <typename T>
  void run_bluestein_batch_locked(const PlanEntry& entry,
                                  const PlanEntry& conv,
                                  std::span<const std::span<cplx_t<T>>> batch,
                                  const HostFftOptions& opts, Variant variant,
                                  TwiddleDirection dir);
  /// Four-step sub-FFT sweep (mutex_ held): row_count consecutive
  /// plan-sized rows of `data`, each transformed completely by one worker
  /// while cache-resident; chunks of rows are the codelets of one phase on
  /// the persistent team.
  template <typename T>
  void run_rows_locked(const PlanEntry& entry, std::span<cplx_t<T>> data,
                       std::uint64_t row_count, const HostFftOptions& opts,
                       TwiddleDirection dir);
  /// Tuned fuse_log2 for a plan of size `n` at precision T under the
  /// process-active kernel ISA (mutex_ held — bumps schedule_hits_);
  /// kernels::kDefaultFuseLog2 when no schedule matches.
  template <typename T>
  unsigned tuned_fuse_locked(std::uint64_t n);
  void apply_env_overrides();
  /// Join the team and drop the per-worker buffers (mutex_ held) — the
  /// shared body of shutdown() and close().
  void shutdown_locked();

  /// Cached bit-reversal index table for row length `len` (mutex_ held):
  /// one table per distinct length, so mixed multi-tenant traffic
  /// alternating sizes does not rebuild (and reallocate) the table on
  /// every size switch the way a single-slot cache did.
  const std::vector<std::uint32_t>& bitrev_table_locked(std::uint64_t len,
                                                        unsigned bits);

  ExecutorOptions opts_;
  PlanCache cache_;
  /// Atomic so the routing check in run() needs no lock; 0 = disabled.
  std::atomic<unsigned> four_step_threshold_log2_;
  std::atomic<unsigned> hierarchical_threshold_log2_;
  /// Set by close(); checked (unlocked fast-fail plus the authoritative
  /// re-check under mutex_) by every transform dispatch.
  std::atomic<bool> closed_{false};

  /// Guards the team, the per-worker buffers, and phase execution.
  mutable std::mutex mutex_;
  std::unique_ptr<codelet::HostRuntime> runtime_;
  std::vector<std::vector<std::uint64_t>> members_buf_;
  std::vector<std::vector<codelet::CodeletKey>> keys_buf_;
  NumericState<double> f64_;
  NumericState<float> f32_;
  /// Bit-reversal index tables keyed by row length, shared across
  /// precisions (pure index algebra). Insert-ordered; bounded by evicting
  /// the oldest entry (see bitrev_table_locked).
  std::vector<std::pair<std::uint64_t, std::vector<std::uint32_t>>> bitrev_tables_;
  codelet::PhaseHook phase_hook_;
  std::uint64_t transforms_ = 0;
  std::uint64_t batched_ = 0;
  std::uint64_t four_step_ = 0;
  std::uint64_t hierarchical_ = 0;
  std::uint64_t mixed_radix_ = 0;
  std::uint64_t bluestein_ = 0;
  std::uint64_t teams_created_ = 0;
  std::uint64_t schedule_hits_ = 0;
};

/// The process-wide executor the api.cpp wrappers (and the fft_host
/// compatibility shim) dispatch through.
FftExecutor& default_executor();

}  // namespace c64fft::fft
