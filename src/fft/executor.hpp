#pragma once
// Cached-plan FFT executor: the steady-state entry point of the library.
//
// Every fft_host call used to rebuild the FftPlan, recompute the O(N)
// trig TwiddleTable, and spawn + join a fresh HostRuntime worker team.
// FftExecutor amortizes all three: plans/twiddles/counter templates live
// in a thread-safe LRU PlanCache, and one lazily created persistent
// worker team is reused across transforms (and resized only when a call
// asks for a different team shape). Steady-state forward() therefore does
// zero thread spawns and zero trig recomputation.
//
// forward_batch()/inverse_batch() submit many independent equal-length
// transforms as codelets of ONE runtime phase: CodeletKey::index encodes
// (transform, task) as b * tasks_per_stage + t, each transform gets its
// own DependencyCounters instance stamped from the shared template, and
// all transforms share the plan/twiddles. Thousands of small FFTs then
// saturate the work-stealing deques instead of paying a phase (or, worse,
// a team lifecycle) per call.
//
// Concurrency: any number of caller threads may use one executor; a mutex
// serializes the runtime phases (HostRuntime::run_phase is single-caller
// by contract), while the PlanCache has its own finer lock. See DESIGN.md
// "Executor & plan cache".

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "codelet/host_runtime.hpp"
#include "fft/kernel.hpp"
#include "fft/plan_cache.hpp"
#include "fft/variants.hpp"

namespace c64fft::fft {

struct ExecutorOptions {
  /// Team shape used by the option-less transform overloads (per-call
  /// HostFftOptions override it, recreating the team when they differ).
  unsigned workers = 4;
  codelet::SchedulerMode mode = codelet::SchedulerMode::kWorkStealing;
  /// Plan-cache capacity in entries (>= 1).
  std::size_t capacity = 16;
};

struct ExecutorStats {
  PlanCacheStats cache;
  /// Transforms dispatched one at a time / via batch submissions.
  std::uint64_t transforms = 0;
  std::uint64_t batched = 0;
  /// Worker teams this executor created over its lifetime.
  std::uint64_t teams_created = 0;
};

class FftExecutor {
 public:
  explicit FftExecutor(const ExecutorOptions& opts = {});
  ~FftExecutor();

  FftExecutor(const FftExecutor&) = delete;
  FftExecutor& operator=(const FftExecutor&) = delete;

  /// In-place transforms. Shape validation matches fft_host: bad sizes
  /// throw std::invalid_argument, the radix is NOT clamped (the api.cpp
  /// wrappers clamp before calling). opts.workers/opts.mode select the
  /// team; the option-less overloads use the ExecutorOptions defaults.
  void forward(std::span<cplx> data, const HostFftOptions& opts,
               Variant variant = Variant::kFine);
  void forward(std::span<cplx> data, Variant variant = Variant::kFine);
  void inverse(std::span<cplx> data, const HostFftOptions& opts,
               Variant variant = Variant::kFine);
  void inverse(std::span<cplx> data, Variant variant = Variant::kFine);

  /// Batched transforms: every span is one independent transform; all must
  /// share one power-of-two length (throws std::invalid_argument
  /// otherwise). The whole batch runs as one bit-reversal phase plus the
  /// variant's stage phases, bit-identical per transform to a loop of
  /// single calls.
  void forward_batch(std::span<const std::span<cplx>> batch,
                     const HostFftOptions& opts, Variant variant = Variant::kFine);
  void forward_batch(std::span<const std::span<cplx>> batch,
                     Variant variant = Variant::kFine);
  void inverse_batch(std::span<const std::span<cplx>> batch,
                     const HostFftOptions& opts, Variant variant = Variant::kFine);
  void inverse_batch(std::span<const std::span<cplx>> batch,
                     Variant variant = Variant::kFine);

  /// Default team size for the option-less overloads; an existing team of
  /// a different size is dropped (and respawned lazily at next use).
  void resize(unsigned workers);

  /// Join and destroy the worker team (the plan cache survives). The next
  /// transform lazily spawns a fresh team — intended for tests and for
  /// quiescing the process.
  void shutdown();

  void clear_cache();
  ExecutorStats stats() const;

 private:
  codelet::HostRuntime& team(unsigned workers, codelet::SchedulerMode mode);
  void ensure_worker_buffers(std::uint64_t radix, unsigned workers);
  void run(std::span<const std::span<cplx>> batch, const HostFftOptions& opts,
           Variant variant, TwiddleDirection dir);

  ExecutorOptions opts_;
  PlanCache cache_;

  /// Guards the team, the per-worker buffers, and phase execution.
  mutable std::mutex mutex_;
  std::unique_ptr<codelet::HostRuntime> runtime_;
  std::vector<KernelScratch> scratch_;
  std::vector<std::vector<std::uint64_t>> members_buf_;
  std::vector<std::vector<codelet::CodeletKey>> keys_buf_;
  std::uint64_t scratch_radix_ = 0;
  std::uint64_t transforms_ = 0;
  std::uint64_t batched_ = 0;
  std::uint64_t teams_created_ = 0;
};

/// The process-wide executor the api.cpp wrappers (and the fft_host
/// compatibility shim) dispatch through.
FftExecutor& default_executor();

}  // namespace c64fft::fft
