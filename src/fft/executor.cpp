#include "fft/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <utility>

#include "codelet/dep_counter.hpp"
#include "fft/kernels/dispatch.hpp"
#include "fft/mixed_radix.hpp"
#include "fft/transpose.hpp"
#include "util/bit_ops.hpp"
#include "util/cpu_features.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace c64fft::fft {

namespace {

using codelet::CodeletKey;
using codelet::PoolPolicy;


/// Scale pass of the inverse transform (the only O(N) epilogue left: the
/// input-conjugation pass is gone — the conjugated twiddle table computes
/// conj(FFT(conj(x))) directly — and the output conjugation fused into the
/// table as well, leaving just the 1/N normalization). The factor is
/// computed in double and narrowed once, so the f32 pass multiplies by the
/// correctly rounded 1/N.
template <typename T>
void scale_by(std::span<cplx_t<T>> data, double factor) {
  const T f = static_cast<T>(factor);
  for (cplx_t<T>& v : data) v *= f;
}

/// Strict base-10 parse of an environment variable into an unsigned;
/// returns false (leaving `out` untouched) when unset or malformed.
bool env_unsigned(const char* name, unsigned& out) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || v > 0xFFFFFFFFul) return false;
  out = static_cast<unsigned>(v);
  return true;
}

/// Ask the kernel for transparent huge pages over `bytes` at `p` (no-op
/// off Linux or when THP is disabled system-wide). The hierarchical
/// gather matrix is walked on its strided side in 16-element chunks one
/// 32 KiB+ row apart — with 4 KiB pages every chunk is a fresh dTLB
/// entry, with 2 MiB pages 64 consecutive rows share one. Purely an
/// allocation attribute: the values computed are untouched.
void advise_huge_pages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  const std::uintptr_t page = 4096;
  const std::uintptr_t lo = (reinterpret_cast<std::uintptr_t>(p) + page - 1) &
                            ~(page - 1);
  const std::uintptr_t hi =
      (reinterpret_cast<std::uintptr_t>(p) + bytes) & ~(page - 1);
  if (hi > lo) ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace

SweepGrain four_step_sweep_grain(std::uint64_t row_count, unsigned workers) {
  const std::uint64_t chunks =
      std::min<std::uint64_t>(row_count, std::uint64_t{workers} * 4);
  return {chunks, chunks ? util::ceil_div(row_count, chunks) : 0};
}

SweepGrain bitrev_sweep_grain(std::uint64_t n, unsigned workers) {
  const std::uint64_t chunks = std::uint64_t{workers} * 4;
  return {chunks, util::ceil_div(n, chunks)};
}

PlanKind routed_plan_kind(std::uint64_t n, unsigned threshold_log2) {
  return routed_plan_kind(n, threshold_log2, kDefaultHierarchicalThresholdLog2);
}

PlanKind routed_plan_kind(std::uint64_t n, unsigned four_step_threshold_log2,
                          unsigned hierarchical_threshold_log2) {
  // Non-pow2 routing is factorization-driven and threshold-blind: every
  // 7-smooth composite runs the mixed-radix plan, everything else the
  // Bluestein chirp-z path (whose INTERNAL pow2 convolution FFTs re-enter
  // here with M = next_pow2(2n-1) and do obey the thresholds).
  if (n >= 2 && !util::is_pow2(n))
    return factorize(n).smooth ? PlanKind::kMixedRadix : PlanKind::kBluestein;
  if (n < 4) return PlanKind::kClassic;
  const unsigned log2n = util::ilog2(n);
  if (hierarchical_threshold_log2 != 0 && log2n >= hierarchical_threshold_log2)
    return PlanKind::kHierarchical;
  return (four_step_threshold_log2 != 0 && log2n >= four_step_threshold_log2)
             ? PlanKind::kFourStep
             : PlanKind::kClassic;
}

namespace {

/// Rows per pipelined block of a hierarchical-level sweep over a matrix of
/// `rows` rows of `row_bytes` each (see hierarchical_grain's contract in
/// the header).
std::uint64_t block_rows_for(std::uint64_t rows, std::uint64_t row_bytes,
                             unsigned workers, std::uint64_t l2_bytes,
                             std::uint64_t tuned) {
  if (rows <= kTransposeTile) return rows;
  std::uint64_t br;
  if (tuned != 0) {
    br = tuned;
  } else {
    br = row_bytes != 0 ? l2_bytes / (2 * row_bytes) : rows;
    // Keep at least workers*4 blocks in flight so the pipeline has
    // overlap to exploit even when L2 would hold a bigger panel.
    br = std::min(br, std::max<std::uint64_t>(
                          kTransposeTile, rows / (std::uint64_t{workers} * 4)));
  }
  br = std::max<std::uint64_t>(br / kTransposeTile, 1) * kTransposeTile;
  return std::min(br, rows);
}

}  // namespace

HierarchicalGrain hierarchical_grain(std::uint64_t n1, std::uint64_t n2,
                                     unsigned workers, unsigned element_bytes,
                                     std::uint64_t l2_bytes,
                                     std::uint64_t tuned_block_rows) {
  HierarchicalGrain g;
  // Gather/column stages sweep the n2 x n1 gather matrix (n2 rows of n1
  // points); scatter/row stages sweep its n1 x n2 mirror.
  g.block_rows1 = block_rows_for(n2, n1 * element_bytes, workers, l2_bytes,
                                 tuned_block_rows);
  g.blocks1 = g.block_rows1 != 0 ? util::ceil_div(n2, g.block_rows1) : 0;
  g.block_rows2 = block_rows_for(n1, n2 * element_bytes, workers, l2_bytes,
                                 tuned_block_rows);
  g.blocks2 = g.block_rows2 != 0 ? util::ceil_div(n1, g.block_rows2) : 0;
  return g;
}

ExecutorEnvSnapshot read_executor_env() {
  ExecutorEnvSnapshot snap;
  unsigned v = 0;
  if (env_unsigned("C64FFT_WORKERS", v)) snap.workers = v;
  if (env_unsigned("C64FFT_FOURSTEP_THRESHOLD_LOG2", v))
    snap.four_step_threshold_log2 = v;
  if (env_unsigned("C64FFT_HIERARCHICAL_THRESHOLD_LOG2", v))
    snap.hierarchical_threshold_log2 = v;
  if (const char* path = std::getenv("C64FFT_SCHEDULE");
      path != nullptr && *path != '\0')
    snap.schedule_path = path;
  return snap;
}

void FftExecutor::apply_env_overrides() {
  // Every env knob arrives through ONE snapshot struct, so this body — the
  // shared spine of the constructor and reconfigure() — is the only place
  // overrides are applied: a knob added to ExecutorEnvSnapshot cannot be
  // picked up at construction yet silently missed on reconfigure().
  const ExecutorEnvSnapshot env = read_executor_env();
  if (env.workers && *env.workers > 0) opts_.workers = *env.workers;
  if (env.four_step_threshold_log2)
    opts_.four_step_threshold_log2 = *env.four_step_threshold_log2;
  four_step_threshold_log2_.store(opts_.four_step_threshold_log2,
                                  std::memory_order_relaxed);
  if (env.hierarchical_threshold_log2)
    opts_.hierarchical_threshold_log2 = *env.hierarchical_threshold_log2;
  hierarchical_threshold_log2_.store(opts_.hierarchical_threshold_log2,
                                     std::memory_order_relaxed);
  // Kernel ISA selection is process-wide, not per-executor, but this is
  // the natural re-read point for C64FFT_ISA after a warm-up mutation
  // (same contract as the variables above).
  kernels::reset_kernel_isa_from_env();
  if (env.schedule_path) {
    try {
      cache_.set_schedules(ScheduleSet::load_file(*env.schedule_path));
    } catch (const std::exception&) {
      // Env contract: a value that fails to parse changes nothing.
      // load_schedules() is the strict, throwing alternative.
    }
  }
}

FftExecutor::FftExecutor(const ExecutorOptions& opts)
    : opts_(opts),
      cache_(opts.capacity),
      four_step_threshold_log2_(opts.four_step_threshold_log2),
      hierarchical_threshold_log2_(opts.hierarchical_threshold_log2) {
  if (opts.workers == 0)
    throw std::invalid_argument("FftExecutor: zero workers");
  // Environment snapshot happens here, once; see the header contract and
  // reconfigure().
  apply_env_overrides();
}

FftExecutor::~FftExecutor() = default;

codelet::HostRuntime& FftExecutor::team(unsigned workers,
                                        codelet::SchedulerMode mode) {
  if (workers == 0) throw std::invalid_argument("FftExecutor: zero workers");
  if (!runtime_ || runtime_->workers() != workers || runtime_->mode() != mode) {
    runtime_.reset();  // join the old team before spawning its replacement
    runtime_ = std::make_unique<codelet::HostRuntime>(workers, mode);
    runtime_->set_phase_hook(phase_hook_);
    ++teams_created_;
  }
  return *runtime_;
}

const std::vector<std::uint32_t>& FftExecutor::bitrev_table_locked(
    std::uint64_t len, unsigned bits) {
  for (auto it = bitrev_tables_.begin(); it != bitrev_tables_.end(); ++it) {
    if (it->first == len) {
      // Move-to-back on hit so eviction below is least-recently-used, not
      // insertion-ordered. The hierarchical path fetches two tables
      // back-to-back (sub-FFT lengths n1 then n2) and holds spans into
      // both across one pipeline phase — with insertion-order eviction a
      // full cache could free the n1 table while the n2 fetch inserts.
      // The rotate moves the std::vector shells only; spans into the
      // tables' heap buffers stay valid.
      std::rotate(it, it + 1, bitrev_tables_.end());
      return bitrev_tables_.back().second;
    }
  }
  // Bound the cache: 32 distinct lengths is far beyond any real traffic
  // mix; drop the least-recently-used entry rather than growing without
  // limit.
  if (bitrev_tables_.size() >= 32)
    bitrev_tables_.erase(bitrev_tables_.begin());
  auto& slot = bitrev_tables_.emplace_back(len, std::vector<std::uint32_t>(len));
  for (std::uint64_t i = 0; i < len; ++i)
    slot.second[i] = static_cast<std::uint32_t>(util::bit_reverse(i, bits));
  return slot.second;
}

template <typename T>
void FftExecutor::ensure_worker_buffers(std::uint64_t radix, unsigned workers) {
  if (members_buf_.size() != workers) {
    members_buf_.assign(workers, {});
    keys_buf_.assign(workers, {});
  }
  NumericState<T>& st = num<T>();
  // Oversized tiles are valid for any smaller radix (run_codelet asserts
  // scratch >= plan.radix()), so keep the largest set seen: mixed traffic
  // alternating a radix-16 with a radix-64 shape must not reallocate the
  // scratch on every switch.
  if (st.scratch_radix >= radix && st.scratch.size() == workers) return;
  const std::uint64_t alloc_radix = std::max(radix, st.scratch_radix);
  st.scratch.clear();
  st.scratch.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) st.scratch.emplace_back(alloc_radix);
  st.scratch_radix = alloc_radix;
}

template <typename T>
void FftExecutor::run_t(std::span<const std::span<cplx_t<T>>> batch,
                        const HostFftOptions& opts, Variant variant,
                        TwiddleDirection dir) {
  if (batch.empty()) return;
  // Unlocked fast-fail; the authoritative re-check happens under mutex_
  // below (close() flips the flag while holding the same mutex, so a
  // caller that passes that check runs on a team close() has not joined).
  if (closed_.load(std::memory_order_acquire)) throw ExecutorClosedError();
  const std::uint64_t n = batch.front().size();
  for (const std::span<cplx_t<T>>& t : batch)
    if (t.size() != n)
      throw std::invalid_argument(
          "FftExecutor: batch transforms must share one length");

  // Shape errors surface before any cache/team work; no clamping here —
  // this is the fft_host contract (api.cpp clamps on its own behalf).
  validate_fft_shape(n, opts.radix_log2, /*clamp_radix=*/false);

  // Non-pow2 sizes dispatch on factorization alone, before the tuned
  // schedules and size thresholds below (those steer the pow2 plans only).
  // Mixed-radix and Bluestein keys pin radix_log2 = 1 and the linear
  // layout: neither knob shapes these plans, and canonical values keep one
  // cache entry per (n, precision) no matter what options callers pass.
  if (!util::is_pow2(n)) {
    const Factorization f = factorize(n);
    if (f.smooth) {
      std::shared_ptr<const PlanEntry> entry = cache_.acquire(PlanKey{
          n, /*radix_log2=*/1, TwiddleLayout::kLinear, PlanKind::kMixedRadix,
          precision_of<T>, /*hier_leaf_log2=*/0, factorization_digest(f)});
      std::lock_guard lock(mutex_);
      if (closed_.load(std::memory_order_relaxed)) throw ExecutorClosedError();
      if (batch.size() > 1)
        run_mixed_radix_batch_locked<T>(*entry, batch, opts, dir);
      else
        run_mixed_radix_locked<T>(*entry, batch.front(), opts, dir);
      mixed_radix_ += batch.size();
      transforms_ += (batch.size() == 1) ? 1 : 0;
      batched_ += (batch.size() == 1) ? 0 : batch.size();
      return;
    }
    // Bluestein: the chirp entry plus the inner pow2 convolution plan,
    // both from the shared cache — the inner entry IS the entry a direct
    // M-point transform builds (same key), so a mixed traffic stream of
    // prime and pow2 sizes shares plans instead of duplicating them.
    const std::uint64_t m = bluestein_fft_size(n);
    std::shared_ptr<const PlanEntry> entry = cache_.acquire(PlanKey{
        n, /*radix_log2=*/1, TwiddleLayout::kLinear, PlanKind::kBluestein,
        precision_of<T>});
    const PlanKind conv_kind = routed_plan_kind(
        m, four_step_threshold_log2_.load(std::memory_order_relaxed),
        hierarchical_threshold_log2_.load(std::memory_order_relaxed));
    unsigned conv_radix = validate_fft_shape(m, opts.radix_log2, true);
    unsigned conv_leaf = 0;
    if (const std::optional<TunedSchedule> tuned = cache_.tuned_for(
            m, precision_of<T>, kernels::active_kernel_isa())) {
      if (opts.radix_log2 == HostFftOptions{}.radix_log2)
        conv_radix = validate_fft_shape(m, tuned->radix_log2, true);
      conv_leaf = tuned->hier_leaf_log2;
    }
    if (conv_kind == PlanKind::kHierarchical && conv_leaf == 0)
      conv_leaf = hierarchical_leaf_log2(util::cache_info().l2_bytes,
                                         sizeof(cplx_t<T>));
    if (conv_kind != PlanKind::kHierarchical) conv_leaf = 0;
    std::shared_ptr<const PlanEntry> conv = cache_.acquire(PlanKey{
        m, conv_radix, opts.layout, conv_kind, precision_of<T>, conv_leaf});
    std::lock_guard lock(mutex_);
    if (closed_.load(std::memory_order_relaxed)) throw ExecutorClosedError();
    if (batch.size() > 1)
      run_bluestein_batch_locked<T>(*entry, *conv, batch, opts, variant, dir);
    else
      run_bluestein_locked<T>(*entry, *conv, batch.front(), opts, variant, dir);
    bluestein_ += batch.size();
    transforms_ += (batch.size() == 1) ? 1 : 0;
    batched_ += (batch.size() == 1) ? 0 : batch.size();
    return;
  }

  // A loaded tuned schedule steers the plan radix — but only when the
  // caller left HostFftOptions::radix_log2 at its default: an explicit
  // per-call radix always wins over the tuner. (The matching fuse_log2 is
  // looked up again by the locked dispatch bodies, which see the actual
  // plan size — for four-step that is the sub-FFT length, not N.)
  unsigned radix_log2 = opts.radix_log2;
  if (radix_log2 == HostFftOptions{}.radix_log2) {
    if (const std::optional<TunedSchedule> tuned = cache_.tuned_for(
            n, precision_of<T>, kernels::active_kernel_isa()))
      radix_log2 = validate_fft_shape(n, tuned->radix_log2, /*clamp_radix=*/true);
  }

  // Large-N routing: the hierarchical check outranks four-step (it is the
  // same decomposition with strictly better scheduling). Both paths' inner
  // sweeps and recursion levels bypass this routing by construction.
  const PlanKind kind = routed_plan_kind(
      n, four_step_threshold_log2_.load(std::memory_order_relaxed),
      hierarchical_threshold_log2_.load(std::memory_order_relaxed));
  if (kind == PlanKind::kHierarchical) {
    // A tuned schedule steers both hierarchical knobs: the leaf is part of
    // the plan key (it fixes the level tree), the block rows are a pure
    // runtime grain threaded to the pipeline.
    unsigned leaf = 0;
    std::uint64_t block_rows = 0;
    if (const std::optional<TunedSchedule> tuned = cache_.tuned_for(
            n, precision_of<T>, kernels::active_kernel_isa())) {
      leaf = tuned->hier_leaf_log2;
      block_rows = tuned->hier_block_rows;
    }
    if (leaf == 0)
      leaf = hierarchical_leaf_log2(util::cache_info().l2_bytes,
                                    sizeof(cplx_t<T>));
    std::shared_ptr<const PlanEntry> entry = cache_.acquire(
        PlanKey{n, radix_log2, opts.layout, PlanKind::kHierarchical,
                precision_of<T>, leaf});
    std::lock_guard lock(mutex_);
    if (closed_.load(std::memory_order_relaxed)) throw ExecutorClosedError();
    for (const std::span<cplx_t<T>>& t : batch)
      run_hierarchical_locked<T>(*entry, t, opts, dir, block_rows, /*depth=*/0);
    hierarchical_ += batch.size();
    transforms_ += (batch.size() == 1) ? 1 : 0;
    batched_ += (batch.size() == 1) ? 0 : batch.size();
    return;
  }
  if (kind == PlanKind::kFourStep) {
    std::shared_ptr<const PlanEntry> entry = cache_.acquire(
        PlanKey{n, radix_log2, opts.layout, PlanKind::kFourStep,
                precision_of<T>});
    std::lock_guard lock(mutex_);
    if (closed_.load(std::memory_order_relaxed)) throw ExecutorClosedError();
    for (const std::span<cplx_t<T>>& t : batch)
      run_four_step_locked<T>(*entry, t, opts, variant, dir);
    four_step_ += batch.size();
    transforms_ += (batch.size() == 1) ? 1 : 0;
    batched_ += (batch.size() == 1) ? 0 : batch.size();
    return;
  }

  std::shared_ptr<const PlanEntry> entry = cache_.acquire(
      PlanKey{n, radix_log2, opts.layout, PlanKind::kClassic,
              precision_of<T>});
  std::lock_guard lock(mutex_);
  if (closed_.load(std::memory_order_relaxed)) throw ExecutorClosedError();
  run_classic_locked<T>(*entry, batch, opts, variant, dir);
  transforms_ += (batch.size() == 1) ? 1 : 0;
  batched_ += (batch.size() == 1) ? 0 : batch.size();
}

template <typename T>
void FftExecutor::run_classic_locked(const PlanEntry& entry,
                                     std::span<const std::span<cplx_t<T>>> batch,
                                     const HostFftOptions& opts,
                                     Variant variant, TwiddleDirection dir) {
  const std::uint64_t n = batch.front().size();
  const FftPlan& plan = entry.plan();
  const BasicTwiddleTable<T>& twiddles = entry.twiddles_for<T>(dir);
  const std::uint64_t tasks = plan.tasks_per_stage();
  const std::uint64_t b_count = batch.size();
  const std::uint32_t stages = plan.stage_count();

  codelet::HostRuntime& rt = team(opts.workers, opts.mode);
  ensure_worker_buffers<T>(plan.radix(), rt.workers());
  std::vector<BasicKernelScratch<T>>& scratch = num<T>().scratch;

  const unsigned bits = plan.log2_size();
  const unsigned fuse_log2 = tuned_fuse_locked<T>(n);

  // Serial fast path: on a one-worker team there is no scheduling to
  // exercise — every variant degenerates to in-order execution — so
  // instead of the swap-based permutation phase plus a stage-0
  // gather/scatter round-trip per codelet, each transform runs the same
  // fused split-complex stage 0 as the four-step row sweep (cached
  // bit-reversal index table feeding the dispatched permuted gather),
  // then the remaining stages in order. Same butterflies in the same
  // order, so the output is bit-identical to the phased path under every
  // variant. Whole batches take this path too (not just b_count == 1):
  // a coalesced batch of B small transforms on a one-worker team then
  // pays the plan/twiddle/tuned-schedule lookups and the executor lock
  // once for all B, with per-transform work identical to B single calls —
  // the per-request dispatch overhead is what request coalescing exists
  // to amortize.
  if (rt.workers() == 1) {
    const std::vector<std::uint32_t>& brev_table = bitrev_table_locked(n, bits);
    NumericState<T>& st = num<T>();
    if (st.row_split.empty()) st.row_split.resize(1);
    if (st.row_split[0].size() < 2 * n) st.row_split[0].resize(2 * n);
    T* const re = st.row_split[0].data();
    T* const im = re + n;
    for (const std::span<cplx_t<T>>& data : batch) {
      run_stage0_bitrev(plan, data, twiddles,
                        std::span<const std::uint32_t>(brev_table), re, im,
                        scratch[0], fuse_log2);
      for (std::uint32_t s = 1; s < stages; ++s)
        for (std::uint64_t t = 0; t < tasks; ++t)
          run_codelet(plan, s, t, data, twiddles, scratch[0], fuse_log2);
    }
    return;
  }

  // Single transforms bit-reverse as a chunked phase on the persistent
  // team (the old free function spawned its own team per call); batches
  // instead fold the permutation into per-transform root codelets below —
  // one phase and one injection-queue pop per transform instead of one
  // per stage-0 codelet, and each transform's butterflies start cache-warm
  // right after its own permutation.
  if (b_count == 1) {
    const SweepGrain grain = bitrev_sweep_grain(n, rt.workers());
    const std::uint64_t chunk = grain.per;
    std::vector<CodeletKey> seeds;
    seeds.reserve(grain.chunks);
    for (std::uint64_t c = 0; c < grain.chunks; ++c) seeds.push_back({0, c});
    rt.run_phase(seeds, PoolPolicy::kFifo,
                 [&](CodeletKey key, unsigned, codelet::Pusher&) {
                   std::span<cplx_t<T>> data = batch[0];
                   const std::uint64_t end = std::min(n, (key.index + 1) * chunk);
                   for (std::uint64_t i = key.index * chunk; i < end; ++i) {
                     const std::uint64_t j = util::bit_reverse(i, bits);
                     if (i < j) std::swap(data[i], data[j]);
                   }
                 });
  }

  // Batch seeding: a root codelet per transform (sentinel stage) that
  // optionally bit-reverses its whole transform, then releases that
  // transform's `order`-ordered codelets of `target_stage` onto the
  // executing worker's own lock-free deque.
  constexpr std::uint32_t kRootStage = 0xFFFFFFFFu;
  std::vector<CodeletKey> root_seeds;
  if (b_count > 1) {
    root_seeds.reserve(b_count);
    for (std::uint64_t b = 0; b < b_count; ++b) root_seeds.push_back({kRootStage, b});
  }
  auto rooted = [&](const std::vector<std::uint64_t>& order,
                    std::uint32_t target_stage, bool do_bitrev,
                    codelet::CodeletBody inner) -> codelet::CodeletBody {
    return [&, target_stage, do_bitrev, inner](CodeletKey key, unsigned worker,
                                               codelet::Pusher& pusher) {
      if (key.stage != kRootStage) {
        inner(key, worker, pusher);
        return;
      }
      const std::uint64_t b = key.index;
      if (do_bitrev) {
        std::span<cplx_t<T>> data = batch[b];
        for (std::uint64_t i = 0; i < n; ++i) {
          const std::uint64_t j = util::bit_reverse(i, bits);
          if (i < j) std::swap(data[i], data[j]);
        }
      }
      std::vector<CodeletKey>& keys = keys_buf_[worker];
      keys.clear();
      keys.reserve(order.size());
      for (std::uint64_t t : order) keys.push_back({target_stage, b * tasks + t});
      pusher.push_batch(keys);
    };
  };

  std::vector<std::uint64_t> natural(tasks);
  for (std::uint64_t t = 0; t < tasks; ++t) natural[t] = t;

  if (variant == Variant::kCoarse) {
    // Algorithm 1 over the whole batch: one phase per stage; every
    // transform's stage-s codelets run inside the same phase.
    const codelet::CodeletBody exec = [&](CodeletKey key, unsigned worker,
                                          codelet::Pusher&) {
      run_codelet(plan, key.stage, key.index % tasks, batch[key.index / tasks],
                  twiddles, scratch[worker], fuse_log2);
    };
    std::uint32_t first = 0;
    if (b_count > 1) {
      rt.run_phase(root_seeds, PoolPolicy::kFifo, rooted(natural, 0, true, exec));
      first = 1;
    }
    std::vector<CodeletKey> seeds(tasks * b_count);
    for (std::uint32_t s = first; s < stages; ++s) {
      for (std::uint64_t i = 0; i < seeds.size(); ++i) seeds[i] = {s, i};
      rt.run_phase(seeds, PoolPolicy::kFifo, exec);
    }
    return;
  }

  // Fine/guided: one DependencyCounters instance per transform, all
  // stamped from the cached template.
  std::vector<codelet::DependencyCounters> counters;
  counters.reserve(b_count);
  for (std::uint64_t b = 0; b < b_count; ++b)
    counters.push_back(entry.make_counters());

  // Kernel + readiness propagation over the batch-encoded key space;
  // mirrors the single-transform fine body of the paper's Alg. 2/3.
  auto fine_body = [&](std::uint32_t last_propagated) -> codelet::CodeletBody {
    return [&, last_propagated](CodeletKey key, unsigned worker,
                                codelet::Pusher& pusher) {
      const std::uint64_t b = key.index / tasks;
      const std::uint64_t t = key.index % tasks;
      run_codelet(plan, key.stage, t, batch[b], twiddles, scratch[worker],
                  fuse_log2);
      if (key.stage >= last_propagated || key.stage + 1 >= stages) return;
      const std::uint64_t g = plan.child_group(key.stage, t);
      if (counters[b].arrive(key.stage + 1, g)) {
        std::vector<std::uint64_t>& members = members_buf_[worker];
        plan.group_members(key.stage + 1, g, members);
        std::vector<CodeletKey>& keys = keys_buf_[worker];
        keys.clear();
        keys.reserve(members.size());
        for (std::uint64_t m : members)
          keys.push_back({key.stage + 1, b * tasks + m});
        pusher.push_batch(keys);
      }
    };
  };

  FineOrdering ordering = opts.ordering;
  bool fine = variant == Variant::kFine;
  if (variant == Variant::kGuided && stages < 3) {
    // Degenerate guided input: Alg. 3 reduces to fine with its LIFO pool.
    fine = true;
    ordering = FineOrdering{PoolPolicy::kLifo, SeedOrder::kNatural, 1};
  }

  if (fine) {
    const std::vector<std::uint64_t> order =
        make_seed_order(ordering.order, tasks, ordering.seed);
    if (b_count > 1) {
      rt.run_phase(root_seeds, ordering.policy,
                   rooted(order, 0, true, fine_body(stages - 1)));
    } else {
      std::vector<CodeletKey> seeds;
      seeds.reserve(order.size());
      for (std::uint64_t t : order) seeds.push_back({0, t});
      rt.run_phase(seeds, ordering.policy, fine_body(stages - 1));
    }
  } else {
    // Algorithm 3, phase 1: fine-grain over the early stages; the last
    // early stage does not propagate readiness.
    const std::uint32_t last_early = stages - 3;
    if (b_count > 1) {
      rt.run_phase(root_seeds, PoolPolicy::kLifo,
                   rooted(natural, 0, true, fine_body(last_early)));
    } else {
      std::vector<CodeletKey> seeds;
      seeds.reserve(tasks);
      for (std::uint64_t i = 0; i < tasks; ++i) seeds.push_back({0, i});
      rt.run_phase(seeds, PoolPolicy::kLifo, fine_body(last_early));
    }
    // Phase 2: per transform, the simulator's column-batched seed order of
    // the penultimate stage.
    const std::uint32_t penultimate = stages - 2;
    const std::vector<std::uint64_t> order = guided_phase2_order(plan);
    if (order.size() != tasks)
      throw std::logic_error("guided: phase-2 seeding does not cover the stage");
    if (b_count > 1) {
      rt.run_phase(root_seeds, PoolPolicy::kLifo,
                   rooted(order, penultimate, false, fine_body(stages - 1)));
    } else {
      std::vector<CodeletKey> phase2;
      phase2.reserve(tasks);
      for (std::uint64_t p : order) phase2.push_back({penultimate, p});
      rt.run_phase(phase2, PoolPolicy::kLifo, fine_body(stages - 1));
    }
  }
}

template <typename T>
void FftExecutor::run_mixed_radix_locked(const PlanEntry& entry,
                                         std::span<cplx_t<T>> data,
                                         const HostFftOptions& opts,
                                         TwiddleDirection dir) {
  const MixedRadixPlan& plan = entry.mixed_plan();
  const std::uint64_t n = plan.size();
  const std::span<const cplx_t<T>> tw = entry.mixed_twiddles_for<T>(dir);

  codelet::HostRuntime& rt = team(opts.workers, opts.mode);
  NumericState<T>& st = num<T>();
  if (st.mixed_scratch.size() < n) st.mixed_scratch.resize(n);

  // One-worker teams skip the phase machinery entirely: same permutation,
  // same butterflies in the same order, so the output is bit-identical to
  // the phased path (stage butterflies are disjoint — any schedule of one
  // stage computes the same values).
  if (rt.workers() == 1) {
    mixed_radix_serial<T>(plan, tw, data, st.mixed_scratch, dir);
    return;
  }

  const std::span<cplx_t<T>> scratch(st.mixed_scratch.data(), n);
  const std::span<const cplx_t<T>> cdata(data.data(), n);
  const std::span<const cplx_t<T>> cscratch(scratch.data(), n);

  // Digit-reversal gather as one chunked phase: scratch[p] = data[perm[p]].
  {
    const SweepGrain grain = bitrev_sweep_grain(n, rt.workers());
    const std::uint64_t per = grain.per;
    std::vector<CodeletKey> seeds;
    seeds.reserve(grain.chunks);
    for (std::uint64_t c = 0; c < grain.chunks; ++c) seeds.push_back({0, c});
    rt.run_phase(seeds, PoolPolicy::kFifo,
                 [&](CodeletKey key, unsigned, codelet::Pusher&) {
                   const std::uint64_t b = key.index * per;
                   mixed_radix_permute<T>(plan, cdata, scratch, b,
                                          std::min(n, b + per));
                 });
  }

  // One data-parallel phase per stage over its n/r butterflies. Stage 0
  // reads the permuted scratch and writes data (fully disjoint buffers);
  // later stages run in place on data.
  const std::uint32_t stages = plan.stage_count();
  for (std::uint32_t s = 0; s < stages; ++s) {
    const MixedRadixStage& stage = plan.stages()[s];
    const std::uint64_t g_count = n / stage.radix;
    const std::uint64_t chunks =
        std::min<std::uint64_t>(g_count, std::uint64_t{rt.workers()} * 4);
    const std::uint64_t per = util::ceil_div(g_count, chunks);
    std::vector<CodeletKey> seeds;
    seeds.reserve(chunks);
    for (std::uint64_t c = 0; c < chunks; ++c) seeds.push_back({s, c});
    const std::span<const cplx_t<T>> src = (s == 0) ? cscratch : cdata;
    rt.run_phase(seeds, PoolPolicy::kFifo,
                 [&](CodeletKey key, unsigned, codelet::Pusher&) {
                   const std::uint64_t b = key.index * per;
                   run_mixed_radix_stage<T>(plan, s, tw, src, data, b,
                                            std::min(g_count, b + per), dir);
                 });
  }
}

template <typename T>
void FftExecutor::run_mixed_radix_batch_locked(
    const PlanEntry& entry, std::span<const std::span<cplx_t<T>>> batch,
    const HostFftOptions& opts, TwiddleDirection dir) {
  const MixedRadixPlan& plan = entry.mixed_plan();
  const std::span<const cplx_t<T>> tw = entry.mixed_twiddles_for<T>(dir);

  codelet::HostRuntime& rt = team(opts.workers, opts.mode);
  NumericState<T>& st = num<T>();

  // One-worker teams have no phases to amortize: loop the serial body
  // directly, paying the plan/twiddle lookups and the lock once for the
  // whole batch (the same degenerate shape as the classic batch path).
  if (rt.workers() == 1) {
    for (const std::span<cplx_t<T>>& data : batch)
      mixed_radix_serial<T>(plan, tw, data, st.mixed_scratch, dir);
    return;
  }

  // One phase, one whole-transform codelet per transform. Each codelet
  // runs the same permutation and the same stage butterflies in the same
  // order as the serial body — bit-identical to a loop of single calls —
  // against its claiming worker's own scratch, so B coalesced transforms
  // pay one phase instead of B * (stages + 1).
  if (st.mixed_batch_scratch.size() < rt.workers())
    st.mixed_batch_scratch.resize(rt.workers());
  std::vector<CodeletKey> seeds;
  seeds.reserve(batch.size());
  for (std::uint64_t b = 0; b < batch.size(); ++b) seeds.push_back({0, b});
  rt.run_phase(seeds, PoolPolicy::kFifo,
               [&](CodeletKey key, unsigned worker, codelet::Pusher&) {
                 mixed_radix_serial<T>(plan, tw, batch[key.index],
                                       st.mixed_batch_scratch[worker], dir);
               });
}

template <typename T>
void FftExecutor::run_bluestein_locked(const PlanEntry& entry,
                                       const PlanEntry& conv,
                                       std::span<cplx_t<T>> data,
                                       const HostFftOptions& opts,
                                       Variant variant, TwiddleDirection dir) {
  // Chirp-z: X[k] = c[k] * (1/M) * IFFT_M( FFT_M(x .* c) .* B )[k] with
  // c the length-n chirp and B the precomputed FFT of the chirp filter,
  // both direction-resolved tables of `entry`. The two M-point transforms
  // are always one forward plus one inverse regardless of the outer
  // direction. The O(M) modulate/pointwise passes run serially: they are
  // noise against the inner FFTs they bracket.
  const std::uint64_t n = data.size();
  const std::uint64_t m = entry.conv_size();
  const std::span<const cplx_t<T>> chirp = entry.chirp_for<T>(dir);
  const std::span<const cplx_t<T>> bfft = entry.chirp_fft_for<T>(dir);

  NumericState<T>& st = num<T>();
  if (st.bluestein_scratch.size() < m) st.bluestein_scratch.resize(m);
  const std::span<cplx_t<T>> buf(st.bluestein_scratch.data(), m);

  for (std::uint64_t j = 0; j < n; ++j) buf[j] = data[j] * chirp[j];
  std::fill(buf.begin() + static_cast<std::ptrdiff_t>(n), buf.end(),
            cplx_t<T>{});

  const auto run_inner = [&](TwiddleDirection inner_dir) {
    switch (conv.kind()) {
      case PlanKind::kHierarchical:
        run_hierarchical_locked<T>(conv, buf, opts, inner_dir,
                                   /*tuned_block_rows=*/0, /*depth=*/0);
        break;
      case PlanKind::kFourStep:
        run_four_step_locked<T>(conv, buf, opts, variant, inner_dir);
        break;
      default: {
        const std::span<cplx_t<T>> one[1] = {buf};
        run_classic_locked<T>(conv, one, opts, variant, inner_dir);
        break;
      }
    }
  };
  run_inner(TwiddleDirection::kForward);
  for (std::uint64_t j = 0; j < m; ++j) buf[j] *= bfft[j];
  run_inner(TwiddleDirection::kInverse);

  // Demodulate, folding in the inner inverse's 1/M (the locked bodies
  // never scale; the public inverse wrappers add the outer 1/n on top).
  const T inv_m = static_cast<T>(1.0 / static_cast<double>(m));
  for (std::uint64_t j = 0; j < n; ++j) data[j] = buf[j] * chirp[j] * inv_m;
}

template <typename T>
void FftExecutor::run_bluestein_batch_locked(
    const PlanEntry& entry, const PlanEntry& conv,
    std::span<const std::span<cplx_t<T>>> batch, const HostFftOptions& opts,
    Variant variant, TwiddleDirection dir) {
  codelet::HostRuntime& rt = team(opts.workers, opts.mode);

  // Fall back to the per-transform path when there is nothing to amortize
  // (one-worker teams run no phases) or when the convolution size routes
  // four-step/hierarchical — those paths schedule phases of their own,
  // which cannot nest inside a codelet body.
  if (rt.workers() == 1 || conv.kind() != PlanKind::kClassic) {
    for (const std::span<cplx_t<T>>& t : batch)
      run_bluestein_locked<T>(entry, conv, t, opts, variant, dir);
    return;
  }

  const std::uint64_t n = batch.front().size();
  const std::uint64_t m = entry.conv_size();
  const std::span<const cplx_t<T>> chirp = entry.chirp_for<T>(dir);
  const std::span<const cplx_t<T>> bfft = entry.chirp_fft_for<T>(dir);
  const FftPlan& plan = conv.plan();
  const BasicTwiddleTable<T>& tw_fwd =
      conv.twiddles_for<T>(TwiddleDirection::kForward);
  const BasicTwiddleTable<T>& tw_inv =
      conv.twiddles_for<T>(TwiddleDirection::kInverse);
  const std::uint32_t stages = plan.stage_count();
  const std::uint64_t tasks = plan.tasks_per_stage();
  const unsigned bits = plan.log2_size();
  const unsigned fuse_log2 = tuned_fuse_locked<T>(m);
  const std::span<const std::uint32_t> brev(bitrev_table_locked(m, bits));

  ensure_worker_buffers<T>(plan.radix(), rt.workers());
  NumericState<T>& st = num<T>();
  std::vector<BasicKernelScratch<T>>& scratch = st.scratch;
  if (st.row_split.size() < rt.workers()) st.row_split.resize(rt.workers());
  if (st.bluestein_batch_scratch.size() < rt.workers())
    st.bluestein_batch_scratch.resize(rt.workers());
  for (unsigned w = 0; w < rt.workers(); ++w) {
    if (st.row_split[w].size() < 2 * m) st.row_split[w].resize(2 * m);
    if (st.bluestein_batch_scratch[w].size() < m)
      st.bluestein_batch_scratch[w].resize(m);
  }
  const T inv_m = static_cast<T>(1.0 / static_cast<double>(m));

  // One phase, one whole-chirp-z-chain codelet per transform: modulate,
  // forward M-point FFT, pointwise filter, inverse M-point FFT,
  // demodulate — the inner FFTs use the same fused-stage-0 serial classic
  // body as the one-worker fast path, so each transform's output is
  // bit-identical to a single run_bluestein_locked call, while B
  // coalesced transforms pay one phase instead of B whole phased chains.
  std::vector<CodeletKey> seeds;
  seeds.reserve(batch.size());
  for (std::uint64_t b = 0; b < batch.size(); ++b) seeds.push_back({0, b});
  rt.run_phase(
      seeds, PoolPolicy::kFifo,
      [&](CodeletKey key, unsigned worker, codelet::Pusher&) {
        std::span<cplx_t<T>> data = batch[key.index];
        const std::span<cplx_t<T>> buf(st.bluestein_batch_scratch[worker].data(),
                                       m);
        T* const re = st.row_split[worker].data();
        T* const im = re + m;
        for (std::uint64_t j = 0; j < n; ++j) buf[j] = data[j] * chirp[j];
        std::fill(buf.begin() + static_cast<std::ptrdiff_t>(n), buf.end(),
                  cplx_t<T>{});
        const auto serial_fft = [&](const BasicTwiddleTable<T>& tw) {
          run_stage0_bitrev(plan, buf, tw, brev, re, im, scratch[worker],
                            fuse_log2);
          for (std::uint32_t s = 1; s < stages; ++s)
            for (std::uint64_t t = 0; t < tasks; ++t)
              run_codelet(plan, s, t, buf, tw, scratch[worker], fuse_log2);
        };
        serial_fft(tw_fwd);
        for (std::uint64_t j = 0; j < m; ++j) buf[j] *= bfft[j];
        serial_fft(tw_inv);
        for (std::uint64_t j = 0; j < n; ++j)
          data[j] = buf[j] * chirp[j] * inv_m;
      });
}

template <typename T>
void FftExecutor::run_rows_locked(const PlanEntry& entry, std::span<cplx_t<T>> data,
                                  std::uint64_t row_count,
                                  const HostFftOptions& opts,
                                  TwiddleDirection dir) {
  // Sub-FFT sweep of the four-step path: `row_count` independent
  // `plan.size()`-point transforms over consecutive rows of `data`. Each
  // row is transformed completely — permutation, then every stage — while
  // it is cache-resident, by one worker. Routing these rows through the
  // batch path instead (per-transform dependency counters, root-codelet
  // seeding, stages interleaving across rows) measures ~10% slower at
  // 512 x 512 and evicts rows between their own stages; a row is the
  // natural grain here precisely because the sub-sizes were chosen
  // cache-resident. Chunks of rows seed the persistent team, so multi-
  // worker teams still spread the sweep.
  const FftPlan& plan = entry.plan();
  const BasicTwiddleTable<T>& twiddles = entry.twiddles_for<T>(dir);
  const std::uint64_t row_len = plan.size();
  const std::uint32_t stages = plan.stage_count();
  const std::uint64_t tasks = plan.tasks_per_stage();

  codelet::HostRuntime& rt = team(opts.workers, opts.mode);
  ensure_worker_buffers<T>(plan.radix(), rt.workers());
  NumericState<T>& st = num<T>();

  // The row permutation repeats row_count times, so computing
  // bit_reverse(i) per element per row is pure waste: a cached per-length
  // index table (a few KiB for the cache-resident sub-sizes) feeds
  // run_stage0_bitrev's fused gather.
  const std::span<const std::uint32_t> brev(
      bitrev_table_locked(row_len, plan.log2_size()));

  // Row-length split-complex scratch for the fused stage-0 pass, one per
  // worker (the kernel scratch is only radix-sized).
  if (st.row_split.size() < rt.workers()) st.row_split.resize(rt.workers());
  for (unsigned w = 0; w < rt.workers(); ++w)
    if (st.row_split[w].size() < 2 * row_len) st.row_split[w].resize(2 * row_len);

  // Tuned schedules key on the executed plan's own size — here the
  // sub-FFT row length, so a four-step transform picks up fusion tuned
  // for its cache-resident sub-sizes, not for the composite N.
  const unsigned fuse_log2 = tuned_fuse_locked<T>(row_len);

  const SweepGrain grain = four_step_sweep_grain(row_count, rt.workers());
  const std::uint64_t per = grain.per;
  std::vector<CodeletKey> seeds;
  seeds.reserve(grain.chunks);
  for (std::uint64_t c = 0; c < grain.chunks; ++c) seeds.push_back({0, c});
  rt.run_phase(
      seeds, PoolPolicy::kFifo,
      [&](CodeletKey key, unsigned worker, codelet::Pusher&) {
        T* const re = st.row_split[worker].data();
        T* const im = re + row_len;
        const std::uint64_t end = std::min(row_count, (key.index + 1) * per);
        for (std::uint64_t r = key.index * per; r < end; ++r) {
          const std::span<cplx_t<T>> row = data.subspan(r * row_len, row_len);
          run_stage0_bitrev(plan, row, twiddles, brev, re, im,
                            st.scratch[worker], fuse_log2);
          for (std::uint32_t stg = 1; stg < stages; ++stg)
            for (std::uint64_t t = 0; t < tasks; ++t)
              run_codelet(plan, stg, t, row, twiddles, st.scratch[worker],
                          fuse_log2);
        }
      });
}

template <typename T>
unsigned FftExecutor::tuned_fuse_locked(std::uint64_t n) {
  if (const std::optional<TunedSchedule> tuned =
          cache_.tuned_for(n, precision_of<T>, kernels::active_kernel_isa())) {
    ++schedule_hits_;
    return tuned->fuse_log2;
  }
  return kernels::kDefaultFuseLog2;
}

template <typename T>
void FftExecutor::run_four_step_locked(const PlanEntry& entry,
                                       std::span<cplx_t<T>> data,
                                       const HostFftOptions& opts,
                                       Variant /*variant*/,
                                       TwiddleDirection dir) {
  // The scheduling variant is accepted for interface symmetry but does not
  // alter the decomposition: the sub-FFT sweeps always use the row-serial
  // chunk schedule of run_rows_locked (see its rationale), so every
  // variant produces bit-identical output on this path.
  //
  // Index algebra (forward; kInverse conjugates every W below): with
  // j = j1*n2 + j2 and k = k2*n1 + k1,
  //   X[k2*n1 + k1] = sum_j2 W_n2^{j2*k2} * ( W_N^{j2*k1}
  //                   * sum_j1 x[j1*n2 + j2] * W_n1^{j1*k1} ).
  // Realized as five passes over the n1 x n2 row-major matrix view:
  //   1. transpose data -> s            (s is n2 x n1; columns made rows)
  //   2. n2 batched n1-point FFTs, one per row of s       (the inner sum)
  //   3. fused twiddle-transpose s -> data:
  //        data[k1*n2 + j2] = s[j2*n1 + k1] * W_N^{j2*k1}
  //   4. n1 batched n2-point FFTs, one per row of data    (the outer sum)
  //   5. data now holds X transposed (data[k1*n2 + k2] = X[k2*n1 + k1]);
  //      a final transpose restores natural output order.
  // No pass scales: the public inverse wrappers apply the single 1/N.
  const FourStepSplit& split = entry.split();
  const std::uint64_t n1 = split.n1;
  const std::uint64_t n2 = split.n2;
  const std::uint64_t n = n1 * n2;

  NumericState<T>& st = num<T>();
  if (st.four_step_scratch.size() < n) st.four_step_scratch.resize(n);
  const std::span<cplx_t<T>> s(st.four_step_scratch.data(), n);

  transpose_blocked(std::span<const cplx_t<T>>(data.data(), n), s, n1, n2);

  run_rows_locked<T>(*entry.col_entry(), s, n2, opts, dir);

  transpose_twiddle_blocked(std::span<const cplx_t<T>>(s.data(), n), data, n2,
                            n1, dir);

  run_rows_locked<T>(*entry.row_entry(), data, n1, opts, dir);

  if (n1 == n2) {
    transpose_inplace_square(data, n1);
  } else {
    transpose_blocked(std::span<const cplx_t<T>>(data.data(), n), s, n1, n2);
    std::copy(s.begin(), s.end(), data.begin());
  }
}

template <typename T>
void FftExecutor::run_hierarchical_locked(const PlanEntry& entry,
                                          std::span<cplx_t<T>> data,
                                          const HostFftOptions& opts,
                                          TwiddleDirection dir,
                                          std::uint64_t tuned_block_rows,
                                          unsigned depth) {
  // Same index algebra as run_four_step_locked (see its comment), but
  // executed as ONE dependency-counted pipeline phase over tile BLOCKS
  // instead of five barrier-separated full-array passes:
  //
  //   T1[i]  gather-transpose of block i            data  -> s     (stage 0)
  //   T2[i]  column FFTs of block i, in place       s     -> s     (stage 1)
  //   T4[j]  twiddle-gather + row FFTs + writeback  s     -> data  (stage 2)
  //
  //        T1[0] --> T2[0] ---.
  //        T1[1] --> T2[1] ---+--> T4[0], T4[1], ... T4[B2-1]
  //        T1[i] --> T2[i] ---'    (each T4 fans in from ALL T2)
  //
  // T1[i] -> T2[i] is a direct LIFO push (the worker that gathered the
  // panel immediately sweeps it while it is cache-hot), while every T4[j]
  // fans in from all B1 column blocks through a per-block dependency
  // counter — a T4 row is a twiddled COLUMN of s, so a row block is ready
  // only once every column sweep has landed. The transpose of one block
  // therefore overlaps the butterfly sweep of another with no full-array
  // sync point anywhere.
  //
  // T4 is the fused heart of the path: the four-step's n1 x n2 scatter
  // matrix (its pass-3 target) is never materialized. Each T4 twiddle-
  // gathers its own block_rows2 rows into a per-worker L2-resident panel
  // (transpose_twiddle_tile_panel — interleaved per-row recurrences, one
  // strided walk of s), sweeps the panel rows while they are hot, and
  // transposes the panel out to `data` in natural order. Against the
  // barrier path that saves a full strided matrix write + read-for-
  // ownership + re-read (the scatter matrix round-trip), which is where
  // the measured large-N win comes from on one core; the dep-counted
  // overlap adds on top once the team is real. Anti-dependence safety: T4
  // writes `data`, which T1 reads — but every T4 transitively waits on
  // all B1 T2s, and each T2 on its T1, so all reads of `data` complete
  // before the first writeback.
  //
  // Bit-identity: block boundaries are kTransposeTile-aligned, so each
  // stage enumerates exactly the tile grid of the corresponding
  // full-matrix pass, through kernels whose per-element multiplication
  // chains are those of the four-step passes (KernelDispatch::
  // transpose_tile; transpose_twiddle_tile_panel with the same hoisted w1
  // seed — see its header contract) and the same per-row FFT bodies — the
  // output equals run_four_step_locked's for the same (n1, n2) split,
  // butterfly for butterfly.
  //
  // Multi-level entries (levels() > 1) recurse for the column transform —
  // the inner level runs its own pipeline phases, one per column row —
  // after which s is fully swept, so the tail seeds the fused T4 stage
  // directly. No pass scales: the public inverse wrappers apply the 1/N.
  const std::uint64_t n1 = entry.split().n1;
  const std::uint64_t n2 = entry.split().n2;
  const std::uint64_t n = n1 * n2;
  const bool single_level = entry.levels() == 1;

  codelet::HostRuntime& rt = team(opts.workers, opts.mode);
  const unsigned workers = rt.workers();
  NumericState<T>& st = num<T>();

  // One gather matrix per recursion depth (s = n2 x n1) so an inner level
  // never clobbers the buffer its caller is mid-way through. Spans survive
  // the recursion's resize of the outer vector: moves preserve the inner
  // heap buffers. Fresh allocations are advised toward huge pages — the
  // strided side of every tile pass walks s one 16-element chunk per row.
  if (st.hier_scratch.size() < depth + 1) st.hier_scratch.resize(depth + 1);
  if (st.hier_scratch[depth].size() < n) {
    st.hier_scratch[depth].resize(n);
    advise_huge_pages(st.hier_scratch[depth].data(), n * sizeof(cplx_t<T>));
  }
  const std::span<cplx_t<T>> s(st.hier_scratch[depth].data(), n);

  if (!single_level) {
    // Column pass by recursion: serial gather here (the inner pipelines
    // below own the team), then the inner hierarchical transform once per
    // column row of s.
    transpose_blocked(std::span<const cplx_t<T>>(data.data(), n), s, n1, n2);
    for (std::uint64_t r = 0; r < n2; ++r)
      run_hierarchical_locked<T>(*entry.col_entry(), s.subspan(r * n1, n1),
                                 opts, dir, tuned_block_rows, depth + 1);
  }

  // Per-worker buffer prep AFTER any recursion (the inner levels resize
  // st.scratch / st.row_split for their own plan shapes).
  const FftPlan& row_plan = entry.row_entry()->plan();
  const BasicTwiddleTable<T>& row_tw = entry.row_entry()->twiddles_for<T>(dir);
  const FftPlan* col_plan = nullptr;
  const BasicTwiddleTable<T>* col_tw = nullptr;
  std::span<const std::uint32_t> brev1;
  unsigned col_fuse = 0;
  if (single_level) {
    col_plan = &entry.col_entry()->plan();
    col_tw = &entry.col_entry()->twiddles_for<T>(dir);
    ensure_worker_buffers<T>(std::max(col_plan->radix(), row_plan.radix()),
                             workers);
    brev1 = std::span<const std::uint32_t>(
        bitrev_table_locked(n1, col_plan->log2_size()));
    col_fuse = tuned_fuse_locked<T>(n1);
  } else {
    ensure_worker_buffers<T>(row_plan.radix(), workers);
  }
  const std::span<const std::uint32_t> brev2(
      bitrev_table_locked(n2, row_plan.log2_size()));
  const unsigned row_fuse = tuned_fuse_locked<T>(n2);
  const std::uint64_t split_len = single_level ? std::max(n1, n2) : n2;
  if (st.row_split.size() < workers) st.row_split.resize(workers);
  for (unsigned w = 0; w < workers; ++w)
    if (st.row_split[w].size() < 2 * split_len)
      st.row_split[w].resize(2 * split_len);

  const HierarchicalGrain grain =
      hierarchical_grain(n1, n2, workers, sizeof(cplx_t<T>),
                         util::cache_info().l2_bytes, tuned_block_rows);
  const std::uint64_t br1 = grain.block_rows1;
  const std::uint64_t B1 = grain.blocks1;
  const std::uint64_t br2 = grain.block_rows2;
  const std::uint64_t B2 = grain.blocks2;

  // Per-worker T4 panel: block_rows2 contiguous n2-point rows. Sized to
  // the largest grain seen (tuned block rows included) and huge-page
  // advised like s.
  if (st.hier_panel.size() < workers) st.hier_panel.resize(workers);
  for (unsigned w = 0; w < workers; ++w)
    if (st.hier_panel[w].size() < br2 * n2) {
      st.hier_panel[w].resize(br2 * n2);
      advise_huge_pages(st.hier_panel[w].data(),
                        br2 * n2 * sizeof(cplx_t<T>));
    }

  const cplx_t<T> w1 = unit_root<T>(n, 1, dir);
  const kernels::KernelDispatch<T>& K = kernels::active_kernels<T>();
  const std::uint32_t row_stages = row_plan.stage_count();
  const std::uint64_t row_tasks = row_plan.tasks_per_stage();

  // Stage layout {T1, T2, T4}: only T4 fans in through the counters (the
  // T1 -> T2 edge is a direct push), so stages 0/1 have zero groups. A
  // multi-level tail has no T1/T2 tasks at all — the recursion finished s
  // before the phase — so its T4s seed unguarded.
  const std::uint64_t groups_per_stage[3] = {0, 0, single_level ? B2 : 0};
  const std::uint32_t thresholds[3] = {1, 1, static_cast<std::uint32_t>(B1)};
  codelet::DependencyCounters counters(groups_per_stage, thresholds);

  std::vector<CodeletKey> seeds;
  seeds.reserve(single_level ? B1 : B2);
  if (single_level) {
    for (std::uint64_t i = 0; i < B1; ++i) seeds.push_back({0, i});
  } else {
    for (std::uint64_t j = 0; j < B2; ++j) seeds.push_back({2, j});
  }

  rt.run_phase(seeds, PoolPolicy::kLifo, [&](CodeletKey key, unsigned worker,
                                             codelet::Pusher& pusher) {
    if (key.stage == 0) {
      // T1: gather-transpose the strided data columns of block i into
      // contiguous rows of s. The src side reads one 16-element chunk per
      // data row — a stride the hardware prefetcher never locks onto — so
      // each tile software-prefetches the stripe below it one tile ahead
      // of use (prefetch is a pure hint: no values change).
      const std::uint64_t c0b = key.index * br1;
      const std::uint64_t cend = std::min(n2, c0b + br1);
      for (std::uint64_t r0 = 0; r0 < n1; r0 += kTransposeTile) {
        const std::uint64_t rmax = std::min(n1, r0 + kTransposeTile);
        for (std::uint64_t c0 = c0b; c0 < cend; c0 += kTransposeTile) {
          const std::uint64_t cmax = std::min(cend, c0 + kTransposeTile);
          for (std::uint64_t r = r0; r < rmax && r + kTransposeTile < n1; ++r)
            __builtin_prefetch(data.data() + (r + kTransposeTile) * n2 + c0,
                               0, 2);
          K.transpose_tile(data.data() + r0 * n2 + c0,
                           s.data() + c0 * n1 + r0, n2, n1, rmax - r0,
                           cmax - c0);
        }
      }
      // LIFO pool: the pushing worker pops this next, sweeping the panel
      // it just gathered while it is still cache-hot.
      pusher.push({1, key.index});
      return;
    }
    if (key.stage == 1) {
      // T2: column FFTs over the block's rows of s, in place (single-level
      // only; a multi-level tail has no stage-1 tasks), then release every
      // T4 whose fan-in completes with this block.
      const std::uint64_t r0b = key.index * br1;
      const std::uint64_t rend = std::min(n2, r0b + br1);
      T* const re = st.row_split[worker].data();
      T* const im = re + n1;
      for (std::uint64_t r = r0b; r < rend; ++r) {
        const std::span<cplx_t<T>> row = s.subspan(r * n1, n1);
        run_stage0_bitrev(*col_plan, row, *col_tw, brev1, re, im,
                          st.scratch[worker], col_fuse);
        const std::uint32_t col_stages = col_plan->stage_count();
        const std::uint64_t col_tasks = col_plan->tasks_per_stage();
        for (std::uint32_t stg = 1; stg < col_stages; ++stg)
          for (std::uint64_t t = 0; t < col_tasks; ++t)
            run_codelet(*col_plan, stg, t, row, *col_tw, st.scratch[worker],
                        col_fuse);
      }
      std::vector<CodeletKey>& keys = keys_buf_[worker];
      keys.clear();
      for (std::uint64_t j = 0; j < B2; ++j)
        if (counters.arrive(2, j)) keys.push_back({2, j});
      if (!keys.empty()) pusher.push_batch(keys);
      return;
    }
    // T4: twiddle-gather the block's rows — twiddled columns of s — into
    // this worker's panel, sweep the panel rows while they are hot, then
    // writeback-transpose into `data` in natural output order (same
    // destination addressing the four-step's final pass produces).
    const std::uint64_t r0b = key.index * br2;
    const std::uint64_t rend = std::min(n1, r0b + br2);
    cplx_t<T>* const panel = st.hier_panel[worker].data();
    for (std::uint64_t r0 = 0; r0 < n2; r0 += kTransposeTile) {
      const std::uint64_t rmax = std::min(n2, r0 + kTransposeTile);
      // Same strided-chunk walk as T1's src side: hint the stripe below
      // into cache one tile ahead of its use.
      for (std::uint64_t r = rmax; r < std::min(n2, rmax + kTransposeTile);
           ++r)
        __builtin_prefetch(s.data() + r * n1 + r0b, 0, 2);
      for (std::uint64_t c0 = r0b; c0 < rend; c0 += kTransposeTile)
        transpose_twiddle_tile_panel<T>(s.data(), panel, n2, n1, dir, r0,
                                        rmax, c0,
                                        std::min(rend, c0 + kTransposeTile),
                                        w1, r0b);
    }
    T* const re = st.row_split[worker].data();
    T* const im = re + n2;
    for (std::uint64_t r = r0b; r < rend; ++r) {
      const std::span<cplx_t<T>> row(panel + (r - r0b) * n2, n2);
      run_stage0_bitrev(row_plan, row, row_tw, brev2, re, im,
                        st.scratch[worker], row_fuse);
      for (std::uint32_t stg = 1; stg < row_stages; ++stg)
        for (std::uint64_t t = 0; t < row_tasks; ++t)
          run_codelet(row_plan, stg, t, row, row_tw, st.scratch[worker],
                      row_fuse);
    }
    for (std::uint64_t r0 = r0b; r0 < rend; r0 += kTransposeTile) {
      const std::uint64_t rmax = std::min(rend, r0 + kTransposeTile);
      for (std::uint64_t c0 = 0; c0 < n2; c0 += kTransposeTile) {
        const std::uint64_t cmax = std::min(n2, c0 + kTransposeTile);
        K.transpose_tile(panel + (r0 - r0b) * n2 + c0,
                         data.data() + c0 * n1 + r0, n2, n1, rmax - r0,
                         cmax - c0);
      }
    }
  });
}

void FftExecutor::forward(std::span<cplx> data, const HostFftOptions& opts,
                          Variant variant) {
  const std::span<cplx> one[1] = {data};
  run_t<double>(one, opts, variant, TwiddleDirection::kForward);
}

void FftExecutor::forward(std::span<cplx> data, Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  forward(data, opts, variant);
}

void FftExecutor::forward(std::span<cplx32> data, const HostFftOptions& opts,
                          Variant variant) {
  const std::span<cplx32> one[1] = {data};
  run_t<float>(one, opts, variant, TwiddleDirection::kForward);
}

void FftExecutor::forward(std::span<cplx32> data, Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  forward(data, opts, variant);
}

void FftExecutor::inverse(std::span<cplx> data, const HostFftOptions& opts,
                          Variant variant) {
  const std::span<cplx> one[1] = {data};
  run_t<double>(one, opts, variant, TwiddleDirection::kInverse);
  scale_by<double>(data, 1.0 / static_cast<double>(data.size()));
}

void FftExecutor::inverse(std::span<cplx> data, Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  inverse(data, opts, variant);
}

void FftExecutor::inverse(std::span<cplx32> data, const HostFftOptions& opts,
                          Variant variant) {
  const std::span<cplx32> one[1] = {data};
  run_t<float>(one, opts, variant, TwiddleDirection::kInverse);
  scale_by<float>(data, 1.0 / static_cast<double>(data.size()));
}

void FftExecutor::inverse(std::span<cplx32> data, Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  inverse(data, opts, variant);
}

void FftExecutor::forward_batch(std::span<const std::span<cplx>> batch,
                                const HostFftOptions& opts, Variant variant) {
  run_t<double>(batch, opts, variant, TwiddleDirection::kForward);
}

void FftExecutor::forward_batch(std::span<const std::span<cplx>> batch,
                                Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  forward_batch(batch, opts, variant);
}

void FftExecutor::forward_batch(std::span<const std::span<cplx32>> batch,
                                const HostFftOptions& opts, Variant variant) {
  run_t<float>(batch, opts, variant, TwiddleDirection::kForward);
}

void FftExecutor::forward_batch(std::span<const std::span<cplx32>> batch,
                                Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  forward_batch(batch, opts, variant);
}

void FftExecutor::inverse_batch(std::span<const std::span<cplx>> batch,
                                const HostFftOptions& opts, Variant variant) {
  run_t<double>(batch, opts, variant, TwiddleDirection::kInverse);
  for (const std::span<cplx>& t : batch)
    scale_by<double>(t, 1.0 / static_cast<double>(t.size()));
}

void FftExecutor::inverse_batch(std::span<const std::span<cplx>> batch,
                                Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  inverse_batch(batch, opts, variant);
}

void FftExecutor::inverse_batch(std::span<const std::span<cplx32>> batch,
                                const HostFftOptions& opts, Variant variant) {
  run_t<float>(batch, opts, variant, TwiddleDirection::kInverse);
  for (const std::span<cplx32>& t : batch)
    scale_by<float>(t, 1.0 / static_cast<double>(t.size()));
}

void FftExecutor::inverse_batch(std::span<const std::span<cplx32>> batch,
                                Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  inverse_batch(batch, opts, variant);
}

void FftExecutor::resize(unsigned workers) {
  if (workers == 0) throw std::invalid_argument("FftExecutor: zero workers");
  std::lock_guard lock(mutex_);
  opts_.workers = workers;
  if (runtime_ && runtime_->workers() != workers) runtime_.reset();
}

void FftExecutor::reconfigure() {
  std::lock_guard lock(mutex_);
  apply_env_overrides();
  if (runtime_ && runtime_->workers() != opts_.workers) runtime_.reset();
}

void FftExecutor::set_four_step_threshold_log2(unsigned log2n) {
  std::lock_guard lock(mutex_);
  opts_.four_step_threshold_log2 = log2n;
  four_step_threshold_log2_.store(log2n, std::memory_order_relaxed);
}

unsigned FftExecutor::four_step_threshold_log2() const {
  return four_step_threshold_log2_.load(std::memory_order_relaxed);
}

void FftExecutor::set_hierarchical_threshold_log2(unsigned log2n) {
  std::lock_guard lock(mutex_);
  opts_.hierarchical_threshold_log2 = log2n;
  hierarchical_threshold_log2_.store(log2n, std::memory_order_relaxed);
}

unsigned FftExecutor::hierarchical_threshold_log2() const {
  return hierarchical_threshold_log2_.load(std::memory_order_relaxed);
}

void FftExecutor::set_schedules(ScheduleSet schedules) {
  cache_.set_schedules(std::move(schedules));
}

std::size_t FftExecutor::load_schedules(const std::string& path) {
  ScheduleSet schedules = ScheduleSet::load_file(path);
  const std::size_t count = schedules.size();
  cache_.set_schedules(std::move(schedules));
  return count;
}

unsigned FftExecutor::default_workers() const {
  std::lock_guard lock(mutex_);
  return opts_.workers;
}

void FftExecutor::shutdown() {
  std::lock_guard lock(mutex_);
  shutdown_locked();
}

void FftExecutor::shutdown_locked() {
  runtime_.reset();
  members_buf_.clear();
  keys_buf_.clear();
  f64_.scratch.clear();
  f64_.four_step_scratch.clear();
  f64_.four_step_scratch.shrink_to_fit();
  f64_.hier_scratch.clear();
  f64_.hier_scratch.shrink_to_fit();
  f64_.hier_panel.clear();
  f64_.hier_panel.shrink_to_fit();
  f64_.mixed_scratch.clear();
  f64_.mixed_scratch.shrink_to_fit();
  f64_.bluestein_scratch.clear();
  f64_.bluestein_scratch.shrink_to_fit();
  f64_.mixed_batch_scratch.clear();
  f64_.mixed_batch_scratch.shrink_to_fit();
  f64_.bluestein_batch_scratch.clear();
  f64_.bluestein_batch_scratch.shrink_to_fit();
  f64_.row_split.clear();
  f64_.scratch_radix = 0;
  f32_.scratch.clear();
  f32_.four_step_scratch.clear();
  f32_.four_step_scratch.shrink_to_fit();
  f32_.hier_scratch.clear();
  f32_.hier_scratch.shrink_to_fit();
  f32_.hier_panel.clear();
  f32_.hier_panel.shrink_to_fit();
  f32_.mixed_scratch.clear();
  f32_.mixed_scratch.shrink_to_fit();
  f32_.bluestein_scratch.clear();
  f32_.bluestein_scratch.shrink_to_fit();
  f32_.mixed_batch_scratch.clear();
  f32_.mixed_batch_scratch.shrink_to_fit();
  f32_.bluestein_batch_scratch.clear();
  f32_.bluestein_batch_scratch.shrink_to_fit();
  f32_.row_split.clear();
  f32_.scratch_radix = 0;
  bitrev_tables_.clear();
  bitrev_tables_.shrink_to_fit();
}

void FftExecutor::close() {
  std::lock_guard lock(mutex_);
  // Order matters: the flag flips while the phase mutex is held, so any
  // transform that already passed its unlocked fast-fail is either (a)
  // finished with its phase — we join a quiescent team — or (b) still
  // waiting on mutex_, in which case it re-checks the flag after we
  // release and throws instead of respawning the team we just joined.
  closed_.store(true, std::memory_order_release);
  shutdown_locked();
}

bool FftExecutor::closed() const noexcept {
  return closed_.load(std::memory_order_acquire);
}

void FftExecutor::set_phase_hook(codelet::PhaseHook hook) {
  std::lock_guard lock(mutex_);
  phase_hook_ = std::move(hook);
  if (runtime_) runtime_->set_phase_hook(phase_hook_);
}

void FftExecutor::clear_cache() { cache_.clear(); }

ExecutorStats FftExecutor::stats() const {
  ExecutorStats s;
  s.cache = cache_.stats();
  std::lock_guard lock(mutex_);
  s.transforms = transforms_;
  s.batched = batched_;
  s.four_step = four_step_;
  s.hierarchical = hierarchical_;
  s.mixed_radix = mixed_radix_;
  s.bluestein = bluestein_;
  s.teams_created = teams_created_;
  s.schedule_hits = schedule_hits_;
  return s;
}

FftExecutor& default_executor() {
  static FftExecutor executor;
  return executor;
}

}  // namespace c64fft::fft
