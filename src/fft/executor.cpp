#include "fft/executor.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "codelet/dep_counter.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::fft {

namespace {

using codelet::CodeletKey;
using codelet::PoolPolicy;

/// Scale pass of the inverse transform (the only O(N) epilogue left: the
/// input-conjugation pass is gone — the conjugated twiddle table computes
/// conj(FFT(conj(x))) directly — and the output conjugation fused into the
/// table as well, leaving just the 1/N normalization).
void scale_by(std::span<cplx> data, double factor) {
  for (cplx& v : data) v *= factor;
}

}  // namespace

FftExecutor::FftExecutor(const ExecutorOptions& opts)
    : opts_(opts), cache_(opts.capacity) {
  if (opts.workers == 0)
    throw std::invalid_argument("FftExecutor: zero workers");
}

FftExecutor::~FftExecutor() = default;

codelet::HostRuntime& FftExecutor::team(unsigned workers,
                                        codelet::SchedulerMode mode) {
  if (workers == 0) throw std::invalid_argument("FftExecutor: zero workers");
  if (!runtime_ || runtime_->workers() != workers || runtime_->mode() != mode) {
    runtime_.reset();  // join the old team before spawning its replacement
    runtime_ = std::make_unique<codelet::HostRuntime>(workers, mode);
    ++teams_created_;
  }
  return *runtime_;
}

void FftExecutor::ensure_worker_buffers(std::uint64_t radix, unsigned workers) {
  if (scratch_radix_ == radix && scratch_.size() == workers) return;
  scratch_.clear();
  scratch_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) scratch_.emplace_back(radix);
  members_buf_.assign(workers, {});
  keys_buf_.assign(workers, {});
  scratch_radix_ = radix;
}

void FftExecutor::run(std::span<const std::span<cplx>> batch,
                      const HostFftOptions& opts, Variant variant,
                      TwiddleDirection dir) {
  if (batch.empty()) return;
  const std::uint64_t n = batch.front().size();
  for (const std::span<cplx>& t : batch)
    if (t.size() != n)
      throw std::invalid_argument(
          "FftExecutor: batch transforms must share one length");

  // Shape errors surface before any cache/team work; no clamping here —
  // this is the fft_host contract (api.cpp clamps on its own behalf).
  validate_fft_shape(n, opts.radix_log2, /*clamp_radix=*/false);

  std::shared_ptr<const PlanEntry> entry =
      cache_.acquire(PlanKey{n, opts.radix_log2, opts.layout});
  const FftPlan& plan = entry->plan();
  const TwiddleTable& twiddles = entry->twiddles(dir);
  const std::uint64_t tasks = plan.tasks_per_stage();
  const std::uint64_t b_count = batch.size();
  const std::uint32_t stages = plan.stage_count();

  std::lock_guard lock(mutex_);
  codelet::HostRuntime& rt = team(opts.workers, opts.mode);
  ensure_worker_buffers(plan.radix(), rt.workers());

  const unsigned bits = plan.log2_size();

  // Single transforms bit-reverse as a chunked phase on the persistent
  // team (the old free function spawned its own team per call); batches
  // instead fold the permutation into per-transform root codelets below —
  // one phase and one injection-queue pop per transform instead of one
  // per stage-0 codelet, and each transform's butterflies start cache-warm
  // right after its own permutation.
  if (b_count == 1) {
    const std::uint64_t per = std::uint64_t{rt.workers()} * 4;
    const std::uint64_t chunk = util::ceil_div(n, per);
    std::vector<CodeletKey> seeds;
    seeds.reserve(per);
    for (std::uint64_t c = 0; c < per; ++c) seeds.push_back({0, c});
    rt.run_phase(seeds, PoolPolicy::kFifo,
                 [&](CodeletKey key, unsigned, codelet::Pusher&) {
                   std::span<cplx> data = batch[0];
                   const std::uint64_t end = std::min(n, (key.index + 1) * chunk);
                   for (std::uint64_t i = key.index * chunk; i < end; ++i) {
                     const std::uint64_t j = util::bit_reverse(i, bits);
                     if (i < j) std::swap(data[i], data[j]);
                   }
                 });
  }

  // Batch seeding: a root codelet per transform (sentinel stage) that
  // optionally bit-reverses its whole transform, then releases that
  // transform's `order`-ordered codelets of `target_stage` onto the
  // executing worker's own lock-free deque.
  constexpr std::uint32_t kRootStage = 0xFFFFFFFFu;
  std::vector<CodeletKey> root_seeds;
  if (b_count > 1) {
    root_seeds.reserve(b_count);
    for (std::uint64_t b = 0; b < b_count; ++b) root_seeds.push_back({kRootStage, b});
  }
  auto rooted = [&](const std::vector<std::uint64_t>& order,
                    std::uint32_t target_stage, bool do_bitrev,
                    codelet::CodeletBody inner) -> codelet::CodeletBody {
    return [&, target_stage, do_bitrev, inner](CodeletKey key, unsigned worker,
                                               codelet::Pusher& pusher) {
      if (key.stage != kRootStage) {
        inner(key, worker, pusher);
        return;
      }
      const std::uint64_t b = key.index;
      if (do_bitrev) {
        std::span<cplx> data = batch[b];
        for (std::uint64_t i = 0; i < n; ++i) {
          const std::uint64_t j = util::bit_reverse(i, bits);
          if (i < j) std::swap(data[i], data[j]);
        }
      }
      std::vector<CodeletKey>& keys = keys_buf_[worker];
      keys.clear();
      keys.reserve(order.size());
      for (std::uint64_t t : order) keys.push_back({target_stage, b * tasks + t});
      pusher.push_batch(keys);
    };
  };

  std::vector<std::uint64_t> natural(tasks);
  for (std::uint64_t t = 0; t < tasks; ++t) natural[t] = t;

  if (variant == Variant::kCoarse) {
    // Algorithm 1 over the whole batch: one phase per stage; every
    // transform's stage-s codelets run inside the same phase.
    const codelet::CodeletBody exec = [&](CodeletKey key, unsigned worker,
                                          codelet::Pusher&) {
      run_codelet(plan, key.stage, key.index % tasks, batch[key.index / tasks],
                  twiddles, scratch_[worker]);
    };
    std::uint32_t first = 0;
    if (b_count > 1) {
      rt.run_phase(root_seeds, PoolPolicy::kFifo, rooted(natural, 0, true, exec));
      first = 1;
    }
    std::vector<CodeletKey> seeds(tasks * b_count);
    for (std::uint32_t s = first; s < stages; ++s) {
      for (std::uint64_t i = 0; i < seeds.size(); ++i) seeds[i] = {s, i};
      rt.run_phase(seeds, PoolPolicy::kFifo, exec);
    }
    transforms_ += (b_count == 1) ? 1 : 0;
    batched_ += (b_count == 1) ? 0 : b_count;
    return;
  }

  // Fine/guided: one DependencyCounters instance per transform, all
  // stamped from the cached template.
  std::vector<codelet::DependencyCounters> counters;
  counters.reserve(b_count);
  for (std::uint64_t b = 0; b < b_count; ++b)
    counters.push_back(entry->make_counters());

  // Kernel + readiness propagation over the batch-encoded key space;
  // mirrors the single-transform fine body of the paper's Alg. 2/3.
  auto fine_body = [&](std::uint32_t last_propagated) -> codelet::CodeletBody {
    return [&, last_propagated](CodeletKey key, unsigned worker,
                                codelet::Pusher& pusher) {
      const std::uint64_t b = key.index / tasks;
      const std::uint64_t t = key.index % tasks;
      run_codelet(plan, key.stage, t, batch[b], twiddles, scratch_[worker]);
      if (key.stage >= last_propagated || key.stage + 1 >= stages) return;
      const std::uint64_t g = plan.child_group(key.stage, t);
      if (counters[b].arrive(key.stage + 1, g)) {
        std::vector<std::uint64_t>& members = members_buf_[worker];
        plan.group_members(key.stage + 1, g, members);
        std::vector<CodeletKey>& keys = keys_buf_[worker];
        keys.clear();
        keys.reserve(members.size());
        for (std::uint64_t m : members)
          keys.push_back({key.stage + 1, b * tasks + m});
        pusher.push_batch(keys);
      }
    };
  };

  FineOrdering ordering = opts.ordering;
  bool fine = variant == Variant::kFine;
  if (variant == Variant::kGuided && stages < 3) {
    // Degenerate guided input: Alg. 3 reduces to fine with its LIFO pool.
    fine = true;
    ordering = FineOrdering{PoolPolicy::kLifo, SeedOrder::kNatural, 1};
  }

  if (fine) {
    const std::vector<std::uint64_t> order =
        make_seed_order(ordering.order, tasks, ordering.seed);
    if (b_count > 1) {
      rt.run_phase(root_seeds, ordering.policy,
                   rooted(order, 0, true, fine_body(stages - 1)));
    } else {
      std::vector<CodeletKey> seeds;
      seeds.reserve(order.size());
      for (std::uint64_t t : order) seeds.push_back({0, t});
      rt.run_phase(seeds, ordering.policy, fine_body(stages - 1));
    }
  } else {
    // Algorithm 3, phase 1: fine-grain over the early stages; the last
    // early stage does not propagate readiness.
    const std::uint32_t last_early = stages - 3;
    if (b_count > 1) {
      rt.run_phase(root_seeds, PoolPolicy::kLifo,
                   rooted(natural, 0, true, fine_body(last_early)));
    } else {
      std::vector<CodeletKey> seeds;
      seeds.reserve(tasks);
      for (std::uint64_t i = 0; i < tasks; ++i) seeds.push_back({0, i});
      rt.run_phase(seeds, PoolPolicy::kLifo, fine_body(last_early));
    }
    // Phase 2: per transform, the simulator's column-batched seed order of
    // the penultimate stage.
    const std::uint32_t penultimate = stages - 2;
    const std::vector<std::uint64_t> order = guided_phase2_order(plan);
    if (order.size() != tasks)
      throw std::logic_error("guided: phase-2 seeding does not cover the stage");
    if (b_count > 1) {
      rt.run_phase(root_seeds, PoolPolicy::kLifo,
                   rooted(order, penultimate, false, fine_body(stages - 1)));
    } else {
      std::vector<CodeletKey> phase2;
      phase2.reserve(tasks);
      for (std::uint64_t p : order) phase2.push_back({penultimate, p});
      rt.run_phase(phase2, PoolPolicy::kLifo, fine_body(stages - 1));
    }
  }

  transforms_ += (b_count == 1) ? 1 : 0;
  batched_ += (b_count == 1) ? 0 : b_count;
}

void FftExecutor::forward(std::span<cplx> data, const HostFftOptions& opts,
                          Variant variant) {
  const std::span<cplx> one[1] = {data};
  run(one, opts, variant, TwiddleDirection::kForward);
}

void FftExecutor::forward(std::span<cplx> data, Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  forward(data, opts, variant);
}

void FftExecutor::inverse(std::span<cplx> data, const HostFftOptions& opts,
                          Variant variant) {
  const std::span<cplx> one[1] = {data};
  run(one, opts, variant, TwiddleDirection::kInverse);
  scale_by(data, 1.0 / static_cast<double>(data.size()));
}

void FftExecutor::inverse(std::span<cplx> data, Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  inverse(data, opts, variant);
}

void FftExecutor::forward_batch(std::span<const std::span<cplx>> batch,
                                const HostFftOptions& opts, Variant variant) {
  run(batch, opts, variant, TwiddleDirection::kForward);
}

void FftExecutor::forward_batch(std::span<const std::span<cplx>> batch,
                                Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  forward_batch(batch, opts, variant);
}

void FftExecutor::inverse_batch(std::span<const std::span<cplx>> batch,
                                const HostFftOptions& opts, Variant variant) {
  run(batch, opts, variant, TwiddleDirection::kInverse);
  for (const std::span<cplx>& t : batch)
    scale_by(t, 1.0 / static_cast<double>(t.size()));
}

void FftExecutor::inverse_batch(std::span<const std::span<cplx>> batch,
                                Variant variant) {
  HostFftOptions opts;
  opts.workers = opts_.workers;
  opts.mode = opts_.mode;
  inverse_batch(batch, opts, variant);
}

void FftExecutor::resize(unsigned workers) {
  if (workers == 0) throw std::invalid_argument("FftExecutor: zero workers");
  std::lock_guard lock(mutex_);
  opts_.workers = workers;
  if (runtime_ && runtime_->workers() != workers) runtime_.reset();
}

void FftExecutor::shutdown() {
  std::lock_guard lock(mutex_);
  runtime_.reset();
  scratch_.clear();
  members_buf_.clear();
  keys_buf_.clear();
  scratch_radix_ = 0;
}

void FftExecutor::clear_cache() { cache_.clear(); }

ExecutorStats FftExecutor::stats() const {
  ExecutorStats s;
  s.cache = cache_.stats();
  std::lock_guard lock(mutex_);
  s.transforms = transforms_;
  s.batched = batched_;
  s.teams_created = teams_created_;
  return s;
}

FftExecutor& default_executor() {
  static FftExecutor executor;
  return executor;
}

}  // namespace c64fft::fft
