#include "fft/reference.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "fft/bit_reversal.hpp"
#include "fft/twiddle.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::fft {
namespace {

template <typename T>
std::vector<cplx_t<T>> dft_impl(std::span<const cplx_t<T>> input) {
  const std::size_t n = input.size();
  std::vector<cplx_t<T>> out(n);
  const double step = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx_t<T> acc{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = step * static_cast<double>((j * k) % n);
      acc += input[j] * cplx_t<T>(static_cast<T>(std::cos(angle)),
                                  static_cast<T>(std::sin(angle)));
    }
    out[k] = acc;
  }
  return out;
}

template <typename T>
void fft_rec(std::span<cplx_t<T>> v) {
  const std::size_t n = v.size();
  if (n <= 1) return;
  std::vector<cplx_t<T>> even(n / 2), odd(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) {
    even[i] = v[2 * i];
    odd[i] = v[2 * i + 1];
  }
  fft_rec<T>(even);
  fft_rec<T>(odd);
  const double step = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = step * static_cast<double>(k);
    const cplx_t<T> t = cplx_t<T>(static_cast<T>(std::cos(angle)),
                                  static_cast<T>(std::sin(angle))) *
                        odd[k];
    v[k] = even[k] + t;
    v[k + n / 2] = even[k] - t;
  }
}

template <typename T>
void serial_inplace_impl(std::span<cplx_t<T>> data) {
  const std::uint64_t n = data.size();
  if (!util::is_pow2(n)) throw std::invalid_argument("fft_serial_inplace: non-power-of-two");
  if (n == 1) return;
  bit_reverse_permute(data);
  const BasicTwiddleTable<T> tw(n, TwiddleLayout::kLinear);
  const unsigned bits = util::ilog2(n);
  for (unsigned level = 0; level < bits; ++level) {
    const std::uint64_t half = std::uint64_t{1} << level;
    const unsigned shift = bits - level - 1;
    for (std::uint64_t block = 0; block < n; block += 2 * half) {
      for (std::uint64_t p = 0; p < half; ++p) {
        const cplx_t<T> w = tw.at(p << shift);
        const cplx_t<T> t = w * data[block + p + half];
        data[block + p + half] = data[block + p] - t;
        data[block + p] += t;
      }
    }
  }
}

template <typename T>
std::vector<cplx_t<T>> ifft_impl(std::span<const cplx_t<T>> input) {
  std::vector<cplx_t<T>> tmp(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) tmp[i] = std::conj(input[i]);
  serial_inplace_impl<T>(tmp);
  const T inv = static_cast<T>(1.0 / static_cast<double>(input.size()));
  for (auto& v : tmp) v = std::conj(v) * inv;
  return tmp;
}

// Error metrics: `A`/`B` may differ in precision; everything is widened to
// double before the subtraction so the metric itself adds no rounding.
template <typename A, typename B>
double max_abs_impl(std::span<const cplx_t<A>> a, std::span<const cplx_t<B>> b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const cplx wa(a[i].real(), a[i].imag());
    const cplx wb(b[i].real(), b[i].imag());
    worst = std::max(worst, std::abs(wa - wb));
  }
  return worst;
}

template <typename A, typename B>
double rel_l2_impl(std::span<const cplx_t<A>> a, std::span<const cplx_t<B>> b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const cplx wa(a[i].real(), a[i].imag());
    const cplx wb(b[i].real(), b[i].imag());
    num += std::norm(wa - wb);
    den += std::norm(wb);
  }
  return std::sqrt(num) / std::max(std::sqrt(den), 1e-300);
}

}  // namespace

std::vector<cplx> dft_reference(std::span<const cplx> input) {
  return dft_impl<double>(input);
}

std::vector<cplx32> dft_reference(std::span<const cplx32> input) {
  return dft_impl<float>(input);
}

std::vector<cplx> fft_recursive(std::span<const cplx> input) {
  if (!util::is_pow2(input.size()))
    throw std::invalid_argument("fft_recursive: N must be a power of two");
  std::vector<cplx> out(input.begin(), input.end());
  fft_rec<double>(out);
  return out;
}

std::vector<cplx32> fft_recursive(std::span<const cplx32> input) {
  if (!util::is_pow2(input.size()))
    throw std::invalid_argument("fft_recursive: N must be a power of two");
  std::vector<cplx32> out(input.begin(), input.end());
  fft_rec<float>(out);
  return out;
}

void fft_serial_inplace(std::span<cplx> data) { serial_inplace_impl<double>(data); }
void fft_serial_inplace(std::span<cplx32> data) { serial_inplace_impl<float>(data); }

std::vector<cplx> ifft_reference(std::span<const cplx> input) {
  return ifft_impl<double>(input);
}

std::vector<cplx32> ifft_reference(std::span<const cplx32> input) {
  return ifft_impl<float>(input);
}

double max_abs_error(std::span<const cplx> a, std::span<const cplx> b) {
  return max_abs_impl<double, double>(a, b);
}

double max_abs_error(std::span<const cplx32> a, std::span<const cplx32> b) {
  return max_abs_impl<float, float>(a, b);
}

double max_abs_error(std::span<const cplx32> a, std::span<const cplx> b) {
  return max_abs_impl<float, double>(a, b);
}

double rel_l2_error(std::span<const cplx> a, std::span<const cplx> b) {
  return rel_l2_impl<double, double>(a, b);
}

double rel_l2_error(std::span<const cplx32> a, std::span<const cplx32> b) {
  return rel_l2_impl<float, float>(a, b);
}

double rel_l2_error(std::span<const cplx32> a, std::span<const cplx> b) {
  return rel_l2_impl<float, double>(a, b);
}

}  // namespace c64fft::fft
