#include "fft/reference.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "fft/bit_reversal.hpp"
#include "fft/twiddle.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::fft {

std::vector<cplx> dft_reference(std::span<const cplx> input) {
  const std::size_t n = input.size();
  std::vector<cplx> out(n);
  const double step = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = step * static_cast<double>((j * k) % n);
      acc += input[j] * cplx(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

namespace {
void fft_rec(std::span<cplx> v) {
  const std::size_t n = v.size();
  if (n <= 1) return;
  std::vector<cplx> even(n / 2), odd(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) {
    even[i] = v[2 * i];
    odd[i] = v[2 * i + 1];
  }
  fft_rec(even);
  fft_rec(odd);
  const double step = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = step * static_cast<double>(k);
    const cplx t = cplx(std::cos(angle), std::sin(angle)) * odd[k];
    v[k] = even[k] + t;
    v[k + n / 2] = even[k] - t;
  }
}
}  // namespace

std::vector<cplx> fft_recursive(std::span<const cplx> input) {
  if (!util::is_pow2(input.size()))
    throw std::invalid_argument("fft_recursive: N must be a power of two");
  std::vector<cplx> out(input.begin(), input.end());
  fft_rec(out);
  return out;
}

void fft_serial_inplace(std::span<cplx> data) {
  const std::uint64_t n = data.size();
  if (!util::is_pow2(n)) throw std::invalid_argument("fft_serial_inplace: non-power-of-two");
  if (n == 1) return;
  bit_reverse_permute(data);
  const TwiddleTable tw(n, TwiddleLayout::kLinear);
  const unsigned bits = util::ilog2(n);
  for (unsigned level = 0; level < bits; ++level) {
    const std::uint64_t half = std::uint64_t{1} << level;
    const unsigned shift = bits - level - 1;
    for (std::uint64_t block = 0; block < n; block += 2 * half) {
      for (std::uint64_t p = 0; p < half; ++p) {
        const cplx w = tw.at(p << shift);
        const cplx t = w * data[block + p + half];
        data[block + p + half] = data[block + p] - t;
        data[block + p] += t;
      }
    }
  }
}

std::vector<cplx> ifft_reference(std::span<const cplx> input) {
  std::vector<cplx> tmp(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) tmp[i] = std::conj(input[i]);
  fft_serial_inplace(tmp);
  const double inv = 1.0 / static_cast<double>(input.size());
  for (auto& v : tmp) v = std::conj(v) * inv;
  return tmp;
}

double max_abs_error(std::span<const cplx> a, std::span<const cplx> b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

double rel_l2_error(std::span<const cplx> a, std::span<const cplx> b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::norm(a[i] - b[i]);
    den += std::norm(b[i]);
  }
  return std::sqrt(num) / std::max(std::sqrt(den), 1e-300);
}

}  // namespace c64fft::fft
