#pragma once
// Stockham autosort FFT — the baseline algorithm the paper's related-work
// section contrasts with Cooley-Tukey ("the radix-2 Stockham algorithm
// (which avoids the bit reversal preliminary stage)"). Ping-pongs between
// two buffers, permuting as it goes, so no bit-reversal pass is needed —
// at the price of out-of-place stages and a different access pattern.
// Available at both precisions (shared template body in stockham.cpp; the
// trig always runs in double and is narrowed per element for f32).

#include <span>
#include <vector>

#include "fft/types.hpp"

namespace c64fft::fft {

/// Out-of-place forward FFT (power-of-two N) via the radix-2 Stockham
/// autosort algorithm.
std::vector<cplx> fft_stockham(std::span<const cplx> input);
std::vector<cplx32> fft_stockham(std::span<const cplx32> input);

/// In-place convenience wrapper (uses one scratch buffer internally).
void fft_stockham_inplace(std::span<cplx> data);
void fft_stockham_inplace(std::span<cplx32> data);

}  // namespace c64fft::fft
