#pragma once
// Cache-blocked matrix transpose kernels.
//
// A naive element-loop transpose reads one array contiguously and writes
// the other with a power-of-two column stride — on a set-associative cache
// that strided stream maps every access onto a handful of cache sets, the
// host analogue of the paper's bank-0 twiddle hotspot (every write evicts
// the line the previous one brought in). Blocking the traversal into
// square tiles keeps both the source and destination footprint of a tile
// inside L1, so every fetched line is fully consumed before eviction.
//
// Three kernels, all row-major, each at both precisions (a 16 x 16 cplx32
// tile is 2 KiB — still two cache lines per tile row, still L1-resident):
//  * transpose_blocked        — out-of-place, any rows x cols shape.
//  * transpose_inplace_square — in-place square transpose: off-diagonal
//    tile *pairs* are swap-transposed; diagonal tiles run a dedicated
//    micro-kernel (upper-triangle swaps within one tile).
//  * transpose_twiddle_blocked — the four-step FFT's fused inter-step
//    pass: dst[c*rows + r] = src[r*cols + c] * W_N^(r*c) with
//    N = rows*cols (conjugated for kInverse). The factors are generated
//    per tile row from the twiddle.hpp unit-root primitive (one root +
//    one per-row geometric recurrence), so the O(N) inter-step twiddle
//    array of a huge transform is never materialized. The recurrences run
//    in the element precision from double-rounded seeds.

#include <algorithm>
#include <cstdint>
#include <span>

#include "fft/twiddle.hpp"
#include "fft/types.hpp"

namespace c64fft::fft {

/// Tile edge of the blocked kernels: 16 x 16 cplx = 4 KiB per operand,
/// four cache lines per tile row — both tiles stay L1-resident while each
/// 64 B line is read/written whole.
inline constexpr std::uint64_t kTransposeTile = 16;

/// Invokes fn(r0, rmax, c0, cmax) once per tile of the blocked traversal,
/// in kernel order. This is the single source of truth for the tiling:
/// the kernels below iterate it to move data, and the static pipeline
/// model (analysis::build_*_pipeline) iterates it to enumerate tile-task
/// footprints — so the verifier proves properties of exactly the tiles
/// the kernel executes, never a lookalike decomposition.
template <typename Fn>
inline void for_each_transpose_tile(std::uint64_t rows, std::uint64_t cols,
                                    Fn&& fn) {
  for (std::uint64_t r0 = 0; r0 < rows; r0 += kTransposeTile) {
    const std::uint64_t rmax = std::min(rows, r0 + kTransposeTile);
    for (std::uint64_t c0 = 0; c0 < cols; c0 += kTransposeTile)
      fn(r0, rmax, c0, std::min(cols, c0 + kTransposeTile));
  }
}

/// Tile traversal of the in-place square transpose: fn(r0, rmax, c0, cmax)
/// with c0 == r0 for diagonal tiles (upper-triangle swaps within the tile)
/// and c0 > r0 for off-diagonal mirror pairs (each pair visited once; the
/// callee owns BOTH the (r0,c0) tile and its (c0,r0) mirror).
template <typename Fn>
inline void for_each_transpose_tile_pair(std::uint64_t n, Fn&& fn) {
  for (std::uint64_t r0 = 0; r0 < n; r0 += kTransposeTile) {
    const std::uint64_t rmax = std::min(n, r0 + kTransposeTile);
    fn(r0, rmax, r0, rmax);
    for (std::uint64_t c0 = r0 + kTransposeTile; c0 < n; c0 += kTransposeTile)
      fn(r0, rmax, c0, std::min(n, c0 + kTransposeTile));
  }
}

/// dst[c * rows + r] = src[r * cols + c] for a row-major rows x cols
/// `src`. `dst` must not alias `src`. Throws std::invalid_argument on
/// size mismatch.
void transpose_blocked(std::span<const cplx> src, std::span<cplx> dst,
                       std::uint64_t rows, std::uint64_t cols);
void transpose_blocked(std::span<const cplx32> src, std::span<cplx32> dst,
                       std::uint64_t rows, std::uint64_t cols);

/// In-place transpose of a row-major n x n matrix.
void transpose_inplace_square(std::span<cplx> data, std::uint64_t n);
void transpose_inplace_square(std::span<cplx32> data, std::uint64_t n);

/// Fused twiddle-transpose of the four-step decomposition:
/// dst[c * rows + r] = src[r * cols + c] * W^(r*c) where W is the
/// (rows*cols)-th unit root of `dir`. `dst` must not alias `src`.
void transpose_twiddle_blocked(std::span<const cplx> src, std::span<cplx> dst,
                               std::uint64_t rows, std::uint64_t cols,
                               TwiddleDirection dir);
void transpose_twiddle_blocked(std::span<const cplx32> src, std::span<cplx32> dst,
                               std::uint64_t rows, std::uint64_t cols,
                               TwiddleDirection dir);

}  // namespace c64fft::fft
