#pragma once
// Cache-blocked matrix transpose kernels.
//
// A naive element-loop transpose reads one array contiguously and writes
// the other with a power-of-two column stride — on a set-associative cache
// that strided stream maps every access onto a handful of cache sets, the
// host analogue of the paper's bank-0 twiddle hotspot (every write evicts
// the line the previous one brought in). Blocking the traversal into
// square tiles keeps both the source and destination footprint of a tile
// inside L1, so every fetched line is fully consumed before eviction.
//
// Three kernels, all row-major, each at both precisions (a 16 x 16 cplx32
// tile is 2 KiB — still two cache lines per tile row, still L1-resident):
//  * transpose_blocked        — out-of-place, any rows x cols shape.
//  * transpose_inplace_square — in-place square transpose: off-diagonal
//    tile *pairs* are swap-transposed; diagonal tiles run a dedicated
//    micro-kernel (upper-triangle swaps within one tile).
//  * transpose_twiddle_blocked — the four-step FFT's fused inter-step
//    pass: dst[c*rows + r] = src[r*cols + c] * W_N^(r*c) with
//    N = rows*cols (conjugated for kInverse). The factors are generated
//    per tile row from the twiddle.hpp unit-root primitive (one root +
//    one per-row geometric recurrence), so the O(N) inter-step twiddle
//    array of a huge transform is never materialized. The recurrences run
//    in the element precision from double-rounded seeds.

#include <algorithm>
#include <cstdint>
#include <span>

#include "fft/twiddle.hpp"
#include "fft/types.hpp"

namespace c64fft::fft {

/// Tile edge of the blocked kernels: 16 x 16 cplx = 4 KiB per operand,
/// four cache lines per tile row — both tiles stay L1-resident while each
/// 64 B line is read/written whole.
inline constexpr std::uint64_t kTransposeTile = 16;

/// Invokes fn(r0, rmax, c0, cmax) once per tile of the blocked traversal,
/// in kernel order. This is the single source of truth for the tiling:
/// the kernels below iterate it to move data, and the static pipeline
/// model (analysis::build_*_pipeline) iterates it to enumerate tile-task
/// footprints — so the verifier proves properties of exactly the tiles
/// the kernel executes, never a lookalike decomposition.
template <typename Fn>
inline void for_each_transpose_tile(std::uint64_t rows, std::uint64_t cols,
                                    Fn&& fn) {
  for (std::uint64_t r0 = 0; r0 < rows; r0 += kTransposeTile) {
    const std::uint64_t rmax = std::min(rows, r0 + kTransposeTile);
    for (std::uint64_t c0 = 0; c0 < cols; c0 += kTransposeTile)
      fn(r0, rmax, c0, std::min(cols, c0 + kTransposeTile));
  }
}

/// Tile traversal of the in-place square transpose: fn(r0, rmax, c0, cmax)
/// with c0 == r0 for diagonal tiles (upper-triangle swaps within the tile)
/// and c0 > r0 for off-diagonal mirror pairs (each pair visited once; the
/// callee owns BOTH the (r0,c0) tile and its (c0,r0) mirror).
template <typename Fn>
inline void for_each_transpose_tile_pair(std::uint64_t n, Fn&& fn) {
  for (std::uint64_t r0 = 0; r0 < n; r0 += kTransposeTile) {
    const std::uint64_t rmax = std::min(n, r0 + kTransposeTile);
    fn(r0, rmax, r0, rmax);
    for (std::uint64_t c0 = r0 + kTransposeTile; c0 < n; c0 += kTransposeTile)
      fn(r0, rmax, c0, std::min(n, c0 + kTransposeTile));
  }
}

/// One tile of the fused twiddle-transpose: for the row-major rows x cols
/// `src` (full-matrix base pointer) and its cols x rows transpose `dst`,
/// applies dst[c * rows + r] = src[r * cols + c] * W^(r*c) over the tile
/// [r0, rmax) x [c0, cmax), where W = w1 is the (rows*cols)-th unit root
/// of the pass direction. The factors W^(r*c) are geometric along both
/// tile axes: along a source row the ratio is W^r, and from one row to
/// the next the row seed W^(r*c0) advances by W^c0 while the row ratio
/// W^r advances by W^1. Three unit-root evaluations therefore seed the
/// whole tile and recurrences of at most kTransposeTile multiplies cover
/// the rest (r*c < rows*cols, so the exponents never need reduction).
///
/// This is the single twiddle-application kernel of the four-step AND
/// hierarchical paths: transpose_twiddle_blocked iterates it over the
/// whole matrix, and the executor's pipelined scatter calls it per tile —
/// same seeds, same recurrence, bit-identical products either way. `w1`
/// must be unit_root<T>(rows * cols, 1, dir), hoisted by the caller so a
/// full-matrix sweep pays its sincos once.
template <typename T>
inline void transpose_twiddle_tile(const cplx_t<T>* src, cplx_t<T>* dst,
                                   std::uint64_t rows, std::uint64_t cols,
                                   TwiddleDirection dir, std::uint64_t r0,
                                   std::uint64_t rmax, std::uint64_t c0,
                                   std::uint64_t cmax, const cplx_t<T>& w1) {
  const std::uint64_t n = rows * cols;
  cplx_t<T> w_row = unit_root<T>(n, r0 * c0, dir);
  cplx_t<T> step = unit_root<T>(n, r0, dir);
  const cplx_t<T> w_col = unit_root<T>(n, c0, dir);
  for (std::uint64_t r = r0; r < rmax; ++r) {
    cplx_t<T> w = w_row;
    for (std::uint64_t c = c0; c < cmax; ++c) {
      dst[c * rows + r] = src[r * cols + c] * w;
      w *= step;
    }
    w_row *= w_col;
    step *= w1;
  }
}

/// Panel-gather form of the same tile, used by the hierarchical pipeline's
/// fused row stage: `dst` holds only source columns [dst_col0, ...) — a
/// per-worker panel instead of the full cols x rows matrix — so the write
/// lands at dst[(c - dst_col0) * rows + r]. The twiddles are generated by
/// exactly the multiplication chains of transpose_twiddle_tile (the row
/// seeds advance w_row *= w_col / step *= w1 in the same order, and each
/// in-row value is the same sequence of rounded w *= step products), so
/// every product is bit-identical to the full-matrix scatter; only the
/// loop nest differs. The interchange (c outer, r inner) is the
/// performance point: the per-row recurrences are independent chains, so
/// running up to kTransposeTile of them abreast hides the serial
/// complex-multiply latency that bounds the row-major order, and the
/// panel writes of one c are contiguous.
template <typename T>
inline void transpose_twiddle_tile_panel(const cplx_t<T>* src, cplx_t<T>* dst,
                                         std::uint64_t rows, std::uint64_t cols,
                                         TwiddleDirection dir, std::uint64_t r0,
                                         std::uint64_t rmax, std::uint64_t c0,
                                         std::uint64_t cmax,
                                         const cplx_t<T>& w1,
                                         std::uint64_t dst_col0) {
  const std::uint64_t n = rows * cols;
  const std::uint64_t tr = rmax - r0;
  cplx_t<T> w[kTransposeTile];
  cplx_t<T> stp[kTransposeTile];
  cplx_t<T> w_row = unit_root<T>(n, r0 * c0, dir);
  cplx_t<T> step = unit_root<T>(n, r0, dir);
  const cplx_t<T> w_col = unit_root<T>(n, c0, dir);
  for (std::uint64_t i = 0; i < tr; ++i) {
    w[i] = w_row;
    stp[i] = step;
    w_row *= w_col;
    step *= w1;
  }
  for (std::uint64_t c = c0; c < cmax; ++c) {
    cplx_t<T>* const out = dst + (c - dst_col0) * rows + r0;
    const cplx_t<T>* const in = src + r0 * cols + c;
    for (std::uint64_t i = 0; i < tr; ++i) {
      out[i] = in[i * cols] * w[i];
      w[i] *= stp[i];
    }
  }
}

/// dst[c * rows + r] = src[r * cols + c] for a row-major rows x cols
/// `src`. `dst` must not alias `src`. Throws std::invalid_argument on
/// size mismatch.
void transpose_blocked(std::span<const cplx> src, std::span<cplx> dst,
                       std::uint64_t rows, std::uint64_t cols);
void transpose_blocked(std::span<const cplx32> src, std::span<cplx32> dst,
                       std::uint64_t rows, std::uint64_t cols);

/// In-place transpose of a row-major n x n matrix.
void transpose_inplace_square(std::span<cplx> data, std::uint64_t n);
void transpose_inplace_square(std::span<cplx32> data, std::uint64_t n);

/// Fused twiddle-transpose of the four-step decomposition:
/// dst[c * rows + r] = src[r * cols + c] * W^(r*c) where W is the
/// (rows*cols)-th unit root of `dir`. `dst` must not alias `src`.
void transpose_twiddle_blocked(std::span<const cplx> src, std::span<cplx> dst,
                               std::uint64_t rows, std::uint64_t cols,
                               TwiddleDirection dir);
void transpose_twiddle_blocked(std::span<const cplx32> src, std::span<cplx32> dst,
                               std::uint64_t rows, std::uint64_t cols,
                               TwiddleDirection dir);

}  // namespace c64fft::fft
