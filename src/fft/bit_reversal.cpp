#include "fft/bit_reversal.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "codelet/host_runtime.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::fft {
namespace {

template <typename T>
void permute_impl(std::span<cplx_t<T>> data) {
  const std::uint64_t n = data.size();
  if (!util::is_pow2(n)) throw std::invalid_argument("bit_reverse_permute: non-power-of-two");
  const unsigned bits = util::ilog2(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t j = util::bit_reverse(i, bits);
    if (i < j) std::swap(data[i], data[j]);
  }
}

template <typename T>
void permute_parallel_impl(std::span<cplx_t<T>> data, unsigned workers,
                           unsigned chunks) {
  const std::uint64_t n = data.size();
  if (!util::is_pow2(n)) throw std::invalid_argument("bit_reverse_permute: non-power-of-two");
  if (workers <= 1 || n < 2) {
    permute_impl<T>(data);
    return;
  }
  if (chunks == 0) chunks = workers * 4;
  const unsigned bits = util::ilog2(n);
  const std::uint64_t chunk = std::max<std::uint64_t>(1, n / chunks);

  // Each codelet handles an index range; the i < j guard makes every swap
  // owned by exactly one codelet, so chunks are disjoint.
  codelet::HostRuntime rt(workers);
  std::vector<codelet::CodeletKey> seeds;
  for (std::uint64_t start = 0; start < n; start += chunk)
    seeds.push_back({0, start});
  rt.run_phase(seeds, codelet::PoolPolicy::kFifo,
               [&](codelet::CodeletKey key, unsigned, codelet::Pusher&) {
                 const std::uint64_t end = std::min(n, key.index + chunk);
                 for (std::uint64_t i = key.index; i < end; ++i) {
                   const std::uint64_t j = util::bit_reverse(i, bits);
                   if (i < j) std::swap(data[i], data[j]);
                 }
               });
}

}  // namespace

void bit_reverse_permute(std::span<cplx> data) { permute_impl<double>(data); }
void bit_reverse_permute(std::span<cplx32> data) { permute_impl<float>(data); }

void bit_reverse_permute_parallel(std::span<cplx> data, unsigned workers,
                                  unsigned chunks) {
  permute_parallel_impl<double>(data, workers, chunks);
}

void bit_reverse_permute_parallel(std::span<cplx32> data, unsigned workers,
                                  unsigned chunks) {
  permute_parallel_impl<float>(data, workers, chunks);
}

}  // namespace c64fft::fft
