#include "fft/plan.hpp"

#include <cassert>
#include <stdexcept>

#include "util/bit_ops.hpp"

namespace c64fft::fft {

unsigned validate_fft_shape(std::uint64_t n, unsigned radix_log2, bool clamp_radix) {
  if (n < 2) throw std::invalid_argument("fft: size must be >= 2");
  if (radix_log2 < 1 || radix_log2 > 8)
    throw std::invalid_argument("fft: radix_log2 must be in [1, 8]");
  const unsigned bits = util::ilog2(n);
  if (bits < radix_log2) {
    // Non-pow2 sizes run mixed-radix/Bluestein plans, which ignore the
    // radix entirely — a too-wide radix is never an error there, so the
    // strict (clamp_radix=false) throw stays a pow2-only contract.
    if (!clamp_radix && util::is_pow2(n))
      throw std::invalid_argument("fft: size must be at least the radix");
    return bits;
  }
  return radix_log2;
}

const char* to_string(PlanKind kind) noexcept {
  switch (kind) {
    case PlanKind::kFourStep:
      return "four-step";
    case PlanKind::kHierarchical:
      return "hierarchical";
    case PlanKind::kMixedRadix:
      return "mixed-radix";
    case PlanKind::kBluestein:
      return "bluestein";
    case PlanKind::kClassic:
    default:
      return "classic";
  }
}

FourStepSplit four_step_split(std::uint64_t n) {
  if (!util::is_pow2(n) || n < 4)
    throw std::invalid_argument("four_step_split: N must be a power of two >= 4");
  FourStepSplit split;
  split.n1 = std::uint64_t{1} << (util::ilog2(n) / 2);
  split.n2 = n / split.n1;
  return split;
}

unsigned hierarchical_leaf_log2(std::uint64_t cache_bytes, unsigned element_bytes) {
  if (element_bytes == 0) element_bytes = 16;
  // A leaf row sweep touches the row, the scratch it transposes into, and
  // the tile traffic around it; 8x headroom keeps a whole block of rows
  // resident while the next block streams in.
  const std::uint64_t points = cache_bytes / (std::uint64_t{8} * element_bytes);
  unsigned leaf = points < 2 ? 1 : util::ilog2(points);
  if (leaf < 4) leaf = 4;
  if (leaf > 16) leaf = 16;
  return leaf;
}

HierarchicalSplit hierarchical_split(std::uint64_t n, unsigned leaf_log2) {
  if (!util::is_pow2(n) || n < 4)
    throw std::invalid_argument(
        "hierarchical_split: N must be a power of two >= 4");
  if (leaf_log2 < 2) leaf_log2 = 2;
  if (leaf_log2 > 30) leaf_log2 = 30;
  const unsigned log2n = util::ilog2(n);
  HierarchicalSplit split;
  if (log2n <= 2 * leaf_log2) {
    // Both halves of the balanced split already fit the leaf: one level,
    // identical factors (and therefore identical numerics) to four-step.
    const FourStepSplit base = four_step_split(n);
    split.n1 = base.n1;
    split.n2 = base.n2;
  } else {
    split.n2 = std::uint64_t{1} << leaf_log2;
    split.n1 = n / split.n2;
    split.col_recursive = true;
    split.levels = 1 + hierarchical_split(split.n1, leaf_log2).levels;
  }
  return split;
}

FftPlan::FftPlan(std::uint64_t n, unsigned radix_log2)
    : n_(n), r_(validate_fft_shape(n, radix_log2, /*clamp_radix=*/false)) {
  // validate_fft_shape accepts any N >= 2 (composite sizes route to the
  // mixed-radix/Bluestein plans before ever reaching here), but this
  // stage/task algebra is pow2-only — keep the historical contract.
  if (!util::is_pow2(n))
    throw std::invalid_argument("FftPlan: size must be a power of two >= 2");
  log2n_ = util::ilog2(n);
  tasks_ = n_ >> r_;
  const std::uint32_t full = log2n_ / r_;
  const std::uint32_t rem = log2n_ % r_;
  const std::uint32_t count = full + (rem ? 1 : 0);
  stages_.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    StageInfo st;
    st.index = s;
    st.partial = (rem != 0 && s + 1 == count);
    st.levels = st.partial ? rem : r_;
    st.chain_len = std::uint64_t{1} << st.levels;
    st.chains_per_task = (std::uint64_t{1} << r_) / st.chain_len;
    st.chain_stride = std::uint64_t{1} << (r_ * s);
    stages_.push_back(st);
  }
}

std::uint64_t FftPlan::chain_base(std::uint32_t s, std::uint64_t i, std::uint64_t c) const {
  const StageInfo& st = stages_.at(s);
  assert(i < tasks_ && c < st.chains_per_task);
  if (!st.partial) {
    const std::uint64_t rj = rpow(s);
    return rpow(s + 1) * (i / rj) + (i % rj);
  }
  return st.chains_per_task * i + c;
}

std::uint64_t FftPlan::element_index(std::uint32_t s, std::uint64_t i, std::uint64_t k) const {
  const StageInfo& st = stages_.at(s);
  assert(k < radix());
  const std::uint64_t c = k / st.chain_len;
  const std::uint64_t q = k % st.chain_len;
  return chain_base(s, i, c) + q * st.chain_stride;
}

std::uint64_t FftPlan::twiddle_index(std::uint32_t s, std::uint64_t i, std::uint32_t v,
                                     std::uint64_t k) const {
  [[maybe_unused]] const StageInfo& st = stages_.at(s);
  assert(v < st.levels);
  assert((k % st.chain_len) % (std::uint64_t{2} << v) < (std::uint64_t{1} << v) &&
         "k must be the lower element of its butterfly");
  const std::uint64_t g_lo = element_index(s, i, k);
  const std::uint32_t level = r_ * s + v;  // global butterfly level L
  const std::uint64_t block = std::uint64_t{1} << level;
  return (g_lo % block) << (log2n_ - level - 1);
}

void FftPlan::task_elements(std::uint32_t s, std::uint64_t i,
                            std::vector<std::uint64_t>& out) const {
  out.clear();
  out.reserve(radix());
  for (std::uint64_t k = 0; k < radix(); ++k) out.push_back(element_index(s, i, k));
}

void FftPlan::task_twiddles(std::uint32_t s, std::uint64_t i,
                            std::vector<std::uint64_t>& out) const {
  const StageInfo& st = stages_.at(s);
  out.clear();
  out.reserve(twiddles_per_task(s));
  for (std::uint32_t v = 0; v < st.levels; ++v) {
    const std::uint64_t hw = std::uint64_t{1} << v;
    for (std::uint64_t c = 0; c < st.chains_per_task; ++c)
      for (std::uint64_t p = 0; p < hw; ++p)
        out.push_back(twiddle_index(s, i, v, c * st.chain_len + p));
  }
}

std::uint64_t FftPlan::twiddles_per_task(std::uint32_t s) const {
  const StageInfo& st = stages_.at(s);
  return st.chains_per_task * (st.chain_len - 1);
}

std::uint64_t FftPlan::flops_per_task(std::uint32_t s) const {
  // 10 real flops per 2-point butterfly (complex mul = 6, two complex
  // adds = 4); chains * chain_len/2 butterflies per level.
  const StageInfo& st = stages_.at(s);
  return 10 * st.chains_per_task * (st.chain_len / 2) * st.levels;
}

std::uint32_t FftPlan::group_threshold(std::uint32_t s) const {
  if (s == 0 || s >= stage_count())
    throw std::out_of_range("group_threshold: stage must be in [1, stages)");
  const StageInfo& st = stages_[s];
  if (!st.partial) return static_cast<std::uint32_t>(radix());
  const std::uint64_t rprev = rpow(s - 1);
  const std::uint64_t span = std::min(st.chains_per_task, rprev);
  return static_cast<std::uint32_t>((std::uint64_t{1} << st.levels) * span);
}

std::uint64_t FftPlan::groups_in_stage(std::uint32_t s) const {
  if (s == 0 || s >= stage_count())
    throw std::out_of_range("groups_in_stage: stage must be in [1, stages)");
  const StageInfo& st = stages_[s];
  if (!st.partial) return tasks_ / radix();
  const std::uint64_t rprev = rpow(s - 1);
  return st.chains_per_task >= rprev ? 1 : rprev / st.chains_per_task;
}

std::uint64_t FftPlan::group_size(std::uint32_t s) const {
  return tasks_ / groups_in_stage(s);
}

std::uint64_t FftPlan::group_of(std::uint32_t s, std::uint64_t l) const {
  if (s == 0 || s >= stage_count())
    throw std::out_of_range("group_of: stage must be in [1, stages)");
  assert(l < tasks_);
  const StageInfo& st = stages_[s];
  if (!st.partial) {
    const std::uint64_t rs = rpow(s);
    const std::uint64_t rprev = rpow(s - 1);
    return (l / rs) * rprev + (l % rprev);
  }
  const std::uint64_t groups = groups_in_stage(s);
  return l % groups;
}

std::uint64_t FftPlan::child_group(std::uint32_t s, std::uint64_t i) const {
  const std::uint32_t cs = s + 1;
  if (cs >= stage_count()) throw std::out_of_range("child_group: last stage has no children");
  assert(i < tasks_);
  const StageInfo& child = stages_[cs];
  if (!child.partial) {
    const std::uint64_t rnext = rpow(cs);
    const std::uint64_t rs = rpow(s);
    return (i / rnext) * rs + (i % rnext) % rs;
  }
  const std::uint64_t rs = rpow(s);
  if (child.chains_per_task >= rs) return 0;
  return (i % rs) / child.chains_per_task;
}

void FftPlan::group_members(std::uint32_t s, std::uint64_t g,
                            std::vector<std::uint64_t>& out) const {
  out.clear();
  const StageInfo& st = stages_.at(s);
  if (s == 0) throw std::out_of_range("group_members: stage must be >= 1");
  assert(g < groups_in_stage(s));
  if (!st.partial) {
    // Inverse of group_of: l = block*R^s + res + k*R^{s-1}. Note the
    // member ids coincide with the group's parent ids in stage s-1 —
    // exactly the paper's "80 + 4096*m" example (Section IV-A2).
    const std::uint64_t rprev = rpow(s - 1);
    const std::uint64_t block = g / rprev;
    const std::uint64_t res = g % rprev;
    out.reserve(radix());
    for (std::uint64_t k = 0; k < radix(); ++k)
      out.push_back(block * rpow(s) + res + k * rprev);
    return;
  }
  const std::uint64_t groups = groups_in_stage(s);
  out.reserve(tasks_ / groups);
  for (std::uint64_t l = g; l < tasks_; l += groups) out.push_back(l);
}

void FftPlan::group_parents(std::uint32_t s, std::uint64_t g,
                            std::vector<std::uint64_t>& out) const {
  out.clear();
  const StageInfo& st = stages_.at(s);
  if (s == 0) throw std::out_of_range("group_parents: stage must be >= 1");
  assert(g < groups_in_stage(s));
  const std::uint64_t rprev = rpow(s - 1);
  if (!st.partial) {
    const std::uint64_t block = g / rprev;
    const std::uint64_t res = g % rprev;
    out.reserve(radix());
    for (std::uint64_t m = 0; m < radix(); ++m)
      out.push_back(block * rpow(s) + res + m * rprev);
    return;
  }
  const std::uint64_t cpt = st.chains_per_task;
  const std::uint64_t residues = std::min(cpt, rprev);
  const std::uint64_t chains = st.chain_len;  // 2^w values of q
  out.reserve(chains * residues);
  for (std::uint64_t q = 0; q < chains; ++q)
    for (std::uint64_t c = 0; c < residues; ++c)
      out.push_back(q * rprev + (cpt * g + c) % rprev);
}

void FftPlan::children_of(std::uint32_t s, std::uint64_t i,
                          std::vector<std::uint64_t>& out) const {
  out.clear();
  if (s + 1 >= stage_count()) return;
  group_members(s + 1, child_group(s, i), out);
}

void FftPlan::parents_of(std::uint32_t s, std::uint64_t l,
                         std::vector<std::uint64_t>& out) const {
  group_parents(s, group_of(s, l), out);
}

}  // namespace c64fft::fft
