#include "fft/ordering.hpp"

#include <numeric>
#include <stdexcept>

#include "fft/plan.hpp"
#include "fft/types.hpp"
#include "util/bit_ops.hpp"
#include "util/prng.hpp"

namespace c64fft::fft {

std::vector<std::uint64_t> make_seed_order(SeedOrder order, std::uint64_t tasks,
                                           std::uint64_t seed) {
  std::vector<std::uint64_t> ids(tasks);
  std::iota(ids.begin(), ids.end(), std::uint64_t{0});
  switch (order) {
    case SeedOrder::kNatural:
      break;
    case SeedOrder::kReverse:
      std::reverse(ids.begin(), ids.end());
      break;
    case SeedOrder::kStrided: {
      if (!util::is_pow2(tasks))
        throw std::invalid_argument("make_seed_order: strided order needs power-of-two tasks");
      const unsigned bits = tasks > 1 ? util::ilog2(tasks) : 0;
      for (std::uint64_t i = 0; i < tasks; ++i) ids[i] = util::bit_reverse(i, bits);
      break;
    }
    case SeedOrder::kRandom: {
      util::Xoshiro256 rng(seed);
      rng.shuffle(std::span<std::uint64_t>(ids));
      break;
    }
  }
  return ids;
}

std::vector<FineOrdering> ordering_sweep() {
  using codelet::PoolPolicy;
  return {
      {PoolPolicy::kLifo, SeedOrder::kNatural, 1},
      {PoolPolicy::kLifo, SeedOrder::kReverse, 1},
      {PoolPolicy::kLifo, SeedOrder::kStrided, 1},
      {PoolPolicy::kLifo, SeedOrder::kRandom, 7},
      {PoolPolicy::kFifo, SeedOrder::kNatural, 1},
      {PoolPolicy::kFifo, SeedOrder::kStrided, 1},
  };
}

std::vector<std::uint64_t> guided_phase2_order(const FftPlan& plan, unsigned banks,
                                               unsigned interleave_bytes,
                                               unsigned elem_bytes) {
  const std::uint32_t last = plan.stage_count() - 1;
  if (last == 0) throw std::invalid_argument("guided_phase2_order: single-stage plan");
  const std::uint32_t penult = last - 1;
  const std::uint64_t groups = plan.groups_in_stage(last);

  // Bucket columns by the DRAM bank their members' gathered data lives
  // in (all members of a column share it). Bit-reversed enumeration
  // scatters adjacent columns before bucketing.
  std::vector<std::vector<std::uint64_t>> buckets(banks);
  std::vector<std::uint64_t> parents;
  const auto scatter = make_seed_order(SeedOrder::kStrided, groups, 1);
  for (std::uint64_t g : scatter) {
    plan.group_parents(last, g, parents);
    const std::uint64_t addr = plan.element_index(penult, parents.front(), 0) *
                               static_cast<std::uint64_t>(elem_bytes);
    buckets[(addr / interleave_bytes) % banks].push_back(g);
  }

  // Emit batches of up to `banks` columns (one per non-empty bucket),
  // member-interleaved.
  std::vector<std::uint64_t> out;
  out.reserve(plan.tasks_per_stage());
  std::vector<std::size_t> cursor(banks, 0);
  std::vector<std::vector<std::uint64_t>> batch;
  while (true) {
    batch.clear();
    for (unsigned b = 0; b < banks; ++b) {
      if (cursor[b] < buckets[b].size()) {
        plan.group_parents(last, buckets[b][cursor[b]++], parents);
        batch.push_back(parents);
      }
    }
    if (batch.empty()) break;
    const std::size_t members = batch.front().size();
    for (std::size_t m = 0; m < members; ++m)
      for (const auto& column : batch) out.push_back(column[m]);
  }
  if (out.size() != plan.tasks_per_stage())
    throw std::logic_error("guided_phase2_order: column cover mismatch");
  return out;
}

std::string to_string(SeedOrder order) {
  switch (order) {
    case SeedOrder::kNatural: return "natural";
    case SeedOrder::kReverse: return "reverse";
    case SeedOrder::kStrided: return "strided";
    case SeedOrder::kRandom: return "random";
  }
  return "?";
}

std::string to_string(const FineOrdering& o) {
  return std::string(o.policy == codelet::PoolPolicy::kLifo ? "lifo" : "fifo") + "/" +
         to_string(o.order);
}

}  // namespace c64fft::fft
