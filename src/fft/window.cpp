#include "fft/window.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace c64fft::fft {

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  if (n == 0) return {};
  std::vector<double> w(n, 1.0);
  const double step = 2.0 * std::numbers::pi / static_cast<double>(n);
  switch (kind) {
    case WindowKind::kRectangular:
      break;
    case WindowKind::kHann:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.5 - 0.5 * std::cos(step * static_cast<double>(i));
      break;
    case WindowKind::kHamming:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.54 - 0.46 * std::cos(step * static_cast<double>(i));
      break;
    case WindowKind::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double x = step * static_cast<double>(i);
        w[i] = 0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2.0 * x);
      }
      break;
  }
  return w;
}

void apply_window(WindowKind kind, std::span<double> signal) {
  if (kind == WindowKind::kRectangular) return;
  const auto w = make_window(kind, signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) signal[i] *= w[i];
}

double coherent_gain(WindowKind kind, std::size_t n) {
  if (n == 0) return 1.0;
  const auto w = make_window(kind, n);
  double sum = 0.0;
  for (double v : w) sum += v;
  return sum / static_cast<double>(n);
}

std::string to_string(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRectangular: return "rectangular";
    case WindowKind::kHann: return "hann";
    case WindowKind::kHamming: return "hamming";
    case WindowKind::kBlackman: return "blackman";
  }
  return "?";
}

}  // namespace c64fft::fft
