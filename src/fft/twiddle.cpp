#include "fft/twiddle.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace c64fft::fft {

template <typename T>
cplx_t<T> unit_root(std::uint64_t n, std::uint64_t t, TwiddleDirection direction) {
  const double angle =
      -2.0 * std::numbers::pi * static_cast<double>(t) / static_cast<double>(n);
  // The inverse root negates the imaginary part instead of flipping the
  // angle sign so it is the exact conjugate of the forward one. Narrowing
  // (for T = float) happens after the double-precision trig, so the f32
  // root is the rounding of the f64 one and the conjugate symmetry is
  // preserved bitwise at either precision.
  const double sign = direction == TwiddleDirection::kForward ? 1.0 : -1.0;
  return {static_cast<T>(std::cos(angle)), static_cast<T>(sign * std::sin(angle))};
}

template cplx_t<float> unit_root<float>(std::uint64_t, std::uint64_t, TwiddleDirection);
template cplx_t<double> unit_root<double>(std::uint64_t, std::uint64_t, TwiddleDirection);

cplx unit_root(std::uint64_t n, std::uint64_t t, TwiddleDirection direction) {
  return unit_root<double>(n, t, direction);
}

template <typename T>
BasicTwiddleTable<T>::BasicTwiddleTable(std::uint64_t n, TwiddleLayout layout,
                                        TwiddleDirection direction)
    : n_(n), layout_(layout), direction_(direction) {
  if (!util::is_pow2(n) || n < 2)
    throw std::invalid_argument("TwiddleTable: N must be a power of two >= 2");
  const std::uint64_t m = n / 2;
  bits_ = m > 1 ? util::ilog2(m) : 0;
  table_.resize(m);
  for (std::uint64_t t = 0; t < m; ++t)
    table_[storage_index(t)] = unit_root<T>(n, t, direction);
}

template class BasicTwiddleTable<float>;
template class BasicTwiddleTable<double>;

}  // namespace c64fft::fft
