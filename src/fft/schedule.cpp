#include "fft/schedule.hpp"

#include <sstream>
#include <stdexcept>

#include "util/bit_ops.hpp"
#include "util/json.hpp"

namespace c64fft::fft {

namespace {

Precision parse_precision(const std::string& name, std::size_t index) {
  if (name == "f32") return Precision::kF32;
  if (name == "f64") return Precision::kF64;
  throw std::invalid_argument("schedule entry " + std::to_string(index) +
                              ": unknown precision \"" + name + "\"");
}

std::uint64_t field_u64(const util::JsonValue& entry, const char* key,
                        std::size_t index) {
  const util::JsonValue* v = entry.find(key);
  if (v == nullptr || !v->is_number())
    throw std::invalid_argument("schedule entry " + std::to_string(index) +
                                ": missing numeric field \"" + key + "\"");
  const double d = v->as_number();
  if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d)))
    throw std::invalid_argument("schedule entry " + std::to_string(index) +
                                ": field \"" + key +
                                "\" is not a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

ScheduleSet parse_schedule_doc(const util::JsonValue& doc);

}  // namespace

void ScheduleSet::insert(const TunedSchedule& s) {
  for (TunedSchedule& e : entries_) {
    if (e.n == s.n && e.precision == s.precision && e.isa == s.isa) {
      e = s;
      return;
    }
  }
  entries_.push_back(s);
}

std::optional<TunedSchedule> ScheduleSet::find(std::uint64_t n,
                                               Precision precision,
                                               util::IsaLevel isa) const {
  for (const TunedSchedule& e : entries_)
    if (e.n == n && e.precision == precision && e.isa == isa) return e;
  return std::nullopt;
}

std::string ScheduleSet::to_json() const {
  std::ostringstream out;
  out << "{\n  \"version\": 1,\n  \"schedules\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const TunedSchedule& e = entries_[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"n\": " << e.n << ", \"precision\": \""
        << fft::to_string(e.precision) << "\", \"isa\": \""
        << util::to_string(e.isa) << "\", \"radix_log2\": " << e.radix_log2
        << ", \"fuse_log2\": " << e.fuse_log2;
    // Emitted only when tuned: files without hierarchical knobs stay
    // byte-identical to the pre-hierarchical format.
    if (e.hier_leaf_log2 != 0)
      out << ", \"hier_leaf_log2\": " << e.hier_leaf_log2;
    if (e.hier_block_rows != 0)
      out << ", \"hier_block_rows\": " << e.hier_block_rows;
    out << "}";
  }
  out << (entries_.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out.str();
}

ScheduleSet ScheduleSet::from_json(const std::string& text) {
  return parse_schedule_doc(util::json_parse(text));
}

ScheduleSet ScheduleSet::load_file(const std::string& path) {
  return parse_schedule_doc(util::json_parse_file(path));
}

namespace {

ScheduleSet parse_schedule_doc(const util::JsonValue& doc) {
  if (!doc.is_object())
    throw std::invalid_argument("schedule file: top level is not an object");
  const util::JsonValue* list = doc.find("schedules");
  if (list == nullptr || !list->is_array())
    throw std::invalid_argument("schedule file: missing \"schedules\" array");

  ScheduleSet set;
  std::size_t index = 0;
  for (const util::JsonValue& entry : list->items()) {
    if (!entry.is_object())
      throw std::invalid_argument("schedule entry " + std::to_string(index) +
                                  ": not an object");
    TunedSchedule s;
    s.n = field_u64(entry, "n", index);
    if (s.n == 0 || !util::is_pow2(s.n))
      throw std::invalid_argument("schedule entry " + std::to_string(index) +
                                  ": n must be a power of two");

    const util::JsonValue* prec = entry.find("precision");
    if (prec == nullptr || !prec->is_string())
      throw std::invalid_argument("schedule entry " + std::to_string(index) +
                                  ": missing string field \"precision\"");
    s.precision = parse_precision(prec->as_string(), index);

    const util::JsonValue* isa = entry.find("isa");
    if (isa == nullptr || !isa->is_string())
      throw std::invalid_argument("schedule entry " + std::to_string(index) +
                                  ": missing string field \"isa\"");
    const std::optional<util::IsaLevel> level =
        util::parse_isa_name(isa->as_string());
    if (!level || isa->as_string() == "auto")
      throw std::invalid_argument("schedule entry " + std::to_string(index) +
                                  ": unknown isa \"" + isa->as_string() + "\"");
    s.isa = *level;

    // Same range validate_fft_shape enforces, so a loaded schedule can
    // never make a plan build throw that would not have thrown anyway.
    s.radix_log2 = static_cast<std::uint32_t>(field_u64(entry, "radix_log2", index));
    if (s.radix_log2 < 1 || s.radix_log2 > 8)
      throw std::invalid_argument("schedule entry " + std::to_string(index) +
                                  ": radix_log2 out of range [1, 8]");

    s.fuse_log2 = static_cast<std::uint32_t>(field_u64(entry, "fuse_log2", index));
    if (s.fuse_log2 != 0 && s.fuse_log2 != 2 && s.fuse_log2 != 3)
      throw std::invalid_argument("schedule entry " + std::to_string(index) +
                                  ": fuse_log2 must be 0, 2, or 3");

    // Optional hierarchical knobs; absent (the pre-hierarchical file
    // format) means 0 = planner default. Same clamp ranges the planner
    // itself enforces, so a loaded value can never build a degenerate
    // split.
    if (entry.find("hier_leaf_log2") != nullptr) {
      s.hier_leaf_log2 =
          static_cast<std::uint32_t>(field_u64(entry, "hier_leaf_log2", index));
      if (s.hier_leaf_log2 != 0 &&
          (s.hier_leaf_log2 < 4 || s.hier_leaf_log2 > 16))
        throw std::invalid_argument("schedule entry " + std::to_string(index) +
                                    ": hier_leaf_log2 out of range [4, 16]");
    }
    if (entry.find("hier_block_rows") != nullptr) {
      s.hier_block_rows =
          static_cast<std::uint32_t>(field_u64(entry, "hier_block_rows", index));
      if (s.hier_block_rows > 4096)
        throw std::invalid_argument("schedule entry " + std::to_string(index) +
                                    ": hier_block_rows out of range [0, 4096]");
    }

    set.insert(s);
    ++index;
  }
  return set;
}

}  // namespace

}  // namespace c64fft::fft
