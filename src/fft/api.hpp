#pragma once
// Public façade of the library: one-call forward/inverse transforms on
// the host codelet runtime, plus convenience spectrum helpers used by the
// examples. Include this (and fft/fft2d.hpp for 2-D) to consume the
// library; the lower-level headers stay available for research use.

#include <span>
#include <vector>

#include "fft/variants.hpp"

namespace c64fft::fft {

/// In-place forward FFT. Defaults: fine-grain algorithm (Alg. 2), radix
/// 64, LIFO/natural ordering, linear twiddles. The cplx32 overloads run
/// the single-precision engine (same plan algebra, f32 twiddles/kernels,
/// distinct plan-cache entries) on the same process-wide executor.
void forward(std::span<cplx> data, const HostFftOptions& opts = {},
             Variant variant = Variant::kFine);
void forward(std::span<cplx32> data, const HostFftOptions& opts = {},
             Variant variant = Variant::kFine);

/// In-place inverse FFT (unitary 1/N scaling), same engine.
void inverse(std::span<cplx> data, const HostFftOptions& opts = {},
             Variant variant = Variant::kFine);
void inverse(std::span<cplx32> data, const HostFftOptions& opts = {},
             Variant variant = Variant::kFine);

/// Out-of-place convenience forms.
std::vector<cplx> forward_copy(std::span<const cplx> data,
                               const HostFftOptions& opts = {},
                               Variant variant = Variant::kFine);
std::vector<cplx32> forward_copy(std::span<const cplx32> data,
                                 const HostFftOptions& opts = {},
                                 Variant variant = Variant::kFine);
std::vector<cplx> inverse_copy(std::span<const cplx> data,
                               const HostFftOptions& opts = {},
                               Variant variant = Variant::kFine);
std::vector<cplx32> inverse_copy(std::span<const cplx32> data,
                                 const HostFftOptions& opts = {},
                                 Variant variant = Variant::kFine);

/// Power spectrum |X[k]|^2 / N of a real-valued signal (returns N/2+1
/// bins). Pads to the next power of two >= max(n, radix).
std::vector<double> power_spectrum(std::span<const double> signal,
                                   const HostFftOptions& opts = {});

/// Circular convolution of two equal-length sequences via FFT (pointwise
/// product in the frequency domain). Any length N >= 2 is accepted and
/// ALWAYS runs transforms of the exact length: 7-smooth composites take
/// the factorization-driven mixed-radix plan, and prime/awkward lengths
/// take Bluestein, whose pow2 padding is internal to the executor.
/// Padding to the next pow2 at this layer would change the convolution's
/// period — not merely its cost — so the exact-N plan is both the cheaper
/// and the only correct choice.
std::vector<cplx> circular_convolve(std::span<const cplx> a, std::span<const cplx> b,
                                    const HostFftOptions& opts = {});

}  // namespace c64fft::fft
