#pragma once
// Thread-safe LRU cache of immutable FFT plan entries.
//
// The paper's codelet model assumes the plan, twiddle table, and
// dependency-counter shape exist once and transforms stream through them;
// this cache is that amortization layer. A PlanEntry bundles everything a
// transform of a given shape needs that does not depend on the data
// buffer: the FftPlan index algebra, the forward (and lazily the
// conjugated inverse) TwiddleTable, and the counter template
// (groups/thresholds per stage) from which per-transform
// DependencyCounters instances are stamped out. Entries are immutable and
// handed out as shared_ptr<const PlanEntry>, so a cache eviction never
// invalidates a transform in flight. See DESIGN.md "Executor & plan
// cache".

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "codelet/dep_counter.hpp"
#include "fft/mixed_radix.hpp"
#include "fft/plan.hpp"
#include "fft/schedule.hpp"
#include "fft/twiddle.hpp"

namespace c64fft::fft {

/// Everything that distinguishes one cached plan from another. The
/// scheduling variant is deliberately NOT part of the key: all three
/// variants share the same plan/twiddles/counter shape, so one entry
/// serves them all. `kind` IS part of the key — the classic and the
/// four-step decomposition of one size are distinct entries, so toggling
/// the executor threshold never invalidates either. `precision` is part of
/// the key too: an f32 and an f64 transform of the same shape share
/// nothing but the index algebra, and the twiddle tables they pin differ
/// in both element width and content, so they must age through the LRU as
/// separate entries.
struct PlanKey {
  std::uint64_t n = 0;
  unsigned radix_log2 = 6;
  TwiddleLayout layout = TwiddleLayout::kLinear;
  PlanKind kind = PlanKind::kClassic;
  Precision precision = Precision::kF64;
  /// kHierarchical only: the leaf cap (log2 points) the planner split this
  /// entry with; 0 everywhere else. Part of the key so a re-tuned leaf
  /// builds a fresh entry instead of silently reusing the old split.
  unsigned hier_leaf_log2 = 0;
  /// kMixedRadix only: factorization_digest() of the stage vector — the
  /// key's fixed-width image of the factorization (deterministic from n
  /// today, but part of the key so a future planner that chooses between
  /// factorizations of one n keys them apart). 0 everywhere else,
  /// including kBluestein (the residue is keyed by n itself).
  std::uint64_t factor_digest = 0;

  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept {
    std::uint64_t h = k.n * 0x9e3779b97f4a7c15ull;
    h ^= (std::uint64_t{k.radix_log2} << 1) ^
         (std::uint64_t{k.hier_leaf_log2} << 40) ^
         (k.factor_digest * 0xff51afd7ed558ccdull) ^
         (k.layout == TwiddleLayout::kBitReversed ? 0x85ebca77ull : 0) ^
         (k.kind == PlanKind::kFourStep ? 0xc2b2ae3d27d4eb4full : 0) ^
         (k.kind == PlanKind::kHierarchical ? 0x2545f4914f6cdd1dull : 0) ^
         (k.kind == PlanKind::kMixedRadix ? 0x94d049bb133111ebull : 0) ^
         (k.kind == PlanKind::kBluestein ? 0xbf58476d1ce4e5b9ull : 0) ^
         (k.precision == Precision::kF32 ? 0xa0761d6478bd642full : 0);
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

class PlanEntry {
 public:
  /// Builds a classic, mixed-radix, or Bluestein entry from the key kind:
  /// classic gets the FftPlan, forward twiddle table, and counter
  /// template; mixed-radix gets the MixedRadixPlan (stage vector +
  /// digit-reversal permutation) and its flat per-stage forward twiddles;
  /// Bluestein gets the length-n chirp and the length-M FFT of the chirp
  /// filter (M = bluestein_fft_size(n)) — the runtime convolution's pow2
  /// plans are acquired separately from the shared cache. All kinds build
  /// only the key's precision eagerly (f32 tables are narrowed images of
  /// the double-evaluated values) and the inverse-direction tables
  /// lazily. Throws std::invalid_argument for bad shapes (no radix
  /// clamping here — callers validate first).
  explicit PlanEntry(const PlanKey& key);

  /// Builds a four-step entry: no plan/twiddles/counters of its own, just
  /// the balanced split and pinned classic sub-entries for the column
  /// (length n1) and row (length n2) batches. The inter-step twiddles are
  /// generated on the fly by transpose_twiddle_blocked, so a four-step
  /// entry is O(n1 + n2) where a classic entry would be O(N).
  PlanEntry(const PlanKey& key, FourStepSplit split,
            std::shared_ptr<const PlanEntry> col_entry,
            std::shared_ptr<const PlanEntry> row_entry);

  /// Builds a hierarchical entry: like the four-step constructor, but the
  /// column sub-entry may itself be hierarchical (the recursive split of
  /// a still-too-large n1); the row sub-entry is always a classic
  /// cache-resident leaf. `split.levels` is the total level count of this
  /// subtree, surfaced via levels().
  PlanEntry(const PlanKey& key, HierarchicalSplit split,
            std::shared_ptr<const PlanEntry> col_entry,
            std::shared_ptr<const PlanEntry> row_entry);

  PlanEntry(const PlanEntry&) = delete;
  PlanEntry& operator=(const PlanEntry&) = delete;

  const PlanKey& key() const noexcept { return key_; }
  PlanKind kind() const noexcept { return key_.kind; }
  Precision precision() const noexcept { return key_.precision; }

  /// Classic entries only (four-step entries have no monolithic plan).
  const FftPlan& plan() const { return *require_classic().plan_; }

  /// Forward table always exists; the conjugated inverse table is built on
  /// first request and cached for the entry's lifetime. Classic only.
  /// Only the key's precision is materialized: `twiddles` serves kF64
  /// entries, `twiddles_f32` serves kF32 ones, and asking an entry for the
  /// other width throws std::logic_error (an entry never silently holds
  /// both tables — that would double the cache's memory accounting).
  const TwiddleTable& twiddles(TwiddleDirection dir) const;
  const TwiddleTableF& twiddles_f32(TwiddleDirection dir) const;

  /// Precision-generic accessor for templated executor internals.
  template <typename T>
  const BasicTwiddleTable<T>& twiddles_for(TwiddleDirection dir) const {
    if constexpr (std::is_same_v<T, float>)
      return twiddles_f32(dir);
    else
      return twiddles(dir);
  }

  /// Fresh per-transform counter set matching this plan (stage 0 has no
  /// producers; stages 1..S-1 use the plan's sibling-group algebra). Both
  /// the fine and guided drivers consume this full-range shape. Classic
  /// only.
  codelet::DependencyCounters make_counters() const {
    const PlanEntry& e = require_classic();
    return codelet::DependencyCounters(e.groups_, e.thresholds_);
  }

  // ---- Composite (four-step / hierarchical) entries only ----

  const FourStepSplit& split() const { return require_composite().split_; }
  const std::shared_ptr<const PlanEntry>& col_entry() const {
    return require_composite().col_entry_;
  }
  const std::shared_ptr<const PlanEntry>& row_entry() const {
    return require_composite().row_entry_;
  }
  /// Total decomposition levels of this subtree (1 for four-step and for
  /// a single-level hierarchical entry; grows with each recursive column
  /// split). Composite only.
  unsigned levels() const { return require_composite().levels_; }

  // ---- Mixed-radix entries only ----

  const MixedRadixPlan& mixed_plan() const;
  /// Flat per-stage twiddle vector (mixed_radix_twiddles layout). Forward
  /// always exists at the key's precision; inverse builds lazily. Asking
  /// for the other precision throws std::logic_error, mirroring
  /// twiddles()/twiddles_f32().
  std::span<const cplx> mixed_twiddles(TwiddleDirection dir) const;
  std::span<const cplx32> mixed_twiddles_f32(TwiddleDirection dir) const;
  template <typename T>
  std::span<const cplx_t<T>> mixed_twiddles_for(TwiddleDirection dir) const {
    if constexpr (std::is_same_v<T, float>)
      return mixed_twiddles_f32(dir);
    else
      return mixed_twiddles(dir);
  }

  // ---- Bluestein entries only ----

  /// Convolution length M = bluestein_fft_size(n) of this entry.
  std::uint64_t conv_size() const;
  /// Chirp c[j] = exp(-+ pi i j^2 / n), length n, for the given OUTER
  /// transform direction (the inner M-point FFTs are always one forward
  /// plus one inverse regardless).
  std::span<const cplx> chirp(TwiddleDirection dir) const;
  std::span<const cplx32> chirp_f32(TwiddleDirection dir) const;
  /// FFT_M of the chirp filter b (b[j] = b[M-j] = conj(c[j])), length M.
  std::span<const cplx> chirp_fft(TwiddleDirection dir) const;
  std::span<const cplx32> chirp_fft_f32(TwiddleDirection dir) const;
  template <typename T>
  std::span<const cplx_t<T>> chirp_for(TwiddleDirection dir) const {
    if constexpr (std::is_same_v<T, float>)
      return chirp_f32(dir);
    else
      return chirp(dir);
  }
  template <typename T>
  std::span<const cplx_t<T>> chirp_fft_for(TwiddleDirection dir) const {
    if constexpr (std::is_same_v<T, float>)
      return chirp_fft_f32(dir);
    else
      return chirp_fft(dir);
  }

 private:
  const PlanEntry& require_classic() const;
  const PlanEntry& require_composite() const;
  const PlanEntry& require_mixed() const;
  const PlanEntry& require_bluestein() const;
  void build_bluestein(TwiddleDirection dir, std::vector<cplx>& chirp_out,
                       std::vector<cplx>& bfft_out) const;
  void build_inverse_tables() const;

  PlanKey key_;
  // Classic state (null for four-step entries). Exactly one of the
  // forward_/forward32_ pair is populated, chosen by key_.precision.
  std::unique_ptr<FftPlan> plan_;
  std::unique_ptr<TwiddleTable> forward_;
  std::unique_ptr<TwiddleTableF> forward32_;
  mutable std::once_flag inverse_once_;
  mutable std::unique_ptr<TwiddleTable> inverse_;
  mutable std::unique_ptr<TwiddleTableF> inverse32_;
  std::vector<std::uint64_t> groups_;
  std::vector<std::uint32_t> thresholds_;
  // Composite state (empty for classic entries).
  FourStepSplit split_;
  unsigned levels_ = 1;
  std::shared_ptr<const PlanEntry> col_entry_;
  std::shared_ptr<const PlanEntry> row_entry_;
  // Mixed-radix state (kMixedRadix only). One precision populated, like
  // the classic tables; inverse vectors fill under inverse_once_.
  std::unique_ptr<MixedRadixPlan> mixed_;
  std::vector<cplx> mixed_fwd_;
  std::vector<cplx32> mixed_fwd32_;
  mutable std::vector<cplx> mixed_inv_;
  mutable std::vector<cplx32> mixed_inv32_;
  // Bluestein state (kBluestein only): chirp (length n) and chirp-filter
  // FFT (length M) per outer direction, one precision populated.
  std::uint64_t conv_n_ = 0;
  std::vector<cplx> chirp_fwd_;
  std::vector<cplx32> chirp_fwd32_;
  std::vector<cplx> bfft_fwd_;
  std::vector<cplx32> bfft_fwd32_;
  mutable std::vector<cplx> chirp_inv_;
  mutable std::vector<cplx32> chirp_inv32_;
  mutable std::vector<cplx> bfft_inv_;
  mutable std::vector<cplx32> bfft_inv32_;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Entries resident at the time of the stats() call (<= capacity). A
  /// snapshot, not a counter — together with hits/misses/evictions it is
  /// the residency picture fft_loadgen and fft_lint --cache-stats print.
  std::uint64_t entries = 0;
};

/// Mutex-guarded LRU map from PlanKey to shared immutable PlanEntry.
/// Entry construction (the O(N) trig) happens outside the lock; when two
/// threads race to build the same key the first insertion wins and the
/// loser adopts the resident entry.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 16);

  /// Return the cached entry for `key`, building and inserting it on miss
  /// (evicting the least recently used entry when over capacity). A
  /// kFourStep key first acquires the two classic sub-entries (length n1
  /// and n2, radix clamped per sub-size), so those stay independently
  /// cached and shared with direct transforms of the same size. A
  /// kHierarchical key does the same recursively: the row leaf is always
  /// classic, and the column sub-entry re-acquires as kHierarchical (same
  /// leaf cap) while it is still too large for the leaf. A kHierarchical
  /// key with hier_leaf_log2 == 0 resolves the cap from the measured
  /// cache hierarchy (util::cache_info) at acquire time.
  std::shared_ptr<const PlanEntry> acquire(const PlanKey& key);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  PlanCacheStats stats() const;
  void clear();

  /// Replace the resident tuned-schedule set (tools/fft_tune output). The
  /// schedules steer which PlanKeys future acquire() callers build — the
  /// entries already cached stay valid, so swapping schedules mid-run is
  /// safe (at worst the old-shaped entries age out through the LRU).
  void set_schedules(ScheduleSet schedules);

  /// Tuned schedule for (n, precision, isa), if one was loaded. Serves the
  /// executor's per-transform lookup; lock cost is one uncontended mutex
  /// plus a linear scan of a tens-of-entries vector.
  std::optional<TunedSchedule> tuned_for(std::uint64_t n, Precision precision,
                                         util::IsaLevel isa) const;

 private:
  using LruList = std::list<std::pair<PlanKey, std::shared_ptr<const PlanEntry>>>;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::unordered_map<PlanKey, LruList::iterator, PlanKeyHash> map_;
  PlanCacheStats stats_;
  ScheduleSet schedules_;
};

}  // namespace c64fft::fft
