#pragma once
// Allocation-free latency histogram for the serving front-end.
//
// Completion latency is recorded on the hot path (once per request, by
// the dispatcher thread), so the recorder must be wait-free and must not
// allocate. This is a fixed log-linear histogram: each power-of-two
// octave of nanoseconds is split into 4 linear sub-buckets, giving
// <= 19% relative quantile error over the full uint64 range for 256
// atomic counters. Quantile extraction walks the array and interpolates
// linearly inside the landing bucket — that only runs in stats(), off
// the hot path.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace c64fft::serve {

struct LatencySnapshot {
  std::uint64_t count = 0;
  std::uint64_t max_ns = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 2;  // 4 sub-buckets per octave
  static constexpr std::size_t kBuckets = 64u << kSubBits;

  /// Wait-free, allocation-free; safe from any thread.
  void record(std::uint64_t ns) noexcept {
    counts_[bucket(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    while (prev < ns &&
           !max_ns_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
    }
  }

  LatencySnapshot snapshot() const {
    std::array<std::uint64_t, kBuckets> c;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      c[i] = counts_[i].load(std::memory_order_relaxed);
      total += c[i];
    }
    LatencySnapshot s;
    s.count = total;
    s.max_ns = max_ns_.load(std::memory_order_relaxed);
    if (total == 0) return s;
    s.mean_ns = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
                static_cast<double>(total);
    s.p50_ns = quantile(c, total, 0.50);
    s.p99_ns = quantile(c, total, 0.99);
    return s;
  }

 private:
  static std::size_t bucket(std::uint64_t ns) noexcept {
    // Values below 2^kSubBits index their own exact bucket; above that the
    // octave comes from the leading bit and the sub-bucket from the next
    // kSubBits bits.
    if (ns < (1u << kSubBits)) return static_cast<std::size_t>(ns);
    const unsigned exp = std::bit_width(ns) - 1;
    const unsigned sub =
        static_cast<unsigned>((ns >> (exp - kSubBits)) & ((1u << kSubBits) - 1));
    return (static_cast<std::size_t>(exp) << kSubBits) | sub;
  }

  /// Inclusive lower edge of bucket i (inverse of bucket()).
  static double bucket_lo(std::size_t i) noexcept {
    const unsigned exp = static_cast<unsigned>(i >> kSubBits);
    const unsigned sub = static_cast<unsigned>(i & ((1u << kSubBits) - 1));
    if (exp < kSubBits) return static_cast<double>(i);
    const double base = static_cast<double>(std::uint64_t{1} << exp);
    return base + static_cast<double>(sub) * (base / (1u << kSubBits));
  }

  static double quantile(const std::array<std::uint64_t, kBuckets>& c,
                         std::uint64_t total, double q) noexcept {
    const double target = q * static_cast<double>(total);
    double seen = 0.0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (c[i] == 0) continue;
      const double next = seen + static_cast<double>(c[i]);
      if (next >= target) {
        const double frac = (target - seen) / static_cast<double>(c[i]);
        const double lo = bucket_lo(i);
        const double hi = i + 1 < kBuckets ? bucket_lo(i + 1) : lo * 2.0;
        return lo + frac * (hi - lo);
      }
      seen = next;
    }
    return bucket_lo(kBuckets - 1);
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace c64fft::serve
