#pragma once
// Heap-allocation probe for the zero-allocation serving contract.
//
// The serving layer promises an allocation-free steady-state
// submit→complete path; this header makes that promise measurable
// instead of aspirational. A binary that defines
// C64FFT_ALLOC_PROBE_IMPLEMENT in EXACTLY ONE translation unit gets
// process-wide replacement operator new/delete that bump a thread-local
// counter on every allocation; test_serve_alloc asserts the counter does
// not move across the steady-state loop, and tools/fft_loadgen reports
// it per run. Binaries that do not opt in are completely unaffected —
// nothing here is linked into the library.
//
// The counter is thread-local on purpose: the client thread's count
// covers submit()/wait() without cross-thread noise, and passing
// &thread_alloc_count as ServerOptions::alloc_probe has the dispatcher
// bracket its executor calls with it, splitting that thread's count
// into executor-internal allocations (the phased scheduler's task
// bookkeeping at workers >= 2) and the serving layer's own
// drain/group/complete path — which is the count that must stay at
// zero in steady state.

#include <cstdint>

namespace c64fft::serve {

/// Allocations performed by THIS thread since it started (only counted
/// in binaries that implement the probe; always 0 elsewhere).
std::uint64_t thread_alloc_count() noexcept;

}  // namespace c64fft::serve

#ifdef C64FFT_ALLOC_PROBE_IMPLEMENT

#include <cstdlib>
#include <new>

namespace c64fft::serve::detail {
// Plain uint64 TLS (not an atomic): each thread only touches its own.
inline thread_local std::uint64_t t_alloc_count = 0;
}  // namespace c64fft::serve::detail

namespace c64fft::serve {
std::uint64_t thread_alloc_count() noexcept { return detail::t_alloc_count; }
}  // namespace c64fft::serve

namespace {

void* probe_alloc(std::size_t size) {
  ++c64fft::serve::detail::t_alloc_count;
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* probe_alloc_aligned(std::size_t size, std::size_t align) {
  ++c64fft::serve::detail::t_alloc_count;
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of alignment.
  size = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return probe_alloc(size); }
void* operator new[](std::size_t size) { return probe_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return probe_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return probe_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#else  // !C64FFT_ALLOC_PROBE_IMPLEMENT

namespace c64fft::serve {
inline std::uint64_t thread_alloc_count() noexcept { return 0; }
}  // namespace c64fft::serve

#endif  // C64FFT_ALLOC_PROBE_IMPLEMENT
