#include "serve/server.hpp"

#include <algorithm>
#include <exception>

namespace c64fft::serve {

namespace {

/// Admission check: any length >= 2 is servable — the executor routes
/// pow2 sizes through the classic/four-step/hierarchical plans and
/// composite/prime sizes through mixed-radix/Bluestein.
bool valid_size(std::uint64_t n) noexcept { return n >= 2; }

/// rejects_ array index for a non-accepted status.
std::size_t reject_index(SubmitStatus s) noexcept {
  return static_cast<std::size_t>(s) - 1;
}

}  // namespace

const char* to_string(SubmitStatus s) noexcept {
  switch (s) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kShuttingDown: return "shutting-down";
    case SubmitStatus::kInvalidSize: return "invalid-size";
    case SubmitStatus::kUnknownTenant: return "unknown-tenant";
    case SubmitStatus::kPlanQuotaExceeded: return "plan-quota-exceeded";
  }
  return "?";
}

// ---- Ticket ----

Ticket& Ticket::operator=(Ticket&& other) noexcept {
  if (this != &other) {
    if (server_ != nullptr) server_->ticket_wait(slot_);
    server_ = other.server_;
    slot_ = other.slot_;
    other.server_ = nullptr;
  }
  return *this;
}

Ticket::~Ticket() {
  if (server_ != nullptr) server_->ticket_wait(slot_);
}

Completion Ticket::wait() {
  FftServer* s = server_;
  server_ = nullptr;
  return s->ticket_wait(slot_);
}

// ---- FftServer ----

FftServer::FftServer(const ServerOptions& opts) : opts_(opts), arena_(opts.arena) {
  opts_.queue_capacity = std::max<std::size_t>(1, opts_.queue_capacity);
  opts_.max_coalesce = std::max<std::uint32_t>(1, opts_.max_coalesce);
  for (std::size_t& cap : opts_.lane_capacity)
    if (cap == 0) cap = opts_.queue_capacity;

  if (opts_.executor != nullptr) {
    exec_ = opts_.executor;
  } else {
    fft::ExecutorOptions eo;
    eo.workers = opts_.workers;
    eo.capacity = std::max<std::size_t>(1, opts_.executor_cache_capacity);
    owned_exec_ = std::make_unique<fft::FftExecutor>(eo);
    exec_ = owned_exec_.get();
  }

  slots_ = std::make_unique<Slot[]>(opts_.queue_capacity);
  free_.reserve(opts_.queue_capacity);
  for (std::size_t i = opts_.queue_capacity; i-- > 0;)
    free_.push_back(static_cast<std::uint32_t>(i));
  for (std::size_t lane = 0; lane < kLaneCount; ++lane)
    lanes_[lane].buf.resize(opts_.lane_capacity[lane]);

  batch_.resize(opts_.max_coalesce);
  grouped_.resize(opts_.max_coalesce);
  group_.reserve(opts_.max_coalesce);
  spans64_.reserve(opts_.max_coalesce);
  spans32_.reserve(opts_.max_coalesce);

  exec_->set_phase_hook([this](const codelet::PhaseStats& ps) {
    phases_.fetch_add(1, std::memory_order_relaxed);
    codelets_.fetch_add(ps.executed, std::memory_order_relaxed);
  });

  dispatcher_ = std::thread(&FftServer::dispatch_loop, this);
}

FftServer::~FftServer() { shutdown(); }

TenantId FftServer::add_tenant(const TenantQuota& quota) {
  std::lock_guard lock(admit_mutex_);
  const TenantId id = static_cast<TenantId>(tenants_.size());
  tenants_.push_back(TenantState{quota, {}});
  tenants_.back().shapes.reserve(quota.max_plan_shapes);
  arena_.set_tenant_quota(id, quota.max_arena_bytes);
  return id;
}

SubmitResult FftServer::submit(TenantId tenant, std::span<fft::cplx> data,
                               Direction dir, Lane lane, CompletionFn cb,
                               void* ctx) {
  return submit_impl(tenant, data.data(), data.size(), fft::Precision::kF64,
                     dir, lane, cb, ctx);
}

SubmitResult FftServer::submit(TenantId tenant, std::span<fft::cplx32> data,
                               Direction dir, Lane lane, CompletionFn cb,
                               void* ctx) {
  return submit_impl(tenant, data.data(), data.size(), fft::Precision::kF32,
                     dir, lane, cb, ctx);
}

SubmitResult FftServer::submit_impl(TenantId tenant, void* data,
                                    std::uint64_t n, fft::Precision precision,
                                    Direction dir, Lane lane, CompletionFn cb,
                                    void* ctx) {
  const auto t_submit = std::chrono::steady_clock::now();
  std::uint32_t slot_idx;
  {
    std::lock_guard lock(admit_mutex_);
    const auto reject = [this](SubmitStatus s) {
      ++rejects_[reject_index(s)];
      return SubmitResult{s, {}};
    };
    if (!accepting_.load(std::memory_order_relaxed))
      return reject(SubmitStatus::kShuttingDown);
    if (data == nullptr || !valid_size(n))
      return reject(SubmitStatus::kInvalidSize);
    if (tenant >= tenants_.size()) return reject(SubmitStatus::kUnknownTenant);

    // Plan-shape quota: first submission of a new (n, precision) pair
    // charges one of the tenant's max_plan_shapes entries, permanently.
    // The scan is linear over a handful of shapes; the push_back lands in
    // capacity reserved at add_tenant, so admission never allocates.
    TenantState& ts = tenants_[tenant];
    const std::pair<std::uint64_t, fft::Precision> shape{n, precision};
    if (std::find(ts.shapes.begin(), ts.shapes.end(), shape) ==
        ts.shapes.end()) {
      if (ts.shapes.size() >= ts.quota.max_plan_shapes)
        return reject(SubmitStatus::kPlanQuotaExceeded);
      ts.shapes.push_back(shape);
    }

    Ring& ring = lanes_[static_cast<std::size_t>(lane)];
    if (free_.empty() || ring.full()) return reject(SubmitStatus::kQueueFull);

    slot_idx = free_.back();
    free_.pop_back();
    Slot& s = slots_[slot_idx];
    s.data = data;
    s.n = n;
    s.precision = precision;
    s.dir = dir;
    s.tenant = tenant;
    s.cb = cb;
    s.ctx = ctx;
    s.t_submit = t_submit;
    s.done = false;  // slot is exclusively ours until the ring push below
    ring.push(slot_idx);
    ++depth_;
    ++submitted_;
  }
  dispatch_cv_.notify_all();
  if (cb != nullptr) return {SubmitStatus::kAccepted, {}};
  return {SubmitStatus::kAccepted, Ticket(this, slot_idx)};
}

void FftServer::dispatch_loop() {
  // Allocation accounting baseline for this thread (see
  // ServerOptions::alloc_probe); everything the probe counts between
  // samples is split into executor-internal vs serving-layer below.
  std::uint64_t probe_prev =
      opts_.alloc_probe != nullptr ? opts_.alloc_probe() : 0;
  std::unique_lock lock(admit_mutex_);
  for (;;) {
    dispatch_cv_.wait(lock, [this] {
      return depth_ > 0 || !accepting_.load(std::memory_order_relaxed);
    });
    if (depth_ == 0) {
      if (!accepting_.load(std::memory_order_relaxed)) return;
      continue;
    }

    // Coalescing window: hold the batch open briefly so concurrent
    // clients' requests land in ONE executor call. Closes early the
    // moment a full batch is available (or shutdown begins) — the window
    // bounds added latency, it does not impose it.
    if (opts_.coalesce_window_us > 0 && depth_ < opts_.max_coalesce &&
        accepting_.load(std::memory_order_relaxed)) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(opts_.coalesce_window_us);
      dispatch_cv_.wait_until(lock, deadline, [this] {
        return depth_ >= opts_.max_coalesce ||
               !accepting_.load(std::memory_order_relaxed);
      });
    }

    // Drain in strict lane-priority order into the preallocated batch.
    std::size_t k = 0;
    for (Ring& ring : lanes_) {
      while (k < opts_.max_coalesce && !ring.empty()) {
        batch_[k++] = ring.pop();
        --depth_;
      }
      if (k == opts_.max_coalesce) break;
    }

    lock.unlock();
    const std::uint64_t exec_allocs = process_batch(k);
    if (opts_.alloc_probe != nullptr) {
      // Everything this thread allocated since the last sample, minus
      // what happened inside executor calls, is the serving layer's own
      // (drain, group, complete, client callbacks) — the count the
      // steady-state zero-allocation contract gates on.
      const std::uint64_t now = opts_.alloc_probe();
      dispatch_allocs_.fetch_add(now - probe_prev - exec_allocs,
                                 std::memory_order_relaxed);
      executor_allocs_.fetch_add(exec_allocs, std::memory_order_relaxed);
      probe_prev = now;
    }
    lock.lock();
  }
}

std::uint64_t FftServer::process_batch(std::size_t count) {
  std::uint64_t exec_allocs = 0;
  std::fill_n(grouped_.begin(), count, std::uint8_t{0});
  for (std::size_t i = 0; i < count; ++i) {
    if (grouped_[i] != 0) continue;
    const Slot& lead = slots_[batch_[i]];
    group_.clear();
    spans64_.clear();
    spans32_.clear();
    for (std::size_t j = i; j < count; ++j) {
      if (grouped_[j] != 0) continue;
      Slot& s = slots_[batch_[j]];
      if (s.n != lead.n || s.precision != lead.precision || s.dir != lead.dir)
        continue;
      grouped_[j] = 1;
      group_.push_back(batch_[j]);
      if (s.precision == fft::Precision::kF64)
        spans64_.emplace_back(static_cast<fft::cplx*>(s.data), s.n);
      else
        spans32_.emplace_back(static_cast<fft::cplx32*>(s.data), s.n);
    }

    fft::HostFftOptions hopts;
    hopts.workers = opts_.workers;
    hopts.radix_log2 = fft::validate_fft_shape(lead.n, hopts.radix_log2, true);
    RequestStatus status = RequestStatus::kOk;
    const std::uint64_t probe0 =
        opts_.alloc_probe != nullptr ? opts_.alloc_probe() : 0;
    try {
      if (lead.precision == fft::Precision::kF64) {
        const std::span<const std::span<fft::cplx>> b(spans64_.data(),
                                                      spans64_.size());
        if (lead.dir == Direction::kForward)
          exec_->forward_batch(b, hopts, opts_.variant);
        else
          exec_->inverse_batch(b, hopts, opts_.variant);
      } else {
        const std::span<const std::span<fft::cplx32>> b(spans32_.data(),
                                                        spans32_.size());
        if (lead.dir == Direction::kForward)
          exec_->forward_batch(b, hopts, opts_.variant);
        else
          exec_->inverse_batch(b, hopts, opts_.variant);
      }
    } catch (const fft::ExecutorClosedError&) {
      // The executor was closed underneath us (shared-executor process
      // teardown). Flip to rejecting so new submits see kShuttingDown;
      // requests in this batch get a typed kShutdown completion.
      status = RequestStatus::kShutdown;
      accepting_.store(false, std::memory_order_release);
    } catch (const std::exception&) {
      status = RequestStatus::kError;
    }
    if (opts_.alloc_probe != nullptr) exec_allocs += opts_.alloc_probe() - probe0;
    batches_.fetch_add(1, std::memory_order_relaxed);

    for (const std::uint32_t idx : group_) complete(idx, status);
  }
  return exec_allocs;
}

void FftServer::complete(std::uint32_t slot_idx, RequestStatus status) {
  Slot& s = slots_[slot_idx];
  const auto now = std::chrono::steady_clock::now();
  const std::uint64_t latency_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - s.t_submit)
          .count());
  latency_.record(latency_ns);
  completed_.fetch_add(1, std::memory_order_relaxed);
  const Completion result{status, latency_ns};
  if (s.cb != nullptr) {
    // Callback mode: deliver, then recycle here — the slot fields must
    // not be read after the callback (it may re-submit into this slot).
    const CompletionFn cb = s.cb;
    void* ctx = s.ctx;
    recycle(slot_idx);
    cb(ctx, result);
  } else {
    {
      std::lock_guard g(s.m);
      s.result = result;
      s.done = true;
    }
    s.cv.notify_all();
  }
}

void FftServer::recycle(std::uint32_t slot_idx) {
  std::lock_guard lock(admit_mutex_);
  free_.push_back(slot_idx);
}

Completion FftServer::ticket_wait(std::uint32_t slot_idx) {
  Slot& s = slots_[slot_idx];
  Completion result;
  {
    std::unique_lock g(s.m);
    s.cv.wait(g, [&s] { return s.done; });
    result = s.result;
  }
  recycle(slot_idx);
  return result;
}

void FftServer::shutdown() {
  std::lock_guard shutdown_guard(shutdown_mutex_);
  if (!dispatcher_.joinable()) return;  // already shut down
  {
    std::lock_guard lock(admit_mutex_);
    accepting_.store(false, std::memory_order_release);
  }
  dispatch_cv_.notify_all();
  dispatcher_.join();
  // Detach the phase hook while the executor is guaranteed alive; close
  // the executor only if we own it (a borrowed one may serve others).
  exec_->set_phase_hook({});
  if (owned_exec_) owned_exec_->close();
}

ServerStats FftServer::stats() const {
  ServerStats st;
  {
    std::lock_guard lock(admit_mutex_);
    st.submitted = submitted_;
    st.queue_depth = depth_;
    for (std::size_t i = 0; i < kLaneCount; ++i)
      st.lane_depth[i] = lanes_[i].count;
    st.rejected_queue_full = rejects_[reject_index(SubmitStatus::kQueueFull)];
    st.rejected_shutdown = rejects_[reject_index(SubmitStatus::kShuttingDown)];
    st.rejected_invalid = rejects_[reject_index(SubmitStatus::kInvalidSize)];
    st.rejected_tenant = rejects_[reject_index(SubmitStatus::kUnknownTenant)];
    st.rejected_plan_quota =
        rejects_[reject_index(SubmitStatus::kPlanQuotaExceeded)];
  }
  st.completed = completed_.load(std::memory_order_relaxed);
  st.batches = batches_.load(std::memory_order_relaxed);
  st.dispatch_allocs = dispatch_allocs_.load(std::memory_order_relaxed);
  st.executor_allocs = executor_allocs_.load(std::memory_order_relaxed);
  st.coalescing_factor =
      st.batches > 0
          ? static_cast<double>(st.completed) / static_cast<double>(st.batches)
          : 0.0;
  st.phases = phases_.load(std::memory_order_relaxed);
  st.codelets = codelets_.load(std::memory_order_relaxed);
  st.latency = latency_.snapshot();
  st.arena = arena_.stats();
  st.executor = exec_->stats();
  return st;
}

FftServer& default_server() {
  // Constructed on first use, which transitively constructs (or finds)
  // default_executor()'s static first — so at process exit the server is
  // destroyed (drained, detached) strictly before the executor it
  // borrows.
  static FftServer server([] {
    ServerOptions o;
    o.executor = &fft::default_executor();
    return o;
  }());
  return server;
}

}  // namespace c64fft::serve
