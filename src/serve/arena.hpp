#pragma once
// Zero-copy buffer lease arena for the serving front-end.
//
// The steady-state contract of FftServer is that a request never copies
// its signal and never allocates on the submit path. Both properties start
// here: clients lease a 64-byte-aligned slab from a BufferArena that was
// carved out of ONE AlignedBuffer at construction, fill it in place,
// submit the span, and read the transform back out of the same memory.
// lease()/release() touch only a preallocated free-list under a mutex —
// no allocator call ever happens after the arena is built.
//
// Multi-tenant isolation is byte-quota based: every lease pins whole slabs
// and the pinned bytes are charged against the leasing tenant's quota, so
// one tenant burning through buffers degrades into *its own* typed
// rejections (LeaseStatus::kQuotaExceeded) instead of starving the others.
// (The sibling quota — distinct plan-cache shapes per tenant — lives in
// FftServer, which is what observes request shapes.) See DESIGN.md
// "Serving front-end".

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "util/aligned_buffer.hpp"

namespace c64fft::serve {

/// Dense tenant handle minted by FftServer::add_tenant (arena quota
/// tables are indexed by it).
using TenantId = std::uint32_t;

enum class LeaseStatus : std::uint8_t {
  kOk,
  /// Request exceeds one slab — the arena never hands out multi-slab
  /// (non-contiguous) leases; size the slabs for the largest transform.
  kTooLarge,
  /// No free slab (arena-wide backpressure, all tenants).
  kExhausted,
  /// The tenant's pinned bytes would exceed its registered quota.
  kQuotaExceeded,
  /// TenantId never registered with set_tenant_quota.
  kUnknownTenant,
};

const char* to_string(LeaseStatus s) noexcept;

struct ArenaOptions {
  /// Bytes per slab; rounded up to a multiple of the 64-byte alignment.
  /// One lease = one slab, so this bounds the largest request
  /// (2^16-point f64 = 1 MiB with the default).
  std::size_t slab_bytes = std::size_t{1} << 20;
  std::size_t slab_count = 64;
};

struct ArenaStats {
  std::uint64_t leases = 0;    ///< successful lease() calls, lifetime
  std::uint64_t rejected = 0;  ///< failed lease() calls, lifetime
  std::uint64_t slabs_in_use = 0;
  std::uint64_t slab_count = 0;
  std::uint64_t slab_bytes = 0;
  /// Bytes currently pinned (slabs_in_use * slab_bytes).
  std::uint64_t bytes_pinned = 0;
};

class BufferArena;

/// Move-only RAII handle on one leased slab. Destruction (or release())
/// returns the slab; both are allocation-free. The default-constructed
/// lease is empty (valid() == false) — the shape a rejected LeaseResult
/// carries.
class BufferLease {
 public:
  BufferLease() = default;
  BufferLease(const BufferLease&) = delete;
  BufferLease& operator=(const BufferLease&) = delete;
  BufferLease(BufferLease&& other) noexcept { move_from(other); }
  BufferLease& operator=(BufferLease&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  ~BufferLease() { release(); }

  bool valid() const noexcept { return arena_ != nullptr; }
  explicit operator bool() const noexcept { return valid(); }

  /// The leased bytes (the requested size, not the full slab). 64-byte
  /// aligned — safe for any aligned SIMD load the kernels issue.
  std::span<std::byte> bytes() const noexcept { return {data_, bytes_}; }

  /// The lease viewed as an array of T (complex elements in practice).
  /// Count is the requested bytes over sizeof(T).
  template <typename T>
  std::span<T> as() const noexcept {
    return {reinterpret_cast<T*>(data_), bytes_ / sizeof(T)};
  }

  TenantId tenant() const noexcept { return tenant_; }

  /// Return the slab now (idempotent).
  void release() noexcept;

 private:
  friend class BufferArena;
  BufferLease(BufferArena* arena, std::uint32_t slab, TenantId tenant,
              std::size_t bytes, std::byte* data) noexcept
      : arena_(arena), data_(data), bytes_(bytes), slab_(slab), tenant_(tenant) {}

  void move_from(BufferLease& other) noexcept {
    arena_ = other.arena_;
    data_ = other.data_;
    bytes_ = other.bytes_;
    slab_ = other.slab_;
    tenant_ = other.tenant_;
    other.arena_ = nullptr;
    other.data_ = nullptr;
    other.bytes_ = 0;
  }

  BufferArena* arena_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t bytes_ = 0;
  std::uint32_t slab_ = 0;
  TenantId tenant_ = 0;
};

/// Fixed pool of 64-byte-aligned slabs carved from one allocation.
/// Thread-safe; every post-construction operation except
/// set_tenant_quota() is allocation-free.
class BufferArena {
 public:
  explicit BufferArena(const ArenaOptions& opts = {});

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  /// Register (or resize) a tenant's byte quota. Registration-time only —
  /// this call may allocate (it grows the per-tenant tables); lease() for
  /// an unregistered tenant is a typed kUnknownTenant rejection, never an
  /// implicit registration.
  void set_tenant_quota(TenantId tenant, std::size_t max_bytes);

  struct LeaseResult {
    LeaseStatus status = LeaseStatus::kExhausted;
    BufferLease lease;
  };

  /// Lease one slab holding at least `bytes`. Allocation-free; quota
  /// accounting charges the whole pinned slab, not the requested bytes.
  LeaseResult lease(TenantId tenant, std::size_t bytes);

  std::size_t slab_bytes() const noexcept { return opts_.slab_bytes; }
  std::size_t slab_count() const noexcept { return opts_.slab_count; }

  /// Bytes currently pinned by `tenant` (0 for unknown tenants).
  std::size_t tenant_pinned(TenantId tenant) const;

  ArenaStats stats() const;

 private:
  friend class BufferLease;
  void release_slab(std::uint32_t slab, TenantId tenant) noexcept;

  ArenaOptions opts_;
  util::AlignedBuffer<std::byte> storage_;
  mutable std::mutex mutex_;
  std::vector<std::uint32_t> free_;  // stack of free slab indices
  std::vector<std::size_t> used_;    // pinned bytes per tenant
  std::vector<std::size_t> quota_;   // max bytes per tenant
  std::uint64_t leases_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace c64fft::serve
