#include "serve/arena.hpp"

#include <algorithm>

namespace c64fft::serve {

const char* to_string(LeaseStatus s) noexcept {
  switch (s) {
    case LeaseStatus::kOk: return "ok";
    case LeaseStatus::kTooLarge: return "too-large";
    case LeaseStatus::kExhausted: return "exhausted";
    case LeaseStatus::kQuotaExceeded: return "quota-exceeded";
    case LeaseStatus::kUnknownTenant: return "unknown-tenant";
  }
  return "?";
}

BufferArena::BufferArena(const ArenaOptions& opts) : opts_(opts) {
  opts_.slab_count = std::max<std::size_t>(1, opts_.slab_count);
  opts_.slab_bytes = std::max<std::size_t>(util::kSimdAlignment, opts_.slab_bytes);
  // Round slabs up to whole cache lines so every slab base, not just the
  // first, lands on the 64-byte alignment the kernels assume.
  opts_.slab_bytes =
      (opts_.slab_bytes + util::kSimdAlignment - 1) & ~(util::kSimdAlignment - 1);
  storage_ = util::AlignedBuffer<std::byte>(opts_.slab_bytes * opts_.slab_count);
  free_.reserve(opts_.slab_count);
  // LIFO free stack: push in reverse so slab 0 is handed out first, and a
  // just-released (cache-warm) slab is the next one leased.
  for (std::size_t i = opts_.slab_count; i-- > 0;)
    free_.push_back(static_cast<std::uint32_t>(i));
}

void BufferArena::set_tenant_quota(TenantId tenant, std::size_t max_bytes) {
  std::lock_guard lock(mutex_);
  if (tenant >= quota_.size()) {
    quota_.resize(tenant + 1, 0);
    used_.resize(tenant + 1, 0);
  }
  quota_[tenant] = max_bytes;
}

BufferArena::LeaseResult BufferArena::lease(TenantId tenant, std::size_t bytes) {
  std::lock_guard lock(mutex_);
  if (tenant >= quota_.size() || quota_[tenant] == 0) {
    ++rejected_;
    return {LeaseStatus::kUnknownTenant, {}};
  }
  if (bytes > opts_.slab_bytes) {
    ++rejected_;
    return {LeaseStatus::kTooLarge, {}};
  }
  if (used_[tenant] + opts_.slab_bytes > quota_[tenant]) {
    ++rejected_;
    return {LeaseStatus::kQuotaExceeded, {}};
  }
  if (free_.empty()) {
    ++rejected_;
    return {LeaseStatus::kExhausted, {}};
  }
  const std::uint32_t slab = free_.back();
  free_.pop_back();
  used_[tenant] += opts_.slab_bytes;
  ++leases_;
  std::byte* base = storage_.data() + std::size_t{slab} * opts_.slab_bytes;
  return {LeaseStatus::kOk, BufferLease(this, slab, tenant, bytes, base)};
}

void BufferArena::release_slab(std::uint32_t slab, TenantId tenant) noexcept {
  std::lock_guard lock(mutex_);
  free_.push_back(slab);  // capacity reserved for slab_count: never grows
  used_[tenant] -= opts_.slab_bytes;
}

std::size_t BufferArena::tenant_pinned(TenantId tenant) const {
  std::lock_guard lock(mutex_);
  return tenant < used_.size() ? used_[tenant] : 0;
}

ArenaStats BufferArena::stats() const {
  std::lock_guard lock(mutex_);
  ArenaStats s;
  s.leases = leases_;
  s.rejected = rejected_;
  s.slab_count = opts_.slab_count;
  s.slab_bytes = opts_.slab_bytes;
  s.slabs_in_use = opts_.slab_count - free_.size();
  s.bytes_pinned = s.slabs_in_use * opts_.slab_bytes;
  return s;
}

void BufferLease::release() noexcept {
  if (arena_ == nullptr) return;
  arena_->release_slab(slab_, tenant_);
  arena_ = nullptr;
  data_ = nullptr;
  bytes_ = 0;
}

}  // namespace c64fft::serve
