#pragma once
// Multi-tenant async serving front-end over FftExecutor.
//
// The executor made single transforms cheap; what it still charges per
// call is dispatch overhead — the executor phase mutex, the plan-cache
// acquire, the tuned-schedule lookup, and (off the serial fast path) a
// full scheduler phase with its worker wake/park round trip. A process
// serving MANY independent clients pays that per request. FftServer
// amortizes it across clients the same way forward_batch amortizes it
// across one caller's transforms: submissions land in priority lanes, a
// dispatcher thread waits out a bounded coalescing window, and every
// group of same-(n, precision, direction) requests it drains becomes ONE
// forward_batch/inverse_batch call — one lock, one plan acquire, one
// scheduler phase for the whole group. Coalescing never changes results:
// batched execution is bit-identical per transform to a loop of single
// calls (test_serve asserts this for both precisions).
//
// Admission control is reject-based backpressure: a full lane or an
// exhausted slot pool fails submit() with a typed SubmitStatus
// immediately — requests already admitted are never dropped (shutdown()
// drains them). Per-tenant quotas bound the two shared resources a
// tenant can otherwise monopolize: arena bytes (BufferArena) and
// distinct plan-cache shapes (kPlanQuotaExceeded before a tenant's
// shape churn can thrash the LRU plan cache for everyone else).
//
// The steady-state submit→complete path — submit(), lane push, drain,
// group, batch call through the executor's cached plan, completion
// callback/ticket wake — performs zero heap allocations and zero copies
// of signal data (test_serve_alloc counts allocations to prove it). All
// queues, slots, span scratch, and histograms are sized once at
// construction. See DESIGN.md "Serving front-end".

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "fft/executor.hpp"
#include "fft/types.hpp"
#include "fft/variants.hpp"
#include "serve/arena.hpp"
#include "serve/metrics.hpp"

namespace c64fft::serve {

/// Priority lanes, drained strictly in this order each dispatch round.
/// Starvation of kBulk under sustained kInteractive load is by design —
/// the bound is the lanes' capacities, not fairness.
enum class Lane : std::uint8_t { kInteractive = 0, kNormal = 1, kBulk = 2 };
inline constexpr std::size_t kLaneCount = 3;

enum class Direction : std::uint8_t { kForward, kInverse };

/// Typed admission verdicts. Everything except kAccepted is an immediate
/// reject — the request was NOT enqueued and the caller's buffer was not
/// touched.
enum class SubmitStatus : std::uint8_t {
  kAccepted,
  /// The target lane ring or the shared slot pool is full (backpressure).
  kQueueFull,
  /// shutdown() has begun (or the underlying executor was closed).
  kShuttingDown,
  /// Length < 2 or the span is null. Composite and prime lengths are
  /// ACCEPTED (the executor runs them on mixed-radix/Bluestein plans);
  /// only the degenerate sizes are invalid.
  kInvalidSize,
  /// TenantId was never minted by add_tenant().
  kUnknownTenant,
  /// Request would be the tenant's (max_plan_shapes + 1)-th distinct
  /// (n, precision) shape.
  kPlanQuotaExceeded,
};

const char* to_string(SubmitStatus s) noexcept;

enum class RequestStatus : std::uint8_t {
  kOk,
  /// Executor closed underneath the dispatcher; the transform did not run.
  kShutdown,
  /// Transform threw (shape errors are caught at submit, so this is
  /// unexpected); the buffer contents are unspecified.
  kError,
};

struct Completion {
  RequestStatus status = RequestStatus::kOk;
  /// submit() to completion, nanoseconds.
  std::uint64_t latency_ns = 0;
};

/// Completion callback: plain function pointer + context so registering
/// one never allocates (a capturing std::function could). Invoked on the
/// dispatcher thread — keep it short and never call back into submit()
/// from it with blocking expectations.
using CompletionFn = void (*)(void* ctx, const Completion& done);

struct TenantQuota {
  /// Arena bytes the tenant may pin concurrently (whole slabs are
  /// charged). 0 forbids arena leases but still allows submits of
  /// caller-owned buffers.
  std::size_t max_arena_bytes = std::size_t{8} << 20;
  /// Distinct (n, precision) plan shapes the tenant may ever submit.
  std::size_t max_plan_shapes = 4;
};

struct ServerOptions {
  /// Shared request-slot pool size == max requests in flight (queued +
  /// being executed) across all lanes.
  std::size_t queue_capacity = 256;
  /// Per-lane ring capacities; 0 means "same as queue_capacity" (lane
  /// backpressure then comes only from the shared pool).
  std::array<std::size_t, kLaneCount> lane_capacity{0, 0, 0};
  /// How long the dispatcher holds an under-full batch open waiting for
  /// more submissions to coalesce. 0 dispatches immediately (the
  /// uncoalesced baseline mode of tools/fft_loadgen).
  std::uint32_t coalesce_window_us = 50;
  /// Largest number of requests drained per dispatch round (and the
  /// upper bound on the coalescing factor).
  std::uint32_t max_coalesce = 64;
  /// Worker-team shape for the executor calls. 1 (default) rides the
  /// executor's serial fast path, which this host's single hardware
  /// thread wants; the coalescing win is then purely amortized dispatch.
  unsigned workers = 1;
  fft::Variant variant = fft::Variant::kFine;
  /// Borrowed executor; nullptr makes the server own a private one
  /// (closed on shutdown — a borrowed executor is never closed).
  fft::FftExecutor* executor = nullptr;
  /// Plan-cache capacity of the owned executor (ignored when borrowing).
  std::size_t executor_cache_capacity = 32;
  /// Optional allocation-counter sampler (returns the CALLING thread's
  /// count; see serve/alloc_probe.hpp). When set, the dispatcher
  /// brackets every executor call with it and splits its own thread's
  /// allocations into ServerStats::executor_allocs (inside the
  /// executor — at workers >= 2 the phased scheduler allocates task
  /// bookkeeping) and ServerStats::dispatch_allocs (everything else:
  /// drain, group, complete, callbacks — the serving layer's own
  /// steady-state count, which the zero-allocation contract says must
  /// not move). A function pointer, not the probe function itself,
  /// because the probe is implemented by the BINARY (one TU defines
  /// C64FFT_ALLOC_PROBE_IMPLEMENT), never by this library.
  std::uint64_t (*alloc_probe)() noexcept = nullptr;
  ArenaOptions arena;
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_tenant = 0;
  std::uint64_t rejected_plan_quota = 0;
  /// Executor batch calls the dispatcher issued (one per coalesced
  /// group); completed / batches is the realized coalescing factor.
  std::uint64_t batches = 0;
  double coalescing_factor = 0.0;
  /// Scheduler phases / codelets observed through the executor's phase
  /// hook. On a borrowed (shared) executor this counts ALL phases run
  /// while this server is attached, not only its own.
  std::uint64_t phases = 0;
  std::uint64_t codelets = 0;
  std::uint64_t queue_depth = 0;  ///< requests queued right now
  std::array<std::uint64_t, kLaneCount> lane_depth{};
  /// Dispatcher-thread allocations OUTSIDE executor calls (the serving
  /// layer's own; 0 in steady state) and INSIDE them. Only counted when
  /// ServerOptions::alloc_probe is set; 0 otherwise.
  std::uint64_t dispatch_allocs = 0;
  std::uint64_t executor_allocs = 0;
  LatencySnapshot latency;
  ArenaStats arena;
  fft::ExecutorStats executor;
};

class FftServer;

/// Move-only completion handle for callback-less submissions. wait()
/// blocks for the result and recycles the request slot; a destroyed
/// un-waited ticket waits first (so dropping one never leaks a slot).
class Ticket {
 public:
  Ticket() = default;
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;
  Ticket(Ticket&& other) noexcept
      : server_(other.server_), slot_(other.slot_) {
    other.server_ = nullptr;
  }
  Ticket& operator=(Ticket&& other) noexcept;
  ~Ticket();

  bool valid() const noexcept { return server_ != nullptr; }
  explicit operator bool() const noexcept { return valid(); }

  /// Block until the request completes; allocation-free. Invalidates the
  /// ticket (the slot returns to the pool).
  Completion wait();

 private:
  friend class FftServer;
  Ticket(FftServer* server, std::uint32_t slot) noexcept
      : server_(server), slot_(slot) {}

  FftServer* server_ = nullptr;
  std::uint32_t slot_ = 0;
};

struct SubmitResult {
  SubmitStatus status = SubmitStatus::kShuttingDown;
  /// Valid only when status == kAccepted and no callback was given.
  Ticket ticket;
};

class FftServer {
 public:
  explicit FftServer(const ServerOptions& opts = {});
  ~FftServer();

  FftServer(const FftServer&) = delete;
  FftServer& operator=(const FftServer&) = delete;

  /// Mint a tenant (registration-time; allocates its quota tables).
  TenantId add_tenant(const TenantQuota& quota);

  /// The zero-copy staging arena. Typical flow: lease, fill in place,
  /// submit(lease.as<cplx>()), read the transform back from the lease.
  BufferArena& arena() noexcept { return arena_; }

  /// Asynchronous in-place transform of `data` (which must stay alive
  /// and untouched until completion). Allocation-free. With `cb` the
  /// completion is delivered on the dispatcher thread and the returned
  /// ticket is invalid; without it, wait on the ticket.
  SubmitResult submit(TenantId tenant, std::span<fft::cplx> data,
                      Direction dir, Lane lane = Lane::kNormal,
                      CompletionFn cb = nullptr, void* ctx = nullptr);
  SubmitResult submit(TenantId tenant, std::span<fft::cplx32> data,
                      Direction dir, Lane lane = Lane::kNormal,
                      CompletionFn cb = nullptr, void* ctx = nullptr);

  /// Stop admitting (subsequent submits reject with kShuttingDown),
  /// drain every admitted request to completion, join the dispatcher,
  /// detach the phase hook, and close() the executor iff owned.
  /// Idempotent; safe to race with submit() from any thread — that is
  /// the shutdown-ordering regression this layer exists to fix.
  void shutdown();

  bool accepting() const noexcept {
    return accepting_.load(std::memory_order_acquire);
  }

  fft::FftExecutor& executor() noexcept { return *exec_; }

  ServerStats stats() const;

 private:
  friend class Ticket;

  struct Slot {
    // Request (written by submit under admit_mutex_, read by dispatcher).
    void* data = nullptr;
    std::uint64_t n = 0;
    fft::Precision precision = fft::Precision::kF64;
    Direction dir = Direction::kForward;
    TenantId tenant = 0;
    CompletionFn cb = nullptr;
    void* ctx = nullptr;
    std::chrono::steady_clock::time_point t_submit;
    // Completion rendezvous (ticket mode only).
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    Completion result;
  };

  /// Fixed-capacity FIFO of slot indices (one per lane).
  struct Ring {
    std::vector<std::uint32_t> buf;
    std::size_t head = 0;
    std::size_t count = 0;

    bool full() const noexcept { return count == buf.size(); }
    bool empty() const noexcept { return count == 0; }
    void push(std::uint32_t v) noexcept {
      buf[(head + count) % buf.size()] = v;
      ++count;
    }
    std::uint32_t pop() noexcept {
      const std::uint32_t v = buf[head];
      head = (head + 1) % buf.size();
      --count;
      return v;
    }
  };

  struct TenantState {
    TenantQuota quota;
    /// Distinct shapes seen (reserved to max_plan_shapes at add_tenant,
    /// so the admission-path push_back never reallocates).
    std::vector<std::pair<std::uint64_t, fft::Precision>> shapes;
  };

  SubmitResult submit_impl(TenantId tenant, void* data, std::uint64_t n,
                           fft::Precision precision, Direction dir, Lane lane,
                           CompletionFn cb, void* ctx);
  void dispatch_loop();
  /// Returns the dispatcher thread's allocation count spent inside
  /// executor calls (0 when no alloc_probe is configured).
  std::uint64_t process_batch(std::size_t count);
  void complete(std::uint32_t slot_idx, RequestStatus status);
  void recycle(std::uint32_t slot_idx);
  Completion ticket_wait(std::uint32_t slot_idx);

  ServerOptions opts_;
  BufferArena arena_;
  fft::FftExecutor* exec_ = nullptr;
  std::unique_ptr<fft::FftExecutor> owned_exec_;

  /// Serializes shutdown() callers (join happens exactly once).
  std::mutex shutdown_mutex_;

  // Admission state.
  mutable std::mutex admit_mutex_;
  std::condition_variable dispatch_cv_;
  std::atomic<bool> accepting_{true};
  std::vector<std::uint32_t> free_;  // slot freelist (stack)
  std::array<Ring, kLaneCount> lanes_;
  std::size_t depth_ = 0;  // sum of lane counts
  std::vector<TenantState> tenants_;
  std::uint64_t submitted_ = 0;
  std::array<std::uint64_t, 5> rejects_{};  // indexed by SubmitStatus - 1

  std::unique_ptr<Slot[]> slots_;

  // Dispatcher-thread scratch, sized once in the constructor.
  std::vector<std::uint32_t> batch_;      // drained slot indices
  std::vector<std::uint8_t> grouped_;     // per-batch "already grouped" marks
  std::vector<std::uint32_t> group_;      // slot indices of current group
  std::vector<std::span<fft::cplx>> spans64_;
  std::vector<std::span<fft::cplx32>> spans32_;

  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> dispatch_allocs_{0};
  std::atomic<std::uint64_t> executor_allocs_{0};
  std::atomic<std::uint64_t> phases_{0};
  std::atomic<std::uint64_t> codelets_{0};
  LatencyHistogram latency_;

  std::thread dispatcher_;
};

/// The process-wide server (borrowing default_executor()). Constructed on
/// first use — therefore after default_executor()'s static, therefore
/// destroyed BEFORE it: the server drains and detaches while the executor
/// is still alive, which is the static-teardown ordering that makes
/// process-exit clean (see DESIGN.md "Serving front-end").
FftServer& default_server();

}  // namespace c64fft::serve
