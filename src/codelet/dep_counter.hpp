#pragma once
// Shared dependency counters (Section IV-A2).
//
// In the fine-grain FFT every 64 sibling codelets have exactly the same 64
// parents, so they can share one counter: a parent completion performs ONE
// atomic increment, and when the counter reaches the threshold the whole
// sibling group becomes ready at once. The paper reports this sharing
// "greatly reduces the overhead of updating and checking the counters, as
// well as the storage requirement".

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

namespace c64fft::codelet {

class DependencyCounters {
 public:
  /// One counter bank per stage; `groups_per_stage[s]` counters in stage
  /// s, each becoming ready after `thresholds[s]` producer completions
  /// (64 for the full stages of the paper's radix-64 FFT; the partial
  /// last stage may differ). A stage with zero groups is legal (stage 0
  /// has no producers).
  DependencyCounters(std::span<const std::uint64_t> groups_per_stage,
                     std::span<const std::uint32_t> thresholds) {
    if (groups_per_stage.size() != thresholds.size())
      throw std::invalid_argument("DependencyCounters: size mismatch");
    stages_.reserve(groups_per_stage.size());
    for (std::size_t s = 0; s < groups_per_stage.size(); ++s) {
      if (groups_per_stage[s] != 0 && thresholds[s] == 0)
        throw std::invalid_argument("DependencyCounters: zero threshold");
      stages_.push_back(std::make_unique<std::atomic<std::uint32_t>[]>(groups_per_stage[s]));
    }
    sizes_.assign(groups_per_stage.begin(), groups_per_stage.end());
    thresholds_.assign(thresholds.begin(), thresholds.end());
    reset();
  }

  /// Convenience: one threshold for every stage.
  DependencyCounters(std::span<const std::uint64_t> groups_per_stage,
                     std::uint32_t threshold)
      : DependencyCounters(groups_per_stage,
                           std::vector<std::uint32_t>(groups_per_stage.size(), threshold)) {}

  std::uint32_t threshold(std::size_t stage) const { return thresholds_.at(stage); }
  std::size_t stages() const noexcept { return sizes_.size(); }
  std::uint64_t groups(std::size_t stage) const { return sizes_.at(stage); }

  /// Record one producer completion for (stage, group). Returns true for
  /// exactly the completion that fills the group (makes it ready).
  bool arrive(std::size_t stage, std::uint64_t group) {
    check(stage, group);
    const std::uint32_t before =
        stages_[stage][group].fetch_add(1, std::memory_order_acq_rel);
    if (before >= thresholds_[stage])
      throw std::logic_error("DependencyCounters: group over-satisfied");
    return before + 1 == thresholds_[stage];
  }

  /// Current value (mainly for tests/diagnostics).
  std::uint32_t value(std::size_t stage, std::uint64_t group) const {
    check(stage, group);
    return stages_[stage][group].load(std::memory_order_acquire);
  }

  /// Zero every counter (the guided algorithm reuses the table between its
  /// two phases, as in Alg. 3).
  void reset() {
    for (std::size_t s = 0; s < sizes_.size(); ++s)
      for (std::uint64_t g = 0; g < sizes_[s]; ++g)
        stages_[s][g].store(0, std::memory_order_relaxed);
  }

 private:
  void check(std::size_t stage, std::uint64_t group) const {
    if (stage >= sizes_.size() || group >= sizes_[stage])
      throw std::out_of_range("DependencyCounters: bad (stage, group)");
  }

  std::vector<std::unique_ptr<std::atomic<std::uint32_t>[]>> stages_;
  std::vector<std::uint64_t> sizes_;
  std::vector<std::uint32_t> thresholds_;
};

}  // namespace c64fft::codelet
