#pragma once
// Host codelet runtime: a persistent team of real std::thread workers
// executing codelets with actual arithmetic. This is the functional
// counterpart of the simulated machine — the same FFT variants run on it,
// which is how the library serves as a usable FFT on commodity multicore
// and how the simulator's kernels are known to be numerically correct.
//
// Scheduling (SchedulerMode::kWorkStealing, the default): each worker owns
// a Chase-Lev deque (owner LIFO pop, thief FIFO steal); phase seeds sit in
// a global injection queue that hands them out in PoolPolicy order; and
// dynamically enabled codelets go to the enabling worker's own deque, so
// the hot push/pop path takes no lock. Workers that find no work park on a
// condition variable — the team is created once and reused across phases
// (and across run_phase calls), never respawned.
//
// SchedulerMode::kSequential is the paper-order compatibility mode: every
// codelet runs on the calling thread in strict single-pool PoolPolicy
// order, reproducing the exact "fine best"/"fine worst" execution
// sequences deterministically. See DESIGN.md "Host runtime architecture".
//
// Phase semantics (both modes): run_phase() seeds the pool, lets the
// workers drain it (codelets may push further codelets), and returns when
// no codelet is queued or executing. A phase boundary therefore acts as
// the coarse-grain barrier of Alg. 1/Alg. 3; fully fine-grain algorithms
// use a single phase.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "codelet/codelet.hpp"

namespace c64fft::codelet {

namespace detail {
struct HostRuntimeShared;  // worker-visible state; defined in host_runtime.cpp
}

/// Handed to the codelet body so it can enable children.
class Pusher {
 public:
  virtual ~Pusher() = default;
  virtual void push(CodeletKey ready) = 0;
  /// Enable a whole sibling group with one injection (one wake signal
  /// instead of one per child on the work-stealing path). Order within the
  /// batch is preserved.
  virtual void push_batch(std::span<const CodeletKey> batch) {
    for (CodeletKey k : batch) push(k);
  }
};

/// Codelet body: execute the codelet, then enable any children that became
/// ready (typically after DependencyCounters::arrive returns true).
using CodeletBody = std::function<void(CodeletKey, unsigned worker, Pusher&)>;

/// What one completed phase looked like, handed to the completion hook:
/// how many codelets seeded it, how many executed to quiescence (fewer
/// than the total enabled when the phase failed mid-drain), and the
/// caller-observed wall time of the whole phase.
struct PhaseStats {
  std::uint64_t seeds = 0;
  std::uint64_t executed = 0;
  std::uint64_t nanos = 0;
};

/// Phase completion hook (see HostRuntime::set_phase_hook). Runs on the
/// run_phase caller thread after quiescence, before any captured codelet
/// exception is rethrown — so a metrics layer observes failed phases too.
using PhaseHook = std::function<void(const PhaseStats&)>;

class HostRuntime {
 public:
  /// Spawns `workers - 1` persistent worker threads (the run_phase caller
  /// is worker 0); they park between phases and die with the runtime.
  explicit HostRuntime(unsigned workers,
                       SchedulerMode mode = SchedulerMode::kWorkStealing);
  ~HostRuntime();

  HostRuntime(const HostRuntime&) = delete;
  HostRuntime& operator=(const HostRuntime&) = delete;

  unsigned workers() const noexcept { return workers_; }
  SchedulerMode mode() const noexcept { return mode_; }

  /// Run one phase to quiescence. Exceptions thrown by `body` are captured
  /// on the worker and rethrown here after the phase drains.
  void run_phase(std::span<const CodeletKey> seeds, PoolPolicy policy,
                 const CodeletBody& body);

  /// Install (or clear, with an empty function) the phase completion hook:
  /// invoked once per run_phase, on the calling thread, after the phase
  /// drains. This is the completion seam the serving layer's metrics hang
  /// off — scheduler phases per second and codelets per phase without any
  /// polling. Must not be called concurrently with run_phase (the
  /// executor installs it under the same mutex that serializes phases);
  /// the hook itself must not re-enter run_phase.
  void set_phase_hook(PhaseHook hook);

  /// Total codelets executed across all phases so far.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Codelets executed per worker across all phases — the dynamic
  /// workload-balance evidence the fine-grain model is known for (the
  /// prior-work claim the paper builds on).
  const std::vector<std::uint64_t>& executed_per_worker() const noexcept {
    return per_worker_;
  }

  /// max/mean ratio of the per-worker counts (1.0 = perfectly balanced).
  double balance_ratio() const noexcept;

  /// Successful steals across all phases (0 in sequential mode) — the
  /// load-migration evidence of the work-stealing scheduler.
  std::uint64_t steals() const noexcept { return steals_; }

  /// Process-wide count of HostRuntime constructions. The executor's
  /// team-spawn regression guard asserts this stays flat across
  /// steady-state cached transforms (see tests/test_executor.cpp).
  static std::uint64_t teams_created() noexcept;

 private:
  void run_phase_work_stealing(std::span<const CodeletKey> seeds,
                               PoolPolicy policy, const CodeletBody& body);
  void run_phase_sequential(std::span<const CodeletKey> seeds,
                            PoolPolicy policy, const CodeletBody& body);

  unsigned workers_;
  SchedulerMode mode_;
  std::unique_ptr<detail::HostRuntimeShared> shared_;
  std::vector<std::thread> threads_;
  std::uint64_t executed_ = 0;
  std::uint64_t steals_ = 0;
  std::vector<std::uint64_t> per_worker_;
  PhaseHook phase_hook_;
};

}  // namespace c64fft::codelet
