#pragma once
// Host codelet runtime: real std::thread workers draining a shared ready
// pool. This is the functional counterpart of the simulated machine — the
// same FFT variants run on it with actual arithmetic, which is how the
// library serves as a usable FFT on commodity multicore and how the
// simulator's kernels are known to be numerically correct.
//
// Phase semantics: run_phase() seeds the pool, lets the workers drain it
// (codelets may push further codelets), and returns when no codelet is
// queued or executing. A phase boundary therefore acts as the coarse-grain
// barrier of Alg. 1/Alg. 3; fully fine-grain algorithms use a single phase.

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "codelet/codelet.hpp"

namespace c64fft::codelet {

/// Handed to the codelet body so it can enable children.
class Pusher {
 public:
  virtual ~Pusher() = default;
  virtual void push(CodeletKey ready) = 0;
};

/// Codelet body: execute the codelet, then enable any children that became
/// ready (typically after DependencyCounters::arrive returns true).
using CodeletBody = std::function<void(CodeletKey, unsigned worker, Pusher&)>;

class HostRuntime {
 public:
  /// `workers` real threads are spawned per phase (>= 1).
  explicit HostRuntime(unsigned workers);

  unsigned workers() const noexcept { return workers_; }

  /// Run one phase to quiescence. Exceptions thrown by `body` are captured
  /// on the worker and rethrown here after the phase drains.
  void run_phase(std::span<const CodeletKey> seeds, PoolPolicy policy,
                 const CodeletBody& body);

  /// Total codelets executed across all phases so far.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Codelets executed per worker across all phases — the dynamic
  /// workload-balance evidence the fine-grain model is known for (the
  /// prior-work claim the paper builds on).
  const std::vector<std::uint64_t>& executed_per_worker() const noexcept {
    return per_worker_;
  }

  /// max/mean ratio of the per-worker counts (1.0 = perfectly balanced).
  double balance_ratio() const noexcept;

 private:
  unsigned workers_;
  std::uint64_t executed_ = 0;
  std::vector<std::uint64_t> per_worker_;
};

}  // namespace c64fft::codelet
