#include "codelet/host_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <utility>

#include "codelet/ws_deque.hpp"

namespace c64fft::codelet {

namespace {

// One cache line per worker: the deque plus the phase-local tallies the
// runtime harvests after quiescence.
struct alignas(64) WorkerState {
  WorkStealingDeque deque;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> steals{0};
};

}  // namespace

// State shared between the run_phase caller (worker 0) and the persistent
// worker threads. The hot path (own-deque push/pop, steals, the pending
// count) is lock-free; the two mutexes guard only the cold paths — seed
// injection and condvar parking.
namespace detail {

struct HostRuntimeShared {
  explicit HostRuntimeShared(unsigned workers) : states(workers) {
    for (auto& s : states) s = std::make_unique<WorkerState>();
  }

  std::vector<std::unique_ptr<WorkerState>> states;

  // Global injection queue: phase seeds, handed out in PoolPolicy order.
  // Always locked, never checked racily: the mutex total order is what
  // separates "worker saw the seeds" from "worker parked before they
  // arrived, so the seeder's signal bump lands after the worker's s0" —
  // a lock-free emptiness hint here could park a worker forever.
  std::mutex inject_mutex;
  std::deque<CodeletKey> inject;
  std::atomic<PoolPolicy> policy{PoolPolicy::kFifo};

  // Current phase. `pending` counts queued + executing codelets; the phase
  // is over exactly when it reaches zero (every queued item was counted
  // before it became visible, so zero cannot be observed early).
  std::atomic<const CodeletBody*> body{nullptr};
  std::atomic<std::int64_t> pending{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  // Parking. `signal` and `sleepers` are both seq_cst so that for any
  // push/park race, either the pusher sees the sleeper (and notifies) or
  // the sleeper sees the new signal (and skips the wait) — the classic
  // Dekker-style handshake.
  std::mutex park_mutex;
  std::condition_variable cv;
  std::atomic<std::uint64_t> signal{0};
  std::atomic<int> sleepers{0};
  std::atomic<bool> stop{false};

  void notify_work() {
    // A one-worker team has nobody to wake (the run_phase caller can never
    // be parked while it is the thread pushing) — skip the seq_cst traffic.
    if (states.size() == 1) return;
    signal.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard lock(park_mutex);
      cv.notify_all();
    }
  }

  bool pop_inject(CodeletKey& out) {
    std::lock_guard lock(inject_mutex);
    if (inject.empty()) return false;
    if (policy.load(std::memory_order_relaxed) == PoolPolicy::kLifo) {
      out = inject.back();
      inject.pop_back();
    } else {
      out = inject.front();
      inject.pop_front();
    }
    return true;
  }

  // Own deque first (LIFO cascade), then the injection queue (seed
  // order), then a steal sweep over the other workers. The sweep repeats
  // while any victim reports a lost race — losing means someone else made
  // progress, not that the system is empty.
  bool acquire_work(unsigned w, CodeletKey& out) {
    const unsigned n = static_cast<unsigned>(states.size());
    if (n == 1) {
      // No thief can exist: take the fence-free owner pop.
      if (states[w]->deque.pop_unsynchronized(out)) return true;
      return pop_inject(out);
    }
    if (states[w]->deque.pop(out)) return true;
    if (pop_inject(out)) return true;
    bool lost = true;
    while (lost) {
      lost = false;
      for (unsigned i = 1; i < n; ++i) {
        const unsigned victim = (w + i) % n;
        switch (states[victim]->deque.steal(out)) {
          case WorkStealingDeque::StealResult::kStolen:
            states[w]->steals.fetch_add(1, std::memory_order_relaxed);
            return true;
          case WorkStealingDeque::StealResult::kLost:
            lost = true;
            break;
          case WorkStealingDeque::StealResult::kEmpty:
            break;
        }
      }
    }
    return false;
  }

  // Run one acquired codelet and retire it. After a failure the phase
  // keeps draining, but remaining codelets are discarded unexecuted.
  void execute(unsigned w, CodeletKey key, Pusher& pusher) {
    if (!failed.load(std::memory_order_acquire)) {
      const CodeletBody* b = body.load(std::memory_order_acquire);
      try {
        (*b)(key, w, pusher);
        states[w]->executed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        {
          std::lock_guard lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_release);
      }
    }
    if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Phase drained: wake everyone (parked workers re-park; a parked
      // run_phase caller returns).
      signal.fetch_add(1, std::memory_order_seq_cst);
      std::lock_guard lock(park_mutex);
      cv.notify_all();
    }
  }
};

}  // namespace detail

namespace {

using detail::HostRuntimeShared;

// Pusher for the work-stealing path: enabled children go to the enabling
// worker's own deque (lock-free), counted into `pending` *before* they
// become stealable so quiescence can never be observed early.
class WorkerPusher final : public Pusher {
 public:
  WorkerPusher(HostRuntimeShared& sh, unsigned w) : sh_(sh), w_(w) {}

  void push(CodeletKey ready) override {
    sh_.pending.fetch_add(1, std::memory_order_relaxed);
    sh_.states[w_]->deque.push(ready);
    sh_.notify_work();
  }

  void push_batch(std::span<const CodeletKey> batch) override {
    if (batch.empty()) return;
    sh_.pending.fetch_add(static_cast<std::int64_t>(batch.size()),
                          std::memory_order_relaxed);
    for (CodeletKey k : batch) sh_.states[w_]->deque.push(k);
    sh_.notify_work();  // one wake for the whole sibling group
  }

 private:
  HostRuntimeShared& sh_;
  unsigned w_;
};

// Persistent worker thread: hunt for work, park when there is none, exit
// when the runtime is destroyed. Workers do not track phase boundaries —
// work is work, whichever phase injected it.
void worker_main(HostRuntimeShared& sh, unsigned w) {
  WorkerPusher pusher(sh, w);
  while (!sh.stop.load(std::memory_order_acquire)) {
    CodeletKey key;
    if (sh.acquire_work(w, key)) {
      sh.execute(w, key, pusher);
      continue;
    }
    const std::uint64_t s0 = sh.signal.load(std::memory_order_seq_cst);
    if (sh.acquire_work(w, key)) {  // re-check against a pre-s0 push
      sh.execute(w, key, pusher);
      continue;
    }
    std::unique_lock lock(sh.park_mutex);
    sh.sleepers.fetch_add(1, std::memory_order_seq_cst);
    sh.cv.wait(lock, [&] {
      return sh.signal.load(std::memory_order_seq_cst) != s0 ||
             sh.stop.load(std::memory_order_relaxed);
    });
    sh.sleepers.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace

namespace {
std::atomic<std::uint64_t> g_teams_created{0};
}

std::uint64_t HostRuntime::teams_created() noexcept {
  return g_teams_created.load(std::memory_order_relaxed);
}

HostRuntime::HostRuntime(unsigned workers, SchedulerMode mode)
    : workers_(workers), mode_(mode), per_worker_(workers, 0) {
  if (workers == 0) throw std::invalid_argument("HostRuntime: zero workers");
  g_teams_created.fetch_add(1, std::memory_order_relaxed);
  shared_ = std::make_unique<detail::HostRuntimeShared>(workers);
  if (mode_ == SchedulerMode::kWorkStealing) {
    threads_.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
      threads_.emplace_back([this, w] { worker_main(*shared_, w); });
  }
}

HostRuntime::~HostRuntime() {
  shared_->stop.store(true, std::memory_order_release);
  shared_->notify_work();
  for (auto& t : threads_) t.join();
}

double HostRuntime::balance_ratio() const noexcept {
  std::uint64_t total = 0, mx = 0;
  for (auto v : per_worker_) {
    total += v;
    mx = std::max(mx, v);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(mx) * workers_ / static_cast<double>(total);
}

void HostRuntime::set_phase_hook(PhaseHook hook) {
  phase_hook_ = std::move(hook);
}

void HostRuntime::run_phase(std::span<const CodeletKey> seeds, PoolPolicy policy,
                            const CodeletBody& body) {
  // Timing only exists when someone listens: the hot no-hook path pays no
  // clock reads. The hook fires after the drain but before any captured
  // codelet exception propagates, so a metrics layer sees failed phases.
  if (!phase_hook_) {
    if (mode_ == SchedulerMode::kSequential)
      run_phase_sequential(seeds, policy, body);
    else
      run_phase_work_stealing(seeds, policy, body);
    return;
  }
  PhaseStats stats;
  stats.seeds = seeds.size();
  const std::uint64_t executed_before = executed_;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    if (mode_ == SchedulerMode::kSequential)
      run_phase_sequential(seeds, policy, body);
    else
      run_phase_work_stealing(seeds, policy, body);
  } catch (...) {
    stats.executed = executed_ - executed_before;
    stats.nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    phase_hook_(stats);
    throw;
  }
  stats.executed = executed_ - executed_before;
  stats.nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  phase_hook_(stats);
}

void HostRuntime::run_phase_work_stealing(std::span<const CodeletKey> seeds,
                                          PoolPolicy policy,
                                          const CodeletBody& body) {
  detail::HostRuntimeShared& sh = *shared_;
  if (seeds.empty()) return;

  sh.policy.store(policy, std::memory_order_relaxed);
  sh.failed.store(false, std::memory_order_relaxed);
  sh.error = nullptr;
  sh.body.store(&body, std::memory_order_release);
  sh.pending.store(static_cast<std::int64_t>(seeds.size()),
                   std::memory_order_release);
  {
    std::lock_guard lock(sh.inject_mutex);
    sh.inject.assign(seeds.begin(), seeds.end());
  }
  sh.notify_work();

  // The caller participates as worker 0 until quiescence.
  WorkerPusher pusher(sh, 0);
  while (sh.pending.load(std::memory_order_acquire) != 0) {
    CodeletKey key;
    if (sh.acquire_work(0, key)) {
      sh.execute(0, key, pusher);
      continue;
    }
    const std::uint64_t s0 = sh.signal.load(std::memory_order_seq_cst);
    if (sh.pending.load(std::memory_order_acquire) == 0) break;
    if (sh.acquire_work(0, key)) {
      sh.execute(0, key, pusher);
      continue;
    }
    std::unique_lock lock(sh.park_mutex);
    sh.sleepers.fetch_add(1, std::memory_order_seq_cst);
    sh.cv.wait(lock, [&] {
      return sh.signal.load(std::memory_order_seq_cst) != s0 ||
             sh.pending.load(std::memory_order_acquire) == 0;
    });
    sh.sleepers.fetch_sub(1, std::memory_order_relaxed);
  }

  sh.body.store(nullptr, std::memory_order_relaxed);
  for (unsigned w = 0; w < workers_; ++w) {
    WorkerState& st = *sh.states[w];
    const std::uint64_t e = st.executed.load(std::memory_order_relaxed);
    const std::uint64_t s = st.steals.load(std::memory_order_relaxed);
    st.executed.store(0, std::memory_order_relaxed);
    st.steals.store(0, std::memory_order_relaxed);
    per_worker_[w] += e;
    executed_ += e;
    steals_ += s;
  }
  if (sh.failed.load(std::memory_order_acquire)) {
    std::exception_ptr e;
    {
      std::lock_guard lock(sh.error_mutex);
      e = sh.error;
      sh.error = nullptr;
    }
    if (e) std::rethrow_exception(e);
  }
}

void HostRuntime::run_phase_sequential(std::span<const CodeletKey> seeds,
                                       PoolPolicy policy, const CodeletBody& body) {
  // Exact single mutex-pool semantics on one thread: push appends, pop
  // follows the policy. Deterministic by construction.
  struct SeqPusher final : Pusher {
    std::deque<CodeletKey> pool;
    void push(CodeletKey ready) override { pool.push_back(ready); }
  } pusher;
  pusher.pool.assign(seeds.begin(), seeds.end());

  std::uint64_t count = 0;
  while (!pusher.pool.empty()) {
    CodeletKey key;
    if (policy == PoolPolicy::kLifo) {
      key = pusher.pool.back();
      pusher.pool.pop_back();
    } else {
      key = pusher.pool.front();
      pusher.pool.pop_front();
    }
    try {
      body(key, 0, pusher);
    } catch (...) {
      executed_ += count;
      per_worker_[0] += count;
      throw;
    }
    ++count;
  }
  executed_ += count;
  per_worker_[0] += count;
}

}  // namespace c64fft::codelet
