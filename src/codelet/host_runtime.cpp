#include "codelet/host_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace c64fft::codelet {

namespace {

// Phase state shared by the workers: pool + in-flight accounting with a
// condition variable for sleep/wake and quiescence detection.
class PhaseState final : public Pusher {
 public:
  PhaseState(std::span<const CodeletKey> seeds, PoolPolicy policy) : policy_(policy) {
    items_.assign(seeds.begin(), seeds.end());
  }

  void push(CodeletKey ready) override {
    {
      std::lock_guard lock(mutex_);
      items_.push_back(ready);
    }
    cv_.notify_one();
  }

  // Blocks until work is available or the phase is quiescent.
  // Returns false when the phase is over.
  bool pop(CodeletKey& out) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || executing_ == 0 || failed_; });
    if (items_.empty() || failed_) return false;
    if (policy_ == PoolPolicy::kLifo) {
      out = items_.back();
      items_.pop_back();
    } else {
      out = items_.front();
      items_.pop_front();
    }
    ++executing_;
    return true;
  }

  void done() {
    bool quiescent = false;
    {
      std::lock_guard lock(mutex_);
      --executing_;
      quiescent = executing_ == 0 && items_.empty();
    }
    if (quiescent)
      cv_.notify_all();
    else
      cv_.notify_one();
  }

  void fail(std::exception_ptr e) {
    {
      std::lock_guard lock(mutex_);
      if (!error_) error_ = e;
      failed_ = true;
      --executing_;
    }
    cv_.notify_all();
  }

  std::exception_ptr error() {
    std::lock_guard lock(mutex_);
    return error_;
  }

 private:
  PoolPolicy policy_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<CodeletKey> items_;
  unsigned executing_ = 0;
  bool failed_ = false;
  std::exception_ptr error_;
};

}  // namespace

HostRuntime::HostRuntime(unsigned workers) : workers_(workers), per_worker_(workers, 0) {
  if (workers == 0) throw std::invalid_argument("HostRuntime: zero workers");
}

double HostRuntime::balance_ratio() const noexcept {
  std::uint64_t total = 0, mx = 0;
  for (auto v : per_worker_) {
    total += v;
    mx = std::max(mx, v);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(mx) * workers_ / static_cast<double>(total);
}

void HostRuntime::run_phase(std::span<const CodeletKey> seeds, PoolPolicy policy,
                            const CodeletBody& body) {
  PhaseState state(seeds, policy);
  std::atomic<std::uint64_t> executed{0};
  std::vector<std::atomic<std::uint64_t>> per_worker(workers_);

  auto worker_main = [&](unsigned worker) {
    CodeletKey c;
    while (state.pop(c)) {
      try {
        body(c, worker, state);
        executed.fetch_add(1, std::memory_order_relaxed);
        per_worker[worker].fetch_add(1, std::memory_order_relaxed);
        state.done();
      } catch (...) {
        state.fail(std::current_exception());
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w) threads.emplace_back(worker_main, w);
  worker_main(0);
  for (auto& t : threads) t.join();

  executed_ += executed.load(std::memory_order_relaxed);
  for (unsigned w = 0; w < workers_; ++w)
    per_worker_[w] += per_worker[w].load(std::memory_order_relaxed);
  if (auto e = state.error()) std::rethrow_exception(e);
}

}  // namespace c64fft::codelet
