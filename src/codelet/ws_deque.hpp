#pragma once
// Chase-Lev work-stealing deque of CodeletKeys.
//
// One worker owns the deque: it pushes and pops at the *bottom* (LIFO, so
// freshly enabled codelets run first and a sibling-group cascade stays
// depth-first). Thieves steal from the *top* (FIFO, so they take the
// oldest — largest-subtree — work). The memory orderings follow the
// C11 formulation of Lê, Pop, Cohen & Nardelli, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP 2013); the only deviation
// is the element type: a CodeletKey is wider than a machine word, so each
// ring slot stores its two fields as relaxed atomics. A thief may read a
// torn or stale pair while racing the owner, but it publishes the value
// only after the seq_cst CAS on `top_` succeeds — and a successful CAS at
// position t proves the owner has not recycled slot t (the owner reuses a
// slot only after `top_` has advanced past it), so the pair read was the
// one the owner published. Torn reads are discarded with the failed CAS.
//
// Growth: rings double when full; old rings are retired, not freed, until
// the deque is destroyed, so a thief holding a stale ring pointer can
// always complete its (doomed) read. Retirement is owner-only.

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "codelet/codelet.hpp"

namespace c64fft::codelet {

class WorkStealingDeque {
 public:
  /// Outcome of a steal attempt. kLost means another thread won the race
  /// for the top element — the deque may still hold work, so a scheduler
  /// should treat it as "retry", not "empty".
  enum class StealResult { kStolen, kEmpty, kLost };

  explicit WorkStealingDeque(std::size_t initial_capacity = 64) {
    const std::size_t cap = std::bit_ceil(initial_capacity | std::size_t{1});
    rings_.push_back(std::make_unique<Ring>(cap));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: push one item at the bottom.
  void push(CodeletKey item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* a = ring_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->mask)) a = grow(a, t, b);
    a->put(b, item);
    // The PPoPP'13 formulation uses a release fence + relaxed store here;
    // a release store is strictly stronger (same x86 codegen) and, unlike
    // a standalone fence, is modeled by ThreadSanitizer — this is the
    // publish edge every thief's data access synchronizes through.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pop the most recently pushed item (LIFO).
  bool pop(CodeletKey& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* a = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = a->get(b);
    if (t == b) {
      // Last element: race the thieves for it.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Owner only, and only while no thief can exist (a single-worker
  /// runtime): LIFO pop without the Dekker fence or the last-element CAS.
  /// Mixing this with concurrent steal() calls is undefined.
  bool pop_unsynchronized(CodeletKey& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t >= b) return false;
    Ring* a = ring_.load(std::memory_order_relaxed);
    out = a->get(b - 1);
    bottom_.store(b - 1, std::memory_order_relaxed);
    return true;
  }

  /// Any thread: try to steal the oldest item (FIFO end).
  StealResult steal(CodeletKey& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return StealResult::kEmpty;
    Ring* a = ring_.load(std::memory_order_acquire);
    out = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return StealResult::kLost;
    return StealResult::kStolen;
  }

  /// Racy size estimate (diagnostics / victim selection only).
  std::size_t size_relaxed() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_relaxed() const { return size_relaxed() == 0; }

 private:
  // Slot fields are relaxed atomics purely so racy thief reads are
  // well-defined; the top_ CAS supplies the actual synchronization.
  struct Slot {
    std::atomic<std::uint32_t> stage{0};
    std::atomic<std::uint64_t> index{0};
  };

  struct Ring {
    explicit Ring(std::size_t cap) : mask(cap - 1), slots(new Slot[cap]()) {}
    void put(std::int64_t i, CodeletKey k) {
      Slot& s = slots[static_cast<std::size_t>(i) & mask];
      s.stage.store(k.stage, std::memory_order_relaxed);
      s.index.store(k.index, std::memory_order_relaxed);
    }
    CodeletKey get(std::int64_t i) const {
      const Slot& s = slots[static_cast<std::size_t>(i) & mask];
      return {s.stage.load(std::memory_order_relaxed),
              s.index.load(std::memory_order_relaxed)};
    }
    std::size_t mask;
    std::unique_ptr<Slot[]> slots;
  };

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    rings_.push_back(std::make_unique<Ring>((old->mask + 1) * 2));
    Ring* bigger = rings_.back().get();
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_{nullptr};
  std::vector<std::unique_ptr<Ring>> rings_;  // owner-only; freed at destruction
};

}  // namespace c64fft::codelet
