#pragma once
// Explicit codelet-graph (CDG) representation, Section III-C3.
//
// The production FFT variants never materialise their CDG — dependencies
// live implicitly in the index algebra plus shared counters. This class
// exists to (a) validate that algebra for small sizes by brute force,
// (b) check well-behavedness (acyclicity => deterministic results), and
// (c) let tests replay arbitrary firing orders and verify that every
// codelet fires exactly once regardless of order.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "codelet/codelet.hpp"

namespace c64fft::codelet {

class CodeletGraph {
 public:
  /// Returns the dense node id for `key`, inserting it if new.
  std::uint32_t add_node(CodeletKey key);

  /// Declares `consumer` depends on `producer` (producer -> consumer edge).
  /// Both nodes are inserted on demand. Parallel edges are kept: a codelet
  /// that consumes two outputs of the same producer waits for it twice,
  /// matching counter semantics.
  void add_edge(CodeletKey producer, CodeletKey consumer);

  std::size_t node_count() const noexcept { return keys_.size(); }
  std::size_t edge_count() const noexcept { return edges_; }

  const CodeletKey& key_of(std::uint32_t node) const { return keys_.at(node); }
  bool contains(CodeletKey key) const { return ids_.count(key) != 0; }

  /// Dense node id of `key` (throws std::out_of_range if absent).
  std::uint32_t id_of(CodeletKey key) const;
  /// Successor / predecessor node ids of dense node `node`, with
  /// multiplicity — the raw adjacency used by static analyses that build
  /// reachability over dense ids instead of keys.
  const std::vector<std::uint32_t>& successors(std::uint32_t node) const {
    return succ_.at(node);
  }
  const std::vector<std::uint32_t>& predecessors(std::uint32_t node) const {
    return pred_.at(node);
  }

  /// Number of inbound dependency tokens of a node.
  std::uint32_t in_degree(CodeletKey key) const;
  /// Direct consumers of a node (with multiplicity).
  std::vector<CodeletKey> children(CodeletKey key) const;
  /// Direct producers of a node (with multiplicity).
  std::vector<CodeletKey> parents(CodeletKey key) const;

  /// True iff the graph is acyclic ("well-behaved": a well-behaved CDG
  /// computes deterministic outputs, paper Section III-C3).
  bool is_well_behaved() const;

  /// One topological order (throws std::logic_error on a cycle).
  std::vector<CodeletKey> topological_order() const;

  /// Dataflow firing simulation: start from all zero-in-degree nodes, pop
  /// per `policy`, fire, release tokens. Returns the firing order. Throws
  /// std::logic_error if not every node fires (cycle / malformed graph).
  std::vector<CodeletKey> simulate_firing(PoolPolicy policy) const;

 private:
  std::unordered_map<CodeletKey, std::uint32_t, CodeletKeyHash> ids_;
  std::vector<CodeletKey> keys_;
  std::vector<std::vector<std::uint32_t>> succ_;
  std::vector<std::vector<std::uint32_t>> pred_;
  std::size_t edges_ = 0;
};

}  // namespace c64fft::codelet
